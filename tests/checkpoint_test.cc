// Checkpoint store + codecs (runtime/checkpoint.h): lossless round-trips, snapshot
// load/flush behavior, malformed-line tolerance, and the headline guarantee — a sweep
// resumed from a checkpoint merges bit-identical to an uninterrupted run, including
// after a SIGKILL mid-sweep (fork-based test, POSIX and non-sanitized builds only).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "syneval/fault/fault.h"
#include "syneval/runtime/checkpoint.h"
#include "syneval/runtime/parallel_sweep.h"

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#define SYNEVAL_HAVE_FORK 1
#endif

// Fork-based kill tests do not mix with sanitizer runtimes (TSan/ASan both dislike
// being forked mid-flight and the child dying by SIGKILL).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define SYNEVAL_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SYNEVAL_SANITIZED 1
#endif
#endif

namespace syneval {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void RemoveStore(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
}

// ---- Escaping -------------------------------------------------------------------------

TEST(CheckpointEscapeTest, RoundTripsStructureCharacters) {
  const std::string nasty = "a\tb\nc;d=e,f\\g\t\t\n\n;;==,,\\\\ plain";
  const std::string escaped = CheckpointEscape(nasty);
  EXPECT_EQ(escaped.find('\t'), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(escaped.find(';'), std::string::npos);
  EXPECT_EQ(escaped.find('='), std::string::npos);
  EXPECT_EQ(escaped.find(','), std::string::npos);
  EXPECT_EQ(CheckpointUnescape(escaped), nasty);
  EXPECT_EQ(CheckpointUnescape(CheckpointEscape("")), "");
}

// ---- Codecs ---------------------------------------------------------------------------

SweepOutcome FullOutcome() {
  SweepOutcome o;
  o.runs = 7;
  o.passes = 4;
  o.failures = 3;
  o.failing_seeds = {2, 5, 6};
  o.first_failure = "seed 2: item=7 expected;newline\nand tab\tend";
  o.anomalies.deadlocks = 1;
  o.anomalies.lost_wakeups = 2;
  o.anomalies.stuck_waiters = 3;
  o.anomalies.starvations = 4;
  o.anomalous_seeds = {2, 6};
  o.first_anomaly = "seed 2: deadlock = wait-for cycle";
  o.postmortems.push_back({2, "deadlock", "postmortem: deadlock\n  seq=1 t1 block\n"});
  o.postmortems.push_back({6, "lost-signal", "narrative with = and ; and \\"});
  o.postmortems_total = 3;
  o.flight_evicted = 99;
  return o;
}

TEST(CheckpointCodecTest, SweepOutcomeRoundTripsEveryField) {
  const SweepOutcome o = FullOutcome();
  SweepOutcome back;
  ASSERT_TRUE(DecodeOutcome(EncodeOutcome(o), &back));
  EXPECT_EQ(back.runs, o.runs);
  EXPECT_EQ(back.passes, o.passes);
  EXPECT_EQ(back.failures, o.failures);
  EXPECT_EQ(back.failing_seeds, o.failing_seeds);
  EXPECT_EQ(back.first_failure, o.first_failure);
  EXPECT_EQ(back.anomalies.deadlocks, o.anomalies.deadlocks);
  EXPECT_EQ(back.anomalies.lost_wakeups, o.anomalies.lost_wakeups);
  EXPECT_EQ(back.anomalies.stuck_waiters, o.anomalies.stuck_waiters);
  EXPECT_EQ(back.anomalies.starvations, o.anomalies.starvations);
  EXPECT_EQ(back.anomalous_seeds, o.anomalous_seeds);
  EXPECT_EQ(back.first_anomaly, o.first_anomaly);
  ASSERT_EQ(back.postmortems.size(), o.postmortems.size());
  for (std::size_t i = 0; i < o.postmortems.size(); ++i) {
    EXPECT_EQ(back.postmortems[i].seed, o.postmortems[i].seed);
    EXPECT_EQ(back.postmortems[i].cause, o.postmortems[i].cause);
    EXPECT_EQ(back.postmortems[i].text, o.postmortems[i].text);
  }
  EXPECT_EQ(back.postmortems_total, o.postmortems_total);
  EXPECT_EQ(back.flight_evicted, o.flight_evicted);
}

TEST(CheckpointCodecTest, EmptyOutcomeRoundTrips) {
  SweepOutcome back;
  back.runs = 42;  // Must be overwritten.
  ASSERT_TRUE(DecodeOutcome(EncodeOutcome(SweepOutcome{}), &back));
  EXPECT_EQ(back.runs, 0);
  EXPECT_TRUE(back.failing_seeds.empty());
  EXPECT_TRUE(back.postmortems.empty());
}

TEST(CheckpointCodecTest, ChaosOutcomeRoundTripsEveryField) {
  ChaosSweepOutcome o;
  o.runs = 9;
  o.skipped = 3;
  o.injected_runs = 8;
  o.harmful = 5;
  o.detected_harmful = 4;
  o.absorbed = 2;
  o.corrupted = 1;
  o.clean_anomalies = 1;
  o.clean_failures = 2;
  o.detection_steps_total = 1234567890123ULL;
  o.missed_seeds = {3};
  o.fp_seeds = {1, 9};
  o.postmortems.push_back({4, "lost-signal", "text;with=structure,chars\\\n"});
  o.postmortems_total = 6;
  o.postmortem_causes = {{"lost-signal", 4}, {"dead=lock;odd", 2}};
  o.flight_evicted = 17;
  ChaosSweepOutcome back;
  ASSERT_TRUE(DecodeChaosOutcome(EncodeChaosOutcome(o), &back));
  EXPECT_EQ(back.runs, o.runs);
  EXPECT_EQ(back.skipped, o.skipped);
  EXPECT_EQ(back.injected_runs, o.injected_runs);
  EXPECT_EQ(back.harmful, o.harmful);
  EXPECT_EQ(back.detected_harmful, o.detected_harmful);
  EXPECT_EQ(back.absorbed, o.absorbed);
  EXPECT_EQ(back.corrupted, o.corrupted);
  EXPECT_EQ(back.clean_anomalies, o.clean_anomalies);
  EXPECT_EQ(back.clean_failures, o.clean_failures);
  EXPECT_EQ(back.detection_steps_total, o.detection_steps_total);
  EXPECT_EQ(back.missed_seeds, o.missed_seeds);
  EXPECT_EQ(back.fp_seeds, o.fp_seeds);
  ASSERT_EQ(back.postmortems.size(), 1u);
  EXPECT_EQ(back.postmortems[0].text, o.postmortems[0].text);
  EXPECT_EQ(back.postmortems_total, o.postmortems_total);
  EXPECT_EQ(back.postmortem_causes, o.postmortem_causes);
  EXPECT_EQ(back.flight_evicted, o.flight_evicted);
}

TEST(CheckpointCodecTest, TrialReportRoundTrips) {
  TrialReport r;
  r.message = "oracle: consumed 3 != produced 4\twith tab";
  r.anomalies.stuck_waiters = 2;
  r.anomaly_report = "[stuck-waiter @7] t1 stuck";
  r.postmortem_cause = "stuck-waiter";
  r.postmortem = "line1\nline2; k=v\n";
  r.flight_evicted = 5;
  TrialReport back;
  ASSERT_TRUE(DecodeTrialReport(EncodeTrialReport(r), &back));
  EXPECT_EQ(back.message, r.message);
  EXPECT_EQ(back.anomalies.stuck_waiters, 2);
  EXPECT_EQ(back.anomaly_report, r.anomaly_report);
  EXPECT_EQ(back.postmortem_cause, r.postmortem_cause);
  EXPECT_EQ(back.postmortem, r.postmortem);
  EXPECT_EQ(back.flight_evicted, 5u);
}

TEST(CheckpointCodecTest, MalformedPayloadsAreRejected) {
  SweepOutcome out;
  out.runs = 7;
  EXPECT_FALSE(DecodeOutcome("", &out));
  EXPECT_FALSE(DecodeOutcome("not a record at all", &out));
  EXPECT_EQ(out.runs, 7);  // Left untouched on failure.
  // Kind confusion: a sweep payload never decodes as a chaos outcome or vice versa.
  ChaosSweepOutcome chaos;
  EXPECT_FALSE(DecodeChaosOutcome(EncodeOutcome(FullOutcome()), &chaos));
  SweepOutcome sweep;
  EXPECT_FALSE(DecodeOutcome(EncodeChaosOutcome(ChaosSweepOutcome{}), &sweep));
  TrialReport report;
  EXPECT_FALSE(DecodeTrialReport("v=sweep1", &report));
}

TEST(CheckpointCodecTest, ChunkKeyEmbedsEveryLayoutParameter) {
  const std::string base = ChunkKey("scope/a", "sweep", 1, 100, 16, 0);
  EXPECT_NE(base, ChunkKey("scope/b", "sweep", 1, 100, 16, 0));
  EXPECT_NE(base, ChunkKey("scope/a", "chaos", 1, 100, 16, 0));
  EXPECT_NE(base, ChunkKey("scope/a", "sweep", 2, 100, 16, 0));
  EXPECT_NE(base, ChunkKey("scope/a", "sweep", 1, 101, 16, 0));
  EXPECT_NE(base, ChunkKey("scope/a", "sweep", 1, 100, 8, 0));
  EXPECT_NE(base, ChunkKey("scope/a", "sweep", 1, 100, 16, 1));
  // Scope strings with structure characters cannot forge another key.
  EXPECT_NE(ChunkKey("a\tsweep", "x", 1, 1, 1, 0), ChunkKey("a", "sweep\tx", 1, 1, 1, 0));
}

// ---- Store ----------------------------------------------------------------------------

TEST(CheckpointStoreTest, CommitFlushLoadRoundTrips) {
  const std::string path = TempPath("store_roundtrip.ckpt");
  RemoveStore(path);
  {
    CheckpointStore store(path);
    EXPECT_EQ(store.Load(), 0);  // Missing file: empty store, no error.
    store.Commit("key-a", "payload-a");
    store.Commit("key b with spaces", "payload\twith\nstructure;=,\\chars");
    ASSERT_TRUE(store.Flush());
    EXPECT_EQ(store.size(), 2);
  }
  CheckpointStore reloaded(path);
  EXPECT_EQ(reloaded.Load(), 2);
  std::string payload;
  ASSERT_TRUE(reloaded.Lookup("key b with spaces", &payload));
  EXPECT_EQ(payload, "payload\twith\nstructure;=,\\chars");
  EXPECT_FALSE(reloaded.Lookup("absent", &payload));
  EXPECT_EQ(reloaded.hits(), 1);
  RemoveStore(path);
}

TEST(CheckpointStoreTest, MalformedLinesAreSkippedOnLoad) {
  const std::string path = TempPath("store_corrupt.ckpt");
  {
    std::ofstream f(path);
    f << "syneval-checkpoint v1\n";
    f << CheckpointEscape("good-key") << "\t" << CheckpointEscape("good-payload") << "\n";
    f << "no-tab-on-this-line\n";
    f << "\ttab-but-empty-key\n";
    f << CheckpointEscape("truncated");  // No newline, no payload: dropped.
  }
  CheckpointStore store(path);
  EXPECT_EQ(store.Load(), 1);  // Only the well-formed line survives.
  std::string payload;
  EXPECT_TRUE(store.Lookup("good-key", &payload));
  EXPECT_EQ(payload, "good-payload");
  RemoveStore(path);
}

TEST(CheckpointStoreTest, WrongHeaderLoadsNothing) {
  const std::string path = TempPath("store_header.ckpt");
  {
    std::ofstream f(path);
    f << "some-other-format v9\nkey\tpayload\n";
  }
  CheckpointStore store(path);
  EXPECT_EQ(store.Load(), 0);
  RemoveStore(path);
}

TEST(CheckpointStoreTest, FlushIsAtomicReplacement) {
  const std::string path = TempPath("store_atomic.ckpt");
  CheckpointStore store(path);
  store.Commit("k", "v1");
  ASSERT_TRUE(store.Flush());
  store.Commit("k", "v2");
  ASSERT_TRUE(store.Flush());
  // No .tmp litter left behind and the snapshot holds the latest value.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  CheckpointStore reloaded(path);
  EXPECT_EQ(reloaded.Load(), 1);
  std::string payload;
  ASSERT_TRUE(reloaded.Lookup("k", &payload));
  EXPECT_EQ(payload, "v2");
  RemoveStore(path);
}

// ---- Write-ahead journal --------------------------------------------------------------

TEST(CheckpointJournalTest, CommitsAreDurableWithoutFlush) {
  const std::string path = TempPath("journal_durable.ckpt");
  RemoveStore(path);
  {
    CheckpointStore store(path);
    store.Commit("a", "1");
    store.Commit("b", "2");
    store.Commit("a", "3");  // Later entries win on replay.
    EXPECT_EQ(store.appends(), 3);
    EXPECT_EQ(store.compactions(), 0);  // Default flush_every is 64: no compaction yet.
    // No Flush(): the snapshot was never written...
    std::ifstream snapshot(path);
    EXPECT_FALSE(snapshot.good());
  }
  // ...yet every commit survives, replayed from the journal alone. Load() reports
  // distinct entries; replayed() counts journal lines (the shadowed "a" is a third).
  CheckpointStore reloaded(path);
  EXPECT_EQ(reloaded.Load(), 2);
  EXPECT_EQ(reloaded.replayed(), 3);
  std::string payload;
  ASSERT_TRUE(reloaded.Lookup("a", &payload));
  EXPECT_EQ(payload, "3");
  ASSERT_TRUE(reloaded.Lookup("b", &payload));
  EXPECT_EQ(payload, "2");
  RemoveStore(path);
}

TEST(CheckpointJournalTest, AutomaticCompactionTruncatesJournal) {
  const std::string path = TempPath("journal_compact.ckpt");
  RemoveStore(path);
  CheckpointStore store(path);
  store.SetFlushEvery(2);
  store.Commit("a", "1");
  EXPECT_EQ(store.compactions(), 0);
  store.Commit("b", "2");  // Second append: compaction fires.
  EXPECT_EQ(store.compactions(), 1);
  // The snapshot now holds both entries and the journal is back to header-only.
  {
    std::ifstream journal(store.journal_path());
    std::string header, extra;
    ASSERT_TRUE(std::getline(journal, header));
    EXPECT_EQ(header, "syneval-journal v1");
    EXPECT_FALSE(std::getline(journal, extra));
  }
  CheckpointStore reloaded(path);
  EXPECT_EQ(reloaded.Load(), 2);
  EXPECT_EQ(reloaded.replayed(), 0);  // Everything came from the snapshot.
  // Appends after a compaction land in the (reopened) journal again.
  store.Commit("c", "3");
  CheckpointStore again(path);
  EXPECT_EQ(again.Load(), 3);
  EXPECT_EQ(again.replayed(), 1);
  RemoveStore(path);
}

TEST(CheckpointJournalTest, TornFinalAppendIsACacheMiss) {
  const std::string path = TempPath("journal_torn.ckpt");
  RemoveStore(path);
  {
    CheckpointStore store(path);
    store.Commit("a", "1");
    store.Commit("b", "2");
  }
  // Simulate SIGKILL mid-append: chop bytes off the journal so the final line has no
  // terminating newline.
  {
    std::ifstream in(path + ".journal", std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    ASSERT_GT(data.size(), 3u);
    ASSERT_EQ(data.back(), '\n');
    std::ofstream out(path + ".journal", std::ios::binary | std::ios::trunc);
    out << data.substr(0, data.size() - 3);
  }
  CheckpointStore store(path);
  EXPECT_EQ(store.Load(), 1);  // The torn append degraded to a cache miss.
  std::string payload;
  EXPECT_TRUE(store.Lookup("a", &payload));
  EXPECT_FALSE(store.Lookup("b", &payload));
  RemoveStore(path);
}

TEST(CheckpointJournalTest, MalformedJournalLinesAreCacheMisses) {
  const std::string path = TempPath("journal_malformed.ckpt");
  RemoveStore(path);
  {
    std::ofstream f(path + ".journal");
    f << "syneval-journal v1\n";
    f << CheckpointEscape("good") << "\t" << CheckpointEscape("payload") << "\n";
    f << "no-tab-on-this-line\n";
    f << "\tempty-key\n";
  }
  CheckpointStore store(path);
  EXPECT_EQ(store.Load(), 1);
  std::string payload;
  EXPECT_TRUE(store.Lookup("good", &payload));
  EXPECT_EQ(payload, "payload");
  RemoveStore(path);
}

TEST(CheckpointJournalTest, ForeignJournalHeaderLoadsNothing) {
  const std::string path = TempPath("journal_header.ckpt");
  RemoveStore(path);
  {
    std::ofstream f(path + ".journal");
    f << "some-other-journal v9\nkey\tpayload\n";
  }
  CheckpointStore store(path);
  EXPECT_EQ(store.Load(), 0);
  RemoveStore(path);
}

TEST(CheckpointJournalTest, JournalReplaysOverSnapshot) {
  const std::string path = TempPath("journal_over.ckpt");
  RemoveStore(path);
  {
    CheckpointStore store(path);
    store.Commit("k", "old");
    store.Commit("only-snapshot", "s");
    ASSERT_TRUE(store.Flush());   // Snapshot holds both; journal truncated.
    store.Commit("k", "new");     // Journal entry shadows the snapshot's value.
  }
  CheckpointStore store(path);
  EXPECT_EQ(store.Load(), 2);  // Distinct entries; the replayed "k" shadows, not adds.
  EXPECT_EQ(store.replayed(), 1);
  std::string payload;
  ASSERT_TRUE(store.Lookup("k", &payload));
  EXPECT_EQ(payload, "new");
  ASSERT_TRUE(store.Lookup("only-snapshot", &payload));
  EXPECT_EQ(payload, "s");
  RemoveStore(path);
}

// ---- Resume bit-identity --------------------------------------------------------------

TrialReport SyntheticTrial(std::uint64_t seed) {
  TrialReport r;
  if (seed % 3 == 0) {
    r.message = "seed " + std::to_string(seed) + " failed";
  }
  if (seed % 5 == 0) {
    r.anomalies.deadlocks = 1;
    r.anomaly_report = "synthetic deadlock at seed " + std::to_string(seed);
    r.postmortem_cause = "deadlock";
    r.postmortem = "postmortem for seed " + std::to_string(seed) + "\n";
  }
  r.flight_evicted = seed % 2;
  return r;
}

void ExpectOutcomesIdentical(const SweepOutcome& a, const SweepOutcome& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.passes, b.passes);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.failing_seeds, b.failing_seeds);
  EXPECT_EQ(a.first_failure, b.first_failure);
  EXPECT_EQ(a.anomalies.deadlocks, b.anomalies.deadlocks);
  EXPECT_EQ(a.anomalous_seeds, b.anomalous_seeds);
  EXPECT_EQ(a.first_anomaly, b.first_anomaly);
  ASSERT_EQ(a.postmortems.size(), b.postmortems.size());
  for (std::size_t i = 0; i < a.postmortems.size(); ++i) {
    EXPECT_EQ(a.postmortems[i].seed, b.postmortems[i].seed);
    EXPECT_EQ(a.postmortems[i].text, b.postmortems[i].text);
  }
  EXPECT_EQ(a.postmortems_total, b.postmortems_total);
  EXPECT_EQ(a.flight_evicted, b.flight_evicted);
}

TEST(CheckpointResumeTest, ResumedSweepMergesBitIdentical) {
  const std::string path = TempPath("resume_sweep.ckpt");
  RemoveStore(path);
  const int kSeeds = 100;

  const SweepOutcome clean = SweepSchedules(kSeeds, SyntheticTrial, 1);

  // First run: checkpoint everything.
  {
    CheckpointStore store(path);
    store.Load();
    ParallelOptions options;
    options.jobs = 4;
    options.checkpoint = &store;
    options.checkpoint_scope = "checkpoint_test/resume";
    const SweepOutcome first = SweepSchedules(kSeeds, SyntheticTrial, 1, options);
    ExpectOutcomesIdentical(first, clean);
    EXPECT_GT(store.size(), 0);
  }

  // Resume under a different worker count: every chunk restores, nothing re-runs.
  {
    CheckpointStore store(path);
    EXPECT_GT(store.Load(), 0);
    int live_trials = 0;
    ParallelOptions options;
    options.jobs = 2;
    options.checkpoint = &store;
    options.checkpoint_scope = "checkpoint_test/resume";
    const SweepOutcome resumed = SweepSchedules(
        kSeeds,
        std::function<TrialReport(std::uint64_t)>([&](std::uint64_t seed) {
          ++live_trials;  // Benign: counted only to prove nothing re-ran.
          return SyntheticTrial(seed);
        }),
        1, options);
    ExpectOutcomesIdentical(resumed, clean);
    EXPECT_EQ(live_trials, 0);
    EXPECT_EQ(store.hits(), store.size());
  }

  // A different scope is a different sweep: nothing restores.
  {
    CheckpointStore store(path);
    store.Load();
    ParallelOptions options;
    options.jobs = 2;
    options.checkpoint = &store;
    options.checkpoint_scope = "checkpoint_test/other-scope";
    const SweepOutcome other = SweepSchedules(kSeeds, SyntheticTrial, 1, options);
    ExpectOutcomesIdentical(other, clean);
    EXPECT_EQ(store.hits(), 0);
  }
  RemoveStore(path);
}

ChaosTrialOutcome SyntheticChaosTrial(std::uint64_t seed, const FaultPlan* plan) {
  ChaosTrialOutcome out;
  out.steps = 100 + seed;
  if (plan == nullptr) {
    out.completed = true;
    return out;
  }
  out.injected = 1;
  out.first_injection_step = 10;
  if (seed % 4 == 0) {
    out.hung = true;
    out.anomalies = 1;
    out.report = "hung at seed " + std::to_string(seed);
    out.postmortem_cause = "lost-signal";
    out.postmortem = "chaos postmortem seed " + std::to_string(seed) + "\n";
  } else {
    out.completed = true;
  }
  return out;
}

TEST(CheckpointResumeTest, ResumedChaosSweepMergesBitIdentical) {
  const std::string path = TempPath("resume_chaos.ckpt");
  RemoveStore(path);
  const int kSeeds = 60;
  const FaultPlan plan;  // Unused by the synthetic trial beyond its nullness.

  const ChaosSweepOutcome clean = SweepChaos(kSeeds, SyntheticChaosTrial, plan, 1);
  {
    CheckpointStore store(path);
    ParallelOptions options;
    options.jobs = 3;
    options.checkpoint = &store;
    options.checkpoint_scope = "checkpoint_test/chaos";
    const ChaosSweepOutcome first =
        SweepChaos(kSeeds, SyntheticChaosTrial, plan, 1, options);
    EXPECT_EQ(first.runs, clean.runs);
    EXPECT_GT(store.size(), 0);
  }
  {
    CheckpointStore store(path);
    EXPECT_GT(store.Load(), 0);
    ParallelOptions options;
    options.jobs = 5;
    options.checkpoint = &store;
    options.checkpoint_scope = "checkpoint_test/chaos";
    const ChaosSweepOutcome resumed =
        SweepChaos(kSeeds, SyntheticChaosTrial, plan, 1, options);
    EXPECT_EQ(store.hits(), store.size());
    EXPECT_EQ(resumed.runs, clean.runs);
    EXPECT_EQ(resumed.injected_runs, clean.injected_runs);
    EXPECT_EQ(resumed.harmful, clean.harmful);
    EXPECT_EQ(resumed.detected_harmful, clean.detected_harmful);
    EXPECT_EQ(resumed.absorbed, clean.absorbed);
    EXPECT_EQ(resumed.clean_anomalies, clean.clean_anomalies);
    EXPECT_EQ(resumed.detection_steps_total, clean.detection_steps_total);
    EXPECT_EQ(resumed.missed_seeds, clean.missed_seeds);
    EXPECT_EQ(resumed.fp_seeds, clean.fp_seeds);
    ASSERT_EQ(resumed.postmortems.size(), clean.postmortems.size());
    for (std::size_t i = 0; i < clean.postmortems.size(); ++i) {
      EXPECT_EQ(resumed.postmortems[i].text, clean.postmortems[i].text);
    }
    EXPECT_EQ(resumed.postmortem_causes, clean.postmortem_causes);
    EXPECT_EQ(resumed.flight_evicted, clean.flight_evicted);
  }
  RemoveStore(path);
}

#if defined(SYNEVAL_HAVE_FORK) && !defined(SYNEVAL_SANITIZED)
// The acceptance-criterion shape: SIGKILL a sweep mid-flight, resume against the same
// checkpoint file, and the merged outcome is bit-identical to the uninterrupted run.
TEST(CheckpointResumeTest, SigkilledSweepResumesBitIdentical) {
  const std::string path = TempPath("resume_sigkill.ckpt");
  RemoveStore(path);
  const int kSeeds = 200;
  const SweepOutcome clean = SweepSchedules(kSeeds, SyntheticTrial, 1);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: sweep slowly, checkpointing every chunk, until the parent kills us.
    CheckpointStore store(path);
    ParallelOptions options;
    options.jobs = 2;
    options.checkpoint = &store;
    options.checkpoint_scope = "checkpoint_test/sigkill";
    (void)SweepSchedules(
        kSeeds,
        std::function<TrialReport(std::uint64_t)>([](std::uint64_t seed) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          return SyntheticTrial(seed);
        }),
        1, options);
    _exit(0);  // Finished before the kill: the resume below restores everything.
  }

  // Parent: wait for the journal to carry at least one committed chunk (the journal,
  // not the snapshot — commits are journal appends, and the first compaction may be
  // many chunks away), then SIGKILL the child mid-sweep.
  for (int i = 0; i < 2000; ++i) {
    std::ifstream f(path + ".journal");
    std::string line;
    int lines = 0;
    while (std::getline(f, line)) {
      ++lines;
    }
    if (lines >= 2) {  // Header + one entry.
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  kill(child, SIGKILL);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);

  CheckpointStore store(path);
  const int restored = store.Load();
  ParallelOptions options;
  options.jobs = 2;
  options.checkpoint = &store;
  options.checkpoint_scope = "checkpoint_test/sigkill";
  const SweepOutcome resumed = SweepSchedules(kSeeds, SyntheticTrial, 1, options);
  ExpectOutcomesIdentical(resumed, clean);
  // Everything the child durably committed before the kill restored as cache hits
  // (the torn tail, if the kill landed mid-append, became a cache miss, not garbage).
  EXPECT_EQ(store.hits(), restored);
  RemoveStore(path);
}

// SIGKILL aimed at the compaction window: with SetFlushEvery(1) every commit runs the
// full append → snapshot-rename → journal-truncate sequence, so a kill at a random
// moment lands inside compaction with high probability. Whatever window it hits, the
// store must recover to a state where resume is bit-identical.
TEST(CheckpointResumeTest, SigkilledMidCompactionRecovers) {
  const std::string path = TempPath("resume_kill_compact.ckpt");
  RemoveStore(path);
  const int kSeeds = 120;
  const SweepOutcome clean = SweepSchedules(kSeeds, SyntheticTrial, 1);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    CheckpointStore store(path);
    store.SetFlushEvery(1);  // Compaction on every commit: maximize the crash window.
    ParallelOptions options;
    options.jobs = 2;
    options.chunk_seeds = 1;  // One commit per seed: many compactions to aim at.
    options.checkpoint = &store;
    options.checkpoint_scope = "checkpoint_test/kill-compact";
    (void)SweepSchedules(
        kSeeds,
        std::function<TrialReport(std::uint64_t)>([](std::uint64_t seed) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          return SyntheticTrial(seed);
        }),
        1, options);
    _exit(0);
  }

  // Let a few dozen compactions happen, then kill without looking: the kill lands at
  // an arbitrary point of the append/rename/truncate cycle.
  for (int i = 0; i < 2000; ++i) {
    std::ifstream f(path);
    if (f.good()) {
      break;  // At least one compaction has landed.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  kill(child, SIGKILL);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);

  CheckpointStore store(path);
  store.SetFlushEvery(1);
  const int restored = store.Load();
  EXPECT_GT(restored, 0);  // The pre-kill snapshot survived whatever window was hit.
  ParallelOptions options;
  options.jobs = 2;
  options.chunk_seeds = 1;
  options.checkpoint = &store;
  options.checkpoint_scope = "checkpoint_test/kill-compact";
  const SweepOutcome resumed = SweepSchedules(kSeeds, SyntheticTrial, 1, options);
  ExpectOutcomesIdentical(resumed, clean);
  RemoveStore(path);
}
#endif  // SYNEVAL_HAVE_FORK && !SYNEVAL_SANITIZED

}  // namespace
}  // namespace syneval
