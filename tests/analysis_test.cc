// Static analysis subsystem: the path-expression model checker (proofs, minimal
// counterexamples, unreachable-op and starvation detection), the monitor/CCR
// wait-predicate lint rules, the registry-wide verdict catalog (golden expectations for
// the paper's footnote-2 problems across mechanisms), and the static->dynamic
// cross-validation that replays a checker counterexample under DetRuntime and asserts
// the anomaly detector names the same cycle.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "syneval/analysis/catalog.h"
#include "syneval/analysis/model_checker.h"
#include "syneval/analysis/monitor_lint.h"
#include "syneval/analysis/replay.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/solutions/solution_info.h"

namespace syneval {
namespace {

// ---------------------------------------------------------------------------------------
// Model checker: proofs.

TEST(ModelCheckerTest, BoundedBufferIsProvedDeadlockFree) {
  // The acceptance-criterion proof: the CH74 bounded-buffer path expression, checked
  // exhaustively (default one-call-per-operation clients), has no reachable wedged
  // state, no unreachable operation, and no starvable operation.
  const PathModel model{"bounded buffer", PathBoundedBuffer::Program(3), {}};
  const ModelCheckResult result = CheckPathModel(model);
  EXPECT_EQ(result.safety, SafetyVerdict::kDeadlockFree) << result.Summary();
  EXPECT_TRUE(result.unreachable_ops.empty());
  EXPECT_TRUE(result.starvable_ops.empty());
  EXPECT_FALSE(result.guard_dependent);
  EXPECT_GT(result.states, 1u);
  EXPECT_GT(result.transitions, 0u);
}

TEST(ModelCheckerTest, OneSlotBufferIsProvedDeadlockFree) {
  const PathModel model{"one-slot buffer", PathOneSlotBuffer::Program(), {}};
  const ModelCheckResult result = CheckPathModel(model);
  EXPECT_EQ(result.safety, SafetyVerdict::kDeadlockFree) << result.Summary();
  EXPECT_TRUE(result.starvable_ops.empty());
}

TEST(ModelCheckerTest, FcfsResourceIsStarvationFreeUnderLongestWaiting) {
  // "path acquire end" serializes acquirers; with the longest-waiting selection rule
  // nothing can be passed over forever, and the checker must find no starvable cycle.
  const PathModel model{"fcfs", PathFcfsResource::Program(), {}};
  const ModelCheckResult result = CheckPathModel(model);
  EXPECT_EQ(result.safety, SafetyVerdict::kDeadlockFree) << result.Summary();
  EXPECT_TRUE(result.starvable_ops.empty());
}

// ---------------------------------------------------------------------------------------
// Model checker: counterexamples.

TEST(ModelCheckerTest, CrossedGatesYieldMinimalCounterexample) {
  const PathModel broken = BrokenCrossedGatesModel();
  const ModelCheckResult result = CheckPathModel(broken);
  ASSERT_EQ(result.safety, SafetyVerdict::kDeadlockable) << result.Summary();
  // BFS order guarantees minimality: one begin per script is the shortest wedge.
  ASSERT_EQ(result.counterexample.word.size(), 2u);
  for (const CounterexampleStep& step : result.counterexample.word) {
    EXPECT_TRUE(step.begin);
  }
  const std::vector<std::string>& blocked = result.counterexample.blocked_ops;
  EXPECT_EQ(blocked, (std::vector<std::string>{"geta", "getb"}));
  ASSERT_EQ(result.counterexample.blocked_clients.size(), 2u);
  EXPECT_NE(result.counterexample.ToString().find("wedged"), std::string::npos);
}

TEST(ModelCheckerTest, UnreachableOperationIsDetected) {
  // Two independent gates but clients only ever call `a`: `b` fires on no explored
  // edge and must be flagged, while the program stays deadlock-free.
  PathModel model;
  model.name = "half-used";
  model.program = "path a end path b end";
  model.scripts = {SimpleCall("a")};
  const ModelCheckResult result = CheckPathModel(model);
  EXPECT_EQ(result.safety, SafetyVerdict::kDeadlockFree) << result.Summary();
  EXPECT_EQ(result.unreachable_ops, std::vector<std::string>{"b"});
}

TEST(ModelCheckerTest, GuardedProgramIsMarkedGuardDependent) {
  const PathModel model{"predicate rw", PathExprRwPredicates::Program(), {}};
  const ModelCheckResult result = CheckPathModel(model);
  EXPECT_TRUE(result.guard_dependent);
  EXPECT_EQ(result.safety, SafetyVerdict::kDeadlockFree) << result.Summary();
  EXPECT_NE(result.Summary().find("modulo guards"), std::string::npos);
}

TEST(ModelCheckerTest, StateBoundYieldsInconclusiveNotWrong) {
  PathModel model{"bounded buffer", PathBoundedBuffer::Program(3), {}};
  model.max_states = 2;  // Far too small to exhaust the space.
  const ModelCheckResult result = CheckPathModel(model);
  EXPECT_EQ(result.safety, SafetyVerdict::kBoundExceeded);
}

TEST(ModelCheckerTest, MalformedScriptIsRejected) {
  PathModel model;
  model.name = "bad script";
  model.program = "path a end";
  model.scripts = {{"oops", {{ClientStep::Kind::kBegin, "nosuchop"}}, 1}};
  EXPECT_THROW(CheckPathModel(model), std::invalid_argument);
}

// ---------------------------------------------------------------------------------------
// Model checker: starvation under the longest-waiting rule (the paper's figures).

TEST(ModelCheckerTest, Figure1ReadersPriorityStarvesWriters) {
  // Figure 1 admits readers while any reader is active; the writer-side prologues can
  // be kept unfireable forever by an overlapping reader stream. The checker must find
  // the cycle — this is footnote 3 as a machine-checked verdict.
  const auto entries = RegistryPathModels();
  const auto it = std::find_if(entries.begin(), entries.end(), [](const auto& entry) {
    return entry.model.name == "Figure 1 (CH74 readers priority)";
  });
  ASSERT_NE(it, entries.end());
  const ModelCheckResult result = CheckPathModel(it->model);
  EXPECT_EQ(result.safety, SafetyVerdict::kDeadlockFree) << result.Summary();
  EXPECT_EQ(result.starvable_ops,
            (std::vector<std::string>{"requestwrite", "writeattempt"}));
}

TEST(ModelCheckerTest, Figure2WritersPriorityStarvesReaders) {
  const auto entries = RegistryPathModels();
  const auto it = std::find_if(entries.begin(), entries.end(), [](const auto& entry) {
    return entry.model.name == "Figure 2 (CH74 writers priority)";
  });
  ASSERT_NE(it, entries.end());
  const ModelCheckResult result = CheckPathModel(it->model);
  EXPECT_EQ(result.safety, SafetyVerdict::kDeadlockFree) << result.Summary();
  EXPECT_EQ(result.starvable_ops,
            (std::vector<std::string>{"readattempt", "requestread"}));
}

// ---------------------------------------------------------------------------------------
// Monitor / CCR wait-predicate lint.

MonitorModel LintFixture(WaitSemantics semantics) {
  MonitorModel model;
  model.name = "fixture";
  model.semantics = semantics;
  return model;
}

bool HasRule(const std::vector<LintFinding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const LintFinding& f) { return f.rule == rule; });
}

TEST(MonitorLintTest, MesaNonLoopWaitIsAnError) {
  MonitorModel model = LintFixture(WaitSemantics::kMesa);
  model.waits = {{"nonempty", "count > 0", /*loop=*/false, 4}};
  model.signals = {{"nonempty", false, 1, false}};
  const auto findings = LintMonitorModel(model);
  ASSERT_TRUE(HasRule(findings, "mesa-nonloop-wait"));
  EXPECT_EQ(findings.front().severity, LintSeverity::kError);
}

TEST(MonitorLintTest, HoareNonLoopWaitIsOnlyANote) {
  MonitorModel model = LintFixture(WaitSemantics::kHoare);
  model.waits = {{"nonempty", "count > 0", /*loop=*/false, 4}};
  model.signals = {{"nonempty", false, 1, false}};
  const auto findings = LintMonitorModel(model);
  ASSERT_TRUE(HasRule(findings, "hoare-nonloop-wait"));
  EXPECT_FALSE(HasRule(findings, "mesa-nonloop-wait"));
  for (const LintFinding& finding : findings) {
    EXPECT_EQ(finding.severity, LintSeverity::kNote);
  }
}

TEST(MonitorLintTest, NeverSignalledConditionIsAnError) {
  MonitorModel model = LintFixture(WaitSemantics::kMesa);
  model.waits = {{"ghost", "whatever", true, 1}};
  const auto findings = LintMonitorModel(model);
  ASSERT_TRUE(HasRule(findings, "never-signalled"));
  EXPECT_EQ(findings.front().severity, LintSeverity::kError);
}

TEST(MonitorLintTest, CcrRegionsAreExemptFromNeverSignalled) {
  // Region exits implicitly re-test every queued predicate; no explicit signal exists.
  MonitorModel model = LintFixture(WaitSemantics::kCcr);
  model.waits = {{"deposit", "count < capacity", true, 4}};
  EXPECT_TRUE(LintMonitorModel(model).empty());
}

TEST(MonitorLintTest, DeadSignalIsAWarning) {
  MonitorModel model = LintFixture(WaitSemantics::kMesa);
  model.signals = {{"unused", false, 1, false}};
  const auto findings = LintMonitorModel(model);
  ASSERT_TRUE(HasRule(findings, "dead-signal"));
  EXPECT_EQ(findings.front().severity, LintSeverity::kWarning);
}

TEST(MonitorLintTest, SingleSignalWithMultipleEligibleWaitersIsAnError) {
  MonitorModel model = LintFixture(WaitSemantics::kMesa);
  model.waits = {{"ok", "ready", true, 8}};
  model.signals = {{"ok", /*broadcast=*/false, /*max_eligible=*/8, /*cascades=*/false}};
  EXPECT_TRUE(HasRule(LintMonitorModel(model), "single-signal-multi-waiter"));

  // Either a broadcast or a wakeup cascade resolves the lost-wakeup shape.
  model.signals = {{"ok", true, 8, false}};
  EXPECT_FALSE(HasRule(LintMonitorModel(model), "single-signal-multi-waiter"));
  model.signals = {{"ok", false, 8, true}};
  EXPECT_FALSE(HasRule(LintMonitorModel(model), "single-signal-multi-waiter"));
}

TEST(MonitorLintTest, BroadcastWithSingleEligibleWaiterIsANote) {
  MonitorModel model = LintFixture(WaitSemantics::kMesa);
  model.waits = {{"ok", "ready", true, 8}};
  model.signals = {{"ok", true, 1, false}};
  EXPECT_TRUE(HasRule(LintMonitorModel(model), "broadcast-single-waiter"));
}

TEST(MonitorLintTest, FindingsAreSortedMostSevereFirst) {
  MonitorModel model = LintFixture(WaitSemantics::kMesa);
  model.waits = {{"ok", "ready", true, 8}};
  model.signals = {{"ok", true, 1, false},        // note: broadcast-single-waiter
                   {"unused", false, 1, false},   // warning: dead-signal
                   {"ghost2", false, 4, false}};  // error + warning
  const auto findings = LintMonitorModel(model);
  ASSERT_GE(findings.size(), 3u);
  for (std::size_t i = 1; i < findings.size(); ++i) {
    EXPECT_GE(static_cast<int>(findings[i - 1].severity),
              static_cast<int>(findings[i].severity));
  }
}

// ---------------------------------------------------------------------------------------
// Registry catalog: golden verdicts for the paper's footnote-2 problems.

struct GoldenVerdict {
  const char* mechanism;
  const char* problem;
  const char* display;
  const char* verdict;
};

TEST(AnalyzeRegistryTest, GoldenVerdictsForFootnote2Problems) {
  // The six footnote-2 problems (bounded buffer, one-slot buffer, readers-priority
  // readers/writers, FCFS resource, disk head, alarm clock), across every mechanism
  // with a static model. `disk-fcfs` is the path-expression disk variant (SCAN is
  // inexpressible, the paper's own negative result). Any change here is a semantic
  // change to the analyzer or to a solution and must be reviewed, not re-pinned
  // casually — these strings are also what tests/golden/static_verdicts.json and the
  // static-verdicts CI job guard.
  const GoldenVerdict golden[] = {
      {"monitor", "bounded-buffer", "Hoare bounded buffer monitor", "lint-clean (hoare)"},
      {"monitor", "one-slot-buffer", "One-slot buffer monitor", "lint-clean (hoare)"},
      {"monitor", "rw-readers-priority", "Readers-priority monitor (CHP semantics)",
       "lint-clean (hoare)"},
      {"monitor", "fcfs-resource", "FCFS resource monitor", "lint-clean (hoare)"},
      {"monitor", "disk-scan", "Hoare disk-head scheduler (SCAN)",
       "hoare-nonloop-wait x2 (note)"},
      {"monitor", "alarm-clock", "Hoare alarm clock", "lint-clean (hoare)"},
      {"path-expression", "bounded-buffer", "CH74 bounded buffer path", "deadlock-free"},
      {"path-expression", "one-slot-buffer", "CH74 one-slot buffer path",
       "deadlock-free"},
      {"path-expression", "rw-readers-priority", "Figure 1 (CH74 readers priority)",
       "deadlock-free, starvable: {requestwrite, writeattempt}"},
      {"path-expression", "rw-readers-priority",
       "Predicate paths (Andler) readers priority",
       "deadlock-free (modulo guards), starvable: {write}"},
      {"path-expression", "fcfs-resource", "FCFS resource path", "deadlock-free"},
      {"path-expression", "disk-fcfs", "Disk path (FCFS only; SCAN inexpressible)",
       "deadlock-free"},
      {"cond-region", "bounded-buffer", "region when count < N / count > 0",
       "lint-clean (ccr)"},
      {"cond-region", "one-slot-buffer", "region when has_item flips",
       "lint-clean (ccr)"},
      {"cond-region", "rw-readers-priority",
       "CCR readers priority (pending-reader counter)", "lint-clean (ccr)"},
      {"cond-region", "fcfs-resource", "CCR FCFS (ticket in condition)",
       "lint-clean (ccr)"},
      {"cond-region", "disk-scan", "CCR SCAN (pending list re-derived per exit)",
       "lint-clean (ccr)"},
      {"cond-region", "alarm-clock", "region when now >= due", "lint-clean (ccr)"},
  };

  const std::vector<SolutionVerdict> verdicts = AnalyzeRegistry();
  for (const GoldenVerdict& expect : golden) {
    const auto it =
        std::find_if(verdicts.begin(), verdicts.end(), [&](const SolutionVerdict& v) {
          return v.display_name == expect.display;
        });
    ASSERT_NE(it, verdicts.end()) << "no verdict for " << expect.display;
    EXPECT_STREQ(MechanismName(it->mechanism), expect.mechanism) << expect.display;
    EXPECT_EQ(it->problem, expect.problem) << expect.display;
    EXPECT_EQ(it->VerdictString(), expect.verdict) << expect.display;
  }
}

TEST(AnalyzeRegistryTest, CoversEveryModelledMechanism) {
  const std::vector<SolutionVerdict> verdicts = AnalyzeRegistry();
  EXPECT_EQ(verdicts.size(), 30u);  // 12 monitors + 8 paths + 10 CCRs.
  int paths = 0;
  for (const SolutionVerdict& verdict : verdicts) {
    paths += verdict.is_path ? 1 : 0;
    if (verdict.is_path && verdict.statically_safe) {
      // "Safe" for a path solution is exactly a completed deadlock-freedom proof with
      // nothing unreachable or starvable.
      EXPECT_EQ(verdict.model.safety, SafetyVerdict::kDeadlockFree);
      EXPECT_TRUE(verdict.model.unreachable_ops.empty());
      EXPECT_TRUE(verdict.model.starvable_ops.empty());
    }
  }
  EXPECT_EQ(paths, 8);
}

TEST(AnalyzeRegistryTest, NoInTreePathSolutionIsDeadlockable) {
  // The headline matrix property: every path-expression solution shipped in the
  // registry is statically deadlock-free (starvation is a separate verdict).
  for (const SolutionVerdict& verdict : AnalyzeRegistry()) {
    if (verdict.is_path) {
      EXPECT_EQ(verdict.model.safety, SafetyVerdict::kDeadlockFree)
          << verdict.display_name << ": " << verdict.model.Summary();
    }
  }
}

// ---------------------------------------------------------------------------------------
// Cross-validation: static counterexample -> real deadlock under DetRuntime.

TEST(ReplayTest, CrossedGatesCounterexampleReplaysToDetectedDeadlock) {
  const PathModel broken = BrokenCrossedGatesModel();
  const ModelCheckResult result = CheckPathModel(broken);
  ASSERT_EQ(result.safety, SafetyVerdict::kDeadlockable) << result.Summary();

  const ReplayResult replay = ReplayCounterexample(broken, result.counterexample);
  EXPECT_TRUE(replay.deadlocked) << replay.runtime_report;
  EXPECT_GE(replay.anomalies.deadlocks, 1);
  // The detector must name the same cycle the checker predicted: a wait-for loop
  // through exactly the operations the wedged state blocks on.
  EXPECT_NE(replay.anomaly_report.find("wait-for cycle"), std::string::npos)
      << replay.anomaly_report;
  for (const std::string& op : result.counterexample.blocked_ops) {
    EXPECT_NE(replay.anomaly_report.find("path:" + op), std::string::npos)
        << "cycle does not mention blocked op '" << op << "': "
        << replay.anomaly_report;
  }
}

TEST(ReplayTest, ReplayIsSeedIndependent) {
  // The word pins the schedule-relevant choices; the seed only varies noise around it,
  // so every seed must reproduce the deadlock.
  const PathModel broken = BrokenCrossedGatesModel();
  const ModelCheckResult result = CheckPathModel(broken);
  ASSERT_EQ(result.safety, SafetyVerdict::kDeadlockable);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const ReplayResult replay =
        ReplayCounterexample(broken, result.counterexample, seed);
    EXPECT_TRUE(replay.deadlocked) << "seed " << seed << ": " << replay.runtime_report;
    EXPECT_GE(replay.anomalies.deadlocks, 1) << "seed " << seed;
  }
}

}  // namespace
}  // namespace syneval
