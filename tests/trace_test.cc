// Trace recorder, OpScope phases, and query helpers.

#include <gtest/gtest.h>

#include "syneval/trace/query.h"
#include "syneval/trace/recorder.h"

namespace syneval {
namespace {

TEST(TraceRecorderTest, AssignsMonotonicSequenceNumbers) {
  TraceRecorder trace;
  const std::uint64_t a = trace.Record(1, EventKind::kRequest, "op", 1);
  const std::uint64_t b = trace.Record(2, EventKind::kEnter, "op", 1);
  EXPECT_LT(a, b);
  EXPECT_EQ(trace.size(), 2u);
}

TEST(TraceRecorderTest, ClearResets) {
  TraceRecorder trace;
  trace.Record(1, EventKind::kMark, "m");
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.Record(1, EventKind::kMark, "m"), 1u);
}

TEST(OpScopeTest, RecordsThreePhases) {
  TraceRecorder trace;
  {
    OpScope scope(trace, 5, "read", 7);
    scope.Arrived();
    scope.Entered(11);
  }  // Destructor records the exit.
  const std::vector<Event>& events = trace.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::kRequest);
  EXPECT_EQ(events[1].kind, EventKind::kEnter);
  EXPECT_EQ(events[1].value, 11);
  EXPECT_EQ(events[2].kind, EventKind::kExit);
  EXPECT_EQ(events[0].param, 7);
  EXPECT_EQ(events[0].thread, 5u);
}

TEST(OpScopeTest, EnterImpliesArrival) {
  TraceRecorder trace;
  {
    OpScope scope(trace, 1, "op");
    scope.Entered();
    scope.Exited();
  }
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.Events()[0].kind, EventKind::kRequest);
}

TEST(OpScopeTest, AbandonedScopeRecordsNothing) {
  TraceRecorder trace;
  { OpScope scope(trace, 1, "op"); }
  EXPECT_EQ(trace.size(), 0u);
}

TEST(OpScopeTest, PhasesAreIdempotent) {
  TraceRecorder trace;
  {
    OpScope scope(trace, 1, "op");
    scope.Arrived();
    scope.Arrived();
    scope.Entered();
    scope.Entered();
    scope.Exited();
    scope.Exited();
  }
  EXPECT_EQ(trace.size(), 3u);
}

TEST(QueryTest, GroupsExecutions) {
  TraceRecorder trace;
  OpScope a(trace, 1, "read");
  a.Arrived();
  OpScope b(trace, 2, "write", 42);
  b.Arrived();
  a.Entered();
  a.Exited();
  b.Entered();
  b.Exited();

  const std::vector<Execution> executions = GroupExecutions(trace.Events());
  ASSERT_EQ(executions.size(), 2u);
  EXPECT_EQ(executions[0].op, "read");
  EXPECT_EQ(executions[1].op, "write");
  EXPECT_EQ(executions[1].param, 42);
  EXPECT_TRUE(executions[0].Complete());
  EXPECT_TRUE(executions[0].CompletedBefore(executions[1]));
  EXPECT_FALSE(executions[0].Overlaps(executions[1]));
  EXPECT_TRUE(executions[0].RequestedBefore(executions[1]));
}

TEST(QueryTest, DetectsOverlap) {
  TraceRecorder trace;
  OpScope a(trace, 1, "read");
  a.Entered();
  OpScope b(trace, 2, "read");
  b.Entered();
  a.Exited();
  b.Exited();
  const std::vector<Execution> executions = GroupExecutions(trace.Events());
  ASSERT_EQ(executions.size(), 2u);
  EXPECT_TRUE(executions[0].Overlaps(executions[1]));
  EXPECT_TRUE(executions[1].Overlaps(executions[0]));
}

TEST(QueryTest, OpenExecutionExtendsForever) {
  TraceRecorder trace;
  OpScope a(trace, 1, "write");
  a.Arrived();
  a.Entered();
  // Never exits.
  OpScope b(trace, 2, "read");
  b.Arrived();
  b.Entered();
  b.Exited();
  const std::vector<Execution> executions = GroupExecutions(trace.Events());
  EXPECT_TRUE(executions[0].Overlaps(executions[1]));
}

TEST(QueryTest, ActiveAndWaitingCounts) {
  TraceRecorder trace;
  OpScope a(trace, 1, "read");
  a.Arrived();                                      // seq 1
  OpScope b(trace, 2, "read");
  b.Arrived();                                      // seq 2
  a.Entered();                                      // seq 3
  a.Exited();                                       // seq 4
  const std::vector<Execution> executions = GroupExecutions(trace.Events());
  EXPECT_EQ(WaitingCountAt(executions, "read", 2), 2);
  EXPECT_EQ(ActiveCountAt(executions, "read", 3), 1);
  EXPECT_EQ(WaitingCountAt(executions, "read", 3), 1);
  EXPECT_EQ(ActiveCountAt(executions, "read", 4), 0);
}

TEST(QueryTest, FilterAndFind) {
  TraceRecorder trace;
  OpScope a(trace, 1, "read");
  a.Entered();
  a.Exited();
  OpScope b(trace, 2, "write");
  b.Entered();
  b.Exited();
  const std::vector<Execution> executions = GroupExecutions(trace.Events());
  EXPECT_EQ(FilterByOp(executions, "read").size(), 1u);
  EXPECT_TRUE(FindInstance(executions, a.instance()).has_value());
  EXPECT_FALSE(FindInstance(executions, 99999).has_value());
}

TEST(WaitStatsTest, ComputesWaitsAndStarvation) {
  TraceRecorder trace;
  OpScope quick(trace, 1, "read");
  quick.Arrived();   // seq 1
  quick.Entered();   // seq 2: wait 1
  quick.Exited();    // seq 3
  OpScope slow(trace, 2, "read");
  slow.Arrived();    // seq 4
  OpScope filler(trace, 3, "write");
  filler.Arrived();  // seq 5
  filler.Entered();  // seq 6
  filler.Exited();   // seq 7
  slow.Entered();    // seq 8: wait 4
  slow.Exited();
  OpScope starved(trace, 4, "read");
  starved.Arrived();  // Never admitted.

  const std::vector<Execution> executions = GroupExecutions(trace.Events());
  const WaitStats reads = ComputeWaitStats(executions, "read");
  EXPECT_EQ(reads.count, 2);
  EXPECT_EQ(reads.max_wait, 4u);
  EXPECT_DOUBLE_EQ(reads.mean_wait, 2.5);
  EXPECT_EQ(reads.never_admitted, 1);
  const WaitStats writes = ComputeWaitStats(executions, "write");
  EXPECT_EQ(writes.count, 1);
  EXPECT_EQ(writes.max_wait, 1u);
}

}  // namespace
}  // namespace syneval
