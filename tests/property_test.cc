// Property-style sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P): oracle conformance across
// the cartesian product of mechanism x workload shape x schedule seed, plus structural
// invariants (the path controller returns to its initial marking after every complete
// workload).

#include <functional>
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/solutions/ccr_solutions.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/solutions/semaphore_solutions.h"
#include "syneval/solutions/serializer_solutions.h"

namespace syneval {
namespace {

// --- Bounded buffer: mechanism x capacity x shape x seed --------------------------------

struct BufferMaker {
  const char* name;
  std::function<std::unique_ptr<BoundedBufferIface>(Runtime&, int)> make;
};

const BufferMaker kBufferMakers[] = {
    {"semaphore",
     [](Runtime& rt, int n) { return std::make_unique<SemaphoreBoundedBuffer>(rt, n); }},
    {"monitor",
     [](Runtime& rt, int n) { return std::make_unique<MonitorBoundedBuffer>(rt, n); }},
    {"pathexpr",
     [](Runtime& rt, int n) { return std::make_unique<PathBoundedBuffer>(rt, n); }},
    {"serializer",
     [](Runtime& rt, int n) { return std::make_unique<SerializerBoundedBuffer>(rt, n); }},
    {"ccr", [](Runtime& rt, int n) { return std::make_unique<CcrBoundedBuffer>(rt, n); }},
};

struct BufferShape {
  int producers;
  int consumers;
  int items_per_producer;
};

const BufferShape kBufferShapes[] = {{1, 1, 8}, {2, 2, 6}, {3, 1, 4}};

using BufferParam = std::tuple<int /*maker*/, int /*capacity*/, int /*shape*/, int /*seed*/>;

class BufferPropertyTest : public ::testing::TestWithParam<BufferParam> {};

TEST_P(BufferPropertyTest, OracleHoldsOnEverySchedule) {
  const auto [maker_index, capacity, shape_index, seed] = GetParam();
  const BufferMaker& maker = kBufferMakers[static_cast<std::size_t>(maker_index)];
  const BufferShape& shape = kBufferShapes[static_cast<std::size_t>(shape_index)];

  DetRuntime rt(MakeRandomSchedule(static_cast<std::uint64_t>(seed)));
  TraceRecorder trace;
  std::unique_ptr<BoundedBufferIface> buffer = maker.make(rt, capacity);
  BufferWorkloadParams params;
  params.producers = shape.producers;
  params.consumers = shape.consumers;
  params.items_per_producer = shape.items_per_producer;
  ThreadList threads = SpawnBoundedBufferWorkload(rt, *buffer, trace, params);
  const DetRuntime::RunResult result = rt.Run();
  ASSERT_TRUE(result.completed) << maker.name << ": " << result.report;
  EXPECT_EQ(CheckBoundedBuffer(trace.Events(), capacity), "") << maker.name;
}

std::string BufferParamName(const ::testing::TestParamInfo<BufferParam>& info) {
  const auto [maker, capacity, shape, seed] = info.param;
  return std::string(kBufferMakers[static_cast<std::size_t>(maker)].name) + "_cap" +
         std::to_string(capacity) + "_shape" + std::to_string(shape) + "_seed" +
         std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BufferPropertyTest,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Values(1, 2, 5),
                                            ::testing::Range(0, 3),
                                            ::testing::Values(11, 12, 13)),
                         BufferParamName);

// --- Readers/writers: policy-correct solutions x shape x seed ----------------------------

struct RwMaker {
  const char* name;
  RwPolicy policy;
  RwStrictness strictness;
  std::function<std::unique_ptr<ReadersWritersIface>(Runtime&)> make;
};

const RwMaker kRwMakers[] = {
    {"monitor_rp", RwPolicy::kReadersPriority, RwStrictness::kStrict,
     [](Runtime& rt) { return std::make_unique<MonitorRwReadersPriority>(rt); }},
    {"serializer_rp", RwPolicy::kReadersPriority, RwStrictness::kStrict,
     [](Runtime& rt) { return std::make_unique<SerializerRwReadersPriority>(rt); }},
    {"predicates_rp", RwPolicy::kReadersPriority, RwStrictness::kStrict,
     [](Runtime& rt) { return std::make_unique<PathExprRwPredicates>(rt); }},
    {"ccr_rp", RwPolicy::kReadersPriority, RwStrictness::kStrict,
     [](Runtime& rt) { return std::make_unique<CcrRwReadersPriority>(rt); }},
    {"monitor_wp", RwPolicy::kWritersPriority, RwStrictness::kStrict,
     [](Runtime& rt) { return std::make_unique<MonitorRwWritersPriority>(rt); }},
    {"serializer_wp", RwPolicy::kWritersPriority, RwStrictness::kStrict,
     [](Runtime& rt) { return std::make_unique<SerializerRwWritersPriority>(rt); }},
    {"ccr_wp", RwPolicy::kWritersPriority, RwStrictness::kStrict,
     [](Runtime& rt) { return std::make_unique<CcrRwWritersPriority>(rt); }},
    {"figure2_wp", RwPolicy::kWritersPriority, RwStrictness::kArrivalOrder,
     [](Runtime& rt) { return std::make_unique<PathExprRwFigure2>(rt); }},
    {"monitor_fcfs", RwPolicy::kFcfs, RwStrictness::kStrict,
     [](Runtime& rt) { return std::make_unique<MonitorRwFcfs>(rt); }},
    {"serializer_fcfs", RwPolicy::kFcfs, RwStrictness::kStrict,
     [](Runtime& rt) { return std::make_unique<SerializerRwFcfs>(rt); }},
    {"monitor_fair", RwPolicy::kFair, RwStrictness::kStrict,
     [](Runtime& rt) { return std::make_unique<MonitorRwFair>(rt); }},
};

struct RwShape {
  int readers;
  int writers;
};

const RwShape kRwShapes[] = {{3, 2}, {5, 1}, {1, 3}};

using RwParam = std::tuple<int /*maker*/, int /*shape*/, int /*seed*/>;

class RwPropertyTest : public ::testing::TestWithParam<RwParam> {};

TEST_P(RwPropertyTest, PolicyHoldsOnEverySchedule) {
  const auto [maker_index, shape_index, seed] = GetParam();
  const RwMaker& maker = kRwMakers[static_cast<std::size_t>(maker_index)];
  const RwShape& shape = kRwShapes[static_cast<std::size_t>(shape_index)];

  DetRuntime rt(MakeRandomSchedule(static_cast<std::uint64_t>(seed)));
  TraceRecorder trace;
  std::unique_ptr<ReadersWritersIface> rw = maker.make(rt);
  RwWorkloadParams params;
  params.readers = shape.readers;
  params.writers = shape.writers;
  params.ops_per_reader = 4;
  params.ops_per_writer = 3;
  ThreadList threads = SpawnReadersWritersWorkload(rt, *rw, trace, params);
  const DetRuntime::RunResult result = rt.Run();
  ASSERT_TRUE(result.completed) << maker.name << ": " << result.report;
  EXPECT_EQ(CheckReadersWriters(trace.Events(), maker.policy, 16, maker.strictness), "")
      << maker.name;
}

std::string RwParamName(const ::testing::TestParamInfo<RwParam>& info) {
  const auto [maker, shape, seed] = info.param;
  return std::string(kRwMakers[static_cast<std::size_t>(maker)].name) + "_r" +
         std::to_string(kRwShapes[static_cast<std::size_t>(shape)].readers) + "w" +
         std::to_string(kRwShapes[static_cast<std::size_t>(shape)].writers) + "_seed" +
         std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RwPropertyTest,
                         ::testing::Combine(::testing::Range(0, 11), ::testing::Range(0, 3),
                                            ::testing::Values(21, 22)),
                         RwParamName);

// --- Disk SCAN: mechanism x requesters x seed ---------------------------------------------

struct DiskMaker {
  const char* name;
  std::function<std::unique_ptr<DiskSchedulerIface>(Runtime&)> make;
};

const DiskMaker kDiskMakers[] = {
    {"semaphore", [](Runtime& rt) { return std::make_unique<SemaphoreDiskScheduler>(rt, 0); }},
    {"monitor", [](Runtime& rt) { return std::make_unique<MonitorDiskScheduler>(rt, 0); }},
    {"serializer",
     [](Runtime& rt) { return std::make_unique<SerializerDiskScheduler>(rt, 0); }},
    {"ccr", [](Runtime& rt) { return std::make_unique<CcrDiskScheduler>(rt, 0); }},
};

using DiskParam = std::tuple<int /*maker*/, int /*requesters*/, int /*seed*/>;

class DiskPropertyTest : public ::testing::TestWithParam<DiskParam> {};

TEST_P(DiskPropertyTest, ScanPolicyHolds) {
  const auto [maker_index, requesters, seed] = GetParam();
  const DiskMaker& maker = kDiskMakers[static_cast<std::size_t>(maker_index)];

  DetRuntime rt(MakeRandomSchedule(static_cast<std::uint64_t>(seed)));
  TraceRecorder trace;
  VirtualDisk disk(120, 0);
  std::unique_ptr<DiskSchedulerIface> scheduler = maker.make(rt);
  DiskWorkloadParams params;
  params.requesters = requesters;
  params.requests_per_thread = 4;
  params.tracks = 120;
  params.seed = static_cast<std::uint64_t>(seed);
  ThreadList threads = SpawnDiskWorkload(rt, *scheduler, disk, trace, params);
  const DetRuntime::RunResult result = rt.Run();
  ASSERT_TRUE(result.completed) << maker.name << ": " << result.report;
  EXPECT_EQ(disk.violations(), 0) << maker.name;
  EXPECT_EQ(CheckScanDiskSchedule(trace.Events(), 0), "") << maker.name;
}

std::string DiskParamName(const ::testing::TestParamInfo<DiskParam>& info) {
  const auto [maker, requesters, seed] = info.param;
  return std::string(kDiskMakers[static_cast<std::size_t>(maker)].name) + "_req" +
         std::to_string(requesters) + "_seed" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DiskPropertyTest,
                         ::testing::Combine(::testing::Range(0, 4), ::testing::Values(2, 5),
                                            ::testing::Values(31, 32, 33)),
                         DiskParamName);

// --- Alarm clock: mechanism x sleepers x seed ----------------------------------------------

struct AlarmMaker {
  const char* name;
  std::function<std::unique_ptr<AlarmClockIface>(Runtime&)> make;
};

const AlarmMaker kAlarmMakers[] = {
    {"semaphore", [](Runtime& rt) { return std::make_unique<SemaphoreAlarmClock>(rt); }},
    {"monitor", [](Runtime& rt) { return std::make_unique<MonitorAlarmClock>(rt); }},
    {"serializer", [](Runtime& rt) { return std::make_unique<SerializerAlarmClock>(rt); }},
    {"ccr", [](Runtime& rt) { return std::make_unique<CcrAlarmClock>(rt); }},
};

using AlarmParam = std::tuple<int /*maker*/, int /*sleepers*/, int /*seed*/>;

class AlarmPropertyTest : public ::testing::TestWithParam<AlarmParam> {};

TEST_P(AlarmPropertyTest, NoEarlyWakeupsNoOversleep) {
  const auto [maker_index, sleepers, seed] = GetParam();
  const AlarmMaker& maker = kAlarmMakers[static_cast<std::size_t>(maker_index)];

  DetRuntime rt(MakeRandomSchedule(static_cast<std::uint64_t>(seed)));
  TraceRecorder trace;
  std::unique_ptr<AlarmClockIface> clock = maker.make(rt);
  AlarmWorkloadParams params;
  params.sleepers = sleepers;
  params.naps_per_sleeper = 3;
  params.max_delay = 5;
  params.seed = static_cast<std::uint64_t>(seed);
  ThreadList threads = SpawnAlarmClockWorkload(rt, *clock, trace, params);
  const DetRuntime::RunResult result = rt.Run();
  ASSERT_TRUE(result.completed) << maker.name << ": " << result.report;
  EXPECT_EQ(CheckAlarmClock(trace.Events(), 0), "") << maker.name;
}

std::string AlarmParamName(const ::testing::TestParamInfo<AlarmParam>& info) {
  const auto [maker, sleepers, seed] = info.param;
  return std::string(kAlarmMakers[static_cast<std::size_t>(maker)].name) + "_s" +
         std::to_string(sleepers) + "_seed" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlarmPropertyTest,
                         ::testing::Combine(::testing::Range(0, 4), ::testing::Values(2, 5),
                                            ::testing::Values(41, 42, 43)),
                         AlarmParamName);

// --- Path controller structural invariant: quiescence restores the initial marking --------

using PathInvariantParam = std::tuple<int /*capacity*/, int /*seed*/>;

class PathInvariantTest : public ::testing::TestWithParam<PathInvariantParam> {};

TEST_P(PathInvariantTest, BufferControllerReturnsToInitialMarking) {
  const auto [capacity, seed] = GetParam();
  DetRuntime rt(MakeRandomSchedule(static_cast<std::uint64_t>(seed)));
  TraceRecorder trace;
  PathBoundedBuffer buffer(rt, capacity);
  BufferWorkloadParams params;
  params.producers = 2;
  params.consumers = 2;
  params.items_per_producer = 6;
  ThreadList threads = SpawnBoundedBufferWorkload(rt, buffer, trace, params);
  ASSERT_TRUE(rt.Run().completed);
  // Every deposited item was removed, so the compiled marking must be restored.
  EXPECT_TRUE(buffer.controller().AtInitialState()) << buffer.controller().DescribeState();
}

TEST_P(PathInvariantTest, Figure1ControllerReturnsToInitialMarking) {
  const auto [capacity, seed] = GetParam();
  (void)capacity;
  DetRuntime rt(MakeRandomSchedule(static_cast<std::uint64_t>(seed)));
  TraceRecorder trace;
  PathExprRwFigure1 rw(rt);
  RwWorkloadParams params;
  params.readers = 3;
  params.writers = 2;
  ThreadList threads = SpawnReadersWritersWorkload(rt, rw, trace, params);
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_TRUE(rw.controller().AtInitialState()) << rw.controller().DescribeState();
}

INSTANTIATE_TEST_SUITE_P(Sweep, PathInvariantTest,
                         ::testing::Combine(::testing::Values(1, 3, 7),
                                            ::testing::Values(51, 52, 53, 54)));

}  // namespace
}  // namespace syneval
