// Tests for the concurrency anomaly detector: deadlock cycles, lost wakeups, stuck
// waiters, starvation, and the guarantee that the paper's six footnote-2 problems sweep
// anomaly-free under every mechanism's correct solution.

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "syneval/anomaly/detector.h"
#include "syneval/core/conformance.h"
#include "syneval/monitor/hoare_monitor.h"
#include "syneval/monitor/mesa_monitor.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/explore.h"
#include "syneval/runtime/os_runtime.h"
#include "syneval/runtime/schedule.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/trace/recorder.h"

namespace syneval {
namespace {

std::int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---- Direct-call unit tests ------------------------------------------------------------

TEST(AnomalyDetectorUnit, ResourceNamesAreDeduplicated) {
  AnomalyDetector det;
  int a = 0;
  int b = 0;
  EXPECT_EQ(det.RegisterResource(&a, ResourceKind::kLock, "m"), "m");
  EXPECT_EQ(det.RegisterResource(&b, ResourceKind::kLock, "m"), "m#2");
  // Re-registering the same pointer keeps its original slot (pointer reuse).
  EXPECT_EQ(det.RegisterResource(&a, ResourceKind::kCondition, "c"), "c");
}

TEST(AnomalyDetectorUnit, SignalAccountingSeparatesEmptySignals) {
  AnomalyDetector det;
  int cond = 0;
  const std::string name = det.RegisterResource(&cond, ResourceKind::kCondition, "cond");
  det.OnSignal(1, &cond, /*waiters_before=*/0);
  det.OnSignal(1, &cond, /*waiters_before=*/2);
  const AnomalyDetector::ConditionStats stats = det.StatsFor(name);
  EXPECT_EQ(stats.signals, 2);
  EXPECT_EQ(stats.empty_signals, 1);
  EXPECT_EQ(det.StatsFor("no-such-condition").signals, 0);
}

TEST(AnomalyDetectorUnit, PTwiceSelfDeadlockFormsNamedCycle) {
  AnomalyDetector det;
  det.RegisterThread(1, "worker");
  int sem = 0;
  det.RegisterResource(&sem, ResourceKind::kSemaphore, "S");
  det.OnAcquire(1, &sem);  // First P succeeds.
  det.OnBlock(1, &sem);    // Second P blocks on the unit it holds itself.
  EXPECT_EQ(det.DiagnoseStuck(), 1);
  EXPECT_EQ(det.counts().deadlocks, 1);
  const std::string report = det.Report();
  EXPECT_NE(report.find("wait-for cycle"), std::string::npos) << report;
  EXPECT_NE(report.find("held by t1 'worker'"), std::string::npos) << report;
}

TEST(AnomalyDetectorUnit, DiagnoseStuckFreezesLaterHooks) {
  AnomalyDetector det;
  det.RegisterThread(1, "waiter");
  int cond = 0;
  det.RegisterResource(&cond, ResourceKind::kCondition, "cond");
  det.OnBlock(1, &cond);
  EXPECT_EQ(det.DiagnoseStuck(), 1);
  // Teardown-unwind hooks after the diagnosis must not disturb the verdict.
  det.OnWake(1, &cond);
  det.OnSignal(2, &cond, 0);
  EXPECT_EQ(det.DiagnoseStuck(), 0);
  EXPECT_EQ(det.counts().total(), 1);
}

TEST(AnomalyDetectorUnit, PollFlagsOldWaitsExactlyOnce) {
  AnomalyDetector::Options options;
  options.stuck_wait_nanos = 1;
  AnomalyDetector det(options);
  det.RegisterThread(1, "waiter");
  int cond = 0;
  det.RegisterResource(&cond, ResourceKind::kCondition, "cond");
  det.OnBlock(1, &cond);
  const std::int64_t far_future = SteadyNowNanos() + 1'000'000'000;
  EXPECT_EQ(det.Poll(far_future), 1);
  EXPECT_EQ(det.Poll(far_future), 0);  // Same wait is never reported twice.
  EXPECT_EQ(det.counts().stuck_waiters, 1);
}

TEST(AnomalyDetectorUnit, PollRespectsAgeThreshold) {
  AnomalyDetector::Options options;
  options.stuck_wait_nanos = 3'600'000'000'000;  // One hour: nothing qualifies.
  AnomalyDetector det(options);
  det.RegisterThread(1, "waiter");
  int cond = 0;
  det.RegisterResource(&cond, ResourceKind::kCondition, "cond");
  det.OnBlock(1, &cond);
  EXPECT_EQ(det.Poll(SteadyNowNanos()), 0);
  EXPECT_TRUE(det.counts().Clean());
}

TEST(AnomalyDetectorUnit, PollThresholdScaleRaisesEffectiveThreshold) {
  AnomalyDetector::Options options;
  options.stuck_wait_nanos = 1'000'000'000;  // 1s base.
  AnomalyDetector det(options);
  EXPECT_EQ(det.effective_stuck_wait_nanos(), 1'000'000'000);
  det.SetPollThresholdScale(8);
  EXPECT_EQ(det.effective_stuck_wait_nanos(), 8'000'000'000);
  det.SetPollThresholdScale(0);  // Clamped: load scale never drops below 1.
  EXPECT_EQ(det.effective_stuck_wait_nanos(), 1'000'000'000);

  // A wait older than the base threshold but younger than the scaled one is tolerated
  // under load (8 concurrent trials legitimately stretch every wait) and flagged once
  // the load clears.
  det.RegisterThread(1, "waiter");
  int cond = 0;
  det.RegisterResource(&cond, ResourceKind::kCondition, "cond");
  det.OnBlock(1, &cond);
  const std::int64_t wait_age_4s = SteadyNowNanos() + 4'000'000'000;
  det.SetPollThresholdScale(8);
  EXPECT_EQ(det.Poll(wait_age_4s), 0);
  det.SetPollThresholdScale(1);
  EXPECT_EQ(det.Poll(wait_age_4s), 1);
  EXPECT_EQ(det.counts().stuck_waiters, 1);
}

TEST(AnomalyCountsTest, SummaryAndAccumulation) {
  AnomalyCounts counts;
  EXPECT_TRUE(counts.Clean());
  EXPECT_EQ(counts.Summary(), "none");
  AnomalyCounts more;
  more.deadlocks = 1;
  more.stuck_waiters = 2;
  counts += more;
  EXPECT_FALSE(counts.Clean());
  EXPECT_EQ(counts.total(), 3);
  EXPECT_EQ(counts.Summary(), "1 deadlock, 2 stuck waiters");
}

// ---- Canned deadlock: the nested-monitor-call problem ----------------------------------

// One-slot buffer over a Hoare monitor; a Get() with the outer monitor held is the
// classic Lister 1977 nested-monitor deadlock.
class InnerBuffer {
 public:
  explicit InnerBuffer(Runtime& rt) : monitor_(rt) {}

  void Put(int value) {
    MonitorRegion region(monitor_);
    while (full_) {
      not_full_.Wait();
    }
    value_ = value;
    full_ = true;
    not_empty_.Signal();
  }

  int Get() {
    MonitorRegion region(monitor_);
    while (!full_) {
      not_empty_.Wait();
    }
    full_ = false;
    not_full_.Signal();
    return value_;
  }

 private:
  HoareMonitor monitor_;
  HoareMonitor::Condition not_full_{monitor_};
  HoareMonitor::Condition not_empty_{monitor_};
  bool full_ = false;
  int value_ = 0;
};

struct NestedOutcome {
  DetRuntime::RunResult run;
  AnomalyCounts anomalies;
  std::string report;
};

NestedOutcome RunNestedMonitorWorkload(std::unique_ptr<Schedule> schedule) {
  NestedOutcome out;
  AnomalyDetector det;
  DetRuntime rt(std::move(schedule));
  rt.AttachAnomalyDetector(&det);
  HoareMonitor outer(rt);
  InnerBuffer inner(rt);
  auto consumer = rt.StartThread("consumer", [&] {
    MonitorRegion region(outer);
    inner.Get();  // Waits on the inner condition while holding the outer monitor.
  });
  auto producer = rt.StartThread("producer", [&] {
    rt.Yield();
    MonitorRegion region(outer);
    inner.Put(1);
  });
  out.run = rt.Run();
  out.anomalies = det.counts();
  out.report = det.Report("; ");
  return out;
}

TEST(AnomalyTest, NestedMonitorDeadlockNamesWaitForCycle) {
  const NestedOutcome out = RunNestedMonitorWorkload(std::make_unique<FifoSchedule>());
  ASSERT_TRUE(out.run.deadlocked) << out.run.report;
  EXPECT_GE(out.anomalies.deadlocks, 1);
  // The runtime's stuck report carries the detector's named cycle.
  EXPECT_NE(out.run.report.find("wait-for cycle"), std::string::npos) << out.run.report;
  EXPECT_NE(out.run.report.find("held by"), std::string::npos) << out.run.report;
  EXPECT_NE(out.report.find("consumer"), std::string::npos) << out.report;
  EXPECT_NE(out.report.find("producer"), std::string::npos) << out.report;
}

TEST(AnomalyTest, SweepSurfacesDeadlockCountsSeedsAndCycle) {
  const SweepOutcome outcome =
      SweepSchedules(30, [](std::uint64_t seed) -> TrialReport {
        const NestedOutcome out = RunNestedMonitorWorkload(MakeRandomSchedule(seed));
        TrialReport report;
        report.anomalies = out.anomalies;
        report.anomaly_report = out.report;
        if (!out.run.completed) {
          report.message = "runtime: " + out.run.report;
        }
        return report;
      });
  EXPECT_GE(outcome.anomalies.deadlocks, 1) << outcome.Summary();
  EXPECT_FALSE(outcome.AnomalyFree());
  EXPECT_GT(outcome.AnomalyRate(), 0.0);
  EXPECT_FALSE(outcome.anomalous_seeds.empty());
  // The first-anomaly line is replayable: it names the seed and the wait-for cycle.
  EXPECT_NE(outcome.first_anomaly.find("seed"), std::string::npos) << outcome.first_anomaly;
  EXPECT_NE(outcome.first_anomaly.find("wait-for cycle"), std::string::npos)
      << outcome.first_anomaly;
  EXPECT_NE(outcome.Summary().find("anomalies:"), std::string::npos);
}

// ---- Lost wakeup: Mesa signal delivered before the wait --------------------------------

TEST(AnomalyTest, MesaSignalBeforeWaitClassifiedAsLostWakeup) {
  AnomalyDetector det;
  DetRuntime rt(std::make_unique<FifoSchedule>());
  rt.AttachAnomalyDetector(&det);
  MesaMonitor monitor(rt);
  MesaMonitor::Condition cond(monitor);
  bool signalled = false;
  auto signaller = rt.StartThread("signaller", [&] {
    MesaRegion region(monitor);
    cond.Signal();  // Nobody is waiting: the wakeup falls on the floor.
    signalled = true;
  });
  auto waiter = rt.StartThread("waiter", [&] {
    while (!signalled) {
      rt.Yield();
    }
    MesaRegion region(monitor);
    cond.Wait();  // Waits for the signal that already happened.
  });
  const DetRuntime::RunResult result = rt.Run();
  ASSERT_TRUE(result.deadlocked) << result.report;
  EXPECT_GE(det.counts().lost_wakeups, 1) << det.Report();
  EXPECT_NE(det.Report().find("lost-wakeup"), std::string::npos) << det.Report();
  // Signal accounting shows the dropped signal on the Mesa condition.
  EXPECT_GE(det.StatsFor("MesaMonitor.cond").empty_signals, 1);
}

// ---- Starvation: reader flood overtakes a pending writer -------------------------------

TEST(AnomalyTest, SyntheticReaderFloodTripsOvertakeLimit) {
  AnomalyDetector::Options options;
  options.starvation_overtake_limit = 5;
  AnomalyDetector det(options);
  TraceRecorder trace;
  trace.SetObserver(&det);
  det.RegisterThread(1, "writer");
  OpScope writer(trace, 1, "write");
  writer.Arrived();  // Requested, never admitted while the flood runs.
  for (int i = 0; i < 8; ++i) {
    OpScope reader(trace, 2, "read");
    reader.Arrived();
    reader.Entered();
    reader.Exited();
  }
  EXPECT_EQ(det.counts().starvations, 1);  // Flagged once, not once per overtake.
  const std::string report = det.Report();
  EXPECT_NE(report.find("starvation"), std::string::npos) << report;
  EXPECT_NE(report.find("overtaken"), std::string::npos) << report;
  writer.Entered();
  writer.Exited();
}

TEST(AnomalyTest, ReadersPriorityMonitorStarvesWriterUnderFlood) {
  AnomalyDetector::Options options;
  options.starvation_overtake_limit = 5;
  AnomalyDetector det(options);
  TraceRecorder trace;
  det.AttachTrace(&trace);
  trace.SetObserver(&det);
  DetRuntime rt(std::make_unique<FifoSchedule>());
  rt.AttachAnomalyDetector(&det);
  MonitorRwReadersPriority rw(rt);
  bool reading = false;
  bool done = false;
  auto holder = rt.StartThread("holder", [&] {
    OpScope scope(trace, rt.CurrentThreadId(), "read");
    rw.Read(
        [&] {
          reading = true;
          while (!done) {
            rt.Yield();
          }
        },
        &scope);
  });
  auto writer = rt.StartThread("writer", [&] {
    while (!reading) {
      rt.Yield();
    }
    OpScope scope(trace, rt.CurrentThreadId(), "write");
    rw.Write([] {}, &scope);  // Blocks until the flood and the holder finish.
  });
  auto flood = rt.StartThread("flood", [&] {
    auto writer_requested = [&] {
      for (const Event& event : trace.Events()) {
        if (event.kind == EventKind::kRequest && event.op == "write") {
          return true;
        }
      }
      return false;
    };
    while (!writer_requested()) {
      rt.Yield();
    }
    // Readers priority admits every one of these ahead of the pending writer.
    for (int i = 0; i < 8; ++i) {
      OpScope scope(trace, rt.CurrentThreadId(), "read");
      rw.Read([] {}, &scope);
    }
    done = true;
  });
  const DetRuntime::RunResult result = rt.Run();
  ASSERT_TRUE(result.completed) << result.report;
  EXPECT_GE(det.counts().starvations, 1) << det.Report();
  EXPECT_NE(det.Report().find("'write'"), std::string::npos) << det.Report();
}

// ---- Clean sweeps: the paper's six problems stay anomaly-free --------------------------

TEST(AnomalyTest, PaperProblemsSweepAnomalyFreeAcross200Seeds) {
  const std::vector<std::string> problems = {"bounded-buffer",      "fcfs-resource",
                                             "rw-readers-priority", "disk-scan",
                                             "alarm-clock",         "one-slot-buffer"};
  int covered = 0;
  for (const ConformanceCase& c : BuildConformanceSuite(1)) {
    if (c.mechanism != Mechanism::kMonitor || c.expect_violations) {
      continue;
    }
    if (std::find(problems.begin(), problems.end(), c.problem) == problems.end()) {
      continue;
    }
    const ConformanceResult result = RunConformanceCase(c, 200);
    EXPECT_EQ(result.outcome.failures, 0)
        << c.display << ": " << result.outcome.Summary();
    EXPECT_TRUE(result.outcome.AnomalyFree())
        << c.display << ": " << result.outcome.Summary();
    ++covered;
  }
  EXPECT_EQ(covered, 6);  // Every footnote-2 problem has a monitor solution.
}

// ---- OsRuntime sampling watchdog -------------------------------------------------------

TEST(AnomalyTest, OsWatchdogFlagsStuckWaiter) {
  AnomalyDetector::Options options;
  options.stuck_wait_nanos = 50'000'000;  // 50 ms.
  AnomalyDetector det(options);
  OsRuntime rt;
  rt.AttachAnomalyDetector(&det);
  auto mu = rt.CreateMutex();
  auto cv = rt.CreateCondVar();
  bool release = false;
  auto waiter = rt.StartThread("waiter", [&] {
    RtLock lock(*mu);
    while (!release) {
      cv->Wait(*mu);
    }
  });
  rt.StartAnomalyWatchdog(std::chrono::milliseconds(20));
  for (int i = 0; i < 200 && det.counts().total() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    RtLock lock(*mu);
    release = true;
  }
  cv->NotifyAll();
  waiter->Join();
  rt.StopAnomalyWatchdog();
  EXPECT_GE(det.counts().stuck_waiters, 1) << det.Report();
  EXPECT_NE(det.Report().find("stuck-waiter"), std::string::npos) << det.Report();
}

}  // namespace
}  // namespace syneval
