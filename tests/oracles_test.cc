// Oracle unit tests over hand-constructed traces: each oracle must accept conforming
// histories and pinpoint violating ones.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "syneval/problems/oracles.h"
#include "syneval/trace/recorder.h"

namespace syneval {
namespace {

// Convenience: a full (arrive, enter, exit) execution recorded at once.
void FullOp(TraceRecorder& trace, std::uint32_t thread, const char* op,
            std::int64_t param = 0, std::int64_t exit_value = 0) {
  OpScope scope(trace, thread, op, param);
  scope.Arrived();
  scope.Entered();
  scope.Exited(exit_value);
}

// --- Readers/writers ------------------------------------------------------------------

TEST(RwOracleTest, AcceptsSerialHistory) {
  TraceRecorder trace;
  FullOp(trace, 1, "read");
  FullOp(trace, 2, "write");
  FullOp(trace, 1, "read");
  for (RwPolicy policy : {RwPolicy::kReadersPriority, RwPolicy::kWritersPriority,
                          RwPolicy::kFcfs, RwPolicy::kFair}) {
    EXPECT_EQ(CheckReadersWriters(trace.Events(), policy), "") << RwPolicyName(policy);
  }
}

TEST(RwOracleTest, AcceptsOverlappingReaders) {
  TraceRecorder trace;
  OpScope r1(trace, 1, "read");
  r1.Arrived();
  r1.Entered();
  OpScope r2(trace, 2, "read");
  r2.Arrived();
  r2.Entered();
  r1.Exited();
  r2.Exited();
  EXPECT_EQ(CheckReadersWriters(trace.Events(), RwPolicy::kReadersPriority), "");
}

TEST(RwOracleTest, RejectsWriteOverlap) {
  TraceRecorder trace;
  OpScope w(trace, 1, "write");
  w.Arrived();
  w.Entered();
  OpScope r(trace, 2, "read");
  r.Arrived();
  r.Entered();  // Overlaps the write.
  r.Exited();
  w.Exited();
  const std::string error = CheckReadersWriters(trace.Events(), RwPolicy::kReadersPriority);
  EXPECT_NE(error.find("exclusion"), std::string::npos) << error;
}

TEST(RwOracleTest, DetectsReadersPriorityViolation) {
  // Writer w2 is admitted at w1's release while reader r was already waiting — the
  // footnote-3 anomaly shape.
  TraceRecorder trace;
  OpScope w1(trace, 1, "write");
  w1.Arrived();
  w1.Entered();
  OpScope w2(trace, 2, "write");
  w2.Arrived();           // Waiting...
  OpScope r(trace, 3, "read");
  r.Arrived();            // ...and a reader waits too.
  w1.Exited();            // Release decision: reader should win.
  w2.Entered();           // But the writer was admitted.
  w2.Exited();
  r.Entered();
  r.Exited();
  const std::string error = CheckReadersWriters(trace.Events(), RwPolicy::kReadersPriority);
  EXPECT_NE(error.find("readers-priority violated"), std::string::npos) << error;
  // The same history is fine under writers-priority.
  EXPECT_EQ(CheckReadersWriters(trace.Events(), RwPolicy::kWritersPriority), "");
}

TEST(RwOracleTest, ReadersPriorityAllowsAdmissionIntoFreeResource) {
  // A writer admitted while the resource was free is not a priority decision, even if
  // a reader arrives a moment before the writer's enter is recorded elsewhere.
  TraceRecorder trace;
  FullOp(trace, 1, "write");
  FullOp(trace, 2, "read");
  EXPECT_EQ(CheckReadersWriters(trace.Events(), RwPolicy::kReadersPriority), "");
}

TEST(RwOracleTest, DetectsWritersPriorityViolation) {
  TraceRecorder trace;
  OpScope r1(trace, 1, "read");
  r1.Arrived();
  r1.Entered();
  OpScope w(trace, 2, "write");
  w.Arrived();            // Writer waiting.
  OpScope r2(trace, 3, "read");
  r2.Arrived();           // Reader arrives after the writer...
  r2.Entered();           // ...but joins the read burst anyway.
  r1.Exited();
  r2.Exited();
  w.Entered();
  w.Exited();
  const std::string error = CheckReadersWriters(trace.Events(), RwPolicy::kWritersPriority);
  EXPECT_NE(error.find("writers-priority violated"), std::string::npos) << error;
  // Readers-priority is happy with it.
  EXPECT_EQ(CheckReadersWriters(trace.Events(), RwPolicy::kReadersPriority), "");
}

TEST(RwOracleTest, FcfsDetectsReordering) {
  TraceRecorder trace;
  OpScope a(trace, 1, "read");
  a.Arrived();
  OpScope b(trace, 2, "write");
  b.Arrived();
  b.Entered();  // Admitted before the earlier reader.
  b.Exited();
  a.Entered();
  a.Exited();
  const std::string error = CheckReadersWriters(trace.Events(), RwPolicy::kFcfs);
  EXPECT_NE(error.find("fcfs"), std::string::npos) << error;
}

TEST(RwOracleTest, FairBoundsOvertaking) {
  TraceRecorder trace;
  OpScope victim(trace, 1, "write");
  victim.Arrived();
  for (int i = 0; i < 4; ++i) {
    FullOp(trace, static_cast<std::uint32_t>(2 + i), "read");
  }
  victim.Entered();
  victim.Exited();
  EXPECT_EQ(CheckReadersWriters(trace.Events(), RwPolicy::kFair, /*fair_bound=*/8), "");
  const std::string error =
      CheckReadersWriters(trace.Events(), RwPolicy::kFair, /*fair_bound=*/2);
  EXPECT_NE(error.find("fair"), std::string::npos) << error;
}

// --- Buffers ---------------------------------------------------------------------------

TEST(BufferOracleTest, AcceptsFifoHistory) {
  TraceRecorder trace;
  FullOp(trace, 1, "deposit", 100);
  FullOp(trace, 1, "deposit", 101);
  FullOp(trace, 2, "remove", 0, 100);
  FullOp(trace, 2, "remove", 0, 101);
  EXPECT_EQ(CheckBoundedBuffer(trace.Events(), 2), "");
}

TEST(BufferOracleTest, DetectsFifoViolation) {
  TraceRecorder trace;
  FullOp(trace, 1, "deposit", 100);
  FullOp(trace, 1, "deposit", 101);
  FullOp(trace, 2, "remove", 0, 101);  // Out of order.
  FullOp(trace, 2, "remove", 0, 100);
  const std::string error = CheckBoundedBuffer(trace.Events(), 2);
  EXPECT_NE(error.find("fifo"), std::string::npos) << error;
}

TEST(BufferOracleTest, DetectsOverflow) {
  TraceRecorder trace;
  FullOp(trace, 1, "deposit", 1);
  FullOp(trace, 1, "deposit", 2);
  FullOp(trace, 1, "deposit", 3);  // Third deposit into a 2-slot buffer, nothing removed.
  const std::string error = CheckBoundedBuffer(trace.Events(), 2);
  EXPECT_NE(error.find("overflow"), std::string::npos) << error;
}

TEST(BufferOracleTest, DetectsUnderflow) {
  TraceRecorder trace;
  OpScope r(trace, 2, "remove");
  r.Arrived();
  r.Entered();  // Admitted before any deposit completed.
  OpScope d(trace, 1, "deposit", 5);
  d.Arrived();
  d.Entered();
  d.Exited();
  r.Exited(5);
  const std::string error = CheckBoundedBuffer(trace.Events(), 2);
  EXPECT_NE(error.find("underflow"), std::string::npos) << error;
}

TEST(BufferOracleTest, OneSlotRequiresAlternation) {
  TraceRecorder trace;
  FullOp(trace, 1, "deposit", 1);
  FullOp(trace, 2, "remove", 0, 1);
  FullOp(trace, 1, "deposit", 2);
  FullOp(trace, 2, "remove", 0, 2);
  EXPECT_EQ(CheckOneSlotBuffer(trace.Events()), "");

  TraceRecorder bad;
  FullOp(bad, 1, "deposit", 1);
  FullOp(bad, 1, "deposit", 2);  // Two deposits in a row.
  FullOp(bad, 2, "remove", 0, 1);
  FullOp(bad, 2, "remove", 0, 2);
  const std::string error = CheckOneSlotBuffer(bad.Events());
  EXPECT_FALSE(error.empty());
}

// --- FCFS resource ----------------------------------------------------------------------

TEST(FcfsOracleTest, AcceptsArrivalOrder) {
  TraceRecorder trace;
  FullOp(trace, 1, "acquire");
  FullOp(trace, 2, "acquire");
  EXPECT_EQ(CheckFcfsResource(trace.Events()), "");
}

TEST(FcfsOracleTest, DetectsQueueJump) {
  TraceRecorder trace;
  OpScope a(trace, 1, "acquire");
  a.Arrived();
  OpScope b(trace, 2, "acquire");
  b.Arrived();
  b.Entered();
  b.Exited();
  a.Entered();
  a.Exited();
  const std::string error = CheckFcfsResource(trace.Events());
  EXPECT_NE(error.find("fcfs"), std::string::npos) << error;
}

// --- Disk scheduler ----------------------------------------------------------------------

TEST(DiskOracleTest, AcceptsScanOrder) {
  TraceRecorder trace;
  OpScope a(trace, 1, "disk", 10);
  a.Arrived();
  a.Entered();
  OpScope b(trace, 2, "disk", 50);
  b.Arrived();
  OpScope c(trace, 3, "disk", 30);
  c.Arrived();
  a.Exited();   // Decision: waiting {50, 30}; moving up from 10 -> expect 30.
  c.Entered();
  c.Exited();   // Decision: waiting {50} -> 50.
  b.Entered();
  b.Exited();
  EXPECT_EQ(CheckScanDiskSchedule(trace.Events(), 0), "");
  EXPECT_EQ(TotalSeekDistance(trace.Events(), 0), 10 + 20 + 20);
}

TEST(DiskOracleTest, RejectsNonScanChoice) {
  TraceRecorder trace;
  OpScope a(trace, 1, "disk", 10);
  a.Arrived();
  a.Entered();
  OpScope b(trace, 2, "disk", 50);
  b.Arrived();
  OpScope c(trace, 3, "disk", 30);
  c.Arrived();
  a.Exited();   // Expect 30 next (up sweep), but 50 is admitted.
  b.Entered();
  b.Exited();
  c.Entered();
  c.Exited();
  const std::string error = CheckScanDiskSchedule(trace.Events(), 0);
  EXPECT_NE(error.find("scheduling policy violated"), std::string::npos) << error;
}

TEST(DiskOracleTest, ScanSweepsDownThenUp) {
  TraceRecorder trace;
  OpScope a(trace, 1, "disk", 40);
  a.Arrived();
  a.Entered();
  OpScope b(trace, 2, "disk", 20);
  b.Arrived();
  OpScope c(trace, 3, "disk", 60);
  c.Arrived();
  a.Exited();   // Moving up from 40: expect 60 first.
  c.Entered();
  c.Exited();   // Then flip down to 20.
  b.Entered();
  b.Exited();
  EXPECT_EQ(CheckScanDiskSchedule(trace.Events(), 0), "");
}

TEST(DiskOracleTest, FcfsVariantChecksArrival) {
  TraceRecorder trace;
  OpScope a(trace, 1, "disk", 10);
  a.Arrived();
  a.Entered();
  OpScope b(trace, 2, "disk", 90);
  b.Arrived();
  OpScope c(trace, 3, "disk", 15);
  c.Arrived();
  a.Exited();
  c.Entered();  // SCAN-ish choice, but FCFS demands b (earlier arrival).
  c.Exited();
  b.Entered();
  b.Exited();
  EXPECT_NE(CheckFcfsDiskSchedule(trace.Events()), "");
  EXPECT_EQ(CheckScanDiskSchedule(trace.Events(), 0), "");
}

// --- Alarm clock -------------------------------------------------------------------------

TEST(AlarmOracleTest, AcceptsPunctualWakeups) {
  TraceRecorder trace;
  OpScope a(trace, 1, "wake", 3);
  a.Arrived();
  a.Entered(3);  // Due at t=3.
  a.Exited(3);   // Woke exactly at 3.
  EXPECT_EQ(CheckAlarmClock(trace.Events()), "");
}

TEST(AlarmOracleTest, RejectsEarlyAndLateWakeups) {
  TraceRecorder early;
  OpScope a(early, 1, "wake", 3);
  a.Arrived();
  a.Entered(3);
  a.Exited(2);
  EXPECT_NE(CheckAlarmClock(early.Events()).find("early"), std::string::npos);

  TraceRecorder late;
  OpScope b(late, 1, "wake", 3);
  b.Arrived();
  b.Entered(3);
  b.Exited(5);
  EXPECT_NE(CheckAlarmClock(late.Events()).find("overslept"), std::string::npos);
  EXPECT_EQ(CheckAlarmClock(late.Events(), /*slack=*/2), "");
}

// --- SJN -----------------------------------------------------------------------------------

TEST(SjnOracleTest, RequiresMinimumEstimateFirst) {
  TraceRecorder trace;
  OpScope a(trace, 1, "alloc", 5);
  a.Arrived();
  a.Entered();
  OpScope b(trace, 2, "alloc", 9);
  b.Arrived();
  OpScope c(trace, 3, "alloc", 2);
  c.Arrived();
  a.Exited();   // Expect the 2-estimate job.
  c.Entered();
  c.Exited();
  b.Entered();
  b.Exited();
  EXPECT_EQ(CheckSjnAllocator(trace.Events()), "");

  TraceRecorder bad;
  OpScope d(bad, 1, "alloc", 5);
  d.Arrived();
  d.Entered();
  OpScope e(bad, 2, "alloc", 9);
  e.Arrived();
  OpScope f(bad, 3, "alloc", 2);
  f.Arrived();
  d.Exited();
  e.Entered();  // 9 before 2: wrong.
  e.Exited();
  f.Entered();
  f.Exited();
  EXPECT_NE(CheckSjnAllocator(bad.Events()), "");
}

// --- Cigarette smokers -------------------------------------------------------------------

TEST(SmokersOracleTest, AcceptsMatchedAlternation) {
  TraceRecorder trace;
  FullOp(trace, 1, "place", 2);   // Missing matches: smoker 2's turn.
  FullOp(trace, 2, "smoke", 2);
  FullOp(trace, 1, "place", 0);
  FullOp(trace, 3, "smoke", 0);
  EXPECT_EQ(CheckSmokers(trace.Events()), "");
}

TEST(SmokersOracleTest, RejectsWrongSmoker) {
  TraceRecorder trace;
  FullOp(trace, 1, "place", 2);
  FullOp(trace, 2, "smoke", 1);  // Smoker holding paper took matches' pair.
  const std::string error = CheckSmokers(trace.Events());
  EXPECT_NE(error.find("wrong smoker"), std::string::npos) << error;
}

TEST(SmokersOracleTest, RejectsDoublePlacement) {
  TraceRecorder trace;
  FullOp(trace, 1, "place", 2);
  FullOp(trace, 1, "place", 1);  // Placed again before anyone smoked.
  FullOp(trace, 2, "smoke", 2);
  FullOp(trace, 3, "smoke", 1);
  const std::string error = CheckSmokers(trace.Events());
  EXPECT_NE(error.find("alternation"), std::string::npos) << error;
}

TEST(SmokersOracleTest, RejectsUnbalancedHistories) {
  TraceRecorder trace;
  FullOp(trace, 1, "place", 2);
  EXPECT_NE(CheckSmokers(trace.Events()).find("unbalanced"), std::string::npos);
}

// --- Dining philosophers ---------------------------------------------------------------

TEST(DiningOracleTest, AcceptsNonAdjacentOverlap) {
  TraceRecorder trace;
  OpScope a(trace, 1, "eat", 0);
  a.Arrived();
  a.Entered();
  OpScope b(trace, 2, "eat", 2);  // Seat 2 is not adjacent to seat 0 at a 5-seat table.
  b.Arrived();
  b.Entered();
  a.Exited();
  b.Exited();
  EXPECT_EQ(CheckDiningPhilosophers(trace.Events(), 5), "");
}

TEST(DiningOracleTest, RejectsNeighbourOverlap) {
  TraceRecorder trace;
  OpScope a(trace, 1, "eat", 0);
  a.Arrived();
  a.Entered();
  OpScope b(trace, 2, "eat", 1);  // Adjacent.
  b.Arrived();
  b.Entered();
  a.Exited();
  b.Exited();
  const std::string error = CheckDiningPhilosophers(trace.Events(), 5);
  EXPECT_NE(error.find("neighbouring"), std::string::npos) << error;
}

TEST(DiningOracleTest, WrapAroundSeatsAreNeighbours) {
  TraceRecorder trace;
  OpScope a(trace, 1, "eat", 0);
  a.Arrived();
  a.Entered();
  OpScope b(trace, 2, "eat", 4);  // Last seat wraps to seat 0.
  b.Arrived();
  b.Entered();
  a.Exited();
  b.Exited();
  EXPECT_NE(CheckDiningPhilosophers(trace.Events(), 5), "");
}

TEST(DiningOracleTest, FlagsIncompleteEats) {
  TraceRecorder trace;
  OpScope a(trace, 1, "eat", 0);
  a.Arrived();
  a.Entered();
  // Never exits (e.g. deadlock teardown truncated the run).
  const std::string error = CheckDiningPhilosophers(trace.Events(), 5);
  EXPECT_NE(error.find("did not complete"), std::string::npos) << error;
}

}  // namespace
}  // namespace syneval
