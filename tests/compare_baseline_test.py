#!/usr/bin/env python3
"""Unit tests for bench/compare_baseline.py.

Run directly (python3 tests/compare_baseline_test.py) or via ctest, which registers
this file when a Python interpreter is found at configure time. The one behavior worth
pinning hardest: a baseline row missing from the fresh run must FAIL the comparison —
a bench that silently stops reporting a metric would otherwise pass the perf gate
forever.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPT = os.path.join(REPO, "bench", "compare_baseline.py")


def row(metric, value, unit="s", bench="b", mechanism="m", problem="p"):
    return {"bench": bench, "mechanism": mechanism, "problem": problem,
            "metric": metric, "value": value, "unit": unit}


def run_compare(baseline_rows, fresh_rows, extra_args=()):
    with tempfile.TemporaryDirectory() as tmp:
        baseline = os.path.join(tmp, "baseline.json")
        fresh = os.path.join(tmp, "fresh.json")
        with open(baseline, "w") as f:
            json.dump({"schema_version": 1, "rows": baseline_rows}, f)
        with open(fresh, "w") as f:
            json.dump({"schema_version": 3, "bench": "b", "results": fresh_rows}, f)
        proc = subprocess.run(
            [sys.executable, SCRIPT, "--baseline", baseline, *extra_args, fresh],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout


class CompareBaselineTest(unittest.TestCase):
    def test_identical_rows_pass(self):
        code, out = run_compare([row("wall", 1.0)], [row("wall", 1.0)])
        self.assertEqual(code, 0, out)
        self.assertIn("1 stable", out)

    def test_regression_beyond_band_fails(self):
        code, out = run_compare([row("wall", 1.0)], [row("wall", 1.5)])
        self.assertEqual(code, 1, out)
        self.assertIn("Regressions", out)

    def test_improvement_never_fails(self):
        code, out = run_compare([row("wall", 1.0)], [row("wall", 0.5)])
        self.assertEqual(code, 0, out)
        self.assertIn("Improvements", out)

    def test_within_band_passes(self):
        code, out = run_compare([row("wall", 1.0)], [row("wall", 1.2)])
        self.assertEqual(code, 0, out)

    def test_absolute_floor_swallows_small_ns_jitter(self):
        # 100ns -> 250ns is +150%, but under the 200ns absolute floor for "ns".
        code, out = run_compare([row("op", 100.0, unit="ns")],
                                [row("op", 250.0, unit="ns")])
        self.assertEqual(code, 0, out)

    def test_missing_baseline_row_is_a_regression(self):
        code, out = run_compare(
            [row("wall", 1.0), row("steps", 10.0, unit="steps")],
            [row("wall", 1.0)])
        self.assertEqual(code, 1, out)
        self.assertIn("Missing rows", out)
        self.assertIn("1 missing", out)

    def test_new_fresh_row_does_not_fail(self):
        code, out = run_compare(
            [row("wall", 1.0)],
            [row("wall", 1.0), row("extra", 5.0)])
        self.assertEqual(code, 0, out)
        self.assertIn("New rows", out)

    def test_volatile_metrics_are_ignored_on_both_sides(self):
        # "jobs" is a configuration echo: present only in the baseline, it must not
        # count as missing; present only in fresh, not as new.
        code, out = run_compare(
            [row("wall", 1.0), row("jobs", 4.0, unit="steps")],
            [row("wall", 1.0), row("speedup", 3.0, unit="steps")])
        self.assertEqual(code, 0, out)
        self.assertIn("0 missing", out)
        self.assertIn("0 new", out)

    def test_write_baseline_round_trips(self):
        with tempfile.TemporaryDirectory() as tmp:
            fresh = os.path.join(tmp, "fresh.json")
            baseline = os.path.join(tmp, "baseline.json")
            with open(fresh, "w") as f:
                json.dump({"rows": [row("wall", 1.0)]}, f)
            write = subprocess.run(
                [sys.executable, SCRIPT, "--write-baseline", baseline, fresh],
                capture_output=True, text=True)
            self.assertEqual(write.returncode, 0, write.stdout + write.stderr)
            compare = subprocess.run(
                [sys.executable, SCRIPT, "--baseline", baseline, fresh],
                capture_output=True, text=True)
            self.assertEqual(compare.returncode, 0, compare.stdout)
            self.assertIn("1 stable", compare.stdout)


if __name__ == "__main__":
    unittest.main()
