// Tests for the fault-injection layer: plan parsing, injector determinism, deadline
// helpers, RtCondVar::WaitFor under both runtimes, end-to-end injected faults under
// DetRuntime (dropped signals, spurious wakeups, stalls, kills), recovery policies,
// the teardown-abort detector guard, the jittered OS watchdog, and the chaos sweep's
// calibration arithmetic.

#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "syneval/anomaly/detector.h"
#include "syneval/fault/chaos.h"
#include "syneval/fault/fault.h"
#include "syneval/fault/injector.h"
#include "syneval/fault/recovery.h"
#include "syneval/ccr/critical_region.h"
#include "syneval/runtime/deadline.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/explore.h"
#include "syneval/runtime/os_runtime.h"
#include "syneval/runtime/schedule.h"
#include "syneval/sync/semaphore.h"
#include "syneval/telemetry/metrics.h"
#include "syneval/telemetry/tracer.h"
#include "syneval/trace/recorder.h"

namespace syneval {
namespace {

// ---- Plan parsing ----------------------------------------------------------------------

TEST(FaultPlan, ParsesGrammarAndRoundTrips) {
  const FaultPlan plan =
      MustParseFaultPlan("drop-signal:nth=2;stall:nth=1,steps=500;kill-thread:prob=0.25,fires=3",
                         /*seed=*/7);
  ASSERT_EQ(plan.specs.size(), 3u);
  EXPECT_EQ(plan.seed, 7u);

  EXPECT_EQ(plan.specs[0].kind, FaultKind::kDropSignal);
  EXPECT_EQ(plan.specs[0].trigger.nth, 2u);
  EXPECT_EQ(plan.specs[0].site_mask,
            SiteBit(FaultSite::kNotifyOne) | SiteBit(FaultSite::kNotifyAll));

  EXPECT_EQ(plan.specs[1].kind, FaultKind::kStall);
  EXPECT_EQ(plan.specs[1].steps, 500u);
  EXPECT_EQ(plan.specs[1].site_mask, SiteBit(FaultSite::kLockPost));

  EXPECT_EQ(plan.specs[2].kind, FaultKind::kKillThread);
  EXPECT_DOUBLE_EQ(plan.specs[2].trigger.probability, 0.25);
  EXPECT_EQ(plan.specs[2].max_fires, 3);

  // ToString re-renders in the grammar; re-parsing yields the same plan.
  const FaultPlan reparsed = MustParseFaultPlan(plan.ToString(), plan.seed);
  EXPECT_EQ(reparsed.ToString(), plan.ToString());
}

TEST(FaultPlan, NotifyFlavourTokensNarrowTheSiteMask) {
  EXPECT_EQ(MustParseFaultPlan("drop-notify:nth=1", 1).specs[0].site_mask,
            SiteBit(FaultSite::kNotifyOne));
  EXPECT_EQ(MustParseFaultPlan("drop-broadcast:nth=1", 1).specs[0].site_mask,
            SiteBit(FaultSite::kNotifyAll));
}

TEST(FaultPlan, RejectsMalformedInput) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(ParseFaultPlan("explode:nth=1", 1, &plan, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseFaultPlan("drop-signal:nth=1,prob=0.5", 1, &plan, &error));
  EXPECT_FALSE(ParseFaultPlan("stall:steps=", 1, &plan, &error));
  EXPECT_FALSE(ParseFaultPlan("drop-signal:prob=1.5", 1, &plan, &error));
}

// ---- Injector determinism --------------------------------------------------------------

TEST(FaultInjectorTest, ProbabilityTriggersReplayExactly) {
  const FaultPlan plan = MustParseFaultPlan("drop-signal:prob=0.3,fires=0", /*seed=*/42);
  auto fire_pattern = [&plan] {
    FaultInjector injector(plan);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(static_cast<bool>(
          injector.Decide(FaultSite::kNotifyOne, /*thread=*/1, /*now_nanos=*/i)));
    }
    return fired;
  };
  const std::vector<bool> first = fire_pattern();
  EXPECT_EQ(first, fire_pattern());
  // A different plan seed draws a different pattern (with overwhelming probability).
  FaultPlan reseeded = plan;
  reseeded.seed = 43;
  FaultInjector other(reseeded);
  std::vector<bool> different;
  for (int i = 0; i < 200; ++i) {
    different.push_back(static_cast<bool>(other.Decide(FaultSite::kNotifyOne, 1, i)));
  }
  EXPECT_NE(first, different);
}

TEST(FaultInjectorTest, NthTriggerCountsOnlyMatchingSites) {
  FaultInjector injector(MustParseFaultPlan("drop-notify:nth=2", 1));
  // kNotifyAll and kWait visits must not advance a drop-notify spec's counter.
  EXPECT_FALSE(injector.Decide(FaultSite::kNotifyAll, 1, 0));
  EXPECT_FALSE(injector.Decide(FaultSite::kWait, 1, 1));
  EXPECT_FALSE(injector.Decide(FaultSite::kNotifyOne, 1, 2));  // Occurrence 1.
  EXPECT_TRUE(injector.Decide(FaultSite::kNotifyOne, 1, 3));   // Occurrence 2: fires.
  EXPECT_FALSE(injector.Decide(FaultSite::kNotifyOne, 1, 4));  // max_fires=1 exhausted.
  EXPECT_EQ(injector.injected_count(), 1);
  EXPECT_EQ(injector.injected()[0].site, FaultSite::kNotifyOne);
  EXPECT_EQ(injector.first_injection_nanos(), 3u);
}

// ---- Deadline helper -------------------------------------------------------------------

TEST(DeadlineTest, ExpiresAfterItsDuration) {
  const Deadline deadline = Deadline::AfterNanos(1'000'000);  // 1 ms.
  EXPECT_FALSE(deadline.Expired());
  EXPECT_GT(deadline.Remaining().count(), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(deadline.Expired());
  EXPECT_EQ(deadline.Remaining().count(), 0);
}

TEST(DeadlineTest, JitterPeriodStaysWithinFractionAndVaries) {
  std::mt19937_64 rng(123);
  const std::chrono::nanoseconds period(10'000'000);
  bool saw_distinct = false;
  std::chrono::nanoseconds previous(0);
  for (int i = 0; i < 200; ++i) {
    const std::chrono::nanoseconds jittered = JitterPeriod(period, 0.2, rng);
    EXPECT_GE(jittered.count(), 8'000'000);
    EXPECT_LE(jittered.count(), 12'000'000);
    if (i > 0 && jittered != previous) {
      saw_distinct = true;
    }
    previous = jittered;
  }
  EXPECT_TRUE(saw_distinct);
  // Zero fraction (or a zero period) disables jitter; positive periods clamp at 1 ns.
  EXPECT_EQ(JitterPeriod(period, 0.0, rng), period);
  EXPECT_EQ(JitterPeriod(std::chrono::nanoseconds(0), 0.5, rng).count(), 0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_GE(JitterPeriod(std::chrono::nanoseconds(1), 0.99, rng).count(), 1);
  }
}

// ---- WaitFor under DetRuntime ----------------------------------------------------------

TEST(DetWaitFor, TimeoutJumpsVirtualTimeAndReturnsFalse) {
  DetRuntime rt(MakeRandomSchedule(1));
  auto mu = rt.CreateMutex();
  auto cv = rt.CreateCondVar();
  bool timed_out = false;
  auto waiter = rt.StartThread("waiter", [&] {
    RtLock lock(*mu);
    // Nobody ever signals: only the 5000 ns (5-step) deadline can unblock this.
    timed_out = !cv->WaitFor(*mu, 5'000);
  });
  const DetRuntime::RunResult result = rt.Run();
  EXPECT_TRUE(result.completed) << result.report;
  EXPECT_TRUE(timed_out);
}

TEST(DetWaitFor, NotifyBeforeDeadlineReturnsTrue) {
  DetRuntime rt(MakeRandomSchedule(1));
  auto mu = rt.CreateMutex();
  auto cv = rt.CreateCondVar();
  bool ready = false;
  bool notified_in_time = false;
  auto waiter = rt.StartThread("waiter", [&] {
    RtLock lock(*mu);
    while (!ready) {
      // Generous deadline: the signaller below always beats 10^6 steps.
      if (!cv->WaitFor(*mu, 1'000'000'000)) {
        return;
      }
    }
    notified_in_time = true;
  });
  auto signaller = rt.StartThread("signaller", [&] {
    RtLock lock(*mu);
    ready = true;
    cv->NotifyOne();
  });
  const DetRuntime::RunResult result = rt.Run();
  EXPECT_TRUE(result.completed) << result.report;
  EXPECT_TRUE(notified_in_time);
}

// The canonical timed-wait race: a signaller that dawdles a schedule-dependent number
// of steps against a waiter with a fixed deadline. Same seed must produce the same
// winner every time (DetRuntime determinism), and the seed range must exercise BOTH
// winners (otherwise the test proves nothing about the race).
std::string TimedRaceWinner(std::uint64_t seed) {
  DetRuntime rt(MakeRandomSchedule(seed));
  auto mu = rt.CreateMutex();
  auto cv = rt.CreateCondVar();
  bool ready = false;
  std::string winner;
  auto waiter = rt.StartThread("waiter", [&] {
    RtLock lock(*mu);
    while (!ready) {
      if (!cv->WaitFor(*mu, 6'000)) {  // 6 virtual steps.
        winner = "timeout";
        return;
      }
    }
    winner = "notify";
  });
  auto signaller = rt.StartThread("signaller", [&] {
    // Dawdle a seed-dependent number of steps so the 6-step deadline wins on some
    // seeds and the notify on others — with the winner still a pure function of seed.
    for (std::uint64_t i = 0; i < seed % 12; ++i) {
      rt.Yield();
    }
    RtLock lock(*mu);
    ready = true;
    cv->NotifyAll();
  });
  const DetRuntime::RunResult result = rt.Run();
  EXPECT_TRUE(result.completed) << "seed " << seed << ": " << result.report;
  return winner;
}

TEST(DetWaitFor, TimeoutVersusNotifyRaceIsDeterministicPerSeed) {
  int timeouts = 0;
  int notifies = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const std::string first = TimedRaceWinner(seed);
    EXPECT_EQ(first, TimedRaceWinner(seed)) << "seed " << seed << " not deterministic";
    if (first == "timeout") {
      ++timeouts;
    } else if (first == "notify") {
      ++notifies;
    }
  }
  EXPECT_EQ(timeouts + notifies, 40);
  EXPECT_GT(timeouts, 0) << "race never timed out: deadline too generous to test";
  EXPECT_GT(notifies, 0) << "race never got notified: deadline too tight to test";
}

// ---- WaitFor under OsRuntime (TSan-clean by construction) ------------------------------

TEST(OsWaitFor, TimeoutExpiresAndNotifyArrives) {
  OsRuntime rt;
  auto mu = rt.CreateMutex();
  auto cv = rt.CreateCondVar();
  bool ready = false;
  bool saw_timeout = false;
  bool saw_ready = false;
  auto waiter = rt.StartThread("waiter", [&] {
    RtLock lock(*mu);
    // Phase 1: nobody signals for 2 ms — at least one deadline must expire.
    while (!ready) {
      if (!cv->WaitFor(*mu, 2'000'000)) {
        saw_timeout = true;
        break;
      }
    }
    // Phase 2: wait (with a generous deadline) until the signaller flips `ready`.
    while (!ready) {
      cv->WaitFor(*mu, 1'000'000'000);
    }
    saw_ready = true;
  });
  auto signaller = rt.StartThread("signaller", [&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    RtLock lock(*mu);
    ready = true;
    cv->NotifyAll();
  });
  waiter->Join();
  signaller->Join();
  EXPECT_TRUE(saw_timeout);
  EXPECT_TRUE(saw_ready);
}

// ---- End-to-end injected faults under DetRuntime ---------------------------------------

// One producer flips a flag and signals once; one consumer waits for the flag. The
// minimal protocol whose single signal is load-bearing.
struct OneShotProtocol {
  DetRuntime rt;
  std::unique_ptr<RtMutex> mu;
  std::unique_ptr<RtCondVar> cv;
  bool flag = false;
  bool consumer_done = false;

  explicit OneShotProtocol(std::uint64_t seed) : rt(MakeRandomSchedule(seed)) {}
  OneShotProtocol(std::uint64_t seed, DetRuntime::Options options)
      : rt(MakeRandomSchedule(seed), options) {}

  DetRuntime::RunResult Run() {
    mu = rt.CreateMutex();
    cv = rt.CreateCondVar();
    auto consumer = rt.StartThread("consumer", [this] {
      RtLock lock(*mu);
      while (!flag) {
        cv->Wait(*mu);
      }
      consumer_done = true;
    });
    auto producer = rt.StartThread("producer", [this] {
      for (int i = 0; i < 8; ++i) {
        rt.Yield();  // Let the consumer park: the signal must be load-bearing.
      }
      RtLock lock(*mu);
      flag = true;
      cv->NotifyOne();
    });
    return rt.Run();
  }
};

TEST(FaultInjection, DroppedSignalStrandsWaiterAndDetectorFlagsIt) {
  OneShotProtocol protocol(/*seed=*/3);
  AnomalyDetector detector;
  protocol.rt.AttachAnomalyDetector(&detector);
  FaultInjector injector(MustParseFaultPlan("drop-signal:nth=1", 1));
  protocol.rt.AttachFaultInjector(&injector);

  const DetRuntime::RunResult result = protocol.Run();
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.deadlocked) << result.report;
  EXPECT_FALSE(protocol.consumer_done);
  EXPECT_EQ(injector.CountOf(FaultKind::kDropSignal), 1);
  EXPECT_GT(detector.counts().total(), 0) << "detector missed an injected lost signal";
}

TEST(FaultInjection, SpuriousWakeupIsAbsorbedAndNamedInTheTrace) {
  OneShotProtocol protocol(/*seed=*/3);
  TelemetryTracer tracer;
  protocol.rt.AttachTracer(&tracer);
  FaultInjector injector(MustParseFaultPlan("spurious-wakeup:nth=1", 1));
  protocol.rt.AttachFaultInjector(&injector);

  const DetRuntime::RunResult result = protocol.Run();
  EXPECT_TRUE(result.completed) << result.report;
  EXPECT_TRUE(protocol.consumer_done);
  EXPECT_EQ(injector.CountOf(FaultKind::kSpuriousWakeup), 1);
#if SYNEVAL_TELEMETRY_ENABLED
  bool traced = false;
  for (const TelemetryTracer::Record& record : tracer.Snapshot()) {
    if (record.type == TelemetryTracer::RecordType::kInstant &&
        record.name == "fault.spurious-wakeup") {
      traced = true;
    }
  }
  EXPECT_TRUE(traced) << "injected fault not visible as a named trace event";
#endif
}

TEST(FaultInjection, KillAfterAcquireLeavesMutexHeldForever) {
  // The first Lock() consults kLockPre (occurrence 1) then kLockPost (occurrence 2):
  // nth=2 kills the first locker at the instant it owns the mutex.
  DetRuntime rt(MakeRandomSchedule(5));
  AnomalyDetector detector;
  rt.AttachAnomalyDetector(&detector);
  FaultInjector injector(MustParseFaultPlan("kill-thread:nth=2", 1));
  rt.AttachFaultInjector(&injector);

  auto mu = rt.CreateMutex();
  bool second_entered = false;
  auto first = rt.StartThread("first", [&] {
    mu->Lock();  // Killed here, holding the mutex (no RAII guard exists yet).
    mu->Unlock();
  });
  auto second = rt.StartThread("second", [&] {
    for (int i = 0; i < 3; ++i) {
      rt.Yield();  // Let "first" die first.
    }
    RtLock lock(*mu);
    second_entered = true;
  });
  const DetRuntime::RunResult result = rt.Run();
  EXPECT_FALSE(result.completed);
  EXPECT_FALSE(second_entered);
  EXPECT_EQ(injector.CountOf(FaultKind::kKillThread), 1);
  EXPECT_GT(detector.counts().total(), 0);
}

TEST(FaultInjection, StallBeyondStepBudgetIsDiagnosedAtTheLimit) {
  DetRuntime::Options options;
  options.max_steps = 500;
  options.diagnose_on_step_limit = true;
  DetRuntime rt(MakeRandomSchedule(2), options);
  AnomalyDetector detector;
  rt.AttachAnomalyDetector(&detector);
  FaultInjector injector(MustParseFaultPlan("stall:nth=1,steps=100000", 1));
  rt.AttachFaultInjector(&injector);

  auto mu = rt.CreateMutex();
  auto worker = [&] {
    for (int i = 0; i < 10; ++i) {
      RtLock lock(*mu);
      rt.Yield();
    }
  };
  auto a = rt.StartThread("a", worker);
  auto b = rt.StartThread("b", worker);
  const DetRuntime::RunResult result = rt.Run();
  EXPECT_TRUE(result.step_limit) << result.report;
  EXPECT_EQ(injector.CountOf(FaultKind::kStall), 1);
  EXPECT_GT(detector.counts().total(), 0)
      << "step-limit diagnosis missed the peer starved by the stalled holder";
}

TEST(FaultInjection, DelayLockOnlyPostponesAndRunsComplete) {
  DetRuntime rt(MakeRandomSchedule(4));
  FaultInjector injector(MustParseFaultPlan("delay-lock:nth=1,steps=50", 1));
  rt.AttachFaultInjector(&injector);
  auto mu = rt.CreateMutex();
  int entries = 0;
  auto worker = [&] {
    RtLock lock(*mu);
    ++entries;
  };
  auto a = rt.StartThread("a", worker);
  auto b = rt.StartThread("b", worker);
  const DetRuntime::RunResult result = rt.Run();
  EXPECT_TRUE(result.completed) << result.report;
  EXPECT_EQ(entries, 2);
  EXPECT_EQ(injector.CountOf(FaultKind::kDelayLock), 1);
}

// ---- Teardown-abort regression ---------------------------------------------------------

// When a deadlocked run is torn down, the runtime aborts every surviving thread; their
// unwinding releases locks and finishes threads *after* diagnosis. SetAborting gates
// the detector during that teardown: the diagnosis must be identical to what
// DiagnoseStuck found, not inflated by teardown-time hook traffic.
TEST(FaultInjection, TeardownAbortDoesNotInflateTheDiagnosis) {
  AnomalyCounts at_diagnosis;
  AnomalyDetector detector;
  {
    OneShotProtocol protocol(/*seed=*/9);
    protocol.rt.AttachAnomalyDetector(&detector);
    FaultInjector injector(MustParseFaultPlan("drop-signal:nth=1", 1));
    protocol.rt.AttachFaultInjector(&injector);
    const DetRuntime::RunResult result = protocol.Run();
    ASSERT_TRUE(result.deadlocked) << result.report;
    at_diagnosis = detector.counts();
    ASSERT_GT(at_diagnosis.total(), 0);
    // Destroying the runtime here aborts and joins the stranded consumer; its unwind
    // releases the protocol mutex and fires OnThreadFinish while it is (to the
    // detector) still a waiter.
  }
  const AnomalyCounts after_teardown = detector.counts();
  EXPECT_EQ(after_teardown.total(), at_diagnosis.total())
      << "teardown-time hooks were double-counted as anomalies";
}

// ---- Recovery policies -----------------------------------------------------------------

TEST(Recovery, TimedWaitRescuesSemaphoreFromADroppedNotify) {
  int completed = 0;
  std::uint64_t total_rescues = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    DetRuntime rt(MakeRandomSchedule(seed));
    FaultInjector injector(MustParseFaultPlan("drop-notify:nth=1", 1));
    rt.AttachFaultInjector(&injector);
    CountingSemaphore sem(rt, 0);
    RecoveryStats stats;
    RecoveryPolicy policy;
    policy.timeout_nanos = 20'000;  // 20 virtual steps.
    sem.EnableRecovery(&stats, policy);
    auto consumer = rt.StartThread("consumer", [&] { sem.P(); });
    auto producer = rt.StartThread("producer", [&] {
      for (int i = 0; i < 5; ++i) {
        rt.Yield();  // Give the consumer time to park before the V whose notify drops.
      }
      sem.V();
    });
    const DetRuntime::RunResult result = rt.Run();
    EXPECT_TRUE(result.completed) << "seed " << seed << ": " << result.report;
    completed += result.completed ? 1 : 0;
    total_rescues += stats.rescues.load();
    EXPECT_EQ(stats.genuine_hangs.load(), 0u) << "seed " << seed;
  }
  EXPECT_EQ(completed, 10);
  EXPECT_GT(total_rescues, 0u)
      << "no schedule exercised the rescue path: the dropped notify never stranded P()";
}

TEST(Recovery, CriticalRegionRescuedFromADroppedBroadcast) {
  int completed = 0;
  std::uint64_t total_rescues = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    DetRuntime rt(MakeRandomSchedule(seed));
    FaultInjector injector(MustParseFaultPlan("drop-broadcast:nth=1", 1));
    rt.AttachFaultInjector(&injector);
    CriticalRegion region(rt);
    RecoveryStats stats;
    RecoveryPolicy policy;
    policy.timeout_nanos = 20'000;
    region.EnableRecovery(&stats, policy);
    bool item = false;
    auto consumer = rt.StartThread("consumer", [&] {
      region.When([&] { return item; }, [&] { item = false; });
    });
    auto producer = rt.StartThread("producer", [&] {
      for (int i = 0; i < 5; ++i) {
        rt.Yield();
      }
      region.Enter([&] { item = true; });  // Exit grants the waiter; broadcast drops.
    });
    const DetRuntime::RunResult result = rt.Run();
    EXPECT_TRUE(result.completed) << "seed " << seed << ": " << result.report;
    completed += result.completed ? 1 : 0;
    total_rescues += stats.rescues.load();
  }
  EXPECT_EQ(completed, 10);
  EXPECT_GT(total_rescues, 0u);
}

// Without recovery, the same dropped notify is a permanent hang — the control arm.
TEST(Recovery, WithoutRecoveryTheSameFaultDeadlocks) {
  int deadlocked = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    DetRuntime rt(MakeRandomSchedule(seed));
    FaultInjector injector(MustParseFaultPlan("drop-notify:nth=1", 1));
    rt.AttachFaultInjector(&injector);
    CountingSemaphore sem(rt, 0);
    auto consumer = rt.StartThread("consumer", [&] { sem.P(); });
    auto producer = rt.StartThread("producer", [&] {
      for (int i = 0; i < 5; ++i) {
        rt.Yield();
      }
      sem.V();
    });
    const DetRuntime::RunResult result = rt.Run();
    deadlocked += result.deadlocked ? 1 : 0;
  }
  EXPECT_GT(deadlocked, 0)
      << "the dropped notify never hurt: the recovery tests above prove nothing";
}

// ---- Jittered OS watchdog --------------------------------------------------------------

TEST(Watchdog, JitteredPeriodIsExportedAndBounded) {
  OsRuntime rt;
  AnomalyDetector detector;
  rt.AttachAnomalyDetector(&detector);
#if SYNEVAL_TELEMETRY_ENABLED
  MetricsRegistry metrics;
  rt.AttachMetrics(&metrics);
#endif
  OsRuntime::WatchdogOptions options;
  options.period = std::chrono::milliseconds(5);
  options.jitter_fraction = 0.2;
  rt.StartAnomalyWatchdog(options);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  rt.StopAnomalyWatchdog();
#if SYNEVAL_TELEMETRY_ENABLED
  const std::int64_t period_ms = metrics.GetGauge("anomaly/watchdog_period_ms").Value();
  EXPECT_GE(period_ms, 4);  // 5 ms ± 20%.
  EXPECT_LE(period_ms, 6);
#endif
}

// ---- Chaos sweep calibration -----------------------------------------------------------

TEST(ChaosSweepTest, BoundedBufferLostSignalHasPerfectRecallAndNoFalsePositives) {
  const std::vector<ChaosCase> suite = BuildChaosSuite();
  const ChaosCase* monitor_buffer = nullptr;
  for (const ChaosCase& chaos_case : suite) {
    if (chaos_case.problem == "bounded-buffer" && chaos_case.mechanism == Mechanism::kMonitor) {
      monitor_buffer = &chaos_case;
    }
  }
  ASSERT_NE(monitor_buffer, nullptr);
  const FaultPlan plan = MustParseFaultPlan("drop-signal:prob=0.25,fires=2", /*seed=*/1);
  const ChaosSweepOutcome outcome = SweepChaos(6, monitor_buffer->trial, plan);
  EXPECT_EQ(outcome.runs, 6);
  EXPECT_GT(outcome.harmful, 0) << "no schedule was hurt: the plan is too weak to calibrate";
  EXPECT_DOUBLE_EQ(outcome.Recall(), 1.0)
      << "missed seeds:" << ::testing::PrintToString(outcome.missed_seeds);
  EXPECT_EQ(outcome.clean_anomalies, 0)
      << "false-positive seeds:" << ::testing::PrintToString(outcome.fp_seeds);
  EXPECT_EQ(outcome.clean_failures, 0);
}

TEST(ChaosSweepTest, VacuousSweepReportsSentinelMetrics) {
  // A trial that never gets hurt: no faults fire (empty plan), so recall and
  // steps-to-detection are vacuous, not zero.
  const ChaosSweepOutcome outcome = SweepChaos(
      3,
      [](std::uint64_t, const FaultPlan*) {
        ChaosTrialOutcome out;
        out.completed = true;
        return out;
      },
      FaultPlan{});
  EXPECT_EQ(outcome.harmful, 0);
  EXPECT_DOUBLE_EQ(outcome.Recall(), -1.0);
  EXPECT_DOUBLE_EQ(outcome.MeanStepsToDetection(), -1.0);
  EXPECT_DOUBLE_EQ(outcome.FalsePositiveRate(), 0.0);
}

}  // namespace
}  // namespace syneval
