// Experiment E1: the paper's footnote 3. The Figure 1 path-expression solution claims
// readers priority but can admit a second writer ahead of an earlier-waiting reader.
// We reproduce the anomaly by schedule search and verify that the corrected solutions
// (monitor, serializer, predicate paths) never exhibit it under the same workloads.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "syneval/core/conformance.h"
#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/explore.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/solutions/serializer_solutions.h"

namespace syneval {
namespace {

// The adversarial shape from the footnote: one long-ish writer stream plus readers, so
// that a reader frequently arrives while a write is in progress and a second writer
// is queued.
RwWorkloadParams AnomalyWorkload() {
  RwWorkloadParams params;
  params.readers = 2;
  params.writers = 2;
  params.ops_per_reader = 3;
  params.ops_per_writer = 3;
  params.write_work = 4;
  params.read_work = 2;
  params.think_work = 1;
  return params;
}

template <typename Solution>
SweepOutcome SweepReadersPriority(int seeds) {
  return SweepSchedules(seeds, [](std::uint64_t seed) -> std::string {
    DetRuntime rt(MakeRandomSchedule(seed));
    TraceRecorder trace;
    Solution rw(rt);
    ThreadList threads = SpawnReadersWritersWorkload(rt, rw, trace, AnomalyWorkload());
    const DetRuntime::RunResult result = rt.Run();
    if (!result.completed) {
      return "runtime: " + result.report;
    }
    return CheckReadersWriters(trace.Events(), RwPolicy::kReadersPriority);
  });
}

TEST(Figure1AnomalyTest, DirectedScenarioViolatesReadersPriorityOnEverySchedule) {
  // The footnote-3 interleaving, forced deterministically: writer1 writing, writer2
  // blocked at openwrite holding requestwrite, a reader blocked at requestread. At
  // writer1's release, Figure 1 admits writer2 over the waiting reader — under every
  // schedule seed.
  const SweepOutcome outcome = SweepSchedules(10, RunFigure1AnomalyScenario);
  EXPECT_EQ(outcome.failures, outcome.runs) << outcome.Summary();
  EXPECT_NE(outcome.first_failure.find("readers-priority violated"), std::string::npos)
      << outcome.first_failure;
}

TEST(Figure1AnomalyTest, DirectedScenarioIsReplayable) {
  const std::string first = RunFigure1AnomalyScenario(7);
  const std::string second = RunFigure1AnomalyScenario(7);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Figure1AnomalyTest, MonitorSolutionIsClean) {
  const SweepOutcome outcome = SweepReadersPriority<MonitorRwReadersPriority>(40);
  EXPECT_EQ(outcome.failures, 0) << outcome.Summary();
}

TEST(Figure1AnomalyTest, SerializerSolutionIsClean) {
  const SweepOutcome outcome = SweepReadersPriority<SerializerRwReadersPriority>(40);
  EXPECT_EQ(outcome.failures, 0) << outcome.Summary();
}

TEST(Figure1AnomalyTest, PredicatePathSolutionIsClean) {
  const SweepOutcome outcome = SweepReadersPriority<PathExprRwPredicates>(40);
  EXPECT_EQ(outcome.failures, 0) << outcome.Summary();
}

TEST(Figure1AnomalyTest, Figure1StillProvidesExclusion) {
  // The anomaly is a priority failure, not an exclusion failure: writers always
  // exclude, so the *exclusion* constraint of Figure 1 holds on every schedule.
  const SweepOutcome outcome = SweepSchedules(40, [](std::uint64_t seed) -> std::string {
    DetRuntime rt(MakeRandomSchedule(seed));
    TraceRecorder trace;
    PathExprRwFigure1 rw(rt);
    ThreadList threads = SpawnReadersWritersWorkload(rt, rw, trace, AnomalyWorkload());
    const DetRuntime::RunResult result = rt.Run();
    if (!result.completed) {
      return "runtime: " + result.report;
    }
    return CheckExclusion(GroupExecutions(trace.Events()), {"write"}, {});
  });
  EXPECT_EQ(outcome.failures, 0) << outcome.Summary();
}

}  // namespace
}  // namespace syneval
