// Trial supervisor (runtime/supervisor.h): hung-trial reaping under a wall-clock
// deadline, crash capture, retry/quarantine policy, and the acceptance-criterion
// scenario — a sweep with a permanently-hung cell and a crashing cell still completes
// with every healthy cell's outcome bit-identical to a clean run.
//
// The reaper tests run real OsRuntime threads and are kept in the tier-1 (fast) set
// deliberately: they must stay TSan-clean, so the sanitizer CI configs exercise the
// reaper/trial races. Only the fork()-sandbox tests are gated off sanitized builds.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "syneval/runtime/os_runtime.h"
#include "syneval/runtime/supervisor.h"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define SYNEVAL_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SYNEVAL_SANITIZED 1
#endif
#endif

namespace syneval {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// A body that parks the driving thread on a never-signalled condvar until the reaper
// force-unwinds it (TrialAborted propagates out of Wait and out of the body).
std::string HangForever(OsRuntime& rt) {
  std::unique_ptr<RtMutex> mu = rt.CreateMutex();
  std::unique_ptr<RtCondVar> cv = rt.CreateCondVar();
  std::unique_lock<RtMutex> lock(*mu);
  while (true) {
    cv->Wait(*mu);
  }
}

// A hang with managed threads parked too: the reaper must unwind all of them, and
// JoinAll-style cleanup must not deadlock during the abort.
std::string HangWithWorkers(OsRuntime& rt) {
  std::unique_ptr<RtMutex> mu = rt.CreateMutex();
  std::unique_ptr<RtCondVar> cv = rt.CreateCondVar();
  std::vector<std::unique_ptr<RtThread>> threads;
  for (int i = 0; i < 3; ++i) {
    threads.push_back(rt.StartThread("parked" + std::to_string(i), [&] {
      std::unique_lock<RtMutex> lock(*mu);
      while (true) {
        cv->Wait(*mu);
      }
    }));
  }
  for (auto& thread : threads) {
    thread->Join();  // Never returns normally; unwinds when the reaper aborts.
  }
  return "";
}

SupervisorOptions FastOptions() {
  SupervisorOptions options;
  options.trial_deadline = milliseconds(150);
  options.max_attempts = 1;
  options.retry_backoff = milliseconds(1);
  return options;
}

// ---- Gauge ----------------------------------------------------------------------------

TEST(ActiveTrialsTest, GaugeCountsScopesAndNeverReadsZero) {
  EXPECT_GE(ActiveTrials(), 1);
  const int base = ActiveTrials();
  {
    ActiveTrialScope one;
    ActiveTrialScope two;
    EXPECT_GE(ActiveTrials(), base + 1);
  }
  EXPECT_EQ(ActiveTrials(), base);
}

// ---- Reaping --------------------------------------------------------------------------

TEST(SupervisorTest, HungTrialIsReapedWithinDeadline) {
  const auto start = steady_clock::now();
  const SupervisedTrialResult result =
      RunSupervisedTrial(MakeSupervisableOsTrial(HangForever), FastOptions());
  const auto elapsed = steady_clock::now() - start;
  EXPECT_TRUE(result.reaped);
  EXPECT_FALSE(result.crashed);
  EXPECT_TRUE(result.Catastrophic());
  EXPECT_NE(result.report.message.find("reaped"), std::string::npos)
      << result.report.message;
  // Reaped well within an order of magnitude of the deadline (slack for slow CI).
  EXPECT_LT(elapsed, milliseconds(5000));
}

TEST(SupervisorTest, HungManagedThreadsAreUnwoundToo) {
  const SupervisedTrialResult result =
      RunSupervisedTrial(MakeSupervisableOsTrial(HangWithWorkers), FastOptions());
  EXPECT_TRUE(result.reaped);
  EXPECT_NE(result.report.message.find("deadline"), std::string::npos);
}

TEST(SupervisorTest, ReapedTrialCarriesALivePostmortem) {
  const SupervisedTrialResult result =
      RunSupervisedTrial(MakeSupervisableOsTrial(HangForever), FastOptions());
  ASSERT_TRUE(result.reaped);
  // The reaper captured observe() just before aborting: the detector had a parked
  // waiter to report, so the postmortem names the stuck wait.
  EXPECT_EQ(result.report.postmortem_cause, "stuck-waiter") << result.report.postmortem;
  EXPECT_NE(result.report.postmortem.find("stuck"), std::string::npos);
}

TEST(SupervisorTest, HealthyTrialIsUntouchedByTheDeadline) {
  const SupervisedTrialResult result = RunSupervisedTrial(
      MakeSupervisableOsTrial([](OsRuntime&) { return std::string(); }), FastOptions());
  EXPECT_FALSE(result.reaped);
  EXPECT_FALSE(result.crashed);
  EXPECT_TRUE(result.report.Passed());
}

TEST(SupervisorTest, ZeroDeadlineDisablesReaping) {
  // With no deadline the trial must complete on its own; use a body that finishes.
  SupervisorOptions options;
  options.trial_deadline = milliseconds(0);
  const SupervisedTrialResult result = RunSupervisedTrial(
      MakeSupervisableOsTrial([](OsRuntime&) { return std::string("verdict"); }),
      options);
  EXPECT_FALSE(result.reaped);
  EXPECT_EQ(result.report.message, "verdict");
}

// ---- Crash capture --------------------------------------------------------------------

TEST(SupervisorTest, EscapingExceptionBecomesStructuredCrash) {
  const SupervisedTrialResult result = RunSupervisedTrial(
      MakeSupervisableOsTrial([](OsRuntime&) -> std::string {
        throw std::runtime_error("synthetic defect in trial body");
      }),
      FastOptions());
  EXPECT_TRUE(result.crashed);
  EXPECT_FALSE(result.reaped);
  EXPECT_TRUE(result.crash.crashed);
  EXPECT_EQ(result.crash.signal_number, 0);
  EXPECT_NE(result.crash.what.find("synthetic defect"), std::string::npos);
  EXPECT_NE(result.report.message.find("crashed"), std::string::npos);
}

TEST(SupervisorTest, OracleFailureIsAResultNotACrash) {
  const SupervisedTrialResult result = RunSupervisedTrial(
      MakeSupervisableOsTrial(
          [](OsRuntime&) { return std::string("oracle: order violated"); }),
      FastOptions());
  EXPECT_FALSE(result.Catastrophic());
  EXPECT_EQ(result.report.message, "oracle: order violated");
}

// ---- Retries --------------------------------------------------------------------------

TEST(SupervisorTest, CatastrophicAttemptsAreRetriedUntilOneSucceeds) {
  auto attempts = std::make_shared<std::atomic<int>>(0);
  SupervisorOptions options = FastOptions();
  options.max_attempts = 3;
  SupervisorStats stats;
  const SupervisedTrialResult result = RunSupervisedSeed(
      [attempts](std::uint64_t) {
        return MakeSupervisableOsTrial([attempts](OsRuntime&) -> std::string {
          if (attempts->fetch_add(1) < 2) {
            throw std::runtime_error("flaky crash");
          }
          return "";
        });
      },
      /*seed=*/1, options, &stats);
  EXPECT_FALSE(result.Catastrophic());
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(stats.crashed, 2);
  EXPECT_EQ(stats.retried, 2);
  EXPECT_TRUE(result.report.Passed());
}

TEST(SupervisorTest, OracleFailuresAreNeverRetried) {
  auto attempts = std::make_shared<std::atomic<int>>(0);
  SupervisorOptions options = FastOptions();
  options.max_attempts = 5;
  SupervisorStats stats;
  const SupervisedTrialResult result = RunSupervisedSeed(
      [attempts](std::uint64_t) {
        return MakeSupervisableOsTrial([attempts](OsRuntime&) {
          attempts->fetch_add(1);
          return std::string("legitimate oracle failure");
        });
      },
      /*seed=*/1, options, &stats);
  EXPECT_EQ(attempts->load(), 1);
  EXPECT_EQ(stats.retried, 0);
  EXPECT_FALSE(result.Catastrophic());
}

// ---- Quarantine and the acceptance scenario -------------------------------------------

SupervisableTrialFactory HealthyCounterCell(int start) {
  return [start](std::uint64_t seed) {
    return MakeSupervisableOsTrial([start, seed](OsRuntime&) -> std::string {
      // Deterministic per-seed verdict so outcomes are comparable across sweeps.
      return (start + static_cast<int>(seed)) % 7 == 0 ? "synthetic oracle failure"
                                                       : "";
    });
  };
}

TEST(SupervisorTest, CellIsQuarantinedAfterNCatastrophicSeeds) {
  SupervisorOptions options = FastOptions();
  options.quarantine_after = 3;
  const std::vector<SupervisedCell> cells = {
      {"always-crashes", [](std::uint64_t) {
         return MakeSupervisableOsTrial([](OsRuntime&) -> std::string {
           throw std::runtime_error("permanent defect");
         });
       }}};
  const SupervisedSweepReport report = SuperviseSweep(cells, /*num_seeds=*/10, 1, options);
  ASSERT_EQ(report.cells.size(), 1u);
  const SupervisedCellResult& cell = report.cells[0];
  EXPECT_TRUE(cell.quarantined);
  EXPECT_EQ(cell.completed_seeds, 3);  // Swept exactly quarantine_after seeds.
  EXPECT_EQ(cell.outcome.runs, 3);
  EXPECT_NE(cell.quarantine_reason.find("catastrophic"), std::string::npos);
  EXPECT_NE(cell.last_crash.what.find("permanent defect"), std::string::npos);
  EXPECT_EQ(report.totals.quarantined, 1);
  EXPECT_EQ(report.QuarantinedCells(), 1);
}

TEST(SupervisorTest, SweepWithHungAndCrashingCellsKeepsHealthyOutcomesBitIdentical) {
  // 200-seed supervised sweep: two healthy cells, one permanently-hung cell, one
  // crashing cell. The whole thing must terminate promptly (hung attempts reaped at
  // the deadline, then quarantined) and the healthy cells' merged outcome must be
  // bit-identical to sweeping them alone.
  SupervisorOptions options;
  options.trial_deadline = milliseconds(100);
  options.max_attempts = 1;
  options.quarantine_after = 2;
  const int kSeeds = 200;

  const std::vector<SupervisedCell> healthy_only = {
      {"healthy/a", HealthyCounterCell(0)}, {"healthy/b", HealthyCounterCell(3)}};
  const SupervisedSweepReport clean = SuperviseSweep(healthy_only, kSeeds, 1, options);
  ASSERT_EQ(clean.QuarantinedCells(), 0);

  std::vector<SupervisedCell> cells = healthy_only;
  cells.push_back({"hung", [](std::uint64_t) {
                     return MakeSupervisableOsTrial(HangForever);
                   }});
  cells.push_back({"crash", [](std::uint64_t) {
                     return MakeSupervisableOsTrial([](OsRuntime&) -> std::string {
                       throw std::runtime_error("boom");
                     });
                   }});
  const auto start = steady_clock::now();
  const SupervisedSweepReport report = SuperviseSweep(cells, kSeeds, 1, options);
  const auto elapsed = steady_clock::now() - start;

  EXPECT_EQ(report.QuarantinedCells(), 2);
  EXPECT_TRUE(report.cells[2].quarantined);
  EXPECT_TRUE(report.cells[3].quarantined);
  EXPECT_GE(report.totals.reaped, 2);
  EXPECT_GE(report.totals.crashed, 2);
  // Quarantine bounded the damage: 2 reaps at 100ms each, not 200 hung seeds.
  EXPECT_LT(elapsed, milliseconds(30000));

  const SweepOutcome merged = report.MergedHealthyOutcome();
  const SweepOutcome expected = clean.MergedHealthyOutcome();
  EXPECT_EQ(merged.runs, expected.runs);
  EXPECT_EQ(merged.passes, expected.passes);
  EXPECT_EQ(merged.failures, expected.failures);
  EXPECT_EQ(merged.failing_seeds, expected.failing_seeds);
  EXPECT_EQ(merged.first_failure, expected.first_failure);
  EXPECT_EQ(merged.runs, 2 * kSeeds);

  // quarantine.json names both broken cells with explanations.
  const std::string json = report.QuarantineJson();
  EXPECT_NE(json.find("\"quarantined_cells\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hung\""), std::string::npos);
  EXPECT_NE(json.find("\"crash\""), std::string::npos);
  EXPECT_NE(json.find("boom"), std::string::npos);
}

#if (defined(__unix__) || defined(__APPLE__)) && !defined(SYNEVAL_SANITIZED)
// ---- Process sandbox (fork) -----------------------------------------------------------

TEST(SupervisorSandboxTest, SegfaultingChildBecomesStructuredCrash) {
  SupervisorOptions options = FastOptions();
  options.sandbox = true;
  options.trial_deadline = milliseconds(2000);
  SupervisorStats stats;
  const SupervisedTrialResult result = RunSupervisedSeed(
      [](std::uint64_t) {
        return MakeSupervisableOsTrial([](OsRuntime&) -> std::string {
          volatile int* null_pointer = nullptr;
          *null_pointer = 42;  // SIGSEGV in the child, not this process.
          return "";
        });
      },
      /*seed=*/1, options, &stats);
  EXPECT_TRUE(result.crashed);
  EXPECT_EQ(result.crash.signal_number, SIGSEGV);
  EXPECT_NE(result.crash.what.find("SIGSEGV"), std::string::npos) << result.crash.what;
  EXPECT_EQ(stats.crashed, 1);
}

TEST(SupervisorSandboxTest, HungChildIsKilledAtTheDeadline) {
  SupervisorOptions options = FastOptions();
  options.sandbox = true;
  options.trial_deadline = milliseconds(300);
  SupervisorStats stats;
  const auto start = steady_clock::now();
  const SupervisedTrialResult result = RunSupervisedSeed(
      [](std::uint64_t) { return MakeSupervisableOsTrial(HangForever); },
      /*seed=*/1, options, &stats);
  const auto elapsed = steady_clock::now() - start;
  EXPECT_TRUE(result.reaped);
  EXPECT_EQ(stats.reaped, 1);
  EXPECT_LT(elapsed, milliseconds(10000));
  // The heartbeat publisher kept the shared-memory ring fresh: the harvested
  // postmortem explains the stuck wait even though the child died by SIGKILL.
  EXPECT_EQ(result.report.postmortem_cause, "stuck-waiter") << result.report.postmortem;
}

TEST(SupervisorSandboxTest, CleanChildReportRoundTripsThroughSharedMemory) {
  SupervisorOptions options = FastOptions();
  options.sandbox = true;
  SupervisorStats stats;
  const SupervisedTrialResult result = RunSupervisedSeed(
      [](std::uint64_t seed) {
        return MakeSupervisableOsTrial([seed](OsRuntime&) {
          return "verdict for seed " + std::to_string(seed);
        });
      },
      /*seed=*/7, options, &stats);
  EXPECT_FALSE(result.Catastrophic());
  EXPECT_EQ(result.report.message, "verdict for seed 7");
}
#endif  // POSIX && !SYNEVAL_SANITIZED

}  // namespace
}  // namespace syneval
