// Trial supervisor (runtime/supervisor.h): hung-trial reaping under a wall-clock
// deadline, crash capture, retry/quarantine policy, and the acceptance-criterion
// scenario — a sweep with a permanently-hung cell and a crashing cell still completes
// with every healthy cell's outcome bit-identical to a clean run.
//
// The reaper tests run real OsRuntime threads and are kept in the tier-1 (fast) set
// deliberately: they must stay TSan-clean, so the sanitizer CI configs exercise the
// reaper/trial races. Only the fork()-sandbox tests are gated off sanitized builds.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "syneval/fault/chaos.h"
#include "syneval/fault/fault.h"
#include "syneval/runtime/checkpoint.h"
#include "syneval/runtime/os_runtime.h"
#include "syneval/runtime/supervisor.h"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define SYNEVAL_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SYNEVAL_SANITIZED 1
#endif
#endif

namespace syneval {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// A body that parks the driving thread on a never-signalled condvar until the reaper
// force-unwinds it (TrialAborted propagates out of Wait and out of the body).
std::string HangForever(OsRuntime& rt) {
  std::unique_ptr<RtMutex> mu = rt.CreateMutex();
  std::unique_ptr<RtCondVar> cv = rt.CreateCondVar();
  std::unique_lock<RtMutex> lock(*mu);
  while (true) {
    cv->Wait(*mu);
  }
}

// A hang with managed threads parked too: the reaper must unwind all of them, and
// JoinAll-style cleanup must not deadlock during the abort.
std::string HangWithWorkers(OsRuntime& rt) {
  std::unique_ptr<RtMutex> mu = rt.CreateMutex();
  std::unique_ptr<RtCondVar> cv = rt.CreateCondVar();
  std::vector<std::unique_ptr<RtThread>> threads;
  for (int i = 0; i < 3; ++i) {
    threads.push_back(rt.StartThread("parked" + std::to_string(i), [&] {
      std::unique_lock<RtMutex> lock(*mu);
      while (true) {
        cv->Wait(*mu);
      }
    }));
  }
  for (auto& thread : threads) {
    thread->Join();  // Never returns normally; unwinds when the reaper aborts.
  }
  return "";
}

SupervisorOptions FastOptions() {
  SupervisorOptions options;
  options.trial_deadline = milliseconds(150);
  options.max_attempts = 1;
  options.retry_backoff = milliseconds(1);
  return options;
}

// ---- Gauge ----------------------------------------------------------------------------

TEST(ActiveTrialsTest, GaugeCountsScopesAndNeverReadsZero) {
  EXPECT_GE(ActiveTrials(), 1);
  const int base = ActiveTrials();
  {
    ActiveTrialScope one;
    ActiveTrialScope two;
    EXPECT_GE(ActiveTrials(), base + 1);
  }
  EXPECT_EQ(ActiveTrials(), base);
}

// ---- Reaping --------------------------------------------------------------------------

TEST(SupervisorTest, HungTrialIsReapedWithinDeadline) {
  const auto start = steady_clock::now();
  const SupervisedTrialResult result =
      RunSupervisedTrial(MakeSupervisableOsTrial(HangForever), FastOptions());
  const auto elapsed = steady_clock::now() - start;
  EXPECT_TRUE(result.reaped);
  EXPECT_FALSE(result.crashed);
  EXPECT_TRUE(result.Catastrophic());
  EXPECT_NE(result.report.message.find("reaped"), std::string::npos)
      << result.report.message;
  // Reaped well within an order of magnitude of the deadline (slack for slow CI).
  EXPECT_LT(elapsed, milliseconds(5000));
}

TEST(SupervisorTest, HungManagedThreadsAreUnwoundToo) {
  const SupervisedTrialResult result =
      RunSupervisedTrial(MakeSupervisableOsTrial(HangWithWorkers), FastOptions());
  EXPECT_TRUE(result.reaped);
  EXPECT_NE(result.report.message.find("deadline"), std::string::npos);
}

TEST(SupervisorTest, ReapedTrialCarriesALivePostmortem) {
  const SupervisedTrialResult result =
      RunSupervisedTrial(MakeSupervisableOsTrial(HangForever), FastOptions());
  ASSERT_TRUE(result.reaped);
  // The reaper captured observe() just before aborting: the detector had a parked
  // waiter to report, so the postmortem names the stuck wait.
  EXPECT_EQ(result.report.postmortem_cause, "stuck-waiter") << result.report.postmortem;
  EXPECT_NE(result.report.postmortem.find("stuck"), std::string::npos);
}

TEST(SupervisorTest, HealthyTrialIsUntouchedByTheDeadline) {
  const SupervisedTrialResult result = RunSupervisedTrial(
      MakeSupervisableOsTrial([](OsRuntime&) { return std::string(); }), FastOptions());
  EXPECT_FALSE(result.reaped);
  EXPECT_FALSE(result.crashed);
  EXPECT_TRUE(result.report.Passed());
}

TEST(SupervisorTest, ZeroDeadlineDisablesReaping) {
  // With no deadline the trial must complete on its own; use a body that finishes.
  SupervisorOptions options;
  options.trial_deadline = milliseconds(0);
  const SupervisedTrialResult result = RunSupervisedTrial(
      MakeSupervisableOsTrial([](OsRuntime&) { return std::string("verdict"); }),
      options);
  EXPECT_FALSE(result.reaped);
  EXPECT_EQ(result.report.message, "verdict");
}

// ---- Crash capture --------------------------------------------------------------------

TEST(SupervisorTest, EscapingExceptionBecomesStructuredCrash) {
  const SupervisedTrialResult result = RunSupervisedTrial(
      MakeSupervisableOsTrial([](OsRuntime&) -> std::string {
        throw std::runtime_error("synthetic defect in trial body");
      }),
      FastOptions());
  EXPECT_TRUE(result.crashed);
  EXPECT_FALSE(result.reaped);
  EXPECT_TRUE(result.crash.crashed);
  EXPECT_EQ(result.crash.signal_number, 0);
  EXPECT_NE(result.crash.what.find("synthetic defect"), std::string::npos);
  EXPECT_NE(result.report.message.find("crashed"), std::string::npos);
}

TEST(SupervisorTest, OracleFailureIsAResultNotACrash) {
  const SupervisedTrialResult result = RunSupervisedTrial(
      MakeSupervisableOsTrial(
          [](OsRuntime&) { return std::string("oracle: order violated"); }),
      FastOptions());
  EXPECT_FALSE(result.Catastrophic());
  EXPECT_EQ(result.report.message, "oracle: order violated");
}

// ---- Retries --------------------------------------------------------------------------

TEST(SupervisorTest, CatastrophicAttemptsAreRetriedUntilOneSucceeds) {
  auto attempts = std::make_shared<std::atomic<int>>(0);
  SupervisorOptions options = FastOptions();
  options.max_attempts = 3;
  SupervisorStats stats;
  const SupervisedTrialResult result = RunSupervisedSeed(
      [attempts](std::uint64_t) {
        return MakeSupervisableOsTrial([attempts](OsRuntime&) -> std::string {
          if (attempts->fetch_add(1) < 2) {
            throw std::runtime_error("flaky crash");
          }
          return "";
        });
      },
      /*seed=*/1, options, &stats);
  EXPECT_FALSE(result.Catastrophic());
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(stats.crashed, 2);
  EXPECT_EQ(stats.retried, 2);
  EXPECT_TRUE(result.report.Passed());
}

TEST(SupervisorTest, OracleFailuresAreNeverRetried) {
  auto attempts = std::make_shared<std::atomic<int>>(0);
  SupervisorOptions options = FastOptions();
  options.max_attempts = 5;
  SupervisorStats stats;
  const SupervisedTrialResult result = RunSupervisedSeed(
      [attempts](std::uint64_t) {
        return MakeSupervisableOsTrial([attempts](OsRuntime&) {
          attempts->fetch_add(1);
          return std::string("legitimate oracle failure");
        });
      },
      /*seed=*/1, options, &stats);
  EXPECT_EQ(attempts->load(), 1);
  EXPECT_EQ(stats.retried, 0);
  EXPECT_FALSE(result.Catastrophic());
}

// ---- Quarantine and the acceptance scenario -------------------------------------------

SupervisableTrialFactory HealthyCounterCell(int start) {
  return [start](std::uint64_t seed) {
    return MakeSupervisableOsTrial([start, seed](OsRuntime&) -> std::string {
      // Deterministic per-seed verdict so outcomes are comparable across sweeps.
      return (start + static_cast<int>(seed)) % 7 == 0 ? "synthetic oracle failure"
                                                       : "";
    });
  };
}

TEST(SupervisorTest, CellIsQuarantinedAfterNCatastrophicSeeds) {
  SupervisorOptions options = FastOptions();
  options.quarantine_after = 3;
  const std::vector<SupervisedCell> cells = {
      {"always-crashes", [](std::uint64_t) {
         return MakeSupervisableOsTrial([](OsRuntime&) -> std::string {
           throw std::runtime_error("permanent defect");
         });
       }}};
  const SupervisedSweepReport report = SuperviseSweep(cells, /*num_seeds=*/10, 1, options);
  ASSERT_EQ(report.cells.size(), 1u);
  const SupervisedCellResult& cell = report.cells[0];
  EXPECT_TRUE(cell.quarantined);
  EXPECT_EQ(cell.completed_seeds, 3);  // Swept exactly quarantine_after seeds.
  EXPECT_EQ(cell.outcome.runs, 3);
  EXPECT_NE(cell.quarantine_reason.find("catastrophic"), std::string::npos);
  EXPECT_NE(cell.last_crash.what.find("permanent defect"), std::string::npos);
  EXPECT_EQ(report.totals.quarantined, 1);
  EXPECT_EQ(report.QuarantinedCells(), 1);
}

TEST(SupervisorTest, SweepWithHungAndCrashingCellsKeepsHealthyOutcomesBitIdentical) {
  // 200-seed supervised sweep: two healthy cells, one permanently-hung cell, one
  // crashing cell. The whole thing must terminate promptly (hung attempts reaped at
  // the deadline, then quarantined) and the healthy cells' merged outcome must be
  // bit-identical to sweeping them alone.
  SupervisorOptions options;
  options.trial_deadline = milliseconds(100);
  options.max_attempts = 1;
  options.quarantine_after = 2;
  const int kSeeds = 200;

  const std::vector<SupervisedCell> healthy_only = {
      {"healthy/a", HealthyCounterCell(0)}, {"healthy/b", HealthyCounterCell(3)}};
  const SupervisedSweepReport clean = SuperviseSweep(healthy_only, kSeeds, 1, options);
  ASSERT_EQ(clean.QuarantinedCells(), 0);

  std::vector<SupervisedCell> cells = healthy_only;
  cells.push_back({"hung", [](std::uint64_t) {
                     return MakeSupervisableOsTrial(HangForever);
                   }});
  cells.push_back({"crash", [](std::uint64_t) {
                     return MakeSupervisableOsTrial([](OsRuntime&) -> std::string {
                       throw std::runtime_error("boom");
                     });
                   }});
  const auto start = steady_clock::now();
  const SupervisedSweepReport report = SuperviseSweep(cells, kSeeds, 1, options);
  const auto elapsed = steady_clock::now() - start;

  EXPECT_EQ(report.QuarantinedCells(), 2);
  EXPECT_TRUE(report.cells[2].quarantined);
  EXPECT_TRUE(report.cells[3].quarantined);
  EXPECT_GE(report.totals.reaped, 2);
  EXPECT_GE(report.totals.crashed, 2);
  // Quarantine bounded the damage: 2 reaps at 100ms each, not 200 hung seeds.
  EXPECT_LT(elapsed, milliseconds(30000));

  const SweepOutcome merged = report.MergedHealthyOutcome();
  const SweepOutcome expected = clean.MergedHealthyOutcome();
  EXPECT_EQ(merged.runs, expected.runs);
  EXPECT_EQ(merged.passes, expected.passes);
  EXPECT_EQ(merged.failures, expected.failures);
  EXPECT_EQ(merged.failing_seeds, expected.failing_seeds);
  EXPECT_EQ(merged.first_failure, expected.first_failure);
  EXPECT_EQ(merged.runs, 2 * kSeeds);

  // quarantine.json names both broken cells with explanations.
  const std::string json = report.QuarantineJson();
  EXPECT_NE(json.find("\"quarantined_cells\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hung\""), std::string::npos);
  EXPECT_NE(json.find("\"crash\""), std::string::npos);
  EXPECT_NE(json.find("boom"), std::string::npos);
}

// ---- Supervised chaos calibration -----------------------------------------------------

void ExpectChaosOutcomesIdentical(const ChaosSweepOutcome& a, const ChaosSweepOutcome& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.injected_runs, b.injected_runs);
  EXPECT_EQ(a.harmful, b.harmful);
  EXPECT_EQ(a.detected_harmful, b.detected_harmful);
  EXPECT_EQ(a.absorbed, b.absorbed);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.clean_anomalies, b.clean_anomalies);
  EXPECT_EQ(a.clean_failures, b.clean_failures);
  EXPECT_EQ(a.detection_steps_total, b.detection_steps_total);
  EXPECT_EQ(a.missed_seeds, b.missed_seeds);
  EXPECT_EQ(a.fp_seeds, b.fp_seeds);
  EXPECT_EQ(a.postmortems_total, b.postmortems_total);
  ASSERT_EQ(a.postmortems.size(), b.postmortems.size());
  for (std::size_t i = 0; i < a.postmortems.size(); ++i) {
    EXPECT_EQ(a.postmortems[i].seed, b.postmortems[i].seed);
    EXPECT_EQ(a.postmortems[i].cause, b.postmortems[i].cause);
    EXPECT_EQ(a.postmortems[i].text, b.postmortems[i].text);
  }
  EXPECT_EQ(a.postmortem_causes, b.postmortem_causes);
  EXPECT_EQ(a.flight_evicted, b.flight_evicted);
}

// The acceptance criterion for the supervision seam: with no catastrophic seeds, the
// supervised calibration table is field-by-field identical to the unsupervised one —
// at a multi-worker job count, which also exercises the seam under the sweep pool.
TEST(SupervisedChaosTest, HealthySupervisedCalibrationIsBitIdenticalToUnsupervised) {
  ParallelOptions parallel;
  parallel.jobs = 2;
  const ChaosCalibrationTable plain =
      RunChaosCalibration(/*seeds_per_case=*/2, /*base_seed=*/1, /*workload_scale=*/1,
                          parallel);

  ChaosSupervision supervision;
  supervision.enabled = true;
  supervision.options.trial_deadline = milliseconds(60000);  // Never fires.
  const ChaosCalibrationTable supervised =
      RunChaosCalibration(2, 1, 1, parallel, supervision);

  ASSERT_EQ(supervised.rows.size(), plain.rows.size());
  for (std::size_t i = 0; i < plain.rows.size(); ++i) {
    EXPECT_EQ(supervised.rows[i].problem, plain.rows[i].problem);
    EXPECT_EQ(supervised.rows[i].fault, plain.rows[i].fault);
    EXPECT_FALSE(supervised.rows[i].quarantined);
    ExpectChaosOutcomesIdentical(supervised.rows[i].outcome, plain.rows[i].outcome);
  }
  EXPECT_EQ(supervised.QuarantinedRows(), 0);
  EXPECT_EQ(supervised.supervisor.reaped, 0);
  EXPECT_EQ(supervised.supervisor.crashed, 0);
  EXPECT_EQ(supervised.supervisor.retried, 0);
  EXPECT_EQ(supervised.supervisor.quarantined, 0);
}

// A synthetic chaos trial that hangs until the supervisor aborts it through the
// TrialAbortSlot seam, then returns what DetRuntime's abort path would: a hung
// outcome that kept its injector counts and diagnosis.
ChaosTrial HangingChaosTrial() {
  return [](std::uint64_t, const FaultPlan* plan) -> ChaosTrialOutcome {
    auto mu = std::make_shared<std::mutex>();
    auto cv = std::make_shared<std::condition_variable>();
    auto aborted = std::make_shared<bool>(false);
    TrialAbortScope scope(
        [mu, cv, aborted] {
          std::lock_guard<std::mutex> lock(*mu);
          *aborted = true;
          cv->notify_all();
        },
        [] {
          TrialObservation obs;
          obs.cause = "synthetic-hang";
          obs.text = "postmortem: synthetic-hang\n";
          return obs;
        });
    std::unique_lock<std::mutex> lock(*mu);
    cv->wait(lock, [&] { return *aborted; });
    ChaosTrialOutcome out;
    out.hung = true;
    out.anomalies = 1;
    out.steps = 100;
    if (plan != nullptr) {
      out.injected = 1;
      out.first_injection_step = 10;
    }
    return out;
  };
}

TEST(SupervisedChaosTest, ReapedHangStillCountsTowardRecallThenQuarantines) {
  auto state = std::make_shared<chaos_internal::SupervisedRowState>();
  SupervisorOptions options;
  options.trial_deadline = milliseconds(100);
  options.max_attempts = 2;
  options.retry_backoff = milliseconds(1);
  options.quarantine_after = 2;
  const ChaosTrial wrapped =
      chaos_internal::MakeSupervisedChaosTrial(HangingChaosTrial(), options, state);

  const FaultPlan plan;
  const ChaosSweepOutcome outcome = SweepChaos(/*num_seeds=*/3, wrapped, plan, 1);

  // Seed 1 fault-on: reaped twice (one retry), catastrophic — but its outcome still
  // folded as a detected harmful run, so the genuine hang counts toward recall.
  EXPECT_EQ(outcome.runs, 1);
  EXPECT_EQ(outcome.harmful, 1);
  EXPECT_EQ(outcome.detected_harmful, 1);
  EXPECT_EQ(outcome.Recall(), 1.0);
  // Seed 1's matched fault-off run was the second catastrophic seed: quarantine. The
  // remaining seeds were skipped without running anything.
  EXPECT_EQ(outcome.skipped, 2);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    EXPECT_TRUE(state->quarantined);
    EXPECT_EQ(state->catastrophic_seeds, 2);
    EXPECT_NE(state->quarantine_reason.find("catastrophic"), std::string::npos);
    // The reaper's pre-abort harvest was kept as the row's last postmortem.
    EXPECT_EQ(state->last_postmortem_cause, "synthetic-hang");
    EXPECT_EQ(state->stats.reaped, 4);  // 2 attempts × (fault-on + fault-off).
    EXPECT_EQ(state->stats.retried, 2);
    EXPECT_EQ(state->stats.quarantined, 1);
  }
}

TEST(SupervisedChaosTest, CrashingTrialIsQuarantinedExactly) {
  auto state = std::make_shared<chaos_internal::SupervisedRowState>();
  SupervisorOptions options;
  options.trial_deadline = milliseconds(5000);
  options.max_attempts = 1;
  options.quarantine_after = 2;
  const ChaosTrial wrapped = chaos_internal::MakeSupervisedChaosTrial(
      [](std::uint64_t, const FaultPlan*) -> ChaosTrialOutcome {
        throw std::runtime_error("synthetic trial defect");
      },
      options, state);

  const FaultPlan plan;
  const ChaosSweepOutcome outcome = SweepChaos(/*num_seeds=*/4, wrapped, plan, 1);
  // The crash synthesizes the same hung outcome the unsupervised catch block folds,
  // so the denominators stay in step; after quarantine the rest is skipped.
  EXPECT_EQ(outcome.runs, 1);
  EXPECT_EQ(outcome.skipped, 3);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    EXPECT_TRUE(state->quarantined);
    EXPECT_EQ(state->stats.crashed, 2);
    EXPECT_NE(state->quarantine_reason.find("synthetic trial defect"), std::string::npos);
  }
}

TEST(SupervisedChaosTest, HealthyTrialPassesThroughUntouched) {
  auto state = std::make_shared<chaos_internal::SupervisedRowState>();
  SupervisorOptions options;
  options.trial_deadline = milliseconds(60000);
  options.max_attempts = 3;
  int calls = 0;
  const ChaosTrial wrapped = chaos_internal::MakeSupervisedChaosTrial(
      [&calls](std::uint64_t seed, const FaultPlan*) {
        ++calls;
        ChaosTrialOutcome out;
        out.completed = true;
        out.steps = 100 + seed;
        return out;
      },
      options, state);
  const ChaosTrialOutcome out = wrapped(7, nullptr);
  EXPECT_EQ(calls, 1);  // One pass, no retries.
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.steps, 107u);
  std::lock_guard<std::mutex> lock(state->mu);
  EXPECT_EQ(state->stats.reaped, 0);
  EXPECT_EQ(state->stats.crashed, 0);
  EXPECT_EQ(state->stats.retried, 0);
}

// Supervised soak + checkpoint resume: the second run restores every per-seed chunk
// from the journal-backed store and its table is field-by-field identical.
TEST(SupervisedChaosTest, ResumedSupervisedSoakIsBitIdentical) {
  const std::string path = testing::TempDir() + "/supervised_soak.ckpt";
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());

  ChaosSupervision supervision;
  supervision.enabled = true;
  supervision.options.trial_deadline = milliseconds(60000);

  ChaosCalibrationTable first;
  {
    CheckpointStore store(path);
    store.Load();
    ParallelOptions parallel;
    parallel.jobs = 2;
    parallel.chunk_seeds = 1;  // The soak configuration: per-seed checkpoints.
    parallel.checkpoint = &store;
    parallel.checkpoint_scope = "supervisor_test/soak";
    first = RunChaosCalibration(/*seeds_per_case=*/1, 1, 1, parallel, supervision);
    EXPECT_GT(store.size(), 0);
    EXPECT_GT(store.appends(), 0);
  }
  {
    CheckpointStore store(path);
    EXPECT_GT(store.Load(), 0);
    ParallelOptions parallel;
    parallel.jobs = 2;
    parallel.chunk_seeds = 1;
    parallel.checkpoint = &store;
    parallel.checkpoint_scope = "supervisor_test/soak";
    const ChaosCalibrationTable resumed =
        RunChaosCalibration(1, 1, 1, parallel, supervision);
    EXPECT_EQ(store.hits(), store.size());  // Everything restored, nothing re-ran.
    ASSERT_EQ(resumed.rows.size(), first.rows.size());
    for (std::size_t i = 0; i < first.rows.size(); ++i) {
      ExpectChaosOutcomesIdentical(resumed.rows[i].outcome, first.rows[i].outcome);
    }
  }
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
}

#if (defined(__unix__) || defined(__APPLE__)) && !defined(SYNEVAL_SANITIZED)
// ---- Process sandbox (fork) -----------------------------------------------------------

TEST(SupervisorSandboxTest, SegfaultingChildBecomesStructuredCrash) {
  SupervisorOptions options = FastOptions();
  options.sandbox = true;
  options.trial_deadline = milliseconds(2000);
  SupervisorStats stats;
  const SupervisedTrialResult result = RunSupervisedSeed(
      [](std::uint64_t) {
        return MakeSupervisableOsTrial([](OsRuntime&) -> std::string {
          volatile int* null_pointer = nullptr;
          *null_pointer = 42;  // SIGSEGV in the child, not this process.
          return "";
        });
      },
      /*seed=*/1, options, &stats);
  EXPECT_TRUE(result.crashed);
  EXPECT_EQ(result.crash.signal_number, SIGSEGV);
  EXPECT_NE(result.crash.what.find("SIGSEGV"), std::string::npos) << result.crash.what;
  EXPECT_EQ(stats.crashed, 1);
}

TEST(SupervisorSandboxTest, HungChildIsKilledAtTheDeadline) {
  SupervisorOptions options = FastOptions();
  options.sandbox = true;
  options.trial_deadline = milliseconds(300);
  SupervisorStats stats;
  const auto start = steady_clock::now();
  const SupervisedTrialResult result = RunSupervisedSeed(
      [](std::uint64_t) { return MakeSupervisableOsTrial(HangForever); },
      /*seed=*/1, options, &stats);
  const auto elapsed = steady_clock::now() - start;
  EXPECT_TRUE(result.reaped);
  EXPECT_EQ(stats.reaped, 1);
  EXPECT_LT(elapsed, milliseconds(10000));
  // The heartbeat publisher kept the shared-memory ring fresh: the harvested
  // postmortem explains the stuck wait even though the child died by SIGKILL.
  EXPECT_EQ(result.report.postmortem_cause, "stuck-waiter") << result.report.postmortem;
}

TEST(SupervisorSandboxTest, CleanChildReportRoundTripsThroughSharedMemory) {
  SupervisorOptions options = FastOptions();
  options.sandbox = true;
  SupervisorStats stats;
  const SupervisedTrialResult result = RunSupervisedSeed(
      [](std::uint64_t seed) {
        return MakeSupervisableOsTrial([seed](OsRuntime&) {
          return "verdict for seed " + std::to_string(seed);
        });
      },
      /*seed=*/7, options, &stats);
  EXPECT_FALSE(result.Catastrophic());
  EXPECT_EQ(result.report.message, "verdict for seed 7");
}
#endif  // POSIX && !SYNEVAL_SANITIZED

}  // namespace
}  // namespace syneval
