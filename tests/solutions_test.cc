// Directed per-solution behaviour tests: scenarios that pin down one distinctive
// property of a specific solution (beyond the generic oracle sweeps) — blocking
// behaviour at boundaries, admission orders, batching, and structural metadata.

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "syneval/core/metrics.h"
#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/solutions/ccr_solutions.h"
#include "syneval/solutions/csp_solutions.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/solutions/registry.h"
#include "syneval/solutions/semaphore_solutions.h"
#include "syneval/solutions/serializer_solutions.h"
#include "syneval/trace/query.h"

namespace syneval {
namespace {

// Number of kRequest events recorded so far (arrivals visible to the mechanism, since
// solutions record Arrived under their internal exclusion).
int CountArrivals(TraceRecorder& trace) {
  int count = 0;
  for (const Event& event : trace.Snapshot()) {
    if (event.kind == EventKind::kRequest) {
      ++count;
    }
  }
  return count;
}

// --- Blocking at buffer boundaries --------------------------------------------------------

// A producer depositing capacity+1 items with no consumer must block on the last one;
// DetRuntime reports it as a deadlock naming the producer.
template <typename Buffer>
void ExpectDepositBlocksWhenFull(int capacity) {
  DetRuntime rt(MakeRandomSchedule(3));
  Buffer buffer(rt, capacity);
  auto producer = rt.StartThread("producer", [&] {
    for (int i = 0; i <= capacity; ++i) {
      buffer.Deposit(i, nullptr);
    }
  });
  const DetRuntime::RunResult result = rt.Run();
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.deadlocked) << result.report;
  EXPECT_NE(result.report.find("producer"), std::string::npos) << result.report;
}

TEST(BufferBoundaryTest, SemaphoreDepositBlocksWhenFull) {
  ExpectDepositBlocksWhenFull<SemaphoreBoundedBuffer>(2);
}
TEST(BufferBoundaryTest, MonitorDepositBlocksWhenFull) {
  ExpectDepositBlocksWhenFull<MonitorBoundedBuffer>(2);
}
TEST(BufferBoundaryTest, PathDepositBlocksWhenFull) {
  ExpectDepositBlocksWhenFull<PathBoundedBuffer>(2);
}
TEST(BufferBoundaryTest, SerializerDepositBlocksWhenFull) {
  ExpectDepositBlocksWhenFull<SerializerBoundedBuffer>(2);
}
TEST(BufferBoundaryTest, CcrDepositBlocksWhenFull) {
  ExpectDepositBlocksWhenFull<CcrBoundedBuffer>(2);
}

template <typename Buffer>
void ExpectRemoveBlocksWhenEmpty() {
  DetRuntime rt(MakeRandomSchedule(4));
  Buffer buffer(rt, 2);
  auto consumer = rt.StartThread("consumer", [&] { buffer.Remove(nullptr); });
  const DetRuntime::RunResult result = rt.Run();
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.report.find("consumer"), std::string::npos) << result.report;
}

TEST(BufferBoundaryTest, MonitorRemoveBlocksWhenEmpty) {
  ExpectRemoveBlocksWhenEmpty<MonitorBoundedBuffer>();
}
TEST(BufferBoundaryTest, PathRemoveBlocksWhenEmpty) {
  ExpectRemoveBlocksWhenEmpty<PathBoundedBuffer>();
}
TEST(BufferBoundaryTest, CcrRemoveBlocksWhenEmpty) {
  ExpectRemoveBlocksWhenEmpty<CcrBoundedBuffer>();
}

// --- Monitor FCFS: strict ticket order across types ---------------------------------------

TEST(MonitorFcfsTest, AdmitsInExactArrivalOrderAcrossTypes) {
  DetRuntime rt(MakeRandomSchedule(5));
  TraceRecorder trace;
  MonitorRwFcfs rw(rt);
  std::vector<std::string> admissions;
  // Interleaved arrival pattern R W R W, sequenced on the RECORDED arrivals (which the
  // solution takes under the monitor, so the order is the mechanism's own view).
  auto reader = [&](int my_turn, const char* label) {
    return [&, my_turn, label] {
      while (CountArrivals(trace) != my_turn) {
        rt.Yield();
      }
      OpScope scope(trace, rt.CurrentThreadId(), "read");
      rw.Read([&] { admissions.push_back(label); }, &scope);
    };
  };
  auto writer = [&](int my_turn, const char* label) {
    return [&, my_turn, label] {
      while (CountArrivals(trace) != my_turn) {
        rt.Yield();
      }
      OpScope scope(trace, rt.CurrentThreadId(), "write");
      rw.Write([&] { admissions.push_back(label); }, &scope);
    };
  };
  auto t1 = rt.StartThread("r1", reader(0, "r1"));
  auto t2 = rt.StartThread("w1", writer(1, "w1"));
  auto t3 = rt.StartThread("r2", reader(2, "r2"));
  auto t4 = rt.StartThread("w2", writer(3, "w2"));
  ASSERT_TRUE(rt.Run().completed);
  // Bodies may overlap for adjacent readers, but with this arrival pattern the
  // admission (body start) order must be exactly arrival order.
  EXPECT_EQ(admissions, (std::vector<std::string>{"r1", "w1", "r2", "w2"}));
  EXPECT_EQ(CheckReadersWriters(trace.Events(), RwPolicy::kFcfs), "");
}

// --- Disk scheduler: a directed elevator sequence ------------------------------------------

template <typename Scheduler>
void ExpectElevatorOrder() {
  DetRuntime rt(MakeRandomSchedule(6));
  TraceRecorder trace;
  Scheduler scheduler(rt, 0);
  std::vector<std::int64_t> service_order;
  bool holder_in = false;

  // Holder takes track 50 and dawdles until three requests are REGISTERED with the
  // scheduler (their arrivals recorded under its internal exclusion): 70, 20, 55.
  auto holder = rt.StartThread("holder", [&] {
    OpScope scope(trace, rt.CurrentThreadId(), "disk", 50);
    scheduler.Access(50,
                     [&] {
                       holder_in = true;
                       service_order.push_back(50);
                       while (CountArrivals(trace) < 4) {
                         rt.Yield();
                       }
                     },
                     &scope);
  });
  auto requester = [&](std::int64_t track) {
    return [&, track] {
      while (!holder_in) {
        rt.Yield();
      }
      OpScope scope(trace, rt.CurrentThreadId(), "disk", track);
      scheduler.Access(track, [&] { service_order.push_back(track); }, &scope);
    };
  };
  auto t70 = rt.StartThread("t70", requester(70));
  auto t20 = rt.StartThread("t20", requester(20));
  auto t55 = rt.StartThread("t55", requester(55));
  ASSERT_TRUE(rt.Run().completed);
  // From head 50 moving up: 55, then 70, then down to 20.
  EXPECT_EQ(service_order, (std::vector<std::int64_t>{50, 55, 70, 20}));
}

TEST(DiskDirectedTest, MonitorElevatorOrder) { ExpectElevatorOrder<MonitorDiskScheduler>(); }
TEST(DiskDirectedTest, SerializerElevatorOrder) {
  ExpectElevatorOrder<SerializerDiskScheduler>();
}
TEST(DiskDirectedTest, SemaphoreElevatorOrder) {
  ExpectElevatorOrder<SemaphoreDiskScheduler>();
}
TEST(DiskDirectedTest, CcrElevatorOrder) { ExpectElevatorOrder<CcrDiskScheduler>(); }

// --- SJN: shortest job overtakes longer ones -----------------------------------------------

template <typename Allocator>
void ExpectShortestJobNext() {
  DetRuntime rt(MakeRandomSchedule(8));
  TraceRecorder trace;
  Allocator allocator(rt);
  std::vector<std::int64_t> order;
  bool holder_in = false;
  auto holder = rt.StartThread("holder", [&] {
    OpScope scope(trace, rt.CurrentThreadId(), "alloc", 5);
    allocator.Use(5,
                  [&] {
                    holder_in = true;
                    order.push_back(5);
                    while (CountArrivals(trace) < 4) {
                      rt.Yield();
                    }
                  },
                  &scope);
  });
  auto job = [&](std::int64_t estimate) {
    return [&, estimate] {
      while (!holder_in) {
        rt.Yield();
      }
      OpScope scope(trace, rt.CurrentThreadId(), "alloc", estimate);
      allocator.Use(estimate, [&] { order.push_back(estimate); }, &scope);
    };
  };
  auto t9 = rt.StartThread("t9", job(9));
  auto t2 = rt.StartThread("t2", job(2));
  auto t7 = rt.StartThread("t7", job(7));
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(order, (std::vector<std::int64_t>{5, 2, 7, 9}));
}

TEST(SjnDirectedTest, Monitor) { ExpectShortestJobNext<MonitorSjnAllocator>(); }
TEST(SjnDirectedTest, Serializer) { ExpectShortestJobNext<SerializerSjnAllocator>(); }
TEST(SjnDirectedTest, Semaphore) { ExpectShortestJobNext<SemaphoreSjnAllocator>(); }
TEST(SjnDirectedTest, Ccr) { ExpectShortestJobNext<CcrSjnAllocator>(); }

// --- Readers batching: concurrent readers really overlap -----------------------------------

// Readers CAN overlap (the defining concurrency of readers/writers). A single seed may
// happen to serialize them, so we sweep schedules and require overlap on at least one.
template <typename Rw>
void ExpectReaderOverlap() {
  int best_peak = 0;
  for (std::uint64_t seed = 1; seed <= 10 && best_peak < 2; ++seed) {
    DetRuntime rt(MakeRandomSchedule(seed));
    TraceRecorder trace;
    Rw rw(rt);
    int inside = 0;
    int peak = 0;
    auto reader = [&] {
      OpScope scope(trace, rt.CurrentThreadId(), "read");
      rw.Read(
          [&] {
            ++inside;
            peak = std::max(peak, inside);
            for (int k = 0; k < 6; ++k) {
              rt.Yield();
            }
            --inside;
          },
          &scope);
    };
    auto r1 = rt.StartThread("r1", reader);
    auto r2 = rt.StartThread("r2", reader);
    auto r3 = rt.StartThread("r3", reader);
    ASSERT_TRUE(rt.Run().completed);
    best_peak = std::max(best_peak, peak);
  }
  EXPECT_GE(best_peak, 2) << "readers never overlapped on any of 10 schedules";
}

TEST(ReaderConcurrencyTest, Monitor) { ExpectReaderOverlap<MonitorRwReadersPriority>(); }
TEST(ReaderConcurrencyTest, Serializer) {
  ExpectReaderOverlap<SerializerRwReadersPriority>();
}
TEST(ReaderConcurrencyTest, Semaphore) { ExpectReaderOverlap<SemaphoreRwReadersPriority>(); }
TEST(ReaderConcurrencyTest, PathFigure1) { ExpectReaderOverlap<PathExprRwFigure1>(); }
TEST(ReaderConcurrencyTest, PathPredicates) { ExpectReaderOverlap<PathExprRwPredicates>(); }
TEST(ReaderConcurrencyTest, Ccr) { ExpectReaderOverlap<CcrRwReadersPriority>(); }

// --- Starvation is real: readers-priority starves a writer ---------------------------------

// Starvation under readers priority ("this specification allows writers to starve"),
// shown deterministically: two readers hand the read burst back and forth — each exits
// only after the other has re-entered — so the resource is continuously read-occupied
// for kRounds entries and a writer that arrived at the start is overtaken by every one
// of them. Under the fair batch policy the same handshake cannot block the writer past
// one batch.
template <typename Rw>
std::uint64_t MeasureWriterOvertakes(bool* completed) {
  constexpr int kRounds = 12;
  DetRuntime rt(MakeRandomSchedule(2));
  TraceRecorder trace;
  Rw rw(rt);
  std::atomic<int> generation{0};
  bool writer_done = false;

  auto reader = [&](int first_round) {
    return [&, first_round] {
      for (int round = first_round; round < kRounds; round += 2) {
        OpScope scope(trace, rt.CurrentThreadId(), "read");
        rw.Read(
            [&, round] {
              const int my_generation = ++generation;
              // Hold the read until the partner re-enters — with a bounded spin so
              // that, under policies where the partner is legitimately blocked behind
              // the waiting writer (fair batching), the burst drains instead of
              // livelocking. Under readers priority the partner re-enters within a few
              // steps and the bound never triggers.
              for (int spin = 0; spin < 200 && generation.load() == my_generation &&
                                 round + 1 < kRounds && !writer_done;
                   ++spin) {
                rt.Yield();
              }
            },
            &scope);
      }
    };
  };
  auto r0 = rt.StartThread("r0", reader(0));
  auto r1 = rt.StartThread("r1", reader(1));
  auto w = rt.StartThread("w", [&] {
    while (generation.load() < 1) {
      rt.Yield();  // Arrive once the burst has begun.
    }
    OpScope scope(trace, rt.CurrentThreadId(), "write");
    rw.Write([&] { writer_done = true; }, &scope);
  });
  const DetRuntime::RunResult result = rt.Run();
  *completed = result.completed;
  // Count reads that arrived after the writer but were admitted before it.
  const std::vector<Execution> executions = GroupExecutions(trace.Events());
  const Execution* writer = nullptr;
  for (const Execution& e : executions) {
    if (e.op == "write") {
      writer = &e;
    }
  }
  if (writer == nullptr || writer->enter_seq == 0) {
    return 0;
  }
  std::uint64_t overtakes = 0;
  for (const Execution& e : executions) {
    if (e.op == "read" && e.request_seq > writer->request_seq &&
        e.enter_seq < writer->enter_seq) {
      ++overtakes;
    }
  }
  return overtakes;
}

TEST(StarvationTest, ReadersPriorityStarvesTheWriterThroughTheWholeBurst) {
  bool completed = false;
  const std::uint64_t overtakes = MeasureWriterOvertakes<MonitorRwReadersPriority>(&completed);
  ASSERT_TRUE(completed);
  // Nearly every handshake entry overtook the waiting writer.
  EXPECT_GE(overtakes, 8u);
}

TEST(StarvationTest, FairPolicyBoundsWriterOvertaking) {
  bool completed = false;
  const std::uint64_t overtakes = MeasureWriterOvertakes<MonitorRwFair>(&completed);
  ASSERT_TRUE(completed);
  // At most the batch in progress (plus scheduling slack) may pass the writer.
  EXPECT_LE(overtakes, 3u);
}

// --- Structural metadata sanity -------------------------------------------------------------

TEST(SolutionInfoTest, EverySolutionHasFragments) {
  for (const SolutionInfo& info : AllSolutionInfos()) {
    EXPECT_FALSE(info.fragments.empty()) << info.display_name;
    EXPECT_FALSE(info.display_name.empty());
    for (const ConstraintFragment& fragment : info.fragments) {
      EXPECT_FALSE(fragment.code.empty()) << info.display_name;
    }
  }
}

TEST(SolutionInfoTest, MatrixHasAllMechanismsForFootnote2Core) {
  // Bounded buffer and one-slot buffer exist under all six mechanisms.
  for (const char* problem : {"bounded-buffer", "one-slot-buffer"}) {
    for (int m = 0; m < kNumMechanisms; ++m) {
      EXPECT_TRUE(FindSolution(static_cast<Mechanism>(m), problem).has_value())
          << MechanismName(static_cast<Mechanism>(m)) << "/" << problem;
    }
  }
}

TEST(SolutionInfoTest, CspPolicySwapIsTheSmallestModification) {
  // The CSP readers->writers priority change (swap two select arms + one guard) should
  // cost no more than any other mechanism's version of the same change.
  const auto csp_a = FindSolution(Mechanism::kMessagePassing, "rw-readers-priority");
  const auto csp_b = FindSolution(Mechanism::kMessagePassing, "rw-writers-priority");
  ASSERT_TRUE(csp_a && csp_b);
  const double csp_cost = ModificationCost(*csp_a, *csp_b);
  const auto path_a = FindSolution(Mechanism::kPathExpression, "rw-readers-priority");
  const auto path_b = FindSolution(Mechanism::kPathExpression, "rw-writers-priority");
  EXPECT_LT(csp_cost, ModificationCost(*path_a, *path_b));
  const auto exclusion = FragmentSimilarity(*csp_a, *csp_b, "exclusion");
  ASSERT_TRUE(exclusion.has_value());
  EXPECT_DOUBLE_EQ(*exclusion, 1.0);  // The exclusion arms are textually identical.
}

}  // namespace
}  // namespace syneval
