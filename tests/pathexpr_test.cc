// Path expressions: parser, compiler (CH74 translation), and controller semantics.
// Semantic checks run single-threaded over OsRuntime where no blocking occurs, using
// CanBeginNow to probe eligibility.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "syneval/pathexpr/compiler.h"
#include "syneval/pathexpr/controller.h"
#include "syneval/pathexpr/parser.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/os_runtime.h"
#include "syneval/runtime/schedule.h"

namespace syneval {
namespace {

// --- Parser ------------------------------------------------------------------------

TEST(PathParserTest, ParsesSelectionAndBraces) {
  const PathDecl decl = ParsePath("path { read } , write end");
  EXPECT_EQ(decl.body->kind, PathNode::Kind::kSelection);
  ASSERT_EQ(decl.body->children.size(), 2u);
  EXPECT_EQ(decl.body->children[0]->kind, PathNode::Kind::kConcurrent);
  EXPECT_EQ(decl.body->children[1]->name, "write");
}

TEST(PathParserTest, SequenceBindsTighterThanSelection) {
  const PathDecl decl = ParsePath("path a; b, c end");
  // (a; b) , c
  ASSERT_EQ(decl.body->kind, PathNode::Kind::kSelection);
  ASSERT_EQ(decl.body->children.size(), 2u);
  EXPECT_EQ(decl.body->children[0]->kind, PathNode::Kind::kSequence);
  EXPECT_EQ(decl.body->children[1]->name, "c");
}

TEST(PathParserTest, ParsesNumericBoundAndPredicate) {
  const PathDecl decl = ParsePath("path 3:( [ok] deposit; remove ) end");
  ASSERT_EQ(decl.body->kind, PathNode::Kind::kBounded);
  EXPECT_EQ(decl.body->bound, 3);
  const PathNode& seq = *decl.body->children[0];
  ASSERT_EQ(seq.kind, PathNode::Kind::kSequence);
  EXPECT_EQ(seq.children[0]->kind, PathNode::Kind::kGuarded);
  EXPECT_EQ(seq.children[0]->name, "ok");
}

TEST(PathParserTest, ParsesMultiPathPrograms) {
  const std::vector<PathDecl> decls = ParsePathProgram(
      "path writeattempt end "
      "path { requestread } , requestwrite end "
      "path { read } , (openwrite ; write) end");
  ASSERT_EQ(decls.size(), 3u);
  EXPECT_EQ(decls[0].body->name, "writeattempt");
}

TEST(PathParserTest, RoundTripsThroughToString) {
  const char* source = "path { openread ; read } , write end";
  const PathDecl decl = ParsePath(source);
  const PathDecl again = ParsePath("path " + decl.body->ToString() + " end");
  EXPECT_EQ(decl.body->ToString(), again.body->ToString());
}

TEST(PathParserTest, RejectsMalformedInput) {
  EXPECT_THROW(ParsePath("path end"), PathSyntaxError);
  EXPECT_THROW(ParsePath("path a, end"), PathSyntaxError);
  EXPECT_THROW(ParsePath("path a"), PathSyntaxError);
  EXPECT_THROW(ParsePath("path a end garbage"), PathSyntaxError);
  EXPECT_THROW(ParsePath("path { a end"), PathSyntaxError);
  EXPECT_THROW(ParsePath("path 0:(a) end"), PathSyntaxError);
  EXPECT_THROW(ParsePath("path [x y] a end"), PathSyntaxError);
  EXPECT_THROW(ParsePathProgram(""), PathSyntaxError);
}

// --- Compiler ----------------------------------------------------------------------

TEST(PathCompilerTest, SimpleCycleUsesOneCounter) {
  const CompiledPaths compiled = CompilePaths(ParsePathProgram("path a end"));
  EXPECT_EQ(compiled.counter_init.size(), 1u);
  EXPECT_EQ(compiled.counter_init[0], 1);
  ASSERT_EQ(compiled.ops.count("a"), 1u);
}

TEST(PathCompilerTest, SequenceAllocatesLinkCounters) {
  const CompiledPaths compiled = CompilePaths(ParsePathProgram("path a; b; c end"));
  // Cycle counter + two links.
  EXPECT_EQ(compiled.counter_init.size(), 3u);
}

TEST(PathCompilerTest, SelectionSharesCounters) {
  const CompiledPaths compiled = CompilePaths(ParsePathProgram("path a, b end"));
  EXPECT_EQ(compiled.counter_init.size(), 1u);
  EXPECT_EQ(compiled.ops.size(), 2u);
}

TEST(PathCompilerTest, TopLevelBoundReplacesCycle) {
  const CompiledPaths compiled =
      CompilePaths(ParsePathProgram("path 4:(1:(deposit); 1:(remove)) end"));
  // B0 (outer bound) + per-op bounds + one sequence link.
  ASSERT_EQ(compiled.counter_init.size(), 4u);
  EXPECT_EQ(compiled.counter_init[compiled.CounterIndex("p0.B0")], 4);
}

TEST(PathCompilerTest, RepeatedNameYieldsAlternatives) {
  const CompiledPaths compiled = CompilePaths(ParsePathProgram("path a; b, b; a end"));
  const auto& b_paths = compiled.ops.at("b");
  ASSERT_EQ(b_paths.size(), 1u);
  EXPECT_EQ(b_paths[0].alternatives.size(), 2u);
}

TEST(PathCompilerTest, DescribeMentionsEveryOp) {
  const CompiledPaths compiled =
      CompilePaths(ParsePathProgram("path { read } , write end"));
  const std::string description = DescribeCompiledPaths(compiled);
  EXPECT_NE(description.find("op read"), std::string::npos);
  EXPECT_NE(description.find("op write"), std::string::npos);
}

// --- Controller semantics (single-threaded eligibility probing) ----------------------

TEST(PathControllerTest, OneSlotAlternation) {
  OsRuntime rt;
  PathController controller(rt, "path deposit; remove end");
  EXPECT_TRUE(controller.CanBeginNow("deposit"));
  EXPECT_FALSE(controller.CanBeginNow("remove"));
  const auto d = controller.Begin("deposit");
  EXPECT_FALSE(controller.CanBeginNow("deposit"));
  EXPECT_FALSE(controller.CanBeginNow("remove"));
  controller.End("deposit", d);
  EXPECT_FALSE(controller.CanBeginNow("deposit"));
  EXPECT_TRUE(controller.CanBeginNow("remove"));
  const auto r = controller.Begin("remove");
  controller.End("remove", r);
  EXPECT_TRUE(controller.CanBeginNow("deposit"));
}

TEST(PathControllerTest, ReaderBurstExcludesWriter) {
  OsRuntime rt;
  PathController controller(rt, "path { read } , write end");
  const auto r1 = controller.Begin("read");
  const auto r2 = controller.Begin("read");  // Concurrent reads allowed.
  EXPECT_FALSE(controller.CanBeginNow("write"));
  controller.End("read", r1);
  EXPECT_FALSE(controller.CanBeginNow("write"));  // Burst still open.
  controller.End("read", r2);
  EXPECT_TRUE(controller.CanBeginNow("write"));
  const auto w = controller.Begin("write");
  EXPECT_FALSE(controller.CanBeginNow("read"));
  EXPECT_FALSE(controller.CanBeginNow("write"));
  controller.End("write", w);
  EXPECT_TRUE(controller.CanBeginNow("read"));
}

TEST(PathControllerTest, NumericBoundLimitsConcurrency) {
  OsRuntime rt;
  PathController controller(rt, "path 2:(a) end");
  const auto a1 = controller.Begin("a");
  const auto a2 = controller.Begin("a");
  EXPECT_FALSE(controller.CanBeginNow("a"));
  controller.End("a", a1);
  EXPECT_TRUE(controller.CanBeginNow("a"));
  controller.End("a", a2);
}

TEST(PathControllerTest, BoundedBufferCounting) {
  OsRuntime rt;
  PathController controller(rt, "path 2:(1:(deposit); 1:(remove)) end");
  EXPECT_FALSE(controller.CanBeginNow("remove"));  // Nothing deposited yet.
  const auto d1 = controller.Begin("deposit");
  EXPECT_FALSE(controller.CanBeginNow("deposit"));  // 1:(deposit) serializes.
  controller.End("deposit", d1);
  const auto d2 = controller.Begin("deposit");
  controller.End("deposit", d2);
  EXPECT_FALSE(controller.CanBeginNow("deposit"));  // Buffer of 2 is full.
  EXPECT_TRUE(controller.CanBeginNow("remove"));
  const auto r1 = controller.Begin("remove");
  controller.End("remove", r1);
  EXPECT_TRUE(controller.CanBeginNow("deposit"));  // One slot freed.
}

TEST(PathControllerTest, SequenceInsideBracesUsesCountingLink) {
  OsRuntime rt;
  PathController controller(rt, "path { openread ; read } , write end");
  const auto o1 = controller.Begin("openread");
  const auto o2 = controller.Begin("openread");  // Burst: concurrent activations.
  EXPECT_FALSE(controller.CanBeginNow("write"));
  controller.End("openread", o1);
  controller.End("openread", o2);
  // Two completed openreads permit two reads.
  const auto r1 = controller.Begin("read");
  const auto r2 = controller.Begin("read");
  EXPECT_FALSE(controller.CanBeginNow("read"));  // No third openread happened.
  controller.End("read", r1);
  EXPECT_FALSE(controller.CanBeginNow("write"));  // Burst open until the last read ends.
  controller.End("read", r2);
  EXPECT_TRUE(controller.CanBeginNow("write"));
}

TEST(PathControllerTest, MultiplePathsConstrainConjunctively) {
  OsRuntime rt;
  PathController controller(rt, "path a end path a; b end");
  const auto a = controller.Begin("a");
  EXPECT_FALSE(controller.CanBeginNow("a"));  // Blocked by both paths.
  EXPECT_FALSE(controller.CanBeginNow("b"));  // Sequence: b needs a to end.
  controller.End("a", a);
  EXPECT_FALSE(controller.CanBeginNow("a"));  // Second path: still b's turn.
  EXPECT_TRUE(controller.CanBeginNow("b"));
  const auto b = controller.Begin("b");
  controller.End("b", b);
  EXPECT_TRUE(controller.CanBeginNow("a"));
}

TEST(PathControllerTest, PredicatesGateOperations) {
  OsRuntime rt;
  PathController controller(rt, "path { read } , [ok] write end");
  bool ok = false;
  controller.RegisterPredicate("ok", [&ok] { return ok; });
  EXPECT_FALSE(controller.CanBeginNow("write"));
  ok = true;
  EXPECT_TRUE(controller.CanBeginNow("write"));
  const auto r = controller.Begin("read");
  EXPECT_FALSE(controller.CanBeginNow("write"));  // Exclusion still applies.
  controller.End("read", r);
  EXPECT_TRUE(controller.CanBeginNow("write"));
}

TEST(PathControllerTest, UnconstrainedOpsPassThrough) {
  OsRuntime rt;
  PathController controller(rt, "path a end");
  const auto token = controller.Begin("unrelated");
  EXPECT_FALSE(token.constrained);
  controller.End("unrelated", token);
}

TEST(PathControllerTest, UnknownOpRejectedWhenConfigured) {
  OsRuntime rt;
  PathController::Options options;
  options.allow_unconstrained_ops = false;
  PathController controller(rt, "path a end", options);
  EXPECT_THROW(controller.Begin("mystery"), std::invalid_argument);
}

TEST(PathControllerTest, StatsCountBlockedBegins) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  PathController controller(rt, "path a; b end");
  auto t1 = rt.StartThread("b-side", [&] {
    const auto token = controller.Begin("b");  // Must wait for a to complete.
    controller.End("b", token);
  });
  auto t2 = rt.StartThread("a-side", [&] {
    rt.Yield();
    rt.Yield();
    const auto token = controller.Begin("a");
    controller.End("a", token);
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(controller.StatsFor("b").begins, 1u);
  EXPECT_EQ(controller.StatsFor("b").blocked_begins, 1u);
  EXPECT_EQ(controller.StatsFor("a").blocked_begins, 0u);
}

TEST(PathControllerTest, LongestWaitingSelectionIsFifo) {
  DetRuntime rt(std::make_unique<RandomSchedule>(31));
  PathController controller(rt, "path a end");
  int turn = 0;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    static_cast<void>(rt.StartThread("t" + std::to_string(i), [&, i] {
      while (turn != i) {
        rt.Yield();
      }
      PathController::Hooks hooks;
      hooks.on_arrive = [&turn] { ++turn; };  // Under the controller lock: orders arrivals.
      const auto token = controller.Begin("a", hooks);
      order.push_back(i);
      for (int k = 0; k < 3; ++k) {
        rt.Yield();
      }
      controller.End("a", token);
    }));
  }
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(PathControllerTest, Figure1ProgramCompilesAndRuns) {
  OsRuntime rt;
  PathController controller(rt,
                            "path writeattempt end "
                            "path { requestread } , requestwrite end "
                            "path { read } , (openwrite ; write) end");
  // A full write cycle in isolation.
  const auto wa = controller.Begin("writeattempt");
  const auto rw = controller.Begin("requestwrite");
  const auto ow = controller.Begin("openwrite");
  EXPECT_FALSE(controller.CanBeginNow("read"));  // openwrite holds the third path.
  controller.End("openwrite", ow);
  controller.End("requestwrite", rw);
  controller.End("writeattempt", wa);
  EXPECT_FALSE(controller.CanBeginNow("read"));  // write still pending via the link.
  const auto w = controller.Begin("write");
  controller.End("write", w);
  EXPECT_TRUE(controller.CanBeginNow("requestread"));
  EXPECT_TRUE(controller.CanBeginNow("read"));
}

TEST(PathControllerTest, RepeatedNamePicksTheFireableAlternative) {
  OsRuntime rt;
  // b occurs in both branches with different connections; an invocation matches
  // whichever occurrence can fire, and End releases the matching epilogue.
  PathController controller(rt, "path a; b , b; a end");
  // Initially both 'b' (via branch 2's head) and 'a' (branch 1's head) can begin.
  EXPECT_TRUE(controller.CanBeginNow("a"));
  EXPECT_TRUE(controller.CanBeginNow("b"));
  const auto b = controller.Begin("b");  // Chooses branch 2: b; a.
  EXPECT_FALSE(controller.CanBeginNow("a"));
  EXPECT_FALSE(controller.CanBeginNow("b"));
  controller.End("b", b);
  // Branch 2 continues: only 'a' may follow.
  EXPECT_TRUE(controller.CanBeginNow("a"));
  EXPECT_FALSE(controller.CanBeginNow("b"));
  const auto a = controller.Begin("a");
  controller.End("a", a);
  EXPECT_TRUE(controller.AtInitialState());
}

TEST(PathControllerTest, NestedBracesCompose) {
  OsRuntime rt;
  // Outer burst around (inner-burst; b): overlapping a's form ONE inner burst, whose
  // completion enables ONE b; the outer burst (and thus c's exclusion) closes when b
  // finishes.
  PathController controller(rt, "path { { a } ; b } , c end");
  const auto a1 = controller.Begin("a");
  const auto a2 = controller.Begin("a");  // Joins the same inner burst.
  EXPECT_FALSE(controller.CanBeginNow("c"));
  EXPECT_FALSE(controller.CanBeginNow("b"));  // Inner burst still open.
  controller.End("a", a1);
  EXPECT_FALSE(controller.CanBeginNow("b"));
  controller.End("a", a2);  // Burst closes: exactly one b is enabled.
  EXPECT_TRUE(controller.CanBeginNow("b"));
  const auto b1 = controller.Begin("b");
  EXPECT_FALSE(controller.CanBeginNow("b"));  // One burst buys one b.
  EXPECT_FALSE(controller.CanBeginNow("c"));
  controller.End("b", b1);
  EXPECT_TRUE(controller.CanBeginNow("c"));
  EXPECT_TRUE(controller.AtInitialState());
}

TEST(PathControllerTest, GuardPlacementDiffers) {
  OsRuntime rt;
  // [p]{a}: the guard applies to OPENING the burst; {[p] a}: to every activation.
  PathController outer_guard(rt, "path [p] { a } , x end");
  PathController inner_guard(rt, "path { [p] a } , x end");
  bool p = true;
  outer_guard.RegisterPredicate("p", [&p] { return p; });
  inner_guard.RegisterPredicate("p", [&p] { return p; });

  const auto o1 = outer_guard.Begin("a");
  const auto i1 = inner_guard.Begin("a");
  p = false;
  // Outer guard: burst already open, further activations need no predicate.
  EXPECT_TRUE(outer_guard.CanBeginNow("a"));
  // Inner guard: every activation re-checks the predicate.
  EXPECT_FALSE(inner_guard.CanBeginNow("a"));
  p = true;
  outer_guard.End("a", o1);
  inner_guard.End("a", i1);
}

TEST(PathControllerTest, BoundedSelectionSharesTheBound) {
  OsRuntime rt;
  PathController controller(rt, "path 2:(a , b) end");
  const auto a = controller.Begin("a");
  const auto b = controller.Begin("b");
  EXPECT_FALSE(controller.CanBeginNow("a"));
  EXPECT_FALSE(controller.CanBeginNow("b"));
  controller.End("a", a);
  EXPECT_TRUE(controller.CanBeginNow("b"));
  controller.End("b", b);
  EXPECT_TRUE(controller.AtInitialState());
}

}  // namespace
}  // namespace syneval
