// CSP channel semantics: rendezvous, buffering, FIFO sender order, guarded select,
// reply-channel plumbing, and hook ordering.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "syneval/channel/channel.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/explore.h"
#include "syneval/runtime/schedule.h"

namespace syneval {
namespace {

TEST(ChannelTest, RendezvousTransfersValue) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  ChannelGroup group(rt);
  Channel ch(group, "ch");
  std::int64_t got = 0;
  auto sender = rt.StartThread("sender", [&] { ch.Send(ChanMsg{7, 42, nullptr}); });
  auto receiver = rt.StartThread("receiver", [&] {
    const ChanMsg msg = ch.Receive();
    got = msg.value;
    EXPECT_EQ(msg.tag, 7);
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(got, 42);
}

TEST(ChannelTest, RendezvousSenderBlocksUntilTaken) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  ChannelGroup group(rt);
  Channel ch(group, "ch");
  std::vector<std::string> log;
  auto sender = rt.StartThread("sender", [&] {
    ch.Send(ChanMsg{});
    log.push_back("send-returned");
  });
  auto receiver = rt.StartThread("receiver", [&] {
    for (int i = 0; i < 10; ++i) {
      rt.Yield();  // Let the sender run first: it must not pass the rendezvous.
    }
    log.push_back("receiving");
    ch.Receive();
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(log, (std::vector<std::string>{"receiving", "send-returned"}));
}

TEST(ChannelTest, BufferedSendDoesNotBlockUntilFull) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  ChannelGroup group(rt);
  Channel ch(group, "ch", /*capacity=*/2);
  std::vector<std::string> log;
  auto sender = rt.StartThread("sender", [&] {
    ch.Send(ChanMsg{0, 1, nullptr});
    log.push_back("sent1");
    ch.Send(ChanMsg{0, 2, nullptr});
    log.push_back("sent2");
    ch.Send(ChanMsg{0, 3, nullptr});  // Buffer full: blocks until a receive.
    log.push_back("sent3");
  });
  auto receiver = rt.StartThread("receiver", [&] {
    for (int i = 0; i < 10; ++i) {
      rt.Yield();
    }
    log.push_back("receive");
    EXPECT_EQ(ch.Receive().value, 1);
    EXPECT_EQ(ch.Receive().value, 2);
    EXPECT_EQ(ch.Receive().value, 3);
  });
  ASSERT_TRUE(rt.Run().completed);
  const std::vector<std::string> expected = {"sent1", "sent2", "receive", "sent3"};
  EXPECT_EQ(log, expected);
}

TEST(ChannelTest, SendersServedInArrivalOrder) {
  DetRuntime rt(std::make_unique<RandomSchedule>(13));
  ChannelGroup group(rt);
  Channel ch(group, "ch");
  int turn = 0;
  for (int i = 0; i < 3; ++i) {
    static_cast<void>(rt.StartThread("s" + std::to_string(i), [&, i] {
      while (turn != i) {
        rt.Yield();
      }
      ch.Send(ChanMsg{0, i, nullptr}, [&turn] { ++turn; }, nullptr);
    }));
  }
  std::vector<std::int64_t> order;
  static_cast<void>(rt.StartThread("receiver", [&] {
    while (turn < 3) {
      rt.Yield();
    }
    for (int i = 0; i < 3; ++i) {
      order.push_back(ch.Receive().value);
    }
  }));
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 1, 2}));
}

TEST(ChannelTest, SelectHonoursGuardsAndOrder) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  ChannelGroup group(rt);
  Channel a(group, "a");
  Channel b(group, "b");
  bool allow_a = false;
  std::vector<std::string> log;
  auto sa = rt.StartThread("sa", [&] { a.Send(ChanMsg{0, 1, nullptr}); });
  auto sb = rt.StartThread("sb", [&] { b.Send(ChanMsg{0, 2, nullptr}); });
  auto selector = rt.StartThread("selector", [&] {
    while (!(a.HasSenders() && b.HasSenders())) {
      rt.Yield();  // Wait until both alternatives are ready.
    }
    ChanMsg msg;
    // a is listed first but guarded shut: b must win.
    int idx = group.Select({SelectCase{&a, [&] { return allow_a; }},
                            SelectCase{&b, nullptr}},
                           &msg);
    EXPECT_EQ(idx, 1);
    EXPECT_EQ(msg.value, 2);
    allow_a = true;
    idx = group.Select({SelectCase{&a, [&] { return allow_a; }}, SelectCase{&b, nullptr}},
                       &msg);
    EXPECT_EQ(idx, 0);
    EXPECT_EQ(msg.value, 1);
  });
  ASSERT_TRUE(rt.Run().completed);
}

TEST(ChannelTest, SelectBlocksUntilSomethingReady) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  ChannelGroup group(rt);
  Channel a(group, "a");
  std::vector<std::string> log;
  auto selector = rt.StartThread("selector", [&] {
    ChanMsg msg;
    group.Select({SelectCase{&a, nullptr}}, &msg);
    log.push_back("selected");
  });
  auto sender = rt.StartThread("sender", [&] {
    for (int i = 0; i < 5; ++i) {
      rt.Yield();
    }
    log.push_back("sending");
    a.Send(ChanMsg{});
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(log, (std::vector<std::string>{"sending", "selected"}));
}

TEST(ChannelTest, ReplyChannelRoundTrip) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  ChannelGroup group(rt);
  Channel requests(group, "requests");
  std::int64_t answer = 0;
  auto server = rt.StartThread("server", [&] {
    const ChanMsg request = requests.Receive();
    request.reply->Send(ChanMsg{0, request.value * 2, nullptr});
  });
  auto client = rt.StartThread("client", [&] {
    Channel reply(group, "reply");
    requests.Send(ChanMsg{0, 21, &reply});
    answer = reply.Receive().value;
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(answer, 42);
}

TEST(ChannelTest, TryOperations) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  ChannelGroup group(rt);
  Channel buffered(group, "buffered", 1);
  Channel sync(group, "sync");
  bool checks_done = false;
  auto t = rt.StartThread("t", [&] {
    ChanMsg msg;
    EXPECT_FALSE(buffered.TryReceive(&msg));
    EXPECT_TRUE(buffered.TrySend(ChanMsg{0, 5, nullptr}));
    EXPECT_FALSE(buffered.TrySend(ChanMsg{0, 6, nullptr}));  // Full.
    EXPECT_TRUE(buffered.TryReceive(&msg));
    EXPECT_EQ(msg.value, 5);
    EXPECT_FALSE(sync.TrySend(ChanMsg{}));  // Rendezvous: no receiver waiting.
    checks_done = true;
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_TRUE(checks_done);
}

TEST(ChannelTest, HooksFireAtRegisterAndAccept) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  ChannelGroup group(rt);
  Channel ch(group, "ch");
  std::vector<std::string> log;
  auto sender = rt.StartThread("sender", [&] {
    ch.Send(ChanMsg{}, [&] { log.push_back("register"); }, [&] { log.push_back("accept"); });
  });
  auto receiver = rt.StartThread("receiver", [&] {
    for (int i = 0; i < 5; ++i) {
      rt.Yield();
    }
    ch.Receive([&](const ChanMsg&) { log.push_back("receive-hook"); });
  });
  ASSERT_TRUE(rt.Run().completed);
  // The accept hook fires inside the receiver's take, before its own receive hook.
  EXPECT_EQ(log, (std::vector<std::string>{"register", "accept", "receive-hook"}));
}

}  // namespace
}  // namespace syneval
