// Experiment E6: the nested-monitor-call problem (Lister 1977; paper Sections 2, 5.2).
//
// When a low-level monitor operation waits while invoked from inside a high-level
// monitor, the high-level monitor stays locked and no other process can reach the
// low-level monitor to signal — deadlock. The paper's protected-resource structure
// (release the outer monitor before invoking the inner operation) avoids it, and
// serializers avoid it by construction (JoinCrowd releases possession).

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "syneval/monitor/hoare_monitor.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/schedule.h"
#include "syneval/serializer/serializer.h"

namespace syneval {
namespace {

// A one-slot inner resource guarded by its own monitor.
class InnerBuffer {
 public:
  explicit InnerBuffer(Runtime& rt) : monitor_(rt) {}

  void Put(int value) {
    MonitorRegion region(monitor_);
    while (full_) {
      not_full_.Wait();
    }
    value_ = value;
    full_ = true;
    not_empty_.Signal();
  }

  int Get() {
    MonitorRegion region(monitor_);
    while (!full_) {
      not_empty_.Wait();  // The dangerous wait when called from inside another monitor.
    }
    full_ = false;
    not_full_.Signal();
    return value_;
  }

 private:
  HoareMonitor monitor_;
  HoareMonitor::Condition not_full_{monitor_};
  HoareMonitor::Condition not_empty_{monitor_};
  bool full_ = false;
  int value_ = 0;
};

TEST(NestedMonitorTest, NestedCallDeadlocks) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  HoareMonitor outer(rt);
  InnerBuffer inner(rt);

  // Consumer: enters the OUTER monitor, then calls inner.Get() which waits — while
  // still holding the outer monitor.
  auto consumer = rt.StartThread("consumer", [&] {
    MonitorRegion region(outer);
    const int v = inner.Get();
    EXPECT_EQ(v, 42);  // Unreachable: the wait never completes.
  });
  // Producer: must pass through the outer monitor too — and never can.
  auto producer = rt.StartThread("producer", [&] {
    rt.Yield();
    MonitorRegion region(outer);
    inner.Put(42);
  });

  const DetRuntime::RunResult result = rt.Run();
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.deadlocked) << result.report;
  EXPECT_NE(result.report.find("consumer"), std::string::npos) << result.report;
  EXPECT_NE(result.report.find("producer"), std::string::npos) << result.report;
}

TEST(NestedMonitorTest, ProtectedResourceStructureAvoidsDeadlock) {
  // Section 2's structure: the outer module releases its monitor before invoking the
  // inner resource operation; no deadlock.
  DetRuntime rt(std::make_unique<FifoSchedule>());
  HoareMonitor outer(rt);
  InnerBuffer inner(rt);
  int got = 0;

  auto consumer = rt.StartThread("consumer", [&] {
    {
      MonitorRegion region(outer);  // Outer bookkeeping only.
    }
    got = inner.Get();  // Invoked OUTSIDE the outer monitor.
  });
  auto producer = rt.StartThread("producer", [&] {
    rt.Yield();
    {
      MonitorRegion region(outer);
    }
    inner.Put(42);
  });

  const DetRuntime::RunResult result = rt.Run();
  EXPECT_TRUE(result.completed) << result.report;
  EXPECT_EQ(got, 42);
}

TEST(NestedMonitorTest, SerializerJoinCrowdAvoidsDeadlockByConstruction) {
  // The serializer equivalent of the deadlocking case: the outer serializer wraps the
  // inner blocking operation in JoinCrowd, which releases possession — so the producer
  // can get in and the system completes.
  DetRuntime rt(std::make_unique<FifoSchedule>());
  Serializer outer(rt);
  Serializer::Crowd crowd(outer, "accessors");
  InnerBuffer inner(rt);
  int got = 0;

  auto consumer = rt.StartThread("consumer", [&] {
    Serializer::Region region(outer);
    outer.JoinCrowd(crowd, [&] { got = inner.Get(); });
  });
  auto producer = rt.StartThread("producer", [&] {
    rt.Yield();
    Serializer::Region region(outer);
    outer.JoinCrowd(crowd, [&] { inner.Put(42); });
  });

  const DetRuntime::RunResult result = rt.Run();
  EXPECT_TRUE(result.completed) << result.report;
  EXPECT_EQ(got, 42);
}

}  // namespace
}  // namespace syneval
