// Serializer semantics: possession, guarded FIFO queues, priority queues, crowds,
// automatic signalling, and re-entry precedence.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/schedule.h"
#include "syneval/serializer/serializer.h"

namespace syneval {
namespace {

TEST(SerializerTest, PossessionIsExclusive) {
  DetRuntime rt(std::make_unique<RandomSchedule>(3));
  Serializer s(rt);
  int counter = 0;
  auto body = [&] {
    for (int i = 0; i < 10; ++i) {
      Serializer::Region region(s);
      const int read = counter;
      rt.Yield();  // Preemption point while in possession: nobody else may interleave.
      counter = read + 1;
    }
  };
  auto t1 = rt.StartThread("p1", body);
  auto t2 = rt.StartThread("p2", body);
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(counter, 20);
}

TEST(SerializerTest, GuardBlocksUntilTrue) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  Serializer s(rt);
  Serializer::Queue q(s, "q");
  bool open = false;
  std::vector<std::string> log;

  auto waiter = rt.StartThread("waiter", [&] {
    Serializer::Region region(s);
    s.Enqueue(q, [&open] { return open; });
    log.push_back("waiter:through");
  });
  auto opener = rt.StartThread("opener", [&] {
    while (true) {
      {
        Serializer::Region region(s);
        if (!q.Empty()) {
          open = true;  // Mutated in possession; re-evaluated at release.
          log.push_back("opener:opened");
          break;
        }
      }
      rt.Yield();
    }
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(log, (std::vector<std::string>{"opener:opened", "waiter:through"}));
}

TEST(SerializerTest, QueueIsFifo) {
  DetRuntime rt(std::make_unique<RandomSchedule>(7));
  Serializer s(rt);
  Serializer::Queue q(s, "q");
  int turn = 0;
  int released = 0;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    static_cast<void>(rt.StartThread("w" + std::to_string(i), [&, i] {
      while (true) {
        bool queued = false;
        {
          Serializer::Region region(s);
          if (turn == i) {
            ++turn;
            s.Enqueue(q, [&released, i] { return released > i; });
            order.push_back(i);
            queued = true;
          }
        }
        if (queued) {
          return;
        }
        rt.Yield();
      }
    }));
  }
  static_cast<void>(rt.StartThread("releaser", [&] {
    while (released < 3) {
      bool did = false;
      {
        Serializer::Region region(s);
        if (turn == 3 && q.Length() == 3 - released) {
          ++released;
          did = true;
        }
      }
      if (!did) {
        rt.Yield();
      }
    }
  }));
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SerializerTest, HeadBlocksQueueEvenIfLaterGuardsTrue) {
  // FIFO queues evaluate only the head: a false head guard blocks satisfied waiters
  // behind it. (This is why SCAN needs priority queues.)
  DetRuntime rt(std::make_unique<FifoSchedule>());
  Serializer s(rt);
  Serializer::Queue q(s, "q");
  bool head_ok = false;
  std::vector<std::string> log;

  auto head = rt.StartThread("head", [&] {
    Serializer::Region region(s);
    s.Enqueue(q, [&head_ok] { return head_ok; });
    log.push_back("head");
  });
  auto second = rt.StartThread("second", [&] {
    while (true) {
      bool queued = false;
      {
        Serializer::Region region(s);
        if (!q.Empty()) {
          s.Enqueue(q, [] { return true; });  // Always-true guard, but behind the head.
          log.push_back("second");
          queued = true;
        }
      }
      if (queued) {
        return;
      }
      rt.Yield();
    }
  });
  auto opener = rt.StartThread("opener", [&] {
    while (true) {
      bool done = false;
      {
        Serializer::Region region(s);
        if (q.Length() == 2) {
          head_ok = true;
          done = true;
        }
      }
      if (done) {
        return;
      }
      rt.Yield();
    }
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(log, (std::vector<std::string>{"head", "second"}));
}

TEST(SerializerTest, PriorityQueueOrdersByKey) {
  DetRuntime rt(std::make_unique<RandomSchedule>(11));
  Serializer s(rt);
  Serializer::PriorityQueue q(s, "pq");
  int turn = 0;
  bool open = false;
  std::vector<int> order;
  const std::int64_t keys[] = {30, 10, 20, 10};
  for (int i = 0; i < 4; ++i) {
    static_cast<void>(rt.StartThread("w" + std::to_string(i), [&, i] {
      while (true) {
        bool queued = false;
        {
          Serializer::Region region(s);
          if (turn == i) {
            ++turn;
            s.Enqueue(q, keys[i], [&open] { return open; });
            order.push_back(i);
            queued = true;
          }
        }
        if (queued) {
          return;
        }
        rt.Yield();
      }
    }));
  }
  static_cast<void>(rt.StartThread("opener", [&] {
    while (true) {
      bool done = false;
      {
        Serializer::Region region(s);
        if (turn == 4) {
          open = true;
          done = true;
        }
      }
      if (done) {
        return;
      }
      rt.Yield();
    }
  }));
  ASSERT_TRUE(rt.Run().completed);
  // Ascending keys, FIFO among the two 10s: 1 before 3.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2, 0}));
}

TEST(SerializerTest, CrowdAllowsConcurrencyOutsidePossession) {
  DetRuntime rt(std::make_unique<RandomSchedule>(13));
  Serializer s(rt);
  Serializer::Crowd crowd(s, "crowd");
  int concurrent = 0;
  int peak = 0;
  auto body = [&] {
    Serializer::Region region(s);
    s.JoinCrowd(crowd, [&] {
      // Outside possession: both threads can be here at once.
      ++concurrent;
      peak = std::max(peak, concurrent);
      for (int k = 0; k < 5; ++k) {
        rt.Yield();
      }
      --concurrent;
    });
  };
  auto t1 = rt.StartThread("c1", body);
  auto t2 = rt.StartThread("c2", body);
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(peak, 2) << "crowd bodies failed to overlap";
  EXPECT_TRUE(crowd.Empty());
}

TEST(SerializerTest, CrowdGuardSeesMembership) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  Serializer s(rt);
  Serializer::Queue q(s, "q");
  Serializer::Crowd crowd(s, "crowd");
  std::vector<std::string> log;
  bool member_inside = false;

  auto member = rt.StartThread("member", [&] {
    Serializer::Region region(s);
    s.JoinCrowd(crowd, [&] {
      member_inside = true;
      for (int k = 0; k < 10; ++k) {
        rt.Yield();
      }
      log.push_back("member:leaving");
    });
  });
  auto waiter = rt.StartThread("waiter", [&] {
    while (!member_inside) {
      rt.Yield();
    }
    Serializer::Region region(s);
    s.Enqueue(q, [&crowd] { return crowd.Empty(); });
    log.push_back("waiter:through");
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(log, (std::vector<std::string>{"member:leaving", "waiter:through"}));
}

TEST(SerializerTest, JoinCrowdHooksRunInOrder) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  Serializer s(rt);
  Serializer::Crowd crowd(s, "crowd");
  std::vector<std::string> log;
  auto t = rt.StartThread("t", [&] {
    Serializer::Region region(s);
    s.JoinCrowd(
        crowd, [&] { log.push_back("body"); }, [&] { log.push_back("join"); },
        [&] { log.push_back("leave"); });
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(log, (std::vector<std::string>{"join", "body", "leave"}));
}

}  // namespace
}  // namespace syneval
