// DPOR explorer + happens-before certifier: vector-clock algebra, the HB engine over
// synthetic flight traces (mutex edges, certified/uncertified wakeups, the timed-wait
// orphan protocol, client races), and the exhaustive explorer end-to-end — correct
// cells prove deadlock-free with a reduction ratio over the naive enumeration, seeded
// bugs yield counterexamples whose prefix replays to an independently confirmed
// failure, exploration is deterministic, and the parallel suite driver matches the
// serial per-cell results (this test runs under the TSan CI config like every other).

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "syneval/analysis/dpor.h"
#include "syneval/analysis/hb.h"
#include "syneval/runtime/parallel_sweep.h"
#include "syneval/telemetry/flight_recorder.h"

namespace syneval {
namespace {

// ---------------------------------------------------------------------------------------
// Vector clocks.

TEST(VectorClockTest, SetGetAndBump) {
  VectorClock clock;
  EXPECT_EQ(clock.Get(0), 0u);
  EXPECT_EQ(clock.Get(7), 0u);
  clock.Set(3, 5);
  EXPECT_EQ(clock.Get(3), 5u);
  clock.Bump(3);
  EXPECT_EQ(clock.Get(3), 6u);
  clock.Bump(9);  // Grows on demand.
  EXPECT_EQ(clock.Get(9), 1u);
}

TEST(VectorClockTest, JoinIsComponentwiseMax) {
  VectorClock a;
  a.Set(0, 4);
  a.Set(2, 1);
  VectorClock b;
  b.Set(0, 2);
  b.Set(1, 7);
  a.Join(b);
  EXPECT_EQ(a.Get(0), 4u);
  EXPECT_EQ(a.Get(1), 7u);
  EXPECT_EQ(a.Get(2), 1u);
}

TEST(VectorClockTest, LessEqOrdersCausally) {
  VectorClock early;
  early.Set(0, 1);
  VectorClock late = early;
  late.Set(1, 3);
  EXPECT_TRUE(early.LessEq(late));
  EXPECT_FALSE(late.LessEq(early));
  // Concurrent clocks are unordered both ways.
  VectorClock other;
  other.Set(1, 1);
  EXPECT_FALSE(early.LessEq(other));
  EXPECT_FALSE(other.LessEq(early));
}

// ---------------------------------------------------------------------------------------
// Happens-before engine over synthetic flight traces.

// Builds a FlightEvent with an auto-incrementing global seq.
struct TraceBuilder {
  std::vector<FlightEvent> events;
  std::uint64_t seq = 0;

  void Add(std::uint32_t thread, FlightEventType type, const void* resource,
           std::uint64_t arg = 0) {
    FlightEvent event;
    event.seq = ++seq;
    event.time_nanos = seq * 1000;
    event.thread = thread;
    event.type = type;
    event.resource = resource;
    event.arg = arg;
    events.push_back(event);
  }
};

TEST(HappensBeforeTest, MutexHandoffCreatesEdge) {
  int mu = 0;
  TraceBuilder trace;
  trace.Add(1, FlightEventType::kAcquire, &mu);
  trace.Add(1, FlightEventType::kRelease, &mu);
  trace.Add(2, FlightEventType::kAcquire, &mu);
  const HbAnalysis analysis = AnalyzeHappensBefore(trace.events);
  EXPECT_EQ(analysis.joins, 1u);
  EXPECT_TRUE(analysis.clean());
}

TEST(HappensBeforeTest, SignalledWakeIsCertified) {
  int cv = 0;
  TraceBuilder trace;
  trace.Add(2, FlightEventType::kBlock, &cv);
  trace.Add(1, FlightEventType::kSignal, &cv, /*waiters=*/1);
  trace.Add(2, FlightEventType::kWake, &cv, /*notified=*/1);
  const HbAnalysis analysis = AnalyzeHappensBefore(trace.events);
  EXPECT_EQ(analysis.certified_wakeups, 1u);
  EXPECT_TRUE(analysis.uncertified.empty());
}

TEST(HappensBeforeTest, NotifiedWakeWithoutDeliveryIsUncertified) {
  // The structural signature of a lost/stolen signal: the runtime claims thread 2 was
  // notified, but no signal delivery is happens-before ordered to it.
  int cv = 0;
  TraceBuilder trace;
  trace.Add(2, FlightEventType::kBlock, &cv);
  trace.Add(2, FlightEventType::kWake, &cv, /*notified=*/1);
  const HbAnalysis analysis = AnalyzeHappensBefore(trace.events);
  ASSERT_EQ(analysis.uncertified.size(), 1u);
  EXPECT_EQ(analysis.uncertified.front().thread, 2u);
  EXPECT_EQ(analysis.certified_wakeups, 0u);
}

TEST(HappensBeforeTest, TimedOutWaiterOrphansItsDeliveryForTheActualRecipient) {
  // The simulation delivers thread 2's signal, but thread 2 wakes by deadline
  // (arg==0); the orphaned delivery must then certify thread 3's notified wake so
  // timed waits never produce false violations.
  int cv = 0;
  TraceBuilder trace;
  trace.Add(2, FlightEventType::kBlock, &cv);
  trace.Add(3, FlightEventType::kBlock, &cv);
  trace.Add(1, FlightEventType::kSignal, &cv, /*waiters=*/2);
  trace.Add(2, FlightEventType::kWake, &cv, /*timed out=*/0);
  trace.Add(3, FlightEventType::kWake, &cv, /*notified=*/1);
  const HbAnalysis analysis = AnalyzeHappensBefore(trace.events);
  EXPECT_EQ(analysis.timeout_wakeups, 1u);
  EXPECT_EQ(analysis.certified_wakeups, 1u);
  EXPECT_TRUE(analysis.uncertified.empty());
}

TEST(HappensBeforeTest, UnorderedConflictingClientAccessesAreRaces) {
  int cell = 0;
  TraceBuilder trace;
  trace.Add(1, FlightEventType::kClientStore, &cell);
  trace.Add(2, FlightEventType::kClientStore, &cell);
  const HbAnalysis analysis = AnalyzeHappensBefore(trace.events);
  ASSERT_EQ(analysis.races.size(), 1u);
  EXPECT_EQ(analysis.races.front().first_thread, 1u);
  EXPECT_EQ(analysis.races.front().second_thread, 2u);
  EXPECT_EQ(analysis.client_accesses, 2u);
}

TEST(HappensBeforeTest, MutexOrderedAccessesAreNotRaces) {
  int mu = 0;
  int cell = 0;
  TraceBuilder trace;
  trace.Add(1, FlightEventType::kAcquire, &mu);
  trace.Add(1, FlightEventType::kClientStore, &cell);
  trace.Add(1, FlightEventType::kRelease, &mu);
  trace.Add(2, FlightEventType::kAcquire, &mu);  // Joins thread 1's release clock.
  trace.Add(2, FlightEventType::kClientStore, &cell);
  const HbAnalysis analysis = AnalyzeHappensBefore(trace.events);
  EXPECT_TRUE(analysis.races.empty());
}

TEST(HappensBeforeTest, LoadLoadPairsAndAtomicsAreExempt) {
  int cell = 0;
  TraceBuilder trace;
  trace.Add(1, FlightEventType::kClientLoad, &cell);
  trace.Add(2, FlightEventType::kClientLoad, &cell);  // Load-load: never a race.
  trace.Add(1, FlightEventType::kClientStore, &cell, /*atomic=*/1);
  trace.Add(2, FlightEventType::kClientStore, &cell, /*atomic=*/1);
  const HbAnalysis analysis = AnalyzeHappensBefore(trace.events);
  EXPECT_TRUE(analysis.races.empty());
  EXPECT_EQ(analysis.client_accesses, 4u);
}

// ---------------------------------------------------------------------------------------
// Exhaustive exploration: proofs.

// Small budgets keep tier-1 wall time down; the full default-budget suite runs in the
// blocking dpor-verdicts CI job against tests/golden/dpor_verdicts.json.
DporOptions FastOptions() {
  DporOptions options;
  options.max_executions = 2000;
  options.naive_max_executions = 1000;
  return options;
}

const DporCell* FindCell(const std::vector<DporCell>& suite, const std::string& display) {
  for (const DporCell& cell : suite) {
    if (cell.display == display) {
      return &cell;
    }
  }
  return nullptr;
}

TEST(DporExplorerTest, CcrOneSlotBufferIsProvedWithReduction) {
  const std::vector<DporCell> suite = BuildDporSuite();
  const DporCell* cell = FindCell(suite, "CCR one-slot buffer");
  ASSERT_NE(cell, nullptr);
  const DporCellResult result = ExploreCell(*cell, FastOptions());
#if SYNEVAL_TELEMETRY_ENABLED
  EXPECT_EQ(result.verdict, DporVerdict::kProvedDeadlockFree) << result.note;
  // The proof is exhaustive: the reduced tree is fully visited, and the naive
  // baseline visits strictly more interleavings for the same guarantee.
  EXPECT_GT(result.executions, 0u);
  EXPECT_GT(result.reduction_ratio, 1.0);
  EXPECT_TRUE(result.naive_complete);
  EXPECT_GT(result.certified_wakeups + result.hb_joins, 0u);
#else
  // Without telemetry there are no flight footprints; the explorer must degrade to
  // bound_exceeded rather than claim a proof it cannot certify.
  EXPECT_EQ(result.verdict, DporVerdict::kBoundExceeded);
#endif
}

#if SYNEVAL_TELEMETRY_ENABLED

TEST(DporExplorerTest, OrderedDiningIsProvedDeadlockFree) {
  const std::vector<DporCell> suite = BuildDporSuite();
  const DporCell* cell = FindCell(suite, "Ordered-fork dining (2 seats)");
  ASSERT_NE(cell, nullptr);
  const DporCellResult result = ExploreCell(*cell, FastOptions());
  EXPECT_EQ(result.verdict, DporVerdict::kProvedDeadlockFree) << result.note;
  EXPECT_FALSE(result.has_counterexample);
}

TEST(DporExplorerTest, ExplorationIsDeterministic) {
  // The golden CI job diffs execution counts, so exploration must be bit-stable:
  // footprints are canonical first-appearance ids, never raw heap addresses.
  const std::vector<DporCell> suite = BuildDporSuite();
  const DporCell* cell = FindCell(suite, "Semaphore one-slot buffer");
  ASSERT_NE(cell, nullptr);
  const DporCellResult first = ExploreCell(*cell, FastOptions());
  const DporCellResult second = ExploreCell(*cell, FastOptions());
  EXPECT_EQ(first.executions, second.executions);
  EXPECT_EQ(first.redundant, second.redundant);
  EXPECT_EQ(first.transitions, second.transitions);
  EXPECT_EQ(first.max_depth, second.max_depth);
  EXPECT_EQ(first.certified_wakeups, second.certified_wakeups);
}

// ---------------------------------------------------------------------------------------
// Exhaustive exploration: seeded bugs and counterexample replay.

TEST(DporExplorerTest, NaiveDiningYieldsDeadlockCounterexampleThatReplays) {
  const std::vector<DporCell> suite = BuildDporSuite();
  const DporCell* cell = FindCell(suite, "Naive dining (seeded deadlock)");
  ASSERT_NE(cell, nullptr);
  const DporCellResult result = ExploreCell(*cell, FastOptions());
  ASSERT_EQ(result.verdict, DporVerdict::kCounterexample) << result.note;
  ASSERT_TRUE(result.has_counterexample);
  EXPECT_EQ(result.counterexample.reason, "deadlock");
  ASSERT_FALSE(result.counterexample.prefix.empty());

  // The prefix alone must reproduce the deadlock in a fresh runtime, confirmed by the
  // independent anomaly detector — not just by the explorer's own judgement.
  const DporReplay replay =
      ReplayDporCounterexample(*cell, result.counterexample.prefix, FastOptions());
  EXPECT_FALSE(replay.diverged);
  EXPECT_TRUE(replay.deadlocked);
  EXPECT_GE(replay.anomalies, 1);
  EXPECT_EQ(replay.postmortem_cause, "deadlock");
}

TEST(DporExplorerTest, UnguardedCounterYieldsRaceCounterexampleThatReplays) {
  const std::vector<DporCell> suite = BuildDporSuite();
  const DporCell* cell = FindCell(suite, "Unguarded counter (seeded race)");
  ASSERT_NE(cell, nullptr);
  const DporCellResult result = ExploreCell(*cell, FastOptions());
  ASSERT_EQ(result.verdict, DporVerdict::kCounterexample) << result.note;
  EXPECT_EQ(result.counterexample.reason, "client-race");

  const DporReplay replay =
      ReplayDporCounterexample(*cell, result.counterexample.prefix, FastOptions());
  EXPECT_FALSE(replay.diverged);
  EXPECT_FALSE(replay.hb.races.empty());
}

TEST(DporExplorerTest, GuardedCounterIsRaceFree) {
  // The same workload with the semaphore guard: every interleaving must certify.
  const std::vector<DporCell> suite = BuildDporSuite();
  const DporCell* cell = FindCell(suite, "Semaphore-guarded counter");
  ASSERT_NE(cell, nullptr);
  const DporCellResult result = ExploreCell(*cell, FastOptions());
  EXPECT_EQ(result.verdict, DporVerdict::kProvedDeadlockFree) << result.note;
}

// ---------------------------------------------------------------------------------------
// Parallel suite driver.

TEST(DporSuiteTest, ParallelSuiteMatchesSerialPerCellResults) {
  // Explore a fast subset of the suite through the worker pool (two cells in flight)
  // and serially; verdict and counts must agree exactly. Under the TSan CI config
  // this also checks the pool handoff of results is race-free.
  const std::vector<DporCell> all = BuildDporSuite();
  std::vector<DporCell> subset;
  for (const std::string display :
       {"CCR one-slot buffer", "Ordered-fork dining (2 seats)",
        "Naive dining (seeded deadlock)", "Unguarded counter (seeded race)"}) {
    const DporCell* cell = FindCell(all, display);
    ASSERT_NE(cell, nullptr) << display;
    subset.push_back(*cell);
  }
  ParallelOptions parallel;
  parallel.jobs = 2;
  const DporSuiteResult pooled = ExploreDporSuite(subset, FastOptions(), parallel);
  ASSERT_EQ(pooled.cells.size(), subset.size());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    const DporCellResult serial = ExploreCell(subset[i], FastOptions());
    EXPECT_EQ(pooled.cells[i].verdict, serial.verdict) << subset[i].display;
    EXPECT_EQ(pooled.cells[i].executions, serial.executions) << subset[i].display;
    EXPECT_EQ(pooled.cells[i].transitions, serial.transitions) << subset[i].display;
  }
}

#endif  // SYNEVAL_TELEMETRY_ENABLED

}  // namespace
}  // namespace syneval
