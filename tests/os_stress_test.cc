// Stress tests under the real-thread OsRuntime: larger workloads, real preemption.
// Oracles run in their lenient forms where admission-order recording is only
// happens-before-exact (see oracles.h).
//
// Every body runs as a supervised trial (runtime/supervisor.h) inside the fork()
// sandbox: a genuinely wedged solution — the very deadlocks these workloads exist to
// provoke — is SIGKILLed at the deadline instead of hanging the whole suite, and the
// harvested live postmortem is printed with the failure. Where fork() is unavailable
// the supervisor transparently falls back to the in-process reaper.

#include <functional>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/os_runtime.h"
#include "syneval/runtime/supervisor.h"
#include "syneval/solutions/ccr_solutions.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/solutions/semaphore_solutions.h"
#include "syneval/solutions/serializer_solutions.h"

namespace syneval {
namespace {

// Runs `body` under the trial supervisor's fork sandbox. The deadline is deliberately
// generous — these are throughput stress workloads on loaded CI runners, and a false
// reap would convert a pass into a flake; the deadline exists to catch genuine
// deadlocks, which never finish at any budget.
void RunSandboxed(const std::function<std::string(OsRuntime&)>& body) {
  SupervisorOptions options;
  options.sandbox = true;
  options.trial_deadline = std::chrono::milliseconds(120000);
  options.max_attempts = 1;  // A catastrophic stress body is a bug, not a flake.
  SupervisorStats stats;
  const SupervisedTrialResult result = RunSupervisedSeed(
      [&body](std::uint64_t) { return MakeSupervisableOsTrial(body); }, /*seed=*/1,
      options, &stats);
  EXPECT_FALSE(result.Catastrophic())
      << (result.reaped ? "trial reaped at deadline" : "trial crashed: " + result.crash.what)
      << (result.crash.postmortem.empty() ? "" : "\n" + result.crash.postmortem)
      << (result.report.postmortem.empty() ? "" : "\n" + result.report.postmortem);
  EXPECT_EQ(result.report.message, "") << result.report.postmortem;
}

BufferWorkloadParams BigBufferWorkload() {
  BufferWorkloadParams params;
  params.producers = 4;
  params.consumers = 4;
  params.items_per_producer = 200;
  params.work = 0;
  return params;
}

template <typename Buffer>
void StressBoundedBuffer() {
  RunSandboxed([](OsRuntime& rt) {
    TraceRecorder trace;
    Buffer buffer(rt, 5);
    ThreadList threads = SpawnBoundedBufferWorkload(rt, buffer, trace, BigBufferWorkload());
    JoinAll(threads);
    return CheckBoundedBuffer(trace.Events(), 5);
  });
}

TEST(OsStressTest, SemaphoreBoundedBuffer) { StressBoundedBuffer<SemaphoreBoundedBuffer>(); }
TEST(OsStressTest, MonitorBoundedBuffer) { StressBoundedBuffer<MonitorBoundedBuffer>(); }
TEST(OsStressTest, PathBoundedBuffer) { StressBoundedBuffer<PathBoundedBuffer>(); }
TEST(OsStressTest, SerializerBoundedBuffer) { StressBoundedBuffer<SerializerBoundedBuffer>(); }

template <typename Rw>
void StressReadersWriters(RwPolicy policy, RwStrictness strictness) {
  RunSandboxed([policy, strictness](OsRuntime& rt) {
    TraceRecorder trace;
    Rw rw(rt);
    RwWorkloadParams params;
    params.readers = 6;
    params.writers = 3;
    params.ops_per_reader = 60;
    params.ops_per_writer = 40;
    params.read_work = 0;
    params.write_work = 0;
    params.think_work = 0;
    ThreadList threads = SpawnReadersWritersWorkload(rt, rw, trace, params);
    JoinAll(threads);
    return CheckReadersWriters(trace.Events(), policy, 1000, strictness);
  });
}

TEST(OsStressTest, MonitorReadersPriority) {
  StressReadersWriters<MonitorRwReadersPriority>(RwPolicy::kReadersPriority,
                                                 RwStrictness::kStrict);
}

TEST(OsStressTest, MonitorWritersPriority) {
  StressReadersWriters<MonitorRwWritersPriority>(RwPolicy::kWritersPriority,
                                                 RwStrictness::kStrict);
}

TEST(OsStressTest, MonitorFcfs) {
  StressReadersWriters<MonitorRwFcfs>(RwPolicy::kFcfs, RwStrictness::kStrict);
}

TEST(OsStressTest, SerializerReadersPriority) {
  StressReadersWriters<SerializerRwReadersPriority>(RwPolicy::kReadersPriority,
                                                    RwStrictness::kStrict);
}

TEST(OsStressTest, SerializerFcfs) {
  StressReadersWriters<SerializerRwFcfs>(RwPolicy::kFcfs, RwStrictness::kStrict);
}

TEST(OsStressTest, SemaphoreReadersPriorityLenient) {
  StressReadersWriters<SemaphoreRwReadersPriority>(RwPolicy::kReadersPriority,
                                                   RwStrictness::kArrivalOrder);
}

template <typename Scheduler>
void StressScanScheduler(std::uint64_t seed) {
  RunSandboxed([seed](OsRuntime& rt) -> std::string {
    TraceRecorder trace;
    VirtualDisk disk(500, 0);
    Scheduler scheduler(rt, 0);
    DiskWorkloadParams params;
    params.requesters = 6;
    params.requests_per_thread = 50;
    params.tracks = 500;
    params.hold_work = 0;
    params.think_work = 0;
    params.seed = seed;
    ThreadList threads = SpawnDiskWorkload(rt, scheduler, disk, trace, params);
    JoinAll(threads);
    if (disk.violations() != 0) {
      return "disk head moved while a request held it: " +
             std::to_string(disk.violations()) + " violation(s)";
    }
    if (disk.accesses() != 300) {
      return "disk accesses " + std::to_string(disk.accesses()) + " != 300";
    }
    return CheckScanDiskSchedule(trace.Events(), 0);
  });
}

TEST(OsStressTest, DiskSchedulerScanMonitor) { StressScanScheduler<MonitorDiskScheduler>(1); }

// Regression: idle admissions must not turn the sweep around (divergence originally
// caught by the oracle on the serializer implementation).
TEST(OsStressTest, DiskSchedulerScanSerializer) {
  StressScanScheduler<SerializerDiskScheduler>(2026);
}

TEST(OsStressTest, DiskSchedulerScanSemaphore) {
  StressScanScheduler<SemaphoreDiskScheduler>(7);
}

// Regression: the CCR SCAN must capture the sweep direction at condition-evaluation
// time (new arrivals may join the pending list between grant and body).
TEST(OsStressTest, DiskSchedulerScanCcr) { StressScanScheduler<CcrDiskScheduler>(11); }

TEST(OsStressTest, CcrReadersPriority) {
  StressReadersWriters<CcrRwReadersPriority>(RwPolicy::kReadersPriority,
                                             RwStrictness::kStrict);
}

TEST(OsStressTest, CcrBoundedBufferStress) { StressBoundedBuffer<CcrBoundedBuffer>(); }

TEST(OsStressTest, AlarmClock) {
  RunSandboxed([](OsRuntime& rt) {
    TraceRecorder trace;
    MonitorAlarmClock clock(rt);
    AlarmWorkloadParams params;
    params.sleepers = 5;
    params.naps_per_sleeper = 20;
    params.max_delay = 7;
    ThreadList threads = SpawnAlarmClockWorkload(rt, clock, trace, params);
    JoinAll(threads);
    return CheckAlarmClock(trace.Events(), 0);
  });
}

TEST(OsStressTest, SjnAllocator) {
  RunSandboxed([](OsRuntime& rt) {
    TraceRecorder trace;
    MonitorSjnAllocator allocator(rt);
    SjnWorkloadParams params;
    params.requesters = 6;
    params.requests_per_thread = 30;
    ThreadList threads = SpawnSjnWorkload(rt, allocator, trace, params);
    JoinAll(threads);
    return CheckSjnAllocator(trace.Events());
  });
}

TEST(OsStressTest, FcfsResource) {
  RunSandboxed([](OsRuntime& rt) {
    TraceRecorder trace;
    SemaphoreFcfsResource resource(rt);
    FcfsWorkloadParams params;
    params.threads = 6;
    params.ops_per_thread = 100;
    params.hold_work = 0;
    params.think_work = 0;
    ThreadList threads = SpawnFcfsWorkload(rt, resource, trace, params);
    JoinAll(threads);
    return CheckFcfsResource(trace.Events());
  });
}

}  // namespace
}  // namespace syneval
