// The solution-matrix conformance sweep: every (mechanism, problem) solution is run
// under a set of deterministic schedules and checked against its oracle. Cases the
// paper predicts to violate their oracle (Figure 1; arbitrary-selection FCFS) must
// violate it; everything else must be clean.

#include <string>

#include <gtest/gtest.h>

#include "syneval/core/conformance.h"
#include "syneval/solutions/registry.h"

namespace syneval {
namespace {

constexpr int kSeeds = 12;

class ConformanceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConformanceTest, SolutionBehavesAsPredicted) {
  const std::vector<ConformanceCase> suite = BuildConformanceSuite(/*workload_scale=*/1);
  ASSERT_LT(GetParam(), suite.size());
  const ConformanceCase& conformance_case = suite[GetParam()];
  const ConformanceResult result = RunConformanceCase(conformance_case, kSeeds);
  if (conformance_case.expect_violations) {
    EXPECT_GT(result.outcome.failures, 0)
        << conformance_case.display << ": the paper predicts violations, none observed in "
        << kSeeds << " schedules";
  } else {
    EXPECT_EQ(result.outcome.failures, 0)
        << conformance_case.display << ": " << result.outcome.Summary();
  }
}

std::string CaseName(const ::testing::TestParamInfo<std::size_t>& info) {
  const std::vector<ConformanceCase> suite = BuildConformanceSuite(1);
  std::string name = std::string(MechanismName(suite[info.index].mechanism)) + "_" +
                     suite[info.index].problem;
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  // Distinguish multiple cases of the same cell (e.g. two pathexpr readers-priority).
  name += "_" + std::to_string(info.index);
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllSolutions, ConformanceTest,
                         ::testing::Range<std::size_t>(0, BuildConformanceSuite(1).size()),
                         CaseName);

TEST(ConformanceSuiteTest, CoversEveryRegisteredMechanismProblemPair) {
  // Every solution in the registry should be exercised by at least one conformance case
  // (rw-fair and rw-fcfs are monitor/serializer-only, matching the registry).
  const std::vector<ConformanceCase> suite = BuildConformanceSuite(1);
  int matched = 0;
  for (const SolutionInfo& info : AllSolutionInfos()) {
    for (const ConformanceCase& c : suite) {
      if (c.mechanism == info.mechanism && c.problem == info.problem) {
        ++matched;
        break;
      }
    }
  }
  // Semaphore rw-fcfs/rw-fair are intentionally absent from the registry; all present
  // registry entries must be covered.
  EXPECT_EQ(matched, static_cast<int>(AllSolutionInfos().size()));
}

}  // namespace
}  // namespace syneval
