// The solution-matrix conformance sweep: every (mechanism, problem) solution is run
// under a set of deterministic schedules and checked against its oracle. Cases the
// paper predicts to violate their oracle (Figure 1; arbitrary-selection FCFS) must
// violate it; everything else must be clean.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "syneval/core/conformance.h"
#include "syneval/solutions/registry.h"

namespace syneval {
namespace {

constexpr int kSeeds = 12;

class ConformanceTest : public ::testing::TestWithParam<std::size_t> {};

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// CI sets SYNEVAL_POSTMORTEM_DIR so that an unexpected failure leaves its postmortems
// behind as JSON artifacts (one file per stored postmortem, named for exact replay via
// bench/syneval_postmortem) in addition to the assertion message. No-op locally.
void WritePostmortemArtifacts(std::size_t case_index, const ConformanceCase& spec,
                              const SweepOutcome& outcome) {
  const char* dir = std::getenv("SYNEVAL_POSTMORTEM_DIR");
  if (dir == nullptr || *dir == '\0') {
    return;
  }
  for (const SeedPostmortem& pm : outcome.postmortems) {
    const std::string path = std::string(dir) + "/conformance_case" +
                             std::to_string(case_index) + "_seed" +
                             std::to_string(pm.seed) + ".json";
    std::ofstream out(path);
    if (!out) {
      continue;
    }
    out << "{\"display\":\"" << JsonEscape(spec.display) << "\",\"problem\":\""
        << JsonEscape(spec.problem) << "\",\"mechanism\":\""
        << MechanismName(spec.mechanism) << "\",\"seed\":" << pm.seed
        << ",\"cause\":\"" << JsonEscape(pm.cause) << "\",\"text\":\""
        << JsonEscape(pm.text) << "\"}\n";
  }
}

TEST_P(ConformanceTest, SolutionBehavesAsPredicted) {
  const std::vector<ConformanceCase> suite = BuildConformanceSuite(/*workload_scale=*/1);
  ASSERT_LT(GetParam(), suite.size());
  const ConformanceCase& conformance_case = suite[GetParam()];
  const ConformanceResult result = RunConformanceCase(conformance_case, kSeeds);
  if (conformance_case.expect_violations) {
    EXPECT_GT(result.outcome.failures, 0)
        << conformance_case.display << ": the paper predicts violations, none observed in "
        << kSeeds << " schedules";
  } else {
    // On an unexpected failure the sweep's stored flight-recorder postmortems are the
    // fastest route to a diagnosis; each carries the seed for exact replay via
    // bench/syneval_postmortem.
    if (result.outcome.failures != 0) {
      WritePostmortemArtifacts(GetParam(), conformance_case, result.outcome);
    }
    EXPECT_EQ(result.outcome.failures, 0)
        << conformance_case.display << ": " << result.outcome.Summary()
        << result.outcome.PostmortemDump();
  }
  // Ring autotuning: the grow-on-evict trial recorder (Options::ForTrial) must retain
  // every event of a default conformance sweep — an eviction here means a postmortem
  // window was silently truncated and the sizing heuristics need retuning.
  EXPECT_EQ(result.outcome.flight_evicted, 0u)
      << conformance_case.display << ": flight-ring evictions truncated postmortems";
}

std::string CaseName(const ::testing::TestParamInfo<std::size_t>& info) {
  const std::vector<ConformanceCase> suite = BuildConformanceSuite(1);
  std::string name = std::string(MechanismName(suite[info.index].mechanism)) + "_" +
                     suite[info.index].problem;
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  // Distinguish multiple cases of the same cell (e.g. two pathexpr readers-priority).
  name += "_" + std::to_string(info.index);
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllSolutions, ConformanceTest,
                         ::testing::Range<std::size_t>(0, BuildConformanceSuite(1).size()),
                         CaseName);

TEST(ConformanceSuiteTest, CoversEveryRegisteredMechanismProblemPair) {
  // Every solution in the registry should be exercised by at least one conformance case
  // (rw-fair and rw-fcfs are monitor/serializer-only, matching the registry).
  const std::vector<ConformanceCase> suite = BuildConformanceSuite(1);
  int matched = 0;
  for (const SolutionInfo& info : AllSolutionInfos()) {
    for (const ConformanceCase& c : suite) {
      if (c.mechanism == info.mechanism && c.problem == info.problem) {
        ++matched;
        break;
      }
    }
  }
  // Semaphore rw-fcfs/rw-fair are intentionally absent from the registry; all present
  // registry entries must be covered.
  EXPECT_EQ(matched, static_cast<int>(AllSolutionInfos().size()));
}

}  // namespace
}  // namespace syneval
