// Semaphores, latches, barriers, event counts.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/schedule.h"
#include "syneval/sync/primitives.h"
#include "syneval/sync/semaphore.h"

namespace syneval {
namespace {

TEST(CountingSemaphoreTest, CountsAndBlocks) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  CountingSemaphore sem(rt, 2);
  int inside = 0;
  int peak = 0;
  auto body = [&] {
    sem.P();
    ++inside;
    peak = std::max(peak, inside);
    for (int k = 0; k < 3; ++k) {
      rt.Yield();
    }
    --inside;
    sem.V();
  };
  std::vector<std::unique_ptr<RtThread>> threads;
  for (int i = 0; i < 4; ++i) {
    threads.push_back(rt.StartThread("t", body));
  }
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(sem.value(), 2);
}

TEST(CountingSemaphoreTest, TryPDoesNotBlock) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  CountingSemaphore sem(rt, 1);
  bool first = false;
  bool second = true;
  auto t = rt.StartThread("t", [&] {
    first = sem.TryP();
    second = sem.TryP();
    sem.V();
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
}

TEST(CountingSemaphoreTest, HooksRunUnderLock) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  CountingSemaphore sem(rt, 1);
  std::vector<int> log;
  auto t = rt.StartThread("t", [&] {
    sem.P([&] { log.push_back(1); });
    sem.V([&] { log.push_back(2); });
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(BinarySemaphoreTest, ClampsAtOne) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  BinarySemaphore sem(rt, false);
  bool acquired = false;
  auto t = rt.StartThread("t", [&] {
    sem.V();
    sem.V();  // Still just "open".
    acquired = sem.TryP();
    EXPECT_FALSE(sem.TryP());
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_TRUE(acquired);
}

TEST(FifoSemaphoreTest, GrantsInArrivalOrder) {
  DetRuntime rt(std::make_unique<RandomSchedule>(19));
  FifoSemaphore sem(rt, 0);
  int turn = 0;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    static_cast<void>(rt.StartThread("w" + std::to_string(i), [&, i] {
      while (turn != i) {
        rt.Yield();
      }
      sem.P([&turn] { ++turn; },  // Arrival hook, under the internal lock.
            [&order, i] { order.push_back(i); });
    }));
  }
  static_cast<void>(rt.StartThread("v", [&] {
    while (sem.waiters() != 3) {
      rt.Yield();
    }
    sem.V();
    sem.V();
    sem.V();
  }));
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(FifoSemaphoreTest, ImmediateGrantWhenFree) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  FifoSemaphore sem(rt, 1);
  bool granted = false;
  auto t = rt.StartThread("t", [&] {
    sem.P([&granted] { granted = true; });
    sem.V();
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_TRUE(granted);
  EXPECT_EQ(sem.value(), 1);
}

TEST(LatchTest, ReleasesAtZero) {
  DetRuntime rt(std::make_unique<RandomSchedule>(2));
  Latch latch(rt, 2);
  int done = 0;
  auto waiter = rt.StartThread("waiter", [&] {
    latch.Wait();
    EXPECT_EQ(done, 2);
  });
  for (int i = 0; i < 2; ++i) {
    static_cast<void>(rt.StartThread("worker", [&] {
      rt.Yield();
      ++done;
      latch.CountDown();
    }));
  }
  ASSERT_TRUE(rt.Run().completed);
}

TEST(BarrierTest, RendezvousAcrossGenerations) {
  DetRuntime rt(std::make_unique<RandomSchedule>(4));
  Barrier barrier(rt, 3);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3; ++i) {
    static_cast<void>(rt.StartThread("p" + std::to_string(i), [&, i] {
      for (int round = 0; round < 4; ++round) {
        counts[static_cast<std::size_t>(i)] = round;
        barrier.Arrive();
        // After each barrier, everyone finished the same round.
        for (int j = 0; j < 3; ++j) {
          EXPECT_GE(counts[static_cast<std::size_t>(j)], round);
        }
      }
    }));
  }
  ASSERT_TRUE(rt.Run().completed);
}

TEST(EventCountTest, AwaitReleasesAtThreshold) {
  DetRuntime rt(std::make_unique<RandomSchedule>(6));
  EventCount count(rt);
  std::vector<int> log;
  auto waiter = rt.StartThread("waiter", [&] {
    count.Await(3);
    log.push_back(static_cast<int>(count.Read()));
  });
  auto advancer = rt.StartThread("advancer", [&] {
    for (int i = 0; i < 5; ++i) {
      count.Advance();
      rt.Yield();
    }
  });
  ASSERT_TRUE(rt.Run().completed);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_GE(log[0], 3);
}

}  // namespace
}  // namespace syneval
