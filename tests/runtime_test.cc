// DetRuntime semantics: exclusivity, determinism, blocking, deadlock detection,
// schedule strategies, and interleaving exploration.

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/explore.h"
#include "syneval/runtime/os_runtime.h"
#include "syneval/runtime/schedule.h"

namespace syneval {
namespace {

TEST(DetRuntimeTest, RunsAllThreadsToCompletion) {
  DetRuntime rt(std::make_unique<RandomSchedule>(1));
  int a = 0;
  int b = 0;
  auto t1 = rt.StartThread("a", [&] { a = 1; });
  auto t2 = rt.StartThread("b", [&] { b = 2; });
  const DetRuntime::RunResult result = rt.Run();
  EXPECT_TRUE(result.completed) << result.report;
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(DetRuntimeTest, MutexProvidesMutualExclusion) {
  DetRuntime rt(std::make_unique<RandomSchedule>(7));
  auto mu = rt.CreateMutex();
  int counter = 0;
  auto body = [&] {
    for (int i = 0; i < 10; ++i) {
      RtLock lock(*mu);
      const int read = counter;
      rt.Yield();  // A preemption point inside the critical section.
      counter = read + 1;
    }
  };
  auto t1 = rt.StartThread("inc1", body);
  auto t2 = rt.StartThread("inc2", body);
  const DetRuntime::RunResult result = rt.Run();
  ASSERT_TRUE(result.completed) << result.report;
  EXPECT_EQ(counter, 20);
}

TEST(DetRuntimeTest, ExploresRacyInterleavings) {
  // Without a lock, a read-yield-write counter must lose updates on SOME schedule;
  // this shows the scheduler actually explores interleavings.
  auto trial = [](std::uint64_t seed) -> std::string {
    DetRuntime rt(std::make_unique<RandomSchedule>(seed));
    int counter = 0;
    auto body = [&] {
      for (int i = 0; i < 5; ++i) {
        const int read = counter;
        rt.Yield();
        counter = read + 1;
      }
    };
    auto t1 = rt.StartThread("r1", body);
    auto t2 = rt.StartThread("r2", body);
    const DetRuntime::RunResult result = rt.Run();
    if (!result.completed) {
      return result.report;
    }
    return counter == 10 ? "" : "lost update";
  };
  const SweepOutcome outcome = SweepSchedules(50, trial);
  EXPECT_GT(outcome.failures, 0) << "no schedule exhibited the race";
  EXPECT_GT(outcome.passes, 0) << "every schedule exhibited the race";
}

TEST(DetRuntimeTest, SameSeedIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    DetRuntime rt(std::make_unique<RandomSchedule>(seed));
    std::vector<int> order;
    auto mu = rt.CreateMutex();
    for (int i = 0; i < 4; ++i) {
      static_cast<void>(rt.StartThread("t" + std::to_string(i), [&rt, &order, &mu, i] {
        for (int k = 0; k < 3; ++k) {
          RtLock lock(*mu);
          order.push_back(i);
          rt.Yield();
        }
      }));
    }
    EXPECT_TRUE(rt.Run().completed);
    return order;
  };
  EXPECT_EQ(run(42), run(42));
  // And different seeds should (very likely) differ.
  EXPECT_NE(run(42), run(43));
}

TEST(DetRuntimeTest, CondVarHandshake) {
  DetRuntime rt(std::make_unique<RandomSchedule>(3));
  auto mu = rt.CreateMutex();
  auto cv = rt.CreateCondVar();
  bool ready = false;
  int seen = 0;
  auto consumer = rt.StartThread("consumer", [&] {
    RtLock lock(*mu);
    while (!ready) {
      cv->Wait(*mu);
    }
    seen = 1;
  });
  auto producer = rt.StartThread("producer", [&] {
    RtLock lock(*mu);
    ready = true;
    cv->NotifyOne();
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(seen, 1);
}

TEST(DetRuntimeTest, DetectsAbbaDeadlock) {
  DetRuntime::Options options;
  options.preempt_before_lock = true;
  DetRuntime rt(std::make_unique<ScriptedSchedule>(std::vector<std::uint32_t>{
                    1, 1, 2, 2, 1, 2, 1, 2, 1, 2}),
                options);
  auto a = rt.CreateMutex();
  auto b = rt.CreateMutex();
  auto t1 = rt.StartThread("ab", [&] {
    RtLock la(*a);
    rt.Yield();
    RtLock lb(*b);
  });
  auto t2 = rt.StartThread("ba", [&] {
    RtLock lb(*b);
    rt.Yield();
    RtLock la(*a);
  });
  const DetRuntime::RunResult result = rt.Run();
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.deadlocked) << result.report;
  EXPECT_NE(result.report.find("ab"), std::string::npos) << result.report;
  EXPECT_NE(result.report.find("ba"), std::string::npos) << result.report;
}

TEST(DetRuntimeTest, DeadlockFoundBySweepToo) {
  auto trial = [](std::uint64_t seed) -> std::string {
    DetRuntime rt(std::make_unique<RandomSchedule>(seed));
    auto a = rt.CreateMutex();
    auto b = rt.CreateMutex();
    auto t1 = rt.StartThread("ab", [&] {
      RtLock la(*a);
      rt.Yield();
      RtLock lb(*b);
    });
    auto t2 = rt.StartThread("ba", [&] {
      RtLock lb(*b);
      rt.Yield();
      RtLock la(*a);
    });
    const DetRuntime::RunResult result = rt.Run();
    return result.completed ? "" : "deadlock";
  };
  const SweepOutcome outcome = SweepSchedules(60, trial);
  EXPECT_GT(outcome.failures, 0) << "ABBA deadlock never triggered across 60 schedules";
}

TEST(DetRuntimeTest, StepLimitCatchesLivelock) {
  DetRuntime::Options options;
  options.max_steps = 500;
  DetRuntime rt(std::make_unique<RandomSchedule>(1), options);
  auto spinner = rt.StartThread("spinner", [&] {
    while (true) {
      rt.Yield();
    }
  });
  const DetRuntime::RunResult result = rt.Run();
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.step_limit) << result.report;
}

TEST(DetRuntimeTest, JoinBlocksUntilTargetFinishes) {
  DetRuntime rt(std::make_unique<RandomSchedule>(5));
  int stage = 0;
  auto worker = rt.StartThread("worker", [&] {
    rt.Yield();
    stage = 1;
  });
  RtThread* worker_raw = worker.get();
  auto waiter = rt.StartThread("waiter", [&, worker_raw] {
    worker_raw->Join();
    EXPECT_EQ(stage, 1);
    stage = 2;
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(stage, 2);
}

TEST(DetRuntimeTest, ThreadsCanSpawnThreads) {
  DetRuntime rt(std::make_unique<RandomSchedule>(9));
  int value = 0;
  auto parent = rt.StartThread("parent", [&] {
    auto child = rt.StartThread("child", [&] { value = 7; });
    child->Join();
    EXPECT_EQ(value, 7);
    value = 8;
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(value, 8);
}

TEST(DetRuntimeTest, NowNanosAdvancesWithSteps) {
  DetRuntime rt(std::make_unique<RandomSchedule>(1));
  std::uint64_t before = 0;
  std::uint64_t after = 0;
  auto t = rt.StartThread("t", [&] {
    before = rt.NowNanos();
    rt.Yield();
    rt.Yield();
    after = rt.NowNanos();
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_GT(after, before);
}

TEST(ScheduleTest, RoundRobinCycles) {
  RoundRobinSchedule schedule;
  std::vector<SchedCandidate> candidates = {{1, 0}, {2, 0}, {3, 0}};
  EXPECT_EQ(candidates[schedule.Pick(candidates, 1)].thread_id, 1u);
  EXPECT_EQ(candidates[schedule.Pick(candidates, 2)].thread_id, 2u);
  EXPECT_EQ(candidates[schedule.Pick(candidates, 3)].thread_id, 3u);
  EXPECT_EQ(candidates[schedule.Pick(candidates, 4)].thread_id, 1u);  // Wraps.
}

TEST(ScheduleTest, FifoPicksLongestReady) {
  FifoSchedule schedule;
  std::vector<SchedCandidate> candidates = {{1, 30}, {2, 10}, {3, 20}};
  EXPECT_EQ(candidates[schedule.Pick(candidates, 1)].thread_id, 2u);
}

TEST(ScheduleTest, ScriptedFollowsScriptWithFallback) {
  ScriptedSchedule schedule({2, 9, 1});
  std::vector<SchedCandidate> candidates = {{1, 0}, {2, 0}};
  EXPECT_EQ(candidates[schedule.Pick(candidates, 1)].thread_id, 2u);
  // 9 is not runnable: skipped, then 1.
  EXPECT_EQ(candidates[schedule.Pick(candidates, 2)].thread_id, 1u);
  // Script exhausted: falls back to the first candidate.
  EXPECT_EQ(candidates[schedule.Pick(candidates, 3)].thread_id, 1u);
}

TEST(ScheduleTest, RandomIsSeedDeterministic) {
  RandomSchedule a(11);
  RandomSchedule b(11);
  std::vector<SchedCandidate> candidates = {{1, 0}, {2, 0}, {3, 0}, {4, 0}};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.Pick(candidates, static_cast<std::uint64_t>(i)),
              b.Pick(candidates, static_cast<std::uint64_t>(i)));
  }
}

TEST(DetRuntimeTest, PreemptionOptionsChangeInterleavings) {
  // With preemption points disabled, a critical section of two lock-free... rather:
  // the same racy program becomes much harder to break because the only scheduling
  // points left are explicit yields — and stays deterministic.
  auto run = [](bool preempt) {
    DetRuntime::Options options;
    options.preempt_before_lock = preempt;
    options.preempt_after_notify = preempt;
    DetRuntime rt(std::make_unique<RandomSchedule>(3), options);
    auto mu = rt.CreateMutex();
    std::vector<int> order;
    for (int i = 0; i < 3; ++i) {
      static_cast<void>(rt.StartThread("t" + std::to_string(i), [&, i] {
        for (int k = 0; k < 2; ++k) {
          RtLock lock(*mu);
          order.push_back(i);
        }
      }));
    }
    EXPECT_TRUE(rt.Run().completed);
    return order;
  };
  // Both modes are deterministic per seed.
  EXPECT_EQ(run(true), run(true));
  EXPECT_EQ(run(false), run(false));
}

TEST(DetRuntimeTest, PctScheduleFindsRaceToo) {
  auto trial = [](std::uint64_t seed) -> std::string {
    DetRuntime rt(std::make_unique<PctSchedule>(seed, /*change_points=*/4,
                                                /*max_steps=*/200));
    int counter = 0;
    auto body = [&] {
      for (int i = 0; i < 5; ++i) {
        const int read = counter;
        rt.Yield();
        counter = read + 1;
      }
    };
    auto t1 = rt.StartThread("r1", body);
    auto t2 = rt.StartThread("r2", body);
    const DetRuntime::RunResult result = rt.Run();
    if (!result.completed) {
      return result.report;
    }
    return counter == 10 ? "" : "lost update";
  };
  const SweepOutcome outcome = SweepSchedules(50, trial);
  EXPECT_GT(outcome.failures, 0) << "PCT never exhibited the race";
}

TEST(DetRuntimeTest, CustomStepLimitIsRespected) {
  DetRuntime::Options options;
  options.max_steps = 25;
  DetRuntime rt(std::make_unique<FifoSchedule>(), options);
  auto spinner = rt.StartThread("spinner", [&] {
    while (true) {
      rt.Yield();
    }
  });
  const DetRuntime::RunResult result = rt.Run();
  EXPECT_TRUE(result.step_limit);
  EXPECT_LE(result.steps, 26u);
}

TEST(SweepTest, OutcomeAggregatesCorrectly) {
  const SweepOutcome outcome = SweepSchedules(
      5, [](std::uint64_t seed) { return seed % 2 == 0 ? "even seed fails" : ""; },
      /*base_seed=*/1);
  EXPECT_EQ(outcome.runs, 5);
  EXPECT_EQ(outcome.failures, 2);  // Seeds 2 and 4.
  EXPECT_EQ(outcome.passes, 3);
  ASSERT_EQ(outcome.failing_seeds.size(), 2u);
  EXPECT_EQ(outcome.failing_seeds[0], 2u);
  EXPECT_DOUBLE_EQ(outcome.FailureRate(), 0.4);
  EXPECT_FALSE(outcome.AllPassed());
  EXPECT_NE(outcome.Summary().find("3/5"), std::string::npos);
}

// Regression: a trial that aborts (throws) mid-sweep must not desynchronize the rate
// denominators. Before the fix, the exception unwound out of SweepSchedules, losing the
// remaining seeds — FailureRate() and AnomalyRate() then described different subsets of
// the sweep depending on where the abort happened. Both must be fractions of `runs`,
// and `runs` must count every attempted seed.
TEST(SweepTest, AbortingTrialKeepsRateDenominatorsConsistent) {
  const SweepOutcome outcome = SweepSchedules(
      10,
      std::function<TrialReport(std::uint64_t)>([](std::uint64_t seed) {
        if (seed == 3) {
          throw std::runtime_error("workload wedged");  // Aborts, doesn't end the sweep.
        }
        TrialReport report;
        if (seed % 2 == 0) {
          report.anomalies.starvations = 1;  // Anomalous but passing trial.
        }
        return report;
      }),
      /*base_seed=*/1);
  EXPECT_EQ(outcome.runs, 10);  // Every seed attempted, abort included.
  EXPECT_EQ(outcome.failures, 1);
  EXPECT_EQ(outcome.passes, 9);
  ASSERT_EQ(outcome.failing_seeds.size(), 1u);
  EXPECT_EQ(outcome.failing_seeds[0], 3u);
  EXPECT_NE(outcome.first_failure.find("trial aborted: workload wedged"),
            std::string::npos);
  // Same denominator: 1 abort / 10 runs and 5 anomalous seeds / 10 runs.
  EXPECT_DOUBLE_EQ(outcome.FailureRate(), 0.1);
  EXPECT_DOUBLE_EQ(outcome.AnomalyRate(), 0.5);
}

TEST(OsRuntimeTest, BasicThreadingAndIds) {
  OsRuntime rt;
  auto mu = rt.CreateMutex();
  int counter = 0;
  std::vector<std::uint32_t> ids;
  std::vector<std::unique_ptr<RtThread>> threads;
  for (int i = 0; i < 4; ++i) {
    threads.push_back(rt.StartThread("t", [&] {
      for (int k = 0; k < 100; ++k) {
        RtLock lock(*mu);
        ++counter;
      }
      RtLock lock(*mu);
      ids.push_back(rt.CurrentThreadId());
    }));
  }
  for (auto& thread : threads) {
    thread->Join();
  }
  EXPECT_EQ(counter, 400);
  EXPECT_EQ(ids.size(), 4u);
  // Ids are distinct and nonzero.
  for (std::uint32_t id : ids) {
    EXPECT_NE(id, 0u);
  }
}

}  // namespace
}  // namespace syneval
