// Tests for the telemetry layer: histogram bucketing/percentiles, lock-free counters
// under concurrency, registry dedupe and JSON, the Chrome/Perfetto exporter (golden
// output + structural checks), mechanism self-instrumentation under both runtimes, and
// the OsRuntime watchdog's gauge export.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "syneval/anomaly/detector.h"
#include "syneval/monitor/mesa_monitor.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/os_runtime.h"
#include "syneval/runtime/parallel_sweep.h"
#include "syneval/runtime/schedule.h"
#include "syneval/runtime/supervisor.h"
#include "syneval/sync/semaphore.h"
#include "syneval/telemetry/metrics.h"
#include "syneval/telemetry/perfetto.h"
#include "syneval/telemetry/tracer.h"

namespace syneval {
namespace {

// ---- Histogram --------------------------------------------------------------------------

TEST(HistogramTest, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(0), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(100), 0u);
}

TEST(HistogramTest, SingleSampleIsReportedExactly) {
  Histogram h;
  h.Record(1234);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Sum(), 1234u);
  EXPECT_EQ(h.Min(), 1234u);
  EXPECT_EQ(h.Max(), 1234u);
  // The bucket upper edge (2047) must clamp to the observed range.
  EXPECT_EQ(h.Percentile(0), 1234u);
  EXPECT_EQ(h.Percentile(50), 1234u);
  EXPECT_EQ(h.Percentile(99), 1234u);
  EXPECT_EQ(h.Percentile(100), 1234u);
}

TEST(HistogramTest, BucketEdges) {
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 1);
  EXPECT_EQ(Histogram::BucketFor(2), 2);
  EXPECT_EQ(Histogram::BucketFor(3), 2);
  EXPECT_EQ(Histogram::BucketFor(4), 3);
  EXPECT_EQ(Histogram::BucketFor(1024), 11);
  // Bucket i covers [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::BucketLowerBound(3), 4u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  for (std::uint64_t value : {std::uint64_t{1}, std::uint64_t{7}, std::uint64_t{4096},
                              std::uint64_t{1} << 40}) {
    const int bucket = Histogram::BucketFor(value);
    EXPECT_GE(value, Histogram::BucketLowerBound(bucket)) << value;
    EXPECT_LE(value, Histogram::BucketUpperBound(bucket)) << value;
  }
}

TEST(HistogramTest, OverflowBucketKeepsExtremeSamples) {
  EXPECT_EQ(Histogram::BucketFor(UINT64_MAX), 64);
  EXPECT_EQ(Histogram::BucketUpperBound(64), UINT64_MAX);
  Histogram h;
  h.Record(UINT64_MAX);
  h.Record(1);
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(h.Max(), UINT64_MAX);
  EXPECT_EQ(h.Percentile(100), UINT64_MAX);
  const std::vector<std::uint64_t> buckets = h.BucketCounts();
  EXPECT_EQ(buckets[64], 1u);
  EXPECT_EQ(buckets[1], 1u);
}

TEST(HistogramTest, PercentilesAreMonotoneAndBounded) {
  Histogram h;
  for (int repeat = 0; repeat < 20; ++repeat) {
    for (std::uint64_t value : {std::uint64_t{1}, std::uint64_t{10}, std::uint64_t{100},
                                std::uint64_t{1000}, std::uint64_t{10000}}) {
      h.Record(value);
    }
  }
  std::uint64_t previous = 0;
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    const std::uint64_t value = h.Percentile(p);
    EXPECT_GE(value, previous) << "p" << p;
    EXPECT_GE(value, h.Min()) << "p" << p;
    EXPECT_LE(value, h.Max()) << "p" << p;
    previous = value;
  }
  EXPECT_EQ(h.Percentile(100), h.Max());
}

TEST(HistogramTest, SingleOverflowSampleClampsAllPercentiles) {
  // One sample in the overflow bucket [2^63, 2^64): every percentile — including the
  // p=0 lower edge, whose bucket upper bound is UINT64_MAX — must clamp to the
  // observed min/max rather than report a bucket edge beyond the data.
  Histogram h;
  h.Record(UINT64_MAX - 1);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Min(), UINT64_MAX - 1);
  EXPECT_EQ(h.Max(), UINT64_MAX - 1);
  EXPECT_EQ(h.Percentile(0), UINT64_MAX - 1);
  EXPECT_EQ(h.Percentile(50), UINT64_MAX - 1);
  EXPECT_EQ(h.Percentile(100), UINT64_MAX - 1);
}

TEST(HistogramTest, PercentileEndpointsMatchMinAndMax) {
  Histogram h;
  for (std::uint64_t value = 1; value <= 512; ++value) {
    h.Record(value);
  }
  EXPECT_EQ(h.Percentile(0), h.Min());
  EXPECT_EQ(h.Percentile(100), h.Max());
  // Out-of-range requests clamp rather than index outside the bucket table.
  EXPECT_EQ(h.Percentile(-5), h.Percentile(0));
  EXPECT_EQ(h.Percentile(250), h.Percentile(100));
}

// ---- MergeWorkerTelemetry ---------------------------------------------------------------

TEST(MergeWorkerTelemetryTest, MergeIntoEmptyCopiesShard) {
  std::vector<WorkerTelemetry> into;
  std::vector<WorkerTelemetry> shard(2);
  shard[0] = WorkerTelemetry{0, 10, 4, 1, 0, 0.5};
  shard[1] = WorkerTelemetry{1, 12, 5, 0, 0, 0.75};
  MergeWorkerTelemetry(into, shard);
  ASSERT_EQ(into.size(), 2u);
  EXPECT_EQ(into[0].worker, 0);
  EXPECT_EQ(into[0].trials, 10);
  EXPECT_EQ(into[1].chunks, 5);
  EXPECT_DOUBLE_EQ(into[1].wall_seconds, 0.75);
}

TEST(MergeWorkerTelemetryTest, SumsByWorkerIndexAcrossShards) {
  std::vector<WorkerTelemetry> into;
  std::vector<WorkerTelemetry> first(2);
  first[0] = WorkerTelemetry{0, 10, 4, 1, 0, 0.5};
  first[1] = WorkerTelemetry{1, 12, 5, 0, 0, 0.75};
  std::vector<WorkerTelemetry> second(2);
  second[0] = WorkerTelemetry{0, 3, 2, 1, 0, 0.25};
  second[1] = WorkerTelemetry{1, 4, 3, 2, 0, 0.25};
  MergeWorkerTelemetry(into, first);
  MergeWorkerTelemetry(into, second);
  ASSERT_EQ(into.size(), 2u);
  EXPECT_EQ(into[0].trials, 13);
  EXPECT_EQ(into[0].chunks, 6);
  EXPECT_EQ(into[0].steals, 2);
  EXPECT_EQ(into[1].trials, 16);
  EXPECT_DOUBLE_EQ(into[1].wall_seconds, 1.0);
}

TEST(MergeWorkerTelemetryTest, WiderShardGrowsTheMerged) {
  // A later sweep run with more workers must extend the merged table; the existing
  // rows keep their sums and the new row starts from the shard's values.
  std::vector<WorkerTelemetry> into;
  std::vector<WorkerTelemetry> narrow(1);
  narrow[0] = WorkerTelemetry{0, 5, 5, 0, 0, 1.0};
  std::vector<WorkerTelemetry> wide(3);
  wide[0] = WorkerTelemetry{0, 1, 1, 0, 0, 0.1};
  wide[1] = WorkerTelemetry{1, 2, 2, 1, 0, 0.2};
  wide[2] = WorkerTelemetry{2, 3, 3, 0, 0, 0.3};
  MergeWorkerTelemetry(into, narrow);
  MergeWorkerTelemetry(into, wide);
  ASSERT_EQ(into.size(), 3u);
  EXPECT_EQ(into[0].trials, 6);
  EXPECT_EQ(into[1].trials, 2);
  EXPECT_EQ(into[2].worker, 2);
  EXPECT_EQ(into[2].trials, 3);
  // A narrower shard afterwards leaves the extra rows untouched.
  MergeWorkerTelemetry(into, narrow);
  ASSERT_EQ(into.size(), 3u);
  EXPECT_EQ(into[0].trials, 11);
  EXPECT_EQ(into[2].trials, 3);
}

// ---- Concurrency (exact totals; doubles as the TSan stress when sanitizers are on) ----

TEST(TelemetryConcurrencyTest, CountersAndHistogramsAreExactUnderContention) {
  Counter counter;
  Histogram histogram;
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter.Add(1);
        histogram.Record(static_cast<std::uint64_t>(i));
        gauge.Set(t);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.Value(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(histogram.Count(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(histogram.Min(), 0u);
  EXPECT_EQ(histogram.Max(), static_cast<std::uint64_t>(kOpsPerThread - 1));
  EXPECT_GE(gauge.Max(), gauge.Value());
}

TEST(GaugeTest, TracksHighWaterMark) {
  Gauge gauge;
  gauge.Set(3);
  gauge.Set(7);
  gauge.Set(2);
  EXPECT_EQ(gauge.Value(), 2);
  EXPECT_EQ(gauge.Max(), 7);
  gauge.Add(10);
  EXPECT_EQ(gauge.Value(), 12);
  EXPECT_EQ(gauge.Max(), 12);
}

// ---- Registry ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CreationIsIdempotent) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("ops");
  Counter& b = registry.GetCounter("ops");
  EXPECT_EQ(&a, &b);
  MechanismStats& m1 = registry.ForMechanism("monitor");
  MechanismStats& m2 = registry.ForMechanism("monitor");
  EXPECT_EQ(&m1, &m2);
  EXPECT_EQ(m1.name, "monitor");
  // The bundle's members are exposed under flat names in the same registry.
  EXPECT_EQ(&registry.GetHistogram("monitor/wait_ns"), &m1.wait);
  EXPECT_EQ(&registry.GetCounter("monitor/admissions"), &m1.admissions);
  EXPECT_EQ(&registry.GetGauge("monitor/queue_depth"), &m1.queue_depth);
  EXPECT_EQ(registry.MechanismNames(), std::vector<std::string>{"monitor"});
  EXPECT_EQ(registry.FindMechanism("monitor"), &m1);
  EXPECT_EQ(registry.FindMechanism("nope"), nullptr);
}

TEST(MetricsRegistryTest, SnapshotAndJsonCarryRecordedValues) {
  MetricsRegistry registry;
  registry.GetCounter("ops").Add(5);
  registry.GetGauge("depth").Set(3);
  registry.GetHistogram("lat").Record(100);
  MechanismStats& m = registry.ForMechanism("semaphore");
  m.wait.Record(42);

  const MetricsRegistry::Snapshot snapshot = registry.TakeSnapshot();
  bool saw_ops = false, saw_wait = false;
  for (const auto& sample : snapshot.counters) {
    if (sample.name == "ops") {
      saw_ops = true;
      EXPECT_EQ(sample.value, 5u);
    }
  }
  for (const auto& sample : snapshot.histograms) {
    if (sample.name == "semaphore/wait_ns") {
      saw_wait = true;
      EXPECT_EQ(sample.count, 1u);
      EXPECT_EQ(sample.p50, 42u);
    }
  }
  EXPECT_TRUE(saw_ops);
  EXPECT_TRUE(saw_wait);

  const std::string json = registry.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"ops\":5"), std::string::npos);
  EXPECT_NE(json.find("\"semaphore/wait_ns\""), std::string::npos);
  // Structural sanity: braces balance (the emitters write no unescaped braces).
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
    } else if (!in_string && c == '{') {
      ++depth;
    } else if (!in_string && c == '}') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

// ---- Perfetto / Chrome trace exporter ---------------------------------------------------

std::vector<Event> GoldenEvents() {
  std::vector<Event> events(4);
  events[0].seq = 1;
  events[0].op_instance = 1;
  events[0].thread = 1;
  events[0].kind = EventKind::kRequest;
  events[0].op = "put";
  events[0].param = 5;
  events[0].wall_ns = 1000;
  events[1] = events[0];
  events[1].seq = 2;
  events[1].kind = EventKind::kEnter;
  events[1].wall_ns = 2000;
  events[2] = events[0];
  events[2].seq = 3;
  events[2].kind = EventKind::kExit;
  events[2].value = 7;
  events[2].wall_ns = 3000;
  events[3].seq = 4;
  events[3].thread = 0;
  events[3].kind = EventKind::kMark;
  events[3].op = "tick";
  events[3].wall_ns = 3500;
  return events;
}

TEST(PerfettoExportTest, GoldenOutput) {
  TelemetryTracer tracer;
  int key = 0;
  tracer.OnSignal(&key, 1, 2500, /*broadcast=*/false);
  tracer.OnWake(&key, 2, 2600);

  const std::string golden =
      "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"generator\":\"syneval\"},"
      "\"traceEvents\":[\n"
      "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":"
      "\"syneval\"}},\n"
      "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":"
      "\"main\"}},\n"
      "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":"
      "\"t1\"}},\n"
      "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,\"args\":{\"name\":"
      "\"t2\"}},\n"
      "  {\"name\":\"wait:put\",\"cat\":\"wait\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
      "\"ts\":1.000,\"dur\":1.000,\"args\":{\"op_instance\":1,\"request_seq\":1}},\n"
      "  {\"name\":\"put\",\"cat\":\"op\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":2.000,"
      "\"dur\":1.000,\"args\":{\"op_instance\":1,\"enter_seq\":2,\"exit_seq\":3,"
      "\"param\":5,\"value\":7}},\n"
      "  {\"name\":\"signal\",\"cat\":\"sync\",\"ph\":\"s\",\"pid\":1,\"tid\":1,"
      "\"ts\":2.500,\"id\":1},\n"
      "  {\"name\":\"wakeup\",\"cat\":\"sync\",\"ph\":\"f\",\"pid\":1,\"tid\":2,"
      "\"ts\":2.600,\"id\":1,\"bp\":\"e\"},\n"
      "  {\"name\":\"tick\",\"cat\":\"mark\",\"ph\":\"i\",\"pid\":1,\"tid\":0,"
      "\"ts\":3.500,\"s\":\"t\"}\n"
      "]}\n";
  EXPECT_EQ(ExportChromeTrace(GoldenEvents(), &tracer), golden);
}

TEST(PerfettoExportTest, StructuralInvariants) {
  TelemetryTracer tracer;
  int key = 0;
  tracer.OnSignal(&key, 1, 2500, /*broadcast=*/true);
  tracer.OnWake(&key, 2, 2600);
  tracer.OnWake(&key, 3, 2700);  // Broadcast: one flow start, two finishes.
  tracer.AddSpan(4, "hold", "custom", 100, 900);

  ChromeTraceOptions options;
  options.pid = 7;
  options.process_name = "bench \"quoted\"";
  const std::string json = ExportChromeTrace(GoldenEvents(), &tracer, options);

  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":7"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"broadcast\""), std::string::npos);
  EXPECT_NE(json.find("bench \\\"quoted\\\""), std::string::npos);
  // Both wakeups share the broadcast's flow id: three "id":1 records total.
  std::size_t id_refs = 0;
  for (std::size_t pos = json.find("\"id\":1"); pos != std::string::npos;
       pos = json.find("\"id\":1", pos + 1)) {
    ++id_refs;
  }
  EXPECT_EQ(id_refs, 3u);
  std::size_t flow_ends = 0;
  for (std::size_t pos = json.find("\"ph\":\"f\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"f\"", pos + 1)) {
    ++flow_ends;
  }
  EXPECT_EQ(flow_ends, 2u);
}

TEST(PerfettoExportTest, LogicalTracesFallBackToSeqTimestamps) {
  std::vector<Event> events = GoldenEvents();
  for (Event& event : events) {
    event.wall_ns = 0;  // Pure deterministic trace.
  }
  const std::string json = ExportChromeTrace(events, nullptr);
  // seq * 1000 ns → seq microseconds: the request (seq 1) lands at ts 1.000.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":4.000"), std::string::npos);
}

TEST(PerfettoExportTest, WriteChromeTraceRoundTrips) {
  const std::string path = ::testing::TempDir() + "/syneval_trace_test.json";
  ASSERT_TRUE(WriteChromeTrace(path, GoldenEvents(), nullptr));
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  EXPECT_EQ(buffer.str(), ExportChromeTrace(GoldenEvents(), nullptr));
  std::remove(path.c_str());
}

// ---- Mechanism wiring (compiled-in builds only) -----------------------------------------

#if SYNEVAL_TELEMETRY_ENABLED

TEST(MechanismTelemetryTest, SemaphoreReportsWaitHoldAndSignals) {
  MetricsRegistry registry;
  OsRuntime rt;
  rt.AttachMetrics(&registry);
  CountingSemaphore sem(rt, 1);

  constexpr int kOps = 200;
  std::vector<std::unique_ptr<RtThread>> threads;
  for (int t = 0; t < 2; ++t) {
    threads.push_back(rt.StartThread("worker", [&] {
      for (int i = 0; i < kOps; ++i) {
        sem.P();
        sem.V();
      }
    }));
  }
  for (auto& thread : threads) {
    thread->Join();
  }

  const MechanismStats* stats = registry.FindMechanism("semaphore");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->admissions.Value(), 2u * kOps);
  EXPECT_EQ(stats->wait.Count(), 2u * kOps);   // Every admission records a wait sample.
  EXPECT_EQ(stats->signals.Value(), 2u * kOps);  // One V per P.
  EXPECT_EQ(stats->hold.Count(), 2u * kOps);   // Every V retires one unit tenure.
}

TEST(MechanismTelemetryTest, DetRuntimeMonitorRecordsIntoRegistryAndTracer) {
  MetricsRegistry registry;
  TelemetryTracer tracer;
  DetRuntime rt(MakeRandomSchedule(42));
  rt.AttachMetrics(&registry);
  rt.AttachTracer(&tracer);

  MesaMonitor monitor(rt);
  MesaMonitor::Condition nonempty(monitor);
  int available = 0;
  bool consumer_entered = false;  // Det runtime: cooperative, so this flag is race-free.
  auto consumer = rt.StartThread("consumer", [&] {
    MesaRegion region(monitor);
    consumer_entered = true;
    while (available == 0) {
      nonempty.Wait();
    }
    --available;
  });
  auto producer = rt.StartThread("producer", [&] {
    // Ensure the consumer blocks before the signal, so a signal→wakeup flow exists on
    // every schedule: once the flag is up, the consumer either holds the monitor (we
    // queue behind it) or is parked in Wait (we enter and wake it).
    while (!consumer_entered) {
      rt.Yield();
    }
    MesaRegion region(monitor);
    ++available;
    nonempty.Signal();
  });
  const DetRuntime::RunResult result = rt.Run();
  ASSERT_TRUE(result.completed) << result.report;

  const MechanismStats* stats = registry.FindMechanism("mesa_monitor");
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->admissions.Value(), 2u);  // Both bodies entered the monitor.
  EXPECT_EQ(stats->signals.Value(), 1u);
  EXPECT_GE(stats->hold.Count(), 2u);
  // The condvar-level signal→wakeup flow was traced by the deterministic runtime.
  bool saw_flow_start = false, saw_flow_end = false;
  for (const TelemetryTracer::Record& record : tracer.Snapshot()) {
    saw_flow_start |= record.type == TelemetryTracer::RecordType::kFlowStart;
    saw_flow_end |= record.type == TelemetryTracer::RecordType::kFlowEnd;
  }
  EXPECT_TRUE(saw_flow_start);
  EXPECT_TRUE(saw_flow_end);
}

// ---- Watchdog gauge export --------------------------------------------------------------

TEST(WatchdogTelemetryTest, SnapshotWaitsCountsOpenWaits) {
  AnomalyDetector det;
  det.RegisterThread(1, "waiter");
  int resource = 0;
  det.RegisterResource(&resource, ResourceKind::kCondition, "cond");
  AnomalyDetector::WaitSnapshot snapshot = det.SnapshotWaits(1'000'000);
  EXPECT_EQ(snapshot.blocked_threads, 0);
  det.OnBlock(1, &resource);
  snapshot = det.SnapshotWaits(1'000'000'000'000);
  EXPECT_EQ(snapshot.blocked_threads, 1);
  EXPECT_GE(snapshot.longest_wait_nanos, 0);
  det.OnWake(1, &resource);
  snapshot = det.SnapshotWaits(1'000'000'000'000);
  EXPECT_EQ(snapshot.blocked_threads, 0);
}

TEST(WatchdogTelemetryTest, WatchdogExportsGauges) {
  AnomalyDetector det;
  MetricsRegistry registry;
  OsRuntime rt;
  rt.AttachAnomalyDetector(&det);
  rt.AttachMetrics(&registry);
  CountingSemaphore sem(rt, 0);
  auto waiter = rt.StartThread("blocked", [&] { sem.P(); });
  rt.StartAnomalyWatchdog(std::chrono::milliseconds(10));
  // Wait until the watchdog has observed the blocked P (bounded at ~2s).
  bool observed = false;
  for (int i = 0; i < 400 && !observed; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    observed = registry.GetGauge("anomaly/blocked_threads").Max() >= 1;
  }
  sem.V();
  waiter->Join();
  rt.StopAnomalyWatchdog();
  EXPECT_TRUE(observed);
  EXPECT_GE(registry.GetGauge("anomaly/longest_wait_ns").Max(), 0);
}

TEST(WatchdogTelemetryTest, WatchdogExportsLoadAdaptiveThreshold) {
  AnomalyDetector::Options det_options;
  det_options.stuck_wait_nanos = 100'000'000;  // 100ms base threshold.
  AnomalyDetector det(det_options);
  MetricsRegistry registry;
  OsRuntime rt;
  rt.AttachAnomalyDetector(&det);
  rt.AttachMetrics(&registry);

  // Three extra registered trials on top of whatever baseline this process carries:
  // the watchdog must scale the detector's threshold by ActiveTrials() and export the
  // effective value as a gauge.
  ActiveTrialScope one;
  ActiveTrialScope two;
  ActiveTrialScope three;
  const int load = ActiveTrials();
  ASSERT_GE(load, 3);
  rt.StartAnomalyWatchdog(std::chrono::milliseconds(5));
  bool scaled = false;
  for (int i = 0; i < 400 && !scaled; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    scaled = registry.GetGauge("anomaly/effective_stuck_wait_ms").Max() >= 100 * load;
  }
  rt.StopAnomalyWatchdog();
  EXPECT_TRUE(scaled) << "effective_stuck_wait_ms gauge max = "
                      << registry.GetGauge("anomaly/effective_stuck_wait_ms").Max();
  EXPECT_GE(det.effective_stuck_wait_nanos(),
            static_cast<std::int64_t>(load) * 100'000'000);
}

#endif  // SYNEVAL_TELEMETRY_ENABLED

}  // namespace
}  // namespace syneval
