// Conditional critical region semantics: exclusion, condition waiting, re-test at
// region exits, arrival-order admission among satisfied waiters, handoff atomicity.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "syneval/ccr/critical_region.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/explore.h"
#include "syneval/runtime/schedule.h"

namespace syneval {
namespace {

TEST(CriticalRegionTest, BodiesAreMutuallyExclusive) {
  DetRuntime rt(std::make_unique<RandomSchedule>(5));
  CriticalRegion region(rt);
  int counter = 0;
  auto body = [&] {
    for (int i = 0; i < 10; ++i) {
      region.Enter([&] {
        const int read = counter;
        rt.Yield();  // Preemption inside the body: nobody may interleave.
        counter = read + 1;
      });
    }
  };
  auto t1 = rt.StartThread("a", body);
  auto t2 = rt.StartThread("b", body);
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(counter, 20);
}

TEST(CriticalRegionTest, WhenBlocksUntilConditionHolds) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  CriticalRegion region(rt);
  bool open = false;
  std::vector<std::string> log;
  auto waiter = rt.StartThread("waiter", [&] {
    region.When([&] { return open; }, [&] { log.push_back("through"); });
  });
  auto opener = rt.StartThread("opener", [&] {
    // Region bodies must not call region operations (the lock is not recursive), so
    // the wait-for-waiter poll happens outside the region.
    while (region.Waiting() == 0) {
      rt.Yield();
    }
    region.Enter([&] {
      open = true;
      log.push_back("opened");
    });
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(log, (std::vector<std::string>{"opened", "through"}));
}

TEST(CriticalRegionTest, SatisfiedWaitersAdmittedInArrivalOrder) {
  DetRuntime rt(std::make_unique<RandomSchedule>(9));
  CriticalRegion region(rt);
  int turn = 0;
  bool open = false;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    static_cast<void>(rt.StartThread("w" + std::to_string(i), [&, i] {
      CriticalRegion::Hooks hooks;
      hooks.on_arrive = [&turn] { ++turn; };
      while (turn != i) {
        rt.Yield();
      }
      region.When([&open] { return open; }, [&order, i] { order.push_back(i); }, hooks);
    }));
  }
  static_cast<void>(rt.StartThread("opener", [&] {
    while (region.Waiting() < 3) {
      rt.Yield();
    }
    region.Enter([&] { open = true; });
  }));
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(CriticalRegionTest, FalseConditionDoesNotBlockOthers) {
  // Unlike serializer FIFO queues, EVERY waiting condition is tested: a false head
  // must not block a satisfied later arrival.
  DetRuntime rt(std::make_unique<FifoSchedule>());
  CriticalRegion region(rt);
  bool never = false;
  bool second_arrived = false;
  std::vector<std::string> log;
  auto first = rt.StartThread("first", [&] {
    region.When([&] { return never; }, [&] { log.push_back("first"); });
  });
  auto second = rt.StartThread("second", [&] {
    while (region.Waiting() == 0) {
      rt.Yield();
    }
    second_arrived = true;
    region.When([] { return true; }, [&] { log.push_back("second"); });
  });
  auto releaser = rt.StartThread("releaser", [&] {
    while (log.empty()) {
      rt.Yield();
    }
    region.Enter([&] { never = true; });  // Finally admit the first waiter.
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(log, (std::vector<std::string>{"second", "first"}));
  EXPECT_TRUE(second_arrived);
}

TEST(CriticalRegionTest, HandoffIsAtomic) {
  // A granted waiter's body must see exactly the state its condition approved: a
  // condition awaiting token == k admits precisely once per k.
  DetRuntime rt(std::make_unique<RandomSchedule>(21));
  CriticalRegion region(rt);
  int token = 0;
  std::vector<int> served;
  for (int i = 3; i >= 1; --i) {
    static_cast<void>(rt.StartThread("w" + std::to_string(i), [&, i] {
      region.When([&token, i] { return token == i; },
                  [&] {
                    served.push_back(i);
                    EXPECT_EQ(token, i);  // Condition still holds in the body.
                  });
    }));
  }
  static_cast<void>(rt.StartThread("driver", [&] {
    for (int k = 1; k <= 3; ++k) {
      while (static_cast<int>(served.size()) < k) {
        region.Enter([&] { token = k; });
        rt.Yield();
      }
    }
  }));
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(served, (std::vector<int>{1, 2, 3}));
}

TEST(CriticalRegionTest, HooksFireInProtocolOrder) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  CriticalRegion region(rt);
  std::vector<std::string> log;
  CriticalRegion::Hooks hooks;
  hooks.on_arrive = [&] { log.push_back("arrive"); };
  hooks.on_admit = [&] { log.push_back("admit"); };
  hooks.on_release = [&] { log.push_back("release"); };
  auto t = rt.StartThread("t", [&] {
    region.When([] { return true; }, [&] { log.push_back("body"); }, hooks);
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(log, (std::vector<std::string>{"arrive", "admit", "body", "release"}));
}

TEST(CriticalRegionTest, StressCountersUnderManySchedules) {
  const SweepOutcome outcome = SweepSchedules(20, [](std::uint64_t seed) -> std::string {
    DetRuntime rt(std::make_unique<RandomSchedule>(seed));
    CriticalRegion region(rt);
    int balance = 0;
    auto producer = rt.StartThread("p", [&] {
      for (int i = 0; i < 5; ++i) {
        region.When([&] { return balance < 2; }, [&] { ++balance; });
      }
    });
    auto consumer = rt.StartThread("c", [&] {
      for (int i = 0; i < 5; ++i) {
        region.When([&] { return balance > 0; }, [&] { --balance; });
      }
    });
    const DetRuntime::RunResult result = rt.Run();
    if (!result.completed) {
      return result.report;
    }
    return balance == 0 ? "" : "unbalanced";
  });
  EXPECT_TRUE(outcome.AllPassed()) << outcome.Summary();
}

}  // namespace
}  // namespace syneval
