// Tests for the flight recorder (seqlock snapshot semantics, ring eviction, name
// resolution, the TraceRecorder bridge) and the postmortem builder (cause inference,
// deadlock/lost-wakeup narratives, fault-family mapping, JSON shape, chaos replay).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "syneval/anomaly/detector.h"
#include "syneval/core/conformance.h"
#include "syneval/fault/chaos.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/schedule.h"
#include "syneval/telemetry/flight_recorder.h"
#include "syneval/telemetry/postmortem.h"

namespace syneval {
namespace {

// ---- FlightRecorder ---------------------------------------------------------------------

TEST(FlightRecorderTest, RecordsInGlobalSeqOrder) {
  FlightRecorder recorder;
  int a = 0;
  int b = 0;
  recorder.Record(1, FlightEventType::kAcquire, &a, 100);
  recorder.Record(2, FlightEventType::kBlock, &b, 200, 7);
  recorder.Record(1, FlightEventType::kRelease, &a, 300);

  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].thread, 1u);
  EXPECT_EQ(events[0].type, FlightEventType::kAcquire);
  EXPECT_EQ(events[0].resource, &a);
  EXPECT_EQ(events[0].time_nanos, 100u);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[1].arg, 7u);
  EXPECT_EQ(events[2].type, FlightEventType::kRelease);
  EXPECT_EQ(recorder.recorded(), 3u);
  EXPECT_EQ(recorder.evicted(), 0u);
}

TEST(FlightRecorderTest, RingEvictionKeepsTheMostRecentEvents) {
  FlightRecorder::Options options;
  options.rings = 1;
  options.events_per_ring = 8;  // The constructor clamps smaller rings up to 8.
  FlightRecorder recorder(options);
  int resource = 0;
  for (std::uint64_t i = 0; i < 20; ++i) {
    recorder.Record(0, FlightEventType::kAcquire, &resource, i);
  }
  EXPECT_EQ(recorder.recorded(), 20u);
  EXPECT_EQ(recorder.evicted(), 12u);
  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The survivors are the last eight records, still in seq order.
  EXPECT_EQ(events.front().seq, 13u);
  EXPECT_EQ(events.back().seq, 20u);
}

TEST(FlightRecorderTest, GrowOnEvictRetainsEveryEvent) {
  FlightRecorder::Options options;
  options.rings = 1;
  options.events_per_ring = 8;
  options.grow_on_evict = true;
  options.max_events_per_ring = 1024;
  FlightRecorder recorder(options);
  int resource = 0;
  for (std::uint64_t i = 1; i <= 500; ++i) {
    recorder.Record(0, FlightEventType::kAcquire, &resource, i);
  }
  EXPECT_EQ(recorder.recorded(), 500u);
  EXPECT_EQ(recorder.evicted(), 0u);
  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 500u);
  // Growth preserved the oldest events (a fixed ring would have kept only the tail).
  EXPECT_EQ(events.front().seq, 1u);
  EXPECT_EQ(events.back().seq, 500u);
}

TEST(FlightRecorderTest, GrowthStopsAtTheCapAndEvictsBeyondIt) {
  FlightRecorder::Options options;
  options.rings = 1;
  options.events_per_ring = 8;
  options.grow_on_evict = true;
  options.max_events_per_ring = 32;
  FlightRecorder recorder(options);
  int resource = 0;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    recorder.Record(0, FlightEventType::kAcquire, &resource, i);
  }
  EXPECT_EQ(recorder.recorded(), 100u);
  const std::vector<FlightEvent> events = recorder.Snapshot();
  // Retained + evicted always accounts for every record, and retention is capped.
  EXPECT_EQ(events.size() + recorder.evicted(), 100u);
  EXPECT_LE(events.size(), 32u);
  EXPECT_GT(recorder.evicted(), 0u);
  // Snapshot stays globally seq-ordered across the segment chain, newest included.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
  EXPECT_EQ(events.back().seq, 100u);
}

TEST(FlightRecorderTest, ClearAfterGrowthResetsTheChain) {
  FlightRecorder::Options options;
  options.rings = 1;
  options.events_per_ring = 8;
  options.grow_on_evict = true;
  options.max_events_per_ring = 256;
  FlightRecorder recorder(options);
  int resource = 0;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    recorder.Record(0, FlightEventType::kAcquire, &resource, i);
  }
  recorder.Clear();
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.evicted(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
  recorder.Record(0, FlightEventType::kRelease, &resource, 1);
  EXPECT_EQ(recorder.Snapshot().size(), 1u);
}

TEST(FlightRecorderTest, ForWorkloadSizesRingsToTheLoad) {
  const FlightRecorder::Options mid = FlightRecorder::Options::ForWorkload(6, 100);
  EXPECT_EQ(mid.rings, 8);             // Next power of two >= 6 threads.
  EXPECT_EQ(mid.events_per_ring, 128);  // Next power of two >= 100 events.
  EXPECT_TRUE(mid.grow_on_evict);
  EXPECT_GE(mid.max_events_per_ring, mid.events_per_ring);

  const FlightRecorder::Options tiny = FlightRecorder::Options::ForWorkload(0, 0);
  EXPECT_EQ(tiny.rings, 1);
  EXPECT_EQ(tiny.events_per_ring, 8);

  const FlightRecorder::Options huge =
      FlightRecorder::Options::ForWorkload(100000, 1 << 30);
  EXPECT_LE(huge.rings, 512);
  EXPECT_LE(huge.events_per_ring, 8192);
}

TEST(FlightRecorderTest, ForTrialGrowsInsteadOfEvicting) {
  // The per-trial default starts small but must absorb a busy single-ring trial
  // without dropping its earliest events (they anchor postmortem narratives).
  FlightRecorder recorder(FlightRecorder::Options::ForTrial());
  int resource = 0;
  for (std::uint64_t i = 1; i <= 2000; ++i) {
    recorder.Record(0, FlightEventType::kAcquire, &resource, i);
  }
  EXPECT_EQ(recorder.evicted(), 0u);
  EXPECT_EQ(recorder.Snapshot().size(), 2000u);
}

TEST(FlightRecorderTest, ArgSaturatesAtTwentyFourBits) {
  FlightRecorder recorder;
  int resource = 0;
  recorder.Record(3, FlightEventType::kSignal, &resource, 1, (1u << 24) - 1);
  recorder.Record(3, FlightEventType::kSignal, &resource, 2, (1ull << 40));
  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].arg, (1u << 24) - 1);
  EXPECT_EQ(events[1].arg, (1u << 24) - 1);  // Saturated, not truncated.
}

TEST(FlightRecorderTest, NamesDedupeAndFallBack) {
  FlightRecorder recorder;
  int a = 0;
  int b = 0;
  int unnamed = 0;
  EXPECT_EQ(recorder.RegisterName(&a, "mutex"), "mutex");
  EXPECT_EQ(recorder.RegisterName(&b, "mutex"), "mutex#2");
  EXPECT_EQ(recorder.NameOf(&a), "mutex");
  EXPECT_EQ(recorder.NameOf(&b), "mutex#2");
  EXPECT_EQ(recorder.NameOf(nullptr), "-");
  EXPECT_EQ(recorder.NameOf(&unnamed).rfind("0x", 0), 0u);

  const void* label = recorder.InternLabel("deposit");
  ASSERT_NE(label, nullptr);
  EXPECT_EQ(recorder.NameOf(label), "deposit");
  // Interning is stable: the same label resolves to the same key.
  EXPECT_EQ(recorder.InternLabel("deposit"), label);
}

TEST(FlightRecorderTest, ClearResetsRingsAndCounters) {
  FlightRecorder recorder;
  int resource = 0;
  recorder.Record(0, FlightEventType::kAcquire, &resource, 1);
  recorder.Clear();
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.evicted(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(FlightRecorderTest, SnapshotIsSafeWhileWritersAreGrowing) {
  // Same shape as the fixed-ring concurrency smoke below, but with grow-on-evict so
  // the snapshot races against GrowOrWrap publishing new segments. Under the TSan CI
  // config this is the proof that segment hand-off is properly synchronized.
  FlightRecorder::Options options;
  options.rings = 2;
  options.events_per_ring = 8;
  options.grow_on_evict = true;
  options.max_events_per_ring = 4096;
  FlightRecorder recorder(options);
  int resource = 0;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&recorder, &resource, &stop, w] {
      std::uint64_t i = 0;
      do {
        ++i;
        recorder.Record(static_cast<std::uint32_t>(w), FlightEventType::kAcquire,
                        &resource, i, i);
      } while (i < 1000 || !stop.load(std::memory_order_relaxed));
    });
  }
  for (int i = 0; i < 100; ++i) {
    const std::vector<FlightEvent> events = recorder.Snapshot();
    std::uint64_t previous = 0;
    for (const FlightEvent& event : events) {
      EXPECT_GT(event.seq, previous);
      previous = event.seq;
      EXPECT_EQ(event.type, FlightEventType::kAcquire);
      EXPECT_EQ(event.resource, &resource);
    }
  }
  stop.store(true);
  for (std::thread& writer : writers) {
    writer.join();
  }
  // Quiescent accounting: every record is either retained in some segment or counted
  // as evicted past the cap.
  EXPECT_EQ(recorder.Snapshot().size() + recorder.evicted(), recorder.recorded());
}

TEST(FlightRecorderTest, SnapshotIsSafeWhileWritersAreRecording) {
  // Concurrency smoke (the TSan proof-in-anger when sanitizers are on): writers hammer
  // a deliberately tiny ring while a reader snapshots; every snapshot must be
  // seq-ordered and contain no torn slot (a torn slot would decode to garbage types).
  FlightRecorder::Options options;
  options.rings = 2;
  options.events_per_ring = 8;
  FlightRecorder recorder(options);
  int resource = 0;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&recorder, &resource, &stop, w] {
      // Record a floor of events even if `stop` flips before this thread is scheduled,
      // so the reader below always races against live writes.
      std::uint64_t i = 0;
      do {
        ++i;
        recorder.Record(static_cast<std::uint32_t>(w), FlightEventType::kAcquire,
                        &resource, i, i);
      } while (i < 1000 || !stop.load(std::memory_order_relaxed));
    });
  }
  for (int i = 0; i < 200; ++i) {
    const std::vector<FlightEvent> events = recorder.Snapshot();
    std::uint64_t previous = 0;
    for (const FlightEvent& event : events) {
      EXPECT_GT(event.seq, previous);
      previous = event.seq;
      EXPECT_EQ(event.type, FlightEventType::kAcquire);
      EXPECT_EQ(event.resource, &resource);
      EXPECT_LT(event.thread, 4u);
    }
  }
  stop.store(true);
  for (std::thread& writer : writers) {
    writer.join();
  }
  EXPECT_GT(recorder.recorded(), 0u);
}

// ---- FaultCauseFamily -------------------------------------------------------------------

TEST(FaultCauseFamilyTest, MapsLabelsToCalibrationFamilies) {
  EXPECT_EQ(FaultCauseFamily("drop-signal"), "lost-signal");
  EXPECT_EQ(FaultCauseFamily("drop-notify"), "lost-signal");
  EXPECT_EQ(FaultCauseFamily("drop-broadcast"), "lost-signal");
  EXPECT_EQ(FaultCauseFamily("stall"), "stall");
  EXPECT_EQ(FaultCauseFamily("delay-lock"), "stall");
  // The injector's mirror labels carry a "fault." prefix.
  EXPECT_EQ(FaultCauseFamily("fault.drop-signal"), "lost-signal");
  EXPECT_EQ(FaultCauseFamily("fault.stall"), "stall");
  // Unknown families name themselves.
  EXPECT_EQ(FaultCauseFamily("kill-thread"), "kill-thread");
}

// ---- BuildPostmortem --------------------------------------------------------------------

TEST(PostmortemTest, EmptyRecorderAndNoDetectorYieldsEmptyPostmortem) {
  FlightRecorder recorder;
  const Postmortem pm = BuildPostmortem(recorder, nullptr);
  EXPECT_TRUE(pm.empty());
  EXPECT_EQ(pm.cause, "");
}

TEST(PostmortemTest, InjectedFaultIsTheCauseByGroundTruth) {
  FlightRecorder recorder;
  int condvar = 0;
  recorder.Record(1, FlightEventType::kSignal, &condvar, 100, 0);
  recorder.Record(1, FlightEventType::kFaultFired,
                  recorder.InternLabel("fault.drop-signal"), 150, 2);
  recorder.Record(2, FlightEventType::kBlock, &condvar, 200);
  const Postmortem pm = BuildPostmortem(recorder, nullptr);
  EXPECT_EQ(pm.cause, "lost-signal");
  EXPECT_FALSE(pm.empty());
  bool fault_in_narrative = false;
  for (const std::string& line : pm.narrative) {
    if (line.find("fault.drop-signal") != std::string::npos) {
      fault_in_narrative = true;
    }
  }
  EXPECT_TRUE(fault_in_narrative) << pm.ToText();
}

TEST(PostmortemTest, DeadlockNarrativeNamesHoldWaitEdges) {
  // The ABBA deadlock: each thread holds one mutex and blocks on the other. The
  // postmortem must classify the cause as deadlock and reconstruct both hold/wait
  // edges with the acquisition events.
  DetRuntime runtime(MakeRandomSchedule(11));
  AnomalyDetector detector;
  FlightRecorder recorder;
  runtime.AttachAnomalyDetector(&detector);
  runtime.AttachFlightRecorder(&recorder);

  auto lock_a = runtime.CreateMutex();
  auto lock_b = runtime.CreateMutex();
  std::atomic<bool> a_held{false};
  std::atomic<bool> b_held{false};
  auto t1 = runtime.StartThread("first", [&] {
    lock_a->Lock();
    a_held.store(true);
    while (!b_held.load()) {
      runtime.Yield();
    }
    lock_b->Lock();
    lock_b->Unlock();
    lock_a->Unlock();
  });
  auto t2 = runtime.StartThread("second", [&] {
    lock_b->Lock();
    b_held.store(true);
    while (!a_held.load()) {
      runtime.Yield();
    }
    lock_a->Lock();
    lock_a->Unlock();
    lock_b->Unlock();
  });
  const DetRuntime::RunResult result = runtime.Run();
  ASSERT_TRUE(result.deadlocked);

  const Postmortem pm = BuildPostmortem(recorder, &detector);
  EXPECT_EQ(pm.cause, "deadlock");
  int hold_wait_edges = 0;
  for (const std::string& line : pm.narrative) {
    if (line.find("holds") != std::string::npos &&
        line.find("blocked on") != std::string::npos &&
        line.find("acquired at seq") != std::string::npos) {
      ++hold_wait_edges;
    }
  }
  EXPECT_GE(hold_wait_edges, 2) << pm.ToText();
  EXPECT_FALSE(pm.window.empty());
  EXPECT_NE(pm.summary.find("deadlock"), std::string::npos);
}

TEST(PostmortemTest, ToJsonCarriesCauseNarrativeAndEvents) {
  FlightRecorder recorder;
  int condvar = 0;
  recorder.Record(1, FlightEventType::kFaultFired,
                  recorder.InternLabel("fault.stall"), 100, 4);
  recorder.Record(2, FlightEventType::kBlock, &condvar, 200);
  const Postmortem pm = BuildPostmortem(recorder, nullptr);
  const std::string json = pm.ToJson();
  EXPECT_NE(json.find("\"cause\":\"stall\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"narrative\":["), std::string::npos);
  EXPECT_NE(json.find("\"events\":["), std::string::npos);
  EXPECT_NE(json.find("\"events_recorded\":2"), std::string::npos);
}

// ---- Replay integration -----------------------------------------------------------------

TEST(PostmortemTest, ChaosLostSignalReplayNamesTheInjectedFamily) {
#if SYNEVAL_TELEMETRY_ENABLED
  // Monitor bounded buffer under drop-signal, the calibration's headline row: every
  // harmful seed must postmortem to "lost-signal" (the recall gate in chaos_sweep
  // asserts this over the whole sweep; one deterministic seed is enough here).
  const std::optional<ChaosReplayResult> replay =
      ReplayChaosTrial("bounded-buffer", Mechanism::kMonitor, "lost-signal",
                       /*seed=*/1);
  ASSERT_TRUE(replay.has_value());
  ASSERT_TRUE(replay->outcome.hung || replay->outcome.anomalies > 0);
  EXPECT_EQ(replay->postmortem.cause, "lost-signal") << replay->postmortem.ToText();
  EXPECT_EQ(replay->outcome.postmortem_cause, "lost-signal");
  EXPECT_FALSE(replay->events.empty());
#else
  GTEST_SKIP() << "flight-recorder fault mirroring is compiled out";
#endif
}

TEST(PostmortemTest, CleanConformanceTrialHasNoPostmortem) {
  const std::vector<ConformanceCase> suite = BuildConformanceSuite();
  const ConformanceCase* clean = nullptr;
  for (const ConformanceCase& conformance_case : suite) {
    if (conformance_case.problem == "bounded-buffer" &&
        conformance_case.mechanism == Mechanism::kMonitor) {
      clean = &conformance_case;
      break;
    }
  }
  ASSERT_NE(clean, nullptr);
  const ConformanceReplay replay = ReplayConformanceTrial(*clean, /*seed=*/1);
  EXPECT_TRUE(replay.report.Passed()) << replay.report.message;
  EXPECT_TRUE(replay.postmortem.empty());
  EXPECT_TRUE(replay.report.postmortem.empty());
  EXPECT_FALSE(replay.events.empty());  // The capture still carries the clean trace.
}

}  // namespace
}  // namespace syneval
