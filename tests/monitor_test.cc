// Hoare monitor semantics: signal-and-urgent-wait, FIFO conditions, priority
// conditions, urgent-queue precedence, and the Mesa contrast.
//
// Tests force arrival orders with explicit in-monitor handshakes so that expectations
// follow from the monitor semantics, not from a particular schedule.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "syneval/monitor/hoare_monitor.h"
#include "syneval/monitor/mesa_monitor.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/schedule.h"

namespace syneval {
namespace {

TEST(HoareMonitorTest, SignalTransfersMonitorImmediately) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  HoareMonitor monitor(rt);
  HoareMonitor::Condition cond(monitor);
  std::vector<std::string> log;

  auto waiter = rt.StartThread("waiter", [&] {
    MonitorRegion region(monitor);
    log.push_back("waiter:waiting");
    cond.Wait();
    log.push_back("waiter:resumed");
  });
  auto signaller = rt.StartThread("signaller", [&] {
    while (true) {
      {
        MonitorRegion region(monitor);
        if (!cond.Empty()) {
          log.push_back("signaller:before-signal");
          cond.Signal();
          log.push_back("signaller:after-signal");
          break;
        }
      }
      rt.Yield();  // The waiter has not waited yet; try again.
    }
  });
  ASSERT_TRUE(rt.Run().completed);
  const std::vector<std::string> expected = {
      "waiter:waiting",
      "signaller:before-signal",
      "waiter:resumed",          // Hoare: the signalled process runs at once...
      "signaller:after-signal",  // ...and the signaller resumes only afterwards.
  };
  EXPECT_EQ(log, expected);
}

TEST(HoareMonitorTest, SignalOnEmptyConditionIsNoOp) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  HoareMonitor monitor(rt);
  HoareMonitor::Condition cond(monitor);
  bool done = false;
  auto t = rt.StartThread("t", [&] {
    MonitorRegion region(monitor);
    cond.Signal();
    done = true;
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_TRUE(done);
}

// Forces waiters onto the condition in index order via a turn counter, then signals
// repeatedly; Hoare conditions must wake them FIFO.
TEST(HoareMonitorTest, ConditionQueueIsFifo) {
  DetRuntime rt(std::make_unique<RandomSchedule>(17));
  HoareMonitor monitor(rt);
  HoareMonitor::Condition cond(monitor);
  int turn = 0;
  std::vector<int> wake_order;

  for (int i = 0; i < 3; ++i) {
    static_cast<void>(rt.StartThread("waiter" + std::to_string(i), [&, i] {
      while (true) {
        {
          MonitorRegion region(monitor);
          if (turn == i) {
            ++turn;
            cond.Wait();
            wake_order.push_back(i);
            return;
          }
        }
        rt.Yield();
      }
    }));
  }
  static_cast<void>(rt.StartThread("signaller", [&] {
    int signalled = 0;
    while (signalled < 3) {
      bool did_signal = false;
      {
        MonitorRegion region(monitor);
        if (turn == 3 && !cond.Empty()) {
          cond.Signal();
          ++signalled;
          did_signal = true;
        }
      }
      if (!did_signal) {
        rt.Yield();  // Outside the monitor, so waiters can make progress.
      }
    }
  }));
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_EQ(wake_order, (std::vector<int>{0, 1, 2}));
}

TEST(HoareMonitorTest, PriorityConditionWakesMinimumFirstFifoOnTies) {
  DetRuntime rt(std::make_unique<RandomSchedule>(23));
  HoareMonitor monitor(rt);
  HoareMonitor::PriorityCondition cond(monitor);
  int turn = 0;
  std::vector<int> wake_order;
  const int priorities[] = {30, 10, 20, 10};

  for (int i = 0; i < 4; ++i) {
    static_cast<void>(rt.StartThread("waiter" + std::to_string(i), [&, i] {
      while (true) {
        {
          MonitorRegion region(monitor);
          if (turn == i) {
            ++turn;
            cond.Wait(priorities[i]);
            wake_order.push_back(i);
            return;
          }
        }
        rt.Yield();
      }
    }));
  }
  static_cast<void>(rt.StartThread("signaller", [&] {
    int signalled = 0;
    while (signalled < 4) {
      bool did_signal = false;
      {
        MonitorRegion region(monitor);
        if (turn == 4 && !cond.Empty()) {
          cond.Signal();
          ++signalled;
          did_signal = true;
        }
      }
      if (!did_signal) {
        rt.Yield();
      }
    }
  }));
  ASSERT_TRUE(rt.Run().completed);
  // Minimum priority first; FIFO among the two equal (10) priorities: 1 before 3.
  EXPECT_EQ(wake_order, (std::vector<int>{1, 3, 2, 0}));
}

TEST(HoareMonitorTest, QueueStateObservers) {
  DetRuntime rt(std::make_unique<RandomSchedule>(5));
  HoareMonitor monitor(rt);
  HoareMonitor::Condition cond(monitor);
  auto waiter = rt.StartThread("waiter", [&] {
    MonitorRegion region(monitor);
    cond.Wait();
  });
  auto checker = rt.StartThread("checker", [&] {
    while (true) {
      {
        MonitorRegion region(monitor);
        if (!cond.Empty()) {
          EXPECT_EQ(cond.Length(), 1);
          cond.Signal();
          return;
        }
      }
      rt.Yield();
    }
  });
  ASSERT_TRUE(rt.Run().completed);
  EXPECT_TRUE(cond.Empty());
}

TEST(HoareMonitorTest, UrgentQueuePrecedesEntryQueue) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  HoareMonitor monitor(rt);
  HoareMonitor::Condition cond(monitor);
  std::vector<std::string> log;
  bool latecomer_started = false;

  auto waiter = rt.StartThread("waiter", [&] {
    MonitorRegion region(monitor);
    cond.Wait();
    log.push_back("waiter");
    // Dawdle inside the monitor so the latecomer reaches the entry queue while the
    // signaller sits on the urgent queue.
    for (int k = 0; k < 20; ++k) {
      rt.Yield();
    }
  });
  auto signaller = rt.StartThread("signaller", [&] {
    while (true) {
      {
        MonitorRegion region(monitor);
        if (!cond.Empty()) {
          latecomer_started = true;
          cond.Signal();
          log.push_back("signaller");
          break;
        }
      }
      rt.Yield();
    }
  });
  auto latecomer = rt.StartThread("latecomer", [&] {
    while (!latecomer_started) {
      rt.Yield();
    }
    MonitorRegion region(monitor);
    log.push_back("latecomer");
  });
  ASSERT_TRUE(rt.Run().completed);
  // The urgent signaller resumes before the entry-queue latecomer.
  EXPECT_EQ(log, (std::vector<std::string>{"waiter", "signaller", "latecomer"}));
}

TEST(MesaMonitorTest, SignalledThreadRecontends) {
  // Under Mesa semantics the signalled waiter does not run immediately: the signaller
  // keeps the monitor until it exits, so the waiter's resume comes last.
  DetRuntime rt(std::make_unique<FifoSchedule>());
  MesaMonitor monitor(rt);
  MesaMonitor::Condition cond(monitor);
  std::vector<std::string> log;
  bool waiting = false;
  bool ready = false;

  auto waiter = rt.StartThread("waiter", [&] {
    MesaRegion region(monitor);
    log.push_back("waiter:waiting");
    waiting = true;
    while (!ready) {
      cond.Wait();
    }
    log.push_back("waiter:resumed");
  });
  auto signaller = rt.StartThread("signaller", [&] {
    while (true) {
      {
        MesaRegion region(monitor);
        if (waiting) {
          ready = true;
          log.push_back("signaller:before-signal");
          cond.Signal();
          log.push_back("signaller:after-signal");
          break;
        }
      }
      rt.Yield();
    }
  });
  ASSERT_TRUE(rt.Run().completed);
  const std::vector<std::string> expected = {
      "waiter:waiting",
      "signaller:before-signal",
      "signaller:after-signal",
      "waiter:resumed",
  };
  EXPECT_EQ(log, expected);
}

}  // namespace
}  // namespace syneval
