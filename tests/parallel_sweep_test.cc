// Tests for the parallel sweep engine (runtime/parallel_sweep.h): the blocking
// bit-identity contract — a parallel sweep's outcome must equal the serial sweep of
// the same seeds field by field, at any worker count, chunk size, or steal order —
// plus the serial fallback, jobs resolution, worker telemetry accounting, and the
// counterexample replay sweep built on top of it.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "syneval/analysis/catalog.h"
#include "syneval/analysis/model_checker.h"
#include "syneval/analysis/replay.h"
#include "syneval/core/conformance.h"
#include "syneval/fault/chaos.h"
#include "syneval/fault/fault.h"
#include "syneval/runtime/parallel_sweep.h"

namespace syneval {
namespace {

// Field-by-field bit-identity assertion. SweepOutcome deliberately has no
// operator== in the library; the test spells every field out so a new field that is
// forgotten here shows up in review, not as a silent hole in the contract.
void ExpectIdentical(const SweepOutcome& serial, const SweepOutcome& parallel) {
  EXPECT_EQ(serial.runs, parallel.runs);
  EXPECT_EQ(serial.passes, parallel.passes);
  EXPECT_EQ(serial.failures, parallel.failures);
  EXPECT_EQ(serial.failing_seeds, parallel.failing_seeds);
  EXPECT_EQ(serial.first_failure, parallel.first_failure);
  EXPECT_EQ(serial.anomalous_seeds, parallel.anomalous_seeds);
  EXPECT_EQ(serial.first_anomaly, parallel.first_anomaly);
  EXPECT_EQ(serial.anomalies.deadlocks, parallel.anomalies.deadlocks);
  EXPECT_EQ(serial.anomalies.lost_wakeups, parallel.anomalies.lost_wakeups);
  EXPECT_EQ(serial.anomalies.stuck_waiters, parallel.anomalies.stuck_waiters);
  EXPECT_EQ(serial.anomalies.starvations, parallel.anomalies.starvations);
}

void ExpectIdentical(const ChaosSweepOutcome& serial, const ChaosSweepOutcome& parallel) {
  EXPECT_EQ(serial.runs, parallel.runs);
  EXPECT_EQ(serial.injected_runs, parallel.injected_runs);
  EXPECT_EQ(serial.harmful, parallel.harmful);
  EXPECT_EQ(serial.detected_harmful, parallel.detected_harmful);
  EXPECT_EQ(serial.absorbed, parallel.absorbed);
  EXPECT_EQ(serial.corrupted, parallel.corrupted);
  EXPECT_EQ(serial.clean_anomalies, parallel.clean_anomalies);
  EXPECT_EQ(serial.clean_failures, parallel.clean_failures);
  EXPECT_EQ(serial.detection_steps_total, parallel.detection_steps_total);
  EXPECT_EQ(serial.missed_seeds, parallel.missed_seeds);
  EXPECT_EQ(serial.fp_seeds, parallel.fp_seeds);
}

// A conformance case the paper predicts VIOLATES its oracle on some schedules, so the
// sweep has non-trivial content to keep bit-identical: failing seeds, first-failure
// message, anomaly counters.
ConformanceCase ViolatingCase() {
  for (ConformanceCase& c : BuildConformanceSuite()) {
    if (c.expect_violations) {
      return c;
    }
  }
  ADD_FAILURE() << "suite has no expect_violations case";
  return ConformanceCase{};
}

// Cheap synthetic trial with deterministic failures, anomalies, and throws — used
// where the content of the outcome matters but DetRuntime cost would be waste.
TrialReport SyntheticTrial(std::uint64_t seed) {
  TrialReport report;
  if (seed % 3 == 0) {
    report.message = "synthetic failure at seed " + std::to_string(seed);
  }
  if (seed % 5 == 0) {
    report.anomalies.starvations = 1;
    report.anomaly_report = "synthetic starvation at seed " + std::to_string(seed);
  }
  if (seed % 17 == 0) {
    throw std::runtime_error("synthetic abort at seed " + std::to_string(seed));
  }
  return report;
}

TEST(ParallelSweepTest, BitIdenticalToSerialOnRealAnomalySweep) {
  const ConformanceCase c = ViolatingCase();
  constexpr int kSeeds = 200;
  const SweepOutcome serial = SweepSchedules(kSeeds, c.trial, 1);
  ASSERT_GT(serial.failures, 0) << "violating case produced no failures; test is vacuous";
  for (const int jobs : {1, 2, 8}) {
    ParallelOptions options;
    options.jobs = jobs;
    const ParallelSweepResult result = ParallelSweepSchedules(kSeeds, c.trial, 1, options);
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    EXPECT_EQ(result.jobs, jobs);
    ExpectIdentical(serial, result.outcome);
  }
}

TEST(ParallelSweepTest, BitIdenticalToSerialOnChaosSweep) {
  const std::vector<ChaosCase> suite = BuildChaosSuite();
  ASSERT_FALSE(suite.empty());
  const std::vector<ChaosFaultFamily> families = CalibrationFaultFamilies();
  ASSERT_FALSE(families.empty());
  const FaultPlan plan = MustParseFaultPlan(families[0].plan_text, /*seed=*/1);

  constexpr int kSeeds = 40;
  const ChaosSweepOutcome serial = SweepChaos(kSeeds, suite[0].trial, plan, 1);
  for (const int jobs : {2, 8}) {
    ParallelOptions options;
    options.jobs = jobs;
    const ParallelChaosResult result =
        ParallelSweepChaos(kSeeds, suite[0].trial, plan, 1, options);
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    ExpectIdentical(serial, result.outcome);
  }
}

TEST(ParallelSweepTest, ChunkSizeNeverChangesTheOutcome) {
  const std::function<TrialReport(std::uint64_t)> trial = SyntheticTrial;
  constexpr int kSeeds = 200;
  const SweepOutcome serial = SweepSchedules(kSeeds, trial, 1);
  for (const int chunk_seeds : {1, 3, 64, 200}) {
    ParallelOptions options;
    options.jobs = 3;
    options.chunk_seeds = chunk_seeds;
    const ParallelSweepResult result = ParallelSweepSchedules(kSeeds, trial, 1, options);
    SCOPED_TRACE("chunk_seeds=" + std::to_string(chunk_seeds));
    ExpectIdentical(serial, result.outcome);
  }
}

TEST(ParallelSweepTest, ThrowingTrialsFoldIdenticallyToSerial) {
  const std::function<TrialReport(std::uint64_t)> trial = SyntheticTrial;
  // Base seed 17 puts several multiples of 17 (throwing seeds) in range.
  const SweepOutcome serial = SweepSchedules(100, trial, 17);
  ASSERT_FALSE(serial.first_failure.empty());
  EXPECT_NE(serial.first_failure.find("trial aborted"), std::string::npos);
  ParallelOptions options;
  options.jobs = 4;
  const ParallelSweepResult result = ParallelSweepSchedules(100, trial, 17, options);
  ExpectIdentical(serial, result.outcome);
}

TEST(ParallelSweepTest, FailingAndAnomalousSeedsStayAscending) {
  ParallelOptions options;
  options.jobs = 8;
  options.chunk_seeds = 7;  // Deliberately not a divisor of the seed count.
  const ParallelSweepResult result =
      ParallelSweepSchedules(150, std::function<TrialReport(std::uint64_t)>(SyntheticTrial),
                             1, options);
  ASSERT_GT(result.outcome.failing_seeds.size(), 1u);
  ASSERT_GT(result.outcome.anomalous_seeds.size(), 1u);
  EXPECT_TRUE(std::is_sorted(result.outcome.failing_seeds.begin(),
                             result.outcome.failing_seeds.end()));
  EXPECT_TRUE(std::is_sorted(result.outcome.anomalous_seeds.begin(),
                             result.outcome.anomalous_seeds.end()));
}

TEST(ParallelSweepTest, SerialFallbackUsesNoPool) {
  ParallelOptions options;
  options.jobs = 1;
  const ParallelSweepResult result = ParallelSweepSchedules(
      50, std::function<TrialReport(std::uint64_t)>(SyntheticTrial), 1, options);
  EXPECT_EQ(result.jobs, 1);
  ASSERT_EQ(result.workers.size(), 1u);
  EXPECT_EQ(result.workers[0].worker, 0);
  EXPECT_EQ(result.workers[0].trials, 50);
  EXPECT_EQ(result.workers[0].steals, 0);
}

TEST(ParallelSweepTest, WorkerTelemetryAccountsForEveryTrial) {
  ParallelOptions options;
  options.jobs = 4;
  const ParallelSweepResult result = ParallelSweepSchedules(
      120, std::function<TrialReport(std::uint64_t)>(SyntheticTrial), 1, options);
  ASSERT_EQ(result.workers.size(), 4u);
  int trials = 0;
  int chunks = 0;
  for (const WorkerTelemetry& w : result.workers) {
    trials += w.trials;
    chunks += w.chunks;
    EXPECT_GE(w.wall_seconds, 0.0);
  }
  EXPECT_EQ(trials, 120);
  EXPECT_GT(chunks, 0);
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST(ParallelSweepTest, ResolveJobsHonorsLiteralEnvAndFallback) {
  EXPECT_EQ(ResolveJobs(5), 5);
  EXPECT_EQ(ResolveJobs(-3), 1);

  ASSERT_EQ(setenv("SYNEVAL_JOBS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ResolveJobs(0), 3);
  ASSERT_EQ(setenv("SYNEVAL_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(ResolveJobs(0), 1);  // Malformed env degrades to hardware_concurrency.
  ASSERT_EQ(unsetenv("SYNEVAL_JOBS"), 0);
  EXPECT_GE(ResolveJobs(0), 1);
}

// Stress the pool under maximum steal pressure: tiny chunks, more workers than
// hardware threads, real DetRuntime trials. Run under TSan (SYNEVAL_SANITIZE=thread)
// this doubles as the data-race gate for the queue and telemetry shards.
TEST(ParallelSweepTest, StealStressStaysIdentical) {
  const ConformanceCase c = ViolatingCase();
  constexpr int kSeeds = 64;
  const SweepOutcome serial = SweepSchedules(kSeeds, c.trial, 1);
  for (int round = 0; round < 3; ++round) {
    ParallelOptions options;
    options.jobs = 8;
    options.chunk_seeds = 1;  // Every seed is its own stealable chunk.
    const ParallelSweepResult result = ParallelSweepSchedules(kSeeds, c.trial, 1, options);
    SCOPED_TRACE("round=" + std::to_string(round));
    ExpectIdentical(serial, result.outcome);
  }
}

TEST(ParallelSweepTest, CounterexampleReplaySweepDeadlocksOnEverySeed) {
  const PathModel broken = BrokenCrossedGatesModel();
  const ModelCheckResult check = CheckPathModel(broken);
  ASSERT_EQ(check.safety, SafetyVerdict::kDeadlockable);
  ParallelOptions options;
  options.jobs = 4;
  const SweepOutcome sweep =
      ReplayCounterexampleSweep(broken, check.counterexample, 8, 1, options);
  EXPECT_EQ(sweep.runs, 8);
  EXPECT_EQ(sweep.passes, 8);
  EXPECT_EQ(sweep.failures, 0) << sweep.first_failure;
  EXPECT_GE(sweep.anomalies.deadlocks, 8);
}

TEST(ParallelSweepTest, MergeWorkerTelemetrySumsByIndex) {
  std::vector<WorkerTelemetry> into;
  std::vector<WorkerTelemetry> shard(2);
  shard[0] = WorkerTelemetry{0, 10, 2, 1, 0, 0.5};
  shard[1] = WorkerTelemetry{1, 12, 3, 0, 0, 0.25};
  MergeWorkerTelemetry(into, shard);
  MergeWorkerTelemetry(into, shard);
  ASSERT_EQ(into.size(), 2u);
  EXPECT_EQ(into[0].worker, 0);
  EXPECT_EQ(into[0].trials, 20);
  EXPECT_EQ(into[0].chunks, 4);
  EXPECT_EQ(into[0].steals, 2);
  EXPECT_DOUBLE_EQ(into[0].wall_seconds, 1.0);
  EXPECT_EQ(into[1].trials, 24);
}

}  // namespace
}  // namespace syneval
