// Core methodology: taxonomy, catalog coverage / minimal test sets, expressiveness
// matrix consistency, and constraint-independence metrics.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "syneval/core/criteria.h"
#include "syneval/core/metrics.h"
#include "syneval/core/problem_catalog.h"
#include "syneval/core/scorecard.h"
#include "syneval/solutions/registry.h"

namespace syneval {
namespace {

// --- Catalog & coverage (Section 3, E8) -------------------------------------------------

TEST(CatalogTest, Footnote2SetIsComplete) {
  const std::vector<std::string> footnote2 = {"bounded-buffer",      "fcfs-resource",
                                              "rw-readers-priority", "disk-scan",
                                              "alarm-clock",         "one-slot-buffer"};
  const CoverageReport report = Coverage(footnote2);
  EXPECT_TRUE(report.complete) << "missing: " << report.missing.size();
}

TEST(CatalogTest, EachFootnote2ProblemJustifiesItsCategory) {
  // Per the paper: bounded buffer = local state; FCFS = request time; readers-priority
  // database = request type + sync state; disk scheduler & alarm clock = parameters;
  // one-slot buffer = history.
  EXPECT_NE(ProblemById("bounded-buffer").CategoryMask() &
                CategoryBit(InfoCategory::kLocalState),
            0u);
  EXPECT_NE(ProblemById("fcfs-resource").CategoryMask() &
                CategoryBit(InfoCategory::kRequestTime),
            0u);
  EXPECT_NE(ProblemById("rw-readers-priority").CategoryMask() &
                CategoryBit(InfoCategory::kRequestType),
            0u);
  EXPECT_NE(ProblemById("rw-readers-priority").CategoryMask() &
                CategoryBit(InfoCategory::kSyncState),
            0u);
  EXPECT_NE(ProblemById("disk-scan").CategoryMask() & CategoryBit(InfoCategory::kParameters),
            0u);
  EXPECT_NE(ProblemById("alarm-clock").CategoryMask() & CategoryBit(InfoCategory::kParameters),
            0u);
  EXPECT_NE(ProblemById("one-slot-buffer").CategoryMask() & CategoryBit(InfoCategory::kHistory),
            0u);
}

TEST(CatalogTest, MinimalCoversAreCoversAndMinimal) {
  const auto covers = MinimalCovers();
  ASSERT_FALSE(covers.empty());
  const std::size_t size = covers.front().size();
  for (const auto& cover : covers) {
    EXPECT_EQ(cover.size(), size);
    EXPECT_TRUE(Coverage(cover).complete);
  }
  // Minimality: no smaller subset covers (spot-check: removing any element breaks it).
  for (const auto& cover : covers) {
    for (std::size_t skip = 0; skip < cover.size(); ++skip) {
      std::vector<std::string> reduced;
      for (std::size_t i = 0; i < cover.size(); ++i) {
        if (i != skip) {
          reduced.push_back(cover[i]);
        }
      }
      EXPECT_FALSE(Coverage(reduced).complete)
          << "cover was not minimal: dropping " << cover[skip] << " still covers";
    }
  }
}

TEST(CatalogTest, RedundancyCountsDoubleCoverage) {
  EXPECT_EQ(Redundancy({"one-slot-buffer"}), 0);
  EXPECT_GT(Redundancy({"rw-readers-priority", "rw-writers-priority"}), 0);
}

// --- Expressiveness (Section 4.1 / 5, E3) -----------------------------------------------

TEST(CriteriaTest, MatrixIsComplete) {
  EXPECT_EQ(ExpressivenessMatrix().size(), 36u);
  for (const ExpressivenessEntry& entry : ExpressivenessMatrix()) {
    EXPECT_FALSE(entry.evidence.empty());
  }
}

TEST(CriteriaTest, EncodesThePapersHeadlineConclusions) {
  EXPECT_EQ(Expressiveness(Mechanism::kPathExpression, InfoCategory::kParameters).support,
            Support::kUnsupported);
  EXPECT_EQ(Expressiveness(Mechanism::kPathExpression, InfoCategory::kHistory).support,
            Support::kDirect);
  EXPECT_EQ(Expressiveness(Mechanism::kMonitor, InfoCategory::kParameters).support,
            Support::kDirect);
  EXPECT_EQ(Expressiveness(Mechanism::kMonitor, InfoCategory::kSyncState).support,
            Support::kIndirect);
  EXPECT_EQ(Expressiveness(Mechanism::kSerializer, InfoCategory::kSyncState).support,
            Support::kDirect);
}

TEST(CriteriaTest, MatrixConsistentWithSolutionStructure) {
  const std::vector<std::string> inconsistencies = CrossCheckExpressiveness();
  EXPECT_TRUE(inconsistencies.empty())
      << inconsistencies.size() << " inconsistencies, first: " << inconsistencies.front();
}

// --- Metrics (Section 4.2, E4) ------------------------------------------------------------

TEST(MetricsTest, TokenSimilarityBasics) {
  EXPECT_DOUBLE_EQ(TokenSimilarity("P(w); V(w)", "P(w); V(w)"), 1.0);
  EXPECT_DOUBLE_EQ(TokenSimilarity("alpha beta", "gamma delta"), 0.0);
  EXPECT_DOUBLE_EQ(TokenSimilarity("", ""), 1.0);
  const double partial = TokenSimilarity("while busy do wait", "while free do wait");
  EXPECT_GT(partial, 0.5);
  EXPECT_LT(partial, 1.0);
}

TEST(MetricsTest, TokenizerSplitsWordsAndPunctuation) {
  const auto tokens = Tokenize("P(mutex); rc_ := rc_+1");
  // p ( mutex ) ; rc_ : = rc_ + 1
  EXPECT_EQ(tokens.size(), 11u);
  EXPECT_EQ(tokens[0], "p");
  EXPECT_EQ(tokens[1], "(");
}

TEST(MetricsTest, MonitorExclusionFragmentsAreStableAcrossPolicies) {
  // Section 5.2: monitor constraints are (mostly) independent — the exclusion fragment
  // barely changes between readers-priority and writers-priority.
  const auto a = FindSolution(Mechanism::kMonitor, "rw-readers-priority");
  const auto b = FindSolution(Mechanism::kMonitor, "rw-writers-priority");
  ASSERT_TRUE(a && b);
  const auto similarity = FragmentSimilarity(*a, *b, "exclusion");
  ASSERT_TRUE(similarity.has_value());
  EXPECT_GT(*similarity, 0.9);
}

TEST(MetricsTest, PathExpressionFragmentsChangeWholesale) {
  // Section 5.1.2: moving from Figure 1 to Figure 2 changes every path and procedure.
  const auto fig1 = FindSolution(Mechanism::kPathExpression, "rw-readers-priority");
  const auto fig2 = FindSolution(Mechanism::kPathExpression, "rw-writers-priority");
  ASSERT_TRUE(fig1 && fig2);
  const auto exclusion = FragmentSimilarity(*fig1, *fig2, "exclusion");
  ASSERT_TRUE(exclusion.has_value());

  const auto monitor_a = FindSolution(Mechanism::kMonitor, "rw-readers-priority");
  const auto monitor_b = FindSolution(Mechanism::kMonitor, "rw-writers-priority");
  const auto monitor_exclusion = FragmentSimilarity(*monitor_a, *monitor_b, "exclusion");

  // The paper's comparative claim: path expressions couple the constraints, monitors
  // keep them independent.
  EXPECT_LT(*exclusion, *monitor_exclusion);
  EXPECT_GT(ModificationCost(*fig1, *fig2), ModificationCost(*monitor_a, *monitor_b));
}

TEST(MetricsTest, IndependenceTableHasRowsForEveryCapableMechanism) {
  const auto rows = IndependenceTable(CanonicalIndependencePairs(), "exclusion");
  // readers vs writers priority exists for all five mechanisms; the FCFS pairs only
  // for monitor and serializer.
  int rp_wp = 0;
  for (const IndependenceRow& row : rows) {
    if (row.problem_a == "rw-readers-priority" && row.problem_b == "rw-writers-priority") {
      ++rp_wp;
    }
  }
  EXPECT_EQ(rp_wp, kNumMechanisms);
  EXPECT_GT(rows.size(), static_cast<std::size_t>(kNumMechanisms));
}

// --- Registry & scorecards -----------------------------------------------------------------

TEST(RegistryTest, EveryProblemIdIsCatalogued) {
  for (const std::string& problem : RegistryProblems()) {
    // ProblemById asserts on unknown ids; reaching here means it resolved.
    EXPECT_FALSE(ProblemById(problem).display_name.empty()) << problem;
  }
}

TEST(RegistryTest, PathExpressionGapsMatchThePaper) {
  // The cells the mechanism cannot fill are themselves findings.
  EXPECT_FALSE(FindSolution(Mechanism::kPathExpression, "disk-scan").has_value());
  EXPECT_FALSE(FindSolution(Mechanism::kPathExpression, "alarm-clock").has_value());
  EXPECT_FALSE(FindSolution(Mechanism::kPathExpression, "sjn-allocator").has_value());
  EXPECT_TRUE(FindSolution(Mechanism::kPathExpression, "one-slot-buffer").has_value());
}

TEST(ScorecardTest, TablesRenderNonEmpty) {
  EXPECT_NE(RenderExpressivenessTable().find("path-expression"), std::string::npos);
  EXPECT_NE(RenderCoverageReport().find("complete"), std::string::npos);
  EXPECT_NE(RenderIndependenceTable().find("similarity"), std::string::npos);
  EXPECT_NE(RenderSolutionInventory().find("Figure 1"), std::string::npos);
}

TEST(ScorecardTest, GenericTableAlignsColumns) {
  const std::string table = RenderTable({"a", "long-header"}, {{"xx", "y"}, {"z", "wwww"}});
  // Every line has the same width.
  std::size_t width = 0;
  std::size_t start = 0;
  while (start < table.size()) {
    const std::size_t end = table.find('\n', start);
    const std::size_t len = end - start;
    if (width == 0) {
      width = len;
    }
    EXPECT_EQ(len, width);
    start = end + 1;
  }
}

}  // namespace
}  // namespace syneval
