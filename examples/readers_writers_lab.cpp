// Readers/writers policy lab: every mechanism's solution for every policy, run under
// deterministic schedule sweeps and judged by the priority oracles — a miniature of the
// paper's Section 5 evaluation, ending with the footnote-3 anomaly reproduced live.

#include <cstdio>
#include <memory>
#include <string>

#include "syneval/core/conformance.h"
#include "syneval/core/scorecard.h"
#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/explore.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/solutions/semaphore_solutions.h"
#include "syneval/solutions/serializer_solutions.h"
#include "syneval/trace/query.h"

using namespace syneval;

namespace {

template <typename Solution>
SweepOutcome Sweep(RwPolicy policy, RwStrictness strictness, int seeds) {
  return SweepSchedules(seeds, [policy, strictness](std::uint64_t seed) -> std::string {
    DetRuntime rt(MakeRandomSchedule(seed));
    TraceRecorder trace;
    Solution rw(rt);
    RwWorkloadParams params;
    params.readers = 3;
    params.writers = 2;
    params.ops_per_reader = 4;
    params.ops_per_writer = 3;
    ThreadList threads = SpawnReadersWritersWorkload(rt, rw, trace, params);
    const DetRuntime::RunResult result = rt.Run();
    if (!result.completed) {
      return "runtime: " + result.report;
    }
    return CheckReadersWriters(trace.Events(), policy, 8, strictness);
  });
}

std::vector<std::string> Row(const char* mechanism, const char* solution,
                             const SweepOutcome& outcome) {
  char cell[48];
  std::snprintf(cell, sizeof cell, "%d/%d clean", outcome.passes, outcome.runs);
  return {mechanism, solution, cell};
}

}  // namespace

int main() {
  const int seeds = 30;
  std::printf("readers/writers policy lab — %d deterministic schedules per cell\n\n", seeds);

  std::printf("Readers priority (CHP problem 1 oracle):\n");
  std::vector<std::string> header = {"mechanism", "solution", "verdict"};
  std::vector<std::vector<std::string>> rows;
  rows.push_back(Row("semaphore", "CHP algorithm 1 (weak sems)",
                     Sweep<SemaphoreRwReadersPriority>(RwPolicy::kReadersPriority,
                                                       RwStrictness::kArrivalOrder, seeds)));
  rows.push_back(Row("monitor", "Hoare conditions",
                     Sweep<MonitorRwReadersPriority>(RwPolicy::kReadersPriority,
                                                     RwStrictness::kStrict, seeds)));
  rows.push_back(Row("path expr", "Figure 1 (CH74)",
                     Sweep<PathExprRwFigure1>(RwPolicy::kReadersPriority,
                                              RwStrictness::kStrict, seeds)));
  rows.push_back(Row("path expr", "Andler predicates",
                     Sweep<PathExprRwPredicates>(RwPolicy::kReadersPriority,
                                                 RwStrictness::kStrict, seeds)));
  rows.push_back(Row("serializer", "crowd guards",
                     Sweep<SerializerRwReadersPriority>(RwPolicy::kReadersPriority,
                                                        RwStrictness::kStrict, seeds)));
  std::printf("%s\n", RenderTable(header, rows).c_str());

  std::printf("Writers priority:\n");
  rows.clear();
  rows.push_back(Row("semaphore", "CHP algorithm 2 (weak sems)",
                     Sweep<SemaphoreRwWritersPriority>(RwPolicy::kWritersPriority,
                                                       RwStrictness::kArrivalOrder, seeds)));
  rows.push_back(Row("monitor", "queue-state gate",
                     Sweep<MonitorRwWritersPriority>(RwPolicy::kWritersPriority,
                                                     RwStrictness::kStrict, seeds)));
  rows.push_back(Row("path expr", "Figure 2 (CH74)",
                     Sweep<PathExprRwFigure2>(RwPolicy::kWritersPriority,
                                              RwStrictness::kArrivalOrder, seeds)));
  rows.push_back(Row("serializer", "queue order + guards",
                     Sweep<SerializerRwWritersPriority>(RwPolicy::kWritersPriority,
                                                        RwStrictness::kStrict, seeds)));
  std::printf("%s\n", RenderTable(header, rows).c_str());

  std::printf("FCFS (the monitor type/time conflict):\n");
  rows.clear();
  rows.push_back(Row("monitor", "two-stage queuing",
                     Sweep<MonitorRwFcfs>(RwPolicy::kFcfs, RwStrictness::kStrict, seeds)));
  rows.push_back(Row("serializer", "one queue, two guards",
                     Sweep<SerializerRwFcfs>(RwPolicy::kFcfs, RwStrictness::kStrict, seeds)));
  std::printf("%s\n", RenderTable(header, rows).c_str());

  std::printf("Footnote 3, live (directed scenario, seed 1):\n");
  const std::string anomaly = RunFigure1AnomalyScenario(1);
  std::printf("  %s\n", anomaly.empty() ? "no violation (unexpected!)" : anomaly.c_str());
  return 0;
}
