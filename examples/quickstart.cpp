// Quickstart: the 60-second tour of syneval.
//
// Builds a bounded buffer four ways — Dijkstra semaphores, a Hoare monitor, a CH74
// path expression, and an Atkinson-Hewitt serializer — runs the same producer/consumer
// workload through each, records instrumented traces, and checks the bounded-buffer
// oracle. Then shows the deterministic runtime replaying one interleaving exactly.

#include <cstdio>
#include <memory>

#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/os_runtime.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/solutions/semaphore_solutions.h"
#include "syneval/solutions/serializer_solutions.h"

using namespace syneval;

namespace {

// Runs one buffer implementation under real threads and oracle-checks the trace.
template <typename Buffer>
void Demo(const char* name) {
  OsRuntime rt;
  TraceRecorder trace;
  Buffer buffer(rt, /*capacity=*/4);

  BufferWorkloadParams params;
  params.producers = 2;
  params.consumers = 2;
  params.items_per_producer = 50;
  ThreadList threads = SpawnBoundedBufferWorkload(rt, buffer, trace, params);
  JoinAll(threads);

  const std::string verdict = CheckBoundedBuffer(trace.Events(), buffer.capacity());
  std::printf("  %-16s %4zu events recorded, oracle: %s\n", name, trace.size(),
              verdict.empty() ? "ok" : verdict.c_str());
}

}  // namespace

int main() {
  std::printf("syneval quickstart — one problem, four synchronization mechanisms\n\n");
  std::printf("Bounded buffer, 2 producers + 2 consumers, 100 items, capacity 4:\n");
  Demo<SemaphoreBoundedBuffer>("semaphores");
  Demo<MonitorBoundedBuffer>("Hoare monitor");
  Demo<PathBoundedBuffer>("path expression");
  Demo<SerializerBoundedBuffer>("serializer");

  std::printf("\nThe path expression doing the work above:\n");
  std::printf("    path 4:(1:(deposit); 1:(remove)) end\n");
  std::printf("(4 outstanding items max; deposits and removes each serialized.)\n");

  std::printf("\nDeterministic replay: the same workload under DetRuntime, seed 7,\n");
  std::printf("runs the identical interleaving every time:\n");
  for (int attempt = 0; attempt < 2; ++attempt) {
    DetRuntime rt(MakeRandomSchedule(7));
    TraceRecorder trace;
    MonitorBoundedBuffer buffer(rt, 4);
    BufferWorkloadParams params;
    params.items_per_producer = 5;
    ThreadList threads = SpawnBoundedBufferWorkload(rt, buffer, trace, params);
    const DetRuntime::RunResult result = rt.Run();
    std::printf("  attempt %d: %llu scheduler steps, first event: %s\n", attempt + 1,
                static_cast<unsigned long long>(result.steps),
                trace.Events().empty() ? "(none)" : trace.Events().front().ToString().c_str());
  }
  std::printf("\nNext steps: examples/readers_writers_lab, examples/disk_scheduler_demo,\n"
              "examples/alarm_clock_demo, and the bench/ binaries for the paper's\n"
              "experiments (see EXPERIMENTS.md).\n");
  return 0;
}
