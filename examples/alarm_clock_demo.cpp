// Alarm clock demo: sleepers with different due times, a ticking clock process, and a
// punctuality report — Hoare's 1974 example of priority waits over request parameters.

#include <cstdio>
#include <memory>

#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/serializer_solutions.h"
#include "syneval/trace/query.h"

using namespace syneval;

namespace {

template <typename Clock>
void Demo(const char* name) {
  DetRuntime rt(MakeRandomSchedule(3));
  TraceRecorder trace;
  Clock clock(rt);
  AlarmWorkloadParams params;
  params.sleepers = 4;
  params.naps_per_sleeper = 3;
  params.max_delay = 6;
  ThreadList threads = SpawnAlarmClockWorkload(rt, clock, trace, params);
  const DetRuntime::RunResult result = rt.Run();
  if (!result.completed) {
    std::printf("%s: runtime failure:\n%s\n", name, result.report.c_str());
    return;
  }
  std::printf("%s (final time %lld):\n", name, static_cast<long long>(clock.Now()));
  for (const Execution& e : GroupExecutions(trace.Events())) {
    if (e.op == "wake") {
      std::printf("  t%-2u asked for +%lld ticks: due %lld, woke at %lld%s\n", e.thread,
                  static_cast<long long>(e.param), static_cast<long long>(e.enter_value),
                  static_cast<long long>(e.exit_value),
                  e.enter_value == e.exit_value ? "" : "  <-- LATE");
    }
  }
  const std::string verdict = CheckAlarmClock(trace.Events(), 0);
  std::printf("  oracle: %s\n\n", verdict.empty() ? "every wake exact" : verdict.c_str());
}

}  // namespace

int main() {
  std::printf("alarm clock demo — wake times are request parameters (Section 3)\n\n");
  Demo<MonitorAlarmClock>("Hoare monitor (priority condition)");
  Demo<SerializerAlarmClock>("Serializer (priority queue + guard)");
  return 0;
}
