// Methodology tour: Bloom's evaluation pipeline end to end, on all six mechanisms.
//
//   1. Pick a test set and verify it covers the information taxonomy (Section 3).
//   2. Generate the expressive-power matrix with code-backed evidence (Section 4.1).
//   3. Measure constraint independence on related problems (Section 4.2).
//   4. Run the behavioural conformance sweep — including the violations the paper
//      predicts (Section 5, footnote 3).
//
// This is the program a mechanism designer would run against their own construct: add a
// solutions file, a registry entry and a criteria column, and every table below grows a
// row — which is exactly what this repository did for conditional critical regions and
// CSP channels, two mechanisms the 1979 paper never evaluated.

#include <cstdio>

#include "syneval/core/conformance.h"
#include "syneval/core/scorecard.h"

int main() {
  using namespace syneval;

  std::printf("================================================================\n");
  std::printf(" Bloom (SOSP 1979): the evaluation methodology, executed\n");
  std::printf("================================================================\n\n");

  std::printf("STEP 1 — is the test set adequate? (Section 3)\n\n");
  std::printf("%s\n", RenderCoverageReport().c_str());

  std::printf("STEP 2 — expressive power (Section 4.1)\n\n");
  std::printf("%s\n", RenderExpressivenessTable().c_str());

  std::printf("STEP 3 — constraint independence (Section 4.2)\n\n");
  std::printf("%s\n", RenderIndependenceTable().c_str());

  std::printf("STEP 4 — behavioural conformance (Section 5)\n");
  std::printf("(10 deterministic schedules per case; bench/table_conformance runs more)\n\n");
  const std::vector<ConformanceResult> results = RunConformanceSuite(10);
  std::printf("%s\n", RenderConformanceTable(results).c_str());

  int unexpected = 0;
  for (const ConformanceResult& result : results) {
    if (!result.AsExpected()) {
      ++unexpected;
    }
  }
  std::printf("\nVerdict: %zu/%zu cases behaved as the paper predicts.\n",
              results.size() - static_cast<std::size_t>(unexpected), results.size());
  return unexpected == 0 ? 0 : 1;
}
