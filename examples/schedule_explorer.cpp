// Schedule explorer: static analysis first, then the deterministic runtime as a
// bug-hunting tool — the repository's intended workflow, in order.
//
// Act 1 (static, before any thread is spawned): the path-expression model checker
// proves the bounded-buffer path deadlock-free by exhausting its counter-state space,
// then finds the minimal deadlock word in a deliberately-broken crossed-gates program
// and replays it under DetRuntime until the anomaly detector names the cycle. No
// schedule is spent on questions the checker can settle outright.
//
// Act 2 (dynamic): a deliberately broken "statistics counter" (read-modify-write
// without a lock) — a data race, invisible to the static passes — is swept across
// schedules; the explorer reports the failure probability, then replays one failing
// seed and prints the exact interleaving that breaks it. This is the workflow the
// conformance engine uses on the paper's solutions (e.g. hunting the footnote-3
// anomaly).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "syneval/analysis/catalog.h"
#include "syneval/analysis/model_checker.h"
#include "syneval/analysis/replay.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/explore.h"
#include "syneval/runtime/schedule.h"
#include "syneval/solutions/pathexpr_solutions.h"

using namespace syneval;

namespace {

// The buggy component: callers increment a counter and occasionally "rotate" it into a
// history slot. The increment is a read-yield-write race; the rotation is a
// check-then-act race. A mutex-protected version is provided for contrast.
struct Stats {
  int counter = 0;
  int rotations = 0;
  int rotated_total = 0;
};

std::string RunTrial(std::uint64_t seed, bool locked, std::vector<std::string>* log) {
  DetRuntime rt(std::make_unique<RandomSchedule>(seed));
  Stats stats;
  auto mu = rt.CreateMutex();
  constexpr int kThreads = 3;
  constexpr int kIncrements = 4;

  auto worker = [&](int id) {
    return [&, id] {
      for (int i = 0; i < kIncrements; ++i) {
        if (locked) {
          RtLock lock(*mu);
          ++stats.counter;
        } else {
          const int read = stats.counter;  // read...
          rt.Yield();                      // ...preempted...
          stats.counter = read + 1;        // ...lost-update write.
        }
        if (log != nullptr) {
          log->push_back("t" + std::to_string(id) + ": counter=" +
                         std::to_string(stats.counter));
        }
      }
    };
  };
  std::vector<std::unique_ptr<RtThread>> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.push_back(rt.StartThread("worker" + std::to_string(t), worker(t)));
  }
  const DetRuntime::RunResult result = rt.Run();
  if (!result.completed) {
    return "runtime: " + result.report;
  }
  const int expected = kThreads * kIncrements;
  if (stats.counter != expected) {
    return "lost updates: counter=" + std::to_string(stats.counter) + ", expected " +
           std::to_string(expected);
  }
  return "";
}

// Act 1: what can be settled without running a single schedule.
bool StaticAct() {
  std::printf("act 1 — static verdicts (no thread has been spawned yet)\n\n");

  // A proof: the CH74 bounded-buffer path expression, checked exhaustively.
  const PathModel buffer{"bounded buffer", PathBoundedBuffer::Program(3), {}};
  const ModelCheckResult proof = CheckPathModel(buffer);
  std::printf("  %-28s %s\n", buffer.name.c_str(), proof.Summary().c_str());

  // A refutation: crossed acquisition order, found as a minimal counterexample word...
  const PathModel broken = BrokenCrossedGatesModel();
  const ModelCheckResult refutation = CheckPathModel(broken);
  std::printf("  %-28s %s\n", broken.name.c_str(), refutation.Summary().c_str());
  if (proof.safety != SafetyVerdict::kDeadlockFree ||
      refutation.safety != SafetyVerdict::kDeadlockable) {
    return false;
  }

  // ...which is never trusted until it reproduces as a real deadlock: replay the word
  // under DetRuntime with the anomaly detector attached.
  const ReplayResult replay = ReplayCounterexample(broken, refutation.counterexample);
  std::printf("  replayed under DetRuntime:   %s\n",
              replay.deadlocked ? "deadlocked, as predicted" : "DID NOT deadlock!");
  if (!replay.anomaly_report.empty()) {
    std::printf("  detector:                    %s\n", replay.anomaly_report.c_str());
  }
  std::printf(
      "\nOnly now do we spend schedules — on what static analysis cannot see:\n"
      "guard logic, oracle violations, and data races like the one below.\n\n");
  return replay.deadlocked && replay.anomalies.deadlocks >= 1;
}

}  // namespace

int main() {
  std::printf("schedule explorer — static analysis first, then schedule hunting\n\n");

  const bool static_ok = StaticAct();

  std::printf("act 2 — hunting a race with the deterministic runtime\n\n");
  const int seeds = 200;
  const SweepOutcome racy =
      SweepSchedules(seeds, [](std::uint64_t s) { return RunTrial(s, false, nullptr); });
  const SweepOutcome locked =
      SweepSchedules(seeds, [](std::uint64_t s) { return RunTrial(s, true, nullptr); });

  std::printf("unlocked counter: %s\n", racy.Summary().c_str());
  std::printf("locked counter:   %s\n\n", locked.Summary().c_str());

  if (racy.failures > 0) {
    const std::uint64_t seed = racy.failing_seeds.front();
    std::printf("replaying failing seed %llu — the interleaving, step by step:\n",
                static_cast<unsigned long long>(seed));
    std::vector<std::string> log;
    const std::string verdict = RunTrial(seed, false, &log);
    for (const std::string& line : log) {
      std::printf("  %s\n", line.c_str());
    }
    std::printf("=> %s\n", verdict.c_str());
    std::printf("\nThe same seed reproduces the same interleaving every time — that is\n"
                "what makes the paper's behavioural claims checkable (EXPERIMENTS.md E1).\n");
  }
  return static_ok && locked.failures == 0 && racy.failures > 0 ? 0 : 1;
}
