// Pipeline example: composing mechanisms.
//
// A three-stage processing pipeline where each inter-stage queue uses a DIFFERENT
// synchronization mechanism — the point of the common problem interfaces: once a
// mechanism passes the evaluation, its solutions are drop-in substitutable.
//
//   producers --> [path-expression buffer] --> squarers --> [serializer buffer] --> sinks
//
// The whole pipeline runs under the deterministic runtime, so the run is replayable,
// and both queues are oracle-checked afterwards.

#include <cstdio>
#include <memory>
#include <numeric>
#include <vector>

#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/solutions/serializer_solutions.h"

using namespace syneval;

namespace {

constexpr int kItems = 12;
constexpr std::int64_t kStop = -1;

}  // namespace

int main() {
  std::printf("pipeline example — one pipeline, two mechanisms, one oracle family\n\n");

  DetRuntime rt(MakeRandomSchedule(2024));
  TraceRecorder stage1_trace;
  TraceRecorder stage2_trace;
  PathBoundedBuffer stage1(rt, 3);        // path 3:(1:(deposit); 1:(remove)) end
  SerializerBoundedBuffer stage2(rt, 3);  // guarded queues

  std::vector<std::int64_t> results;

  auto producer = rt.StartThread("producer", [&] {
    for (int i = 1; i <= kItems; ++i) {
      OpScope scope(stage1_trace, rt.CurrentThreadId(), "deposit", i);
      stage1.Deposit(i, &scope);
    }
    OpScope scope(stage1_trace, rt.CurrentThreadId(), "deposit", kStop);
    stage1.Deposit(kStop, &scope);  // The stop token is part of the stream.
  });

  auto squarer = rt.StartThread("squarer", [&] {
    while (true) {
      std::int64_t value = 0;
      {
        OpScope scope(stage1_trace, rt.CurrentThreadId(), "remove");
        value = stage1.Remove(&scope);
      }
      if (value == kStop) {
        OpScope scope(stage2_trace, rt.CurrentThreadId(), "deposit", kStop);
        stage2.Deposit(kStop, &scope);
        return;
      }
      OpScope scope(stage2_trace, rt.CurrentThreadId(), "deposit", value * value);
      stage2.Deposit(value * value, &scope);
    }
  });

  auto sink = rt.StartThread("sink", [&] {
    while (true) {
      std::int64_t value = 0;
      {
        OpScope scope(stage2_trace, rt.CurrentThreadId(), "remove");
        value = stage2.Remove(&scope);
      }
      if (value == kStop) {
        return;
      }
      results.push_back(value);
    }
  });

  const DetRuntime::RunResult result = rt.Run();
  std::printf("run: %s (%llu scheduler steps)\n", result.completed ? "completed" : "FAILED",
              static_cast<unsigned long long>(result.steps));

  std::int64_t expected = 0;
  for (int i = 1; i <= kItems; ++i) {
    expected += static_cast<std::int64_t>(i) * i;
  }
  const std::int64_t got = std::accumulate(results.begin(), results.end(), std::int64_t{0});
  std::printf("sum of squares 1..%d: expected %lld, got %lld (%zu items)\n", kItems,
              static_cast<long long>(expected), static_cast<long long>(got),
              results.size());

  const std::string stage1_verdict = CheckBoundedBuffer(stage1_trace.Events(), 3);
  const std::string stage2_verdict = CheckBoundedBuffer(stage2_trace.Events(), 3);
  std::printf("stage 1 (path expression) oracle: %s\n",
              stage1_verdict.empty() ? "ok" : stage1_verdict.c_str());
  std::printf("stage 2 (serializer) oracle:      %s\n",
              stage2_verdict.empty() ? "ok" : stage2_verdict.c_str());

  const bool ok = result.completed && got == expected && stage1_verdict.empty() &&
                  stage2_verdict.empty();
  std::printf("\n%s\n", ok ? "pipeline verified." : "PIPELINE FAILED");
  return ok ? 0 : 1;
}
