// Disk scheduler demo: watches the elevator at work.
//
// Runs a burst of requests against the Hoare monitor SCAN scheduler on the virtual
// disk, prints the service order with head movements, and contrasts the total seek
// distance with the FCFS baseline on the same request stream.

#include <cstdio>
#include <memory>

#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/trace/query.h"

using namespace syneval;

namespace {

template <typename Scheduler>
std::int64_t RunAndPrint(const char* name, bool print_order) {
  DetRuntime rt(MakeRandomSchedule(11));
  TraceRecorder trace;
  VirtualDisk disk(200, 0);
  Scheduler scheduler(rt);
  DiskWorkloadParams params;
  params.requesters = 6;
  params.requests_per_thread = 4;
  params.tracks = 200;
  params.seed = 5;
  ThreadList threads = SpawnDiskWorkload(rt, scheduler, disk, trace, params);
  const DetRuntime::RunResult result = rt.Run();
  if (!result.completed) {
    std::printf("%s: runtime failure:\n%s\n", name, result.report.c_str());
    return 0;
  }
  std::printf("%s: total seek %lld over %lld accesses\n", name,
              static_cast<long long>(disk.total_seek()),
              static_cast<long long>(disk.accesses()));
  if (print_order) {
    std::printf("  service order (track@arrival-seq):");
    std::vector<Execution> executions = GroupExecutions(trace.Events());
    std::sort(executions.begin(), executions.end(),
              [](const Execution& a, const Execution& b) { return a.enter_seq < b.enter_seq; });
    for (const Execution& e : executions) {
      if (e.op == "disk") {
        std::printf(" %lld@%llu", static_cast<long long>(e.param),
                    static_cast<unsigned long long>(e.request_seq));
      }
    }
    std::printf("\n");
  }
  return disk.total_seek();
}

}  // namespace

int main() {
  std::printf("disk scheduler demo — SCAN elevator vs FCFS on one request stream\n\n");
  const std::int64_t scan = RunAndPrint<MonitorDiskScheduler>("SCAN (Hoare dischead)", true);
  const std::int64_t fcfs = RunAndPrint<PathDiskFcfs>("FCFS (path-expression best effort)",
                                                      true);
  if (scan > 0) {
    std::printf("\nFCFS moved the head %.2fx as far as SCAN on this stream.\n",
                static_cast<double>(fcfs) / static_cast<double>(scan));
  }
  std::printf("\nThis is why Section 3 puts request parameters in the taxonomy: the\n"
              "constraint 'serve nearest track in sweep direction' cannot even be\n"
              "stated without access to the request's arguments.\n");
  return 0;
}
