// Experiment E10b: alarm-clock conformance and tick throughput per mechanism.
// Every wake-up is oracle-checked for punctuality (no early wake, zero oversleep);
// throughput is ticks driven per second with a full sleeper population.

#include <chrono>
#include <cstdio>
#include <string>

#include "syneval/core/scorecard.h"
#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/os_runtime.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/semaphore_solutions.h"
#include "syneval/solutions/serializer_solutions.h"

namespace {

using namespace syneval;

struct Measured {
  double wakeups_per_second = 0;
  std::int64_t ticks = 0;
  std::string oracle;
};

template <typename Clock>
Measured Measure(int sleepers, int naps) {
  OsRuntime rt;
  TraceRecorder trace;
  Clock clock(rt);
  AlarmWorkloadParams params;
  params.sleepers = sleepers;
  params.naps_per_sleeper = naps;
  params.max_delay = 9;
  const auto start = std::chrono::steady_clock::now();
  ThreadList threads = SpawnAlarmClockWorkload(rt, clock, trace, params);
  JoinAll(threads);
  const auto end = std::chrono::steady_clock::now();
  Measured measured;
  measured.wakeups_per_second = static_cast<double>(sleepers) * naps /
                                std::chrono::duration<double>(end - start).count();
  measured.ticks = clock.Now();
  measured.oracle = CheckAlarmClock(trace.Events(), 0);
  return measured;
}

std::vector<std::string> Row(const char* name, const Measured& measured) {
  char rate[32];
  std::snprintf(rate, sizeof rate, "%.0f", measured.wakeups_per_second);
  return {name, rate, std::to_string(measured.ticks),
          measured.oracle.empty() ? "ok (exact wakeups)" : measured.oracle};
}

}  // namespace

int main() {
  std::printf("=== E10b: alarm clock — punctuality and wakeup throughput ===\n\n");
  const int sleepers = 4;
  const int naps = 200;
  std::printf("%d sleepers x %d naps, delays 1..9 ticks, zero-oversleep oracle:\n",
              sleepers, naps);
  std::vector<std::string> header = {"mechanism", "wakeups/s", "ticks driven", "oracle"};
  std::vector<std::vector<std::string>> rows;
  rows.push_back(Row("semaphore (private sems)", Measure<SemaphoreAlarmClock>(sleepers, naps)));
  rows.push_back(Row("monitor (priority cond)", Measure<MonitorAlarmClock>(sleepers, naps)));
  rows.push_back(Row("serializer (priority q)", Measure<SerializerAlarmClock>(sleepers, naps)));
  std::printf("%s\n", syneval::RenderTable(header, rows).c_str());
  std::printf("Path expressions are absent by design: wake times are request\n"
              "parameters, which CH74 paths cannot reference (E3 matrix).\n");
  return 0;
}
