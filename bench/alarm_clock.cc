// Experiment E10b: alarm-clock conformance and tick throughput per mechanism.
// Every wake-up is oracle-checked for punctuality (no early wake, zero oversleep);
// throughput is ticks driven per second with a full sleeper population.
//
// Timing/repeats/JSON output come from the shared harness (bench/harness.h).

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "syneval/core/scorecard.h"
#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/os_runtime.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/semaphore_solutions.h"
#include "syneval/solutions/serializer_solutions.h"

namespace {

using namespace syneval;

struct Measured {
  double wakeups_per_second = 0;
  std::int64_t ticks = 0;
  std::string oracle;
};

template <typename Clock>
Measured Measure(const bench::Options& options, int sleepers, int naps) {
  Measured measured;
  const bench::RepeatStats stats = bench::Repeat(options, [&] {
    OsRuntime rt;
    TraceRecorder trace;
    Clock clock(rt);
    AlarmWorkloadParams params;
    params.sleepers = sleepers;
    params.naps_per_sleeper = naps;
    params.max_delay = 9;
    bench::Stopwatch watch;
    ThreadList threads = SpawnAlarmClockWorkload(rt, clock, trace, params);
    JoinAll(threads);
    const double seconds = watch.Seconds();
    measured.ticks = clock.Now();
    const std::string verdict = CheckAlarmClock(trace.Events(), 0);
    if (!verdict.empty()) {
      measured.oracle = verdict;  // Any failing repetition poisons the verdict.
    }
    return seconds;
  });
  measured.wakeups_per_second =
      static_cast<double>(sleepers) * naps / stats.median_seconds;
  return measured;
}

std::vector<std::string> Row(const char* name, const Measured& measured) {
  char rate[32];
  std::snprintf(rate, sizeof rate, "%.0f", measured.wakeups_per_second);
  return {name, rate, std::to_string(measured.ticks),
          measured.oracle.empty() ? "ok (exact wakeups)" : measured.oracle};
}

void Report(bench::Reporter& reporter, const char* mechanism, const Measured& measured) {
  reporter.Add(mechanism, "alarm_clock", "throughput", measured.wakeups_per_second,
               "wakeups/s");
  reporter.Add(mechanism, "alarm_clock", "oracle_ok", measured.oracle.empty() ? 1 : 0,
               "bool");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::ParseArgs(argc, argv, "alarm_clock");
  bench::Reporter reporter(options);
  std::printf("=== E10b: alarm clock — punctuality and wakeup throughput ===\n\n");
  const int sleepers = 4;
  const int naps = 200;
  std::printf("%d sleepers x %d naps, delays 1..9 ticks, zero-oversleep oracle:\n",
              sleepers, naps);
  std::vector<std::string> header = {"mechanism", "wakeups/s", "ticks driven", "oracle"};
  std::vector<std::vector<std::string>> rows;
  Measured m;
  m = Measure<SemaphoreAlarmClock>(options, sleepers, naps);
  rows.push_back(Row("semaphore (private sems)", m));
  Report(reporter, "semaphore", m);
  m = Measure<MonitorAlarmClock>(options, sleepers, naps);
  rows.push_back(Row("monitor (priority cond)", m));
  Report(reporter, "monitor", m);
  m = Measure<SerializerAlarmClock>(options, sleepers, naps);
  rows.push_back(Row("serializer (priority q)", m));
  Report(reporter, "serializer", m);
  std::printf("%s\n", syneval::RenderTable(header, rows).c_str());
  std::printf("Path expressions are absent by design: wake times are request\n"
              "parameters, which CH74 paths cannot reference (E3 matrix).\n");
  return reporter.Finish() ? 0 : 1;
}
