// Ablation (DESIGN.md decision 2): Hoare vs Mesa signal semantics.
//
// The paper's constraint-independence analysis of monitors hinges on the explicit Hoare
// signal: the signalled process resumes immediately and its condition is guaranteed.
// This bench makes the difference load-bearing:
//
//   (a) an `if`-guarded bounded buffer is CORRECT under Hoare signalling (the paper-era
//       style) but BROKEN under Mesa signalling (stolen wakeups) — exhibited by
//       deterministic schedule search and caught by the buffer oracle;
//   (b) the Mesa `while` re-check fixes it;
//   (c) the price of Hoare's guarantee is measured: signal transfer costs two extra
//       context switches per handoff.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "syneval/anomaly/detector.h"
#include "syneval/core/scorecard.h"
#include "syneval/monitor/hoare_monitor.h"
#include "syneval/monitor/mesa_monitor.h"
#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/explore.h"
#include "syneval/runtime/os_runtime.h"

namespace {

using namespace syneval;

// Bounded buffer over a Hoare monitor with `if` waits — correct because a Hoare signal
// hands the monitor directly to the waiter with the condition guaranteed.
class HoareIfBuffer : public BoundedBufferIface {
 public:
  HoareIfBuffer(Runtime& runtime, int capacity)
      : monitor_(runtime), ring_(static_cast<std::size_t>(capacity), 0), capacity_(capacity) {}

  void Deposit(std::int64_t item, OpScope* scope) override {
    MonitorRegion region(monitor_);
    if (scope != nullptr) {
      scope->Arrived();
    }
    if (count_ == capacity_) {
      nonfull_.Wait();
    }
    if (scope != nullptr) {
      scope->Entered();
    }
    ring_[static_cast<std::size_t>(in_)] = item;
    in_ = (in_ + 1) % capacity_;
    ++count_;
    if (scope != nullptr) {
      scope->Exited();
    }
    nonempty_.Signal();
  }

  std::int64_t Remove(OpScope* scope) override {
    MonitorRegion region(monitor_);
    if (scope != nullptr) {
      scope->Arrived();
    }
    if (count_ == 0) {
      nonempty_.Wait();
    }
    if (scope != nullptr) {
      scope->Entered();
    }
    const std::int64_t item = ring_[static_cast<std::size_t>(out_)];
    out_ = (out_ + 1) % capacity_;
    --count_;
    if (scope != nullptr) {
      scope->Exited(item);
    }
    nonfull_.Signal();
    return item;
  }

  int capacity() const override { return capacity_; }

 private:
  HoareMonitor monitor_;
  HoareMonitor::Condition nonfull_{monitor_};
  HoareMonitor::Condition nonempty_{monitor_};
  std::vector<std::int64_t> ring_;
  int capacity_;
  int count_ = 0;
  int in_ = 0;
  int out_ = 0;
};

// The SAME `if` logic over a Mesa monitor — the textbook stolen-wakeup bug: between the
// signal and the waiter's resumption, a third process can consume the condition.
template <bool kWhileRecheck>
class MesaBuffer : public BoundedBufferIface {
 public:
  MesaBuffer(Runtime& runtime, int capacity)
      : monitor_(runtime), ring_(static_cast<std::size_t>(capacity), 0), capacity_(capacity) {}

  void Deposit(std::int64_t item, OpScope* scope) override {
    MesaRegion region(monitor_);
    if (scope != nullptr) {
      scope->Arrived();
    }
    if (kWhileRecheck) {
      while (count_ == capacity_) {
        nonfull_.Wait();
      }
    } else if (count_ == capacity_) {
      nonfull_.Wait();
    }
    if (scope != nullptr) {
      scope->Entered();
    }
    ring_[static_cast<std::size_t>(in_)] = item;
    in_ = (in_ + 1) % capacity_;
    ++count_;
    if (scope != nullptr) {
      scope->Exited();
    }
    nonempty_.Signal();
  }

  std::int64_t Remove(OpScope* scope) override {
    MesaRegion region(monitor_);
    if (scope != nullptr) {
      scope->Arrived();
    }
    if (kWhileRecheck) {
      while (count_ == 0) {
        nonempty_.Wait();
      }
    } else if (count_ == 0) {
      nonempty_.Wait();
    }
    if (scope != nullptr) {
      scope->Entered();
    }
    // An if-wait Mesa consumer can reach here with count_ == 0 (stolen wakeup);
    // the resulting bogus item and negative count are caught by the oracle.
    const std::int64_t item = ring_[static_cast<std::size_t>(out_)];
    out_ = (out_ + 1) % capacity_;
    --count_;
    if (scope != nullptr) {
      scope->Exited(item);
    }
    nonfull_.Signal();
    return item;
  }

  int capacity() const override { return capacity_; }

 private:
  MesaMonitor monitor_;
  MesaMonitor::Condition nonfull_{monitor_};
  MesaMonitor::Condition nonempty_{monitor_};
  std::vector<std::int64_t> ring_;
  int capacity_;
  int count_ = 0;
  int in_ = 0;
  int out_ = 0;
};

template <typename Buffer>
SweepOutcome Sweep(int seeds) {
  return SweepSchedules(seeds, [](std::uint64_t seed) -> TrialReport {
    AnomalyDetector detector;
    TraceRecorder trace;
    detector.AttachTrace(&trace);
    trace.SetObserver(&detector);
    DetRuntime rt(MakeRandomSchedule(seed));
    rt.AttachAnomalyDetector(&detector);
    Buffer buffer(rt, 2);
    BufferWorkloadParams params;
    params.producers = 3;
    params.consumers = 3;
    params.items_per_producer = 4;
    ThreadList threads = SpawnBoundedBufferWorkload(rt, buffer, trace, params);
    const DetRuntime::RunResult result = rt.Run();
    TrialReport report;
    report.anomalies = detector.counts();
    report.anomaly_report = detector.Report("; ");
    if (!result.completed) {
      report.message = "runtime: " + result.report;
    } else {
      report.message = CheckBoundedBuffer(trace.Events(), 2);
    }
    return report;
  });
}

template <typename Buffer>
double Throughput(const bench::Options& options, int items) {
  const bench::RepeatStats stats = bench::Repeat(options, [&] {
    OsRuntime rt;
    TraceRecorder trace;
    Buffer buffer(rt, 8);
    BufferWorkloadParams params;
    params.producers = 2;
    params.consumers = 2;
    params.items_per_producer = items;
    bench::Stopwatch watch;
    ThreadList threads = SpawnBoundedBufferWorkload(rt, buffer, trace, params);
    JoinAll(threads);
    return watch.Seconds();
  });
  return 2.0 * items / stats.median_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::ParseArgs(argc, argv, "signal_ablation");
  bench::Reporter reporter(options);
  std::printf("=== Ablation: Hoare vs Mesa signal semantics (DESIGN decision 2) ===\n\n");
  const int seeds = 80;
  std::printf("Bounded buffer (capacity 2, 3 producers + 3 consumers), %d schedules:\n\n",
              seeds);
  std::vector<std::string> header = {"variant", "oracle verdict + anomalies"};
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Hoare signal + if-wait", Sweep<HoareIfBuffer>(seeds).Summary()});
  rows.push_back({"Mesa signal + if-wait", Sweep<MesaBuffer<false>>(seeds).Summary()});
  rows.push_back({"Mesa signal + while-wait", Sweep<MesaBuffer<true>>(seeds).Summary()});
  std::printf("%s\n", syneval::RenderTable(header, rows).c_str());

  const int items = 20000;
  std::printf("Throughput under OsRuntime (capacity 8, 2+2 threads, %d items each):\n",
              items);
  const double hoare = Throughput<HoareIfBuffer>(options, items);
  const double mesa = Throughput<MesaBuffer<true>>(options, items);
  std::printf("  Hoare (transfer + urgent queue): %10.0f items/s\n", hoare);
  std::printf("  Mesa (notify + re-contend):      %10.0f items/s\n\n", mesa);
  reporter.Add("hoare_monitor", "bounded_buffer", "throughput", hoare, "items/s");
  reporter.Add("mesa_monitor", "bounded_buffer", "throughput", mesa, "items/s");

  std::printf("Expected shape: Hoare+if clean everywhere (the signalled condition is\n"
              "guaranteed); Mesa+if violates on some schedules (stolen wakeups);\n"
              "Mesa+while clean. Hoare pays transfer overhead per signal — the price of\n"
              "the guarantee the paper's monitor analysis leans on.\n");
  return reporter.Finish() ? 0 : 1;
}
