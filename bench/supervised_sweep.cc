// Supervised sweep demo + acceptance gate for the trial supervisor
// (runtime/supervisor.h): real OsRuntime cells swept alongside one permanently-hung
// cell and one crashing cell.
//
// The hung cell parks forever on a condition variable that is never signalled — the
// reaper must force-unwind it within --trial-deadline (default 250ms here) via
// AnomalyDetector::SetAborting + OsRuntime::RequestAbort. The crashing cell throws on
// every seed and must surface as a structured TrialCrash. Both must be quarantined
// after SupervisorOptions::quarantine_after catastrophic seeds while the healthy
// bounded-buffer cells complete every seed with clean oracles.
//
// Flags beyond the shared harness set:
//   --sandbox=1          run every attempt in a fork()ed child (POSIX only); the hung
//                        cell is then reaped with SIGKILL instead of cooperatively.
//   --quarantine-out=<p> write the quarantine.json artifact.
//
// Exit status is the acceptance verdict: non-zero when a healthy cell failed or was
// quarantined, or when either misbehaving cell escaped quarantine.

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/os_runtime.h"
#include "syneval/runtime/supervisor.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/semaphore_solutions.h"

namespace {

using namespace syneval;

BufferWorkloadParams SmallBufferWorkload() {
  BufferWorkloadParams params;
  params.producers = 2;
  params.consumers = 2;
  params.items_per_producer = 12;
  params.work = 0;
  return params;
}

// Healthy cell: a short real-thread bounded-buffer run checked by its oracle.
template <typename Buffer>
SupervisableTrialFactory HealthyCell() {
  return [](std::uint64_t) {
    return MakeSupervisableOsTrial([](OsRuntime& rt) {
      TraceRecorder trace;
      Buffer buffer(rt, 5);
      ThreadList threads =
          SpawnBoundedBufferWorkload(rt, buffer, trace, SmallBufferWorkload());
      JoinAll(threads);
      return CheckBoundedBuffer(trace.Events(), 5);
    });
  };
}

// Hung cell: waits forever on a condvar nobody signals. Only the reaper (or the
// sandbox's SIGKILL) can end it.
SupervisableTrialFactory HungCell() {
  return [](std::uint64_t) {
    return MakeSupervisableOsTrial([](OsRuntime& rt) -> std::string {
      std::unique_ptr<RtMutex> mu = rt.CreateMutex();
      std::unique_ptr<RtCondVar> cv = rt.CreateCondVar();
      std::unique_lock<RtMutex> lock(*mu);
      while (true) {  // Predicate is forever false; Wait unwinds via TrialAborted.
        cv->Wait(*mu);
      }
    });
  };
}

// Crashing cell: the trial body dies on every seed. In-process this is an escaping
// exception; under --sandbox=1 the whole child process exits abnormally.
SupervisableTrialFactory CrashCell() {
  return [](std::uint64_t seed) {
    return MakeSupervisableOsTrial([seed](OsRuntime&) -> std::string {
      throw std::runtime_error("synthetic defect: trial state corrupted at seed " +
                               std::to_string(seed));
    });
  };
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> extras;
  bench::Options options = bench::ParseArgs(argc, argv, "supervised_sweep", &extras);
  bench::Reporter reporter(options);

  SupervisorOptions supervisor;
  supervisor.trial_deadline =
      std::chrono::milliseconds(options.trial_deadline_ms > 0 ? options.trial_deadline_ms
                                                              : 250);
  supervisor.sandbox = extras.count("sandbox") != 0 && extras["sandbox"] == "1";

  std::vector<SupervisedCell> cells;
  cells.push_back({"bounded-buffer/semaphore", HealthyCell<SemaphoreBoundedBuffer>()});
  cells.push_back({"bounded-buffer/monitor", HealthyCell<MonitorBoundedBuffer>()});
  cells.push_back({"hung/never-signalled-wait", HungCell()});
  cells.push_back({"crash/synthetic-defect", CrashCell()});

  const int seeds = options.SeedsOr(8);
  std::printf("=== Supervised sweep: %d seed(s)/cell, deadline %lldms, sandbox %s ===\n\n",
              seeds, static_cast<long long>(supervisor.trial_deadline.count()),
              supervisor.sandbox ? "on" : "off");

  bool gate_failed = false;
  const double wall_seconds = bench::TimeSeconds([&] {
    const SupervisedSweepReport report = SuperviseSweep(cells, seeds, 1, supervisor);

    for (const SupervisedCellResult& cell : report.cells) {
      std::printf("%-28s runs=%-3d failures=%-3d reaped=%-2d crashed=%-2d retried=%-2d %s\n",
                  cell.id.c_str(), cell.outcome.runs, cell.outcome.failures,
                  cell.stats.reaped, cell.stats.crashed, cell.stats.retried,
                  cell.quarantined ? ("QUARANTINED: " + cell.quarantine_reason).c_str()
                                   : "ok");
      reporter.Add("supervisor", cell.id, "runs", cell.outcome.runs, "trials");
      reporter.Add("supervisor", cell.id, "failures", cell.outcome.failures, "trials");
      reporter.Add("supervisor", cell.id, "reaped", cell.stats.reaped, "attempts");
      reporter.Add("supervisor", cell.id, "crashed", cell.stats.crashed, "attempts");
      reporter.Add("supervisor", cell.id, "retried", cell.stats.retried, "attempts");
      reporter.Add("supervisor", cell.id, "quarantined", cell.quarantined ? 1 : 0,
                   "bool");

      const bool misbehaving = cell.id.rfind("hung/", 0) == 0 ||
                               cell.id.rfind("crash/", 0) == 0;
      if (misbehaving && !cell.quarantined) {
        std::printf("  GATE: misbehaving cell %s escaped quarantine\n", cell.id.c_str());
        gate_failed = true;
      }
      if (!misbehaving && cell.quarantined) {
        std::printf("  GATE: healthy cell %s was quarantined\n", cell.id.c_str());
        gate_failed = true;
      }
      if (!misbehaving && (cell.outcome.failures != 0 || cell.outcome.runs != seeds)) {
        std::printf("  GATE: healthy cell %s did not complete cleanly (%d/%d, %d failure(s))\n",
                    cell.id.c_str(), cell.outcome.runs, seeds, cell.outcome.failures);
        gate_failed = true;
      }
      if (misbehaving && cell.quarantined && cell.last_postmortem_cause.empty() &&
          cell.last_crash.what.empty() && cell.quarantine_reason.empty()) {
        std::printf("  GATE: quarantined cell %s carries no explanation\n",
                    cell.id.c_str());
        gate_failed = true;
      }
    }

    // The "remaining seeds" aggregate the acceptance criterion compares against a
    // clean run: only the healthy cells, folded in cell order.
    const SweepOutcome healthy = report.MergedHealthyOutcome();
    reporter.Add("supervisor", "", "healthy_runs", healthy.runs, "trials");
    reporter.Add("supervisor", "", "healthy_failures", healthy.failures, "trials");
    reporter.SetSupervisor(report.totals);

    std::printf("\nhealthy cells merged: runs=%d failures=%d; totals: reaped=%d "
                "crashed=%d retried=%d quarantined=%d\n",
                healthy.runs, healthy.failures, report.totals.reaped,
                report.totals.crashed, report.totals.retried,
                report.totals.quarantined);

    if (!options.quarantine_path.empty()) {
      if (report.WriteQuarantineFile(options.quarantine_path)) {
        std::printf("wrote %s\n", options.quarantine_path.c_str());
      } else {
        std::printf("GATE: failed to write %s\n", options.quarantine_path.c_str());
        gate_failed = true;
      }
    }
    reporter.Add("supervisor", "", "gate_failed", gate_failed ? 1 : 0, "bool");
  });
  reporter.SetSweepInfo(1, wall_seconds);

  if (!reporter.Finish()) {
    return 1;
  }
  return gate_failed ? 1 : 0;
}
