// Experiment E6: the nested-monitor-call problem (Sections 2 and 5.2; Lister 1977).
// Exhibits the deadlock live under the deterministic runtime, then shows the two
// remedies the paper discusses: the protected-resource structure for monitors, and
// serializer crowds.

#include <cstdio>
#include <memory>

#include "syneval/monitor/hoare_monitor.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/schedule.h"
#include "syneval/serializer/serializer.h"

namespace {

using namespace syneval;

class InnerBuffer {
 public:
  explicit InnerBuffer(Runtime& rt) : monitor_(rt) {}

  void Put(int value) {
    MonitorRegion region(monitor_);
    while (full_) {
      not_full_.Wait();
    }
    value_ = value;
    full_ = true;
    not_empty_.Signal();
  }

  int Get() {
    MonitorRegion region(monitor_);
    while (!full_) {
      not_empty_.Wait();
    }
    full_ = false;
    not_full_.Signal();
    return value_;
  }

 private:
  HoareMonitor monitor_;
  HoareMonitor::Condition not_full_{monitor_};
  HoareMonitor::Condition not_empty_{monitor_};
  bool full_ = false;
  int value_ = 0;
};

DetRuntime::RunResult RunNested(bool release_outer_first) {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  auto outer = std::make_unique<HoareMonitor>(rt);
  auto inner = std::make_unique<InnerBuffer>(rt);
  auto consumer = rt.StartThread("consumer", [&] {
    if (release_outer_first) {
      { MonitorRegion region(*outer); }
      inner->Get();
    } else {
      MonitorRegion region(*outer);
      inner->Get();  // Waits while holding the outer monitor.
    }
  });
  auto producer = rt.StartThread("producer", [&] {
    rt.Yield();
    if (release_outer_first) {
      { MonitorRegion region(*outer); }
      inner->Put(1);
    } else {
      MonitorRegion region(*outer);
      inner->Put(1);
    }
  });
  return rt.Run();
}

DetRuntime::RunResult RunSerializerVersion() {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  auto outer = std::make_unique<Serializer>(rt);
  auto crowd = std::make_unique<Serializer::Crowd>(*outer, "accessors");
  auto inner = std::make_unique<InnerBuffer>(rt);
  auto consumer = rt.StartThread("consumer", [&] {
    Serializer::Region region(*outer);
    outer->JoinCrowd(*crowd, [&] { inner->Get(); });
  });
  auto producer = rt.StartThread("producer", [&] {
    rt.Yield();
    Serializer::Region region(*outer);
    outer->JoinCrowd(*crowd, [&] { inner->Put(1); });
  });
  return rt.Run();
}

}  // namespace

int main() {
  std::printf("=== E6: nested monitor calls (Lister 1977; paper Sections 2, 5.2) ===\n\n");

  std::printf("(a) Naive nesting — inner wait while holding the outer monitor:\n");
  const DetRuntime::RunResult naive = RunNested(/*release_outer_first=*/false);
  std::printf("    completed=%s\n    %s\n", naive.completed ? "yes" : "no",
              naive.report.c_str());

  std::printf("(b) Protected-resource structure — outer monitor released before the "
              "inner call:\n");
  const DetRuntime::RunResult structured = RunNested(/*release_outer_first=*/true);
  std::printf("    completed=%s\n\n", structured.completed ? "yes" : "no");

  std::printf("(c) Serializer — JoinCrowd releases possession during the inner call:\n");
  const DetRuntime::RunResult serializer = RunSerializerVersion();
  std::printf("    completed=%s\n\n", serializer.completed ? "yes" : "no");

  std::printf("Expected shape: (a) deadlocks with both threads reported; (b) and (c)\n"
              "complete — matching the paper's claim that the structure (for monitors)\n"
              "and the mechanism itself (for serializers) avoid the problem.\n");
  return naive.completed || !structured.completed || !serializer.completed ? 1 : 0;
}
