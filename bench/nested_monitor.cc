// Experiment E6: the nested-monitor-call problem (Sections 2 and 5.2; Lister 1977).
// Exhibits the deadlock live under the deterministic runtime, then shows the two
// remedies the paper discusses: the protected-resource structure for monitors, and
// serializer crowds.

#include <cstdio>
#include <memory>

#include "syneval/anomaly/detector.h"
#include "syneval/monitor/hoare_monitor.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/explore.h"
#include "syneval/runtime/schedule.h"
#include "syneval/serializer/serializer.h"

namespace {

using namespace syneval;

class InnerBuffer {
 public:
  explicit InnerBuffer(Runtime& rt) : monitor_(rt) {}

  void Put(int value) {
    MonitorRegion region(monitor_);
    while (full_) {
      not_full_.Wait();
    }
    value_ = value;
    full_ = true;
    not_empty_.Signal();
  }

  int Get() {
    MonitorRegion region(monitor_);
    while (!full_) {
      not_empty_.Wait();
    }
    full_ = false;
    not_full_.Signal();
    return value_;
  }

 private:
  HoareMonitor monitor_;
  HoareMonitor::Condition not_full_{monitor_};
  HoareMonitor::Condition not_empty_{monitor_};
  bool full_ = false;
  int value_ = 0;
};

struct NestedResult {
  DetRuntime::RunResult run;
  AnomalyCounts anomalies;
};

NestedResult RunNested(bool release_outer_first, std::unique_ptr<Schedule> schedule) {
  NestedResult out;
  AnomalyDetector detector;
  DetRuntime rt(std::move(schedule));
  rt.AttachAnomalyDetector(&detector);
  auto outer = std::make_unique<HoareMonitor>(rt);
  auto inner = std::make_unique<InnerBuffer>(rt);
  auto consumer = rt.StartThread("consumer", [&] {
    if (release_outer_first) {
      { MonitorRegion region(*outer); }
      inner->Get();
    } else {
      MonitorRegion region(*outer);
      inner->Get();  // Waits while holding the outer monitor.
    }
  });
  auto producer = rt.StartThread("producer", [&] {
    rt.Yield();
    if (release_outer_first) {
      { MonitorRegion region(*outer); }
      inner->Put(1);
    } else {
      MonitorRegion region(*outer);
      inner->Put(1);
    }
  });
  out.run = rt.Run();
  out.anomalies = detector.counts();
  return out;
}

// Schedule sweep over the naive nesting: every seed should end in a detected deadlock
// with a named wait-for cycle and a replayable seed in the sweep's first_anomaly line.
SweepOutcome SweepNaive(int seeds) {
  return SweepSchedules(seeds, [](std::uint64_t seed) -> TrialReport {
    NestedResult nested = RunNested(/*release_outer_first=*/false, MakeRandomSchedule(seed));
    TrialReport report;
    report.anomalies = nested.anomalies;
    if (!nested.run.completed) {
      report.message = "runtime: " + nested.run.report;
      report.anomaly_report = nested.run.report;
    }
    return report;
  });
}

DetRuntime::RunResult RunSerializerVersion() {
  DetRuntime rt(std::make_unique<FifoSchedule>());
  auto outer = std::make_unique<Serializer>(rt);
  auto crowd = std::make_unique<Serializer::Crowd>(*outer, "accessors");
  auto inner = std::make_unique<InnerBuffer>(rt);
  auto consumer = rt.StartThread("consumer", [&] {
    Serializer::Region region(*outer);
    outer->JoinCrowd(*crowd, [&] { inner->Get(); });
  });
  auto producer = rt.StartThread("producer", [&] {
    rt.Yield();
    Serializer::Region region(*outer);
    outer->JoinCrowd(*crowd, [&] { inner->Put(1); });
  });
  return rt.Run();
}

}  // namespace

int main() {
  std::printf("=== E6: nested monitor calls (Lister 1977; paper Sections 2, 5.2) ===\n\n");

  std::printf("(a) Naive nesting — inner wait while holding the outer monitor:\n");
  const NestedResult naive =
      RunNested(/*release_outer_first=*/false, std::make_unique<FifoSchedule>());
  std::printf("    completed=%s  anomalies=%s\n    %s\n", naive.run.completed ? "yes" : "no",
              naive.anomalies.Summary().c_str(), naive.run.report.c_str());

  const int seeds = 50;
  const SweepOutcome sweep = SweepNaive(seeds);
  std::printf("    Sweep over %d random schedules: %d/%d deadlocked, "
              "anomaly rate %.2f (%s)\n",
              seeds, static_cast<int>(sweep.anomalies.deadlocks), sweep.runs,
              sweep.AnomalyRate(), sweep.anomalies.Summary().c_str());
  if (!sweep.first_anomaly.empty()) {
    std::printf("    First (replayable): %s\n\n", sweep.first_anomaly.c_str());
  }

  std::printf("(b) Protected-resource structure — outer monitor released before the "
              "inner call:\n");
  const NestedResult structured =
      RunNested(/*release_outer_first=*/true, std::make_unique<FifoSchedule>());
  std::printf("    completed=%s  anomalies=%s\n\n", structured.run.completed ? "yes" : "no",
              structured.anomalies.Summary().c_str());

  std::printf("(c) Serializer — JoinCrowd releases possession during the inner call:\n");
  const DetRuntime::RunResult serializer = RunSerializerVersion();
  std::printf("    completed=%s\n\n", serializer.completed ? "yes" : "no");

  std::printf("Expected shape: (a) deadlocks under FIFO and on a large fraction of random\n"
              "schedules, with the wait-for cycle named by the anomaly detector; (b) and\n"
              "(c) complete — matching the paper's claim that the structure (for monitors)\n"
              "and the mechanism itself (for serializers) avoid the problem.\n");
  const bool ok = !naive.run.completed && naive.anomalies.deadlocks > 0 &&
                  sweep.anomalies.deadlocks > 0 && structured.run.completed &&
                  structured.anomalies.total() == 0 && serializer.completed;
  return ok ? 0 : 1;
}
