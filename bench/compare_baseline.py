#!/usr/bin/env python3
"""Compare fresh bench JSON output against the seeded perf baseline.

Usage:
  compare_baseline.py [--baseline tests/golden/bench_baseline.json]
                      [--rel 0.25] [--markdown out.md] fresh1.json [fresh2.json ...]
  compare_baseline.py --write-baseline tests/golden/bench_baseline.json fresh1.json ...

Rows are matched by (bench, mechanism, problem, metric). A row regresses when the
fresh value exceeds baseline + tolerance, where

  tolerance = max(rel * baseline, absolute_floor(unit, baseline))

The absolute floor keeps sub-millisecond rows from flapping: at those magnitudes
scheduler noise on shared CI runners dwarfs any 25% band. Faster-than-baseline rows
never fail (they are reported as improvements). Rows only in the fresh run are
reported but do not fail — new benches land before their baseline does. Baseline
rows MISSING from the fresh run are regressions: a bench that silently stops
reporting a metric is exactly the failure mode a perf gate exists to catch.

Exit status: 0 = no regressions, 1 = at least one regression, 2 = usage/IO error.
The perf-regression CI job runs this non-blocking and pastes the markdown into the
step summary.
"""

import argparse
import json
import sys

# Per-unit absolute floors, in the row's own unit. Timings below these magnitudes are
# noise-dominated on shared runners; the floor also covers counter-like units where a
# small absolute wiggle is meaningless (items/s floors are relative to typical scale).
ABS_FLOORS = {
    "s": 2e-3,       # sub-2ms wall times: pure scheduling jitter
    "ms": 2.0,
    "us": 2000.0,
    "ns": 200.0,     # sub-200ns per-op medians flap with frequency scaling
    "steps": 1.0,
    "items/s": 0.0,  # throughput handled by the relative band alone
}

KEY_FIELDS = ("bench", "mechanism", "problem", "metric")

# Metrics that are configuration echoes or ratios of other rows — never baselined.
VOLATILE_METRICS = {"speedup", "jobs"}


def load_rows(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"{path}: {err}", file=sys.stderr)
        sys.exit(2)
    rows = doc["rows"] if "rows" in doc else doc.get("results", [])
    out = {}
    for row in rows:
        if row["metric"] in VOLATILE_METRICS:
            continue
        out[tuple(row[k] for k in KEY_FIELDS)] = (float(row["value"]), row["unit"])
    return out


def tolerance(rel, baseline_value, unit):
    return max(rel * abs(baseline_value), ABS_FLOORS.get(unit, 0.0))


def write_baseline(path, fresh):
    rows = [
        {"bench": k[0], "mechanism": k[1], "problem": k[2], "metric": k[3],
         "value": value, "unit": unit}
        for k, (value, unit) in sorted(fresh.items())
    ]
    doc = {
        "schema_version": 1,
        "description": "Seeded perf baseline: median timings from mechanism_overhead, "
                       "buffer_throughput, and sweep_scaling on the CI runner class. "
                       "Compared by bench/compare_baseline.py at +/-25% relative "
                       "tolerance with absolute floors for sub-millisecond rows; the "
                       "perf-regression CI job is non-blocking.",
        "regenerate": "see docs/PARALLEL_EXPLORATION.md#perf-baseline",
        "rows": rows,
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    print(f"wrote {path} ({len(rows)} rows)")


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", default="tests/golden/bench_baseline.json")
    parser.add_argument("--rel", type=float, default=0.25,
                        help="relative tolerance band (default 0.25 = +/-25%%)")
    parser.add_argument("--markdown", default="",
                        help="also write the report as a markdown file")
    parser.add_argument("--write-baseline", default="",
                        help="instead of comparing, write the fresh rows as a new "
                             "baseline to this path")
    parser.add_argument("fresh", nargs="+", help="bench --json output files")
    args = parser.parse_args()

    fresh = {}
    for path in args.fresh:
        fresh.update(load_rows(path))
    if not fresh:
        print("no fresh rows", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(args.write_baseline, fresh)
        return 0

    baseline = load_rows(args.baseline)

    regressions, improvements, stable, new_rows, missing = [], [], [], [], []
    for key in sorted(baseline.keys() | fresh.keys()):
        if key not in baseline:
            new_rows.append(key)
            continue
        if key not in fresh:
            missing.append(key)
            continue
        base_value, unit = baseline[key]
        fresh_value, _ = fresh[key]
        tol = tolerance(args.rel, base_value, unit)
        delta = fresh_value - base_value
        pct = (delta / base_value * 100.0) if base_value else float("inf")
        row = (key, base_value, fresh_value, pct, unit)
        if delta > tol:
            regressions.append(row)
        elif delta < -tol:
            improvements.append(row)
        else:
            stable.append(row)

    lines = ["# Perf baseline comparison", "",
             f"{len(stable)} stable, {len(improvements)} improved, "
             f"{len(regressions)} regressed, {len(missing)} missing, "
             f"{len(new_rows)} new "
             f"(tolerance: max({args.rel:.0%} relative, per-unit absolute floor))", ""]
    for title, rows in (("Regressions", regressions), ("Improvements", improvements)):
        if not rows:
            continue
        lines += [f"## {title}", "",
                  "| bench | mechanism | problem | metric | baseline | fresh | delta |",
                  "|---|---|---|---|---|---|---|"]
        for (bench, mech, prob, metric), base_value, fresh_value, pct, unit in (
                (r[0], r[1], r[2], r[3], r[4]) for r in rows):
            lines.append(f"| {bench} | {mech} | {prob} | {metric} "
                         f"| {base_value:g} {unit} | {fresh_value:g} {unit} "
                         f"| {pct:+.1f}% |")
        lines.append("")
    if missing:
        lines += ["## Missing rows (in the baseline but absent from the fresh run — "
                  "failing)", ""]
        lines += [f"- `{' / '.join(k)}`" for k in missing]
        lines.append("")
    if new_rows:
        lines += ["## New rows (no baseline yet, not failing)", ""]
        lines += [f"- `{' / '.join(k)}`" for k in new_rows]
        lines.append("")

    report = "\n".join(lines)
    print(report)
    if args.markdown:
        with open(args.markdown, "w") as f:
            f.write(report + "\n")

    return 1 if regressions or missing else 0


if __name__ == "__main__":
    sys.exit(main())
