// Extension experiment: what the priority policies cost in fairness.
//
// The paper treats priority constraints as "usually concerned with efficiency rather
// than correctness criteria" (Section 2); this bench quantifies that efficiency story.
// Under a reader-heavy workload, readers-priority can starve writers indefinitely (the
// paper notes Figure 1's specification "allows writers to starve"); writers-priority
// starves readers symmetrically; FCFS and the fair batch policy bound everyone's wait.
// Waits are measured in logical trace units on an identical workload per policy.

#include <cstdio>
#include <memory>
#include <string>

#include "syneval/core/scorecard.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/trace/query.h"

namespace {

using namespace syneval;

struct FairnessRow {
  std::string policy;
  WaitStats readers;
  WaitStats writers;
  bool completed = true;
};

// Reader-heavy: 6 readers hammering, 2 writers trying to get in.
RwWorkloadParams HeavyReaderWorkload() {
  RwWorkloadParams params;
  params.readers = 6;
  params.writers = 2;
  params.ops_per_reader = 12;
  params.ops_per_writer = 6;
  params.read_work = 3;
  params.write_work = 2;
  params.think_work = 0;  // Readers re-request immediately: maximal reader pressure.
  return params;
}

template <typename Solution>
FairnessRow Measure(const char* policy) {
  DetRuntime rt(MakeRandomSchedule(7));
  TraceRecorder trace;
  Solution rw(rt);
  ThreadList threads = SpawnReadersWritersWorkload(rt, rw, trace, HeavyReaderWorkload());
  const DetRuntime::RunResult result = rt.Run();
  FairnessRow row;
  row.policy = policy;
  row.completed = result.completed;
  const std::vector<Execution> executions = GroupExecutions(trace.Events());
  row.readers = ComputeWaitStats(executions, "read");
  row.writers = ComputeWaitStats(executions, "write");
  return row;
}

std::vector<std::string> Render(const FairnessRow& row) {
  char reader_mean[32];
  char reader_max[32];
  char writer_mean[32];
  char writer_max[32];
  std::snprintf(reader_mean, sizeof reader_mean, "%.0f", row.readers.mean_wait);
  std::snprintf(reader_max, sizeof reader_max, "%llu",
                static_cast<unsigned long long>(row.readers.max_wait));
  std::snprintf(writer_mean, sizeof writer_mean, "%.0f", row.writers.mean_wait);
  std::snprintf(writer_max, sizeof writer_max, "%llu",
                static_cast<unsigned long long>(row.writers.max_wait));
  return {row.policy, reader_mean, reader_max, writer_mean, writer_max,
          row.completed ? "yes" : "NO"};
}

}  // namespace

int main() {
  std::printf("=== Extension: fairness cost of the readers/writers policies ===\n\n");
  std::printf("Reader-heavy workload (6 readers x 12 ops, 2 writers x 6 ops), one\n");
  std::printf("deterministic schedule (seed 7); waits in logical trace units:\n\n");

  std::vector<std::string> header = {"policy",          "reader mean", "reader max",
                                     "writer mean",     "writer max",  "completed"};
  std::vector<std::vector<std::string>> rows;
  rows.push_back(Render(Measure<MonitorRwReadersPriority>("readers priority (monitor)")));
  rows.push_back(Render(Measure<MonitorRwWritersPriority>("writers priority (monitor)")));
  rows.push_back(Render(Measure<MonitorRwFcfs>("fcfs (monitor two-stage)")));
  rows.push_back(Render(Measure<MonitorRwFair>("fair batches (monitor)")));
  rows.push_back(Render(Measure<PathExprRwFigure1>("Figure 1 (CH74 paths)")));
  rows.push_back(Render(Measure<PathExprRwFigure2>("Figure 2 (CH74 paths)")));
  std::printf("%s\n", syneval::RenderTable(header, rows).c_str());

  std::printf("Expected shape: readers-priority (and Figure 1) give readers the lowest\n"
              "waits and writers the highest — 'this specification allows writers to\n"
              "starve'; writers-priority inverts it; FCFS and fair batches compress the\n"
              "spread at the cost of reader concurrency.\n");
  return 0;
}
