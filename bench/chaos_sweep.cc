// Chaos calibration sweep (the fault-injection counterpart of table_conformance):
// every footnote-2 problem × mechanism pair swept under matched fault-on / fault-off
// schedules per fault family (syneval/fault/chaos.h), reporting the anomaly
// detector's calibration — injected-fault recall, false positives on the matched
// clean sweeps, and mean steps from injection to detection.
//
// Everything runs under DetRuntime, so the table is a pure function of the suite and
// the seed range: CI diffs the --json output against tests/golden/chaos_calibration.json
// and this binary exits non-zero when a calibration gate fails (recall below 100% on
// the bounded-buffer lost-signal row, or any false positive anywhere).

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "syneval/fault/chaos.h"

namespace {

constexpr int kSeedsPerCase = 12;

}  // namespace

int main(int argc, char** argv) {
  syneval::bench::Options options = syneval::bench::ParseArgs(argc, argv, "chaos_sweep");
  syneval::bench::Reporter reporter(options);

  // The calibration table is bit-identical at any worker count (deterministic merge in
  // runtime/parallel_sweep.h), so the golden-file diff is safe under --jobs.
  const syneval::ChaosCalibrationTable table = syneval::RunChaosCalibration(
      options.SeedsOr(kSeedsPerCase), /*base_seed=*/1, /*workload_scale=*/1,
      options.Parallel());
  reporter.SetSweepInfo(table.jobs, table.wall_seconds);
  reporter.SetWorkers(table.workers);

  bool gate_failed = false;
  for (const syneval::ChaosCalibrationRow& row : table.rows) {
    const syneval::ChaosSweepOutcome& o = row.outcome;
    const std::string mechanism = syneval::MechanismName(row.mechanism);
    // The fault family is folded into the metric name so the six-field schema stays
    // untouched: "<family>_recall", "<family>_false_positives", ...
    reporter.Add(mechanism, row.problem, row.fault + "_injected_runs", o.injected_runs,
                 "runs");
    reporter.Add(mechanism, row.problem, row.fault + "_harmful", o.harmful, "runs");
    reporter.Add(mechanism, row.problem, row.fault + "_absorbed", o.absorbed, "runs");
    reporter.Add(mechanism, row.problem, row.fault + "_recall", o.Recall(), "fraction");
    reporter.Add(mechanism, row.problem, row.fault + "_false_positives", o.clean_anomalies,
                 "runs");
    reporter.Add(mechanism, row.problem, row.fault + "_steps_to_detection",
                 o.MeanStepsToDetection(), "steps");

    std::printf("%-18s %-28s %-12s %s\n", row.problem.c_str(), row.display.c_str(),
                row.fault.c_str(), o.Summary().c_str());
    if (row.problem == "bounded-buffer" && row.fault == "lost-signal" && o.harmful > 0 &&
        o.Recall() < 1.0) {
      std::printf("  GATE: bounded-buffer lost-signal recall %.2f < 1.00\n", o.Recall());
      gate_failed = true;
    }
    if (o.clean_anomalies > 0) {
      std::printf("  GATE: %d false positive(s) on matched fault-off schedules\n",
                  o.clean_anomalies);
      gate_failed = true;
    }
    if (o.clean_failures > 0) {
      std::printf("  GATE: %d fault-off run(s) hung or failed their oracle (suite defect)\n",
                  o.clean_failures);
      gate_failed = true;
    }
  }

  std::printf("\nworst recall over harmful rows: %.2f; total false positives: %d\n",
              table.MinRecall(), table.TotalFalsePositives());
  std::printf("sweep: jobs=%d wall=%.3fs\n%s", table.jobs, table.wall_seconds,
              reporter.WorkerTable().c_str());
  if (!reporter.Finish()) {
    return 1;
  }
  return gate_failed ? 1 : 0;
}
