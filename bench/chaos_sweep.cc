// Chaos calibration sweep (the fault-injection counterpart of table_conformance):
// every footnote-2 problem × mechanism pair swept under matched fault-on / fault-off
// schedules per fault family (syneval/fault/chaos.h), reporting the anomaly
// detector's calibration — injected-fault recall, false positives on the matched
// clean sweeps, mean steps from injection to detection, and the flight-recorder
// postmortems explaining each flagged run.
//
// Everything runs under DetRuntime, so the table is a pure function of the suite and
// the seed range: CI diffs the --json output against tests/golden/chaos_calibration.json
// and this binary exits non-zero when a calibration gate fails (recall below 100% on
// any lost-signal row with harmful runs — every footnote-2 problem family is gated —
// any false positive anywhere, or — with telemetry compiled in — a postmortem naming
// a cause other than the injected fault family).
//
// --trace=<path> replays the first flagged trial with the tracer attached and exports
// a Perfetto trace with the postmortem narrative overlaid as a "postmortem" track.
//
// --soak=1 runs the supervised long-soak configuration: every trial executes under a
// wall-clock deadline (runtime/supervisor.h; default 2s, override with
// --trial-deadline), catastrophic seeds are retried with backoff and the cell
// quarantined after repeated failure, seeds default to kSoakSeedsPerCase, and — with
// --resume — checkpoints are per-seed (chunk_seeds=1) so a SIGKILL anywhere loses at
// most the seed in flight. Healthy cells produce bit-identical rows to an
// unsupervised run; quarantined cells are reported (and their gates skipped) instead
// of hanging the sweep. --trial-deadline=<ms> alone also enables supervision, with
// the normal seed count and chunk layout.

#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "bench/harness.h"
#include "syneval/fault/chaos.h"
#include "syneval/runtime/checkpoint.h"
#include "syneval/telemetry/perfetto.h"
#include "syneval/telemetry/telemetry.h"
#include "syneval/telemetry/tracer.h"

namespace {

constexpr int kSeedsPerCase = 12;
constexpr int kSoakSeedsPerCase = 24;

// --trace: replay the first stored postmortem's trial with full capture and write a
// Perfetto trace whose "postmortem" track narrates the reconstructed failure.
void ExportPostmortemTrace(const std::string& path,
                           const syneval::ChaosCalibrationTable& table) {
  for (const syneval::ChaosCalibrationRow& row : table.rows) {
    if (row.outcome.postmortems.empty()) {
      continue;
    }
    const syneval::SeedPostmortem& stored = row.outcome.postmortems.front();
    const std::optional<syneval::ChaosReplayResult> replay = syneval::ReplayChaosTrial(
        row.problem, row.mechanism, row.fault, stored.seed, table.base_seed);
    if (!replay.has_value()) {
      std::printf("--trace: could not replay %s/%s %s seed %llu\n", row.problem.c_str(),
                  syneval::MechanismName(row.mechanism), row.fault.c_str(),
                  static_cast<unsigned long long>(stored.seed));
      return;
    }
    syneval::TelemetryTracer tracer;
    replay->postmortem.AddToTracer(tracer);
    syneval::ChromeTraceOptions trace_options;
    trace_options.process_name = "chaos_sweep " + row.problem + "/" +
                                 std::string(syneval::MechanismName(row.mechanism)) +
                                 " " + row.fault;
    if (syneval::WriteChromeTrace(path, replay->events, &tracer, trace_options)) {
      std::printf("wrote Perfetto trace of %s seed %llu (cause: %s) to %s\n",
                  row.fault.c_str(), static_cast<unsigned long long>(stored.seed),
                  replay->postmortem.cause.c_str(), path.c_str());
    } else {
      std::printf("failed to write Perfetto trace to %s\n", path.c_str());
    }
    return;
  }
  std::printf("--trace: no flagged trial to replay (all sweeps clean)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> extras;
  syneval::bench::Options options =
      syneval::bench::ParseArgs(argc, argv, "chaos_sweep", &extras);
  const bool soak = extras.count("soak") != 0 && extras["soak"] != "0";
  extras.erase("soak");
  if (!extras.empty()) {
    std::fprintf(stderr, "chaos_sweep: unknown flag '--%s=...' (only --soak=1)\n",
                 extras.begin()->first.c_str());
    return 2;
  }
  syneval::bench::Reporter reporter(options);

  // Supervision: on for --soak, or whenever a --trial-deadline was given. The
  // in-process abort seam reaps wedged trials without losing their injector
  // telemetry, so a reaped genuine hang still counts toward recall.
  syneval::ChaosSupervision supervision;
  supervision.enabled = soak || options.trial_deadline_ms > 0;
  if (options.trial_deadline_ms > 0) {
    supervision.options.trial_deadline =
        std::chrono::milliseconds(options.trial_deadline_ms);
  }

  // The calibration table is bit-identical at any worker count (deterministic merge in
  // runtime/parallel_sweep.h), so the golden-file diff is safe under --jobs — and
  // under --resume, which restores already-folded chunks from the checkpoint file.
  const std::unique_ptr<syneval::CheckpointStore> store =
      syneval::bench::MakeCheckpointStore(options);
  syneval::ParallelOptions parallel = options.Parallel();
  if (store != nullptr) {
    parallel.checkpoint = store.get();
    parallel.checkpoint_scope = options.bench;  // RunChaosCalibration scopes per row.
    if (soak) {
      // Per-seed checkpoints: with the write-ahead journal flushing every commit, a
      // SIGKILLed soak resumes having lost at most the single seed in flight.
      parallel.chunk_seeds = 1;
    }
  }
  const syneval::ChaosCalibrationTable table = syneval::RunChaosCalibration(
      options.SeedsOr(soak ? kSoakSeedsPerCase : kSeedsPerCase), /*base_seed=*/1,
      /*workload_scale=*/1, parallel, supervision);
  reporter.SetSweepInfo(table.jobs, table.wall_seconds);
  reporter.SetWorkers(table.workers);
  if (supervision.enabled) {
    reporter.SetSupervisor(table.supervisor);
    std::printf("supervisor: reaped=%d crashed=%d retried=%d quarantined=%d\n",
                table.supervisor.reaped, table.supervisor.crashed,
                table.supervisor.retried, table.supervisor.quarantined);
  }
  if (store != nullptr) {
    std::printf("resume: %d chunk(s) restored, %d now checkpointed in %s\n",
                store->hits(), store->size(), store->path().c_str());
    reporter.SetJournal(store->appends(), store->compactions(), store->replayed());
  }
  if (!options.quarantine_path.empty()) {
    if (table.WriteQuarantineFile(options.quarantine_path)) {
      std::printf("wrote %s\n", options.quarantine_path.c_str());
    } else {
      std::fprintf(stderr, "chaos_sweep: cannot write --quarantine-out file '%s'\n",
                   options.quarantine_path.c_str());
      return 1;
    }
  }

  bool gate_failed = false;
  for (const syneval::ChaosCalibrationRow& row : table.rows) {
    const syneval::ChaosSweepOutcome& o = row.outcome;
    const std::string mechanism = syneval::MechanismName(row.mechanism);
    // The fault family is folded into the metric name so the six-field schema stays
    // untouched: "<family>_recall", "<family>_false_positives", ...
    reporter.Add(mechanism, row.problem, row.fault + "_injected_runs", o.injected_runs,
                 "runs");
    reporter.Add(mechanism, row.problem, row.fault + "_harmful", o.harmful, "runs");
    reporter.Add(mechanism, row.problem, row.fault + "_absorbed", o.absorbed, "runs");
    reporter.Add(mechanism, row.problem, row.fault + "_recall", o.Recall(), "fraction");
    reporter.Add(mechanism, row.problem, row.fault + "_false_positives", o.clean_anomalies,
                 "runs");
    reporter.Add(mechanism, row.problem, row.fault + "_steps_to_detection",
                 o.MeanStepsToDetection(), "steps");
    // Postmortem calibration: how many flagged fault-on runs produced a narrative, and
    // how many of those narratives named the injected family as the cause.
    int cause_matched = 0;
    int cause_total = 0;
    for (const auto& [cause, count] : o.postmortem_causes) {
      cause_total += count;
      if (cause == row.fault) {
        cause_matched += count;
      }
    }
    reporter.Add(mechanism, row.problem, row.fault + "_postmortems", o.postmortems_total,
                 "runs");
    reporter.Add(mechanism, row.problem, row.fault + "_cause_matched", cause_matched,
                 "runs");
    reporter.Add(mechanism, row.problem, row.fault + "_flight_evicted",
                 static_cast<double>(o.flight_evicted), "events");

    // One representative narrative per row in the JSON (the full per-seed set stays in
    // memory capped at kMaxStoredPostmortems; one is enough for the CI artifact).
    if (!o.postmortems.empty()) {
      const syneval::SeedPostmortem& pm = o.postmortems.front();
      syneval::bench::Reporter::PostmortemEntry entry;
      entry.mechanism = mechanism;
      entry.problem = row.problem + " [" + row.fault + "]";
      entry.seed = pm.seed;
      entry.cause = pm.cause;
      entry.text = pm.text;
      reporter.AddPostmortem(std::move(entry));
    }

    std::printf("%-18s %-28s %-12s %s\n", row.problem.c_str(), row.display.c_str(),
                row.fault.c_str(), o.Summary().c_str());
    // Quarantined cells (supervised sweeps only): the row still carries whatever
    // seeds completed before quarantine — including reaped genuine hangs, which kept
    // their injector counts — but its folded metrics are partial, so calibration
    // gates would misfire. Report the harvested postmortem and move on; the
    // quarantine file carries the details and CI inspects it separately.
    if (row.quarantined) {
      std::printf("  QUARANTINED: %s\n", row.quarantine_reason.c_str());
      if (!row.last_postmortem_cause.empty()) {
        std::printf("  last postmortem cause: %s\n", row.last_postmortem_cause.c_str());
      }
      continue;
    }
    // Blocking recall gates: lost-signal is the detector's bread-and-butter fault, and
    // the calibration golden shows every harmful one caught across *all* footnote-2
    // problem families in the suite — any regression from 1.00 recall is a detector
    // bug. (Rows with no harmful runs are vacuous and skipped.)
    const bool recall_gated = row.fault == "lost-signal";
    if (recall_gated && o.harmful > 0 && o.Recall() < 1.0) {
      std::printf("  GATE: %s lost-signal recall %.2f < 1.00\n", row.problem.c_str(),
                  o.Recall());
      gate_failed = true;
    }
    if (o.clean_anomalies > 0) {
      std::printf("  GATE: %d false positive(s) on matched fault-off schedules\n",
                  o.clean_anomalies);
      gate_failed = true;
    }
    if (o.clean_failures > 0) {
      std::printf("  GATE: %d fault-off run(s) hung or failed their oracle (suite defect)\n",
                  o.clean_failures);
      gate_failed = true;
    }
#if SYNEVAL_TELEMETRY_ENABLED
    // Postmortem recall gate: with the flight recorder compiled in, every flagged
    // fault-on run must explain itself with the injected family as the named cause
    // (an empty cause means a flagged run yielded no narrative at all). Without
    // telemetry the recorder seam is compiled out and causes degrade to the detector's
    // anomaly classification, so the gate only applies to telemetry-enabled builds.
    if (cause_matched != cause_total) {
      std::printf("  GATE: %d/%d postmortem cause(s) did not name the injected family\n",
                  cause_total - cause_matched, cause_total);
      for (const auto& [cause, count] : o.postmortem_causes) {
        if (cause != row.fault) {
          std::printf("    cause %s: %d run(s)\n",
                      cause.empty() ? "<none>" : cause.c_str(), count);
        }
      }
      gate_failed = true;
    }
#endif
  }

  std::printf("\nworst recall over harmful rows: %.2f; total false positives: %d\n",
              table.MinRecall(), table.TotalFalsePositives());
  std::printf("sweep: jobs=%d wall=%.3fs\n%s", table.jobs, table.wall_seconds,
              reporter.WorkerTable().c_str());
  if (!options.trace_path.empty()) {
    ExportPostmortemTrace(options.trace_path, table);
  }
  if (!reporter.Finish()) {
    return 1;
  }
  return gate_failed ? 1 : 0;
}
