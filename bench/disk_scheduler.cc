// Experiment E9: why parameter-based priority constraints matter.
//
// Runs identical random request streams through SCAN schedulers (monitor, serializer,
// semaphore private-semaphore pattern) and the FCFS baseline (including the best a
// CH74 path expression can do), comparing total head movement on the virtual disk.
// SCAN should cut seek distance by a large factor at higher queue depths; the oracle
// validates every schedule's policy conformance as it runs.

#include <cstdio>
#include <memory>
#include <string>

#include "syneval/core/scorecard.h"
#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/os_runtime.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/solutions/semaphore_solutions.h"
#include "syneval/solutions/serializer_solutions.h"

namespace {

using namespace syneval;

struct RunStats {
  std::int64_t seek = 0;
  std::string oracle;
};

template <typename Scheduler>
RunStats RunWorkload(int requesters, int requests_per_thread, bool scan) {
  OsRuntime rt;
  TraceRecorder trace;
  VirtualDisk disk(1000, 0);
  Scheduler scheduler(rt);
  DiskWorkloadParams params;
  params.requesters = requesters;
  params.requests_per_thread = requests_per_thread;
  params.tracks = 1000;
  params.hold_work = 1;
  params.think_work = 0;
  params.seed = 2026;
  ThreadList threads = SpawnDiskWorkload(rt, scheduler, disk, trace, params);
  JoinAll(threads);
  RunStats stats;
  stats.seek = disk.total_seek();
  stats.oracle = scan ? CheckScanDiskSchedule(trace.Events(), 0)
                      : CheckFcfsDiskSchedule(trace.Events());
  if (disk.violations() != 0) {
    stats.oracle = "virtual disk observed concurrent access";
  }
  return stats;
}

}  // namespace

int main() {
  std::printf("=== E9: disk-head scheduling — SCAN vs FCFS seek distance ===\n\n");
  std::vector<std::string> header = {"requesters", "scheduler", "total seek", "vs fcfs",
                                     "oracle"};
  std::vector<std::vector<std::string>> rows;
  for (int requesters : {2, 4, 8, 16}) {
    const int per_thread = 320 / requesters;
    const RunStats fcfs = RunWorkload<PathDiskFcfs>(requesters, per_thread,
                                                    /*scan=*/false);
    struct Entry {
      const char* name;
      RunStats stats;
    };
    const Entry entries[] = {
        {"fcfs (path expr best effort)", fcfs},
        {"scan (monitor)",
         RunWorkload<MonitorDiskScheduler>(requesters, per_thread, /*scan=*/true)},
        {"scan (serializer)",
         RunWorkload<SerializerDiskScheduler>(requesters, per_thread, /*scan=*/true)},
        {"scan (semaphores)",
         RunWorkload<SemaphoreDiskScheduler>(requesters, per_thread, /*scan=*/true)},
    };
    for (const Entry& entry : entries) {
      char seek[32];
      std::snprintf(seek, sizeof seek, "%lld", static_cast<long long>(entry.stats.seek));
      char ratio[32];
      std::snprintf(ratio, sizeof ratio, "%.2fx",
                    static_cast<double>(fcfs.seek) /
                        static_cast<double>(entry.stats.seek == 0 ? 1 : entry.stats.seek));
      rows.push_back({std::to_string(requesters), entry.name, seek, ratio,
                      entry.stats.oracle.empty() ? "ok" : entry.stats.oracle});
    }
  }
  std::printf("%s\n", syneval::RenderTable(header, rows).c_str());
  std::printf("Expected shape: SCAN's advantage grows with the number of concurrent\n"
              "requesters (deeper queues give the elevator more to reorder); all SCAN\n"
              "implementations produce identical policies (oracle ok).\n");
  return 0;
}
