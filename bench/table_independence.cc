// Experiment E4: constraint independence (paper Sections 4.2 and 5.1.2).
// For problem pairs that share their exclusion constraint but differ in priority,
// measures how similar the shared constraint's implementation stays per mechanism,
// and the total modification cost of moving between the solutions.

#include <cstdio>

#include "syneval/core/metrics.h"
#include "syneval/core/scorecard.h"
#include "syneval/solutions/registry.h"

int main() {
  using namespace syneval;
  std::printf("=== E4: Constraint independence (Bloom 1979, Section 4.2 / 5.1.2) ===\n\n");
  std::printf("%s\n", RenderIndependenceTable().c_str());

  std::printf("Fragment detail for the paper's own pair (Figure 1 -> Figure 2):\n\n");
  const auto fig1 = FindSolution(Mechanism::kPathExpression, "rw-readers-priority");
  const auto fig2 = FindSolution(Mechanism::kPathExpression, "rw-writers-priority");
  if (fig1 && fig2) {
    for (const ConstraintFragment& fragment : fig1->fragments) {
      std::printf("  Figure 1 %-10s: %s\n", fragment.constraint.c_str(),
                  fragment.code.c_str());
    }
    for (const ConstraintFragment& fragment : fig2->fragments) {
      std::printf("  Figure 2 %-10s: %s\n", fragment.constraint.c_str(),
                  fragment.code.c_str());
    }
    std::printf("\n  modification cost Figure1 -> Figure2: %.2f\n",
                ModificationCost(*fig1, *fig2));
  }
  const auto mon1 = FindSolution(Mechanism::kMonitor, "rw-readers-priority");
  const auto mon2 = FindSolution(Mechanism::kMonitor, "rw-writers-priority");
  if (mon1 && mon2) {
    std::printf("  modification cost monitor readers->writers priority: %.2f\n",
                ModificationCost(*mon1, *mon2));
  }
  const auto ser1 = FindSolution(Mechanism::kSerializer, "rw-readers-priority");
  const auto ser2 = FindSolution(Mechanism::kSerializer, "rw-writers-priority");
  if (ser1 && ser2) {
    std::printf("  modification cost serializer readers->writers priority: %.2f\n",
                ModificationCost(*ser1, *ser2));
  }
  std::printf("\nPaper claim: 'to modify a readers_priority solution to writers_priority"
              " involves changing every synchronization procedure and every path' —\n"
              "the path-expression modification cost should dominate the others.\n");
  return 0;
}
