#include "bench/harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <numeric>
#include <sstream>

#include "syneval/core/scorecard.h"
#include "syneval/runtime/checkpoint.h"
#include "syneval/telemetry/metrics.h"

namespace syneval {
namespace bench {

namespace {

void PrintUsage(const std::string& bench_name, std::ostream& os) {
  os << "usage: " << bench_name << " [flags]\n"
     << "  --json=<path>     write machine-readable results (schema_version 5)\n"
     << "  --trace=<path>    write a Perfetto/Chrome trace (when the bench records one)\n"
     << "  --repeats=<n>     measured repetitions per configuration (default 3)\n"
     << "  --warmup=<n>      unrecorded warmup repetitions (default 1)\n"
     << "  --jobs=<n>        sweep workers; 0 = auto via SYNEVAL_JOBS/hardware (default 0)\n"
     << "  --seeds=<n>       schedule seeds per sweep; 0 = bench default (default 0)\n"
     << "  --resume=<path>   checkpoint file: restore folded chunks, snapshot new ones\n"
     << "  --trial-deadline=<ms>  per-trial deadline for supervised benches (0 = off)\n"
     << "  --quarantine-out=<path>  write quarantine.json (supervised benches)\n"
     << "  --help            this message\n";
}

// Parses "--name=value"; returns true and sets `value` when `arg` starts with prefix.
bool MatchFlag(const std::string& arg, const std::string& prefix, std::string* value) {
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  *value = arg.substr(prefix.size());
  return true;
}

bool ParseInt(const std::string& text, int* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  const long parsed = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = static_cast<int>(parsed);
  return true;
}

// Doubles formatted the way the tables do: fixed, trimmed trailing zeros, so integral
// values print as integers and JSON stays locale-independent.
std::string FormatValue(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  std::string text(buffer);
  while (!text.empty() && text.back() == '0') {
    text.pop_back();
  }
  if (!text.empty() && text.back() == '.') {
    text.pop_back();
  }
  return text;
}

}  // namespace

Options ParseArgs(int argc, char** argv, const std::string& bench_name) {
  return ParseArgs(argc, argv, bench_name, nullptr);
}

std::unique_ptr<CheckpointStore> MakeCheckpointStore(const Options& options) {
  if (options.resume_path.empty()) {
    return nullptr;
  }
  auto store = std::make_unique<CheckpointStore>(options.resume_path);
  const int loaded = store->Load();
  std::printf("resume: %d checkpointed chunk(s) loaded from %s\n", loaded,
              options.resume_path.c_str());
  return store;
}

Options ParseArgs(int argc, char** argv, const std::string& bench_name,
                  std::map<std::string, std::string>* extras) {
  Options options;
  options.bench = bench_name;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      PrintUsage(bench_name, std::cout);
      std::exit(0);
    } else if (MatchFlag(arg, "--json=", &value)) {
      options.json_path = value;
    } else if (MatchFlag(arg, "--trace=", &value)) {
      options.trace_path = value;
    } else if (MatchFlag(arg, "--repeats=", &value)) {
      if (!ParseInt(value, &options.repeats) || options.repeats < 1) {
        std::cerr << bench_name << ": bad --repeats value '" << value << "'\n";
        std::exit(2);
      }
    } else if (MatchFlag(arg, "--warmup=", &value)) {
      if (!ParseInt(value, &options.warmup) || options.warmup < 0) {
        std::cerr << bench_name << ": bad --warmup value '" << value << "'\n";
        std::exit(2);
      }
    } else if (MatchFlag(arg, "--jobs=", &value)) {
      if (!ParseInt(value, &options.jobs) || options.jobs < 0) {
        std::cerr << bench_name << ": bad --jobs value '" << value << "'\n";
        std::exit(2);
      }
    } else if (MatchFlag(arg, "--seeds=", &value)) {
      if (!ParseInt(value, &options.seeds) || options.seeds < 0) {
        std::cerr << bench_name << ": bad --seeds value '" << value << "'\n";
        std::exit(2);
      }
    } else if (MatchFlag(arg, "--resume=", &value)) {
      options.resume_path = value;
    } else if (MatchFlag(arg, "--trial-deadline=", &value)) {
      if (!ParseInt(value, &options.trial_deadline_ms) || options.trial_deadline_ms < 0) {
        std::cerr << bench_name << ": bad --trial-deadline value '" << value << "'\n";
        std::exit(2);
      }
    } else if (MatchFlag(arg, "--quarantine-out=", &value)) {
      options.quarantine_path = value;
    } else if (extras != nullptr && arg.rfind("--", 0) == 0 &&
               arg.find('=') != std::string::npos) {
      // Bench-specific flag: "--key=value" with the caller left to validate keys.
      const std::size_t eq = arg.find('=');
      (*extras)[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    } else {
      std::cerr << bench_name << ": unknown flag '" << arg << "'\n";
      PrintUsage(bench_name, std::cerr);
      std::exit(2);
    }
  }
  return options;
}

RepeatStats Repeat(const Options& options, const std::function<double()>& run) {
  for (int i = 0; i < options.warmup; ++i) {
    (void)run();
  }
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(options.repeats));
  for (int i = 0; i < options.repeats; ++i) {
    samples.push_back(run());
  }
  std::sort(samples.begin(), samples.end());
  RepeatStats stats;
  stats.samples = static_cast<int>(samples.size());
  stats.min_seconds = samples.front();
  stats.max_seconds = samples.back();
  stats.mean_seconds =
      std::accumulate(samples.begin(), samples.end(), 0.0) / static_cast<double>(samples.size());
  // Median as the headline number: robust to the occasional descheduled repetition
  // without needing an explicit outlier-rejection threshold.
  const std::size_t mid = samples.size() / 2;
  stats.median_seconds = (samples.size() % 2 == 1)
                             ? samples[mid]
                             : (samples[mid - 1] + samples[mid]) / 2.0;
  return stats;
}

double TimeSeconds(const std::function<void()>& fn) {
  Stopwatch watch;
  fn();
  return watch.Seconds();
}

Reporter::Reporter(Options options) : options_(std::move(options)) {}

void Reporter::Add(const std::string& mechanism, const std::string& problem,
                   const std::string& metric, double value, const std::string& unit) {
  rows_.push_back(Row{mechanism, problem, metric, value, unit});
}

void Reporter::SetSweepInfo(int jobs, double wall_seconds) {
  have_sweep_info_ = true;
  sweep_jobs_ = jobs;
  sweep_wall_seconds_ = wall_seconds;
}

void Reporter::SetWorkers(std::vector<WorkerTelemetry> workers) {
  workers_ = std::move(workers);
}

void Reporter::SetSupervisor(const SupervisorStats& stats) {
  have_supervisor_ = true;
  supervisor_ = stats;
}

void Reporter::SetJournal(int appends, int compactions, int replayed) {
  have_journal_ = true;
  journal_appends_ = appends;
  journal_compactions_ = compactions;
  journal_replayed_ = replayed;
}

void Reporter::AddPostmortem(PostmortemEntry entry) {
  postmortems_.push_back(std::move(entry));
}

std::string Reporter::WorkerTable() const {
  if (workers_.empty()) {
    return "";
  }
  std::vector<std::vector<std::string>> rows;
  rows.reserve(workers_.size());
  for (const WorkerTelemetry& w : workers_) {
    rows.push_back({std::to_string(w.worker), std::to_string(w.trials),
                    std::to_string(w.chunks), std::to_string(w.steals),
                    std::to_string(w.cached), FormatValue(w.wall_seconds)});
  }
  return RenderTable({"worker", "trials", "chunks", "steals", "cached", "wall_s"}, rows);
}

std::string Reporter::Table() const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(rows_.size());
  for (const Row& row : rows_) {
    rows.push_back({row.mechanism, row.problem, row.metric, FormatValue(row.value), row.unit});
  }
  return RenderTable({"mechanism", "problem", "metric", "value", "unit"}, rows);
}

bool Reporter::Finish() const {
  if (options_.json_path.empty()) {
    return true;
  }
  std::ostringstream out;
  out << "{\"schema_version\":5,\"bench\":\"" << JsonEscape(options_.bench) << "\"";
  // Sweep-pool accounting goes in top-level keys, never in "results": the result rows
  // must stay deterministic for golden-file diffs, and timings are machine-dependent.
  if (have_sweep_info_) {
    out << ",\"jobs\":" << sweep_jobs_ << ",\"wall_seconds\":"
        << FormatValue(sweep_wall_seconds_);
  }
  if (!workers_.empty()) {
    out << ",\"workers\":[";
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const WorkerTelemetry& w = workers_[i];
      if (i != 0) {
        out << ",";
      }
      out << "{\"worker\":" << w.worker << ",\"trials\":" << w.trials
          << ",\"chunks\":" << w.chunks << ",\"steals\":" << w.steals
          << ",\"cached\":" << w.cached
          << ",\"wall_seconds\":" << FormatValue(w.wall_seconds) << "}";
    }
    out << "]";
  }
  if (have_supervisor_) {
    out << ",\"supervisor\":{\"reaped\":" << supervisor_.reaped
        << ",\"crashed\":" << supervisor_.crashed
        << ",\"retried\":" << supervisor_.retried
        << ",\"quarantined\":" << supervisor_.quarantined << "}";
  }
  if (have_journal_) {
    out << ",\"journal\":{\"appends\":" << journal_appends_
        << ",\"compactions\":" << journal_compactions_
        << ",\"replayed\":" << journal_replayed_ << "}";
  }
  if (!postmortems_.empty()) {
    out << ",\"postmortem\":[";
    for (std::size_t i = 0; i < postmortems_.size(); ++i) {
      const PostmortemEntry& pm = postmortems_[i];
      if (i != 0) {
        out << ",";
      }
      out << "{\"mechanism\":\"" << JsonEscape(pm.mechanism) << "\",\"problem\":\""
          << JsonEscape(pm.problem) << "\",\"seed\":" << pm.seed << ",\"cause\":\""
          << JsonEscape(pm.cause) << "\",\"text\":\"" << JsonEscape(pm.text) << "\"";
      if (!pm.detail_json.empty()) {
        out << ",\"detail\":" << pm.detail_json;  // Pre-rendered Postmortem::ToJson().
      }
      out << "}";
    }
    out << "]";
  }
  out << ",\"results\":[";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& row = rows_[i];
    if (i != 0) {
      out << ",";
    }
    out << "{\"bench\":\"" << JsonEscape(options_.bench) << "\",\"mechanism\":\""
        << JsonEscape(row.mechanism) << "\",\"problem\":\"" << JsonEscape(row.problem)
        << "\",\"metric\":\"" << JsonEscape(row.metric) << "\",\"value\":"
        << FormatValue(row.value) << ",\"unit\":\"" << JsonEscape(row.unit) << "\"}";
  }
  out << "]}\n";
  std::ofstream file(options_.json_path);
  if (!file) {
    std::cerr << options_.bench << ": cannot write --json file '" << options_.json_path
              << "'\n";
    return false;
  }
  file << out.str();
  file.close();
  if (!file) {
    std::cerr << options_.bench << ": error writing --json file '" << options_.json_path
              << "'\n";
    return false;
  }
  std::cout << "wrote " << options_.json_path << "\n";
  return true;
}

}  // namespace bench
}  // namespace syneval
