// The full conformance scorecard: every (mechanism, problem) solution swept over
// deterministic schedules against its oracle, including the paper's predicted
// violations (Figure 1; arbitrary-selection FCFS; weak-semaphore CHP priorities).

#include <cstdio>

#include "syneval/core/conformance.h"
#include "syneval/core/scorecard.h"

int main() {
  using namespace syneval;
  std::printf("=== Conformance scorecard: solution matrix x schedule sweeps ===\n\n");
  const int seeds = 25;
  std::printf("(%d deterministic schedules per case)\n\n", seeds);
  const std::vector<ConformanceResult> results = RunConformanceSuite(seeds);
  std::printf("%s\n", RenderConformanceTable(results).c_str());
  int unexpected = 0;
  for (const ConformanceResult& result : results) {
    if (!result.AsExpected()) {
      ++unexpected;
    }
  }
  std::printf("\n%d/%zu cases behaved as the paper predicts.\n",
              static_cast<int>(results.size()) - unexpected, results.size());
  return unexpected == 0 ? 0 : 1;
}
