// The full conformance scorecard: every (mechanism, problem) solution swept over
// deterministic schedules against its oracle, including the paper's predicted
// violations (Figure 1; arbitrary-selection FCFS; weak-semaphore CHP priorities).
//
// Sweeps shard across --jobs workers (runtime/parallel_sweep.h); every row of the
// scorecard — counts, failing seeds, first-failure messages — is bit-identical to the
// serial sweep, so --jobs only changes the wall time reported at the bottom.
//
// --trace=<path> replays the first anomalous trial with the tracer attached and
// exports a Perfetto trace with the postmortem narrative overlaid.

#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "syneval/core/conformance.h"
#include "syneval/runtime/checkpoint.h"
#include "syneval/core/scorecard.h"
#include "syneval/telemetry/perfetto.h"
#include "syneval/telemetry/tracer.h"

namespace {

// --trace: replay the first stored postmortem's trial with full capture and export a
// Perfetto trace whose "postmortem" track narrates the reconstructed failure.
void ExportPostmortemTrace(const std::string& path,
                           const std::vector<syneval::ConformanceResult>& results) {
  using namespace syneval;
  for (const ConformanceResult& result : results) {
    if (result.outcome.postmortems.empty()) {
      continue;
    }
    const SeedPostmortem& stored = result.outcome.postmortems.front();
    const ConformanceReplay replay = ReplayConformanceTrial(result.spec, stored.seed);
    TelemetryTracer tracer;
    replay.postmortem.AddToTracer(tracer);
    ChromeTraceOptions trace_options;
    trace_options.process_name = "table_conformance " + result.spec.problem + "/" +
                                 std::string(MechanismName(result.spec.mechanism));
    if (WriteChromeTrace(path, replay.events, &tracer, trace_options)) {
      std::printf("wrote Perfetto trace of %s/%s seed %llu (cause: %s) to %s\n",
                  result.spec.problem.c_str(), MechanismName(result.spec.mechanism),
                  static_cast<unsigned long long>(stored.seed),
                  replay.postmortem.cause.c_str(), path.c_str());
    } else {
      std::printf("failed to write Perfetto trace to %s\n", path.c_str());
    }
    return;
  }
  std::printf("--trace: no anomalous trial to replay (all sweeps clean)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace syneval;
  bench::Options options = bench::ParseArgs(argc, argv, "table_conformance");
  bench::Reporter reporter(options);

  const int seeds = options.SeedsOr(25);
  std::printf("=== Conformance scorecard: solution matrix x schedule sweeps ===\n\n");
  std::printf("(%d deterministic schedules per case)\n\n", seeds);

  // Run each case through the pool directly (rather than RunConformanceSuite) so the
  // per-worker telemetry shards can be merged across cases for the v2 JSON schema.
  const std::unique_ptr<CheckpointStore> store = bench::MakeCheckpointStore(options);
  std::vector<ConformanceResult> results;
  std::vector<WorkerTelemetry> workers;
  int jobs = 1;
  double wall_seconds = 0;
  for (const ConformanceCase& conformance_case : BuildConformanceSuite()) {
    ParallelOptions parallel = options.Parallel();
    if (store != nullptr) {
      parallel.checkpoint = store.get();
      // Per-case key namespace, mirroring RunConformanceSuite's scoping.
      parallel.checkpoint_scope = options.bench + "/" + conformance_case.problem +
                                  "/" + conformance_case.display;
    }
    ParallelSweepResult sweep =
        ParallelSweepSchedules(seeds, conformance_case.trial, /*base_seed=*/1, parallel);
    jobs = sweep.jobs;
    wall_seconds += sweep.wall_seconds;
    MergeWorkerTelemetry(workers, sweep.workers);
    results.push_back(ConformanceResult{conformance_case, std::move(sweep.outcome)});
  }
  if (store != nullptr) {
    std::printf("resume: %d chunk(s) restored, %d now checkpointed in %s\n",
                store->hits(), store->size(), store->path().c_str());
  }
  std::printf("%s\n", RenderConformanceTable(results).c_str());

  int unexpected = 0;
  for (const ConformanceResult& result : results) {
    const SweepOutcome& o = result.outcome;
    reporter.Add(MechanismName(result.spec.mechanism), result.spec.problem, "runs",
                 o.runs, "schedules");
    reporter.Add(MechanismName(result.spec.mechanism), result.spec.problem, "failures",
                 o.failures, "schedules");
    reporter.Add(MechanismName(result.spec.mechanism), result.spec.problem,
                 "anomalous_seeds", static_cast<double>(o.anomalous_seeds.size()),
                 "schedules");
    reporter.Add(MechanismName(result.spec.mechanism), result.spec.problem,
                 "as_expected", result.AsExpected() ? 1 : 0, "bool");
    // Observability health: total flight-ring evictions over the sweep. Non-zero
    // means some postmortem windows were truncated (tune ring sizing if it grows).
    reporter.Add(MechanismName(result.spec.mechanism), result.spec.problem,
                 "flight_evicted", static_cast<double>(o.flight_evicted), "events");
    // One representative flight-recorder narrative per anomalous case for the v3
    // "postmortem" key (the sweep keeps at most kMaxStoredPostmortems per case).
    if (!o.postmortems.empty()) {
      const SeedPostmortem& pm = o.postmortems.front();
      bench::Reporter::PostmortemEntry entry;
      entry.mechanism = MechanismName(result.spec.mechanism);
      entry.problem = result.spec.problem;
      entry.seed = pm.seed;
      entry.cause = pm.cause;
      entry.text = pm.text;
      reporter.AddPostmortem(std::move(entry));
    }
    if (!result.AsExpected()) {
      ++unexpected;
    }
  }
  reporter.SetSweepInfo(jobs, wall_seconds);
  reporter.SetWorkers(workers);

  std::printf("\n%d/%zu cases behaved as the paper predicts.\n",
              static_cast<int>(results.size()) - unexpected, results.size());
  std::printf("sweep: jobs=%d wall=%.3fs\n%s", jobs, wall_seconds,
              reporter.WorkerTable().c_str());
  if (!options.trace_path.empty()) {
    ExportPostmortemTrace(options.trace_path, results);
  }
  if (!reporter.Finish()) {
    return 1;
  }
  return unexpected == 0 ? 0 : 1;
}
