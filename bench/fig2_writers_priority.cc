// Experiment E2: Figure 2 and the Section 5.1.2 modification analysis.
//
// Verifies the Figure 2 writers-priority solution behaves (conformance sweep), then
// quantifies the paper's ease-of-use point: although readers-priority and
// writers-priority share their exclusion constraint, moving Figure 1 -> Figure 2
// rewrites everything, while the monitor and serializer pairs change only their
// priority fragments.

#include <cstdio>
#include <string>

#include "syneval/core/metrics.h"
#include "syneval/core/scorecard.h"
#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/explore.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/solutions/registry.h"

int main() {
  using namespace syneval;
  std::printf("=== E2: Figure 2 (writers priority) and modification cost ===\n\n");

  const int seeds = 80;
  const SweepOutcome outcome = SweepSchedules(seeds, [](std::uint64_t seed) -> std::string {
    DetRuntime rt(MakeRandomSchedule(seed));
    TraceRecorder trace;
    PathExprRwFigure2 rw(rt);
    RwWorkloadParams params;
    params.readers = 3;
    params.writers = 2;
    params.ops_per_reader = 4;
    params.ops_per_writer = 3;
    ThreadList threads = SpawnReadersWritersWorkload(rt, rw, trace, params);
    const DetRuntime::RunResult result = rt.Run();
    if (!result.completed) {
      return "runtime: " + result.report;
    }
    return CheckReadersWriters(trace.Events(), RwPolicy::kWritersPriority, 8,
                               RwStrictness::kArrivalOrder);
  });
  std::printf("Figure 2 conformance (writers-priority, arrival-order oracle): %s\n\n",
              outcome.Summary().c_str());

  std::printf("Per-mechanism cost of the SAME policy change (readers -> writers "
              "priority):\n");
  std::vector<std::string> header = {"mechanism", "exclusion fragment similarity",
                                     "modification cost"};
  std::vector<std::vector<std::string>> rows;
  for (Mechanism mechanism : {Mechanism::kSemaphore, Mechanism::kMonitor,
                              Mechanism::kPathExpression, Mechanism::kSerializer}) {
    const auto a = FindSolution(mechanism, "rw-readers-priority");
    const auto b = FindSolution(mechanism, "rw-writers-priority");
    if (!a || !b) {
      continue;
    }
    const auto similarity = FragmentSimilarity(*a, *b, "exclusion");
    char sim[32];
    std::snprintf(sim, sizeof sim, "%.2f", similarity.value_or(0.0));
    char cost[32];
    std::snprintf(cost, sizeof cost, "%.2f", ModificationCost(*a, *b));
    rows.push_back({MechanismName(mechanism), sim, cost});
  }
  std::printf("%s\n", RenderTable(header, rows).c_str());
  std::printf("Expected shape: path expressions alone change their exclusion fragment\n"
              "when only the priority constraint differs (lowest similarity) — 'a\n"
              "modification to one constraint involves changing the entire solution'\n"
              "(Section 5.1.2). The semaphore baseline's high total cost is the other\n"
              "finding: CHP algorithm 2 is a wholesale rewrite of algorithm 1 even\n"
              "though its exclusion protocol is textually identical.\n");
  return 0;
}
