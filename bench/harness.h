// Shared benchmark harness: one flag parser, one timing loop, one output schema.
//
// Every bench in bench/ links this library instead of hand-rolling steady_clock
// arithmetic. The harness provides:
//
//   * Options / ParseArgs — uniform flags:
//       --json=<path>     write machine-readable results (schema below)
//       --trace=<path>    write a Perfetto/Chrome trace (benches that record one)
//       --repeats=<n>     measured repetitions per configuration (default 3)
//       --warmup=<n>      unrecorded warmup repetitions (default 1)
//       --jobs=<n>        sweep worker count (0 = auto: SYNEVAL_JOBS env, then
//                         hardware_concurrency; sweeps are bit-identical at any n)
//       --seeds=<n>       schedule seeds per sweep (0 = the bench's default count)
//       --resume=<path>   checkpoint snapshot file (runtime/checkpoint.h): chunks
//                         already folded in a previous (possibly killed) run are
//                         restored instead of re-run; the merged outcome is
//                         bit-identical to an uninterrupted sweep
//       --trial-deadline=<ms>  per-trial wall-clock budget for supervised benches
//                         (runtime/supervisor.h); 0 disables reaping
//       --quarantine-out=<path>  where supervised benches write quarantine.json
//     Unknown flags are rejected with a usage message so CI typos fail loudly.
//
//   * Stopwatch / Repeat — warmup + repeat + outlier handling. Repeat reports the
//     MEDIAN of the measured samples (with min/max/mean alongside): the median is
//     robust against the one-off scheduling hiccups that dominate short multithreaded
//     runs, where a mean would need ad-hoc outlier rejection.
//
//   * Reporter — collects {bench, mechanism, problem, metric, value, unit} rows,
//     renders them as a text table, and writes the stable JSON schema:
//
//       {"schema_version": 5,
//        "bench": "<name>",
//        "jobs": <n>,                  // only when the bench ran a sweep pool
//        "wall_seconds": <x>,          // ditto
//        "workers": [{"worker": 0, "trials": ..., "chunks": ..., "steals": ...,
//                     "cached": ..., "wall_seconds": ...}, ...],  // ditto: per-worker
//        "supervisor": {"reaped": ..., "crashed": ..., "retried": ...,
//                       "quarantined": ...},        // only for supervised benches
//        "journal": {"appends": ..., "compactions": ...,
//                    "replayed": ...},              // only for --resume benches
//        "postmortem": [{"mechanism": "...", "problem": "...", "seed": <n>,
//                        "cause": "...", "text": "...",
//                        "detail": {...}}, ...],    // only when postmortems occurred
//        "results": [{"bench": "...", "mechanism": "...", "problem": "...",
//                     "metric": "...", "value": <number>, "unit": "..."}, ...]}
//
//     The schema is append-only by contract: consumers (CI's perf-smoke validator,
//     bench/compare_baseline.py, plotting scripts) may rely on these six row fields
//     existing with these names. schema_version 2 added the optional top-level
//     jobs/wall_seconds/workers keys (the "results" rows are unchanged from v1);
//     schema_version 3 added the optional top-level "postmortem" array (flight-recorder
//     narratives of anomalous trials — see src/syneval/telemetry/postmortem.h);
//     schema_version 4 added the optional top-level "supervisor" counters
//     (runtime/supervisor.h) and the "cached" field on worker rows (chunks restored
//     from a --resume checkpoint); schema_version 5 added the optional top-level
//     "journal" counters (runtime/checkpoint.h write-ahead-journal telemetry: appends
//     written, compactions performed, entries replayed over the snapshot on Load).
//     The worker telemetry, supervisor counters, journal counters, and postmortems
//     deliberately live OUTSIDE "results" so golden-file diffs over the deterministic
//     rows never see machine-dependent timings or multi-line narratives.

#ifndef SYNEVAL_BENCH_HARNESS_H_
#define SYNEVAL_BENCH_HARNESS_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "syneval/runtime/parallel_sweep.h"
#include "syneval/runtime/supervisor.h"

namespace syneval {

class CheckpointStore;

namespace bench {

struct Options {
  std::string bench;       // Bench name; set by ParseArgs from its argument.
  std::string json_path;   // --json=<path>; empty = no JSON output.
  std::string trace_path;  // --trace=<path>; empty = no trace output.
  int repeats = 3;         // --repeats=<n>, clamped to >= 1.
  int warmup = 1;          // --warmup=<n>, clamped to >= 0.
  int jobs = 0;            // --jobs=<n>; 0 = auto (see ResolveJobs). Sweep benches
                           // feed this into ParallelOptions; timing benches ignore it.
  int seeds = 0;           // --seeds=<n>; 0 = the bench's built-in seed count.
  std::string resume_path;  // --resume=<path>; empty = no checkpointing.
  int trial_deadline_ms = 0;     // --trial-deadline=<ms>; 0 = no reaping.
  std::string quarantine_path;   // --quarantine-out=<path>; empty = don't write.

  // The sweep pool configuration this bench should use (jobs passed through; 0 stays
  // "auto" so SYNEVAL_JOBS and hardware_concurrency apply at resolve time).
  ParallelOptions Parallel() const {
    ParallelOptions parallel;
    parallel.jobs = jobs;
    return parallel;
  }
  int SeedsOr(int fallback) const { return seeds > 0 ? seeds : fallback; }
};

// Builds (and Load()s) the checkpoint store for --resume; nullptr when the flag was
// not given. The bench attaches it via ParallelOptions::checkpoint with the bench
// name as the scope root, and keeps it alive for the duration of its sweeps:
//
//   auto store = MakeCheckpointStore(options);
//   ParallelOptions parallel = options.Parallel();
//   if (store) { parallel.checkpoint = store.get(); parallel.checkpoint_scope = options.bench; }
std::unique_ptr<CheckpointStore> MakeCheckpointStore(const Options& options);

// Parses the uniform flags. On --help or an unknown/malformed flag, prints usage and
// exits (0 for --help, 2 otherwise) — benches have no flags of their own.
Options ParseArgs(int argc, char** argv, const std::string& bench_name);

// As above, but benches with flags of their own pass `extras`: any unknown
// "--key=value" flag lands there (key without the leading "--") instead of being
// rejected. Flags that are not of that shape still print usage and exit 2.
Options ParseArgs(int argc, char** argv, const std::string& bench_name,
                  std::map<std::string, std::string>* extras);

// Minimal steady-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

  std::uint64_t Nanos() const {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now() - start_)
                                          .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Aggregate of the measured (post-warmup) samples of one configuration.
struct RepeatStats {
  double median_seconds = 0;
  double min_seconds = 0;
  double max_seconds = 0;
  double mean_seconds = 0;
  int samples = 0;
};

// Runs `run` options.warmup times unrecorded, then options.repeats times measured.
// `run` returns the duration of one repetition in seconds (time only the workload:
// construct mechanisms outside the timed section where possible).
RepeatStats Repeat(const Options& options, const std::function<double()>& run);

// Convenience: times `fn` once with a Stopwatch.
double TimeSeconds(const std::function<void()>& fn);

// Collects result rows and writes the stable JSON schema.
class Reporter {
 public:
  explicit Reporter(Options options);

  // One result row. `metric` names the quantity ("throughput", "latency_p99", ...),
  // `unit` its unit ("items/s", "ns", ...); `problem` may be "" for bench-wide rows.
  void Add(const std::string& mechanism, const std::string& problem,
           const std::string& metric, double value, const std::string& unit);

  // Sweep-pool accounting for benches that ran parallel sweeps: emitted as the
  // top-level "jobs"/"wall_seconds"/"workers" keys of the v2 schema (NOT as result
  // rows — see the schema comment above).
  void SetSweepInfo(int jobs, double wall_seconds);
  void SetWorkers(std::vector<WorkerTelemetry> workers);

  // Supervision counters for benches that ran supervised trials: emitted as the
  // top-level "supervisor" object of the v4 schema.
  void SetSupervisor(const SupervisorStats& stats);

  // Checkpoint-journal counters for benches that ran with --resume: emitted as the
  // top-level "journal" object of the v5 schema (CheckpointStore::appends() /
  // compactions() / replayed()).
  void SetJournal(int appends, int compactions, int replayed);

  // One retained postmortem, emitted under the top-level "postmortem" array of the
  // v3 schema. `detail_json` is an optional pre-rendered JSON object
  // (Postmortem::ToJson()) embedded verbatim as the entry's "detail" key.
  struct PostmortemEntry {
    std::string mechanism;
    std::string problem;
    std::uint64_t seed = 0;
    std::string cause;
    std::string text;
    std::string detail_json;
  };
  void AddPostmortem(PostmortemEntry entry);

  // The per-worker telemetry rendered as an aligned text table ("" when no workers
  // were recorded).
  std::string WorkerTable() const;

  // All rows rendered as an aligned text table (for the human-readable output).
  std::string Table() const;

  // Writes JSON to options.json_path when set (prints the path written). Returns
  // false and prints to stderr when the file cannot be written; true otherwise
  // (including when no --json was requested).
  bool Finish() const;

  const Options& options() const { return options_; }

 private:
  struct Row {
    std::string mechanism;
    std::string problem;
    std::string metric;
    double value;
    std::string unit;
  };

  Options options_;
  std::vector<Row> rows_;
  bool have_sweep_info_ = false;
  int sweep_jobs_ = 0;
  double sweep_wall_seconds_ = 0;
  std::vector<WorkerTelemetry> workers_;
  bool have_supervisor_ = false;
  SupervisorStats supervisor_;
  bool have_journal_ = false;
  int journal_appends_ = 0;
  int journal_compactions_ = 0;
  int journal_replayed_ = 0;
  std::vector<PostmortemEntry> postmortems_;
};

}  // namespace bench
}  // namespace syneval

#endif  // SYNEVAL_BENCH_HARNESS_H_
