// syneval_dpor: exhaustive DPOR exploration + happens-before certification of the
// real solutions at small bounds.
//
// For every cell of the DPOR suite (analysis/dpor.h) the explorer drives DetRuntime
// through the full sleep-set/source-set-reduced schedule tree and prints a verdict:
//
//   proved_deadlock_free  every interleaving completed, every wakeup was HB-certified,
//                         no client race, no oracle violation — with the DPOR-vs-naive
//                         execution counts and the reduction ratio;
//   counterexample        a replayable decision prefix reaching the failure;
//   bound_exceeded        a budget ran out first (never claimed as a bug).
//
// Self-validation gates the exit status, mirroring syneval_analyze: every correct
// cell must be proved (with reduction ratio > 1), and every seeded-bug cell must
// yield a counterexample whose replay is confirmed by the independent anomaly
// detector (deadlocks) or the HB engine (races). With --json the verdicts are
// written in the standard bench schema; the blocking `dpor-verdicts` CI job diffs
// that JSON against tests/golden/dpor_verdicts.json.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "syneval/analysis/dpor.h"
#include "syneval/solutions/solution_info.h"

namespace {

using syneval::BuildDporSuite;
using syneval::DporCell;
using syneval::DporCellResult;
using syneval::DporOptions;
using syneval::DporReplay;
using syneval::DporSuiteResult;
using syneval::DporVerdict;
using syneval::DporVerdictName;
using syneval::ExploreDporSuite;
using syneval::MechanismName;
using syneval::ReplayDporCounterexample;

double Round3(double value) { return std::round(value * 1000.0) / 1000.0; }

// A counterexample replay is "confirmed" when an independent judge reproduces the
// claimed failure from nothing but the decision prefix.
bool ReplayConfirms(const std::string& reason, const DporReplay& replay) {
  if (replay.diverged) {
    return false;
  }
  if (reason == "deadlock") {
    return replay.deadlocked && replay.anomalies >= 1;
  }
  if (reason == "client-race") {
    return !replay.hb.races.empty();
  }
  if (reason == "uncertified-wakeup") {
    return !replay.hb.uncertified.empty();
  }
  if (reason == "oracle") {
    return !replay.oracle.empty();
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> extras;
  const syneval::bench::Options options =
      syneval::bench::ParseArgs(argc, argv, "syneval_dpor", &extras);
  syneval::bench::Reporter reporter(options);

  const std::vector<DporCell> suite = BuildDporSuite();
  DporOptions dpor_options;
  // Extra flags for experiments and CI tuning; the defaults are the golden config.
  if (const auto it = extras.find("dpor-budget"); it != extras.end()) {
    dpor_options.max_executions = std::strtoull(it->second.c_str(), nullptr, 10);
  }
  if (const auto it = extras.find("naive-budget"); it != extras.end()) {
    dpor_options.naive_max_executions = std::strtoull(it->second.c_str(), nullptr, 10);
  }
  const DporSuiteResult result = ExploreDporSuite(suite, dpor_options, options.Parallel());
  reporter.SetSweepInfo(result.jobs, result.wall_seconds);
  reporter.SetWorkers(result.workers);

  std::printf("DPOR exploration over %zu cells (budget %llu executions/cell):\n\n",
              suite.size(),
              static_cast<unsigned long long>(dpor_options.max_executions));
  std::printf("  %-12s %-20s %-44s %-22s %10s %10s %8s\n", "mechanism", "problem",
              "cell", "verdict", "dpor", "naive", "ratio");

  bool ok = true;
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const DporCell& cell = suite[i];
    const DporCellResult& verdict = result.cells[i];
    std::printf("  %-12s %-20s %-44s %-22s %10llu %9llu%s %8.1f\n",
                MechanismName(verdict.mechanism), verdict.problem.c_str(),
                verdict.display.c_str(), DporVerdictName(verdict.verdict),
                static_cast<unsigned long long>(verdict.executions),
                static_cast<unsigned long long>(verdict.naive_executions),
                verdict.naive_complete ? "" : "+",
                verdict.reduction_ratio);
    if (!verdict.note.empty()) {
      std::printf("      note: %s\n", verdict.note.c_str());
    }

    const std::string suffix = "/" + verdict.display;
    const char* mechanism = MechanismName(verdict.mechanism);
    reporter.Add(mechanism, verdict.problem, "dpor_proved" + suffix,
                 verdict.verdict == DporVerdict::kProvedDeadlockFree ? 1 : 0, "bool");
    reporter.Add(mechanism, verdict.problem, "dpor_counterexample" + suffix,
                 verdict.verdict == DporVerdict::kCounterexample ? 1 : 0, "bool");
    reporter.Add(mechanism, verdict.problem, "dpor_executions" + suffix,
                 static_cast<double>(verdict.executions), "schedules");
    reporter.Add(mechanism, verdict.problem, "dpor_redundant" + suffix,
                 static_cast<double>(verdict.redundant), "schedules");
    reporter.Add(mechanism, verdict.problem, "dpor_max_depth" + suffix,
                 static_cast<double>(verdict.max_depth), "decisions");
    reporter.Add(mechanism, verdict.problem, "dpor_certified_wakeups" + suffix,
                 static_cast<double>(verdict.certified_wakeups), "count");
    reporter.Add(mechanism, verdict.problem, "dpor_hb_joins" + suffix,
                 static_cast<double>(verdict.hb_joins), "count");
    if (!verdict.seeded_bug) {
      reporter.Add(mechanism, verdict.problem, "dpor_naive_executions" + suffix,
                   static_cast<double>(verdict.naive_executions), "schedules");
      reporter.Add(mechanism, verdict.problem, "dpor_naive_complete" + suffix,
                   verdict.naive_complete ? 1 : 0, "bool");
      reporter.Add(mechanism, verdict.problem, "dpor_reduction_ratio" + suffix,
                   Round3(verdict.reduction_ratio), "x");
    }

    if (verdict.seeded_bug) {
      // A seeded bug that DPOR misses (or that replay cannot confirm) fails the run.
      bool confirmed = false;
      if (verdict.has_counterexample) {
        const DporReplay replay =
            ReplayDporCounterexample(cell, verdict.counterexample.prefix, dpor_options);
        confirmed = ReplayConfirms(verdict.counterexample.reason, replay);
        std::printf("      seeded bug: %s at depth %zu -> replay %s\n",
                    verdict.counterexample.reason.c_str(),
                    verdict.counterexample.prefix.size(),
                    confirmed ? "confirmed" : "NOT CONFIRMED");
        if (!replay.postmortem_cause.empty()) {
          syneval::bench::Reporter::PostmortemEntry entry;
          entry.mechanism = mechanism;
          entry.problem = verdict.problem;
          entry.seed = 0;  // DPOR replays are prefix-driven, not seed-driven.
          entry.cause = replay.postmortem_cause;
          entry.text = replay.postmortem;
          reporter.AddPostmortem(std::move(entry));
        }
      } else {
        std::printf("      seeded bug NOT FOUND (verdict %s)\n",
                    DporVerdictName(verdict.verdict));
      }
      reporter.Add(mechanism, verdict.problem, "dpor_replay_confirmed" + suffix,
                   confirmed ? 1 : 0, "bool");
      ok = ok && confirmed;
    } else {
      const bool proved = verdict.verdict == DporVerdict::kProvedDeadlockFree;
      const bool reduced = verdict.reduction_ratio > 1.0;
      if (!proved || !reduced) {
        std::printf("      EXPECTED proved_deadlock_free with reduction > 1\n");
      }
      ok = ok && proved && reduced;
    }
  }

  std::printf("\nwall: %.2fs over %d jobs\n", result.wall_seconds, result.jobs);
  if (!reporter.Finish()) {
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr, "syneval_dpor: self-validation FAILED\n");
    return 1;
  }
  std::printf("self-validation passed.\n");
  return 0;
}
