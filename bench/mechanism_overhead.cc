// Experiment E7: per-operation overhead of each mechanism (Section 5.2's cost remark:
// serializers "provide more mechanism than do monitors, at more cost").
//
// google-benchmark microbenchmarks over OsRuntime: an uncontended read and write on
// each readers/writers solution, a deposit+remove pair on each bounded buffer, and the
// same read with 4 contending threads. Absolute numbers are machine-dependent; the
// ordering semaphore < monitor < serializer/path-controller is the reproducible shape.

#include <benchmark/benchmark.h>

#include "syneval/runtime/os_runtime.h"
#include "syneval/solutions/ccr_solutions.h"
#include "syneval/solutions/csp_solutions.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/solutions/semaphore_solutions.h"
#include "syneval/solutions/serializer_solutions.h"

namespace {

using namespace syneval;

OsRuntime& GlobalRuntime() {
  static OsRuntime* rt = new OsRuntime();
  return *rt;
}

// Constructor adapters for solutions whose constructors take extra arguments.
struct CspRwReadersPriorityBench : CspReadersWriters {
  explicit CspRwReadersPriorityBench(Runtime& rt)
      : CspReadersWriters(rt, CspReadersWriters::Policy::kReadersPriority) {}
};

template <typename Solution>
Solution& SharedRw() {
  static Solution* solution = new Solution(GlobalRuntime());
  return *solution;
}

template <typename Solution>
void BM_Read(benchmark::State& state) {
  Solution& rw = SharedRw<Solution>();
  for (auto _ : state) {
    rw.Read([] {}, nullptr);
  }
}

template <typename Solution>
void BM_Write(benchmark::State& state) {
  Solution& rw = SharedRw<Solution>();
  for (auto _ : state) {
    rw.Write([] {}, nullptr);
  }
}

template <typename Solution>
Solution& SharedBuffer() {
  static Solution* buffer = new Solution(GlobalRuntime(), 16);
  return *buffer;
}

template <typename Solution>
void BM_DepositRemove(benchmark::State& state) {
  Solution& buffer = SharedBuffer<Solution>();
  for (auto _ : state) {
    buffer.Deposit(1, nullptr);
    benchmark::DoNotOptimize(buffer.Remove(nullptr));
  }
}

}  // namespace

// Uncontended readers/writers read.
BENCHMARK(BM_Read<SemaphoreRwReadersPriority>)->Name("read/semaphore");
BENCHMARK(BM_Read<MonitorRwReadersPriority>)->Name("read/monitor");
BENCHMARK(BM_Read<PathExprRwFigure1>)->Name("read/pathexpr_fig1");
BENCHMARK(BM_Read<PathExprRwPredicates>)->Name("read/pathexpr_predicates");
BENCHMARK(BM_Read<SerializerRwReadersPriority>)->Name("read/serializer");
BENCHMARK(BM_Read<CcrRwReadersPriority>)->Name("read/cond_region");
BENCHMARK(BM_Read<CspRwReadersPriorityBench>)->Name("read/csp_channels");

// Uncontended write.
BENCHMARK(BM_Write<SemaphoreRwReadersPriority>)->Name("write/semaphore");
BENCHMARK(BM_Write<MonitorRwReadersPriority>)->Name("write/monitor");
BENCHMARK(BM_Write<PathExprRwFigure1>)->Name("write/pathexpr_fig1");
BENCHMARK(BM_Write<SerializerRwReadersPriority>)->Name("write/serializer");
BENCHMARK(BM_Write<CcrRwReadersPriority>)->Name("write/cond_region");
BENCHMARK(BM_Write<CspRwReadersPriorityBench>)->Name("write/csp_channels");

// Bounded buffer round trip.
BENCHMARK(BM_DepositRemove<SemaphoreBoundedBuffer>)->Name("buffer/semaphore");
BENCHMARK(BM_DepositRemove<MonitorBoundedBuffer>)->Name("buffer/monitor");
BENCHMARK(BM_DepositRemove<PathBoundedBuffer>)->Name("buffer/pathexpr");
BENCHMARK(BM_DepositRemove<SerializerBoundedBuffer>)->Name("buffer/serializer");
BENCHMARK(BM_DepositRemove<CcrBoundedBuffer>)->Name("buffer/cond_region");
BENCHMARK(BM_DepositRemove<CspBoundedBuffer>)->Name("buffer/csp_channels");

// Contended read (4 threads on the shared solution).
BENCHMARK(BM_Read<SemaphoreRwReadersPriority>)->Name("read4/semaphore")->Threads(4);
BENCHMARK(BM_Read<MonitorRwReadersPriority>)->Name("read4/monitor")->Threads(4);
BENCHMARK(BM_Read<SerializerRwReadersPriority>)->Name("read4/serializer")->Threads(4);

BENCHMARK_MAIN();
