// Experiment E7: per-operation overhead of each mechanism (Section 5.2's cost remark:
// serializers "provide more mechanism than do monitors, at more cost").
//
// Harness-timed loops over OsRuntime: an uncontended read and write on each
// readers/writers solution, a deposit+remove pair on each bounded buffer, and the same
// read with 4 contending threads. Absolute numbers are machine-dependent; the ordering
// semaphore < monitor < serializer/path-controller is the reproducible shape.
//
// The runtime carries a MetricsRegistry, so after the timed loops the bench also prints
// the per-mechanism contention profile (wait/hold percentiles, wakeups per admission)
// that the mechanisms recorded about themselves while being driven.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "syneval/core/scorecard.h"
#include "syneval/runtime/os_runtime.h"
#include "syneval/solutions/ccr_solutions.h"
#include "syneval/solutions/csp_solutions.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/solutions/semaphore_solutions.h"
#include "syneval/solutions/serializer_solutions.h"
#include "syneval/telemetry/flight_recorder.h"
#include "syneval/telemetry/metrics.h"

namespace {

using namespace syneval;

// Constructor adapter for the CSP solution, whose constructor takes a policy.
struct CspRwReadersPriorityBench : CspReadersWriters {
  explicit CspRwReadersPriorityBench(Runtime& rt)
      : CspReadersWriters(rt, CspReadersWriters::Policy::kReadersPriority) {}
};

constexpr int kIters = 20000;

// Median nanoseconds per op of `op` executed kIters times per repetition.
double NsPerOp(const bench::Options& options, const std::function<void()>& op) {
  const bench::RepeatStats stats = bench::Repeat(options, [&] {
    bench::Stopwatch watch;
    for (int i = 0; i < kIters; ++i) {
      op();
    }
    return watch.Seconds();
  });
  return stats.median_seconds * 1e9 / kIters;
}

// Same op driven by 4 runtime threads concurrently (kIters each).
double NsPerOpContended(const bench::Options& options, Runtime& rt,
                        const std::function<void()>& op) {
  const bench::RepeatStats stats = bench::Repeat(options, [&] {
    bench::Stopwatch watch;
    std::vector<std::unique_ptr<RtThread>> threads;
    for (int t = 0; t < 4; ++t) {
      threads.push_back(rt.StartThread("contender", [&] {
        for (int i = 0; i < kIters; ++i) {
          op();
        }
      }));
    }
    for (auto& thread : threads) {
      thread->Join();
    }
    return watch.Seconds();
  });
  // 4 threads x kIters ops; report wall time per op to show the contention cost.
  return stats.median_seconds * 1e9 / (4.0 * kIters);
}

std::string FormatNs(double ns) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.0f", ns);
  return buffer;
}

void AddRow(std::vector<std::vector<std::string>>& rows, bench::Reporter& reporter,
            const char* op, const char* mechanism, double ns_per_op) {
  rows.push_back({op, mechanism, FormatNs(ns_per_op)});
  reporter.Add(mechanism, op, "ns_per_op", ns_per_op, "ns");
}

// Per-mechanism contention profile straight out of the registry the mechanisms
// recorded into while the loops above drove them.
void PrintRegistryProfile(const MetricsRegistry& registry) {
  std::vector<std::vector<std::string>> rows;
  for (const std::string& name : registry.MechanismNames()) {
    const MechanismStats* stats = registry.FindMechanism(name);
    if (stats == nullptr) {
      continue;
    }
    const std::uint64_t admissions = stats->admissions.Value();
    const std::uint64_t wakeups = stats->wakeups.Value();
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.2f",
                  admissions == 0 ? 0.0
                                  : static_cast<double>(wakeups) /
                                        static_cast<double>(admissions));
    rows.push_back({name,
                    std::to_string(admissions),
                    std::to_string(stats->wait.Percentile(50)),
                    std::to_string(stats->wait.Percentile(99)),
                    std::to_string(stats->hold.Percentile(50)),
                    std::to_string(stats->hold.Percentile(99)),
                    std::to_string(stats->signals.Value()),
                    ratio,
                    std::to_string(stats->queue_depth.Max())});
  }
  if (rows.empty()) {
    std::printf("(telemetry compiled out: build with -DSYNEVAL_TELEMETRY=ON for the\n"
                " per-mechanism contention profile)\n");
    return;
  }
  std::printf("%s\n",
              RenderTable({"mechanism", "admissions", "wait p50 ns", "wait p99 ns",
                           "hold p50 ns", "hold p99 ns", "signals", "wakeups/adm",
                           "max queue"},
                          rows)
                  .c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::ParseArgs(argc, argv, "mechanism_overhead");
  bench::Reporter reporter(options);
  std::printf("=== E7: per-operation overhead per mechanism (OsRuntime, %d ops/rep, "
              "%d reps) ===\n\n",
              kIters, options.repeats);

  MetricsRegistry registry;
  OsRuntime rt;
  rt.AttachMetrics(&registry);
  // The always-on flight recorder IS the benchmarked configuration: the numbers below
  // include its per-event cost, and compare_baseline.py holds them to the same ±25%
  // envelope as the recorder-free baseline — the proof that recording is cheap enough
  // to leave on during steady-state measurement.
  FlightRecorder flight;
  rt.AttachFlightRecorder(&flight);

  SemaphoreRwReadersPriority sem_rw(rt);
  MonitorRwReadersPriority mon_rw(rt);
  PathExprRwFigure1 path_rw_fig1(rt);
  PathExprRwPredicates path_rw_pred(rt);
  SerializerRwReadersPriority ser_rw(rt);
  CcrRwReadersPriority ccr_rw(rt);
  CspRwReadersPriorityBench csp_rw(rt);

  std::vector<std::vector<std::string>> rows;

  // Uncontended readers/writers read.
  AddRow(rows, reporter, "read", "semaphore",
         NsPerOp(options, [&] { sem_rw.Read([] {}, nullptr); }));
  AddRow(rows, reporter, "read", "monitor",
         NsPerOp(options, [&] { mon_rw.Read([] {}, nullptr); }));
  AddRow(rows, reporter, "read", "pathexpr_fig1",
         NsPerOp(options, [&] { path_rw_fig1.Read([] {}, nullptr); }));
  AddRow(rows, reporter, "read", "pathexpr_predicates",
         NsPerOp(options, [&] { path_rw_pred.Read([] {}, nullptr); }));
  AddRow(rows, reporter, "read", "serializer",
         NsPerOp(options, [&] { ser_rw.Read([] {}, nullptr); }));
  AddRow(rows, reporter, "read", "cond_region",
         NsPerOp(options, [&] { ccr_rw.Read([] {}, nullptr); }));
  AddRow(rows, reporter, "read", "csp_channels",
         NsPerOp(options, [&] { csp_rw.Read([] {}, nullptr); }));

  // Uncontended write.
  AddRow(rows, reporter, "write", "semaphore",
         NsPerOp(options, [&] { sem_rw.Write([] {}, nullptr); }));
  AddRow(rows, reporter, "write", "monitor",
         NsPerOp(options, [&] { mon_rw.Write([] {}, nullptr); }));
  AddRow(rows, reporter, "write", "pathexpr_fig1",
         NsPerOp(options, [&] { path_rw_fig1.Write([] {}, nullptr); }));
  AddRow(rows, reporter, "write", "serializer",
         NsPerOp(options, [&] { ser_rw.Write([] {}, nullptr); }));
  AddRow(rows, reporter, "write", "cond_region",
         NsPerOp(options, [&] { ccr_rw.Write([] {}, nullptr); }));
  AddRow(rows, reporter, "write", "csp_channels",
         NsPerOp(options, [&] { csp_rw.Write([] {}, nullptr); }));

  // Bounded buffer round trip (deposit + remove on a capacity-16 buffer).
  SemaphoreBoundedBuffer sem_buf(rt, 16);
  MonitorBoundedBuffer mon_buf(rt, 16);
  PathBoundedBuffer path_buf(rt, 16);
  SerializerBoundedBuffer ser_buf(rt, 16);
  CcrBoundedBuffer ccr_buf(rt, 16);
  CspBoundedBuffer csp_buf(rt, 16);
  AddRow(rows, reporter, "buffer_round_trip", "semaphore", NsPerOp(options, [&] {
           sem_buf.Deposit(1, nullptr);
           (void)sem_buf.Remove(nullptr);
         }));
  AddRow(rows, reporter, "buffer_round_trip", "monitor", NsPerOp(options, [&] {
           mon_buf.Deposit(1, nullptr);
           (void)mon_buf.Remove(nullptr);
         }));
  AddRow(rows, reporter, "buffer_round_trip", "pathexpr", NsPerOp(options, [&] {
           path_buf.Deposit(1, nullptr);
           (void)path_buf.Remove(nullptr);
         }));
  AddRow(rows, reporter, "buffer_round_trip", "serializer", NsPerOp(options, [&] {
           ser_buf.Deposit(1, nullptr);
           (void)ser_buf.Remove(nullptr);
         }));
  AddRow(rows, reporter, "buffer_round_trip", "cond_region", NsPerOp(options, [&] {
           ccr_buf.Deposit(1, nullptr);
           (void)ccr_buf.Remove(nullptr);
         }));
  AddRow(rows, reporter, "buffer_round_trip", "csp_channels", NsPerOp(options, [&] {
           csp_buf.Deposit(1, nullptr);
           (void)csp_buf.Remove(nullptr);
         }));

  // Contended read: 4 threads hammering the same solution.
  AddRow(rows, reporter, "read_contended4", "semaphore",
         NsPerOpContended(options, rt, [&] { sem_rw.Read([] {}, nullptr); }));
  AddRow(rows, reporter, "read_contended4", "monitor",
         NsPerOpContended(options, rt, [&] { mon_rw.Read([] {}, nullptr); }));
  AddRow(rows, reporter, "read_contended4", "serializer",
         NsPerOpContended(options, rt, [&] { ser_rw.Read([] {}, nullptr); }));

  std::printf("%s\n", RenderTable({"op", "mechanism", "ns/op"}, rows).c_str());

  std::printf("Per-mechanism contention profile (self-reported via the metrics "
              "registry):\n");
  PrintRegistryProfile(registry);
  std::printf("\nflight recorder: %llu events recorded, %llu evicted (always on during "
              "the timed loops)\n",
              static_cast<unsigned long long>(flight.recorded()),
              static_cast<unsigned long long>(flight.evicted()));

  return reporter.Finish() ? 0 : 1;
}
