// Sweep-scaling bench: serial vs parallel schedule sweeps over the footnote-2
// problems, with a hard bit-identity assertion between the two.
//
// For each of the six problems this runs the first conformance case of that problem
// through a 200-seed sweep (override with --seeds) twice: once serially (jobs=1) and
// once through the work-stealing pool at --jobs workers. The two outcomes must be
// bit-identical — every count, every failing/anomalous seed in order, every
// first-failure string — or the bench exits 1; CI runs this in the perf-regression
// job, so a merge-determinism regression blocks there even before the dedicated unit
// test is consulted. The JSON carries per-problem wall times and the overall speedup,
// which the perf-regression step summary quotes.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "syneval/core/conformance.h"

namespace {

using syneval::ConformanceCase;
using syneval::ParallelOptions;
using syneval::ParallelSweepResult;
using syneval::SweepOutcome;

// Field-by-field equality; SweepOutcome has no operator== because the sweeps
// themselves never need one.
bool Identical(const SweepOutcome& a, const SweepOutcome& b, std::string* why) {
  auto fail = [why](const std::string& field) {
    *why = "outcome field '" + field + "' differs";
    return false;
  };
  if (a.runs != b.runs) return fail("runs");
  if (a.passes != b.passes) return fail("passes");
  if (a.failures != b.failures) return fail("failures");
  if (a.failing_seeds != b.failing_seeds) return fail("failing_seeds");
  if (a.first_failure != b.first_failure) return fail("first_failure");
  if (a.anomalous_seeds != b.anomalous_seeds) return fail("anomalous_seeds");
  if (a.first_anomaly != b.first_anomaly) return fail("first_anomaly");
  if (a.anomalies.deadlocks != b.anomalies.deadlocks) return fail("anomalies.deadlocks");
  if (a.anomalies.lost_wakeups != b.anomalies.lost_wakeups)
    return fail("anomalies.lost_wakeups");
  if (a.anomalies.stuck_waiters != b.anomalies.stuck_waiters)
    return fail("anomalies.stuck_waiters");
  if (a.anomalies.starvations != b.anomalies.starvations)
    return fail("anomalies.starvations");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace syneval;
  bench::Options options = bench::ParseArgs(argc, argv, "sweep_scaling");
  bench::Reporter reporter(options);

  const int seeds = options.SeedsOr(200);
  const int jobs = ResolveJobs(options.jobs);

  // First conformance case per problem: one representative sweep each for the six
  // footnote-2 problems, in suite order.
  std::vector<ConformanceCase> cases;
  {
    std::map<std::string, bool> taken;
    for (ConformanceCase& c : BuildConformanceSuite()) {
      if (!taken[c.problem]) {
        taken[c.problem] = true;
        cases.push_back(std::move(c));
      }
    }
  }

  std::printf("=== Sweep scaling: %d seeds/problem, serial vs %d workers ===\n\n",
              seeds, jobs);

  ParallelOptions serial;
  serial.jobs = 1;
  ParallelOptions pool;
  pool.jobs = jobs;

  double serial_total = 0;
  double parallel_total = 0;
  std::vector<WorkerTelemetry> workers;
  for (const ConformanceCase& c : cases) {
    const ParallelSweepResult s = ParallelSweepSchedules(seeds, c.trial, 1, serial);
    const ParallelSweepResult p = ParallelSweepSchedules(seeds, c.trial, 1, pool);
    std::string why;
    if (!Identical(s.outcome, p.outcome, &why)) {
      std::fprintf(stderr,
                   "sweep_scaling: MERGE NOT BIT-IDENTICAL on %s (%s): %s\n",
                   c.problem.c_str(), c.display.c_str(), why.c_str());
      return 1;
    }
    serial_total += s.wall_seconds;
    parallel_total += p.wall_seconds;
    MergeWorkerTelemetry(workers, p.workers);

    const std::string mechanism = MechanismName(c.mechanism);
    reporter.Add(mechanism, c.problem, "failures", s.outcome.failures, "schedules");
    reporter.Add(mechanism, c.problem, "serial_wall_seconds", s.wall_seconds, "s");
    reporter.Add(mechanism, c.problem, "parallel_wall_seconds", p.wall_seconds, "s");
    std::printf("  %-22s serial %.3fs  parallel %.3fs  (%d failures, identical)\n",
                c.problem.c_str(), s.wall_seconds, p.wall_seconds, s.outcome.failures);
  }

  const double speedup = parallel_total > 0 ? serial_total / parallel_total : 0;
  reporter.Add("all", "", "sweep_wall_seconds_serial", serial_total, "s");
  reporter.Add("all", "", "sweep_wall_seconds_parallel", parallel_total, "s");
  reporter.Add("all", "", "speedup", speedup, "x");
  reporter.Add("all", "", "jobs", jobs, "workers");
  reporter.SetSweepInfo(jobs, parallel_total);
  reporter.SetWorkers(workers);

  std::printf("\ntotal: serial %.3fs, parallel %.3fs at %d workers -> %.2fx\n%s",
              serial_total, parallel_total, jobs, speedup,
              reporter.WorkerTable().c_str());
  std::printf("bit-identity: all %zu problems identical serial vs parallel.\n",
              cases.size());
  return reporter.Finish() ? 0 : 1;
}
