// Experiment E5: the monitor request-type/request-time conflict (Section 5.2).
//
// FCFS readers/writers needs BOTH one queue (for order) and per-type treatment (for
// concurrency). Monitors resolve it with two-stage queuing (tickets + re-checks);
// serializers dissolve it (one queue, per-type guards). This bench verifies both
// conform, compares their structural overhead, and measures the wall-clock cost.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "syneval/core/scorecard.h"
#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/explore.h"
#include "syneval/runtime/os_runtime.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/registry.h"
#include "syneval/solutions/csp_solutions.h"
#include "syneval/solutions/serializer_solutions.h"

namespace {

using namespace syneval;

template <typename Solution>
SweepOutcome ConformanceSweep(int seeds) {
  return SweepSchedules(seeds, [](std::uint64_t seed) -> std::string {
    DetRuntime rt(MakeRandomSchedule(seed));
    TraceRecorder trace;
    Solution rw(rt);
    RwWorkloadParams params;
    params.readers = 3;
    params.writers = 2;
    params.ops_per_reader = 4;
    params.ops_per_writer = 3;
    ThreadList threads = SpawnReadersWritersWorkload(rt, rw, trace, params);
    const DetRuntime::RunResult result = rt.Run();
    if (!result.completed) {
      return "runtime: " + result.report;
    }
    return CheckReadersWriters(trace.Events(), RwPolicy::kFcfs);
  });
}

template <typename Solution>
double MeasureOpsPerSecond(int total_ops) {
  OsRuntime rt;
  Solution rw(rt);
  RwWorkloadParams params;
  params.readers = 3;
  params.writers = 2;
  params.ops_per_reader = total_ops;
  params.ops_per_writer = total_ops;
  params.read_work = 0;
  params.write_work = 0;
  params.think_work = 0;
  TraceRecorder trace;
  const auto start = std::chrono::steady_clock::now();
  ThreadList threads = SpawnReadersWritersWorkload(rt, rw, trace, params);
  JoinAll(threads);
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start).count();
  const double ops = static_cast<double>(params.readers) * params.ops_per_reader +
                     static_cast<double>(params.writers) * params.ops_per_writer;
  return ops / seconds;
}

}  // namespace

int main() {
  using namespace syneval;
  std::printf("=== E5: FCFS readers/writers — two-stage queuing vs one guarded queue ===\n\n");

  const int seeds = 60;
  std::printf("Conformance (strict FCFS oracle, %d schedules):\n", seeds);
  std::printf("  monitor (two-stage):      %s\n",
              ConformanceSweep<MonitorRwFcfs>(seeds).Summary().c_str());
  std::printf("  serializer (one queue):   %s\n\n",
              ConformanceSweep<SerializerRwFcfs>(seeds).Summary().c_str());
  std::printf("(For the message-passing resolution — channel order IS arrival order —\n"
              " see the csp-channels fcfs rows in bench/table_conformance.)\n\n");

  std::printf("Structural cost of resolving the type/time conflict:\n");
  const auto monitor = FindSolution(Mechanism::kMonitor, "rw-fcfs");
  const auto serializer = FindSolution(Mechanism::kSerializer, "rw-fcfs");
  std::vector<std::string> header = {"mechanism", "hand-kept vars", "notes"};
  std::vector<std::vector<std::string>> rows;
  if (monitor) {
    rows.push_back({"monitor", std::to_string(monitor->shared_variables), monitor->notes});
  }
  if (serializer) {
    rows.push_back(
        {"serializer", std::to_string(serializer->shared_variables), serializer->notes});
  }
  std::printf("%s\n", RenderTable(header, rows).c_str());

  const int ops = 4000;
  std::printf("Throughput under OsRuntime (%d ops/thread, empty bodies):\n", ops);
  std::printf("  monitor (two-stage):      %10.0f ops/s\n",
              MeasureOpsPerSecond<MonitorRwFcfs>(ops));
  std::printf("  serializer (one queue):   %10.0f ops/s\n",
              MeasureOpsPerSecond<SerializerRwFcfs>(ops));
  std::printf("\nExpected shape: both conform; the serializer needs no hand-kept state\n"
              "(the paper's Section 5.2 point) but pays per-release guard evaluation.\n");
  return 0;
}
