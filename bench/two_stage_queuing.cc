// Experiment E5: the monitor request-type/request-time conflict (Section 5.2).
//
// FCFS readers/writers needs BOTH one queue (for order) and per-type treatment (for
// concurrency). Monitors resolve it with two-stage queuing (tickets + re-checks);
// serializers dissolve it (one queue, per-type guards). This bench verifies both
// conform, compares their structural overhead, and measures the wall-clock cost.

#include <cstdio>
#include <memory>
#include <string>

#include "bench/harness.h"
#include "syneval/core/scorecard.h"
#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/explore.h"
#include "syneval/runtime/os_runtime.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/registry.h"
#include "syneval/solutions/csp_solutions.h"
#include "syneval/solutions/serializer_solutions.h"

namespace {

using namespace syneval;

template <typename Solution>
SweepOutcome ConformanceSweep(int seeds) {
  return SweepSchedules(seeds, [](std::uint64_t seed) -> std::string {
    DetRuntime rt(MakeRandomSchedule(seed));
    TraceRecorder trace;
    Solution rw(rt);
    RwWorkloadParams params;
    params.readers = 3;
    params.writers = 2;
    params.ops_per_reader = 4;
    params.ops_per_writer = 3;
    ThreadList threads = SpawnReadersWritersWorkload(rt, rw, trace, params);
    const DetRuntime::RunResult result = rt.Run();
    if (!result.completed) {
      return "runtime: " + result.report;
    }
    return CheckReadersWriters(trace.Events(), RwPolicy::kFcfs);
  });
}

template <typename Solution>
double MeasureOpsPerSecond(const bench::Options& options, int total_ops) {
  const double ops = 3.0 * total_ops + 2.0 * total_ops;
  const bench::RepeatStats stats = bench::Repeat(options, [&] {
    OsRuntime rt;
    Solution rw(rt);
    RwWorkloadParams params;
    params.readers = 3;
    params.writers = 2;
    params.ops_per_reader = total_ops;
    params.ops_per_writer = total_ops;
    params.read_work = 0;
    params.write_work = 0;
    params.think_work = 0;
    TraceRecorder trace;
    bench::Stopwatch watch;
    ThreadList threads = SpawnReadersWritersWorkload(rt, rw, trace, params);
    JoinAll(threads);
    return watch.Seconds();
  });
  return ops / stats.median_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace syneval;
  const bench::Options options = bench::ParseArgs(argc, argv, "two_stage_queuing");
  bench::Reporter reporter(options);
  std::printf("=== E5: FCFS readers/writers — two-stage queuing vs one guarded queue ===\n\n");

  const int seeds = 60;
  std::printf("Conformance (strict FCFS oracle, %d schedules):\n", seeds);
  std::printf("  monitor (two-stage):      %s\n",
              ConformanceSweep<MonitorRwFcfs>(seeds).Summary().c_str());
  std::printf("  serializer (one queue):   %s\n\n",
              ConformanceSweep<SerializerRwFcfs>(seeds).Summary().c_str());
  std::printf("(For the message-passing resolution — channel order IS arrival order —\n"
              " see the csp-channels fcfs rows in bench/table_conformance.)\n\n");

  std::printf("Structural cost of resolving the type/time conflict:\n");
  const auto monitor = FindSolution(Mechanism::kMonitor, "rw-fcfs");
  const auto serializer = FindSolution(Mechanism::kSerializer, "rw-fcfs");
  std::vector<std::string> header = {"mechanism", "hand-kept vars", "notes"};
  std::vector<std::vector<std::string>> rows;
  if (monitor) {
    rows.push_back({"monitor", std::to_string(monitor->shared_variables), monitor->notes});
  }
  if (serializer) {
    rows.push_back(
        {"serializer", std::to_string(serializer->shared_variables), serializer->notes});
  }
  std::printf("%s\n", RenderTable(header, rows).c_str());

  const int ops = 4000;
  std::printf("Throughput under OsRuntime (%d ops/thread, empty bodies):\n", ops);
  const double monitor_ops = MeasureOpsPerSecond<MonitorRwFcfs>(options, ops);
  const double serializer_ops = MeasureOpsPerSecond<SerializerRwFcfs>(options, ops);
  std::printf("  monitor (two-stage):      %10.0f ops/s\n", monitor_ops);
  std::printf("  serializer (one queue):   %10.0f ops/s\n", serializer_ops);
  reporter.Add("monitor", "rw_fcfs", "throughput", monitor_ops, "ops/s");
  reporter.Add("serializer", "rw_fcfs", "throughput", serializer_ops, "ops/s");
  std::printf("\nExpected shape: both conform; the serializer needs no hand-kept state\n"
              "(the paper's Section 5.2 point) but pays per-release guard evaluation.\n");
  return reporter.Finish() ? 0 : 1;
}
