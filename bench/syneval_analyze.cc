// syneval_analyze: run the static analysis passes over the whole solution registry.
//
// Output: a per-solution verdict table (model-checker verdicts for path-expression
// solutions, wait-predicate lint results for monitor/CCR solutions), plus two
// self-validation demonstrations required before any verdict is trusted:
//
//   1. the CH74 bounded-buffer path expression is *proved* deadlock-free (exhaustive
//      enumeration of its counter-state space), and
//   2. a deliberately-broken crossed-gates path program yields a minimal deadlock
//      counterexample word which is replayed under DetRuntime and confirmed as a real
//      wait-for cycle by the anomaly detector.
//
// Exit status is nonzero if either demonstration fails, so CI catches a checker
// regression even before comparing verdicts against the golden file. With --json the
// verdicts are written in the standard bench schema; the blocking `static-verdicts`
// CI job diffs that JSON against tests/golden/static_verdicts.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "syneval/analysis/catalog.h"
#include "syneval/analysis/model_checker.h"
#include "syneval/analysis/replay.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/solutions/registry.h"

namespace {

using syneval::AnalyzeRegistry;
using syneval::BrokenCrossedGatesModel;
using syneval::CheckPathModel;
using syneval::LintFinding;
using syneval::LintSeverity;
using syneval::MechanismName;
using syneval::ModelCheckResult;
using syneval::PathModel;
using syneval::ReplayCounterexample;
using syneval::ReplayResult;
using syneval::SafetyVerdict;
using syneval::SolutionVerdict;

// Seeds for the counterexample replay sweep (self-validation 2). Small: each seed is
// a full DetRuntime replay, and all of them must deadlock identically.
constexpr int kReplaySweepSeeds = 8;

int CountSeverity(const std::vector<LintFinding>& findings, LintSeverity severity) {
  int count = 0;
  for (const LintFinding& finding : findings) {
    count += finding.severity == severity ? 1 : 0;
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  const syneval::bench::Options options =
      syneval::bench::ParseArgs(argc, argv, "syneval_analyze");
  syneval::bench::Reporter reporter(options);

  // ---- Per-solution verdicts ---------------------------------------------------------
  const std::vector<SolutionVerdict> verdicts = AnalyzeRegistry();
  std::printf("Static analysis over the solution registry (%zu solutions modelled):\n\n",
              verdicts.size());
  std::printf("  %-18s %-22s %-52s %s\n", "mechanism", "problem", "solution", "verdict");
  for (const SolutionVerdict& verdict : verdicts) {
    std::printf("  %-18s %-22s %-52s %s\n", MechanismName(verdict.mechanism),
                verdict.problem.c_str(), verdict.display_name.c_str(),
                verdict.VerdictString().c_str());
    // Row identity: several solutions can share (mechanism, problem) — e.g. Figure 1
    // and the predicate paths are both rw-readers-priority — so the display name is
    // folded into the metric to keep JSON rows unique.
    const std::string suffix = "/" + verdict.display_name;
    reporter.Add(MechanismName(verdict.mechanism), verdict.problem,
                 "static_safe" + suffix, verdict.statically_safe ? 1 : 0, "bool");
    if (verdict.is_path) {
      reporter.Add(MechanismName(verdict.mechanism), verdict.problem,
                   "static_deadlock_free" + suffix,
                   verdict.model.safety == SafetyVerdict::kDeadlockFree ? 1 : 0, "bool");
      reporter.Add(MechanismName(verdict.mechanism), verdict.problem,
                   "static_starvable_ops" + suffix,
                   static_cast<double>(verdict.model.starvable_ops.size()), "count");
      reporter.Add(MechanismName(verdict.mechanism), verdict.problem,
                   "static_unreachable_ops" + suffix,
                   static_cast<double>(verdict.model.unreachable_ops.size()), "count");
    } else {
      reporter.Add(MechanismName(verdict.mechanism), verdict.problem,
                   "lint_errors" + suffix,
                   CountSeverity(verdict.findings, LintSeverity::kError), "count");
      reporter.Add(MechanismName(verdict.mechanism), verdict.problem,
                   "lint_warnings" + suffix,
                   CountSeverity(verdict.findings, LintSeverity::kWarning), "count");
      reporter.Add(MechanismName(verdict.mechanism), verdict.problem,
                   "lint_notes" + suffix,
                   CountSeverity(verdict.findings, LintSeverity::kNote), "count");
    }
  }
  reporter.Add("all", "", "solutions_modelled", static_cast<double>(verdicts.size()),
               "count");
  reporter.Add("all", "", "solutions_registered",
               static_cast<double>(syneval::AllSolutionInfos().size()), "count");

  // ---- Self-validation 1: the bounded buffer is proved deadlock-free -----------------
  bool ok = true;
  {
    PathModel model{"CH74 bounded buffer path", syneval::PathBoundedBuffer::Program(3),
                    {}};
    const ModelCheckResult result = CheckPathModel(model);
    const bool proven = result.safety == SafetyVerdict::kDeadlockFree &&
                        result.starvable_ops.empty() && result.unreachable_ops.empty();
    std::printf("\nbounded-buffer proof: %s\n", result.Summary().c_str());
    reporter.Add("path-expression", "bounded-buffer", "selfcheck_proved_safe",
                 proven ? 1 : 0, "bool");
    ok = ok && proven;
  }

  // ---- Self-validation 2: broken program -> counterexample -> replayed deadlock ------
  {
    const PathModel broken = BrokenCrossedGatesModel();
    const ModelCheckResult result = CheckPathModel(broken);
    std::printf("crossed-gates check:  %s\n", result.Summary().c_str());
    const bool found = result.safety == SafetyVerdict::kDeadlockable;
    bool replayed = false;
    int detector_deadlocks = 0;
    int sweep_runs = 0;
    int sweep_passes = 0;
    if (found) {
      const ReplayResult replay = ReplayCounterexample(broken, result.counterexample);
      replayed = replay.deadlocked;
      detector_deadlocks = replay.anomalies.deadlocks;
      std::printf("counterexample replay: %s; detector: %s\n",
                  replay.deadlocked ? "deadlocked under DetRuntime" : "DID NOT deadlock",
                  replay.anomaly_report.empty() ? "(no anomalies)"
                                                : replay.anomaly_report.c_str());
      // Sweep the replay across schedule seeds, sharded over --jobs workers. Every
      // seed must reproduce the deadlock AND be named by the detector; the counts are
      // deterministic (bit-identical merge), so the rows are golden-file safe.
      const syneval::SweepOutcome sweep = syneval::ReplayCounterexampleSweep(
          broken, result.counterexample, kReplaySweepSeeds, /*base_seed=*/1,
          options.Parallel());
      sweep_runs = sweep.runs;
      sweep_passes = sweep.passes;
      std::printf("counterexample replay sweep: %d/%d seeds deadlocked with a named "
                  "cycle%s%s\n",
                  sweep.passes, sweep.runs, sweep.first_failure.empty() ? "" : "; first: ",
                  sweep.first_failure.c_str());
    }
    reporter.Add("path-expression", "crossed-gates", "selfcheck_counterexample_found",
                 found ? 1 : 0, "bool");
    reporter.Add("path-expression", "crossed-gates", "selfcheck_replay_deadlocked",
                 replayed ? 1 : 0, "bool");
    reporter.Add("path-expression", "crossed-gates", "selfcheck_detector_deadlocks",
                 detector_deadlocks, "count");
    reporter.Add("path-expression", "crossed-gates", "selfcheck_replay_sweep_runs",
                 sweep_runs, "schedules");
    reporter.Add("path-expression", "crossed-gates", "selfcheck_replay_sweep_passes",
                 sweep_passes, "schedules");
    ok = ok && found && replayed && detector_deadlocks >= 1 &&
         sweep_runs == kReplaySweepSeeds && sweep_passes == sweep_runs;
  }

  if (!reporter.Finish()) {
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr, "syneval_analyze: self-validation FAILED\n");
    return 1;
  }
  std::printf("\nself-validation passed.\n");
  return 0;
}
