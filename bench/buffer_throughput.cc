// Experiment E10a: bounded-buffer and one-slot-buffer throughput per mechanism under
// real threads. Validates the oracle on every measured run (a throughput number from a
// broken buffer would be meaningless), then prints items/second.
//
// Timing/repeats/JSON output come from the shared harness (bench/harness.h); pass
// --json=<path> for machine-readable results, --repeats/--warmup to control sampling.

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "syneval/core/scorecard.h"
#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/os_runtime.h"
#include "syneval/telemetry/perfetto.h"
#include "syneval/telemetry/tracer.h"
#include "syneval/solutions/ccr_solutions.h"
#include "syneval/solutions/csp_solutions.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/solutions/semaphore_solutions.h"
#include "syneval/solutions/serializer_solutions.h"

namespace {

using namespace syneval;

struct Measured {
  double items_per_second = 0;
  std::string oracle;
};

// One repetition: returns elapsed seconds, records the oracle verdict (any repetition
// failing the oracle poisons the reported verdict — a fast broken buffer is worthless).
template <typename Buffer>
double RunBounded(int capacity, int producers, int consumers, int items,
                  std::string* oracle) {
  OsRuntime rt;
  TraceRecorder trace;
  Buffer buffer(rt, capacity);
  BufferWorkloadParams params;
  params.producers = producers;
  params.consumers = consumers;
  params.items_per_producer = items;
  params.work = 0;
  bench::Stopwatch watch;
  ThreadList threads = SpawnBoundedBufferWorkload(rt, buffer, trace, params);
  JoinAll(threads);
  const double seconds = watch.Seconds();
  const std::string verdict = CheckBoundedBuffer(trace.Events(), capacity);
  if (!verdict.empty()) {
    *oracle = verdict;
  }
  return seconds;
}

template <typename Buffer>
double RunOneSlot(int producers, int consumers, int items, std::string* oracle) {
  OsRuntime rt;
  TraceRecorder trace;
  Buffer buffer(rt);
  BufferWorkloadParams params;
  params.producers = producers;
  params.consumers = consumers;
  params.items_per_producer = items;
  params.work = 0;
  bench::Stopwatch watch;
  ThreadList threads = SpawnOneSlotBufferWorkload(rt, buffer, trace, params);
  JoinAll(threads);
  const double seconds = watch.Seconds();
  const std::string verdict = CheckOneSlotBuffer(trace.Events());
  if (!verdict.empty()) {
    *oracle = verdict;
  }
  return seconds;
}

template <typename Buffer>
Measured MeasureBounded(const bench::Options& options, int capacity, int producers,
                        int consumers, int items) {
  Measured measured;
  const bench::RepeatStats stats = bench::Repeat(options, [&] {
    return RunBounded<Buffer>(capacity, producers, consumers, items, &measured.oracle);
  });
  measured.items_per_second =
      static_cast<double>(producers) * items / stats.median_seconds;
  return measured;
}

template <typename Buffer>
Measured MeasureOneSlot(const bench::Options& options, int producers, int consumers,
                        int items) {
  Measured measured;
  const bench::RepeatStats stats = bench::Repeat(options, [&] {
    return RunOneSlot<Buffer>(producers, consumers, items, &measured.oracle);
  });
  measured.items_per_second =
      static_cast<double>(producers) * items / stats.median_seconds;
  return measured;
}

std::vector<std::string> Row(const char* name, const Measured& measured) {
  char rate[32];
  std::snprintf(rate, sizeof rate, "%.0f", measured.items_per_second);
  return {name, rate, measured.oracle.empty() ? "ok" : measured.oracle};
}

void Report(bench::Reporter& reporter, const char* mechanism, const char* problem,
            const Measured& measured) {
  reporter.Add(mechanism, problem, "throughput", measured.items_per_second, "items/s");
  reporter.Add(mechanism, problem, "oracle_ok", measured.oracle.empty() ? 1 : 0, "bool");
}

// --trace=<path>: one extra (untimed) monitor bounded-buffer pass with the tracer
// attached, exported as Chrome trace_event JSON for ui.perfetto.dev. Kept out of the
// measured runs — tracer recording takes a mutex.
void ExportSampleTrace(const std::string& path) {
  OsRuntime rt;
  TelemetryTracer tracer;
  rt.AttachTracer(&tracer);
  TraceRecorder trace;
  MonitorBoundedBuffer buffer(rt, 8);
  BufferWorkloadParams params;
  params.producers = 2;
  params.consumers = 2;
  params.items_per_producer = 200;
  params.work = 0;
  ThreadList threads = SpawnBoundedBufferWorkload(rt, buffer, trace, params);
  JoinAll(threads);
  ChromeTraceOptions trace_options;
  trace_options.process_name = "buffer_throughput";
  if (WriteChromeTrace(path, trace.Events(), &tracer, trace_options)) {
    std::printf("wrote Perfetto trace to %s (load at ui.perfetto.dev)\n", path.c_str());
  } else {
    std::printf("failed to write Perfetto trace to %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::ParseArgs(argc, argv, "buffer_throughput");
  bench::Reporter reporter(options);
  std::printf("=== E10a: buffer throughput per mechanism (OsRuntime, oracle-checked) ===\n\n");
  const int items = 4000;

  std::printf("Bounded buffer (capacity 8, 2 producers + 2 consumers, %d items each):\n",
              items);
  std::vector<std::string> header = {"mechanism", "items/s", "oracle"};
  std::vector<std::vector<std::string>> rows;
  {
    const char* problem = "bounded_buffer";
    Measured m;
    m = MeasureBounded<SemaphoreBoundedBuffer>(options, 8, 2, 2, items);
    rows.push_back(Row("semaphore", m));
    Report(reporter, "semaphore", problem, m);
    m = MeasureBounded<MonitorBoundedBuffer>(options, 8, 2, 2, items);
    rows.push_back(Row("monitor", m));
    Report(reporter, "monitor", problem, m);
    m = MeasureBounded<PathBoundedBuffer>(options, 8, 2, 2, items);
    rows.push_back(Row("path expression", m));
    Report(reporter, "path_expression", problem, m);
    m = MeasureBounded<SerializerBoundedBuffer>(options, 8, 2, 2, items);
    rows.push_back(Row("serializer", m));
    Report(reporter, "serializer", problem, m);
    m = MeasureBounded<CcrBoundedBuffer>(options, 8, 2, 2, items);
    rows.push_back(Row("cond region", m));
    Report(reporter, "cond_region", problem, m);
    m = MeasureBounded<CspBoundedBuffer>(options, 8, 2, 2, items);
    rows.push_back(Row("csp channels", m));
    Report(reporter, "csp_channels", problem, m);
  }
  std::printf("%s\n", syneval::RenderTable(header, rows).c_str());

  std::printf("One-slot buffer (1 producer + 1 consumer, %d items):\n", items);
  rows.clear();
  {
    const char* problem = "one_slot_buffer";
    Measured m;
    m = MeasureOneSlot<SemaphoreOneSlotBuffer>(options, 1, 1, items);
    rows.push_back(Row("semaphore", m));
    Report(reporter, "semaphore", problem, m);
    m = MeasureOneSlot<MonitorOneSlotBuffer>(options, 1, 1, items);
    rows.push_back(Row("monitor", m));
    Report(reporter, "monitor", problem, m);
    m = MeasureOneSlot<PathOneSlotBuffer>(options, 1, 1, items);
    rows.push_back(Row("path expression", m));
    Report(reporter, "path_expression", problem, m);
    m = MeasureOneSlot<SerializerOneSlotBuffer>(options, 1, 1, items);
    rows.push_back(Row("serializer", m));
    Report(reporter, "serializer", problem, m);
    m = MeasureOneSlot<CcrOneSlotBuffer>(options, 1, 1, items);
    rows.push_back(Row("cond region", m));
    Report(reporter, "cond_region", problem, m);
    m = MeasureOneSlot<CspOneSlotBuffer>(options, 1, 1, items);
    rows.push_back(Row("csp channels", m));
    Report(reporter, "csp_channels", problem, m);
  }
  std::printf("%s\n", syneval::RenderTable(header, rows).c_str());

  std::printf("Expected shape: the semaphore baseline is fastest, the higher-level\n"
              "mechanisms trade throughput for structure (Section 5.2's cost remark).\n");
  if (!options.trace_path.empty()) {
    ExportSampleTrace(options.trace_path);
  }
  return reporter.Finish() ? 0 : 1;
}
