// Experiment E10a: bounded-buffer and one-slot-buffer throughput per mechanism under
// real threads. Validates the oracle on every measured run (a throughput number from a
// broken buffer would be meaningless), then prints items/second.

#include <chrono>
#include <cstdio>
#include <string>

#include "syneval/core/scorecard.h"
#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/os_runtime.h"
#include "syneval/solutions/ccr_solutions.h"
#include "syneval/solutions/csp_solutions.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/solutions/semaphore_solutions.h"
#include "syneval/solutions/serializer_solutions.h"

namespace {

using namespace syneval;

struct Measured {
  double items_per_second = 0;
  std::string oracle;
};

template <typename Buffer>
Measured MeasureBounded(int capacity, int producers, int consumers, int items) {
  OsRuntime rt;
  TraceRecorder trace;
  Buffer buffer(rt, capacity);
  BufferWorkloadParams params;
  params.producers = producers;
  params.consumers = consumers;
  params.items_per_producer = items;
  params.work = 0;
  const auto start = std::chrono::steady_clock::now();
  ThreadList threads = SpawnBoundedBufferWorkload(rt, buffer, trace, params);
  JoinAll(threads);
  const auto end = std::chrono::steady_clock::now();
  Measured measured;
  measured.items_per_second = static_cast<double>(producers) * items /
                              std::chrono::duration<double>(end - start).count();
  measured.oracle = CheckBoundedBuffer(trace.Events(), capacity);
  return measured;
}

template <typename Buffer>
Measured MeasureOneSlot(int producers, int consumers, int items) {
  OsRuntime rt;
  TraceRecorder trace;
  Buffer buffer(rt);
  BufferWorkloadParams params;
  params.producers = producers;
  params.consumers = consumers;
  params.items_per_producer = items;
  params.work = 0;
  const auto start = std::chrono::steady_clock::now();
  ThreadList threads = SpawnOneSlotBufferWorkload(rt, buffer, trace, params);
  JoinAll(threads);
  const auto end = std::chrono::steady_clock::now();
  Measured measured;
  measured.items_per_second = static_cast<double>(producers) * items /
                              std::chrono::duration<double>(end - start).count();
  measured.oracle = CheckOneSlotBuffer(trace.Events());
  return measured;
}

std::vector<std::string> Row(const char* name, const Measured& measured) {
  char rate[32];
  std::snprintf(rate, sizeof rate, "%.0f", measured.items_per_second);
  return {name, rate, measured.oracle.empty() ? "ok" : measured.oracle};
}

}  // namespace

int main() {
  std::printf("=== E10a: buffer throughput per mechanism (OsRuntime, oracle-checked) ===\n\n");
  const int items = 4000;

  std::printf("Bounded buffer (capacity 8, 2 producers + 2 consumers, %d items each):\n",
              items);
  std::vector<std::string> header = {"mechanism", "items/s", "oracle"};
  std::vector<std::vector<std::string>> rows;
  rows.push_back(Row("semaphore", MeasureBounded<SemaphoreBoundedBuffer>(8, 2, 2, items)));
  rows.push_back(Row("monitor", MeasureBounded<MonitorBoundedBuffer>(8, 2, 2, items)));
  rows.push_back(Row("path expression", MeasureBounded<PathBoundedBuffer>(8, 2, 2, items)));
  rows.push_back(Row("serializer", MeasureBounded<SerializerBoundedBuffer>(8, 2, 2, items)));
  rows.push_back(Row("cond region", MeasureBounded<CcrBoundedBuffer>(8, 2, 2, items)));
  rows.push_back(Row("csp channels", MeasureBounded<CspBoundedBuffer>(8, 2, 2, items)));
  std::printf("%s\n", syneval::RenderTable(header, rows).c_str());

  std::printf("One-slot buffer (1 producer + 1 consumer, %d items):\n", items);
  rows.clear();
  rows.push_back(Row("semaphore", MeasureOneSlot<SemaphoreOneSlotBuffer>(1, 1, items)));
  rows.push_back(Row("monitor", MeasureOneSlot<MonitorOneSlotBuffer>(1, 1, items)));
  rows.push_back(Row("path expression", MeasureOneSlot<PathOneSlotBuffer>(1, 1, items)));
  rows.push_back(Row("serializer", MeasureOneSlot<SerializerOneSlotBuffer>(1, 1, items)));
  rows.push_back(Row("cond region", MeasureOneSlot<CcrOneSlotBuffer>(1, 1, items)));
  rows.push_back(Row("csp channels", MeasureOneSlot<CspOneSlotBuffer>(1, 1, items)));
  std::printf("%s\n", syneval::RenderTable(header, rows).c_str());

  std::printf("Expected shape: the semaphore baseline is fastest, the higher-level\n"
              "mechanisms trade throughput for structure (Section 5.2's cost remark).\n");
  return 0;
}
