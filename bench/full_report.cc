// Generates the complete markdown evaluation report (all of Sections 2-5 of the
// methodology) into evaluation_report.md next to the binary, and echoes the verdict.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "syneval/core/report.h"

int main() {
  std::ostringstream buffer;
  syneval::ReportOptions options;
  options.conformance_seeds = 15;
  syneval::WriteEvaluationReport(buffer, options);
  const std::string report = buffer.str();

  std::ofstream file("evaluation_report.md");
  file << report;
  file.close();

  // Echo the tail — the fault-injection calibration table, the registry-sourced
  // contention telemetry table, and the verdict — so the bench sweep shows the outcome.
  std::size_t tail = report.rfind("## 7. Fault-injection calibration");
  if (tail == std::string::npos) {
    tail = report.rfind("## Verdict");
  }
  std::printf("=== Full evaluation report written to evaluation_report.md (%zu bytes) ===\n\n",
              report.size());
  if (tail != std::string::npos) {
    std::printf("%s\n", report.substr(tail).c_str());
  }
  return 0;
}
