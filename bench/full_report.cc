// Generates the complete markdown evaluation report (all of Sections 2-5 of the
// methodology) into evaluation_report.md next to the binary, and echoes the verdict.
//
// --seeds sets the conformance schedules per case (default 15; the nightly deep-sweep
// CI job runs 150) and --jobs shards every sweep inside the report across the
// work-stealing pool — the report text is bit-identical at any worker count.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "bench/harness.h"
#include "syneval/core/report.h"
#include "syneval/runtime/checkpoint.h"

int main(int argc, char** argv) {
  syneval::bench::Options options =
      syneval::bench::ParseArgs(argc, argv, "full_report");
  syneval::bench::Reporter reporter(options);

  syneval::ReportOptions report_options;
  report_options.conformance_seeds = options.SeedsOr(15);
  report_options.parallel = options.Parallel();
  // --resume: the report's conformance and chaos sweeps checkpoint their chunks (the
  // suite functions scope keys per case/row); a killed run picks up where it left off
  // and the report text stays bit-identical. The DPOR section opts itself out.
  const std::unique_ptr<syneval::CheckpointStore> store =
      syneval::bench::MakeCheckpointStore(options);
  if (store != nullptr) {
    report_options.parallel.checkpoint = store.get();
    report_options.parallel.checkpoint_scope = options.bench;
  }

  std::ostringstream buffer;
  const double wall_seconds = syneval::bench::TimeSeconds(
      [&] { syneval::WriteEvaluationReport(buffer, report_options); });
  const std::string report = buffer.str();

  std::ofstream file("evaluation_report.md");
  file << report;
  file.close();

  reporter.Add("all", "", "report_bytes", static_cast<double>(report.size()), "bytes");
  reporter.Add("all", "", "conformance_seeds", report_options.conformance_seeds,
               "schedules");
  reporter.SetSweepInfo(syneval::ResolveJobs(report_options.parallel.jobs),
                        wall_seconds);

  // Echo the tail — the fault-injection calibration table, the registry-sourced
  // contention telemetry table, and the verdict — so the bench sweep shows the outcome.
  std::size_t tail = report.rfind("## 7. Fault-injection calibration");
  if (tail == std::string::npos) {
    tail = report.rfind("## Verdict");
  }
  std::printf("=== Full evaluation report written to evaluation_report.md (%zu bytes) ===\n\n",
              report.size());
  if (tail != std::string::npos) {
    std::printf("%s\n", report.substr(tail).c_str());
  }
  if (store != nullptr) {
    std::printf("resume: %d chunk(s) restored, %d now checkpointed in %s\n",
                store->hits(), store->size(), store->path().c_str());
  }
  std::printf("report generated in %.3fs (conformance seeds per case: %d)\n",
              wall_seconds, report_options.conformance_seeds);
  return reporter.Finish() ? 0 : 1;
}
