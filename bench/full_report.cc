// Generates the complete markdown evaluation report (all of Sections 2-5 of the
// methodology) into evaluation_report.md next to the binary, and echoes the verdict.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "syneval/core/report.h"

int main() {
  std::ostringstream buffer;
  syneval::ReportOptions options;
  options.conformance_seeds = 15;
  syneval::WriteEvaluationReport(buffer, options);
  const std::string report = buffer.str();

  std::ofstream file("evaluation_report.md");
  file << report;
  file.close();

  // Echo the tail (the verdict) so the bench sweep shows the outcome.
  const std::size_t verdict = report.rfind("## Verdict");
  std::printf("=== Full evaluation report written to evaluation_report.md (%zu bytes) ===\n\n",
              report.size());
  if (verdict != std::string::npos) {
    std::printf("%s\n", report.substr(verdict).c_str());
  }
  return 0;
}
