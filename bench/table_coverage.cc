// Experiment E8: problem-set coverage and minimal test sets (paper Section 3 and
// footnote 2). Shows that the paper's six-problem set covers all six information
// categories, computes its redundancy, and enumerates all minimum covering subsets.

#include <cstdio>

#include "syneval/core/scorecard.h"

int main() {
  std::printf("=== E8: Test-set coverage and minimality (Bloom 1979, Section 3) ===\n\n");
  std::printf("%s\n", syneval::RenderCoverageReport().c_str());
  return 0;
}
