// Experiment E1: Figure 1 and footnote 3.
//
// (a) Reproduces the footnote-3 anomaly deterministically (directed scenario) and shows
//     the violating trace once.
// (b) Estimates the anomaly's probability under undirected random workloads, for
//     Figure 1 and for the corrected solutions (monitor, serializer, predicate paths) —
//     the corrected solutions must be clean on every explored schedule.
// (c) Ablation (DESIGN.md decision 1): random vs PCT schedule search on the undirected
//     workload.

#include <cstdio>
#include <memory>
#include <string>

#include "syneval/core/conformance.h"
#include "syneval/core/scorecard.h"
#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/explore.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/solutions/serializer_solutions.h"

namespace {

using namespace syneval;

RwWorkloadParams UndirectedWorkload() {
  RwWorkloadParams params;
  params.readers = 2;
  params.writers = 3;
  params.ops_per_reader = 5;
  params.ops_per_writer = 4;
  params.write_work = 5;
  params.read_work = 1;
  params.think_work = 3;
  return params;
}

template <typename Solution>
SweepOutcome SweepWith(int seeds, bool use_pct) {
  return SweepSchedules(seeds, [use_pct](std::uint64_t seed) -> std::string {
    std::unique_ptr<Schedule> schedule;
    if (use_pct) {
      schedule = std::make_unique<PctSchedule>(seed, /*change_points=*/8,
                                               /*max_steps=*/4000);
    } else {
      schedule = std::make_unique<RandomSchedule>(seed);
    }
    DetRuntime rt(std::move(schedule));
    TraceRecorder trace;
    Solution rw(rt);
    ThreadList threads = SpawnReadersWritersWorkload(rt, rw, trace, UndirectedWorkload());
    const DetRuntime::RunResult result = rt.Run();
    if (!result.completed) {
      return "runtime: " + result.report;
    }
    return CheckReadersWriters(trace.Events(), RwPolicy::kReadersPriority);
  });
}

}  // namespace

int main() {
  using namespace syneval;
  std::printf("=== E1: Figure 1 readers-priority anomaly (footnote 3) ===\n\n");

  std::printf("(a) Directed reproduction (deterministic under every schedule seed):\n");
  const std::string violation = RunFigure1AnomalyScenario(1);
  std::printf("    %s\n\n", violation.empty() ? "NO VIOLATION (unexpected!)"
                                              : violation.c_str());

  const int seeds = 120;
  std::printf("(b) Undirected anomaly probability over %d random schedules:\n", seeds);
  std::vector<std::string> header = {"solution", "violations", "rate"};
  std::vector<std::vector<std::string>> rows;
  auto add_row = [&](const char* name, const SweepOutcome& outcome) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%d/%d", outcome.failures, outcome.runs);
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.3f", outcome.FailureRate());
    rows.push_back({name, buffer, rate});
  };
  add_row("Figure 1 (CH74 paths)", SweepWith<PathExprRwFigure1>(seeds, false));
  add_row("monitor", SweepWith<MonitorRwReadersPriority>(seeds, false));
  add_row("serializer", SweepWith<SerializerRwReadersPriority>(seeds, false));
  add_row("predicate paths", SweepWith<PathExprRwPredicates>(seeds, false));
  std::printf("%s\n", RenderTable(header, rows).c_str());

  std::printf("(c) Schedule-search ablation on Figure 1 (%d seeds each):\n", seeds);
  rows.clear();
  add_row("random", SweepWith<PathExprRwFigure1>(seeds, false));
  add_row("pct(d=8)", SweepWith<PathExprRwFigure1>(seeds, true));
  std::printf("%s\n", RenderTable(header, rows).c_str());

  std::printf("Expected shape: Figure 1 violates on the directed scenario and on a\n"
              "nonzero fraction of undirected schedules; the corrected solutions are\n"
              "clean everywhere.\n");
  return 0;
}
