// Extension experiment: dining philosophers (Dijkstra 1968, the paper's reference [9]).
//
// (a) Deadlock probability of the naive fork protocol under schedule search, by table
//     size — the deterministic runtime names the cycle every time it finds one.
// (b) Conformance and wall-clock throughput of the deadlock-free solutions, including
//     the path-expression table where atomic prologues make hold-and-wait impossible.

#include <cstdio>
#include <memory>
#include <string>

#include "bench/harness.h"
#include "syneval/core/scorecard.h"
#include "syneval/problems/oracles.h"
#include "syneval/problems/workloads.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/runtime/explore.h"
#include "syneval/runtime/os_runtime.h"
#include "syneval/solutions/ccr_solutions.h"
#include "syneval/solutions/csp_solutions.h"
#include "syneval/solutions/dining_solutions.h"

namespace {

using namespace syneval;

template <typename Table>
SweepOutcome Sweep(int seats, int seeds) {
  return SweepSchedules(seeds, [seats](std::uint64_t seed) -> std::string {
    DetRuntime rt(MakeRandomSchedule(seed));
    TraceRecorder trace;
    Table table(rt, seats);
    DiningWorkloadParams params;
    params.meals_per_philosopher = 2;
    ThreadList threads = SpawnDiningWorkload(rt, table, trace, params);
    const DetRuntime::RunResult result = rt.Run();
    if (!result.completed) {
      return "runtime: " + result.report;
    }
    return CheckDiningPhilosophers(trace.Events(), seats);
  });
}

// CSP tables own a server process; the sweep adds a terminator thread that joins the
// philosophers and shuts the server down so the deterministic run can complete.
SweepOutcome SweepCspDining(int seats, int seeds) {
  return SweepSchedules(seeds, [seats](std::uint64_t seed) -> std::string {
    DetRuntime rt(MakeRandomSchedule(seed));
    TraceRecorder trace;
    CspDining table(rt, seats);
    DiningWorkloadParams params;
    params.meals_per_philosopher = 2;
    ThreadList threads = SpawnDiningWorkload(rt, table, trace, params);
    std::vector<RtThread*> clients;
    for (auto& thread : threads) {
      clients.push_back(thread.get());
    }
    ThreadList terminator;
    terminator.push_back(rt.StartThread("terminator", [&table, clients] {
      for (RtThread* client : clients) {
        client->Join();
      }
      table.Shutdown();
    }));
    const DetRuntime::RunResult result = rt.Run();
    if (!result.completed) {
      return "runtime: " + result.report;
    }
    return CheckDiningPhilosophers(trace.Events(), seats);
  });
}

template <typename Table>
double Throughput(const bench::Options& options, int seats, int meals) {
  const bench::RepeatStats stats = bench::Repeat(options, [&] {
    OsRuntime rt;
    TraceRecorder trace;
    Table table(rt, seats);
    DiningWorkloadParams params;
    params.meals_per_philosopher = meals;
    params.eat_work = 0;
    params.think_work = 0;
    bench::Stopwatch watch;
    ThreadList threads = SpawnDiningWorkload(rt, table, trace, params);
    JoinAll(threads);
    return watch.Seconds();
  });
  return static_cast<double>(seats) * meals / stats.median_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::ParseArgs(argc, argv, "dining_philosophers");
  bench::Reporter reporter(options);
  std::printf("=== Extension: dining philosophers across mechanisms ===\n\n");

  const int seeds = 60;
  std::printf("(a) Naive-fork deadlock probability over %d random schedules:\n", seeds);
  std::vector<std::string> header = {"seats", "deadlocks", "rate"};
  std::vector<std::vector<std::string>> rows;
  for (int seats : {2, 3, 5, 8}) {
    const SweepOutcome outcome = Sweep<SemaphoreDiningNaive>(seats, seeds);
    char cell[32];
    std::snprintf(cell, sizeof cell, "%d/%d", outcome.failures, outcome.runs);
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.2f", outcome.FailureRate());
    rows.push_back({std::to_string(seats), cell, rate});
    reporter.Add("semaphore_naive", "dining_seats_" + std::to_string(seats),
                 "deadlock_rate", outcome.FailureRate(), "ratio");
  }
  std::printf("%s\n", RenderTable(header, rows).c_str());

  std::printf("(b) Deadlock-free solutions, 5 seats, %d schedules + throughput:\n", seeds);
  header = {"solution", "conformance", "meals/s (OsRuntime)"};
  rows.clear();
  auto add = [&](const char* name, const char* id, const SweepOutcome& outcome,
                 double tput) {
    char cell[48];
    std::snprintf(cell, sizeof cell, "%d/%d clean", outcome.passes, outcome.runs);
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.0f", tput);
    rows.push_back({name, cell, rate});
    reporter.Add(id, "dining_philosophers", "throughput", tput, "meals/s");
    reporter.Add(id, "dining_philosophers", "conformance_pass_rate",
                 outcome.runs == 0 ? 0.0
                                   : static_cast<double>(outcome.passes) / outcome.runs,
                 "ratio");
  };
  add("ordered forks (semaphore)", "semaphore_ordered",
      Sweep<SemaphoreDiningOrdered>(5, seeds),
      Throughput<SemaphoreDiningOrdered>(options, 5, 2000));
  add("butler (semaphore)", "semaphore_butler", Sweep<SemaphoreDiningButler>(5, seeds),
      Throughput<SemaphoreDiningButler>(options, 5, 2000));
  add("state monitor", "monitor", Sweep<MonitorDining>(5, seeds),
      Throughput<MonitorDining>(options, 5, 2000));
  add("serializer guards", "serializer", Sweep<SerializerDining>(5, seeds),
      Throughput<SerializerDining>(options, 5, 2000));
  add("path per fork (atomic)", "path_expression", Sweep<PathDining>(5, seeds),
      Throughput<PathDining>(options, 5, 2000));
  add("region when neighbours idle", "cond_region", Sweep<CcrDining>(5, seeds),
      Throughput<CcrDining>(options, 5, 2000));
  add("CSP table server", "csp_channels", SweepCspDining(5, seeds),
      Throughput<CspDining>(options, 5, 2000));
  std::printf("%s\n", RenderTable(header, rows).c_str());

  std::printf("The path expression for a 5-seat table:\n  %s\n",
              PathDining::Program(5).c_str());
  std::printf("\nExpected shape: the naive protocol deadlocks on a growing fraction of\n"
              "schedules as the table shrinks (tighter cycles); every structured\n"
              "solution is clean everywhere; atomic path prologues need no ordering\n"
              "trick and no butler.\n");
  return reporter.Finish() ? 0 : 1;
}
