// syneval_postmortem: replay one (problem, mechanism, seed) trial and explain it.
//
// The sweeps (table_conformance, chaos_sweep) print which seeds went wrong; this tool
// re-runs a single such trial under the same DetRuntime schedule with the flight
// recorder and anomaly detector attached, then prints the reconstructed postmortem —
// the causal narrative (wait-for cycle with per-edge acquisition events, dropped
// signal and its victims, starving admission sequence) plus the tail of the event
// window. Deterministic: the same triple always yields the same narrative.
//
//   syneval_postmortem --problem=dining-philosophers --mechanism=semaphore --seed=7
//   syneval_postmortem --problem=bounded-buffer --mechanism=monitor
//       --fault=lost-signal --seed=3        # chaos replay with the injector attached
//   syneval_postmortem --demo=abba          # canned two-mutex AB-BA deadlock
//
// --json writes the schema-v3 "postmortem" entry (with the structured narrative under
// "detail"); --trace exports a Perfetto trace with the postmortem track overlaid.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>

#include "bench/harness.h"
#include "syneval/anomaly/detector.h"
#include "syneval/core/conformance.h"
#include "syneval/fault/chaos.h"
#include "syneval/runtime/det_runtime.h"
#include "syneval/telemetry/flight_recorder.h"
#include "syneval/telemetry/perfetto.h"
#include "syneval/telemetry/postmortem.h"
#include "syneval/telemetry/tracer.h"

namespace {

using namespace syneval;

void PrintExtraUsage() {
  std::fprintf(stderr,
               "syneval_postmortem flags (besides the harness flags):\n"
               "  --problem=<id>      canonical problem id (e.g. bounded-buffer)\n"
               "  --mechanism=<name>  mechanism name (semaphore, monitor, "
               "path-expression,\n"
               "                      serializer, cond-region, csp-channels)\n"
               "  --seed=<n>          schedule seed to replay (default 1)\n"
               "  --fault=<family>    replay the chaos cell with this fault family\n"
               "                      attached (lost-signal, stall); omit for a\n"
               "                      fault-free conformance replay\n"
               "  --case=<substr>     disambiguate when several solutions share a\n"
               "                      (problem, mechanism) cell: substring of the\n"
               "                      display name (e.g. 'Naive forks')\n"
               "  --demo=abba         canned two-mutex AB-BA deadlock demo\n");
}

std::optional<Mechanism> ParseMechanism(const std::string& name) {
  for (int i = 0; i < kNumMechanisms; ++i) {
    const Mechanism mechanism = static_cast<Mechanism>(i);
    if (name == MechanismName(mechanism)) {
      return mechanism;
    }
  }
  return std::nullopt;
}

// The canned deadlock: two DetRuntime threads acquire two mutexes in opposite orders,
// each waiting (via Yield) until the other holds its first lock, so every schedule
// seed deadlocks with the full AB-BA wait-for cycle on record.
ConformanceReplay RunAbbaDemo(std::uint64_t seed) {
  ConformanceReplay replay;
  DetRuntime runtime(MakeRandomSchedule(seed));
  AnomalyDetector detector;
  FlightRecorder flight;
  runtime.AttachAnomalyDetector(&detector);
  runtime.AttachFlightRecorder(&flight);

  auto lock_a = runtime.CreateMutex();
  auto lock_b = runtime.CreateMutex();
  std::atomic<bool> a_held{false};
  std::atomic<bool> b_held{false};

  auto t1 = runtime.StartThread("abba-1", [&] {
    lock_a->Lock();
    a_held.store(true);
    while (!b_held.load()) {
      runtime.Yield();
    }
    lock_b->Lock();  // Never succeeds: abba-2 holds B and is blocked on A.
    lock_b->Unlock();
    lock_a->Unlock();
  });
  auto t2 = runtime.StartThread("abba-2", [&] {
    lock_b->Lock();
    b_held.store(true);
    while (!a_held.load()) {
      runtime.Yield();
    }
    lock_a->Lock();
    lock_a->Unlock();
    lock_b->Unlock();
  });

  const DetRuntime::RunResult result = runtime.Run();
  replay.report.message = result.completed ? "" : "runtime: " + result.report;
  replay.report.anomalies = detector.counts();
  replay.report.anomaly_report = detector.Report("; ");
  replay.postmortem = BuildPostmortem(flight, &detector);
  replay.report.postmortem_cause = replay.postmortem.cause;
  replay.report.postmortem = replay.postmortem.ToText();
  return replay;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> extras;
  bench::Options options = bench::ParseArgs(argc, argv, "syneval_postmortem", &extras);
  bench::Reporter reporter(options);

  const std::string demo = extras.count("demo") ? extras["demo"] : "";
  const std::string problem = extras.count("problem") ? extras["problem"] : "";
  const std::string mechanism_name = extras.count("mechanism") ? extras["mechanism"] : "";
  const bool chaos = extras.count("fault") != 0;
  const std::string fault = chaos ? extras["fault"] : "";
  std::uint64_t seed = 1;
  if (extras.count("seed")) {
    seed = std::strtoull(extras["seed"].c_str(), nullptr, 10);
  }

  ConformanceReplay replay;
  std::string label_mechanism;
  std::string label_problem;
  if (demo == "abba") {
    replay = RunAbbaDemo(seed);
    label_mechanism = "mutex";
    label_problem = "abba-deadlock";
  } else if (!demo.empty()) {
    std::fprintf(stderr, "syneval_postmortem: unknown --demo '%s' (try abba)\n",
                 demo.c_str());
    return 2;
  } else if (problem.empty() || mechanism_name.empty()) {
    PrintExtraUsage();
    return 2;
  } else {
    const std::optional<Mechanism> mechanism = ParseMechanism(mechanism_name);
    if (!mechanism.has_value()) {
      std::fprintf(stderr, "syneval_postmortem: unknown --mechanism '%s'\n",
                   mechanism_name.c_str());
      return 2;
    }
    label_mechanism = mechanism_name;
    label_problem = chaos ? problem + " [" + fault + "]" : problem;
    if (chaos) {
      std::optional<ChaosReplayResult> chaos_replay =
          ReplayChaosTrial(problem, *mechanism, fault, seed);
      if (!chaos_replay.has_value()) {
        std::fprintf(stderr,
                     "syneval_postmortem: no chaos cell %s/%s with fault '%s'\n",
                     problem.c_str(), mechanism_name.c_str(), fault.c_str());
        return 1;
      }
      replay.report.message = chaos_replay->outcome.report;
      replay.report.postmortem_cause = chaos_replay->outcome.postmortem_cause;
      replay.report.postmortem = chaos_replay->outcome.postmortem;
      replay.events = std::move(chaos_replay->events);
      replay.postmortem = std::move(chaos_replay->postmortem);
    } else {
      const std::string case_filter = extras.count("case") ? extras["case"] : "";
      const std::vector<ConformanceCase> suite = BuildConformanceSuite();
      const ConformanceCase* found = nullptr;
      for (const ConformanceCase& conformance_case : suite) {
        if (conformance_case.problem != problem ||
            conformance_case.mechanism != *mechanism) {
          continue;
        }
        if (!case_filter.empty() &&
            conformance_case.display.find(case_filter) == std::string::npos) {
          continue;
        }
        found = &conformance_case;
        break;
      }
      if (found == nullptr) {
        std::fprintf(stderr, "syneval_postmortem: no conformance case %s/%s%s%s\n",
                     problem.c_str(), mechanism_name.c_str(),
                     case_filter.empty() ? "" : " matching ",
                     case_filter.c_str());
        return 1;
      }
      label_problem += " (" + found->display + ")";
      replay = ReplayConformanceTrial(*found, seed);
    }
  }

  std::printf("=== %s / %s, seed %llu ===\n", label_problem.c_str(),
              label_mechanism.c_str(), static_cast<unsigned long long>(seed));
  if (!replay.report.message.empty()) {
    std::printf("trial result: %s\n", replay.report.message.c_str());
  } else {
    std::printf("trial result: completed cleanly\n");
  }
  if (replay.postmortem.empty()) {
    std::printf("no postmortem: the trial raised no anomaly.\n");
  } else {
    std::printf("\n%s\n", replay.postmortem.ToText().c_str());
  }

  if (!options.trace_path.empty()) {
    TelemetryTracer tracer;
    replay.postmortem.AddToTracer(tracer);
    ChromeTraceOptions trace_options;
    trace_options.process_name =
        "syneval_postmortem " + label_problem + "/" + label_mechanism;
    if (WriteChromeTrace(options.trace_path, replay.events, &tracer, trace_options)) {
      std::printf("wrote Perfetto trace to %s\n", options.trace_path.c_str());
    } else {
      std::printf("failed to write Perfetto trace to %s\n", options.trace_path.c_str());
    }
  }
  if (!replay.postmortem.empty()) {
    bench::Reporter::PostmortemEntry entry;
    entry.mechanism = label_mechanism;
    entry.problem = label_problem;
    entry.seed = seed;
    entry.cause = replay.postmortem.cause;
    entry.text = replay.postmortem.ToText();
    entry.detail_json = replay.postmortem.ToJson();
    reporter.AddPostmortem(std::move(entry));
  }
  return reporter.Finish() ? 0 : 1;
}
