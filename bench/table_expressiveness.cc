// Experiment E3: the expressive-power matrix (paper Sections 4.1 and 5).
// Regenerates the mechanism x information-category support table with evidence, plus
// the structural inventory of the solution matrix backing it.

#include <cstdio>

#include "syneval/core/scorecard.h"

int main() {
  std::printf("=== E3: Expressive power (Bloom 1979, Sections 4.1 / 5) ===\n\n");
  std::printf("%s\n", syneval::RenderExpressivenessTable().c_str());
  std::printf("%s\n", syneval::RenderSolutionInventory().c_str());
  return 0;
}
