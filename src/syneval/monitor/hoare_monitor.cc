#include "syneval/monitor/hoare_monitor.h"

#include <algorithm>
#include <cassert>

#include "syneval/anomaly/detector.h"
#include "syneval/telemetry/flight_recorder.h"
#include "syneval/telemetry/instrument.h"

namespace syneval {

// A record for one blocked process. Lives on the blocked thread's stack; queues hold
// raw pointers, which are removed before the frame can unwind (grant precedes return).
struct HoareMonitor::Waiter {
  bool granted = false;
  std::int64_t priority = 0;
  std::uint64_t arrival = 0;
  std::uint32_t thread = 0;
  std::uint64_t wait_start = 0;  // NowNanos when the wait began (telemetry).
};

HoareMonitor::HoareMonitor(Runtime& runtime)
    : runtime_(runtime),
      det_(runtime.anomaly_detector()),
      tel_(MechanismTelemetry(runtime, "hoare_monitor")),
      mu_(runtime.CreateMutex()),
      cv_(runtime.CreateCondVar()) {
  if (det_ != nullptr) {
    det_name_ = det_->RegisterResource(this, ResourceKind::kLock, "HoareMonitor");
    // Rename the inner primitives after the monitor so wait-for edges and postmortem
    // cycles keep the wrapper's identity instead of an anonymous "mutex#N".
    det_->RegisterResource(mu_.get(), ResourceKind::kLock, det_name_ + ".mu");
    det_->RegisterResource(cv_.get(), ResourceKind::kCondition, det_name_ + ".cv");
  }
  if (FlightRecorder* flight = runtime.flight_recorder()) {
    const std::string name = flight->RegisterName(this, "HoareMonitor");
    flight->RegisterName(mu_.get(), name + ".mu");
    flight->RegisterName(cv_.get(), name + ".cv");
  }
}

HoareMonitor::Condition::Condition(HoareMonitor& monitor) : monitor_(monitor) {
  if (monitor.det_ != nullptr) {
    monitor.det_->RegisterResource(this, ResourceKind::kCondition,
                                   monitor.det_name_ + ".cond");
  }
}

HoareMonitor::PriorityCondition::PriorityCondition(HoareMonitor& monitor)
    : monitor_(monitor) {
  if (monitor.det_ != nullptr) {
    monitor.det_->RegisterResource(this, ResourceKind::kCondition,
                                   monitor.det_name_ + ".pcond");
  }
}

void HoareMonitor::Enter() {
  RtLock lock(*mu_);
  if (!busy_) {
    busy_ = true;
    owner_ = runtime_.CurrentThreadId();
    if (det_ != nullptr) {
      det_->OnAcquire(owner_, this);
    }
    if (tel_ != nullptr) {
      tel_->wait.Record(0);  // Uncontended entry: no time at the door.
      tel_->admissions.Add(1);
      owner_since_ = runtime_.NowNanos();
    }
    return;
  }
  Waiter self;
  self.thread = runtime_.CurrentThreadId();
  self.wait_start = TelemetryNow(tel_, runtime_);
  entry_.push_back(&self);
  if (tel_ != nullptr) {
    tel_->queue_depth.Set(static_cast<std::int64_t>(entry_.size() + urgent_.size()));
  }
  if (det_ != nullptr) {
    det_->OnBlock(self.thread, this);
  }
  BlockLocked(&self);
  if (det_ != nullptr) {
    det_->OnWake(self.thread, this);
  }
}

void HoareMonitor::Exit() {
  if (runtime_.Aborting()) {
    return;  // Teardown unwinding: a Wait may already have surrendered ownership.
  }
  RtLock lock(*mu_);
  AssertOwnedByCaller();
  if (det_ != nullptr) {
    det_->OnRelease(owner_, this);
  }
  if (tel_ != nullptr) {
    tel_->hold.Record(TelemetryElapsed(owner_since_, runtime_.NowNanos()));
  }
  ReleaseOwnershipLocked();
}

int HoareMonitor::EntryQueueLength() const {
  RtLock lock(*mu_);
  return static_cast<int>(entry_.size());
}

void HoareMonitor::GrantLocked(Waiter* waiter) {
  waiter->granted = true;
  owner_ = waiter->thread;
  if (det_ != nullptr) {
    // Ownership transfers at the grant (Hoare hand-off), not when the waiter resumes.
    det_->OnAcquire(waiter->thread, this);
  }
  if (tel_ != nullptr) {
    const std::uint64_t now = runtime_.NowNanos();
    tel_->wait.Record(TelemetryElapsed(waiter->wait_start, now));
    tel_->admissions.Add(1);
    owner_since_ = now;  // The new owner's tenure starts at the hand-off, per Hoare.
    tel_->queue_depth.Set(static_cast<std::int64_t>(entry_.size() + urgent_.size()));
  }
  cv_->NotifyAll();
}

void HoareMonitor::ReleaseOwnershipLocked() {
  if (!urgent_.empty()) {
    Waiter* waiter = urgent_.back();
    urgent_.pop_back();
    GrantLocked(waiter);
  } else if (!entry_.empty()) {
    Waiter* waiter = entry_.front();
    entry_.pop_front();
    GrantLocked(waiter);
  } else {
    busy_ = false;
    owner_ = 0;
  }
}

void HoareMonitor::BlockLocked(Waiter* waiter) {
  while (!waiter->granted) {
    cv_->Wait(*mu_);
    if (tel_ != nullptr) {
      // Every resume counts, granted or not: the single shared condvar is broadcast on
      // each grant, so wakeups/admissions measures the futile-wakeup amplification.
      tel_->wakeups.Add(1);
    }
  }
}

void HoareMonitor::AssertOwnedByCaller() const {
  assert(busy_ && "monitor operation while the monitor is free");
  assert(owner_ == runtime_.CurrentThreadId() &&
         "monitor operation by a process that is not inside the monitor");
}

void HoareMonitor::Condition::Wait() {
  HoareMonitor& m = monitor_;
  RtLock lock(*m.mu_);
  m.AssertOwnedByCaller();
  Waiter self;
  self.thread = m.runtime_.CurrentThreadId();
  self.wait_start = TelemetryNow(m.tel_, m.runtime_);
  if (m.tel_ != nullptr) {
    // Waiting on a condition ends the tenure; the re-grant at Signal starts a new one.
    m.tel_->hold.Record(TelemetryElapsed(m.owner_since_, self.wait_start));
  }
  queue_.push_back(&self);
  if (m.det_ != nullptr) {
    m.det_->OnRelease(self.thread, &m);
    m.det_->OnBlock(self.thread, this);
  }
  m.ReleaseOwnershipLocked();
  m.BlockLocked(&self);
  if (m.det_ != nullptr) {
    m.det_->OnWake(self.thread, this);
  }
}

void HoareMonitor::Condition::Signal() {
  HoareMonitor& m = monitor_;
  RtLock lock(*m.mu_);
  m.AssertOwnedByCaller();
  const std::uint32_t tid = m.runtime_.CurrentThreadId();
  if (m.det_ != nullptr) {
    m.det_->OnSignal(tid, this, static_cast<int>(queue_.size()));
  }
  if (m.tel_ != nullptr) {
    m.tel_->signals.Add(1);
  }
  if (queue_.empty()) {
    return;
  }
  auto* waiter = static_cast<Waiter*>(queue_.front());
  queue_.pop_front();
  Waiter self;
  self.thread = tid;
  self.wait_start = TelemetryNow(m.tel_, m.runtime_);
  if (m.tel_ != nullptr) {
    // Hoare hand-off: the signaller's tenure ends here and it waits (urgent queue).
    m.tel_->hold.Record(TelemetryElapsed(m.owner_since_, self.wait_start));
  }
  m.urgent_.push_back(&self);
  if (m.det_ != nullptr) {
    m.det_->OnRelease(tid, &m);  // Hand-off: the signaller yields the monitor...
  }
  m.GrantLocked(waiter);
  if (m.det_ != nullptr) {
    m.det_->OnBlock(tid, &m);  // ...and waits (urgent queue) to re-enter it.
  }
  m.BlockLocked(&self);
  if (m.det_ != nullptr) {
    m.det_->OnWake(tid, &m);
  }
}

bool HoareMonitor::Condition::Empty() const {
  RtLock lock(*monitor_.mu_);
  return queue_.empty();
}

int HoareMonitor::Condition::Length() const {
  RtLock lock(*monitor_.mu_);
  return static_cast<int>(queue_.size());
}

void HoareMonitor::PriorityCondition::Wait(std::int64_t priority) {
  HoareMonitor& m = monitor_;
  RtLock lock(*m.mu_);
  m.AssertOwnedByCaller();
  Waiter self;
  self.thread = m.runtime_.CurrentThreadId();
  self.priority = priority;
  self.arrival = ++m.arrivals_;
  self.wait_start = TelemetryNow(m.tel_, m.runtime_);
  if (m.tel_ != nullptr) {
    m.tel_->hold.Record(TelemetryElapsed(m.owner_since_, self.wait_start));
  }
  // Insert keeping the queue sorted by (priority, arrival): minimum first.
  auto pos = std::find_if(queue_.begin(), queue_.end(), [&](void* raw) {
    auto* other = static_cast<Waiter*>(raw);
    return other->priority > priority;
  });
  queue_.insert(pos, &self);
  if (m.det_ != nullptr) {
    m.det_->OnRelease(self.thread, &m);
    m.det_->OnBlock(self.thread, this);
  }
  m.ReleaseOwnershipLocked();
  m.BlockLocked(&self);
  if (m.det_ != nullptr) {
    m.det_->OnWake(self.thread, this);
  }
}

void HoareMonitor::PriorityCondition::Signal() {
  HoareMonitor& m = monitor_;
  RtLock lock(*m.mu_);
  m.AssertOwnedByCaller();
  const std::uint32_t tid = m.runtime_.CurrentThreadId();
  if (m.det_ != nullptr) {
    m.det_->OnSignal(tid, this, static_cast<int>(queue_.size()));
  }
  if (m.tel_ != nullptr) {
    m.tel_->signals.Add(1);
  }
  if (queue_.empty()) {
    return;
  }
  auto* waiter = static_cast<Waiter*>(queue_.front());
  queue_.erase(queue_.begin());
  Waiter self;
  self.thread = tid;
  self.wait_start = TelemetryNow(m.tel_, m.runtime_);
  if (m.tel_ != nullptr) {
    m.tel_->hold.Record(TelemetryElapsed(m.owner_since_, self.wait_start));
  }
  m.urgent_.push_back(&self);
  if (m.det_ != nullptr) {
    m.det_->OnRelease(tid, &m);
  }
  m.GrantLocked(waiter);
  if (m.det_ != nullptr) {
    m.det_->OnBlock(tid, &m);
  }
  m.BlockLocked(&self);
  if (m.det_ != nullptr) {
    m.det_->OnWake(tid, &m);
  }
}

bool HoareMonitor::PriorityCondition::Empty() const {
  RtLock lock(*monitor_.mu_);
  return queue_.empty();
}

int HoareMonitor::PriorityCondition::Length() const {
  RtLock lock(*monitor_.mu_);
  return static_cast<int>(queue_.size());
}

std::int64_t HoareMonitor::PriorityCondition::MinPriority() const {
  RtLock lock(*monitor_.mu_);
  assert(!queue_.empty() && "MinPriority on an empty priority condition");
  return static_cast<Waiter*>(queue_.front())->priority;
}

}  // namespace syneval
