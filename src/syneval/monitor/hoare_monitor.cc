#include "syneval/monitor/hoare_monitor.h"

#include <algorithm>
#include <cassert>

namespace syneval {

// A record for one blocked process. Lives on the blocked thread's stack; queues hold
// raw pointers, which are removed before the frame can unwind (grant precedes return).
struct HoareMonitor::Waiter {
  bool granted = false;
  std::int64_t priority = 0;
  std::uint64_t arrival = 0;
  std::uint32_t thread = 0;
};

HoareMonitor::HoareMonitor(Runtime& runtime)
    : runtime_(runtime), mu_(runtime.CreateMutex()), cv_(runtime.CreateCondVar()) {}

void HoareMonitor::Enter() {
  RtLock lock(*mu_);
  if (!busy_) {
    busy_ = true;
    owner_ = runtime_.CurrentThreadId();
    return;
  }
  Waiter self;
  self.thread = runtime_.CurrentThreadId();
  entry_.push_back(&self);
  BlockLocked(&self);
}

void HoareMonitor::Exit() {
  RtLock lock(*mu_);
  AssertOwnedByCaller();
  ReleaseOwnershipLocked();
}

int HoareMonitor::EntryQueueLength() const {
  RtLock lock(*mu_);
  return static_cast<int>(entry_.size());
}

void HoareMonitor::GrantLocked(Waiter* waiter) {
  waiter->granted = true;
  owner_ = waiter->thread;
  cv_->NotifyAll();
}

void HoareMonitor::ReleaseOwnershipLocked() {
  if (!urgent_.empty()) {
    Waiter* waiter = urgent_.back();
    urgent_.pop_back();
    GrantLocked(waiter);
  } else if (!entry_.empty()) {
    Waiter* waiter = entry_.front();
    entry_.pop_front();
    GrantLocked(waiter);
  } else {
    busy_ = false;
    owner_ = 0;
  }
}

void HoareMonitor::BlockLocked(Waiter* waiter) {
  while (!waiter->granted) {
    cv_->Wait(*mu_);
  }
}

void HoareMonitor::AssertOwnedByCaller() const {
  assert(busy_ && "monitor operation while the monitor is free");
  assert(owner_ == runtime_.CurrentThreadId() &&
         "monitor operation by a process that is not inside the monitor");
}

void HoareMonitor::Condition::Wait() {
  HoareMonitor& m = monitor_;
  RtLock lock(*m.mu_);
  m.AssertOwnedByCaller();
  Waiter self;
  self.thread = m.runtime_.CurrentThreadId();
  queue_.push_back(&self);
  m.ReleaseOwnershipLocked();
  m.BlockLocked(&self);
}

void HoareMonitor::Condition::Signal() {
  HoareMonitor& m = monitor_;
  RtLock lock(*m.mu_);
  m.AssertOwnedByCaller();
  if (queue_.empty()) {
    return;
  }
  auto* waiter = static_cast<Waiter*>(queue_.front());
  queue_.pop_front();
  Waiter self;
  self.thread = m.runtime_.CurrentThreadId();
  m.urgent_.push_back(&self);
  m.GrantLocked(waiter);
  m.BlockLocked(&self);
}

bool HoareMonitor::Condition::Empty() const {
  RtLock lock(*monitor_.mu_);
  return queue_.empty();
}

int HoareMonitor::Condition::Length() const {
  RtLock lock(*monitor_.mu_);
  return static_cast<int>(queue_.size());
}

void HoareMonitor::PriorityCondition::Wait(std::int64_t priority) {
  HoareMonitor& m = monitor_;
  RtLock lock(*m.mu_);
  m.AssertOwnedByCaller();
  Waiter self;
  self.thread = m.runtime_.CurrentThreadId();
  self.priority = priority;
  self.arrival = ++m.arrivals_;
  // Insert keeping the queue sorted by (priority, arrival): minimum first.
  auto pos = std::find_if(queue_.begin(), queue_.end(), [&](void* raw) {
    auto* other = static_cast<Waiter*>(raw);
    return other->priority > priority;
  });
  queue_.insert(pos, &self);
  m.ReleaseOwnershipLocked();
  m.BlockLocked(&self);
}

void HoareMonitor::PriorityCondition::Signal() {
  HoareMonitor& m = monitor_;
  RtLock lock(*m.mu_);
  m.AssertOwnedByCaller();
  if (queue_.empty()) {
    return;
  }
  auto* waiter = static_cast<Waiter*>(queue_.front());
  queue_.erase(queue_.begin());
  Waiter self;
  self.thread = m.runtime_.CurrentThreadId();
  m.urgent_.push_back(&self);
  m.GrantLocked(waiter);
  m.BlockLocked(&self);
}

bool HoareMonitor::PriorityCondition::Empty() const {
  RtLock lock(*monitor_.mu_);
  return queue_.empty();
}

int HoareMonitor::PriorityCondition::Length() const {
  RtLock lock(*monitor_.mu_);
  return static_cast<int>(queue_.size());
}

std::int64_t HoareMonitor::PriorityCondition::MinPriority() const {
  RtLock lock(*monitor_.mu_);
  assert(!queue_.empty() && "MinPriority on an empty priority condition");
  return static_cast<Waiter*>(queue_.front())->priority;
}

}  // namespace syneval
