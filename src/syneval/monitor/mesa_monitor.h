// Mesa-style monitor: signal is a hint, the signalled process re-contends for the lock
// and must re-check its predicate. Provided as the ablation counterpart to HoareMonitor
// (DESIGN.md decision 2): the paper's constraint-independence analysis of monitors hinges
// on the *explicit* Hoare signal forcing a total wakeup order; Mesa signalling weakens
// that coupling at the cost of non-deterministic admission order.

#ifndef SYNEVAL_MONITOR_MESA_MONITOR_H_
#define SYNEVAL_MONITOR_MESA_MONITOR_H_

#include <cstdint>
#include <memory>

#include "syneval/runtime/runtime.h"

namespace syneval {

class MesaMonitor {
 public:
  explicit MesaMonitor(Runtime& runtime);

  MesaMonitor(const MesaMonitor&) = delete;
  MesaMonitor& operator=(const MesaMonitor&) = delete;

  void Enter();
  void Exit();

  class Condition {
   public:
    explicit Condition(MesaMonitor& monitor);

    Condition(const Condition&) = delete;
    Condition& operator=(const Condition&) = delete;

    // Releases the monitor and blocks; on return the monitor is held again but the
    // awaited predicate may no longer hold (callers loop).
    void Wait();
    void Signal();
    void Broadcast();

    int Length() const;

   private:
    MesaMonitor& monitor_;
    std::unique_ptr<RtCondVar> cv_;
    int waiting_ = 0;
  };

 private:
  friend class Condition;
  Runtime& runtime_;
  MechanismStats* tel_ = nullptr;  // "mesa_monitor" bundle; null when not attached.
  std::unique_ptr<RtMutex> mu_;
  std::uint32_t owner_ = 0;
  std::uint64_t owner_since_ = 0;  // NowNanos at lock acquisition (telemetry).
};

class MesaRegion {
 public:
  explicit MesaRegion(MesaMonitor& monitor) : monitor_(monitor) { monitor_.Enter(); }
  ~MesaRegion() { monitor_.Exit(); }

  MesaRegion(const MesaRegion&) = delete;
  MesaRegion& operator=(const MesaRegion&) = delete;

 private:
  MesaMonitor& monitor_;
};

}  // namespace syneval

#endif  // SYNEVAL_MONITOR_MESA_MONITOR_H_
