// Hoare monitors [Hoare, "Monitors: An Operating System Structuring Concept", CACM 1974].
//
// Faithful signal semantics: Signal() on a non-empty condition *immediately* transfers
// the monitor to the longest-waiting process on that condition, and the signaller waits
// on the "urgent" queue, which has priority over the entry queue when the monitor is
// next released. This is the explicit-signal discipline whose consequences Section 5.2
// of the paper analyses (a total wakeup order must be chosen by the programmer, which
// couples priority constraints to exclusion constraints).
//
// Conditions expose their queue state (Empty/Length) — the "synchronization state"
// information monitors keep implicitly — and a PriorityCondition implements Hoare's
// priority wait (`wait(p)` wakes minimum p first), the construct that handles request
// parameters (disk scheduler, alarm clock, shortest-job-next).
//
// The implementation is runtime-agnostic: under DetRuntime every admission decision is
// deterministic and replayable.

#ifndef SYNEVAL_MONITOR_HOARE_MONITOR_H_
#define SYNEVAL_MONITOR_HOARE_MONITOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "syneval/runtime/runtime.h"

namespace syneval {

class HoareMonitor {
 public:
  explicit HoareMonitor(Runtime& runtime);

  HoareMonitor(const HoareMonitor&) = delete;
  HoareMonitor& operator=(const HoareMonitor&) = delete;

  // Acquires the monitor. Entry is FIFO among callers, but processes released from the
  // urgent queue (signallers) take precedence over the entry queue.
  void Enter();

  // Releases the monitor: resumes the most recent urgent waiter if any, else admits the
  // longest-waiting entrant, else marks the monitor free.
  void Exit();

  // Number of processes blocked at the monitor door (diagnostics).
  int EntryQueueLength() const;

  // FIFO condition variable with Hoare signal semantics. Must only be used by a process
  // currently inside the owning monitor.
  class Condition {
   public:
    explicit Condition(HoareMonitor& monitor);

    Condition(const Condition&) = delete;
    Condition& operator=(const Condition&) = delete;

    // Releases the monitor and blocks until signalled. On return the caller is inside
    // the monitor again, and — per Hoare semantics — the condition that was signalled
    // still holds (no other process ran in between).
    void Wait();

    // If the queue is non-empty, hands the monitor to its head and suspends the caller
    // on the urgent queue; otherwise a no-op.
    void Signal();

    // Queue-state observers (Hoare's `condition.queue` construct).
    bool Empty() const;
    int Length() const;

   private:
    friend class HoareMonitor;
    HoareMonitor& monitor_;
    std::deque<void*> queue_;  // Waiter records, owned by the blocked stack frames.
  };

  // Priority condition: Wait(p) enqueues with priority p; Signal resumes the waiter with
  // the *minimum* p (FIFO among equal priorities), per Hoare's scheduled waits.
  class PriorityCondition {
   public:
    explicit PriorityCondition(HoareMonitor& monitor);

    PriorityCondition(const PriorityCondition&) = delete;
    PriorityCondition& operator=(const PriorityCondition&) = delete;

    void Wait(std::int64_t priority);
    void Signal();

    bool Empty() const;
    int Length() const;

    // Minimum queued priority; only meaningful when !Empty(). Hoare's disk-scheduler
    // and alarm-clock monitors use this to peek at the next scheduled request.
    std::int64_t MinPriority() const;

   private:
    friend class HoareMonitor;
    HoareMonitor& monitor_;
    std::vector<void*> queue_;  // Sorted by (priority, arrival).
  };

 private:
  struct Waiter;

  // Grants monitor ownership to `waiter` (monitor stays busy). Caller holds mu_.
  void GrantLocked(Waiter* waiter);

  // Releases ownership: urgent queue first, then entry queue, else free. Holds mu_.
  void ReleaseOwnershipLocked();

  // Blocks the calling thread until its waiter record is granted. Holds mu_ via `lock`.
  void BlockLocked(Waiter* waiter);

  void AssertOwnedByCaller() const;

  Runtime& runtime_;
  AnomalyDetector* det_ = nullptr;  // From runtime_.anomaly_detector(); may be null.
  std::string det_name_;            // Registered name when det_ is attached.
  MechanismStats* tel_ = nullptr;   // "hoare_monitor" bundle; null when not attached.
  std::uint64_t owner_since_ = 0;   // NowNanos at the current owner's grant (telemetry).
  std::unique_ptr<RtMutex> mu_;
  std::unique_ptr<RtCondVar> cv_;
  bool busy_ = false;
  std::uint32_t owner_ = 0;  // Thread id of the current occupant (0 when free).
  std::deque<Waiter*> entry_;
  std::vector<Waiter*> urgent_;  // Stack: most recent signaller resumes first.
  std::uint64_t arrivals_ = 0;   // Tie-break counter for priority conditions.
};

// RAII monitor section: Enter() on construction, Exit() on destruction.
class MonitorRegion {
 public:
  explicit MonitorRegion(HoareMonitor& monitor) : monitor_(monitor) { monitor_.Enter(); }
  ~MonitorRegion() { monitor_.Exit(); }

  MonitorRegion(const MonitorRegion&) = delete;
  MonitorRegion& operator=(const MonitorRegion&) = delete;

 private:
  HoareMonitor& monitor_;
};

}  // namespace syneval

#endif  // SYNEVAL_MONITOR_HOARE_MONITOR_H_
