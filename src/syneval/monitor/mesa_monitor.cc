#include "syneval/monitor/mesa_monitor.h"

#include <cassert>

namespace syneval {

MesaMonitor::MesaMonitor(Runtime& runtime) : runtime_(runtime), mu_(runtime.CreateMutex()) {}

void MesaMonitor::Enter() {
  mu_->Lock();
  owner_ = runtime_.CurrentThreadId();
}

void MesaMonitor::Exit() {
  assert(owner_ == runtime_.CurrentThreadId() && "MesaMonitor::Exit by non-occupant");
  owner_ = 0;
  mu_->Unlock();
}

MesaMonitor::Condition::Condition(MesaMonitor& monitor)
    : monitor_(monitor), cv_(monitor.runtime_.CreateCondVar()) {}

void MesaMonitor::Condition::Wait() {
  MesaMonitor& m = monitor_;
  assert(m.owner_ == m.runtime_.CurrentThreadId() && "Condition::Wait outside the monitor");
  ++waiting_;
  m.owner_ = 0;
  cv_->Wait(*m.mu_);
  m.owner_ = m.runtime_.CurrentThreadId();
  --waiting_;
}

void MesaMonitor::Condition::Signal() { cv_->NotifyOne(); }

void MesaMonitor::Condition::Broadcast() { cv_->NotifyAll(); }

int MesaMonitor::Condition::Length() const { return waiting_; }

}  // namespace syneval
