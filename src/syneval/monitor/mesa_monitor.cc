#include "syneval/monitor/mesa_monitor.h"

#include <cassert>

#include "syneval/anomaly/detector.h"

namespace syneval {

// Mesa monitors synchronize directly through the runtime primitives, whose own detector
// hooks (block/wake/acquire/release/signal) already cover them; all that is needed here
// is re-registering the primitives under mechanism-level names so diagnoses read
// "MesaMonitor" / "MesaMonitor.cond" instead of "mutex" / "condvar".
MesaMonitor::MesaMonitor(Runtime& runtime) : runtime_(runtime), mu_(runtime.CreateMutex()) {
  if (AnomalyDetector* det = runtime.anomaly_detector()) {
    det->RegisterResource(mu_.get(), ResourceKind::kLock, "MesaMonitor");
  }
}

void MesaMonitor::Enter() {
  mu_->Lock();
  owner_ = runtime_.CurrentThreadId();
}

void MesaMonitor::Exit() {
  if (runtime_.Aborting()) {
    return;  // Teardown unwinding: a Wait may already have surrendered ownership.
  }
  assert(owner_ == runtime_.CurrentThreadId() && "MesaMonitor::Exit by non-occupant");
  owner_ = 0;
  mu_->Unlock();
}

MesaMonitor::Condition::Condition(MesaMonitor& monitor)
    : monitor_(monitor), cv_(monitor.runtime_.CreateCondVar()) {
  if (AnomalyDetector* det = monitor.runtime_.anomaly_detector()) {
    det->RegisterResource(cv_.get(), ResourceKind::kCondition, "MesaMonitor.cond");
  }
}

void MesaMonitor::Condition::Wait() {
  MesaMonitor& m = monitor_;
  assert(m.owner_ == m.runtime_.CurrentThreadId() && "Condition::Wait outside the monitor");
  ++waiting_;
  m.owner_ = 0;
  cv_->Wait(*m.mu_);
  m.owner_ = m.runtime_.CurrentThreadId();
  --waiting_;
}

void MesaMonitor::Condition::Signal() { cv_->NotifyOne(); }

void MesaMonitor::Condition::Broadcast() { cv_->NotifyAll(); }

int MesaMonitor::Condition::Length() const { return waiting_; }

}  // namespace syneval
