#include "syneval/monitor/mesa_monitor.h"

#include <cassert>

#include "syneval/anomaly/detector.h"
#include "syneval/telemetry/instrument.h"

namespace syneval {

// Mesa monitors synchronize directly through the runtime primitives, whose own detector
// hooks (block/wake/acquire/release/signal) already cover them; all that is needed here
// is re-registering the primitives under mechanism-level names so diagnoses read
// "MesaMonitor" / "MesaMonitor.cond" instead of "mutex" / "condvar".
MesaMonitor::MesaMonitor(Runtime& runtime)
    : runtime_(runtime),
      tel_(MechanismTelemetry(runtime, "mesa_monitor")),
      mu_(runtime.CreateMutex()) {
  if (AnomalyDetector* det = runtime.anomaly_detector()) {
    det->RegisterResource(mu_.get(), ResourceKind::kLock, "MesaMonitor");
  }
}

void MesaMonitor::Enter() {
  const std::uint64_t wait_start = TelemetryNow(tel_, runtime_);
  mu_->Lock();
  owner_ = runtime_.CurrentThreadId();
  if (tel_ != nullptr) {
    const std::uint64_t now = runtime_.NowNanos();
    tel_->wait.Record(TelemetryElapsed(wait_start, now));
    tel_->admissions.Add(1);
    owner_since_ = now;
  }
}

void MesaMonitor::Exit() {
  if (runtime_.Aborting()) {
    return;  // Teardown unwinding: a Wait may already have surrendered ownership.
  }
  assert(owner_ == runtime_.CurrentThreadId() && "MesaMonitor::Exit by non-occupant");
  if (tel_ != nullptr) {
    tel_->hold.Record(TelemetryElapsed(owner_since_, runtime_.NowNanos()));
  }
  owner_ = 0;
  mu_->Unlock();
}

MesaMonitor::Condition::Condition(MesaMonitor& monitor)
    : monitor_(monitor), cv_(monitor.runtime_.CreateCondVar()) {
  if (AnomalyDetector* det = monitor.runtime_.anomaly_detector()) {
    det->RegisterResource(cv_.get(), ResourceKind::kCondition, "MesaMonitor.cond");
  }
}

void MesaMonitor::Condition::Wait() {
  MesaMonitor& m = monitor_;
  assert(m.owner_ == m.runtime_.CurrentThreadId() && "Condition::Wait outside the monitor");
  const std::uint64_t wait_start = TelemetryNow(m.tel_, m.runtime_);
  if (m.tel_ != nullptr) {
    // The wait ends this tenure; the re-acquisition after the signal starts a new one.
    m.tel_->hold.Record(TelemetryElapsed(m.owner_since_, wait_start));
    m.tel_->queue_depth.Set(waiting_ + 1);
  }
  ++waiting_;
  m.owner_ = 0;
  cv_->Wait(*m.mu_);
  m.owner_ = m.runtime_.CurrentThreadId();
  --waiting_;
  if (m.tel_ != nullptr) {
    const std::uint64_t now = m.runtime_.NowNanos();
    // Each Wait return is one wakeup but not necessarily one logical admission: Mesa
    // callers loop on their predicate, so futile wakeups appear as wakeups > admissions.
    m.tel_->wait.Record(TelemetryElapsed(wait_start, now));
    m.tel_->wakeups.Add(1);
    m.owner_since_ = now;
    m.tel_->queue_depth.Set(waiting_);
  }
}

void MesaMonitor::Condition::Signal() {
  if (monitor_.tel_ != nullptr) {
    monitor_.tel_->signals.Add(1);
  }
  cv_->NotifyOne();
}

void MesaMonitor::Condition::Broadcast() {
  if (monitor_.tel_ != nullptr) {
    monitor_.tel_->broadcasts.Add(1);
  }
  cv_->NotifyAll();
}

int MesaMonitor::Condition::Length() const { return waiting_; }

}  // namespace syneval
