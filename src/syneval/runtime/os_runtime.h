// OsRuntime: the Runtime implementation over real preemptive std::thread.
//
// Used by the benchmarks (wall-clock cost of each mechanism) and by stress tests. All
// primitives are thin wrappers; the added machinery is logical thread ids (which the
// trace layer uses to label events) and, when an AnomalyDetector is attached, blocking
// hooks on the primitives plus an optional sampling watchdog thread that periodically
// calls AnomalyDetector::Poll() to flag long-stuck waits in live runs.

#ifndef SYNEVAL_RUNTIME_OS_RUNTIME_H_
#define SYNEVAL_RUNTIME_OS_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "syneval/runtime/runtime.h"

namespace syneval {

class OsRuntime : public Runtime {
 public:
  OsRuntime() = default;
  ~OsRuntime() override;

  std::unique_ptr<RtMutex> CreateMutex() override;
  std::unique_ptr<RtCondVar> CreateCondVar() override;
  std::unique_ptr<RtThread> StartThread(std::string name, std::function<void()> body) override;
  void Yield() override;
  std::uint32_t CurrentThreadId() override;
  std::uint64_t NowNanos() override;
  const char* name() const override { return "os"; }

  // Starts a background thread that calls anomaly_detector()->Poll(NowNanos()) every
  // `period`. Requires an attached detector; no-op if already started. The watchdog is
  // a *sampler*: it can only flag waits older than the detector's stuck_wait_nanos, so
  // detection latency is period + threshold (unlike DetRuntime's exact diagnosis).
  void StartAnomalyWatchdog(std::chrono::milliseconds period);

  // Stops and joins the watchdog thread (also called by the destructor).
  void StopAnomalyWatchdog();

 private:
  std::atomic<std::uint32_t> next_thread_id_{1};

  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::thread watchdog_;
};

}  // namespace syneval

#endif  // SYNEVAL_RUNTIME_OS_RUNTIME_H_
