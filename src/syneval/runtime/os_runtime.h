// OsRuntime: the Runtime implementation over real preemptive std::thread.
//
// Used by the benchmarks (wall-clock cost of each mechanism) and by stress tests. All
// primitives are thin wrappers; the only added machinery is logical thread ids, which the
// trace layer uses to label events.

#ifndef SYNEVAL_RUNTIME_OS_RUNTIME_H_
#define SYNEVAL_RUNTIME_OS_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "syneval/runtime/runtime.h"

namespace syneval {

class OsRuntime : public Runtime {
 public:
  OsRuntime() = default;

  std::unique_ptr<RtMutex> CreateMutex() override;
  std::unique_ptr<RtCondVar> CreateCondVar() override;
  std::unique_ptr<RtThread> StartThread(std::string name, std::function<void()> body) override;
  void Yield() override;
  std::uint32_t CurrentThreadId() override;
  std::uint64_t NowNanos() override;
  const char* name() const override { return "os"; }

 private:
  std::atomic<std::uint32_t> next_thread_id_{1};
};

}  // namespace syneval

#endif  // SYNEVAL_RUNTIME_OS_RUNTIME_H_
