// OsRuntime: the Runtime implementation over real preemptive std::thread.
//
// Used by the benchmarks (wall-clock cost of each mechanism) and by stress tests. All
// primitives are thin wrappers; the added machinery is logical thread ids (which the
// trace layer uses to label events) and, when an AnomalyDetector is attached, blocking
// hooks on the primitives plus an optional sampling watchdog thread that periodically
// calls AnomalyDetector::Poll() to flag long-stuck waits in live runs.
//
// Abortable mode (opt-in, for supervised trials — runtime/supervisor.h): blocking
// acquisitions and waits become short poll loops that check an abort flag, so a
// supervisor's reaper can force-unwind a genuinely deadlocked trial through the
// Runtime::Aborting() seam instead of stalling the whole sweep. See RequestAbort().

#ifndef SYNEVAL_RUNTIME_OS_RUNTIME_H_
#define SYNEVAL_RUNTIME_OS_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "syneval/runtime/runtime.h"

namespace syneval {

// Thrown out of OsRuntime primitives in abortable mode once RequestAbort() was called:
// the managed thread unwinds through its RAII guards (which no-op their mechanism
// releases while Runtime::Aborting() is true) and finishes. Caught by the StartThread
// wrapper exactly like an injected ThreadKilledFault.
struct TrialAborted {};

class OsRuntime : public Runtime {
 public:
  struct Options {
    // Abortable mode. Off (the default), blocking primitives call straight into the
    // OS — zero overhead, but a deadlocked trial can only be reaped by the process
    // sandbox. On, blocked threads poll the abort flag every `abort_poll`, trading a
    // bounded wakeup latency for cooperative force-unwind via RequestAbort().
    bool abortable = false;
    std::chrono::microseconds abort_poll{200};
  };

  OsRuntime() = default;
  explicit OsRuntime(const Options& options) : options_(options) {}
  ~OsRuntime() override;

  // True once RequestAbort() was called (runtime.h seam: mechanism RAII releases
  // no-op during the unwind).
  bool Aborting() const override {
    return aborting_.load(std::memory_order_acquire);
  }

  // Asks every current and future blocking primitive call to throw TrialAborted.
  // Only effective in abortable mode; callers should put the attached detector into
  // SetAborting(true) first so the unwind's hook traffic is ignored. Safe from any
  // thread, idempotent.
  void RequestAbort();

  bool abortable() const { return options_.abortable; }
  std::chrono::microseconds abort_poll() const { return options_.abort_poll; }

  // Internal registry (used by the runtime's condvars): RequestAbort() must wake
  // sleeping waiters, so every live OsCondVar registers its std::condition_variable.
  void RegisterAbortWaiter(std::condition_variable_any* cv);
  void UnregisterAbortWaiter(std::condition_variable_any* cv);

  std::unique_ptr<RtMutex> CreateMutex() override;
  std::unique_ptr<RtCondVar> CreateCondVar() override;
  std::unique_ptr<RtThread> StartThread(std::string name, std::function<void()> body) override;
  void Yield() override;
  std::uint32_t CurrentThreadId() override;
  std::uint64_t NowNanos() override;
  const char* name() const override { return "os"; }

  struct WatchdogOptions {
    // Base sampling period.
    std::chrono::milliseconds period{20};
    // Each cycle sleeps period × U[1 - f, 1 + f] (see JitterPeriod in deadline.h).
    // Without jitter a fixed-period watchdog can phase-lock with periodic behaviour it
    // is meant to observe — in particular the fault layer's fixed-length stalls — and
    // systematically sample the same phase of every stall window. 0 disables jitter.
    double jitter_fraction = 0.2;
    // Seeds the jitter RNG, so a sweep can decorrelate its watchdogs per trial.
    std::uint64_t jitter_seed = 0x5EEDD06;
    // Load-adaptive poll threshold: each cycle the detector's stuck-wait threshold is
    // scaled by the process-wide active-trial count (supervisor.h's ActiveTrials()
    // gauge). Under a fully-loaded parallel sweep every trial runs slower by roughly
    // the oversubscription factor, so a fixed threshold misreads ordinary scheduling
    // delay as starvation; scaling keeps the false-positive rate flat. The effective
    // threshold is exported as gauge "anomaly/effective_stuck_wait_ms".
    bool load_adaptive = true;
  };

  // Starts a background thread that calls anomaly_detector()->Poll(NowNanos()) every
  // (jittered) period. Requires an attached detector; no-op if already started. The
  // watchdog is a *sampler*: it can only flag waits older than the detector's
  // stuck_wait_nanos, so detection latency is period + threshold (unlike DetRuntime's
  // exact diagnosis). The period chosen for each cycle is exported through the metrics
  // registry as gauge "anomaly/watchdog_period_ms".
  void StartAnomalyWatchdog(WatchdogOptions options);
  void StartAnomalyWatchdog(std::chrono::milliseconds period) {
    WatchdogOptions options;
    options.period = period;
    StartAnomalyWatchdog(options);
  }

  // Stops and joins the watchdog thread (also called by the destructor).
  void StopAnomalyWatchdog();

 private:
  const Options options_;
  std::atomic<std::uint32_t> next_thread_id_{1};

  std::atomic<bool> aborting_{false};
  std::mutex abort_mu_;
  std::set<std::condition_variable_any*> abort_waiters_;

  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::thread watchdog_;
};

}  // namespace syneval

#endif  // SYNEVAL_RUNTIME_OS_RUNTIME_H_
