// OsRuntime: the Runtime implementation over real preemptive std::thread.
//
// Used by the benchmarks (wall-clock cost of each mechanism) and by stress tests. All
// primitives are thin wrappers; the added machinery is logical thread ids (which the
// trace layer uses to label events) and, when an AnomalyDetector is attached, blocking
// hooks on the primitives plus an optional sampling watchdog thread that periodically
// calls AnomalyDetector::Poll() to flag long-stuck waits in live runs.

#ifndef SYNEVAL_RUNTIME_OS_RUNTIME_H_
#define SYNEVAL_RUNTIME_OS_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "syneval/runtime/runtime.h"

namespace syneval {

class OsRuntime : public Runtime {
 public:
  OsRuntime() = default;
  ~OsRuntime() override;

  std::unique_ptr<RtMutex> CreateMutex() override;
  std::unique_ptr<RtCondVar> CreateCondVar() override;
  std::unique_ptr<RtThread> StartThread(std::string name, std::function<void()> body) override;
  void Yield() override;
  std::uint32_t CurrentThreadId() override;
  std::uint64_t NowNanos() override;
  const char* name() const override { return "os"; }

  struct WatchdogOptions {
    // Base sampling period.
    std::chrono::milliseconds period{20};
    // Each cycle sleeps period × U[1 - f, 1 + f] (see JitterPeriod in deadline.h).
    // Without jitter a fixed-period watchdog can phase-lock with periodic behaviour it
    // is meant to observe — in particular the fault layer's fixed-length stalls — and
    // systematically sample the same phase of every stall window. 0 disables jitter.
    double jitter_fraction = 0.2;
    // Seeds the jitter RNG, so a sweep can decorrelate its watchdogs per trial.
    std::uint64_t jitter_seed = 0x5EEDD06;
  };

  // Starts a background thread that calls anomaly_detector()->Poll(NowNanos()) every
  // (jittered) period. Requires an attached detector; no-op if already started. The
  // watchdog is a *sampler*: it can only flag waits older than the detector's
  // stuck_wait_nanos, so detection latency is period + threshold (unlike DetRuntime's
  // exact diagnosis). The period chosen for each cycle is exported through the metrics
  // registry as gauge "anomaly/watchdog_period_ms".
  void StartAnomalyWatchdog(WatchdogOptions options);
  void StartAnomalyWatchdog(std::chrono::milliseconds period) {
    WatchdogOptions options;
    options.period = period;
    StartAnomalyWatchdog(options);
  }

  // Stops and joins the watchdog thread (also called by the destructor).
  void StopAnomalyWatchdog();

 private:
  std::atomic<std::uint32_t> next_thread_id_{1};

  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::thread watchdog_;
};

}  // namespace syneval

#endif  // SYNEVAL_RUNTIME_OS_RUNTIME_H_
