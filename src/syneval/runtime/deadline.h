// Deadline: the one steady-clock timeout type shared by every wall-clock wait loop.
//
// Hand-rolled `now() + period` arithmetic used to be duplicated across the OsRuntime
// watchdog, timed waits, and the bench harness, each with its own off-by-one flavour
// (re-deriving the target on every spurious wakeup stretches the sleep). A Deadline is
// computed once and then only *read*: `wait_until(lock, d.time_point(), pred)` resumes
// the same absolute instant no matter how many times the wait is interrupted.
//
// JitterPeriod is the companion for periodic loops that must not phase-lock with the
// thing they are observing: the fault-injection layer can stall threads for fixed step
// counts, and a fixed-period watchdog whose wakeups alias such a stall samples the
// system at the same phase every cycle and can systematically miss (or systematically
// double-see) the stall window. A ±fraction uniform jitter around the base period
// breaks the alias while keeping the mean sampling rate.

#ifndef SYNEVAL_RUNTIME_DEADLINE_H_
#define SYNEVAL_RUNTIME_DEADLINE_H_

#include <chrono>
#include <cstdint>
#include <random>

namespace syneval {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  // A deadline `duration` from now.
  static Deadline After(Clock::duration duration) { return Deadline(Clock::now() + duration); }

  // A deadline `nanos` nanoseconds from now (the RtCondVar::WaitFor unit).
  static Deadline AfterNanos(std::uint64_t nanos) {
    return After(std::chrono::nanoseconds(nanos));
  }

  // The absolute instant, for wait_until-style APIs (immune to spurious-wakeup drift).
  Clock::time_point time_point() const { return when_; }

  bool Expired() const { return Clock::now() >= when_; }

  // Time left, clamped at zero once expired (safe to pass to wait_for).
  Clock::duration Remaining() const {
    const Clock::time_point now = Clock::now();
    return now >= when_ ? Clock::duration::zero() : when_ - now;
  }

 private:
  explicit Deadline(Clock::time_point when) : when_(when) {}

  Clock::time_point when_;
};

// `period` scaled by a uniform factor in [1 - fraction, 1 + fraction], never below one
// nanosecond. fraction <= 0 returns the period unchanged (jitter disabled).
inline std::chrono::nanoseconds JitterPeriod(std::chrono::nanoseconds period, double fraction,
                                             std::mt19937_64& rng) {
  if (fraction <= 0.0 || period.count() <= 0) {
    return period;
  }
  std::uniform_real_distribution<double> factor(1.0 - fraction, 1.0 + fraction);
  const double jittered = static_cast<double>(period.count()) * factor(rng);
  return std::chrono::nanoseconds(jittered < 1.0 ? 1 : static_cast<std::int64_t>(jittered));
}

}  // namespace syneval

#endif  // SYNEVAL_RUNTIME_DEADLINE_H_
