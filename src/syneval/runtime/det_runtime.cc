#include "syneval/runtime/det_runtime.h"

#include <cassert>
#include <deque>
#include <sstream>
#include <utility>

#include "syneval/anomaly/detector.h"
#include "syneval/telemetry/tracer.h"

namespace syneval {

namespace {

// Logical thread states. Kept as plain ints in the header to keep Tcb opaque.
enum TcbState : int {
  kReady = 0,
  kRunning = 1,
  kBlockedMutex = 2,
  kBlockedCond = 3,
  kBlockedJoin = 4,
  kFinished = 5,
};

const char* StateName(int state) {
  switch (state) {
    case kReady:
      return "ready";
    case kRunning:
      return "running";
    case kBlockedMutex:
      return "blocked-on-mutex";
    case kBlockedCond:
      return "blocked-on-condvar";
    case kBlockedJoin:
      return "blocked-on-join";
    case kFinished:
      return "finished";
  }
  return "?";
}

// Identity of the managed thread currently executing on this OS thread (type-erased; the
// Tcb type is private to DetRuntime).
thread_local void* g_current_det_tcb = nullptr;

}  // namespace

struct DetRuntime::Tcb {
  std::uint32_t id = 0;
  std::string name;
  int state = kReady;
  bool token = false;  // Permission to run, granted by the driver.
  std::uint64_t ready_since = 0;
  const void* wait_object = nullptr;
  std::string wait_desc;
  std::vector<Tcb*> joiners;
  std::function<void()> body;
  std::thread os_thread;
};

// ---------------------------------------------------------------------------------------
// Primitives. All fields are manipulated under DetRuntime::mu_; since at most one managed
// thread runs at a time, there is no data-level concurrency beyond that lock.

class DetRuntime::DetMutex : public RtMutex {
 public:
  explicit DetMutex(DetRuntime* rt) : rt_(rt) {}

  // Sentinel owner for acquisitions from the unmanaged driver thread while the
  // scheduler is idle (introspection before/after Run()): there is no concurrency
  // then, so acquisition is immediate.
  static Tcb* ExternalOwner() { return reinterpret_cast<Tcb*>(-1); }

  void Lock() override {
    if (g_current_det_tcb == nullptr) {
      // Unmanaged caller (e.g. a test inspecting state after Run()): legal only while
      // the scheduler is idle, where the lock is guaranteed free.
      std::unique_lock<std::mutex> lock(rt_->mu_);
      assert(!rt_->running_ && "DetMutex::Lock from an unmanaged thread during Run()");
      assert(holder_ == nullptr && "DetMutex::Lock: lock leaked by a managed thread");
      holder_ = ExternalOwner();
      return;
    }
    Tcb* self = rt_->CurrentTcbChecked();
    std::unique_lock<std::mutex> lock(rt_->mu_);
    if (rt_->abort_) {
      return;  // Teardown mode: never block, never mutate logical state.
    }
    if (rt_->options_.preempt_before_lock) {
      rt_->SwitchOutLocked(lock, self, kReady, nullptr, "preempt before lock");
    }
    AnomalyDetector* det = rt_->anomaly_detector();
    while (holder_ != nullptr) {
      waiters_.push_back(self);
      if (det != nullptr) {
        det->OnBlock(self->id, this);
      }
      rt_->SwitchOutLocked(lock, self, kBlockedMutex, this,
                           "mutex (held by " + holder_->name + ")");
      if (det != nullptr) {
        det->OnWake(self->id, this);
      }
    }
    holder_ = self;
    if (det != nullptr) {
      det->OnAcquire(self->id, this);
    }
  }

  void Unlock() override {
    if (g_current_det_tcb == nullptr) {
      std::unique_lock<std::mutex> lock(rt_->mu_);
      assert(holder_ == ExternalOwner() && "DetMutex::Unlock from an unexpected thread");
      holder_ = nullptr;
      return;
    }
    Tcb* self = rt_->CurrentTcbChecked();
    std::unique_lock<std::mutex> lock(rt_->mu_);
    if (rt_->abort_) {
      return;
    }
    assert(holder_ == self && "DetMutex::Unlock by non-owner");
    holder_ = nullptr;
    if (AnomalyDetector* det = rt_->anomaly_detector()) {
      det->OnRelease(self->id, this);
    }
    for (Tcb* waiter : waiters_) {
      rt_->MakeReadyLocked(waiter);
    }
    waiters_.clear();
  }

  DetRuntime* rt_;
  Tcb* holder_ = nullptr;
  std::vector<Tcb*> waiters_;
};

class DetRuntime::DetCondVar : public RtCondVar {
 public:
  explicit DetCondVar(DetRuntime* rt) : rt_(rt) {}

  void Wait(RtMutex& mutex) override {
    Tcb* self = rt_->CurrentTcbChecked();
    auto* m = static_cast<DetMutex*>(&mutex);
    std::unique_lock<std::mutex> lock(rt_->mu_);
    if (rt_->abort_) {
      return;
    }
    assert(m->holder_ == self && "RtCondVar::Wait without holding the mutex");
    AnomalyDetector* det = rt_->anomaly_detector();
    // Atomically release the mutex and join the wait set.
    m->holder_ = nullptr;
    if (det != nullptr) {
      det->OnRelease(self->id, m);
    }
    for (Tcb* waiter : m->waiters_) {
      rt_->MakeReadyLocked(waiter);
    }
    m->waiters_.clear();
    waiters_.push_back(self);
    if (det != nullptr) {
      det->OnBlock(self->id, this);
    }
    rt_->SwitchOutLocked(lock, self, kBlockedCond, this, "condvar");
    if (det != nullptr) {
      det->OnWake(self->id, this);
    }
    if (TelemetryTracer* tracer = rt_->tracer()) {
      // rt_->mu_ is held here, so read step_ directly (NowNanos() would self-deadlock).
      tracer->OnWake(this, self->id, rt_->step_ * 1000);
    }
    // Re-acquire the mutex before returning (possibly blocking again).
    while (m->holder_ != nullptr) {
      m->waiters_.push_back(self);
      if (det != nullptr) {
        det->OnBlock(self->id, m);
      }
      rt_->SwitchOutLocked(lock, self, kBlockedMutex, m,
                           "mutex reacquire (held by " + m->holder_->name + ")");
      if (det != nullptr) {
        det->OnWake(self->id, m);
      }
    }
    m->holder_ = self;
    if (det != nullptr) {
      det->OnAcquire(self->id, m);
    }
  }

  void NotifyOne() override { Notify(/*all=*/false); }
  void NotifyAll() override { Notify(/*all=*/true); }

 private:
  void Notify(bool all) {
    if (g_current_det_tcb == nullptr) {
      // Unmanaged caller while the scheduler is idle: just mark waiters runnable.
      std::unique_lock<std::mutex> lock(rt_->mu_);
      assert(!rt_->running_ && "RtCondVar notify from an unmanaged thread during Run()");
      for (Tcb* waiter : waiters_) {
        rt_->MakeReadyLocked(waiter);
      }
      waiters_.clear();
      return;
    }
    Tcb* self = rt_->CurrentTcbChecked();
    std::unique_lock<std::mutex> lock(rt_->mu_);
    if (rt_->abort_) {
      return;
    }
    if (AnomalyDetector* det = rt_->anomaly_detector()) {
      det->OnSignal(self->id, this, static_cast<int>(waiters_.size()), all);
    }
    if (TelemetryTracer* tracer = rt_->tracer()) {
      // rt_->mu_ is held here, so read step_ directly (NowNanos() would self-deadlock).
      tracer->OnSignal(this, self->id, rt_->step_ * 1000, all);
    }
    if (!waiters_.empty()) {
      if (all) {
        for (Tcb* waiter : waiters_) {
          rt_->MakeReadyLocked(waiter);
        }
        waiters_.clear();
      } else {
        Tcb* waiter = waiters_.front();
        waiters_.pop_front();
        rt_->MakeReadyLocked(waiter);
      }
    }
    if (rt_->options_.preempt_after_notify) {
      rt_->SwitchOutLocked(lock, self, kReady, nullptr, "preempt after notify");
    }
  }

  DetRuntime* rt_;
  std::deque<Tcb*> waiters_;
};

class DetRuntime::DetThread : public RtThread {
 public:
  DetThread(DetRuntime* rt, Tcb* tcb) : rt_(rt), tcb_(tcb) {}

  void Join() override {
    void* raw = g_current_det_tcb;
    if (raw != nullptr) {
      // Join from a managed thread: block until the target finishes.
      Tcb* self = static_cast<Tcb*>(raw);
      std::unique_lock<std::mutex> lock(rt_->mu_);
      if (rt_->abort_ || tcb_->state == kFinished) {
        return;
      }
      tcb_->joiners.push_back(self);
      AnomalyDetector* det = rt_->anomaly_detector();
      if (det != nullptr) {
        det->OnBlock(self->id, tcb_);
      }
      rt_->SwitchOutLocked(lock, self, kBlockedJoin, tcb_, "join(" + tcb_->name + ")");
      if (det != nullptr) {
        det->OnWake(self->id, tcb_);
      }
    } else {
      // Join from the unmanaged driver thread: only meaningful after Run() returned, at
      // which point every managed thread has finished.
      std::unique_lock<std::mutex> lock(rt_->mu_);
      assert(!rt_->running_ && "DetThread::Join from the driver while Run() is active");
      assert((tcb_->state == kFinished || !rt_->ran_) &&
             "DetThread::Join from the driver before Run()");
    }
  }

  std::uint32_t id() const override { return tcb_->id; }

 private:
  DetRuntime* rt_;
  Tcb* tcb_;
};

// ---------------------------------------------------------------------------------------

DetRuntime::DetRuntime(std::unique_ptr<Schedule> schedule)
    : DetRuntime(std::move(schedule), Options()) {}

DetRuntime::DetRuntime(std::unique_ptr<Schedule> schedule, Options options)
    : schedule_(std::move(schedule)), options_(options) {}

DetRuntime::~DetRuntime() {
  // If Run() was never called (or aborted early), tear down any parked threads.
  std::unique_lock<std::mutex> lock(mu_);
  abort_ = true;
  for (auto& tcb : threads_) {
    if (tcb->state != kFinished) {
      tcb->token = true;
    }
  }
  cv_.notify_all();
  cv_.wait(lock, [&] {
    for (auto& tcb : threads_) {
      if (tcb->state != kFinished) {
        return false;
      }
    }
    return true;
  });
  lock.unlock();
  for (auto& tcb : threads_) {
    if (tcb->os_thread.joinable()) {
      tcb->os_thread.join();
    }
  }
}

std::unique_ptr<RtMutex> DetRuntime::CreateMutex() {
  auto mutex = std::make_unique<DetMutex>(this);
  if (AnomalyDetector* det = anomaly_detector()) {
    det->RegisterResource(mutex.get(), ResourceKind::kLock, "mutex");
  }
  return mutex;
}

std::unique_ptr<RtCondVar> DetRuntime::CreateCondVar() {
  auto cv = std::make_unique<DetCondVar>(this);
  if (AnomalyDetector* det = anomaly_detector()) {
    det->RegisterResource(cv.get(), ResourceKind::kCondition, "condvar");
  }
  return cv;
}

std::unique_ptr<RtThread> DetRuntime::StartThread(std::string name,
                                                  std::function<void()> body) {
  std::unique_lock<std::mutex> lock(mu_);
  auto tcb = std::make_unique<Tcb>();
  Tcb* raw = tcb.get();
  raw->id = static_cast<std::uint32_t>(threads_.size()) + 1;
  raw->name = std::move(name);
  raw->body = std::move(body);
  raw->ready_since = step_;
  if (abort_) {
    raw->state = kFinished;  // Too late to run anything.
  } else {
    raw->state = kReady;
    if (AnomalyDetector* det = anomaly_detector()) {
      // A thread is modelled as a lock held by itself for its lifetime, so Join()
      // participates in the wait-for graph like any other acquisition.
      det->RegisterThread(raw->id, raw->name);
      det->RegisterResource(raw, ResourceKind::kLock, "thread:" + raw->name);
      det->OnAcquire(raw->id, raw);
    }
    raw->os_thread = std::thread([this, raw] {
      g_current_det_tcb = raw;
      bool run_body = false;
      {
        std::unique_lock<std::mutex> thread_lock(mu_);
        cv_.wait(thread_lock, [&] { return raw->token; });
        run_body = !abort_;
      }
      if (run_body) {
        try {
          raw->body();
        } catch (const AbortException&) {
          // Unwound during teardown; fall through to the finished transition.
        }
      }
      {
        std::unique_lock<std::mutex> thread_lock(mu_);
        raw->state = kFinished;
        raw->token = false;
        if (AnomalyDetector* det = anomaly_detector()) {
          det->OnRelease(raw->id, raw);
          det->OnThreadFinish(raw->id);
        }
        for (Tcb* joiner : raw->joiners) {
          MakeReadyLocked(joiner);
        }
        raw->joiners.clear();
        cv_.notify_all();
      }
    });
  }
  threads_.push_back(std::move(tcb));
  return std::make_unique<DetThread>(this, raw);
}

void DetRuntime::Yield() {
  Tcb* self = CurrentTcbChecked();
  std::unique_lock<std::mutex> lock(mu_);
  if (abort_) {
    return;
  }
  SwitchOutLocked(lock, self, kReady, nullptr, "yield");
}

std::uint32_t DetRuntime::CurrentThreadId() {
  void* raw = g_current_det_tcb;
  return raw == nullptr ? 0 : static_cast<Tcb*>(raw)->id;
}

std::uint64_t DetRuntime::NowNanos() {
  std::lock_guard<std::mutex> lock(mu_);
  return step_ * 1000;
}

DetRuntime::RunResult DetRuntime::Run() {
  RunResult result;
  std::unique_lock<std::mutex> lock(mu_);
  assert(!ran_ && "DetRuntime::Run() may be called at most once");
  ran_ = true;
  running_ = true;

  std::vector<Tcb*> ready;
  std::vector<SchedCandidate> candidates;
  while (true) {
    ready.clear();
    candidates.clear();
    bool all_finished = true;
    for (auto& tcb : threads_) {
      if (tcb->state == kReady) {
        ready.push_back(tcb.get());
        candidates.push_back(SchedCandidate{tcb->id, tcb->ready_since});
      }
      if (tcb->state != kFinished) {
        all_finished = false;
      }
    }
    if (ready.empty()) {
      if (all_finished) {
        result.completed = true;
      } else {
        result.deadlocked = true;
        result.report = BuildStuckReportLocked("deadlock: no runnable threads");
        if (AnomalyDetector* det = anomaly_detector()) {
          // Exact diagnosis: every thread is parked at a scheduling point, so the
          // wait-for graph is complete and the classification has no false positives.
          det->DiagnoseStuck();
          for (const Anomaly& anomaly : det->anomalies()) {
            result.report += "  " + anomaly.ToString() + "\n";
          }
        }
      }
      break;
    }
    if (step_ >= options_.max_steps) {
      result.step_limit = true;
      result.report = BuildStuckReportLocked("step limit exceeded (possible livelock)");
      break;
    }
    ++step_;
    const std::size_t index = schedule_->Pick(candidates, step_);
    Tcb* chosen = ready[index < ready.size() ? index : 0];
    chosen->state = kRunning;
    chosen->token = true;
    cv_.notify_all();
    cv_.wait(lock, [&] { return chosen->state != kRunning; });
  }

  if (!result.completed) {
    // Teardown: release every stuck thread with the abort flag so it unwinds.
    abort_ = true;
    for (auto& tcb : threads_) {
      if (tcb->state != kFinished) {
        tcb->token = true;
      }
    }
    cv_.notify_all();
    cv_.wait(lock, [&] {
      for (auto& tcb : threads_) {
        if (tcb->state != kFinished) {
          return false;
        }
      }
      return true;
    });
  }
  running_ = false;
  result.steps = step_;
  lock.unlock();
  for (auto& tcb : threads_) {
    if (tcb->os_thread.joinable()) {
      tcb->os_thread.join();
    }
  }
  return result;
}

bool DetRuntime::Aborting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return abort_;
}

void DetRuntime::SwitchOutLocked(std::unique_lock<std::mutex>& lock, Tcb* tcb, int state,
                                 const void* wait_object, std::string wait_desc) {
  if (abort_) {
    throw AbortException{};
  }
  tcb->state = state;
  tcb->token = false;
  tcb->wait_object = wait_object;
  tcb->wait_desc = std::move(wait_desc);
  if (state == kReady) {
    tcb->ready_since = step_;
  }
  cv_.notify_all();
  cv_.wait(lock, [&] { return tcb->token; });
  if (abort_) {
    throw AbortException{};
  }
  // The driver set state to kRunning when granting the token.
  tcb->wait_object = nullptr;
  tcb->wait_desc.clear();
}

void DetRuntime::MakeReadyLocked(Tcb* tcb) {
  if (tcb->state == kBlockedMutex || tcb->state == kBlockedCond || tcb->state == kBlockedJoin) {
    tcb->state = kReady;
    tcb->ready_since = step_;
  }
}

DetRuntime::Tcb* DetRuntime::CurrentTcbChecked() const {
  void* raw = g_current_det_tcb;
  assert(raw != nullptr && "blocking DetRuntime primitive used from an unmanaged thread");
  return static_cast<Tcb*>(raw);
}

std::string DetRuntime::BuildStuckReportLocked(const char* reason) {
  std::ostringstream os;
  os << reason << " after " << step_ << " steps (schedule: " << schedule_->Describe() << ")\n";
  for (auto& tcb : threads_) {
    if (tcb->state == kFinished) {
      continue;
    }
    os << "  t" << tcb->id << " '" << tcb->name << "': " << StateName(tcb->state);
    if (!tcb->wait_desc.empty()) {
      os << " [" << tcb->wait_desc << "]";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace syneval
