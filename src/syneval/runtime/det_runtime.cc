#include "syneval/runtime/det_runtime.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <sstream>
#include <utility>

#include "syneval/anomaly/detector.h"
#include "syneval/fault/fault.h"
#include "syneval/telemetry/flight_recorder.h"
#include "syneval/telemetry/tracer.h"

namespace syneval {

namespace {

// Logical thread states. Kept as plain ints in the header to keep Tcb opaque.
enum TcbState : int {
  kReady = 0,
  kRunning = 1,
  kBlockedMutex = 2,
  kBlockedCond = 3,
  kBlockedJoin = 4,
  kFinished = 5,
};

const char* StateName(int state) {
  switch (state) {
    case kReady:
      return "ready";
    case kRunning:
      return "running";
    case kBlockedMutex:
      return "blocked-on-mutex";
    case kBlockedCond:
      return "blocked-on-condvar";
    case kBlockedJoin:
      return "blocked-on-join";
    case kFinished:
      return "finished";
  }
  return "?";
}

// Identity of the managed thread currently executing on this OS thread (type-erased; the
// Tcb type is private to DetRuntime).
thread_local void* g_current_det_tcb = nullptr;

}  // namespace

struct DetRuntime::Tcb {
  std::uint32_t id = 0;
  std::string name;
  int state = kReady;
  bool token = false;  // Permission to run, granted by the driver.
  std::uint64_t ready_since = 0;
  // Timed condition waits (WaitFor): absolute step at which the driver force-wakes the
  // thread (0 = untimed), and whether the last wake was that deadline rather than a
  // notification. Owned by the waiting thread; the driver only reads wake_deadline and
  // sets timed_out while the thread is parked in kBlockedCond.
  std::uint64_t wake_deadline = 0;
  bool timed_out = false;
  const void* wait_object = nullptr;
  std::string wait_desc;
  std::vector<Tcb*> joiners;
  std::function<void()> body;
  std::thread os_thread;
};

// ---------------------------------------------------------------------------------------
// Primitives. All fields are manipulated under DetRuntime::mu_; since at most one managed
// thread runs at a time, there is no data-level concurrency beyond that lock.

class DetRuntime::DetMutex : public RtMutex {
 public:
  explicit DetMutex(DetRuntime* rt) : rt_(rt) {}

  // Sentinel owner for acquisitions from the unmanaged driver thread while the
  // scheduler is idle (introspection before/after Run()): there is no concurrency
  // then, so acquisition is immediate.
  static Tcb* ExternalOwner() { return reinterpret_cast<Tcb*>(-1); }

  void Lock() override {
    if (g_current_det_tcb == nullptr) {
      // Unmanaged caller (e.g. a test inspecting state after Run()): legal only while
      // the scheduler is idle, where the lock is guaranteed free.
      std::unique_lock<std::mutex> lock(rt_->mu_);
      assert(!rt_->running_ && "DetMutex::Lock from an unmanaged thread during Run()");
      assert(holder_ == nullptr && "DetMutex::Lock: lock leaked by a managed thread");
      holder_ = ExternalOwner();
      return;
    }
    Tcb* self = rt_->CurrentTcbChecked();
    std::unique_lock<std::mutex> lock(rt_->mu_);
    if (rt_->abort_) {
      return;  // Teardown mode: never block, never mutate logical state.
    }
    if (rt_->options_.preempt_before_lock) {
      rt_->SwitchOutLocked(lock, self, kReady, nullptr, "preempt before lock");
    }
    if (FaultDecision fault = rt_->FaultDecisionLocked(self, FaultSite::kLockPre)) {
      if (fault.kind == FaultKind::kKillThread) {
        // Before contending: the thread dies holding nothing extra.
        throw ThreadKilledFault{};
      }
      if (fault.kind == FaultKind::kDelayLock) {
        for (std::uint64_t i = 0; i < fault.steps && !rt_->abort_; ++i) {
          rt_->SwitchOutLocked(lock, self, kReady, nullptr, "fault: delay-lock");
        }
      }
    }
    AnomalyDetector* det = rt_->anomaly_detector();
    FlightRecorder* flight = rt_->flight_recorder();
    while (holder_ != nullptr) {
      waiters_.push_back(self);
      if (det != nullptr) {
        det->OnBlock(self->id, this);
      }
      if (flight != nullptr) {
        // mu_ is held at every site in this file: read step_ directly (NowNanos()
        // would self-deadlock), matching the tracer convention below.
        flight->Record(self->id, FlightEventType::kBlock, this, rt_->step_ * 1000);
      }
      rt_->SwitchOutLocked(lock, self, kBlockedMutex, this,
                           "mutex (held by " + holder_->name + ")");
      if (det != nullptr) {
        det->OnWake(self->id, this);
      }
      if (flight != nullptr) {
        flight->Record(self->id, FlightEventType::kWake, this, rt_->step_ * 1000);
      }
    }
    holder_ = self;
    if (det != nullptr) {
      det->OnAcquire(self->id, this);
    }
    if (flight != nullptr) {
      flight->Record(self->id, FlightEventType::kAcquire, this, rt_->step_ * 1000);
    }
    if (FaultDecision fault = rt_->FaultDecisionLocked(self, FaultSite::kLockPost)) {
      if (fault.kind == FaultKind::kKillThread) {
        // Mid-protocol death: the thread dies owning this mutex. Lock() throws before
        // any RAII holder is constructed, so nothing ever unlocks it — peers block on
        // a lock whose owner is finished, which is exactly the damage being modelled.
        throw ThreadKilledFault{};
      }
      if (fault.kind == FaultKind::kStall) {
        // Hold the lock for `steps` scheduler steps doing nothing. The staller stays
        // runnable (no deadlock), but every peer needing this lock starves meanwhile.
        for (std::uint64_t i = 0; i < fault.steps && !rt_->abort_; ++i) {
          rt_->SwitchOutLocked(lock, self, kReady, nullptr, "fault: stall in critical section");
        }
      }
    }
  }

  void Unlock() override {
    if (g_current_det_tcb == nullptr) {
      std::unique_lock<std::mutex> lock(rt_->mu_);
      assert(holder_ == ExternalOwner() && "DetMutex::Unlock from an unexpected thread");
      holder_ = nullptr;
      return;
    }
    Tcb* self = rt_->CurrentTcbChecked();
    std::unique_lock<std::mutex> lock(rt_->mu_);
    if (rt_->abort_) {
      return;
    }
    assert(holder_ == self && "DetMutex::Unlock by non-owner");
    holder_ = nullptr;
    if (AnomalyDetector* det = rt_->anomaly_detector()) {
      det->OnRelease(self->id, this);
    }
    if (FlightRecorder* flight = rt_->flight_recorder()) {
      flight->Record(self->id, FlightEventType::kRelease, this, rt_->step_ * 1000);
    }
    for (Tcb* waiter : waiters_) {
      rt_->MakeReadyLocked(waiter);
    }
    waiters_.clear();
  }

  DetRuntime* rt_;
  Tcb* holder_ = nullptr;
  std::vector<Tcb*> waiters_;
};

class DetRuntime::DetCondVar : public RtCondVar {
 public:
  explicit DetCondVar(DetRuntime* rt) : rt_(rt) {}

  void Wait(RtMutex& mutex) override { WaitCommon(mutex, /*timeout_nanos=*/0); }

  bool WaitFor(RtMutex& mutex, std::uint64_t timeout_nanos) override {
    return WaitCommon(mutex, timeout_nanos == 0 ? 1 : timeout_nanos);
  }

  void NotifyOne() override { Notify(/*all=*/false); }
  void NotifyAll() override { Notify(/*all=*/true); }

 private:
  // Shared Wait/WaitFor body. timeout_nanos == 0 means untimed; otherwise the wait is
  // bounded by a virtual-step budget of ceil(timeout_nanos / 1000) scheduler steps
  // (DetRuntime's NowNanos is step_ * 1000). Returns false iff the deadline fired.
  bool WaitCommon(RtMutex& mutex, std::uint64_t timeout_nanos) {
    Tcb* self = rt_->CurrentTcbChecked();
    auto* m = static_cast<DetMutex*>(&mutex);
    std::unique_lock<std::mutex> lock(rt_->mu_);
    if (rt_->abort_) {
      return true;
    }
    assert(m->holder_ == self && "RtCondVar::Wait without holding the mutex");
    AnomalyDetector* det = rt_->anomaly_detector();
    FlightRecorder* flight = rt_->flight_recorder();
    bool spurious = false;
    if (FaultDecision fault = rt_->FaultDecisionLocked(self, FaultSite::kWait)) {
      if (fault.kind == FaultKind::kKillThread) {
        // Thrown before the mutex is surrendered: the thread dies owning it.
        throw ThreadKilledFault{};
      }
      if (fault.kind == FaultKind::kSpuriousWakeup) {
        spurious = true;
      }
    }
    // Atomically release the mutex and join the wait set.
    m->holder_ = nullptr;
    if (det != nullptr) {
      det->OnRelease(self->id, m);
    }
    if (flight != nullptr) {
      flight->Record(self->id, FlightEventType::kRelease, m, rt_->step_ * 1000);
    }
    for (Tcb* waiter : m->waiters_) {
      rt_->MakeReadyLocked(waiter);
    }
    m->waiters_.clear();
    bool notified = true;
    if (spurious) {
      // Spurious-wakeup fault: park for one scheduling step and resume without ever
      // joining the wait set — no signal exists and none is consumed, which is what
      // makes the wakeup spurious to detector and telemetry alike.
      rt_->SwitchOutLocked(lock, self, kReady, nullptr, "fault: spurious wakeup");
    } else {
      waiters_.push_back(self);
      if (det != nullptr) {
        det->OnBlock(self->id, this);
      }
      if (flight != nullptr) {
        flight->Record(self->id, FlightEventType::kBlock, this, rt_->step_ * 1000);
      }
      if (timeout_nanos > 0) {
        const std::uint64_t budget = (timeout_nanos + 999) / 1000;
        self->wake_deadline = rt_->step_ + (budget == 0 ? 1 : budget);
        self->timed_out = false;
      }
      rt_->SwitchOutLocked(lock, self, kBlockedCond, this,
                           timeout_nanos > 0 ? "condvar (timed)" : "condvar");
      if (timeout_nanos > 0) {
        notified = !self->timed_out;
        self->wake_deadline = 0;
        self->timed_out = false;
        if (!notified) {
          // Deadline wake: leave the wait set ourselves (a notification that raced in
          // between the deadline and this cleanup may already have removed us).
          auto it = std::find(waiters_.begin(), waiters_.end(), self);
          if (it != waiters_.end()) {
            waiters_.erase(it);
          }
        }
      }
      if (det != nullptr) {
        det->OnWake(self->id, this);
      }
      if (flight != nullptr) {
        // arg = 1 when the wake was a notification, 0 when the deadline fired.
        flight->Record(self->id, FlightEventType::kWake, this, rt_->step_ * 1000,
                       notified ? 1 : 0);
      }
      if (notified) {
        if (TelemetryTracer* tracer = rt_->tracer()) {
          // rt_->mu_ is held here, so read step_ directly (NowNanos() would
          // self-deadlock). Timeout wakes draw no flow edge: no signal caused them.
          tracer->OnWake(this, self->id, rt_->step_ * 1000);
        }
      }
    }
    // Re-acquire the mutex before returning (possibly blocking again).
    while (m->holder_ != nullptr) {
      m->waiters_.push_back(self);
      if (det != nullptr) {
        det->OnBlock(self->id, m);
      }
      if (flight != nullptr) {
        flight->Record(self->id, FlightEventType::kBlock, m, rt_->step_ * 1000);
      }
      rt_->SwitchOutLocked(lock, self, kBlockedMutex, m,
                           "mutex reacquire (held by " + m->holder_->name + ")");
      if (det != nullptr) {
        det->OnWake(self->id, m);
      }
      if (flight != nullptr) {
        flight->Record(self->id, FlightEventType::kWake, m, rt_->step_ * 1000);
      }
    }
    m->holder_ = self;
    if (det != nullptr) {
      det->OnAcquire(self->id, m);
    }
    if (flight != nullptr) {
      flight->Record(self->id, FlightEventType::kAcquire, m, rt_->step_ * 1000);
    }
    return notified;
  }

  void Notify(bool all) {
    if (g_current_det_tcb == nullptr) {
      // Unmanaged caller while the scheduler is idle: just mark waiters runnable.
      std::unique_lock<std::mutex> lock(rt_->mu_);
      assert(!rt_->running_ && "RtCondVar notify from an unmanaged thread during Run()");
      for (Tcb* waiter : waiters_) {
        rt_->MakeReadyLocked(waiter);
      }
      waiters_.clear();
      return;
    }
    Tcb* self = rt_->CurrentTcbChecked();
    std::unique_lock<std::mutex> lock(rt_->mu_);
    if (rt_->abort_) {
      return;
    }
    if (FaultDecision fault = rt_->FaultDecisionLocked(
            self, all ? FaultSite::kNotifyAll : FaultSite::kNotifyOne)) {
      if (fault.kind == FaultKind::kKillThread) {
        throw ThreadKilledFault{};
      }
      if (fault.kind == FaultKind::kDropSignal) {
        // The notify vanishes below the mechanism: no waiter wakes and neither the
        // detector's signal accounting nor the tracer's flow edge ever sees it — a
        // ground-truth lost signal the detector must infer from its consequences.
        return;
      }
    }
    if (AnomalyDetector* det = rt_->anomaly_detector()) {
      det->OnSignal(self->id, this, static_cast<int>(waiters_.size()), all);
    }
    if (TelemetryTracer* tracer = rt_->tracer()) {
      // rt_->mu_ is held here, so read step_ directly (NowNanos() would self-deadlock).
      tracer->OnSignal(this, self->id, rt_->step_ * 1000, all);
    }
    if (FlightRecorder* flight = rt_->flight_recorder()) {
      // arg = waiters before delivery: a signal with arg 0 fell on an empty queue —
      // the seed of every lost wakeup the postmortem explains.
      flight->Record(self->id,
                     all ? FlightEventType::kBroadcast : FlightEventType::kSignal, this,
                     rt_->step_ * 1000, waiters_.size());
    }
    if (all) {
      for (Tcb* waiter : waiters_) {
        rt_->MakeReadyLocked(waiter);
      }
      waiters_.clear();
    } else {
      // Deliver to the first waiter still blocked. Entries that already timed out (the
      // driver made them ready but they have not yet run and removed themselves) no
      // longer count as waiters; dropping them here mirrors their own cleanup.
      while (!waiters_.empty()) {
        Tcb* waiter = waiters_.front();
        waiters_.pop_front();
        if (waiter->state == kBlockedCond) {
          rt_->MakeReadyLocked(waiter);
          break;
        }
      }
    }
    if (rt_->options_.preempt_after_notify) {
      rt_->SwitchOutLocked(lock, self, kReady, nullptr, "preempt after notify");
    }
  }

  DetRuntime* rt_;
  std::deque<Tcb*> waiters_;
};

class DetRuntime::DetThread : public RtThread {
 public:
  DetThread(DetRuntime* rt, Tcb* tcb) : rt_(rt), tcb_(tcb) {}

  void Join() override {
    void* raw = g_current_det_tcb;
    if (raw != nullptr) {
      // Join from a managed thread: block until the target finishes.
      Tcb* self = static_cast<Tcb*>(raw);
      std::unique_lock<std::mutex> lock(rt_->mu_);
      if (rt_->abort_ || tcb_->state == kFinished) {
        return;
      }
      tcb_->joiners.push_back(self);
      AnomalyDetector* det = rt_->anomaly_detector();
      if (det != nullptr) {
        det->OnBlock(self->id, tcb_);
      }
      rt_->SwitchOutLocked(lock, self, kBlockedJoin, tcb_, "join(" + tcb_->name + ")");
      if (det != nullptr) {
        det->OnWake(self->id, tcb_);
      }
    } else {
      // Join from the unmanaged driver thread: only meaningful after Run() returned, at
      // which point every managed thread has finished.
      std::unique_lock<std::mutex> lock(rt_->mu_);
      assert(!rt_->running_ && "DetThread::Join from the driver while Run() is active");
      assert((tcb_->state == kFinished || !rt_->ran_) &&
             "DetThread::Join from the driver before Run()");
    }
  }

  std::uint32_t id() const override { return tcb_->id; }

 private:
  DetRuntime* rt_;
  Tcb* tcb_;
};

// ---------------------------------------------------------------------------------------

DetRuntime::DetRuntime(std::unique_ptr<Schedule> schedule)
    : DetRuntime(std::move(schedule), Options()) {}

DetRuntime::DetRuntime(std::unique_ptr<Schedule> schedule, Options options)
    : schedule_(std::move(schedule)), options_(options) {}

DetRuntime::~DetRuntime() {
  // If Run() was never called (or aborted early), tear down any parked threads.
  std::unique_lock<std::mutex> lock(mu_);
  if (AnomalyDetector* det = anomaly_detector()) {
    det->SetAborting(true);
  }
  abort_ = true;
  for (auto& tcb : threads_) {
    if (tcb->state != kFinished) {
      tcb->token = true;
    }
  }
  cv_.notify_all();
  cv_.wait(lock, [&] {
    for (auto& tcb : threads_) {
      if (tcb->state != kFinished) {
        return false;
      }
    }
    return true;
  });
  lock.unlock();
  for (auto& tcb : threads_) {
    if (tcb->os_thread.joinable()) {
      tcb->os_thread.join();
    }
  }
}

std::unique_ptr<RtMutex> DetRuntime::CreateMutex() {
  auto mutex = std::make_unique<DetMutex>(this);
  if (AnomalyDetector* det = anomaly_detector()) {
    det->RegisterResource(mutex.get(), ResourceKind::kLock, "mutex");
  }
  if (FlightRecorder* flight = flight_recorder()) {
    flight->RegisterName(mutex.get(), "mutex");
  }
  return mutex;
}

std::unique_ptr<RtCondVar> DetRuntime::CreateCondVar() {
  auto cv = std::make_unique<DetCondVar>(this);
  if (AnomalyDetector* det = anomaly_detector()) {
    det->RegisterResource(cv.get(), ResourceKind::kCondition, "condvar");
  }
  if (FlightRecorder* flight = flight_recorder()) {
    flight->RegisterName(cv.get(), "condvar");
  }
  return cv;
}

std::unique_ptr<RtThread> DetRuntime::StartThread(std::string name,
                                                  std::function<void()> body) {
  std::unique_lock<std::mutex> lock(mu_);
  auto tcb = std::make_unique<Tcb>();
  Tcb* raw = tcb.get();
  raw->id = static_cast<std::uint32_t>(threads_.size()) + 1;
  raw->name = std::move(name);
  raw->body = std::move(body);
  raw->ready_since = step_;
  if (abort_) {
    raw->state = kFinished;  // Too late to run anything.
  } else {
    raw->state = kReady;
    if (AnomalyDetector* det = anomaly_detector()) {
      // A thread is modelled as a lock held by itself for its lifetime, so Join()
      // participates in the wait-for graph like any other acquisition.
      det->RegisterThread(raw->id, raw->name);
      det->RegisterResource(raw, ResourceKind::kLock, "thread:" + raw->name);
      det->OnAcquire(raw->id, raw);
    }
    raw->os_thread = std::thread([this, raw] {
      g_current_det_tcb = raw;
      bool run_body = false;
      {
        std::unique_lock<std::mutex> thread_lock(mu_);
        cv_.wait(thread_lock, [&] { return raw->token; });
        run_body = !abort_;
      }
      if (run_body) {
        try {
          raw->body();
        } catch (const AbortException&) {
          // Unwound during teardown; fall through to the finished transition.
        } catch (const ThreadKilledFault&) {
          // Killed by an injected kill-thread fault. RAII destructors between the
          // injection site and here have already run (releasing locks they guard);
          // anything acquired without a live guard — notably a DetMutex killed inside
          // its own Lock() — stays held forever, which is the modelled damage.
        }
      }
      {
        std::unique_lock<std::mutex> thread_lock(mu_);
        raw->state = kFinished;
        raw->token = false;
        if (AnomalyDetector* det = anomaly_detector()) {
          det->OnRelease(raw->id, raw);
          det->OnThreadFinish(raw->id);
        }
        for (Tcb* joiner : raw->joiners) {
          MakeReadyLocked(joiner);
        }
        raw->joiners.clear();
        cv_.notify_all();
      }
    });
  }
  threads_.push_back(std::move(tcb));
  return std::make_unique<DetThread>(this, raw);
}

void DetRuntime::Yield() {
  Tcb* self = CurrentTcbChecked();
  std::unique_lock<std::mutex> lock(mu_);
  if (abort_) {
    return;
  }
  SwitchOutLocked(lock, self, kReady, nullptr, "yield");
}

std::uint32_t DetRuntime::CurrentThreadId() {
  void* raw = g_current_det_tcb;
  return raw == nullptr ? 0 : static_cast<Tcb*>(raw)->id;
}

std::uint64_t DetRuntime::NowNanos() {
  std::lock_guard<std::mutex> lock(mu_);
  return step_ * 1000;
}

DetRuntime::RunResult DetRuntime::Run() {
  RunResult result;
  std::unique_lock<std::mutex> lock(mu_);
  assert(!ran_ && "DetRuntime::Run() may be called at most once");
  ran_ = true;
  running_ = true;

  std::vector<Tcb*> ready;
  std::vector<SchedCandidate> candidates;
  while (true) {
    if (abort_requested_) {
      // Supervisor-requested end-of-run. The driver holds control, so every
      // non-finished thread is parked at a scheduling point and the wait-for state is
      // diagnosable, exactly as on the deadlock path.
      result.aborted = true;
      result.report = BuildStuckReportLocked("aborted by supervisor");
      if (AnomalyDetector* det = anomaly_detector()) {
        det->DiagnoseStuck();
        for (const Anomaly& anomaly : det->anomalies()) {
          result.report += "  " + anomaly.ToString() + "\n";
        }
      }
      break;
    }
    WakeExpiredTimedWaitersLocked();
    ready.clear();
    candidates.clear();
    bool all_finished = true;
    for (auto& tcb : threads_) {
      if (tcb->state == kReady) {
        ready.push_back(tcb.get());
        candidates.push_back(SchedCandidate{tcb->id, tcb->ready_since});
      }
      if (tcb->state != kFinished) {
        all_finished = false;
      }
    }
    if (ready.empty()) {
      if (all_finished) {
        result.completed = true;
        break;
      }
      // Timed waiters are not deadlocked — their deadlines will fire. With nothing
      // else runnable, jump the virtual clock to the earliest deadline (the analogue
      // of an OS sleeping until the next timer) and re-evaluate. If that deadline
      // lies beyond max_steps, the jump lands there and the step-limit check below
      // ends the run on the next iteration.
      std::uint64_t next_deadline = 0;
      for (auto& tcb : threads_) {
        if (tcb->state == kBlockedCond && tcb->wake_deadline != 0 &&
            (next_deadline == 0 || tcb->wake_deadline < next_deadline)) {
          next_deadline = tcb->wake_deadline;
        }
      }
      if (next_deadline > step_) {
        step_ = next_deadline;
        continue;
      }
      result.deadlocked = true;
      result.report = BuildStuckReportLocked("deadlock: no runnable threads");
      if (AnomalyDetector* det = anomaly_detector()) {
        // Exact diagnosis: every thread is parked at a scheduling point, so the
        // wait-for graph is complete and the classification has no false positives.
        det->DiagnoseStuck();
        for (const Anomaly& anomaly : det->anomalies()) {
          result.report += "  " + anomaly.ToString() + "\n";
        }
      }
      break;
    }
    if (step_ >= options_.max_steps) {
      result.step_limit = true;
      result.report = BuildStuckReportLocked("step limit exceeded (possible livelock)");
      if (options_.diagnose_on_step_limit) {
        if (AnomalyDetector* det = anomaly_detector()) {
          // Every *blocked* thread is parked at a scheduling point, so classifying
          // those remains sound; the runnable threads that kept the clock advancing
          // are simply not classified (see Options::diagnose_on_step_limit).
          det->DiagnoseStuck();
          for (const Anomaly& anomaly : det->anomalies()) {
            result.report += "  " + anomaly.ToString() + "\n";
          }
        }
      }
      break;
    }
    ++step_;
    const std::size_t index = schedule_->Pick(candidates, step_);
    Tcb* chosen = ready[index < ready.size() ? index : 0];
    chosen->state = kRunning;
    chosen->token = true;
    cv_.notify_all();
    cv_.wait(lock, [&] { return chosen->state != kRunning; });
  }

  if (!result.completed) {
    // Teardown: release every stuck thread with the abort flag so it unwinds. Push the
    // aborting state to the detector first — teardown unwinding (and any faults still
    // firing during it) must not be observed, or kill-during-teardown plans would be
    // double-counted as lost wakeups on top of the diagnosis above. The flight recorder
    // is frozen for the same reason: the unwind replays exit events in OS-scheduling
    // order, which would put a nondeterministic tail on the postmortem's event window.
    if (AnomalyDetector* det = anomaly_detector()) {
      det->SetAborting(true);
    }
    if (FlightRecorder* flight = flight_recorder()) {
      flight->Freeze();
    }
    abort_ = true;
    for (auto& tcb : threads_) {
      if (tcb->state != kFinished) {
        tcb->token = true;
      }
    }
    cv_.notify_all();
    cv_.wait(lock, [&] {
      for (auto& tcb : threads_) {
        if (tcb->state != kFinished) {
          return false;
        }
      }
      return true;
    });
  }
  running_ = false;
  result.steps = step_;
  lock.unlock();
  for (auto& tcb : threads_) {
    if (tcb->os_thread.joinable()) {
      tcb->os_thread.join();
    }
  }
  return result;
}

bool DetRuntime::Aborting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return abort_;
}

void DetRuntime::RequestAbort() {
  std::lock_guard<std::mutex> lock(mu_);
  abort_requested_ = true;
  // The driver acts on the flag at its next scheduling decision — i.e. as soon as the
  // currently running managed thread (if any) reaches a scheduling point. The notify
  // covers the no-runnable-threads windows where the driver sleeps in cv_.wait.
  cv_.notify_all();
}

void DetRuntime::SwitchOutLocked(std::unique_lock<std::mutex>& lock, Tcb* tcb, int state,
                                 const void* wait_object, std::string wait_desc) {
  if (abort_) {
    throw AbortException{};
  }
  tcb->state = state;
  tcb->token = false;
  tcb->wait_object = wait_object;
  tcb->wait_desc = std::move(wait_desc);
  if (state == kReady) {
    tcb->ready_since = step_;
  }
  cv_.notify_all();
  cv_.wait(lock, [&] { return tcb->token; });
  if (abort_) {
    throw AbortException{};
  }
  // The driver set state to kRunning when granting the token.
  tcb->wait_object = nullptr;
  tcb->wait_desc.clear();
}

FaultDecision DetRuntime::FaultDecisionLocked(Tcb* tcb, FaultSite site) {
  FaultInjector* injector = fault_injector();
  if (injector == nullptr || abort_) {
    return FaultDecision{};
  }
  // mu_ is held: read step_ directly (NowNanos() would self-deadlock). The injector's
  // own mutex is a leaf, strictly after mu_ in the lock order.
  return injector->Decide(site, tcb->id, step_ * 1000);
}

void DetRuntime::WakeExpiredTimedWaitersLocked() {
  for (auto& tcb : threads_) {
    if (tcb->state == kBlockedCond && tcb->wake_deadline != 0 && step_ >= tcb->wake_deadline) {
      // The waiter resumes with timed_out set and removes itself from its condvar's
      // wait set (see DetCondVar::WaitCommon); the driver never touches that deque.
      tcb->timed_out = true;
      tcb->state = kReady;
      tcb->ready_since = step_;
    }
  }
}

void DetRuntime::MakeReadyLocked(Tcb* tcb) {
  if (tcb->state == kBlockedMutex || tcb->state == kBlockedCond || tcb->state == kBlockedJoin) {
    tcb->state = kReady;
    tcb->ready_since = step_;
  }
}

DetRuntime::Tcb* DetRuntime::CurrentTcbChecked() const {
  void* raw = g_current_det_tcb;
  assert(raw != nullptr && "blocking DetRuntime primitive used from an unmanaged thread");
  return static_cast<Tcb*>(raw);
}

std::string DetRuntime::BuildStuckReportLocked(const char* reason) {
  std::ostringstream os;
  os << reason << " after " << step_ << " steps (schedule: " << schedule_->Describe() << ")\n";
  for (auto& tcb : threads_) {
    if (tcb->state == kFinished) {
      continue;
    }
    os << "  t" << tcb->id << " '" << tcb->name << "': " << StateName(tcb->state);
    if (!tcb->wait_desc.empty()) {
      os << " [" << tcb->wait_desc << "]";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace syneval
