// Schedule sweeping: run a trial under many deterministic schedules and aggregate.
//
// The conformance methodology of this repository (DESIGN.md, experiments E1/E2/E6) checks
// behavioural claims by searching schedules: a trial constructs a fresh DetRuntime with a
// seeded schedule, drives a workload, and checks an oracle. SweepSchedules repeats the
// trial across seeds and reports how many schedules passed, failed, or deadlocked — with
// the failing seeds preserved so any finding can be replayed exactly.
//
// Trials that attach an AnomalyDetector report a full TrialReport instead of a bare
// message; the sweep then additionally aggregates per-anomaly counters (deadlocks, lost
// wakeups, stuck waiters, starvations) and keeps the anomalous seeds for replay.

#ifndef SYNEVAL_RUNTIME_EXPLORE_H_
#define SYNEVAL_RUNTIME_EXPLORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "syneval/anomaly/anomaly.h"

namespace syneval {

// Result of one trial. `message` empty means the trial passed its oracle; `anomalies`
// carries whatever the trial's detector observed (which may be non-zero even on a
// passing trial — e.g. starvation without an outright constraint violation).
struct TrialReport {
  std::string message;
  AnomalyCounts anomalies;
  std::string anomaly_report;  // Detector diagnostics ("" when anomalies are clean).

  // Flight-recorder postmortem for an anomalous trial (telemetry/postmortem.h): the
  // inferred root cause ("deadlock", "lost-signal", ...) and the rendered narrative.
  // Empty when the trial was clean or ran without a recorder attached.
  std::string postmortem_cause;
  std::string postmortem;

  // Flight-ring evictions during the trial (0 without a recorder). Non-zero means
  // postmortem windows for this trial were truncated — degraded observability, not an
  // anomaly, but worth surfacing so ring sizing can be tuned.
  std::uint64_t flight_evicted = 0;

  bool Passed() const { return message.empty(); }
};

// One retained postmortem, tagged with the seed that produced it for exact replay.
struct SeedPostmortem {
  std::uint64_t seed = 0;
  std::string cause;
  std::string text;
};

// Sweeps retain at most this many full postmortems (narratives can be large); the
// rest are counted, not stored. The first-N-in-seed-order rule composes with the
// chunk merge: each chunk keeps its own first N, and concatenation-in-chunk-order
// followed by truncation reproduces the serial sweep's first N exactly.
inline constexpr int kMaxStoredPostmortems = 8;

// Aggregate result of a schedule sweep.
struct SweepOutcome {
  int runs = 0;
  int passes = 0;
  int failures = 0;
  std::vector<std::uint64_t> failing_seeds;
  std::string first_failure;  // Message returned by the first failing trial.

  // Anomaly aggregation (populated by the TrialReport overload of SweepSchedules).
  AnomalyCounts anomalies;                      // Summed over all trials.
  std::vector<std::uint64_t> anomalous_seeds;   // Seeds whose trial saw any anomaly.
  std::string first_anomaly;                    // "seed N: <detector diagnostics>".

  // Postmortems of anomalous trials, first kMaxStoredPostmortems in seed order;
  // `postmortems_total` counts every trial that produced one (stored or not).
  std::vector<SeedPostmortem> postmortems;
  int postmortems_total = 0;

  // Σ TrialReport::flight_evicted over all trials (observability degradation).
  std::uint64_t flight_evicted = 0;

  bool AllPassed() const { return failures == 0; }
  bool AnomalyFree() const { return anomalies.Clean(); }
  // Both rates share `runs` as denominator, and `runs` counts every attempted seed —
  // including trials that abort by throwing (SweepSchedules records those as failures
  // rather than unwinding mid-sweep) — so the two fractions are always comparable.
  // Fraction of schedules on which the trial failed (anomaly probability estimate).
  double FailureRate() const { return runs == 0 ? 0.0 : static_cast<double>(failures) / runs; }
  // Fraction of schedules on which the detector flagged at least one anomaly.
  double AnomalyRate() const {
    return runs == 0 ? 0.0 : static_cast<double>(anomalous_seeds.size()) / runs;
  }
  std::string Summary() const;

  // Renders the stored postmortems (with their replay seeds) as a multi-line block for
  // failure diagnostics — what tier-1 tests append to an unexpected-failure assertion
  // so the narrative lands in the test log instead of requiring a re-run. Empty when no
  // trial produced one. Summary() stays one-line; this is the verbose companion.
  std::string PostmortemDump() const;
};

// Runs `trial(seed)` for seeds base_seed .. base_seed + num_seeds - 1. A trial returns an
// empty string to signal success, or a diagnostic message to signal failure (oracle
// violation, deadlock, ...). Trials are executed sequentially, so they may share
// deterministic state if desired; typically each trial is self-contained.
SweepOutcome SweepSchedules(int num_seeds, const std::function<std::string(std::uint64_t)>& trial,
                            std::uint64_t base_seed = 1);

// As above, for instrumented trials: also sums anomaly counters across trials and keeps
// the seeds (and first diagnostic) of anomalous schedules for exact replay.
SweepOutcome SweepSchedules(int num_seeds,
                            const std::function<TrialReport(std::uint64_t)>& trial,
                            std::uint64_t base_seed = 1);

// Parallel overloads: shard the seed range across a work-stealing worker pool
// (runtime/parallel_sweep.h) and merge deterministically — the returned outcome is
// bit-identical to the serial sweep of the same seeds at any worker count.
// parallel.jobs == 1 falls back to the serial loop on the calling thread; the trial
// must be safe to invoke concurrently otherwise (every self-contained trial is).
struct ParallelOptions;
SweepOutcome SweepSchedules(int num_seeds,
                            const std::function<std::string(std::uint64_t)>& trial,
                            std::uint64_t base_seed, const ParallelOptions& parallel);
SweepOutcome SweepSchedules(int num_seeds,
                            const std::function<TrialReport(std::uint64_t)>& trial,
                            std::uint64_t base_seed, const ParallelOptions& parallel);

// ---------------------------------------------------------------------------------------
// Chaos sweeps: matched fault-on / fault-off runs that calibrate the anomaly detector
// against ground-truth injected faults (see syneval/fault/). Where SweepSchedules asks
// "does this solution misbehave on some schedule?", SweepChaos asks "when we *know* a
// fault was injected, does the detector catch it — and does it stay silent when we
// know nothing was?".

struct FaultPlan;

// What one chaos trial observed. Produced by a trial callback that runs the workload
// under DetRuntime with (fault-on) or without (fault-off) an attached FaultInjector.
struct ChaosTrialOutcome {
  bool completed = false;      // The run finished; oracle verdict is meaningful.
  bool hung = false;           // Deadlock or step-limit: the run never finished.
  bool skipped = false;        // Supervised sweeps: the cell was quarantined before
                               // this seed; nothing ran (fault-off run included).
  bool oracle_failed = false;  // Completed but the recorded trace violated the oracle.
  int injected = 0;            // Faults the injector fired (0 on fault-off runs).
  std::uint64_t first_injection_step = 0;  // Virtual step of the first injection.
  std::uint64_t steps = 0;                 // Scheduler steps the run took.
  int anomalies = 0;                       // Detector findings (any class).
  std::string report;                      // Runtime diagnosis when hung.

  // Flight-recorder postmortem for an anomalous or hung trial (see TrialReport).
  std::string postmortem_cause;
  std::string postmortem;

  // Flight-ring evictions during the trial (see TrialReport::flight_evicted).
  std::uint64_t flight_evicted = 0;
};

// Aggregate of a matched sweep. Every seed is run twice — once with the plan attached,
// once without — so the false-positive rate is measured on the *same* schedules whose
// fault-on twins measure recall.
//
// Metric definitions (docs/FAULT_INJECTION.md discusses soundness):
//   harmful   — fault-on runs where a fault fired AND the run hung. Only these can be
//               "missed": a fault the mechanism absorbed left nothing to detect.
//   recall    — detected_harmful / harmful (−1 when no run was harmful: vacuous).
//   absorbed  — fault fired, yet the run completed with a clean oracle: the mechanism
//               tolerated the fault outright.
//   fp        — fault-off runs where the detector flagged anything at all.
struct ChaosSweepOutcome {
  int runs = 0;              // Seeds swept (each contributing one on + one off run).
  int skipped = 0;           // Seeds skipped after quarantine (supervised sweeps only;
                             // not part of the `runs` denominator — nothing ran).
  int injected_runs = 0;     // Fault-on runs where at least one fault fired.
  int harmful = 0;           // Fault fired and the run hung.
  int detected_harmful = 0;  // Harmful runs the detector flagged.
  int absorbed = 0;          // Fault fired; run completed and passed its oracle.
  int corrupted = 0;         // Fault fired; run completed but failed its oracle.
  int clean_anomalies = 0;   // Fault-off runs flagged by the detector (false positives).
  int clean_failures = 0;    // Fault-off runs that hung or failed (suite defect).
  std::uint64_t detection_steps_total = 0;  // Σ (steps − first_injection_step), detected.
  std::vector<std::uint64_t> missed_seeds;  // Harmful but undetected, for replay.
  std::vector<std::uint64_t> fp_seeds;      // Clean-run false positives, for replay.

  // Postmortems of fault-on trials, first kMaxStoredPostmortems in seed order, plus
  // the uncapped per-cause histogram over fault-on runs the detector flagged — the
  // recall gate checks every named cause here against the injected fault family.
  std::vector<SeedPostmortem> postmortems;
  int postmortems_total = 0;
  std::map<std::string, int> postmortem_causes;

  // Σ flight_evicted over both fault-on and fault-off runs.
  std::uint64_t flight_evicted = 0;

  double Recall() const {
    return harmful == 0 ? -1.0 : static_cast<double>(detected_harmful) / harmful;
  }
  double FalsePositiveRate() const {
    return runs == 0 ? 0.0 : static_cast<double>(clean_anomalies) / runs;
  }
  // Mean scheduler steps from first injection to end-of-run diagnosis, over detected
  // harmful runs (−1 when there were none).
  double MeanStepsToDetection() const {
    return detected_harmful == 0
               ? -1.0
               : static_cast<double>(detection_steps_total) / detected_harmful;
  }
  std::string Summary() const;
};

// Runs `trial(seed, &plan)` and `trial(seed, nullptr)` for each seed and aggregates.
// The trial owns runtime construction; it must attach a FaultInjector for the plan it
// is given (nullptr = fault-off) and report what fired via ChaosTrialOutcome. A trial
// that throws is folded in as hung (fault-on) or clean_failure (fault-off), keeping
// `runs` a common denominator, as with SweepSchedules.
ChaosSweepOutcome SweepChaos(
    int num_seeds,
    const std::function<ChaosTrialOutcome(std::uint64_t, const FaultPlan*)>& trial,
    const FaultPlan& plan, std::uint64_t base_seed = 1);

// Parallel overload, same contract as the SweepSchedules one: bit-identical to the
// serial chaos sweep at any worker count, serial fallback at parallel.jobs == 1.
ChaosSweepOutcome SweepChaos(
    int num_seeds,
    const std::function<ChaosTrialOutcome(std::uint64_t, const FaultPlan*)>& trial,
    const FaultPlan& plan, std::uint64_t base_seed, const ParallelOptions& parallel);

// ---------------------------------------------------------------------------------------
// Shared per-seed accumulation and chunk-merge steps. The serial sweeps above fold every
// seed through AccumulateTrial/AccumulateChaosTrial; the parallel engine folds each
// contiguous chunk through the same functions and then reduces the chunk outcomes in
// chunk order with MergeOutcome/MergeChaosOutcome. Keeping both paths on one
// accumulation routine is what makes "bit-identical to the serial sweep" a structural
// property rather than a hope.
namespace sweep_internal {

// Runs trial(seed) — folding an escaping exception into a "trial aborted" failure so
// the rate denominators never desynchronize — and accumulates the report into
// `outcome` exactly as the serial loop does.
void AccumulateTrial(const std::function<TrialReport(std::uint64_t)>& trial,
                     std::uint64_t seed, SweepOutcome& outcome);

// Appends `chunk` (the outcome of a contiguous seed range) onto `into` (the outcome of
// the contiguous range immediately before it). Associative over adjacent ranges.
void MergeOutcome(SweepOutcome& into, SweepOutcome&& chunk);

// Chaos equivalents: one seed contributes a matched fault-on + fault-off pair.
void AccumulateChaosTrial(
    const std::function<ChaosTrialOutcome(std::uint64_t, const FaultPlan*)>& trial,
    const FaultPlan& plan, std::uint64_t seed, ChaosSweepOutcome& outcome);
void MergeChaosOutcome(ChaosSweepOutcome& into, ChaosSweepOutcome&& chunk);

}  // namespace sweep_internal

}  // namespace syneval

#endif  // SYNEVAL_RUNTIME_EXPLORE_H_
