// Schedule sweeping: run a trial under many deterministic schedules and aggregate.
//
// The conformance methodology of this repository (DESIGN.md, experiments E1/E2/E6) checks
// behavioural claims by searching schedules: a trial constructs a fresh DetRuntime with a
// seeded schedule, drives a workload, and checks an oracle. SweepSchedules repeats the
// trial across seeds and reports how many schedules passed, failed, or deadlocked — with
// the failing seeds preserved so any finding can be replayed exactly.
//
// Trials that attach an AnomalyDetector report a full TrialReport instead of a bare
// message; the sweep then additionally aggregates per-anomaly counters (deadlocks, lost
// wakeups, stuck waiters, starvations) and keeps the anomalous seeds for replay.

#ifndef SYNEVAL_RUNTIME_EXPLORE_H_
#define SYNEVAL_RUNTIME_EXPLORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "syneval/anomaly/anomaly.h"

namespace syneval {

// Result of one trial. `message` empty means the trial passed its oracle; `anomalies`
// carries whatever the trial's detector observed (which may be non-zero even on a
// passing trial — e.g. starvation without an outright constraint violation).
struct TrialReport {
  std::string message;
  AnomalyCounts anomalies;
  std::string anomaly_report;  // Detector diagnostics ("" when anomalies are clean).

  bool Passed() const { return message.empty(); }
};

// Aggregate result of a schedule sweep.
struct SweepOutcome {
  int runs = 0;
  int passes = 0;
  int failures = 0;
  std::vector<std::uint64_t> failing_seeds;
  std::string first_failure;  // Message returned by the first failing trial.

  // Anomaly aggregation (populated by the TrialReport overload of SweepSchedules).
  AnomalyCounts anomalies;                      // Summed over all trials.
  std::vector<std::uint64_t> anomalous_seeds;   // Seeds whose trial saw any anomaly.
  std::string first_anomaly;                    // "seed N: <detector diagnostics>".

  bool AllPassed() const { return failures == 0; }
  bool AnomalyFree() const { return anomalies.Clean(); }
  // Both rates share `runs` as denominator, and `runs` counts every attempted seed —
  // including trials that abort by throwing (SweepSchedules records those as failures
  // rather than unwinding mid-sweep) — so the two fractions are always comparable.
  // Fraction of schedules on which the trial failed (anomaly probability estimate).
  double FailureRate() const { return runs == 0 ? 0.0 : static_cast<double>(failures) / runs; }
  // Fraction of schedules on which the detector flagged at least one anomaly.
  double AnomalyRate() const {
    return runs == 0 ? 0.0 : static_cast<double>(anomalous_seeds.size()) / runs;
  }
  std::string Summary() const;
};

// Runs `trial(seed)` for seeds base_seed .. base_seed + num_seeds - 1. A trial returns an
// empty string to signal success, or a diagnostic message to signal failure (oracle
// violation, deadlock, ...). Trials are executed sequentially, so they may share
// deterministic state if desired; typically each trial is self-contained.
SweepOutcome SweepSchedules(int num_seeds, const std::function<std::string(std::uint64_t)>& trial,
                            std::uint64_t base_seed = 1);

// As above, for instrumented trials: also sums anomaly counters across trials and keeps
// the seeds (and first diagnostic) of anomalous schedules for exact replay.
SweepOutcome SweepSchedules(int num_seeds,
                            const std::function<TrialReport(std::uint64_t)>& trial,
                            std::uint64_t base_seed = 1);

}  // namespace syneval

#endif  // SYNEVAL_RUNTIME_EXPLORE_H_
