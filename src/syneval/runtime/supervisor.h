// Trial supervisor: deadlines, reaping, crash capture, retries, and quarantine.
//
// Bloom's methodology only pays off at scale — hundreds of seeds × problems ×
// mechanisms × fault plans — and at that scale a single genuinely-hung OsRuntime trial
// (the very deadlocks the suite exists to provoke) or one crashed worker must not
// stall or forfeit the whole sweep. This module hardens the evaluation harness itself:
//
//   * RunSupervisedTrial runs one trial under a wall-clock deadline with a reaper
//     thread. If the deadline expires, the reaper captures a live postmortem through
//     the trial's `observe` callback and then force-unwinds the trial through its
//     `abort` callback — for the canned OsRuntime trial, AnomalyDetector::SetAborting
//     followed by OsRuntime::RequestAbort, so every blocked thread throws TrialAborted
//     and unwinds through RAII guards that no-op behind the Runtime::Aborting() seam.
//   * For cells that cannot be unwound cooperatively, an opt-in fork()-based process
//     sandbox runs the trial in a child process: the child publishes heartbeats and
//     live postmortems into a shared-memory ring (per-slot seqlock, so the parent can
//     harvest a consistent snapshot from a wedged child), converts SIGSEGV / SIGABRT /
//     SIGBUS / SIGFPE / SIGILL / std::terminate / escaping exceptions into a
//     structured TrialCrash record in shared memory, and the parent SIGKILLs it at the
//     deadline — a reap no in-process mechanism can refuse.
//   * RunSupervisedSeed retries catastrophic attempts (reaped or crashed) with
//     exponential backoff; SuperviseSweep additionally quarantines any cell whose
//     trials keep dying — folding the seeds it did complete, skipping the rest, and
//     reporting the cell with its last crash and postmortem in quarantine.json — so a
//     sweep with broken cells still terminates with every healthy cell's outcome
//     bit-identical to a clean run.
//
// The process-wide ActiveTrials() gauge also feeds the OsRuntime watchdog's
// load-adaptive poll threshold (os_runtime.h): trials register through
// ActiveTrialScope, and the stuck-wait threshold scales with how many run at once.
//
// docs/RESILIENCE.md covers the supervisor, the sandbox protocol, the checkpoint
// format (runtime/checkpoint.h), and the quarantine semantics.

#ifndef SYNEVAL_RUNTIME_SUPERVISOR_H_
#define SYNEVAL_RUNTIME_SUPERVISOR_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "syneval/runtime/explore.h"

namespace syneval {

class OsRuntime;

// ---- Process-wide active-trial gauge ------------------------------------------------

// Number of trials currently executing in this process (supervised trials and
// parallel-sweep chunks). Consumed by the OsRuntime watchdog's load-adaptive
// threshold. Never returns less than 1: the caller asking is itself doing work.
int ActiveTrials();

// RAII registration of one running trial in the ActiveTrials() gauge.
class ActiveTrialScope {
 public:
  ActiveTrialScope();
  ~ActiveTrialScope();
  ActiveTrialScope(const ActiveTrialScope&) = delete;
  ActiveTrialScope& operator=(const ActiveTrialScope&) = delete;
};

// ---- Supervisable trials ------------------------------------------------------------

// A live observation of a running (possibly hung) trial, published to the supervisor
// by the `observe` callback: the flight-recorder postmortem as of now.
struct TrialObservation {
  std::string cause;  // Postmortem::cause ("" when there is nothing to explain yet).
  std::string text;   // Postmortem::ToText().
};

// One supervisable trial instance. `run` executes the trial on the calling thread and
// is required; the other two run on supervisor threads concurrently with `run`:
//   abort    — force-unwind the trial cooperatively (detector SetAborting + runtime
//              RequestAbort). Optional; without it an in-process deadline can only be
//              observed, not enforced (use the sandbox for such cells).
//   observe  — capture a live postmortem of the current trial state. Optional; used
//              by the reaper just before aborting and by the sandbox child's
//              heartbeat thread to keep the shared-memory ring fresh.
struct SupervisableTrial {
  std::function<TrialReport()> run;
  std::function<void()> abort;
  std::function<TrialObservation()> observe;
};

// Builds the trial for one seed. Called per attempt — in sandbox mode inside the
// child process, so a crashing constructor is contained too.
using SupervisableTrialFactory = std::function<SupervisableTrial(std::uint64_t)>;

// Canned abortable OsRuntime trial: constructs a fresh abortable OsRuntime with an
// AnomalyDetector and a trial-sized FlightRecorder attached, runs `body` (which
// returns the oracle verdict: empty = pass), folds detector counts and a postmortem
// into the TrialReport, and wires `abort`/`observe` to the runtime's seams.
SupervisableTrial MakeSupervisableOsTrial(std::function<std::string(OsRuntime&)> body);

// ---- Cooperative abort seam for wrapped trial functions -----------------------------
//
// Chaos supervision (fault/chaos.h) wraps an existing trial *function* rather than a
// SupervisableTrial: the trial's abortable runtime is constructed deep inside the
// callback, out of the wrapper's reach. The seam is a per-thread slot: the wrapper
// installs a TrialAbortSlot on the calling thread for the duration of the wrapped
// call, and the trial's internals register their abort/observe callbacks into
// whatever slot their thread has installed via TrialAbortScope. Unsupervised runs
// install no slot, making the scope a no-op — which is what keeps a supervised
// healthy cell bit-identical to an unsupervised sweep of it.

// Reaper-facing handle to the (possibly not yet constructed) trial of one wrapped
// call. Thread-safe; Abort() on an empty slot is remembered and fired on late
// registration, so a reap cannot be lost to a construction race.
class TrialAbortSlot {
 public:
  // Force-unwind the registered trial (for DetRuntime trials: RequestAbort()).
  void Abort();
  // Capture a live postmortem of the registered trial ("" fields when nothing is
  // registered or there is nothing to explain yet).
  TrialObservation Observe();
  bool aborted() const;

 private:
  friend class TrialAbortScope;
  void Register(std::function<void()> abort, std::function<TrialObservation()> observe);
  void Unregister();

  mutable std::mutex mu_;
  bool aborted_ = false;
  std::function<void()> abort_;
  std::function<TrialObservation()> observe_;
};

// RAII registration of the calling trial's abort/observe callbacks into the thread's
// installed slot (no-op when none is installed). Construct it after everything the
// callbacks capture; destruction synchronizes with any in-flight reaper call, so the
// captures stay valid for exactly the scope's lifetime.
class TrialAbortScope {
 public:
  TrialAbortScope(std::function<void()> abort, std::function<TrialObservation()> observe);
  ~TrialAbortScope();
  TrialAbortScope(const TrialAbortScope&) = delete;
  TrialAbortScope& operator=(const TrialAbortScope&) = delete;

 private:
  TrialAbortSlot* slot_;
};

struct TrialReapResult {
  bool reaped = false;           // The deadline fired before `fn` returned.
  TrialObservation observation;  // The reaper's pre-abort harvest (sparse).
};

// Runs `fn` on the calling thread with `slot` installed as the thread's abort slot,
// under a wall-clock deadline: a reaper thread observes and then aborts through the
// slot when the deadline expires. deadline <= 0 runs `fn` with the slot installed but
// no reaper. The abort is cooperative — `fn` must eventually return through its
// runtime's abort path (DetRuntime trials always do: the driver regains control at
// every scheduling step).
TrialReapResult RunWithTrialDeadline(TrialAbortSlot& slot,
                                     std::chrono::milliseconds deadline,
                                     const std::function<void()>& fn);

// ---- Supervision policy and results -------------------------------------------------

struct SupervisorOptions {
  // Wall-clock budget per attempt; past it the reaper fires. Zero disables reaping
  // (the trial still gets crash capture and retries).
  std::chrono::milliseconds trial_deadline{2000};
  // Attempts per seed: catastrophic attempts (reaped or crashed) are retried up to
  // max_attempts - 1 times. A trial that merely fails its oracle is a *result*, not a
  // malfunction — it is never retried.
  int max_attempts = 2;
  // Sleep before retry k is retry_backoff × 2^(k-1).
  std::chrono::milliseconds retry_backoff{10};
  // SuperviseSweep: a cell is quarantined once this many seeds end catastrophic
  // (after their retries). Quarantining stops sweeping the cell; seeds already folded
  // are kept, the rest are skipped.
  int quarantine_after = 2;
  // Run each attempt in a fork()ed child (POSIX only; ignored where unavailable).
  bool sandbox = false;
  // Parent-side waitpid poll period and child-side heartbeat period in sandbox mode.
  std::chrono::milliseconds sandbox_poll{2};
};

// Structured record of a crashed attempt (sandbox: fatal signal or std::terminate;
// in-process: an exception that escaped the trial).
struct TrialCrash {
  bool crashed = false;
  int signal_number = 0;  // 0 when the crash was an exception / std::terminate.
  std::string what;       // "signal 11 (SIGSEGV)", exception message, exit status.
  std::string postmortem_cause;  // Latest complete postmortem harvested from the
  std::string postmortem;        // shared-memory ring (sandbox) or observe().
};

// Counters a supervised sweep aggregates; rendered as the schema-v4 `supervisor`
// object by the bench reporter.
struct SupervisorStats {
  int reaped = 0;       // Attempts force-unwound at the deadline.
  int crashed = 0;      // Attempts that died (signal, terminate, escaped exception).
  int retried = 0;      // Retry attempts performed.
  int quarantined = 0;  // Cells quarantined.
  SupervisorStats& operator+=(const SupervisorStats& other);
};

struct SupervisedTrialResult {
  TrialReport report;  // The final attempt's report (synthesized when catastrophic).
  bool reaped = false;
  bool crashed = false;
  int attempts = 1;
  TrialCrash crash;  // Populated when crashed.

  // A malfunction of the trial itself (vs. a legitimate oracle failure).
  bool Catastrophic() const { return reaped || crashed; }
};

// Runs one already-constructed trial under the deadline/reaper (no retries — the
// trial instance is single-use). Sandbox mode is not available here; use
// RunSupervisedSeed, which can re-construct per attempt.
SupervisedTrialResult RunSupervisedTrial(const SupervisableTrial& trial,
                                         const SupervisorOptions& options);

// Full per-seed supervision: build-via-factory, deadline, crash capture, retry with
// backoff. `stats` (nullable) accumulates reaped/crashed/retried.
SupervisedTrialResult RunSupervisedSeed(const SupervisableTrialFactory& factory,
                                        std::uint64_t seed,
                                        const SupervisorOptions& options,
                                        SupervisorStats* stats);

// ---- Cell-level supervision and quarantine ------------------------------------------

// One risky sweep cell: a (problem, mechanism[, fault]) point whose seeds are swept
// under supervision. `id` must be unique within the sweep (it keys quarantine.json).
struct SupervisedCell {
  std::string id;
  SupervisableTrialFactory trial;
};

struct SupervisedCellResult {
  std::string id;
  // Folded through the same sweep_internal accumulation as every other sweep, so a
  // healthy cell's outcome is bit-identical to an unsupervised sweep of it.
  SweepOutcome outcome;
  bool quarantined = false;
  std::string quarantine_reason;  // "" unless quarantined.
  int completed_seeds = 0;        // Seeds folded before quarantine (== runs).
  TrialCrash last_crash;          // Last catastrophic attempt's crash record.
  std::string last_postmortem_cause;  // Last catastrophic attempt's postmortem.
  std::string last_postmortem;
  SupervisorStats stats;
};

struct SupervisedSweepReport {
  std::vector<SupervisedCellResult> cells;  // In input cell order.
  SupervisorStats totals;

  int QuarantinedCells() const;

  // Merge of the non-quarantined cells' outcomes in cell order — the "remaining
  // seeds" aggregate, bit-identical to a clean sweep over the same cells.
  SweepOutcome MergedHealthyOutcome() const;

  // quarantine.json: every cell's verdict, with crash records and per-cell
  // postmortems for the quarantined ones.
  std::string QuarantineJson() const;

  // Writes QuarantineJson() atomically (write "<path>.tmp", rename). False on I/O
  // failure.
  bool WriteQuarantineFile(const std::string& path) const;
};

// Sweeps seeds base_seed .. base_seed + num_seeds - 1 over every cell under
// supervision, quarantining cells per `options.quarantine_after`. Cells run in input
// order, seeds in seed order (supervised cells are the risky minority — OsRuntime,
// chaos, soak — and their trials own real threads already; the deterministic bulk
// belongs in ParallelSweepSchedules).
SupervisedSweepReport SuperviseSweep(const std::vector<SupervisedCell>& cells,
                                     int num_seeds, std::uint64_t base_seed,
                                     const SupervisorOptions& options);

}  // namespace syneval

#endif  // SYNEVAL_RUNTIME_SUPERVISOR_H_
