// Scheduling strategies for the deterministic runtime.
//
// At every scheduling point DetRuntime presents the set of runnable threads to a
// Schedule, which picks the one to run next. Strategies are deterministic functions of
// their construction parameters, so any observed behaviour (including a constraint
// violation found by the conformance engine) is replayable from (strategy, seed).

#ifndef SYNEVAL_RUNTIME_SCHEDULE_H_
#define SYNEVAL_RUNTIME_SCHEDULE_H_

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

namespace syneval {

// What the scheduler knows about a runnable thread when picking.
struct SchedCandidate {
  std::uint32_t thread_id = 0;
  std::uint64_t ready_since = 0;  // Step at which the thread last became runnable.
};

class Schedule {
 public:
  virtual ~Schedule() = default;

  // Picks the index (into `candidates`) of the thread to run next. `candidates` is
  // non-empty and ordered by thread id. `step` is the global scheduling step counter.
  virtual std::size_t Pick(const std::vector<SchedCandidate>& candidates, std::uint64_t step) = 0;

  virtual std::string Describe() const = 0;
};

// Uniformly random choice from a seeded PRNG. The workhorse for interleaving search:
// running the same program under many seeds explores many distinct schedules.
class RandomSchedule : public Schedule {
 public:
  explicit RandomSchedule(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  std::size_t Pick(const std::vector<SchedCandidate>& candidates, std::uint64_t step) override;
  std::string Describe() const override;

 private:
  std::uint64_t seed_;
  std::mt19937_64 rng_;
};

// Cycles through thread ids; a useful smoke-test strategy with maximal fairness.
class RoundRobinSchedule : public Schedule {
 public:
  std::size_t Pick(const std::vector<SchedCandidate>& candidates, std::uint64_t step) override;
  std::string Describe() const override { return "round-robin"; }

 private:
  std::uint32_t last_ = 0;
};

// Always runs the longest-ready thread (FIFO over readiness). Produces highly fair,
// almost sequential executions; useful as a baseline in anomaly-probability ablations.
class FifoSchedule : public Schedule {
 public:
  std::size_t Pick(const std::vector<SchedCandidate>& candidates, std::uint64_t step) override;
  std::string Describe() const override { return "fifo"; }
};

// Follows an explicit list of thread ids; when the scripted thread is not runnable (or
// the script is exhausted) falls back to the lowest-id runnable thread. Used by tests
// that need to force one specific interleaving, e.g. the Figure 1 anomaly witness.
class ScriptedSchedule : public Schedule {
 public:
  explicit ScriptedSchedule(std::vector<std::uint32_t> script) : script_(std::move(script)) {}

  std::size_t Pick(const std::vector<SchedCandidate>& candidates, std::uint64_t step) override;
  std::string Describe() const override;

 private:
  std::vector<std::uint32_t> script_;
  std::size_t pos_ = 0;
};

// Probabilistic concurrency testing flavour: assigns each thread a random priority and
// runs the highest-priority runnable thread, demoting the running thread's priority at
// `change_points` randomly chosen steps. Finds rare orderings with fewer runs than
// uniform random choice (Burckhardt et al.'s PCT, adapted to our cooperative setting).
class PctSchedule : public Schedule {
 public:
  PctSchedule(std::uint64_t seed, int change_points, std::uint64_t max_steps);

  std::size_t Pick(const std::vector<SchedCandidate>& candidates, std::uint64_t step) override;
  std::string Describe() const override;

 private:
  double PriorityOf(std::uint32_t thread_id);

  std::uint64_t seed_;
  std::mt19937_64 rng_;
  std::vector<std::uint64_t> change_steps_;
  std::vector<double> priorities_;  // Indexed by thread id, grown on demand.
};

// Deterministic prefix-guided schedule, the execution seam of the DPOR explorer
// (analysis/dpor.h). The first `prefix.size()` scheduling decisions follow the given
// thread ids exactly; every later decision falls back to the lowest-id runnable
// thread. Unlike ScriptedSchedule the prefix is an *obligation*: a prefix entry naming
// a thread that is not runnable marks the schedule diverged (the explorer treats the
// state as unreachable) instead of being silently skipped. Every decision — candidate
// set and chosen thread — is recorded, so the caller can reconstruct the execution
// tree node by node.
class GuidedSchedule : public Schedule {
 public:
  struct Decision {
    std::vector<std::uint32_t> candidates;  // Runnable thread ids, ascending.
    std::uint32_t chosen = 0;
    std::uint64_t step = 0;  // Scheduler step of this Pick (jumps past timed waits).
  };

  explicit GuidedSchedule(std::vector<std::uint32_t> prefix) : prefix_(std::move(prefix)) {}

  std::size_t Pick(const std::vector<SchedCandidate>& candidates, std::uint64_t step) override;
  std::string Describe() const override;

  // Decisions in the order taken (index 0 = first Pick). Valid after the run.
  const std::vector<Decision>& decisions() const { return decisions_; }

  // True when a prefix entry named a thread that was not runnable at its step; the
  // recorded decisions stop being meaningful past that point.
  bool diverged() const { return diverged_; }

 private:
  std::vector<std::uint32_t> prefix_;
  std::size_t pos_ = 0;
  std::vector<Decision> decisions_;
  bool diverged_ = false;
};

std::unique_ptr<Schedule> MakeRandomSchedule(std::uint64_t seed);

}  // namespace syneval

#endif  // SYNEVAL_RUNTIME_SCHEDULE_H_
