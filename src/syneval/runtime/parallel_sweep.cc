#include "syneval/runtime/parallel_sweep.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "syneval/fault/fault.h"
#include "syneval/runtime/checkpoint.h"
#include "syneval/runtime/supervisor.h"

namespace syneval {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// A worker's chunk queue. The owner pops from the front (preserving seed locality);
// thieves pop from the back, so owner and thief only contend on the mutex, never on
// the same end's ordering assumptions. Queues are only ever drained — no chunk is
// produced after the pool starts — so an empty scan over all queues terminates a
// worker.
class ChunkQueue {
 public:
  void Push(int chunk) { chunks_.push_back(chunk); }  // Pre-start only; no lock needed.

  bool PopFront(int* chunk) {
    std::lock_guard<std::mutex> lock(mu_);
    if (chunks_.empty()) {
      return false;
    }
    *chunk = chunks_.front();
    chunks_.pop_front();
    return true;
  }

  bool PopBack(int* chunk) {
    std::lock_guard<std::mutex> lock(mu_);
    if (chunks_.empty()) {
      return false;
    }
    *chunk = chunks_.back();
    chunks_.pop_back();
    return true;
  }

 private:
  std::mutex mu_;
  std::deque<int> chunks_;
};

// Seeds per chunk: small enough that every worker sees several chunks (so stealing
// can actually balance uneven trial costs), large enough that queue traffic stays
// negligible next to the trials themselves.
int AutoChunkSeeds(int num_seeds, int jobs) {
  const int target_chunks_per_worker = 4;
  const int chunk = num_seeds / (jobs * target_chunks_per_worker);
  return std::clamp(chunk, 1, 64);
}

// Auto chunk size under checkpointing. AutoChunkSeeds depends on the worker count,
// but the chunk layout is part of every checkpoint key — a resumed sweep must cut the
// seed range identically under any --jobs, so the layout is pinned instead.
constexpr int kCheckpointChunkSeeds = 16;

// Generic pool driver shared by the schedule and chaos sweeps. RunSeed accumulates one
// seed into an Outcome chunk; Merge folds a later chunk onto an earlier one. Partial
// outcomes are indexed by chunk and merged in chunk order after the join, which is
// what makes the result independent of worker count and steal order.
template <typename Outcome, typename RunSeed, typename Merge, typename Encode,
          typename Decode>
void RunSweepPool(int num_seeds, std::uint64_t base_seed, const ParallelOptions& options,
                  const char* kind, const RunSeed& run_seed, const Merge& merge,
                  const Encode& encode, const Decode& decode, Outcome* merged,
                  int* jobs_out, double* wall_seconds,
                  std::vector<WorkerTelemetry>* telemetry) {
  const auto sweep_start = std::chrono::steady_clock::now();
  const int jobs = ResolveJobs(options.jobs);
  CheckpointStore* const store = options.checkpoint;
  *jobs_out = jobs;

  if (num_seeds <= 0) {
    *wall_seconds = SecondsSince(sweep_start);
    return;
  }

  // Serial fallback: one job means the caller's thread runs the plain serial loop —
  // no pool, no queues, nothing for TSan to look at. A checkpointed sweep always
  // takes the chunked path (still inline, still threadless at jobs == 1) because the
  // chunk layout is what the store keys on.
  if ((jobs == 1 || num_seeds == 1) && store == nullptr) {
    ActiveTrialScope active;  // Feeds the watchdog's load-adaptive threshold.
    WorkerTelemetry self;
    self.worker = 0;
    for (int i = 0; i < num_seeds; ++i) {
      run_seed(base_seed + static_cast<std::uint64_t>(i), *merged);
      ++self.trials;
    }
    self.chunks = 1;
    self.wall_seconds = SecondsSince(sweep_start);
    telemetry->push_back(self);
    *jobs_out = 1;
    *wall_seconds = self.wall_seconds;
    return;
  }

  const int chunk_seeds = options.chunk_seeds > 0 ? options.chunk_seeds
                          : store != nullptr     ? kCheckpointChunkSeeds
                                                 : AutoChunkSeeds(num_seeds, jobs);
  const int num_chunks = (num_seeds + chunk_seeds - 1) / chunk_seeds;

  // Shard: worker w starts with the w-th contiguous block of chunks, so with no
  // stealing each worker sweeps one contiguous seed range.
  std::vector<ChunkQueue> queues(static_cast<std::size_t>(jobs));
  for (int c = 0; c < num_chunks; ++c) {
    queues[static_cast<std::size_t>(static_cast<long long>(c) * jobs / num_chunks)]
        .Push(c);
  }

  std::vector<Outcome> partials(static_cast<std::size_t>(num_chunks));
  telemetry->assign(static_cast<std::size_t>(jobs), WorkerTelemetry{});

  auto worker_body = [&](int w) {
    // Each pool worker runs one trial at a time, so registering the worker makes
    // ActiveTrials() ≈ the oversubscription factor the watchdog should scale by.
    ActiveTrialScope active;
    const auto worker_start = std::chrono::steady_clock::now();
    WorkerTelemetry& shard = (*telemetry)[static_cast<std::size_t>(w)];
    shard.worker = w;
    for (;;) {
      int chunk = -1;
      bool stolen = false;
      if (!queues[static_cast<std::size_t>(w)].PopFront(&chunk)) {
        // Own queue dry: scan siblings (starting after ourselves, wrapping) and steal
        // from the back of the first non-empty queue.
        for (int v = 1; v < jobs && !stolen; ++v) {
          stolen = queues[static_cast<std::size_t>((w + v) % jobs)].PopBack(&chunk);
        }
        if (!stolen) {
          break;  // Every queue drained; nothing will be produced.
        }
      }
      const int begin = chunk * chunk_seeds;
      const int end = std::min(begin + chunk_seeds, num_seeds);
      std::string key;
      bool restored = false;
      if (store != nullptr) {
        key = ChunkKey(options.checkpoint_scope, kind, base_seed, num_seeds,
                       chunk_seeds, chunk);
        std::string payload;
        Outcome cached;
        // A payload that fails to decode (foreign writer, truncated entry the atomic
        // snapshot should make impossible) is a plain cache miss: re-fold the chunk.
        if (store->Lookup(key, &payload) && decode(payload, &cached)) {
          partials[static_cast<std::size_t>(chunk)] = std::move(cached);
          restored = true;
        }
      }
      if (restored) {
        ++shard.cached;
      } else {
        Outcome part;
        for (int i = begin; i < end; ++i) {
          run_seed(base_seed + static_cast<std::uint64_t>(i), part);
        }
        if (store != nullptr) {
          store->Commit(key, encode(part));
        }
        partials[static_cast<std::size_t>(chunk)] = std::move(part);
        shard.trials += end - begin;
        ++shard.chunks;
      }
      shard.steals += stolen ? 1 : 0;
    }
    shard.wall_seconds = SecondsSince(worker_start);
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(jobs - 1));
  for (int w = 1; w < jobs; ++w) {
    pool.emplace_back(worker_body, w);
  }
  worker_body(0);  // The calling thread is worker 0.
  for (std::thread& thread : pool) {
    thread.join();
  }

  // Deterministic merge: chunk order == seed order, regardless of which worker
  // computed which chunk.
  for (Outcome& part : partials) {
    merge(*merged, std::move(part));
  }
  if (store != nullptr) {
    store->Flush();  // Final snapshot: a re-run of this sweep is all cache hits.
  }
  *wall_seconds = SecondsSince(sweep_start);
}

}  // namespace

int ResolveJobs(int jobs) {
  if (jobs > 0) {
    return jobs;
  }
  if (jobs == 0) {
    if (const char* env = std::getenv("SYNEVAL_JOBS"); env != nullptr && *env != '\0') {
      char* end = nullptr;
      const long parsed = std::strtol(env, &end, 10);
      if (end != nullptr && *end == '\0' && parsed > 0) {
        return static_cast<int>(parsed);
      }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return 1;
}

ParallelSweepResult ParallelSweepSchedules(
    int num_seeds, const std::function<TrialReport(std::uint64_t)>& trial,
    std::uint64_t base_seed, const ParallelOptions& options) {
  ParallelSweepResult result;
  RunSweepPool<SweepOutcome>(
      num_seeds, base_seed, options, "sweep",
      [&trial](std::uint64_t seed, SweepOutcome& outcome) {
        sweep_internal::AccumulateTrial(trial, seed, outcome);
      },
      [](SweepOutcome& into, SweepOutcome&& chunk) {
        sweep_internal::MergeOutcome(into, std::move(chunk));
      },
      [](const SweepOutcome& outcome) { return EncodeOutcome(outcome); },
      [](const std::string& payload, SweepOutcome* out) {
        return DecodeOutcome(payload, out);
      },
      &result.outcome, &result.jobs, &result.wall_seconds, &result.workers);
  return result;
}

ParallelSweepResult ParallelSweepSchedules(
    int num_seeds, const std::function<std::string(std::uint64_t)>& trial,
    std::uint64_t base_seed, const ParallelOptions& options) {
  return ParallelSweepSchedules(
      num_seeds,
      [&trial](std::uint64_t seed) {
        TrialReport report;
        report.message = trial(seed);
        return report;
      },
      base_seed, options);
}

ParallelChaosResult ParallelSweepChaos(
    int num_seeds,
    const std::function<ChaosTrialOutcome(std::uint64_t, const FaultPlan*)>& trial,
    const FaultPlan& plan, std::uint64_t base_seed, const ParallelOptions& options) {
  ParallelChaosResult result;
  RunSweepPool<ChaosSweepOutcome>(
      num_seeds, base_seed, options, "chaos",
      [&trial, &plan](std::uint64_t seed, ChaosSweepOutcome& outcome) {
        sweep_internal::AccumulateChaosTrial(trial, plan, seed, outcome);
      },
      [](ChaosSweepOutcome& into, ChaosSweepOutcome&& chunk) {
        sweep_internal::MergeChaosOutcome(into, std::move(chunk));
      },
      [](const ChaosSweepOutcome& outcome) { return EncodeChaosOutcome(outcome); },
      [](const std::string& payload, ChaosSweepOutcome* out) {
        return DecodeChaosOutcome(payload, out);
      },
      &result.outcome, &result.jobs, &result.wall_seconds, &result.workers);
  return result;
}

void MergeWorkerTelemetry(std::vector<WorkerTelemetry>& into,
                          const std::vector<WorkerTelemetry>& shard) {
  if (into.size() < shard.size()) {
    into.resize(shard.size());
  }
  for (std::size_t w = 0; w < shard.size(); ++w) {
    into[w].worker = static_cast<int>(w);
    into[w].trials += shard[w].trials;
    into[w].chunks += shard[w].chunks;
    into[w].steals += shard[w].steals;
    into[w].cached += shard[w].cached;
    into[w].wall_seconds += shard[w].wall_seconds;
  }
}

}  // namespace syneval
