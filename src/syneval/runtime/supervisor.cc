#include "syneval/runtime/supervisor.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "syneval/anomaly/detector.h"
#include "syneval/runtime/checkpoint.h"
#include "syneval/runtime/deadline.h"
#include "syneval/runtime/os_runtime.h"
#include "syneval/telemetry/flight_recorder.h"
#include "syneval/telemetry/postmortem.h"

#if defined(__unix__) || defined(__APPLE__)
#define SYNEVAL_SANDBOX_AVAILABLE 1
#include <csignal>
#include <new>
#include <signal.h>
#include <sys/mman.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define SYNEVAL_SANDBOX_AVAILABLE 0
#endif

namespace syneval {

namespace {

std::atomic<int> g_active_trials{0};

// Minimal JSON string escaping for quarantine.json. The runtime layer sits below
// syneval_core, so it cannot reuse the scorecard helpers.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string DeadlineMessage(const SupervisorOptions& options) {
  return "reaped: trial exceeded " + std::to_string(options.trial_deadline.count()) +
         "ms deadline";
}

}  // namespace

int ActiveTrials() {
  const int active = g_active_trials.load(std::memory_order_relaxed);
  return active < 1 ? 1 : active;
}

ActiveTrialScope::ActiveTrialScope() {
  g_active_trials.fetch_add(1, std::memory_order_relaxed);
}

ActiveTrialScope::~ActiveTrialScope() {
  g_active_trials.fetch_sub(1, std::memory_order_relaxed);
}

SupervisorStats& SupervisorStats::operator+=(const SupervisorStats& other) {
  reaped += other.reaped;
  crashed += other.crashed;
  retried += other.retried;
  quarantined += other.quarantined;
  return *this;
}

// ---- Canned abortable OsRuntime trial ----------------------------------------------

SupervisableTrial MakeSupervisableOsTrial(std::function<std::string(OsRuntime&)> body) {
  struct Context {
    Context() : runtime(MakeOptions()) {
      runtime.AttachAnomalyDetector(&detector);
      runtime.AttachFlightRecorder(&flight);
    }
    static OsRuntime::Options MakeOptions() {
      OsRuntime::Options options;
      options.abortable = true;
      return options;
    }
    // Observe()-time Poll threshold: the only Poll caller here is the reaper, one
    // sample at the deadline, so a low threshold cannot produce steady-state false
    // positives — it just lets the postmortem name waits the deadline already proved
    // suspicious.
    static AnomalyDetector::Options DetectorOptions() {
      AnomalyDetector::Options options;
      options.stuck_wait_nanos = 10'000'000;  // 10 ms
      return options;
    }
    OsRuntime runtime;
    AnomalyDetector detector{DetectorOptions()};
    FlightRecorder flight{FlightRecorder::Options::ForTrial()};
  };
  auto ctx = std::make_shared<Context>();
  SupervisableTrial trial;
  trial.run = [ctx, body = std::move(body)]() {
    TrialReport report;
    report.message = body(ctx->runtime);
    report.anomalies = ctx->detector.counts();
    report.anomaly_report = ctx->detector.Report();
    if (!report.message.empty() || !report.anomalies.Clean()) {
      const Postmortem pm = BuildPostmortem(ctx->flight, &ctx->detector);
      if (!pm.empty()) {
        report.postmortem_cause = pm.cause;
        report.postmortem = pm.ToText();
      }
    }
    report.flight_evicted = ctx->flight.evicted();
    return report;
  };
  trial.abort = [ctx]() {
    // Detector first: the unwind's hook traffic (threads releasing resources they no
    // longer own) must be ignored, exactly as in DetRuntime's teardown.
    ctx->detector.SetAborting(true);
    ctx->runtime.RequestAbort();
  };
  trial.observe = [ctx]() {
    // One Poll classifies the currently-parked threads (the trial is presumed hung
    // when this runs), then the flight recorder narrates them.
    ctx->detector.Poll(static_cast<std::int64_t>(ctx->runtime.NowNanos()));
    const Postmortem pm = BuildPostmortem(ctx->flight, &ctx->detector);
    TrialObservation obs;
    obs.cause = pm.cause;
    obs.text = pm.empty() ? std::string() : pm.ToText();
    return obs;
  };
  return trial;
}

// ---- Cooperative abort seam for wrapped trial functions -----------------------------

namespace {

// The slot installed on this thread by RunWithTrialDeadline (nullptr when the thread
// is running unsupervised).
thread_local TrialAbortSlot* g_trial_abort_slot = nullptr;

}  // namespace

void TrialAbortSlot::Abort() {
  // The slot mutex is held across the callback so Unregister() (the trial's scope
  // destructor) cannot pull the captures out from under an in-flight abort.
  std::lock_guard<std::mutex> lock(mu_);
  aborted_ = true;
  if (abort_) {
    abort_();
  }
}

TrialObservation TrialAbortSlot::Observe() {
  std::lock_guard<std::mutex> lock(mu_);
  return observe_ ? observe_() : TrialObservation{};
}

bool TrialAbortSlot::aborted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return aborted_;
}

void TrialAbortSlot::Register(std::function<void()> abort,
                              std::function<TrialObservation()> observe) {
  std::lock_guard<std::mutex> lock(mu_);
  abort_ = std::move(abort);
  observe_ = std::move(observe);
  if (aborted_ && abort_) {
    // The reaper fired before the trial finished constructing its runtime; deliver
    // the abort now so the freshly-registered trial unwinds promptly.
    abort_();
  }
}

void TrialAbortSlot::Unregister() {
  std::lock_guard<std::mutex> lock(mu_);
  abort_ = nullptr;
  observe_ = nullptr;
}

TrialAbortScope::TrialAbortScope(std::function<void()> abort,
                                 std::function<TrialObservation()> observe)
    : slot_(g_trial_abort_slot) {
  if (slot_ != nullptr) {
    slot_->Register(std::move(abort), std::move(observe));
  }
}

TrialAbortScope::~TrialAbortScope() {
  if (slot_ != nullptr) {
    slot_->Unregister();
  }
}

TrialReapResult RunWithTrialDeadline(TrialAbortSlot& slot,
                                     std::chrono::milliseconds deadline,
                                     const std::function<void()>& fn) {
  TrialReapResult result;
  TrialAbortSlot* const previous = g_trial_abort_slot;
  g_trial_abort_slot = &slot;

  struct ReaperState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  ReaperState state;
  std::thread reaper;
  if (deadline.count() > 0) {
    reaper = std::thread([&state, &slot, &result, deadline] {
      const Deadline until = Deadline::After(deadline);
      std::unique_lock<std::mutex> lock(state.mu);
      if (state.cv.wait_until(lock, until.time_point(), [&] { return state.done; })) {
        return;  // The trial finished inside its budget; nothing to reap.
      }
      lock.unlock();
      result.reaped = true;
      // Capture the hung state BEFORE unwinding it — after the abort the
      // interesting waits are gone.
      result.observation = slot.Observe();
      slot.Abort();
    });
  }

  try {
    fn();
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(state.mu);
      state.done = true;
    }
    state.cv.notify_all();
    if (reaper.joinable()) {
      reaper.join();
    }
    g_trial_abort_slot = previous;
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.done = true;
  }
  state.cv.notify_all();
  if (reaper.joinable()) {
    reaper.join();
  }
  g_trial_abort_slot = previous;
  return result;
}

// ---- In-process supervised attempt --------------------------------------------------

namespace {

SupervisedTrialResult RunInProcessAttempt(const SupervisableTrial& trial,
                                          const SupervisorOptions& options) {
  SupervisedTrialResult result;
  ActiveTrialScope active;

  struct ReaperState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool reaped = false;
    TrialObservation observation;
  };
  auto state = std::make_shared<ReaperState>();

  std::thread reaper;
  if (options.trial_deadline.count() > 0 && trial.abort) {
    reaper = std::thread([state, abort = trial.abort, observe = trial.observe,
                          deadline = options.trial_deadline] {
      const Deadline until = Deadline::After(deadline);
      std::unique_lock<std::mutex> lock(state->mu);
      if (state->cv.wait_until(lock, until.time_point(),
                               [&] { return state->done; })) {
        return;  // Trial finished inside its budget; nothing to reap.
      }
      state->reaped = true;
      lock.unlock();
      // Capture the hung state BEFORE unwinding it — after abort the interesting
      // waits are gone.
      if (observe) {
        TrialObservation observation = observe();
        lock.lock();
        state->observation = std::move(observation);
        lock.unlock();
      }
      abort();
    });
  }

  try {
    result.report = trial.run();
  } catch (const TrialAborted&) {
    // The reaper fired while the driving thread itself was parked in a primitive.
  } catch (const std::exception& e) {
    result.crashed = true;
    result.crash.crashed = true;
    result.crash.what = e.what();
  } catch (...) {
    result.crashed = true;
    result.crash.crashed = true;
    result.crash.what = "unknown exception";
  }

  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->done = true;
  }
  state->cv.notify_all();
  if (reaper.joinable()) {
    reaper.join();
  }

  if (state->reaped) {
    result.reaped = true;
    // Whatever the unwound trial's oracle said about its half-executed workload is
    // not a verdict; the supervised outcome is "this seed's trial hung".
    result.report.message = DeadlineMessage(options);
    if (result.report.postmortem.empty() && !state->observation.text.empty()) {
      result.report.postmortem_cause = state->observation.cause;
      result.report.postmortem = state->observation.text;
    }
  } else if (result.crashed) {
    result.report.message = "crashed: " + result.crash.what;
  }
  return result;
}

// ---- fork() process sandbox ---------------------------------------------------------

#if SYNEVAL_SANDBOX_AVAILABLE

constexpr std::uint32_t kShmSlots = 4;
constexpr std::size_t kShmCauseCap = 64;
constexpr std::size_t kShmTextCap = 8192;
constexpr std::size_t kShmWhatCap = 256;
constexpr std::size_t kShmReportCap = 32768;

enum : std::uint32_t { kShmRunning = 0, kShmDone = 1, kShmCrashed = 2 };

// One postmortem snapshot, guarded by a per-slot seqlock (odd while the child is
// writing). The child's heartbeat thread round-robins the slots; the parent harvests
// the newest slot whose sequence reads even and stable — a consistent snapshot even
// when the child is wedged or freshly SIGKILLed mid-write.
struct ShmPostmortemSlot {
  std::atomic<std::uint32_t> seq;
  char cause[kShmCauseCap];
  char text[kShmTextCap];
};

struct ShmBlock {
  std::atomic<std::uint32_t> state;  // kShmRunning / kShmDone / kShmCrashed.
  std::atomic<std::uint64_t> heartbeat;
  std::atomic<std::uint32_t> pm_cursor;  // Next slot index (monotonic).
  std::int32_t signal_number;
  char what[kShmWhatCap];
  std::uint32_t report_size;
  char report[kShmReportCap];  // EncodeTrialReport payload.
  ShmPostmortemSlot slots[kShmSlots];
};

static_assert(std::atomic<std::uint32_t>::is_always_lock_free &&
                  std::atomic<std::uint64_t>::is_always_lock_free,
              "sandbox shared-memory protocol needs lock-free atomics");

void ShmCopyString(char* dst, std::size_t cap, const std::string& src) {
  const std::size_t n = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

// Crash handlers cannot capture state; the child publishes its block here.
ShmBlock* g_sandbox_block = nullptr;

const char* SignalName(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    default: return "signal";
  }
}

extern "C" void SandboxCrashHandler(int sig) {
  ShmBlock* block = g_sandbox_block;
  if (block != nullptr) {
    block->signal_number = sig;
    // Async-signal-safe: fixed-size copy plus lock-free atomic store.
    char what[kShmWhatCap];
    std::snprintf(what, sizeof(what), "signal %d (%s)", sig, SignalName(sig));
    std::memcpy(block->what, what, sizeof(what));
    block->state.store(kShmCrashed, std::memory_order_release);
  }
  _exit(128 + sig);
}

void SandboxPublishPostmortem(ShmBlock* block, const TrialObservation& observation) {
  if (observation.text.empty()) {
    return;
  }
  const std::uint32_t cursor =
      block->pm_cursor.fetch_add(1, std::memory_order_relaxed);
  ShmPostmortemSlot& slot = block->slots[cursor % kShmSlots];
  const std::uint32_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_relaxed);  // Odd: write in progress.
  std::atomic_thread_fence(std::memory_order_release);
  ShmCopyString(slot.cause, kShmCauseCap, observation.cause);
  ShmCopyString(slot.text, kShmTextCap, observation.text);
  slot.seq.store(seq + 2, std::memory_order_release);
}

// Newest consistent snapshot in the ring ("" cause/text when none was published).
TrialObservation SandboxHarvestPostmortem(const ShmBlock* block) {
  TrialObservation best;
  std::uint32_t best_seq = 0;
  for (const ShmPostmortemSlot& slot : block->slots) {
    const std::uint32_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1u) != 0 || before < best_seq) {
      continue;
    }
    TrialObservation candidate;
    candidate.cause = slot.cause;
    candidate.text = slot.text;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != before) {
      continue;  // Torn by a concurrent write; an older slot is still consistent.
    }
    best_seq = before;
    best = std::move(candidate);
  }
  return best;
}

// Child-side body; never returns. Everything the trial does — constructor included —
// happens after the fork, so a crash anywhere is contained.
[[noreturn]] void RunSandboxChild(ShmBlock* block,
                                  const SupervisableTrialFactory& factory,
                                  std::uint64_t seed,
                                  const SupervisorOptions& options) {
  g_sandbox_block = block;
  struct sigaction action {};
  action.sa_handler = SandboxCrashHandler;
  sigemptyset(&action.sa_mask);
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    sigaction(sig, &action, nullptr);
  }
  // std::terminate (uncaught exception in a trial thread, broken invariant) funnels
  // into SIGABRT via abort(), which the handler above converts; record the nicer
  // label first.
  std::set_terminate([] {
    if (g_sandbox_block != nullptr) {
      ShmCopyString(g_sandbox_block->what, kShmWhatCap, "std::terminate");
    }
    std::abort();
  });

  block->heartbeat.fetch_add(1, std::memory_order_relaxed);
  TrialReport report;
  {
    const SupervisableTrial trial = factory(seed);

    // Heartbeat + live-postmortem publisher: keeps the ring fresh so the parent can
    // harvest a recent snapshot after SIGKILLing a hung child.
    std::atomic<bool> stop{false};
    std::thread publisher;
    if (trial.observe) {
      publisher = std::thread([&] {
        const auto period = std::max<std::chrono::milliseconds>(
            options.sandbox_poll, std::chrono::milliseconds(1));
        while (!stop.load(std::memory_order_relaxed)) {
          block->heartbeat.fetch_add(1, std::memory_order_relaxed);
          SandboxPublishPostmortem(block, trial.observe());
          std::this_thread::sleep_for(period);
        }
      });
    }

    try {
      report = trial.run();
    } catch (const std::exception& e) {
      ShmCopyString(block->what, kShmWhatCap, e.what());
      block->signal_number = 0;
      block->state.store(kShmCrashed, std::memory_order_release);
      _exit(125);
    } catch (...) {
      ShmCopyString(block->what, kShmWhatCap, "unknown exception");
      block->signal_number = 0;
      block->state.store(kShmCrashed, std::memory_order_release);
      _exit(125);
    }
    stop.store(true, std::memory_order_relaxed);
    if (publisher.joinable()) {
      publisher.join();
    }
  }

  // Ship the report; shed its biggest fields one by one if it cannot fit.
  std::string payload = EncodeTrialReport(report);
  if (payload.size() >= kShmReportCap) {
    report.postmortem.clear();
    payload = EncodeTrialReport(report);
  }
  if (payload.size() >= kShmReportCap) {
    report.anomaly_report.clear();
    payload = EncodeTrialReport(report);
  }
  if (payload.size() >= kShmReportCap) {
    TrialReport minimal;
    minimal.message = report.message.substr(0, 1024);
    minimal.anomalies = report.anomalies;
    payload = EncodeTrialReport(minimal);
  }
  std::memcpy(block->report, payload.data(), payload.size());
  block->report_size = static_cast<std::uint32_t>(payload.size());
  block->state.store(kShmDone, std::memory_order_release);
  _exit(0);
}

SupervisedTrialResult RunSandboxedAttempt(const SupervisableTrialFactory& factory,
                                          std::uint64_t seed,
                                          const SupervisorOptions& options) {
  SupervisedTrialResult result;
  ActiveTrialScope active;

  void* mapping = mmap(nullptr, sizeof(ShmBlock), PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mapping == MAP_FAILED) {
    // No shared memory, no sandbox: degrade to in-process supervision.
    return RunInProcessAttempt(factory(seed), options);
  }
  ShmBlock* block = new (mapping) ShmBlock();

  const pid_t child = fork();
  if (child < 0) {
    munmap(mapping, sizeof(ShmBlock));
    return RunInProcessAttempt(factory(seed), options);
  }
  if (child == 0) {
    RunSandboxChild(block, factory, seed, options);  // _exits; never returns.
  }

  const bool untimed = options.trial_deadline.count() <= 0;
  const Deadline deadline = Deadline::After(
      untimed ? std::chrono::hours(24) : std::chrono::duration_cast<Deadline::Clock::duration>(
                                             options.trial_deadline));
  int status = 0;
  bool exited = false;
  for (;;) {
    const pid_t waited = waitpid(child, &status, WNOHANG);
    if (waited == child) {
      exited = true;
      break;
    }
    if (!untimed && deadline.Expired()) {
      break;
    }
    std::this_thread::sleep_for(options.sandbox_poll);
  }

  if (!exited) {
    // Deadline: the reap no in-process mechanism can refuse.
    kill(child, SIGKILL);
    waitpid(child, &status, 0);
    result.reaped = true;
    result.report.message = DeadlineMessage(options);
    const TrialObservation observation = SandboxHarvestPostmortem(block);
    result.report.postmortem_cause = observation.cause;
    result.report.postmortem = observation.text;
  } else {
    const std::uint32_t state = block->state.load(std::memory_order_acquire);
    if (state == kShmDone &&
        block->report_size <= kShmReportCap) {
      if (!DecodeTrialReport(
              std::string(block->report, block->report_size), &result.report)) {
        result.crashed = true;
        result.crash.crashed = true;
        result.crash.what = "sandbox report unreadable";
        result.report.message = "crashed: sandbox report unreadable";
      }
    } else {
      result.crashed = true;
      result.crash.crashed = true;
      if (state == kShmCrashed) {
        result.crash.signal_number = block->signal_number;
        result.crash.what = block->what;
      } else if (WIFSIGNALED(status)) {
        result.crash.signal_number = WTERMSIG(status);
        result.crash.what = std::string("signal ") + std::to_string(WTERMSIG(status)) +
                            " (" + SignalName(WTERMSIG(status)) + ")";
      } else {
        result.crash.what =
            "exited with status " + std::to_string(WEXITSTATUS(status));
      }
      const TrialObservation observation = SandboxHarvestPostmortem(block);
      result.crash.postmortem_cause = observation.cause;
      result.crash.postmortem = observation.text;
      result.report.message = "crashed: " + result.crash.what;
      result.report.postmortem_cause = observation.cause;
      result.report.postmortem = observation.text;
    }
  }
  munmap(mapping, sizeof(ShmBlock));
  return result;
}

#endif  // SYNEVAL_SANDBOX_AVAILABLE

}  // namespace

SupervisedTrialResult RunSupervisedTrial(const SupervisableTrial& trial,
                                         const SupervisorOptions& options) {
  return RunInProcessAttempt(trial, options);
}

SupervisedTrialResult RunSupervisedSeed(const SupervisableTrialFactory& factory,
                                        std::uint64_t seed,
                                        const SupervisorOptions& options,
                                        SupervisorStats* stats) {
  SupervisorStats local;
  SupervisedTrialResult result;
  const int max_attempts = std::max(1, options.max_attempts);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      ++local.retried;
      std::this_thread::sleep_for(options.retry_backoff * (1 << (attempt - 2)));
    }
#if SYNEVAL_SANDBOX_AVAILABLE
    if (options.sandbox) {
      result = RunSandboxedAttempt(factory, seed, options);
    } else {
      result = RunInProcessAttempt(factory(seed), options);
    }
#else
    result = RunInProcessAttempt(factory(seed), options);
#endif
    result.attempts = attempt;
    local.reaped += result.reaped ? 1 : 0;
    local.crashed += result.crashed ? 1 : 0;
    if (!result.Catastrophic()) {
      break;
    }
  }
  if (stats != nullptr) {
    *stats += local;
  }
  return result;
}

SupervisedSweepReport SuperviseSweep(const std::vector<SupervisedCell>& cells,
                                     int num_seeds, std::uint64_t base_seed,
                                     const SupervisorOptions& options) {
  SupervisedSweepReport report;
  report.cells.reserve(cells.size());
  for (const SupervisedCell& cell : cells) {
    SupervisedCellResult cr;
    cr.id = cell.id;
    int catastrophic = 0;
    for (int i = 0; i < num_seeds; ++i) {
      const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
      const SupervisedTrialResult trial =
          RunSupervisedSeed(cell.trial, seed, options, &cr.stats);
      // Same accumulation the plain sweeps run, so a healthy cell's outcome is
      // bit-identical to an unsupervised sweep of it.
      sweep_internal::AccumulateTrial(
          [&trial](std::uint64_t) { return trial.report; }, seed, cr.outcome);
      ++cr.completed_seeds;
      if (trial.Catastrophic()) {
        ++catastrophic;
        cr.last_crash = trial.crash;
        cr.last_postmortem_cause = trial.report.postmortem_cause;
        cr.last_postmortem = trial.report.postmortem;
        if (catastrophic >= std::max(1, options.quarantine_after)) {
          cr.quarantined = true;
          ++cr.stats.quarantined;
          std::ostringstream reason;
          reason << catastrophic << " catastrophic trial"
                 << (catastrophic == 1 ? "" : "s") << " (last: "
                 << (trial.reaped ? DeadlineMessage(options)
                                  : "crashed: " + trial.crash.what)
                 << ") after " << cr.completed_seeds << "/" << num_seeds << " seeds";
          cr.quarantine_reason = reason.str();
          break;
        }
      }
    }
    report.totals += cr.stats;
    report.cells.push_back(std::move(cr));
  }
  return report;
}

int SupervisedSweepReport::QuarantinedCells() const {
  int count = 0;
  for (const SupervisedCellResult& cell : cells) {
    count += cell.quarantined ? 1 : 0;
  }
  return count;
}

SweepOutcome SupervisedSweepReport::MergedHealthyOutcome() const {
  SweepOutcome merged;
  for (const SupervisedCellResult& cell : cells) {
    if (cell.quarantined) {
      continue;
    }
    SweepOutcome copy = cell.outcome;
    sweep_internal::MergeOutcome(merged, std::move(copy));
  }
  return merged;
}

std::string SupervisedSweepReport::QuarantineJson() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"quarantined_cells\": " << QuarantinedCells() << ",\n";
  out << "  \"reaped\": " << totals.reaped << ",\n";
  out << "  \"crashed\": " << totals.crashed << ",\n";
  out << "  \"retried\": " << totals.retried << ",\n";
  out << "  \"cells\": [";
  bool first = true;
  for (const SupervisedCellResult& cell : cells) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"id\": \"" << JsonEscape(cell.id) << "\", \"quarantined\": "
        << (cell.quarantined ? "true" : "false")
        << ", \"completed_seeds\": " << cell.completed_seeds
        << ", \"runs\": " << cell.outcome.runs
        << ", \"failures\": " << cell.outcome.failures
        << ", \"reaped\": " << cell.stats.reaped
        << ", \"crashed\": " << cell.stats.crashed
        << ", \"retried\": " << cell.stats.retried;
    if (cell.quarantined) {
      out << ", \"reason\": \"" << JsonEscape(cell.quarantine_reason) << "\"";
    }
    if (cell.last_crash.crashed) {
      out << ", \"crash\": {\"signal\": " << cell.last_crash.signal_number
          << ", \"what\": \"" << JsonEscape(cell.last_crash.what) << "\"}";
    }
    if (!cell.last_postmortem_cause.empty() || !cell.last_postmortem.empty()) {
      out << ", \"postmortem_cause\": \"" << JsonEscape(cell.last_postmortem_cause)
          << "\", \"postmortem\": \"" << JsonEscape(cell.last_postmortem) << "\"";
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

bool SupervisedSweepReport::WriteQuarantineFile(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return false;
    }
    out << QuarantineJson();
    out.flush();
    if (!out) {
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace syneval
