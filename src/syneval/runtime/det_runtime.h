// DetRuntime: a deterministic, cooperatively scheduled Runtime.
//
// Exactly one managed thread executes at any time; at every scheduling point (mutex
// acquire/release, condition wait/notify, explicit Yield) control returns to a driver
// which asks a pluggable Schedule which runnable thread proceeds. Because mechanisms in
// this library synchronize exclusively through Runtime primitives, the set of scheduling
// points covers every synchronization-relevant interleaving, and a (schedule, seed) pair
// fully determines the execution — any behaviour found by schedule search is replayable.
//
// DetRuntime also detects deadlock (no runnable threads while some are blocked) and
// livelock (step-limit exceeded) and reports the wait-for state of every stuck thread.
// This is what lets the test suite *exhibit* the nested-monitor-call deadlock of
// [Lister 77] discussed in Sections 2 and 5.2 of the paper, rather than merely assert
// that it would happen.
//
// Usage:
//   DetRuntime rt(std::make_unique<RandomSchedule>(seed));
//   auto t1 = rt.StartThread("producer", [&] { ... });
//   auto t2 = rt.StartThread("consumer", [&] { ... });
//   DetRuntime::RunResult result = rt.Run();   // Drives until completion or deadlock.
//   ASSERT_TRUE(result.completed) << result.report;

#ifndef SYNEVAL_RUNTIME_DET_RUNTIME_H_
#define SYNEVAL_RUNTIME_DET_RUNTIME_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "syneval/fault/injector.h"
#include "syneval/runtime/runtime.h"
#include "syneval/runtime/schedule.h"

namespace syneval {

class DetRuntime : public Runtime {
 public:
  struct Options {
    // Abort the run (reporting step_limit) after this many scheduling steps; guards
    // against livelocks and starvation loops in exploratory tests.
    std::uint64_t max_steps = 2'000'000;
    // Insert a preemption point before every mutex acquisition (more interleavings).
    bool preempt_before_lock = true;
    // Insert a preemption point after notify operations (more interleavings).
    bool preempt_after_notify = true;
    // Run AnomalyDetector::DiagnoseStuck() when the step limit aborts the run, not only
    // on deadlock. At the limit every *blocked* thread is parked at a scheduling point,
    // so classifying those is still sound; the runnable threads that kept the clock
    // advancing (a livelock, or an injected stall burning the budget) are simply not
    // classified. Off by default: an exploratory step limit is usually a test
    // configuration artifact, not an anomaly. The chaos harness turns it on so stall
    // faults — which hang nothing but starve every blocked peer — become detectable.
    bool diagnose_on_step_limit = false;
  };

  struct RunResult {
    bool completed = false;    // All threads ran to completion.
    bool deadlocked = false;   // Some threads remained blocked with none runnable.
    bool step_limit = false;   // Options::max_steps exceeded.
    bool aborted = false;      // RequestAbort() ended the run before completion.
    std::uint64_t steps = 0;   // Scheduling steps taken.
    std::string report;        // Human-readable diagnosis when !completed.
  };

  explicit DetRuntime(std::unique_ptr<Schedule> schedule);
  DetRuntime(std::unique_ptr<Schedule> schedule, Options options);
  ~DetRuntime() override;

  DetRuntime(const DetRuntime&) = delete;
  DetRuntime& operator=(const DetRuntime&) = delete;

  // Runtime interface ------------------------------------------------------------------
  std::unique_ptr<RtMutex> CreateMutex() override;
  std::unique_ptr<RtCondVar> CreateCondVar() override;
  std::unique_ptr<RtThread> StartThread(std::string name, std::function<void()> body) override;
  void Yield() override;
  std::uint32_t CurrentThreadId() override;
  std::uint64_t NowNanos() override;
  const char* name() const override { return "det"; }
  bool Aborting() const override;

  // Drives the schedule until every managed thread finished, deadlock, or step limit.
  // Must be called from the (unmanaged) thread that constructed the runtime, at most
  // once. Threads may still be started from inside managed threads while running.
  RunResult Run();

  // Asks the driver to end the run at its next scheduling decision: the run reports
  // `aborted` with a stuck-thread diagnosis (every blocked thread is parked at a
  // scheduling point when the driver holds control, so the classification is as sound
  // as the deadlock path's) and tears the remaining threads down exactly as a deadlock
  // would. Safe from any thread, any time; a no-op after the run ended. The one thing
  // it cannot interrupt is a managed thread wedged in non-synchronizing compute —
  // the driver only regains control at scheduling points (the process sandbox in
  // runtime/supervisor.h covers that case).
  void RequestAbort();

 private:
  struct Tcb;
  class DetMutex;
  class DetCondVar;
  class DetThread;

  // Thrown inside managed threads to unwind them during post-deadlock teardown.
  struct AbortException {};

  // Transfers control from the calling managed thread back to the driver, leaving the
  // thread in `state` (kReady for a yield, blocked states otherwise). Called with mu_
  // held; returns with mu_ held once the driver grants the token again.
  void SwitchOutLocked(std::unique_lock<std::mutex>& lock, Tcb* tcb, int state,
                       const void* wait_object, std::string wait_desc);

  // Marks a thread runnable (driver or running peer has mu_ held).
  void MakeReadyLocked(Tcb* tcb);

  // Consults the attached fault injector (if any) at `site` for the calling thread.
  // Called with mu_ held; never fires during teardown.
  FaultDecision FaultDecisionLocked(Tcb* tcb, FaultSite site);

  // Marks every timed waiter whose virtual deadline has passed runnable. Called by the
  // driver with mu_ held.
  void WakeExpiredTimedWaitersLocked();

  // Requires a managed calling thread; returns its Tcb.
  Tcb* CurrentTcbChecked() const;

  std::string BuildStuckReportLocked(const char* reason);

  std::unique_ptr<Schedule> schedule_;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Tcb>> threads_;
  std::uint64_t step_ = 0;
  bool running_ = false;
  bool abort_ = false;
  bool abort_requested_ = false;  // RequestAbort() fired; driver acts at the next step.
  bool ran_ = false;
};

}  // namespace syneval

#endif  // SYNEVAL_RUNTIME_DET_RUNTIME_H_
