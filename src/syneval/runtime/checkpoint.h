// Checkpoint store: crash-safe persistence of folded sweep chunks, so a killed sweep
// resumes and merges bit-identical to an uninterrupted run.
//
// The parallel sweep engine (runtime/parallel_sweep.h) already guarantees that a sweep
// aggregate is a pure function of (suite, seed range): chunks are folded independently
// and merged in chunk order. That makes chunk outcomes the natural checkpoint unit —
// each one is immutable once computed and keyed by everything that determined it
// (caller scope, sweep kind, base seed, seed count, chunk layout, chunk index). This
// module extends the PR 5 determinism guarantee across process lifetimes:
//
//   * CheckpointStore maps chunk keys to encoded chunk outcomes and persists the map
//     with an atomic write-temp-then-rename snapshot. The on-disk file is therefore
//     always a complete, parseable snapshot; a SIGKILL between snapshots loses at most
//     the chunks folded since the last flush, never the file's integrity.
//   * EncodeOutcome/DecodeOutcome (and the chaos/trial-report variants) are LOSSLESS
//     over every aggregate field — counts, seed lists, first-failure strings, stored
//     postmortems, the chaos cause histogram — so a resumed sweep's merged outcome,
//     and hence the bench JSON rendered from it, is byte-identical to the clean run.
//
// Format (docs/RESILIENCE.md): a header line "syneval-checkpoint v1", then one
// "<key>\t<payload>" line per chunk. Keys and payloads are escaped so they contain no
// tab or newline; unparseable lines are skipped on load (a truncated or corrupted
// entry costs a re-fold of that chunk, nothing more). Payloads are "k=v;k=v" records
// with the same escaping. No external serialization library — the runtime layer sits
// below syneval_core, so it cannot use the scorecard JSON helpers.
//
// Staleness: the store deliberately does NOT hash the binary. Keys embed the caller's
// scope string (suite, case, workload scale, fault plan), which callers must extend
// whenever the trial's meaning changes; delete the file when in doubt. CI nightly jobs
// start from an empty workspace, so resume there only ever sees same-binary snapshots.

#ifndef SYNEVAL_RUNTIME_CHECKPOINT_H_
#define SYNEVAL_RUNTIME_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "syneval/runtime/explore.h"

namespace syneval {

// Escapes/unescapes a string so it contains none of the record structure characters
// ('\t', '\n', ';', '=', ',', '\\'). Unescape(Escape(s)) == s for every s.
std::string CheckpointEscape(std::string_view s);
std::string CheckpointUnescape(std::string_view s);

// Lossless codecs for the sweep aggregates. Decode returns false (leaving *out
// untouched on required-field failures) when the payload is malformed or from an
// incompatible writer; callers treat that as a cache miss and re-fold the chunk.
std::string EncodeOutcome(const SweepOutcome& outcome);
bool DecodeOutcome(const std::string& payload, SweepOutcome* out);
std::string EncodeChaosOutcome(const ChaosSweepOutcome& outcome);
bool DecodeChaosOutcome(const std::string& payload, ChaosSweepOutcome* out);

// TrialReport codec, shared with the supervisor's process sandbox (supervisor.h):
// the child serializes its report into shared memory with this.
std::string EncodeTrialReport(const TrialReport& report);
bool DecodeTrialReport(const std::string& payload, TrialReport* out);

// Key for one chunk of one sweep. `scope` identifies the caller (bench name, suite
// case, workload scale, fault plan — everything that shapes the trial beyond the
// seed); `kind` is the sweep flavor ("sweep" / "chaos"). The chunk layout parameters
// are part of the key so a file written under one layout can never satisfy another.
std::string ChunkKey(std::string_view scope, std::string_view kind,
                     std::uint64_t base_seed, int num_seeds, int chunk_seeds,
                     int chunk_index);

// Thread-safe key→payload store with atomic snapshot persistence. One store is
// typically shared by every sweep of a bench invocation (each sweep contributing its
// own scope-disambiguated keys).
class CheckpointStore {
 public:
  // Does not touch the filesystem; call Load() to read an existing snapshot.
  explicit CheckpointStore(std::string path);
  // Flushes pending commits (best effort — errors are swallowed; call Flush()
  // explicitly to observe them).
  ~CheckpointStore();

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  // Reads the snapshot file if present. Returns the number of entries loaded (0 when
  // the file is missing or empty). Malformed lines are skipped, duplicate keys keep
  // the last occurrence. May be called once, before the store is shared with workers.
  int Load();

  // Returns true and fills *payload when `key` is present (counted in hits()).
  bool Lookup(const std::string& key, std::string* payload) const;

  // Inserts or replaces `key` and schedules persistence: every flush_every()-th
  // commit triggers an atomic snapshot. Safe from concurrent workers.
  void Commit(const std::string& key, std::string payload);

  // Atomically persists the current map (write "<path>.tmp", then rename over
  // `path`). Returns false on I/O failure; the previous snapshot is left intact.
  bool Flush();

  // Commits between automatic snapshots (default 1: every commit flushes — cheap at
  // sweep-chunk granularity, and maximally crash-tolerant).
  void SetFlushEvery(int n);

  const std::string& path() const { return path_; }
  int size() const;
  // Successful Lookup() calls — i.e. chunks a resumed sweep did not have to re-fold.
  int hits() const;

 private:
  bool FlushLocked();

  const std::string path_;
  mutable std::mutex mu_;
  std::map<std::string, std::string> entries_;
  int flush_every_ = 1;
  int pending_ = 0;  // Commits since the last flush.
  mutable int hits_ = 0;
};

}  // namespace syneval

#endif  // SYNEVAL_RUNTIME_CHECKPOINT_H_
