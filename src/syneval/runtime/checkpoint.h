// Checkpoint store: crash-safe persistence of folded sweep chunks, so a killed sweep
// resumes and merges bit-identical to an uninterrupted run.
//
// The parallel sweep engine (runtime/parallel_sweep.h) already guarantees that a sweep
// aggregate is a pure function of (suite, seed range): chunks are folded independently
// and merged in chunk order. That makes chunk outcomes the natural checkpoint unit —
// each one is immutable once computed and keyed by everything that determined it
// (caller scope, sweep kind, base seed, seed count, chunk layout, chunk index). This
// module extends the PR 5 determinism guarantee across process lifetimes:
//
//   * CheckpointStore maps chunk keys to encoded chunk outcomes and persists them as
//     a snapshot + write-ahead journal pair. Every Commit() appends one flushed
//     "<key>\t<payload>" line to "<path>.journal" — durable immediately, so a SIGKILL
//     at ANY point loses at most the one append it interrupted — and every
//     flush_every()-th append COMPACTS: the full map is rewritten as a fresh snapshot
//     with the existing atomic write-temp-then-rename, then the journal is truncated.
//     Load() reads the snapshot and replays the journal over it (later entries win).
//     A torn final append (no terminating newline), a malformed journal line, or a
//     crash anywhere inside compaction all degrade to cache misses: the snapshot is
//     always a complete parseable file, and journal entries that survived a
//     mid-compaction crash merely replay as idempotent duplicates.
//   * EncodeOutcome/DecodeOutcome (and the chaos/trial-report variants) are LOSSLESS
//     over every aggregate field — counts, seed lists, first-failure strings, stored
//     postmortems, the chaos cause histogram — so a resumed sweep's merged outcome,
//     and hence the bench JSON rendered from it, is byte-identical to the clean run.
//
// Format (docs/RESILIENCE.md): the snapshot is a header line "syneval-checkpoint v1",
// then one "<key>\t<payload>" line per chunk; the journal is a header line
// "syneval-journal v1", then the same line format in append order. Keys and payloads
// are escaped so they contain no tab or newline; unparseable lines are skipped on
// load (a truncated or corrupted entry costs a re-fold of that chunk, nothing more).
// Payloads are "k=v;k=v" records with the same escaping. No external serialization
// library — the runtime layer sits below syneval_core, so it cannot use the
// scorecard JSON helpers.
//
// Staleness: the store deliberately does NOT hash the binary. Keys embed the caller's
// scope string (suite, case, workload scale, fault plan), which callers must extend
// whenever the trial's meaning changes; delete the file when in doubt. CI nightly jobs
// start from an empty workspace, so resume there only ever sees same-binary snapshots.

#ifndef SYNEVAL_RUNTIME_CHECKPOINT_H_
#define SYNEVAL_RUNTIME_CHECKPOINT_H_

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "syneval/runtime/explore.h"

namespace syneval {

// Escapes/unescapes a string so it contains none of the record structure characters
// ('\t', '\n', ';', '=', ',', '\\'). Unescape(Escape(s)) == s for every s.
std::string CheckpointEscape(std::string_view s);
std::string CheckpointUnescape(std::string_view s);

// Lossless codecs for the sweep aggregates. Decode returns false (leaving *out
// untouched on required-field failures) when the payload is malformed or from an
// incompatible writer; callers treat that as a cache miss and re-fold the chunk.
std::string EncodeOutcome(const SweepOutcome& outcome);
bool DecodeOutcome(const std::string& payload, SweepOutcome* out);
std::string EncodeChaosOutcome(const ChaosSweepOutcome& outcome);
bool DecodeChaosOutcome(const std::string& payload, ChaosSweepOutcome* out);

// TrialReport codec, shared with the supervisor's process sandbox (supervisor.h):
// the child serializes its report into shared memory with this.
std::string EncodeTrialReport(const TrialReport& report);
bool DecodeTrialReport(const std::string& payload, TrialReport* out);

// Key for one chunk of one sweep. `scope` identifies the caller (bench name, suite
// case, workload scale, fault plan — everything that shapes the trial beyond the
// seed); `kind` is the sweep flavor ("sweep" / "chaos"). The chunk layout parameters
// are part of the key so a file written under one layout can never satisfy another.
std::string ChunkKey(std::string_view scope, std::string_view kind,
                     std::uint64_t base_seed, int num_seeds, int chunk_seeds,
                     int chunk_index);

// Thread-safe key→payload store with write-ahead-journal persistence and periodic
// snapshot compaction. One store is typically shared by every sweep of a bench
// invocation (each sweep contributing its own scope-disambiguated keys).
class CheckpointStore {
 public:
  // Does not touch the filesystem; call Load() to read an existing snapshot+journal.
  explicit CheckpointStore(std::string path);
  // Every commit is already durable in the journal; the destructor only closes it.
  ~CheckpointStore();

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  // Reads the snapshot file if present, then replays "<path>.journal" over it (later
  // entries win; the replayed-line count lands in replayed()). Returns the number of
  // distinct entries loaded (0 when both files are missing or empty). Malformed or
  // torn lines are skipped, duplicate keys keep the last occurrence. May be called
  // once, before the store is shared with workers.
  int Load();

  // Returns true and fills *payload when `key` is present (counted in hits()).
  bool Lookup(const std::string& key, std::string* payload) const;

  // Inserts or replaces `key`, appending it to the write-ahead journal (flushed per
  // append, so the commit survives SIGKILL immediately); every flush_every()-th
  // append triggers compaction. Safe from concurrent workers.
  void Commit(const std::string& key, std::string payload);

  // Compaction: atomically rewrites the snapshot from the full map (write
  // "<path>.tmp", then rename over `path`), then truncates the journal. Returns
  // false on I/O failure; the previous snapshot (and the journal) are left intact.
  bool Flush();

  // Appends between automatic compactions (default 64 — the journal stays short
  // without paying a whole-map rewrite per commit; SetFlushEvery(1) restores the
  // old snapshot-per-commit behavior).
  void SetFlushEvery(int n);

  const std::string& path() const { return path_; }
  std::string journal_path() const { return path_ + ".journal"; }
  int size() const;
  // Successful Lookup() calls — i.e. chunks a resumed sweep did not have to re-fold.
  int hits() const;
  // Journal telemetry, rendered as the schema-v5 "journal" object by the bench
  // reporter: appends written this run, compactions performed, and journal entries
  // Load() replayed over the snapshot.
  int appends() const;
  int compactions() const;
  int replayed() const;

 private:
  bool CompactLocked();
  bool AppendJournalLocked(const std::string& key, const std::string& payload);
  int ReplayJournalLocked();

  const std::string path_;
  mutable std::mutex mu_;
  std::map<std::string, std::string> entries_;
  std::ofstream journal_;  // Lazily opened in append mode; closed by compaction.
  int flush_every_ = 64;   // Appends between automatic compactions.
  int pending_ = 0;        // Appends since the last compaction.
  int appends_ = 0;
  int compactions_ = 0;
  int replayed_ = 0;
  mutable int hits_ = 0;
};

}  // namespace syneval

#endif  // SYNEVAL_RUNTIME_CHECKPOINT_H_
