#include "syneval/runtime/explore.h"

#include <sstream>

namespace syneval {

std::string SweepOutcome::Summary() const {
  std::ostringstream os;
  os << passes << "/" << runs << " schedules passed";
  if (failures > 0) {
    os << "; " << failures << " failed (first failing seed";
    if (!failing_seeds.empty()) {
      os << " " << failing_seeds.front();
    }
    os << ": " << first_failure << ")";
  }
  return os.str();
}

SweepOutcome SweepSchedules(int num_seeds,
                            const std::function<std::string(std::uint64_t)>& trial,
                            std::uint64_t base_seed) {
  SweepOutcome outcome;
  for (int i = 0; i < num_seeds; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    std::string message = trial(seed);
    ++outcome.runs;
    if (message.empty()) {
      ++outcome.passes;
    } else {
      ++outcome.failures;
      outcome.failing_seeds.push_back(seed);
      if (outcome.first_failure.empty()) {
        outcome.first_failure = std::move(message);
      }
    }
  }
  return outcome;
}

}  // namespace syneval
