#include "syneval/runtime/explore.h"

#include <exception>
#include <iomanip>
#include <sstream>
#include <utility>

#include "syneval/fault/fault.h"
#include "syneval/runtime/parallel_sweep.h"

namespace syneval {

std::string SweepOutcome::Summary() const {
  std::ostringstream os;
  os << passes << "/" << runs << " schedules passed";
  if (failures > 0) {
    os << "; " << failures << " failed (first failing seed";
    if (!failing_seeds.empty()) {
      os << " " << failing_seeds.front();
    }
    os << ": " << first_failure << ")";
  }
  if (anomalies.total() > 0) {
    os << "; anomalies: " << anomalies.Summary();
    if (!first_anomaly.empty()) {
      os << " (first: " << first_anomaly << ")";
    }
  }
  return os.str();
}

std::string SweepOutcome::PostmortemDump() const {
  if (postmortems.empty()) {
    return "";
  }
  std::ostringstream os;
  os << "\n--- postmortems (" << postmortems_total << " total, " << postmortems.size()
     << " stored) ---";
  for (const SeedPostmortem& pm : postmortems) {
    os << "\nseed " << pm.seed << " [" << pm.cause << "]:\n" << pm.text;
  }
  return os.str();
}

namespace sweep_internal {

void AccumulateTrial(const std::function<TrialReport(std::uint64_t)>& trial,
                     std::uint64_t seed, SweepOutcome& outcome) {
  // An aborting trial (an exception escaping the workload) must not desynchronize the
  // rate denominators: the seed still counts as a run and the abort as a failure, so
  // FailureRate() and AnomalyRate() stay fractions of the same `runs` total no matter
  // where in the sweep the abort happens.
  TrialReport report;
  try {
    report = trial(seed);
  } catch (const std::exception& error) {
    report.message = std::string("trial aborted: ") + error.what();
  } catch (...) {
    report.message = "trial aborted: unknown exception";
  }
  ++outcome.runs;
  if (report.Passed()) {
    ++outcome.passes;
  } else {
    ++outcome.failures;
    outcome.failing_seeds.push_back(seed);
    if (outcome.first_failure.empty()) {
      outcome.first_failure = std::move(report.message);
    }
  }
  if (!report.anomalies.Clean()) {
    outcome.anomalies += report.anomalies;
    outcome.anomalous_seeds.push_back(seed);
    if (outcome.first_anomaly.empty()) {
      std::ostringstream os;
      os << "seed " << seed << ": "
         << (report.anomaly_report.empty() ? report.anomalies.Summary()
                                           : report.anomaly_report);
      outcome.first_anomaly = os.str();
    }
  }
  if (!report.postmortem.empty()) {
    ++outcome.postmortems_total;
    if (static_cast<int>(outcome.postmortems.size()) < kMaxStoredPostmortems) {
      outcome.postmortems.push_back(
          SeedPostmortem{seed, report.postmortem_cause, std::move(report.postmortem)});
    }
  }
  outcome.flight_evicted += report.flight_evicted;
}

void MergeOutcome(SweepOutcome& into, SweepOutcome&& chunk) {
  into.runs += chunk.runs;
  into.passes += chunk.passes;
  into.failures += chunk.failures;
  into.failing_seeds.insert(into.failing_seeds.end(), chunk.failing_seeds.begin(),
                            chunk.failing_seeds.end());
  if (into.first_failure.empty()) {
    into.first_failure = std::move(chunk.first_failure);
  }
  into.anomalies += chunk.anomalies;
  into.anomalous_seeds.insert(into.anomalous_seeds.end(), chunk.anomalous_seeds.begin(),
                              chunk.anomalous_seeds.end());
  if (into.first_anomaly.empty()) {
    into.first_anomaly = std::move(chunk.first_anomaly);
  }
  into.postmortems_total += chunk.postmortems_total;
  for (SeedPostmortem& pm : chunk.postmortems) {
    if (static_cast<int>(into.postmortems.size()) >= kMaxStoredPostmortems) {
      break;  // Chunks arrive in seed order, so truncation matches the serial sweep.
    }
    into.postmortems.push_back(std::move(pm));
  }
  into.flight_evicted += chunk.flight_evicted;
}

void AccumulateChaosTrial(
    const std::function<ChaosTrialOutcome(std::uint64_t, const FaultPlan*)>& trial,
    const FaultPlan& plan, std::uint64_t seed, ChaosSweepOutcome& outcome) {
  // Fault-on run: measure recall over faults that actually fired and did harm. A trial
  // that throws is folded in as hung, keeping `runs` a common denominator.
  ChaosTrialOutcome on;
  try {
    on = trial(seed, &plan);
  } catch (const std::exception& error) {
    on.hung = true;
    on.report = std::string("trial aborted: ") + error.what();
  } catch (...) {
    on.hung = true;
    on.report = "trial aborted: unknown exception";
  }
  if (on.skipped) {
    // Supervised sweeps: the cell was quarantined before this seed ran. Nothing
    // executed (the supervision wrapper short-circuits the fault-off run too), so no
    // denominator moves — the seed is only counted as skipped.
    ++outcome.skipped;
    return;
  }
  ++outcome.runs;
  if (!on.postmortem.empty()) {
    ++outcome.postmortems_total;
    if (static_cast<int>(outcome.postmortems.size()) < kMaxStoredPostmortems) {
      outcome.postmortems.push_back(
          SeedPostmortem{seed, on.postmortem_cause, on.postmortem});
    }
  }
  if (on.anomalies > 0) {
    // Per-cause histogram over flagged fault-on runs: the recall gate requires every
    // cause named here to match the injected family (an empty-string key means a trial
    // was flagged yet produced no postmortem — also a gate failure).
    ++outcome.postmortem_causes[on.postmortem_cause];
  }
  if (on.injected > 0) {
    ++outcome.injected_runs;
    if (on.hung) {
      ++outcome.harmful;
      if (on.anomalies > 0) {
        ++outcome.detected_harmful;
        outcome.detection_steps_total +=
            on.steps > on.first_injection_step ? on.steps - on.first_injection_step : 0;
      } else {
        outcome.missed_seeds.push_back(seed);
      }
    } else if (on.oracle_failed) {
      ++outcome.corrupted;
    } else if (on.completed) {
      ++outcome.absorbed;
    }
  }

  // Matched fault-off run: the same schedule seed with no injector attached. Any
  // detector finding here is a false positive by construction.
  ChaosTrialOutcome off;
  try {
    off = trial(seed, nullptr);
  } catch (const std::exception& error) {
    off.hung = true;
    off.report = std::string("trial aborted: ") + error.what();
  } catch (...) {
    off.hung = true;
    off.report = "trial aborted: unknown exception";
  }
  if (off.anomalies > 0) {
    ++outcome.clean_anomalies;
    outcome.fp_seeds.push_back(seed);
  }
  if (off.hung || off.oracle_failed) {
    ++outcome.clean_failures;
  }
  outcome.flight_evicted += on.flight_evicted + off.flight_evicted;
}

void MergeChaosOutcome(ChaosSweepOutcome& into, ChaosSweepOutcome&& chunk) {
  into.runs += chunk.runs;
  into.skipped += chunk.skipped;
  into.injected_runs += chunk.injected_runs;
  into.harmful += chunk.harmful;
  into.detected_harmful += chunk.detected_harmful;
  into.absorbed += chunk.absorbed;
  into.corrupted += chunk.corrupted;
  into.clean_anomalies += chunk.clean_anomalies;
  into.clean_failures += chunk.clean_failures;
  into.detection_steps_total += chunk.detection_steps_total;
  into.missed_seeds.insert(into.missed_seeds.end(), chunk.missed_seeds.begin(),
                           chunk.missed_seeds.end());
  into.fp_seeds.insert(into.fp_seeds.end(), chunk.fp_seeds.begin(),
                       chunk.fp_seeds.end());
  into.postmortems_total += chunk.postmortems_total;
  for (SeedPostmortem& pm : chunk.postmortems) {
    if (static_cast<int>(into.postmortems.size()) >= kMaxStoredPostmortems) {
      break;
    }
    into.postmortems.push_back(std::move(pm));
  }
  for (const auto& [cause, count] : chunk.postmortem_causes) {
    into.postmortem_causes[cause] += count;
  }
  into.flight_evicted += chunk.flight_evicted;
}

}  // namespace sweep_internal

SweepOutcome SweepSchedules(int num_seeds,
                            const std::function<std::string(std::uint64_t)>& trial,
                            std::uint64_t base_seed) {
  return SweepSchedules(
      num_seeds,
      [&trial](std::uint64_t seed) {
        TrialReport report;
        report.message = trial(seed);
        return report;
      },
      base_seed);
}

SweepOutcome SweepSchedules(int num_seeds,
                            const std::function<TrialReport(std::uint64_t)>& trial,
                            std::uint64_t base_seed) {
  SweepOutcome outcome;
  for (int i = 0; i < num_seeds; ++i) {
    sweep_internal::AccumulateTrial(trial, base_seed + static_cast<std::uint64_t>(i),
                                    outcome);
  }
  return outcome;
}

SweepOutcome SweepSchedules(int num_seeds,
                            const std::function<std::string(std::uint64_t)>& trial,
                            std::uint64_t base_seed, const ParallelOptions& parallel) {
  return ParallelSweepSchedules(num_seeds, trial, base_seed, parallel).outcome;
}

SweepOutcome SweepSchedules(int num_seeds,
                            const std::function<TrialReport(std::uint64_t)>& trial,
                            std::uint64_t base_seed, const ParallelOptions& parallel) {
  return ParallelSweepSchedules(num_seeds, trial, base_seed, parallel).outcome;
}

std::string ChaosSweepOutcome::Summary() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  os << injected_runs << "/" << runs << " fault-on runs injected; harmful " << harmful
     << ", detected " << detected_harmful;
  if (harmful > 0) {
    os << " (recall " << Recall() << ")";
  }
  os << "; absorbed " << absorbed;
  if (corrupted > 0) {
    os << "; corrupted " << corrupted;
  }
  os << "; fault-off anomalies " << clean_anomalies << "/" << runs;
  if (clean_failures > 0) {
    os << "; fault-off failures " << clean_failures;
  }
  if (detected_harmful > 0) {
    os << "; mean steps to detection " << MeanStepsToDetection();
  }
  if (skipped > 0) {
    os << "; skipped " << skipped << " (quarantine)";
  }
  return os.str();
}

ChaosSweepOutcome SweepChaos(
    int num_seeds,
    const std::function<ChaosTrialOutcome(std::uint64_t, const FaultPlan*)>& trial,
    const FaultPlan& plan, std::uint64_t base_seed) {
  ChaosSweepOutcome outcome;
  for (int i = 0; i < num_seeds; ++i) {
    sweep_internal::AccumulateChaosTrial(trial, plan,
                                         base_seed + static_cast<std::uint64_t>(i),
                                         outcome);
  }
  return outcome;
}

ChaosSweepOutcome SweepChaos(
    int num_seeds,
    const std::function<ChaosTrialOutcome(std::uint64_t, const FaultPlan*)>& trial,
    const FaultPlan& plan, std::uint64_t base_seed, const ParallelOptions& parallel) {
  return ParallelSweepChaos(num_seeds, trial, plan, base_seed, parallel).outcome;
}

}  // namespace syneval
