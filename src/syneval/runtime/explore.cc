#include "syneval/runtime/explore.h"

#include <exception>
#include <sstream>
#include <utility>

namespace syneval {

std::string SweepOutcome::Summary() const {
  std::ostringstream os;
  os << passes << "/" << runs << " schedules passed";
  if (failures > 0) {
    os << "; " << failures << " failed (first failing seed";
    if (!failing_seeds.empty()) {
      os << " " << failing_seeds.front();
    }
    os << ": " << first_failure << ")";
  }
  if (anomalies.total() > 0) {
    os << "; anomalies: " << anomalies.Summary();
    if (!first_anomaly.empty()) {
      os << " (first: " << first_anomaly << ")";
    }
  }
  return os.str();
}

SweepOutcome SweepSchedules(int num_seeds,
                            const std::function<std::string(std::uint64_t)>& trial,
                            std::uint64_t base_seed) {
  return SweepSchedules(
      num_seeds,
      [&trial](std::uint64_t seed) {
        TrialReport report;
        report.message = trial(seed);
        return report;
      },
      base_seed);
}

SweepOutcome SweepSchedules(int num_seeds,
                            const std::function<TrialReport(std::uint64_t)>& trial,
                            std::uint64_t base_seed) {
  SweepOutcome outcome;
  for (int i = 0; i < num_seeds; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    // An aborting trial (an exception escaping the workload) must not desynchronize the
    // rate denominators: the seed still counts as a run and the abort as a failure, so
    // FailureRate() and AnomalyRate() stay fractions of the same `runs` total no matter
    // where in the sweep the abort happens.
    TrialReport report;
    try {
      report = trial(seed);
    } catch (const std::exception& error) {
      report.message = std::string("trial aborted: ") + error.what();
    } catch (...) {
      report.message = "trial aborted: unknown exception";
    }
    ++outcome.runs;
    if (report.Passed()) {
      ++outcome.passes;
    } else {
      ++outcome.failures;
      outcome.failing_seeds.push_back(seed);
      if (outcome.first_failure.empty()) {
        outcome.first_failure = std::move(report.message);
      }
    }
    if (!report.anomalies.Clean()) {
      outcome.anomalies += report.anomalies;
      outcome.anomalous_seeds.push_back(seed);
      if (outcome.first_anomaly.empty()) {
        std::ostringstream os;
        os << "seed " << seed << ": "
           << (report.anomaly_report.empty() ? report.anomalies.Summary()
                                             : report.anomaly_report);
        outcome.first_anomaly = os.str();
      }
    }
  }
  return outcome;
}

}  // namespace syneval
