#include "syneval/runtime/schedule.h"

#include <algorithm>
#include <sstream>

namespace syneval {

std::size_t RandomSchedule::Pick(const std::vector<SchedCandidate>& candidates,
                                 std::uint64_t step) {
  (void)step;
  std::uniform_int_distribution<std::size_t> dist(0, candidates.size() - 1);
  return dist(rng_);
}

std::string RandomSchedule::Describe() const {
  std::ostringstream os;
  os << "random(seed=" << seed_ << ")";
  return os.str();
}

std::size_t RoundRobinSchedule::Pick(const std::vector<SchedCandidate>& candidates,
                                     std::uint64_t step) {
  (void)step;
  // Pick the smallest thread id strictly greater than the last-run id, wrapping around.
  std::size_t best = 0;
  bool found = false;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].thread_id > last_) {
      best = i;
      found = true;
      break;
    }
  }
  if (!found) {
    best = 0;  // Wrap to the lowest id.
  }
  last_ = candidates[best].thread_id;
  return best;
}

std::size_t FifoSchedule::Pick(const std::vector<SchedCandidate>& candidates,
                               std::uint64_t step) {
  (void)step;
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (candidates[i].ready_since < candidates[best].ready_since) {
      best = i;
    }
  }
  return best;
}

std::size_t ScriptedSchedule::Pick(const std::vector<SchedCandidate>& candidates,
                                   std::uint64_t step) {
  (void)step;
  while (pos_ < script_.size()) {
    const std::uint32_t wanted = script_[pos_];
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].thread_id == wanted) {
        ++pos_;
        return i;
      }
    }
    // The scripted thread is not runnable right now; skip that script entry so a stale
    // script cannot wedge the run.
    ++pos_;
  }
  return 0;
}

std::string ScriptedSchedule::Describe() const {
  std::ostringstream os;
  os << "scripted(len=" << script_.size() << ")";
  return os.str();
}

PctSchedule::PctSchedule(std::uint64_t seed, int change_points, std::uint64_t max_steps)
    : seed_(seed), rng_(seed) {
  std::uniform_int_distribution<std::uint64_t> dist(1, max_steps == 0 ? 1 : max_steps);
  for (int i = 0; i < change_points; ++i) {
    change_steps_.push_back(dist(rng_));
  }
  std::sort(change_steps_.begin(), change_steps_.end());
}

double PctSchedule::PriorityOf(std::uint32_t thread_id) {
  if (priorities_.size() <= thread_id) {
    priorities_.resize(thread_id + 1, -1.0);
  }
  if (priorities_[thread_id] < 0.0) {
    std::uniform_real_distribution<double> dist(1.0, 2.0);
    priorities_[thread_id] = dist(rng_);
  }
  return priorities_[thread_id];
}

std::size_t PctSchedule::Pick(const std::vector<SchedCandidate>& candidates,
                              std::uint64_t step) {
  std::size_t best = 0;
  double best_priority = -1.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double priority = PriorityOf(candidates[i].thread_id);
    if (priority > best_priority) {
      best_priority = priority;
      best = i;
    }
  }
  // At each change point, demote the chosen thread below everything else so a different
  // ordering prefix is explored from here on.
  if (!change_steps_.empty() && step >= change_steps_.front()) {
    change_steps_.erase(change_steps_.begin());
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    priorities_[candidates[best].thread_id] = dist(rng_);
  }
  return best;
}

std::string PctSchedule::Describe() const {
  std::ostringstream os;
  os << "pct(seed=" << seed_ << ", d=" << change_steps_.size() << ")";
  return os.str();
}

std::size_t GuidedSchedule::Pick(const std::vector<SchedCandidate>& candidates,
                                 std::uint64_t step) {
  Decision decision;
  decision.step = step;
  decision.candidates.reserve(candidates.size());
  for (const SchedCandidate& candidate : candidates) {
    decision.candidates.push_back(candidate.thread_id);
  }
  std::size_t index = 0;  // Fallback: candidates arrive ordered by id, so 0 = lowest.
  if (pos_ < prefix_.size()) {
    const std::uint32_t wanted = prefix_[pos_++];
    bool found = false;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].thread_id == wanted) {
        index = i;
        found = true;
        break;
      }
    }
    if (!found) {
      // The prefix was recorded against a different state than the one reached —
      // possible only if the caller's replay premise is wrong. Flag rather than guess.
      diverged_ = true;
    }
  }
  decision.chosen = candidates[index].thread_id;
  decisions_.push_back(std::move(decision));
  return index;
}

std::string GuidedSchedule::Describe() const {
  std::ostringstream os;
  os << "guided(prefix=" << prefix_.size() << ", taken=" << decisions_.size() << ")";
  return os.str();
}

std::unique_ptr<Schedule> MakeRandomSchedule(std::uint64_t seed) {
  return std::make_unique<RandomSchedule>(seed);
}

}  // namespace syneval
