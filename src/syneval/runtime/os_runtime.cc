#include "syneval/runtime/os_runtime.h"

#include <chrono>
#include <utility>

namespace syneval {

namespace {

thread_local std::uint32_t g_os_thread_id = 0;

class OsMutex : public RtMutex {
 public:
  void Lock() override { mu_.lock(); }
  void Unlock() override { mu_.unlock(); }

 private:
  std::mutex mu_;
};

class OsCondVar : public RtCondVar {
 public:
  void Wait(RtMutex& mutex) override { cv_.wait(mutex); }
  void NotifyOne() override { cv_.notify_one(); }
  void NotifyAll() override { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

class OsThread : public RtThread {
 public:
  OsThread(std::uint32_t id, std::function<void()> body) : id_(id) {
    thread_ = std::thread([id, body = std::move(body)]() {
      g_os_thread_id = id;
      body();
    });
  }

  ~OsThread() override {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  void Join() override {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  std::uint32_t id() const override { return id_; }

 private:
  std::uint32_t id_;
  std::thread thread_;
};

}  // namespace

std::unique_ptr<RtMutex> OsRuntime::CreateMutex() { return std::make_unique<OsMutex>(); }

std::unique_ptr<RtCondVar> OsRuntime::CreateCondVar() { return std::make_unique<OsCondVar>(); }

std::unique_ptr<RtThread> OsRuntime::StartThread(std::string name, std::function<void()> body) {
  (void)name;  // OS threads are labelled only by id; names matter for DetRuntime reports.
  const std::uint32_t id = next_thread_id_.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<OsThread>(id, std::move(body));
}

void OsRuntime::Yield() { std::this_thread::yield(); }

std::uint32_t OsRuntime::CurrentThreadId() { return g_os_thread_id; }

std::uint64_t OsRuntime::NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace syneval
