#include "syneval/runtime/os_runtime.h"

#include <chrono>
#include <utility>

#include "syneval/anomaly/detector.h"
#include "syneval/telemetry/metrics.h"
#include "syneval/telemetry/tracer.h"

namespace syneval {

namespace {

thread_local std::uint32_t g_os_thread_id = 0;

class OsMutex : public RtMutex {
 public:
  explicit OsMutex(OsRuntime* rt) : rt_(rt) {}

  void Lock() override {
    AnomalyDetector* det = rt_->anomaly_detector();
    if (det == nullptr) {
      mu_.lock();
      return;
    }
    const std::uint32_t tid = rt_->CurrentThreadId();
    if (!mu_.try_lock()) {
      det->OnBlock(tid, this);
      mu_.lock();
      det->OnWake(tid, this);
    }
    det->OnAcquire(tid, this);
  }

  void Unlock() override {
    if (AnomalyDetector* det = rt_->anomaly_detector()) {
      det->OnRelease(rt_->CurrentThreadId(), this);
    }
    mu_.unlock();
  }

 private:
  OsRuntime* rt_;
  std::mutex mu_;
};

class OsCondVar : public RtCondVar {
 public:
  explicit OsCondVar(OsRuntime* rt) : rt_(rt) {}

  void Wait(RtMutex& mutex) override {
    AnomalyDetector* det = rt_->anomaly_detector();
    TelemetryTracer* tracer = rt_->tracer();
    if (det == nullptr && tracer == nullptr) {
      cv_.wait(mutex);
      return;
    }
    const std::uint32_t tid = rt_->CurrentThreadId();
    waiting_.fetch_add(1, std::memory_order_relaxed);
    if (det != nullptr) {
      det->OnBlock(tid, this);
    }
    cv_.wait(mutex);
    if (det != nullptr) {
      det->OnWake(tid, this);
    }
    if (tracer != nullptr) {
      tracer->OnWake(this, tid, rt_->NowNanos());
    }
    waiting_.fetch_sub(1, std::memory_order_relaxed);
  }

  void NotifyOne() override {
    Signal(/*broadcast=*/false);
    cv_.notify_one();
  }

  void NotifyAll() override {
    Signal(/*broadcast=*/true);
    cv_.notify_all();
  }

 private:
  void Signal(bool broadcast) {
    if (AnomalyDetector* det = rt_->anomaly_detector()) {
      det->OnSignal(rt_->CurrentThreadId(), this,
                    static_cast<int>(waiting_.load(std::memory_order_relaxed)), broadcast);
    }
    if (TelemetryTracer* tracer = rt_->tracer()) {
      tracer->OnSignal(this, rt_->CurrentThreadId(), rt_->NowNanos(), broadcast);
    }
  }

  OsRuntime* rt_;
  std::condition_variable_any cv_;
  // Approximate waiter count for signal accounting; racy by nature under preemption
  // (the watchdog is a sampler, not an exact oracle), incremented before releasing the
  // user mutex in Wait so signal-while-holding-the-mutex sees it consistently.
  std::atomic<int> waiting_{0};
};

class OsThread : public RtThread {
 public:
  OsThread(std::uint32_t id, std::function<void()> body) : id_(id) {
    thread_ = std::thread([id, body = std::move(body)]() {
      g_os_thread_id = id;
      body();
    });
  }

  ~OsThread() override {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  void Join() override {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  std::uint32_t id() const override { return id_; }

 private:
  std::uint32_t id_;
  std::thread thread_;
};

}  // namespace

OsRuntime::~OsRuntime() { StopAnomalyWatchdog(); }

std::unique_ptr<RtMutex> OsRuntime::CreateMutex() {
  auto mutex = std::make_unique<OsMutex>(this);
  if (AnomalyDetector* det = anomaly_detector()) {
    det->RegisterResource(mutex.get(), ResourceKind::kLock, "mutex");
  }
  return mutex;
}

std::unique_ptr<RtCondVar> OsRuntime::CreateCondVar() {
  auto cv = std::make_unique<OsCondVar>(this);
  if (AnomalyDetector* det = anomaly_detector()) {
    det->RegisterResource(cv.get(), ResourceKind::kCondition, "condvar");
  }
  return cv;
}

std::unique_ptr<RtThread> OsRuntime::StartThread(std::string name, std::function<void()> body) {
  const std::uint32_t id = next_thread_id_.fetch_add(1, std::memory_order_relaxed);
  AnomalyDetector* det = anomaly_detector();
  if (det != nullptr) {
    det->RegisterThread(id, name);
    body = [det, id, body = std::move(body)]() {
      body();
      det->OnThreadFinish(id);
    };
  }
  return std::make_unique<OsThread>(id, std::move(body));
}

void OsRuntime::Yield() { std::this_thread::yield(); }

std::uint32_t OsRuntime::CurrentThreadId() { return g_os_thread_id; }

std::uint64_t OsRuntime::NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void OsRuntime::StartAnomalyWatchdog(std::chrono::milliseconds period) {
  AnomalyDetector* det = anomaly_detector();
  if (det == nullptr || watchdog_.joinable()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = false;
  }
  watchdog_ = std::thread([this, det, period] {
    std::unique_lock<std::mutex> lock(watchdog_mu_);
    while (!watchdog_stop_) {
      watchdog_cv_.wait_for(lock, period, [this] { return watchdog_stop_; });
      if (watchdog_stop_) {
        return;
      }
      lock.unlock();
      const std::int64_t now = static_cast<std::int64_t>(NowNanos());
      det->Poll(now);
#if SYNEVAL_TELEMETRY_ENABLED
      // Watchdog findings are visible continuously through the registry, not only in
      // anomaly reports: current blocked-thread count, the oldest wait's age, and the
      // running total of detections.
      if (MetricsRegistry* metrics = this->metrics()) {
        const AnomalyDetector::WaitSnapshot snap = det->SnapshotWaits(now);
        metrics->GetGauge("anomaly/blocked_threads").Set(snap.blocked_threads);
        metrics->GetGauge("anomaly/longest_wait_ns").Set(snap.longest_wait_nanos);
        metrics->GetGauge("anomaly/detections_total").Set(det->counts().total());
      }
#endif
      lock.lock();
    }
  });
}

void OsRuntime::StopAnomalyWatchdog() {
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) {
    watchdog_.join();
  }
}

}  // namespace syneval
