#include "syneval/runtime/os_runtime.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <random>
#include <utility>

#include "syneval/anomaly/detector.h"
#include "syneval/fault/fault.h"
#include "syneval/fault/injector.h"
#include "syneval/runtime/deadline.h"
#include "syneval/runtime/supervisor.h"
#include "syneval/telemetry/flight_recorder.h"
#include "syneval/telemetry/metrics.h"
#include "syneval/telemetry/postmortem.h"
#include "syneval/telemetry/tracer.h"

namespace syneval {

namespace {

thread_local std::uint32_t g_os_thread_id = 0;

// Consults the runtime's fault injector (if any) at `site`. Returns the decision;
// throws out of the calling primitive when the decision is a kill. Under OsRuntime the
// `steps` stall/delay parameter is interpreted as microseconds of real sleep.
FaultDecision ConsultInjector(OsRuntime* rt, FaultSite site) {
  FaultInjector* injector = rt->fault_injector();
  if (injector == nullptr) {
    return FaultDecision{};
  }
  FaultDecision fault = injector->Decide(site, rt->CurrentThreadId(), rt->NowNanos());
  if (fault && fault.kind == FaultKind::kKillThread) {
    throw ThreadKilledFault{};
  }
  return fault;
}

void SleepSteps(std::uint64_t steps) { std::this_thread::sleep_for(std::chrono::microseconds(steps)); }

// When the sampling watchdog flags fresh anomalies and SYNEVAL_POSTMORTEM_DIR is set,
// drop a postmortem artifact while the hang is still live — the same JSON the bench
// reporter embeds, but captured at detection time instead of after the run unwinds.
// File names carry a process-wide counter so repeated detections never clobber.
void WriteWatchdogPostmortem(OsRuntime* rt, const AnomalyDetector* det) {
  const char* dir = std::getenv("SYNEVAL_POSTMORTEM_DIR");
  if (dir == nullptr || *dir == '\0') {
    return;
  }
  const FlightRecorder* flight = rt->flight_recorder();
  if (flight == nullptr) {
    return;
  }
  const Postmortem pm = BuildPostmortem(*flight, det);
  if (pm.empty()) {
    return;
  }
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t index = counter.fetch_add(1, std::memory_order_relaxed);
  const std::string path =
      std::string(dir) + "/watchdog_" + std::to_string(index) + ".json";
  std::ofstream out(path);
  if (out) {
    out << pm.ToJson() << "\n";
  }
}

// Timestamps for flight-recorder events. Postmortems order events by recording seq,
// not time, so the few-ms resolution of CLOCK_MONOTONIC_COARSE (~5ns per read vs ~26ns
// for the precise clock) loses nothing diagnostic while keeping always-on recording
// inside the perf-baseline envelope.
std::uint64_t FlightNowNanos([[maybe_unused]] OsRuntime* rt) {
#if defined(CLOCK_MONOTONIC_COARSE)
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC_COARSE, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return rt->NowNanos();
#endif
}

class OsMutex : public RtMutex {
 public:
  explicit OsMutex(OsRuntime* rt) : rt_(rt) {}

  void Lock() override {
    if (FaultDecision fault = ConsultInjector(rt_, FaultSite::kLockPre)) {
      if (fault.kind == FaultKind::kDelayLock) {
        SleepSteps(fault.steps);  // Postponed before ever contending.
      }
    }
    AnomalyDetector* det = rt_->anomaly_detector();
    FlightRecorder* flight = rt_->flight_recorder();
    if (det == nullptr && flight == nullptr) {
      LockBlocking();
    } else {
      const std::uint32_t tid = rt_->CurrentThreadId();
      bool contended = false;
      if (!mu_.try_lock()) {
        contended = true;
        if (det != nullptr) {
          det->OnBlock(tid, this);
        }
        if (flight != nullptr) {
          flight->Record(tid, FlightEventType::kBlock, this, FlightNowNanos(rt_));
        }
        LockBlocking();
        if (det != nullptr) {
          det->OnWake(tid, this);
        }
        if (flight != nullptr) {
          flight->Record(tid, FlightEventType::kWake, this, FlightNowNanos(rt_));
        }
      }
      if (det != nullptr) {
        det->OnAcquire(tid, this);
      }
      // Flight-only steady state records just the blocking path: an uncontended
      // acquire on a run with no detector can never become a wait-for edge in a
      // postmortem (only the detector's hang-time hold set is narrated), so skipping
      // it keeps measurement-mode recording within the perf-baseline envelope. With a
      // detector attached — any run that can actually request a postmortem — every
      // acquire is recorded so hold edges keep their "(acquired at seq …)" annotation.
      if (flight != nullptr && (contended || det != nullptr)) {
        flight->Record(tid, FlightEventType::kAcquire, this, FlightNowNanos(rt_));
      }
    }
    try {
      if (FaultDecision fault = ConsultInjector(rt_, FaultSite::kLockPost)) {
        if (fault.kind == FaultKind::kStall) {
          SleepSteps(fault.steps);  // Holds the lock doing nothing; peers starve.
        }
      }
    } catch (const ThreadKilledFault&) {
      // A kill after acquisition: physically release the std::mutex so the process
      // stays sound (destroying or abandoning a locked std::mutex is undefined), but
      // skip OnRelease — to the detector and every observer the dead thread holds
      // this lock forever, which is the damage a mid-protocol death models.
      mu_.unlock();
      throw;
    }
  }

  void Unlock() override {
    if (AnomalyDetector* det = rt_->anomaly_detector()) {
      det->OnRelease(rt_->CurrentThreadId(), this);
      // Releases matter only for runs that can build a postmortem (detector
      // attached); flight-only measurement runs skip them — see Lock().
      if (FlightRecorder* flight = rt_->flight_recorder()) {
        flight->Record(rt_->CurrentThreadId(), FlightEventType::kRelease, this,
                       FlightNowNanos(rt_));
      }
    }
    mu_.unlock();
  }

 private:
  // Blocking acquisition. In abortable mode a try_lock poll loop that throws
  // TrialAborted once RequestAbort() was called — without the lock held, so the
  // caller's RAII guard never releases what was never acquired. The open OnBlock the
  // contended path may have recorded is moot: the supervisor puts the detector into
  // SetAborting() before requesting the abort, and OnThreadFinish discards the
  // thread's wait records when the unwound thread exits.
  void LockBlocking() {
    if (!rt_->abortable()) {
      mu_.lock();
      return;
    }
    while (!mu_.try_lock()) {
      if (rt_->Aborting()) {
        throw TrialAborted{};
      }
      std::this_thread::sleep_for(rt_->abort_poll());
    }
  }

  OsRuntime* rt_;
  std::mutex mu_;
};

class OsCondVar : public RtCondVar {
 public:
  explicit OsCondVar(OsRuntime* rt) : rt_(rt) {
    if (rt_->abortable()) {
      rt_->RegisterAbortWaiter(&cv_);
    }
  }

  ~OsCondVar() override {
    if (rt_->abortable()) {
      rt_->UnregisterAbortWaiter(&cv_);
    }
  }

  void Wait(RtMutex& mutex) override { WaitImpl(mutex, /*timeout_nanos=*/0); }

  bool WaitFor(RtMutex& mutex, std::uint64_t timeout_nanos) override {
    return WaitImpl(mutex, timeout_nanos == 0 ? 1 : timeout_nanos);
  }

  void NotifyOne() override {
    if (FaultDecision fault = ConsultInjector(rt_, FaultSite::kNotifyOne)) {
      if (fault.kind == FaultKind::kDropSignal) {
        return;  // The notify vanishes below the mechanism; no waiter ever wakes.
      }
    }
    Signal(/*broadcast=*/false);
    BumpNotifyGeneration();
    cv_.notify_one();
  }

  void NotifyAll() override {
    if (FaultDecision fault = ConsultInjector(rt_, FaultSite::kNotifyAll)) {
      if (fault.kind == FaultKind::kDropSignal) {
        return;
      }
    }
    Signal(/*broadcast=*/true);
    BumpNotifyGeneration();
    cv_.notify_all();
  }

 private:
  // Shared Wait/WaitFor body; timeout_nanos == 0 means untimed. Returns false iff the
  // deadline expired before a notification arrived.
  bool WaitImpl(RtMutex& mutex, std::uint64_t timeout_nanos) {
    if (FaultDecision fault = ConsultInjector(rt_, FaultSite::kWait)) {
      if (fault.kind == FaultKind::kSpuriousWakeup) {
        // Return immediately with the mutex still held: a wakeup no signal caused.
        // Legal per the RtCondVar contract (callers re-check their predicate), and
        // reported as "notified" exactly as a real spurious wakeup would be.
        return true;
      }
    }
    AnomalyDetector* det = rt_->anomaly_detector();
    TelemetryTracer* tracer = rt_->tracer();
    FlightRecorder* flight = rt_->flight_recorder();
    if (det == nullptr && tracer == nullptr && flight == nullptr) {
      return WaitBlocking(mutex, timeout_nanos);
    }
    const std::uint32_t tid = rt_->CurrentThreadId();
    waiting_.fetch_add(1, std::memory_order_relaxed);
    if (det != nullptr) {
      det->OnBlock(tid, this);
    }
    if (flight != nullptr) {
      flight->Record(tid, FlightEventType::kBlock, this, FlightNowNanos(rt_));
    }
    bool notified = true;
    try {
      notified = WaitBlocking(mutex, timeout_nanos);
    } catch (const TrialAborted&) {
      // Force-unwound by the supervisor's reaper: keep the waiter count sound and
      // rethrow with the mutex re-held (WaitBlocking re-acquired it), so the caller's
      // RAII unlock stays valid. The detector is in SetAborting() by now, so the
      // missing OnWake is moot — OnThreadFinish discards the record.
      waiting_.fetch_sub(1, std::memory_order_relaxed);
      throw;
    }
    if (det != nullptr) {
      det->OnWake(tid, this);
    }
    if (flight != nullptr) {
      // arg = 1 when a notification (or spurious wakeup) caused the return, 0 when the
      // deadline fired — the discriminator the postmortem uses for stuck-waiter stories.
      flight->Record(tid, FlightEventType::kWake, this, FlightNowNanos(rt_),
                     notified ? 1 : 0);
    }
    if (notified && tracer != nullptr) {
      // Timeout wakes draw no flow edge: no signal caused them.
      tracer->OnWake(this, tid, rt_->NowNanos());
    }
    waiting_.fetch_sub(1, std::memory_order_relaxed);
    return notified;
  }

  // The underlying wait, shared by the fast and instrumented paths of WaitImpl;
  // timeout_nanos == 0 means untimed. Returns false iff the deadline expired first.
  //
  // In abortable mode the wait runs in poll-length slices so a reaped trial unwinds
  // within one slice: each slice re-checks the abort flag (throwing TrialAborted with
  // the mutex re-held) and otherwise keeps waiting. A slice expiry is NOT a wakeup —
  // the loop re-arms — so detector wait ages keep measuring the full wait and genuine
  // hangs still age past the watchdog threshold. Re-arming opens the classic gap where
  // a notify lands between two slices (no thread inside the OS wait); the notify
  // generation counter closes it: the generation is sampled under the user mutex
  // before the first slice, notifiers bump it before cv_.notify, and any slice that
  // observes a newer generation returns as notified (a spurious wakeup for every
  // slicing waiter but the intended one — permitted by the RtCondVar contract).
  bool WaitBlocking(RtMutex& mutex, std::uint64_t timeout_nanos) {
    if (!rt_->abortable()) {
      if (timeout_nanos == 0) {
        cv_.wait(mutex);
        return true;
      }
      // One absolute Deadline computed up front: however many times the underlying
      // wait is interrupted, it resumes the same instant (no spurious-wakeup drift).
      const Deadline deadline = Deadline::AfterNanos(timeout_nanos);
      return cv_.wait_until(mutex, deadline.time_point()) == std::cv_status::no_timeout;
    }
    const std::uint64_t generation = notify_generation_.load(std::memory_order_acquire);
    const Deadline deadline = Deadline::AfterNanos(
        timeout_nanos == 0 ? ~std::uint64_t{0} >> 1 : timeout_nanos);
    for (;;) {
      Deadline slice = Deadline::After(rt_->abort_poll());
      if (timeout_nanos != 0 && deadline.time_point() < slice.time_point()) {
        slice = deadline;
      }
      const bool woke =
          cv_.wait_until(mutex, slice.time_point()) == std::cv_status::no_timeout;
      if (rt_->Aborting()) {
        throw TrialAborted{};
      }
      if (woke || notify_generation_.load(std::memory_order_acquire) != generation) {
        return true;
      }
      if (timeout_nanos != 0 && deadline.Expired()) {
        return false;
      }
    }
  }

  void BumpNotifyGeneration() {
    if (rt_->abortable()) {
      notify_generation_.fetch_add(1, std::memory_order_release);
    }
  }

  void Signal(bool broadcast) {
    const int waiting = static_cast<int>(waiting_.load(std::memory_order_relaxed));
    AnomalyDetector* det = rt_->anomaly_detector();
    if (det != nullptr) {
      det->OnSignal(rt_->CurrentThreadId(), this, waiting, broadcast);
    }
    if (TelemetryTracer* tracer = rt_->tracer()) {
      tracer->OnSignal(this, rt_->CurrentThreadId(), rt_->NowNanos(), broadcast);
    }
    if (FlightRecorder* flight = rt_->flight_recorder()) {
      // arg = waiters at delivery; a signal with arg 0 hit an empty queue. Empty-queue
      // signals only matter to the lost-wakeup narrative, which only a detector-armed
      // run can ever build — flight-only measurement runs record just the signals
      // that wake someone, mirroring the blocking-path policy in OsMutex::Lock.
      if (det != nullptr || waiting > 0) {
        flight->Record(
            rt_->CurrentThreadId(),
            broadcast ? FlightEventType::kBroadcast : FlightEventType::kSignal, this,
            FlightNowNanos(rt_), static_cast<std::uint64_t>(waiting));
      }
    }
  }

  OsRuntime* rt_;
  std::condition_variable_any cv_;
  // Approximate waiter count for signal accounting; racy by nature under preemption
  // (the watchdog is a sampler, not an exact oracle), incremented before releasing the
  // user mutex in Wait so signal-while-holding-the-mutex sees it consistently.
  std::atomic<int> waiting_{0};
  // Bumped per notify in abortable mode; see WaitBlocking for the gap it closes.
  std::atomic<std::uint64_t> notify_generation_{0};
};

class OsThread : public RtThread {
 public:
  OsThread(std::uint32_t id, std::function<void()> body) : id_(id) {
    thread_ = std::thread([id, body = std::move(body)]() {
      g_os_thread_id = id;
      body();
    });
  }

  ~OsThread() override {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  void Join() override {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  std::uint32_t id() const override { return id_; }

 private:
  std::uint32_t id_;
  std::thread thread_;
};

}  // namespace

OsRuntime::~OsRuntime() { StopAnomalyWatchdog(); }

void OsRuntime::RequestAbort() {
  aborting_.store(true, std::memory_order_release);
  // Wake every sleeping condvar waiter so the poll loops observe the flag now rather
  // than a slice later. Holding abort_mu_ across the notifies keeps the registered
  // pointers alive (unregistration blocks on the same mutex).
  std::lock_guard<std::mutex> lock(abort_mu_);
  for (std::condition_variable_any* cv : abort_waiters_) {
    cv->notify_all();
  }
}

void OsRuntime::RegisterAbortWaiter(std::condition_variable_any* cv) {
  std::lock_guard<std::mutex> lock(abort_mu_);
  abort_waiters_.insert(cv);
}

void OsRuntime::UnregisterAbortWaiter(std::condition_variable_any* cv) {
  std::lock_guard<std::mutex> lock(abort_mu_);
  abort_waiters_.erase(cv);
}

std::unique_ptr<RtMutex> OsRuntime::CreateMutex() {
  auto mutex = std::make_unique<OsMutex>(this);
  if (AnomalyDetector* det = anomaly_detector()) {
    det->RegisterResource(mutex.get(), ResourceKind::kLock, "mutex");
  }
  if (FlightRecorder* flight = flight_recorder()) {
    flight->RegisterName(mutex.get(), "mutex");
  }
  return mutex;
}

std::unique_ptr<RtCondVar> OsRuntime::CreateCondVar() {
  auto cv = std::make_unique<OsCondVar>(this);
  if (AnomalyDetector* det = anomaly_detector()) {
    det->RegisterResource(cv.get(), ResourceKind::kCondition, "condvar");
  }
  if (FlightRecorder* flight = flight_recorder()) {
    flight->RegisterName(cv.get(), "condvar");
  }
  return cv;
}

std::unique_ptr<RtThread> OsRuntime::StartThread(std::string name, std::function<void()> body) {
  const std::uint32_t id = next_thread_id_.fetch_add(1, std::memory_order_relaxed);
  AnomalyDetector* det = anomaly_detector();
  if (det != nullptr) {
    det->RegisterThread(id, name);
  }
  body = [det, id, body = std::move(body)]() {
    try {
      body();
    } catch (const ThreadKilledFault&) {
      // Killed by an injected kill-thread fault: the thread ends mid-protocol. RAII
      // guards between the injection site and here have already unwound; whatever had
      // no guard stays exactly as the kill left it.
    } catch (const TrialAborted&) {
      // Force-unwound by a supervisor reaper (RequestAbort). Mechanism releases
      // reached from RAII guards during this unwind no-op behind Aborting(), exactly
      // as in DetRuntime's post-deadlock teardown.
    }
    if (det != nullptr) {
      det->OnThreadFinish(id);
    }
  };
  return std::make_unique<OsThread>(id, std::move(body));
}

void OsRuntime::Yield() { std::this_thread::yield(); }

std::uint32_t OsRuntime::CurrentThreadId() { return g_os_thread_id; }

std::uint64_t OsRuntime::NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void OsRuntime::StartAnomalyWatchdog(WatchdogOptions options) {
  AnomalyDetector* det = anomaly_detector();
  if (det == nullptr || watchdog_.joinable()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = false;
  }
  watchdog_ = std::thread([this, det, options] {
    std::mt19937_64 jitter_rng(options.jitter_seed);
    const auto base_period = std::chrono::duration_cast<std::chrono::nanoseconds>(options.period);
    std::unique_lock<std::mutex> lock(watchdog_mu_);
    while (!watchdog_stop_) {
      // Re-jitter the period every cycle so wakeups cannot phase-lock with any
      // periodic behaviour under observation (injected fixed-length stalls above all).
      const std::chrono::nanoseconds period =
          JitterPeriod(base_period, options.jitter_fraction, jitter_rng);
#if SYNEVAL_TELEMETRY_ENABLED
      if (MetricsRegistry* metrics = this->metrics()) {
        metrics->GetGauge("anomaly/watchdog_period_ms")
            .Set(std::chrono::duration_cast<std::chrono::milliseconds>(period).count());
      }
#endif
      // One absolute deadline per cycle: stray notifies cannot stretch the sleep.
      const Deadline deadline = Deadline::After(period);
      watchdog_cv_.wait_until(lock, deadline.time_point(), [this] { return watchdog_stop_; });
      if (watchdog_stop_) {
        return;
      }
      lock.unlock();
      // Load-adaptive threshold: under a saturated parallel sweep every trial runs
      // slower by roughly the oversubscription factor, so waits that merely queue for
      // CPU would age past a fixed threshold and read as starvation. Rescale from the
      // process-wide active-trial gauge each cycle, before sampling.
      if (options.load_adaptive) {
        det->SetPollThresholdScale(ActiveTrials());
      }
      const std::int64_t now = static_cast<std::int64_t>(NowNanos());
      const int flagged = det->Poll(now);
      if (flagged > 0) {
        WriteWatchdogPostmortem(this, det);
      }
#if SYNEVAL_TELEMETRY_ENABLED
      // Watchdog findings are visible continuously through the registry, not only in
      // anomaly reports: current blocked-thread count, the oldest wait's age, and the
      // running total of detections.
      if (MetricsRegistry* metrics = this->metrics()) {
        const AnomalyDetector::WaitSnapshot snap = det->SnapshotWaits(now);
        metrics->GetGauge("anomaly/blocked_threads").Set(snap.blocked_threads);
        metrics->GetGauge("anomaly/longest_wait_ns").Set(snap.longest_wait_nanos);
        metrics->GetGauge("anomaly/detections_total").Set(det->counts().total());
        // The threshold Poll() actually applied this cycle (base × active trials).
        metrics->GetGauge("anomaly/effective_stuck_wait_ms")
            .Set(det->effective_stuck_wait_nanos() / 1'000'000);
        if (const FlightRecorder* flight = this->flight_recorder()) {
          // Ring evictions to date: non-zero means postmortem windows are truncated.
          metrics->GetGauge("telemetry/flight_evicted")
              .Set(static_cast<std::int64_t>(flight->evicted()));
        }
      }
#endif
      lock.lock();
    }
  });
}

void OsRuntime::StopAnomalyWatchdog() {
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) {
    watchdog_.join();
  }
}

}  // namespace syneval
