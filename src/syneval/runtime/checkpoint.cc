#include "syneval/runtime/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>
#include <utility>
#include <vector>

namespace syneval {

namespace {

// Field-record helpers. A record is "k=v;k=v;..." where every key and value has been
// through CheckpointEscape, so splitting on ';' and the first '=' is unambiguous.

class RecordWriter {
 public:
  void Put(std::string_view key, std::string_view value) {
    if (!out_.empty()) {
      out_ += ';';
    }
    out_ += CheckpointEscape(key);
    out_ += '=';
    out_ += CheckpointEscape(value);
  }
  void PutInt(std::string_view key, long long value) { Put(key, std::to_string(value)); }
  void PutU64(std::string_view key, std::uint64_t value) {
    Put(key, std::to_string(value));
  }
  void PutSeeds(std::string_view key, const std::vector<std::uint64_t>& seeds) {
    std::string joined;
    for (std::uint64_t seed : seeds) {
      if (!joined.empty()) {
        joined += ',';
      }
      joined += std::to_string(seed);
    }
    Put(key, joined);
  }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class RecordReader {
 public:
  explicit RecordReader(const std::string& payload) {
    std::size_t pos = 0;
    while (pos <= payload.size()) {
      std::size_t end = payload.find(';', pos);
      if (end == std::string::npos) {
        end = payload.size();
      }
      const std::string_view field(payload.data() + pos, end - pos);
      const std::size_t eq = field.find('=');
      if (eq != std::string_view::npos) {
        fields_[CheckpointUnescape(field.substr(0, eq))] =
            CheckpointUnescape(field.substr(eq + 1));
      }
      pos = end + 1;
    }
  }

  bool Get(const std::string& key, std::string* value) const {
    const auto it = fields_.find(key);
    if (it == fields_.end()) {
      return false;
    }
    *value = it->second;
    return true;
  }
  bool GetInt(const std::string& key, int* value) const {
    long long parsed = 0;
    if (!GetLong(key, &parsed)) {
      return false;
    }
    *value = static_cast<int>(parsed);
    return true;
  }
  bool GetU64(const std::string& key, std::uint64_t* value) const {
    long long parsed = 0;
    if (!GetLong(key, &parsed)) {
      return false;
    }
    *value = static_cast<std::uint64_t>(parsed);
    return true;
  }
  bool GetSeeds(const std::string& key, std::vector<std::uint64_t>* seeds) const {
    std::string joined;
    if (!Get(key, &joined)) {
      return false;
    }
    seeds->clear();
    if (joined.empty()) {
      return true;
    }
    std::istringstream in(joined);
    std::string token;
    while (std::getline(in, token, ',')) {
      errno = 0;
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(token.c_str(), &end, 10);
      if (end == token.c_str() || *end != '\0') {
        return false;
      }
      seeds->push_back(static_cast<std::uint64_t>(parsed));
    }
    return true;
  }

 private:
  bool GetLong(const std::string& key, long long* value) const {
    const auto it = fields_.find(key);
    if (it == fields_.end()) {
      return false;
    }
    errno = 0;
    char* end = nullptr;
    const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
      return false;
    }
    *value = parsed;
    return true;
  }

  std::map<std::string, std::string> fields_;
};

void PutAnomalies(RecordWriter& w, const AnomalyCounts& counts) {
  w.PutInt("a.dl", counts.deadlocks);
  w.PutInt("a.lw", counts.lost_wakeups);
  w.PutInt("a.sw", counts.stuck_waiters);
  w.PutInt("a.st", counts.starvations);
}

bool GetAnomalies(const RecordReader& r, AnomalyCounts* counts) {
  return r.GetInt("a.dl", &counts->deadlocks) &&
         r.GetInt("a.lw", &counts->lost_wakeups) &&
         r.GetInt("a.sw", &counts->stuck_waiters) &&
         r.GetInt("a.st", &counts->starvations);
}

void PutPostmortems(RecordWriter& w, const std::vector<SeedPostmortem>& postmortems) {
  w.PutInt("npm", static_cast<int>(postmortems.size()));
  for (std::size_t i = 0; i < postmortems.size(); ++i) {
    const std::string prefix = "pm" + std::to_string(i) + ".";
    w.PutU64(prefix + "seed", postmortems[i].seed);
    w.Put(prefix + "cause", postmortems[i].cause);
    w.Put(prefix + "text", postmortems[i].text);
  }
}

bool GetPostmortems(const RecordReader& r, std::vector<SeedPostmortem>* postmortems) {
  int count = 0;
  if (!r.GetInt("npm", &count) || count < 0) {
    return false;
  }
  postmortems->clear();
  for (int i = 0; i < count; ++i) {
    const std::string prefix = "pm" + std::to_string(i) + ".";
    SeedPostmortem pm;
    if (!r.GetU64(prefix + "seed", &pm.seed) || !r.Get(prefix + "cause", &pm.cause) ||
        !r.Get(prefix + "text", &pm.text)) {
      return false;
    }
    postmortems->push_back(std::move(pm));
  }
  return true;
}

}  // namespace

std::string CheckpointEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case ';': out += "\\s"; break;
      case '=': out += "\\e"; break;
      case ',': out += "\\c"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string CheckpointUnescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    switch (s[++i]) {
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 's': out += ';'; break;
      case 'e': out += '='; break;
      case 'c': out += ','; break;
      default: out += s[i]; break;  // Unknown escape: keep the literal character.
    }
  }
  return out;
}

std::string EncodeOutcome(const SweepOutcome& outcome) {
  RecordWriter w;
  w.Put("v", "sweep1");
  w.PutInt("runs", outcome.runs);
  w.PutInt("passes", outcome.passes);
  w.PutInt("failures", outcome.failures);
  w.PutSeeds("fseeds", outcome.failing_seeds);
  w.Put("ffail", outcome.first_failure);
  PutAnomalies(w, outcome.anomalies);
  w.PutSeeds("aseeds", outcome.anomalous_seeds);
  w.Put("fanom", outcome.first_anomaly);
  PutPostmortems(w, outcome.postmortems);
  w.PutInt("pmtotal", outcome.postmortems_total);
  w.PutU64("fev", outcome.flight_evicted);
  return w.Take();
}

bool DecodeOutcome(const std::string& payload, SweepOutcome* out) {
  const RecordReader r(payload);
  std::string version;
  if (!r.Get("v", &version) || version != "sweep1") {
    return false;
  }
  SweepOutcome decoded;
  if (!r.GetInt("runs", &decoded.runs) || !r.GetInt("passes", &decoded.passes) ||
      !r.GetInt("failures", &decoded.failures) ||
      !r.GetSeeds("fseeds", &decoded.failing_seeds) ||
      !r.Get("ffail", &decoded.first_failure) || !GetAnomalies(r, &decoded.anomalies) ||
      !r.GetSeeds("aseeds", &decoded.anomalous_seeds) ||
      !r.Get("fanom", &decoded.first_anomaly) ||
      !GetPostmortems(r, &decoded.postmortems) ||
      !r.GetInt("pmtotal", &decoded.postmortems_total) ||
      !r.GetU64("fev", &decoded.flight_evicted)) {
    return false;
  }
  *out = std::move(decoded);
  return true;
}

std::string EncodeChaosOutcome(const ChaosSweepOutcome& outcome) {
  RecordWriter w;
  // "chaos2" added the quarantine `skip` count; "chaos1" payloads decode as cache
  // misses and re-fold, which is always safe.
  w.Put("v", "chaos2");
  w.PutInt("runs", outcome.runs);
  w.PutInt("skip", outcome.skipped);
  w.PutInt("inj", outcome.injected_runs);
  w.PutInt("harm", outcome.harmful);
  w.PutInt("det", outcome.detected_harmful);
  w.PutInt("abs", outcome.absorbed);
  w.PutInt("corr", outcome.corrupted);
  w.PutInt("canom", outcome.clean_anomalies);
  w.PutInt("cfail", outcome.clean_failures);
  w.PutU64("dsteps", outcome.detection_steps_total);
  w.PutSeeds("mseeds", outcome.missed_seeds);
  w.PutSeeds("fpseeds", outcome.fp_seeds);
  PutPostmortems(w, outcome.postmortems);
  w.PutInt("pmtotal", outcome.postmortems_total);
  w.PutInt("ncause", static_cast<int>(outcome.postmortem_causes.size()));
  int index = 0;
  for (const auto& [cause, count] : outcome.postmortem_causes) {
    const std::string prefix = "cause" + std::to_string(index++) + ".";
    w.Put(prefix + "name", cause);
    w.PutInt(prefix + "n", count);
  }
  w.PutU64("fev", outcome.flight_evicted);
  return w.Take();
}

bool DecodeChaosOutcome(const std::string& payload, ChaosSweepOutcome* out) {
  const RecordReader r(payload);
  std::string version;
  if (!r.Get("v", &version) || version != "chaos2") {
    return false;
  }
  ChaosSweepOutcome decoded;
  int ncause = 0;
  if (!r.GetInt("runs", &decoded.runs) || !r.GetInt("skip", &decoded.skipped) ||
      !r.GetInt("inj", &decoded.injected_runs) ||
      !r.GetInt("harm", &decoded.harmful) ||
      !r.GetInt("det", &decoded.detected_harmful) ||
      !r.GetInt("abs", &decoded.absorbed) || !r.GetInt("corr", &decoded.corrupted) ||
      !r.GetInt("canom", &decoded.clean_anomalies) ||
      !r.GetInt("cfail", &decoded.clean_failures) ||
      !r.GetU64("dsteps", &decoded.detection_steps_total) ||
      !r.GetSeeds("mseeds", &decoded.missed_seeds) ||
      !r.GetSeeds("fpseeds", &decoded.fp_seeds) ||
      !GetPostmortems(r, &decoded.postmortems) ||
      !r.GetInt("pmtotal", &decoded.postmortems_total) ||
      !r.GetInt("ncause", &ncause) || ncause < 0 ||
      !r.GetU64("fev", &decoded.flight_evicted)) {
    return false;
  }
  for (int i = 0; i < ncause; ++i) {
    const std::string prefix = "cause" + std::to_string(i) + ".";
    std::string name;
    int count = 0;
    if (!r.Get(prefix + "name", &name) || !r.GetInt(prefix + "n", &count)) {
      return false;
    }
    decoded.postmortem_causes[name] = count;
  }
  *out = std::move(decoded);
  return true;
}

std::string EncodeTrialReport(const TrialReport& report) {
  RecordWriter w;
  w.Put("v", "trial1");
  w.Put("msg", report.message);
  PutAnomalies(w, report.anomalies);
  w.Put("areport", report.anomaly_report);
  w.Put("pmcause", report.postmortem_cause);
  w.Put("pm", report.postmortem);
  w.PutU64("fev", report.flight_evicted);
  return w.Take();
}

bool DecodeTrialReport(const std::string& payload, TrialReport* out) {
  const RecordReader r(payload);
  std::string version;
  if (!r.Get("v", &version) || version != "trial1") {
    return false;
  }
  TrialReport decoded;
  if (!r.Get("msg", &decoded.message) || !GetAnomalies(r, &decoded.anomalies) ||
      !r.Get("areport", &decoded.anomaly_report) ||
      !r.Get("pmcause", &decoded.postmortem_cause) ||
      !r.Get("pm", &decoded.postmortem) || !r.GetU64("fev", &decoded.flight_evicted)) {
    return false;
  }
  *out = std::move(decoded);
  return true;
}

std::string ChunkKey(std::string_view scope, std::string_view kind,
                     std::uint64_t base_seed, int num_seeds, int chunk_seeds,
                     int chunk_index) {
  std::string key = CheckpointEscape(scope);
  key += '|';
  key += kind;
  key += "|b";
  key += std::to_string(base_seed);
  key += "|n";
  key += std::to_string(num_seeds);
  key += "|c";
  key += std::to_string(chunk_seeds);
  key += "|k";
  key += std::to_string(chunk_index);
  return key;
}

CheckpointStore::CheckpointStore(std::string path) : path_(std::move(path)) {}

CheckpointStore::~CheckpointStore() {
  // Every commit is already durable in the journal (write-ahead, flushed per
  // append); there is nothing pending to save.
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_.is_open()) {
    journal_.close();
  }
}

int CheckpointStore::Load() {
  std::lock_guard<std::mutex> lock(mu_);
  {
    std::ifstream in(path_);
    if (in) {
      std::string line;
      if (std::getline(in, line) && line == "syneval-checkpoint v1") {
        while (std::getline(in, line)) {
          const std::size_t tab = line.find('\t');
          if (tab == std::string::npos || tab == 0) {
            continue;  // Malformed line: skip; the chunk just gets re-folded.
          }
          entries_[CheckpointUnescape(std::string_view(line).substr(0, tab))] =
              CheckpointUnescape(std::string_view(line).substr(tab + 1));
        }
      }
      // Missing/foreign header: treat the snapshot as empty rather than misread it.
    }
  }
  // The journal replays OVER the snapshot: entries appended after the last
  // compaction, or re-appended during a crashed compaction (idempotent duplicates).
  // replayed_ counts lines replayed; the return value is distinct entries, so
  // duplicates (same key in snapshot and journal) are not double-counted.
  replayed_ = ReplayJournalLocked();
  return static_cast<int>(entries_.size());
}

int CheckpointStore::ReplayJournalLocked() {
  std::ifstream in(journal_path(), std::ios::binary);
  if (!in) {
    return 0;
  }
  // Whole-file read so the torn-tail check is exact: std::getline cannot tell a
  // complete final line from one cut short by SIGKILL mid-append.
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::size_t nl = data.find('\n');
  if (nl == std::string::npos ||
      std::string_view(data).substr(0, nl) != "syneval-journal v1") {
    return 0;  // Missing/foreign/torn header: treat the journal as empty.
  }
  std::size_t pos = nl + 1;
  int replayed = 0;
  while (pos < data.size()) {
    nl = data.find('\n', pos);
    if (nl == std::string::npos) {
      break;  // Torn final append (no terminating newline): a cache miss, no more.
    }
    const std::string_view line = std::string_view(data).substr(pos, nl - pos);
    pos = nl + 1;
    const std::size_t tab = line.find('\t');
    if (tab == std::string_view::npos || tab == 0) {
      continue;  // Malformed line: skip; the chunk just gets re-folded.
    }
    entries_[CheckpointUnescape(line.substr(0, tab))] =
        CheckpointUnescape(line.substr(tab + 1));
    ++replayed;
  }
  return replayed;
}

bool CheckpointStore::Lookup(const std::string& key, std::string* payload) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return false;
  }
  *payload = it->second;
  ++hits_;
  return true;
}

void CheckpointStore::Commit(const std::string& key, std::string payload) {
  std::lock_guard<std::mutex> lock(mu_);
  AppendJournalLocked(key, payload);
  entries_[key] = std::move(payload);
  ++appends_;
  if (++pending_ >= flush_every_) {
    CompactLocked();
  }
}

bool CheckpointStore::AppendJournalLocked(const std::string& key,
                                          const std::string& payload) {
  if (!journal_.is_open()) {
    journal_.clear();
    journal_.open(journal_path(), std::ios::app);
    if (!journal_) {
      return false;
    }
    if (journal_.tellp() == std::ofstream::pos_type(0)) {
      journal_ << "syneval-journal v1\n";
    }
  }
  journal_ << CheckpointEscape(key) << '\t' << CheckpointEscape(payload) << '\n';
  // Flushed per append: the write-ahead property is what makes a SIGKILL anywhere
  // lose at most the append it interrupted (the torn tail Load() discards).
  journal_.flush();
  return static_cast<bool>(journal_);
}

bool CheckpointStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return CompactLocked();
}

bool CheckpointStore::CompactLocked() {
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return false;
    }
    out << "syneval-checkpoint v1\n";
    for (const auto& [key, payload] : entries_) {
      out << CheckpointEscape(key) << '\t' << CheckpointEscape(payload) << '\n';
    }
    out.flush();
    if (!out) {
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  // Only after the snapshot rename landed is the journal redundant. A crash between
  // the rename and this truncation leaves its entries to replay as idempotent
  // duplicates over the fresh snapshot — never a loss.
  if (journal_.is_open()) {
    journal_.close();
  }
  {
    std::ofstream truncated(journal_path(), std::ios::trunc);
    truncated << "syneval-journal v1\n";
    truncated.flush();
  }
  pending_ = 0;
  ++compactions_;
  return true;
}

void CheckpointStore::SetFlushEvery(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  flush_every_ = n < 1 ? 1 : n;
}

int CheckpointStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(entries_.size());
}

int CheckpointStore::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int CheckpointStore::appends() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appends_;
}

int CheckpointStore::compactions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return compactions_;
}

int CheckpointStore::replayed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replayed_;
}

}  // namespace syneval
