// Runtime abstraction: threads, mutexes and condition variables behind one interface.
//
// Every synchronization mechanism in this library (semaphores, monitors, serializers,
// path-expression controllers) is written against `Runtime` rather than std::thread
// directly. That single seam gives us two execution modes:
//
//   * OsRuntime  — real preemptive threads (std::thread); used by the benchmarks to
//                  measure wall-clock cost.
//   * DetRuntime — a deterministic cooperative scheduler that runs exactly one logical
//                  thread at a time and chooses the next runnable thread via a pluggable,
//                  seed-replayable strategy; used by tests and the conformance engine to
//                  search interleavings and to reproduce the paper's behavioural claims
//                  (e.g. the Figure 1 readers-priority anomaly) on demand.
//
// Blocking primitives obtained from a runtime must only be used by threads belonging to
// that runtime (for DetRuntime: threads created through StartThread).

#ifndef SYNEVAL_RUNTIME_RUNTIME_H_
#define SYNEVAL_RUNTIME_RUNTIME_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "syneval/telemetry/telemetry.h"

namespace syneval {

class AnomalyDetector;
class FaultInjector;
class FlightRecorder;
class MetricsRegistry;
class TelemetryTracer;
struct MechanismStats;

// A mutual-exclusion lock. Non-recursive. Also satisfies BasicLockable (lowercase
// lock/unlock) so std::lock_guard / std::unique_lock work directly.
class RtMutex {
 public:
  virtual ~RtMutex() = default;

  virtual void Lock() = 0;
  virtual void Unlock() = 0;

  void lock() { Lock(); }      // NOLINT: BasicLockable spelling.
  void unlock() { Unlock(); }  // NOLINT: BasicLockable spelling.
};

// A condition variable bound to a Runtime (not to a particular mutex). Wait() must be
// called with `mutex` held by the calling thread; it atomically releases the mutex,
// blocks until notified, and re-acquires the mutex before returning. Spurious wakeups
// are permitted; callers must use the usual `while (!predicate) Wait(...)` pattern.
class RtCondVar {
 public:
  virtual ~RtCondVar() = default;

  virtual void Wait(RtMutex& mutex) = 0;

  // Deadline-aware Wait: blocks until notified or until `timeout_nanos` of runtime
  // time elapse (Runtime::NowNanos units — wall nanoseconds under OsRuntime; under
  // DetRuntime a virtual-step budget of timeout_nanos / 1000 scheduler steps, so timed
  // waits stay fully deterministic and replayable). Returns true when the return was
  // caused by a notification (or a permitted spurious wakeup), false when the deadline
  // expired first. Either way the mutex is held again on return; callers re-check
  // their predicate exactly as with Wait.
  virtual bool WaitFor(RtMutex& mutex, std::uint64_t timeout_nanos) = 0;

  virtual void NotifyOne() = 0;
  virtual void NotifyAll() = 0;
};

// A joinable thread handle. Join() must be called exactly once before destruction.
class RtThread {
 public:
  virtual ~RtThread() = default;

  virtual void Join() = 0;
  virtual std::uint32_t id() const = 0;
};

// Factory and thread-identity interface shared by both runtimes.
class Runtime {
 public:
  virtual ~Runtime() = default;

  virtual std::unique_ptr<RtMutex> CreateMutex() = 0;
  virtual std::unique_ptr<RtCondVar> CreateCondVar() = 0;

  // Starts a logical thread running `body`. Under OsRuntime the thread starts
  // immediately; under DetRuntime it becomes runnable and executes only while
  // DetRuntime::Run() is driving the schedule.
  virtual std::unique_ptr<RtThread> StartThread(std::string name,
                                                std::function<void()> body) = 0;

  // Cooperative scheduling hint. A preemption point under DetRuntime; a no-op (or
  // std::this_thread::yield) under OsRuntime.
  virtual void Yield() = 0;

  // Logical id of the calling thread: ids assigned by StartThread for managed threads,
  // 0 for the driving/main thread.
  virtual std::uint32_t CurrentThreadId() = 0;

  // Monotonic time. OsRuntime: steady clock nanoseconds. DetRuntime: scheduler step
  // count (a logical clock), which makes time-based assertions replayable.
  virtual std::uint64_t NowNanos() = 0;

  virtual const char* name() const = 0;

  // True while the runtime is unwinding managed threads after an aborted run (see the
  // post-deadlock teardown in DetRuntime::Run). Mechanism release operations reached
  // from RAII destructors during that unwind must be no-ops: the thread may have
  // surrendered ownership inside the wait it was parked in when the abort hit, so the
  // usual "caller owns the resource" preconditions no longer hold.
  virtual bool Aborting() const { return false; }

  // Attaches an anomaly detector (see syneval/anomaly/detector.h). Must be called
  // before any primitives, threads, or mechanisms are created from this runtime so
  // registrations are complete; the detector must outlive the runtime's threads.
  // Both runtimes and all mechanism frameworks consult this and self-instrument.
  void AttachAnomalyDetector(AnomalyDetector* detector) { anomaly_detector_ = detector; }
  AnomalyDetector* anomaly_detector() const { return anomaly_detector_; }

  // Attaches a fault injector (see syneval/fault/injector.h); both runtimes then
  // consult it at every lock/wait/notify site and act on what it decides. Attach
  // before primitives are created and threads start; the injector must outlive the
  // runtime's threads. Defined in runtime.cc (binds the injector to this runtime's
  // telemetry attachments).
  void AttachFaultInjector(FaultInjector* injector);
  FaultInjector* fault_injector() const { return fault_injector_; }

#if SYNEVAL_TELEMETRY_ENABLED
  // Attaches a metrics registry (see syneval/telemetry/metrics.h). Like the anomaly
  // detector, it must be attached before mechanisms are constructed from this runtime
  // (mechanisms resolve their MechanismStats bundle once, at construction) and must
  // outlive the runtime's threads.
  void AttachMetrics(MetricsRegistry* metrics) { metrics_ = metrics; }
  MetricsRegistry* metrics() const { return metrics_; }

  // Attaches a tracer; the runtime's condition variables then record signal→wakeup
  // flow edges into it (see syneval/telemetry/tracer.h). Attach before threads start.
  void AttachTracer(TelemetryTracer* tracer) { tracer_ = tracer; }
  TelemetryTracer* tracer() const { return tracer_; }

  // Attaches the always-on flight recorder (telemetry/flight_recorder.h): both
  // runtimes then record compact sync events (block/wake/acquire/release/signal)
  // into its lock-free rings, and the fault injector mirrors fired faults. Unlike the
  // tracer, the recorder is cheap enough to stay attached during steady-state
  // measurement. Attach before primitives are created so their names register.
  void AttachFlightRecorder(FlightRecorder* recorder) { flight_recorder_ = recorder; }
  FlightRecorder* flight_recorder() const { return flight_recorder_; }

 private:
  AnomalyDetector* anomaly_detector_ = nullptr;
  FaultInjector* fault_injector_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  TelemetryTracer* tracer_ = nullptr;
  FlightRecorder* flight_recorder_ = nullptr;
};
#else
  // Telemetry compiled out (SYNEVAL_TELEMETRY=OFF): attachment is a no-op and the
  // accessors are constant null, so instrumentation branches fold away entirely.
  void AttachMetrics(MetricsRegistry*) {}
  static constexpr MetricsRegistry* metrics() { return nullptr; }
  void AttachTracer(TelemetryTracer*) {}
  static constexpr TelemetryTracer* tracer() { return nullptr; }
  void AttachFlightRecorder(FlightRecorder*) {}
  static constexpr FlightRecorder* flight_recorder() { return nullptr; }

 private:
  AnomalyDetector* anomaly_detector_ = nullptr;
  FaultInjector* fault_injector_ = nullptr;
};
#endif

// RAII lock holder for RtMutex (equivalent to std::lock_guard, kept for symmetry with
// the mechanism code which passes RtMutex by reference).
class RtLock {
 public:
  explicit RtLock(RtMutex& mutex) : mutex_(mutex) { mutex_.Lock(); }
  ~RtLock() { mutex_.Unlock(); }

  RtLock(const RtLock&) = delete;
  RtLock& operator=(const RtLock&) = delete;

 private:
  RtMutex& mutex_;
};

}  // namespace syneval

#endif  // SYNEVAL_RUNTIME_RUNTIME_H_
