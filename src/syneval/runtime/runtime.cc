#include "syneval/runtime/runtime.h"

#include "syneval/fault/injector.h"

namespace syneval {

void Runtime::AttachFaultInjector(FaultInjector* injector) {
  fault_injector_ = injector;
  if (injector != nullptr) {
    injector->BindRuntime(this);
  }
}

}  // namespace syneval
