// Parallel sweep engine: schedule sweeps sharded across a work-stealing worker pool,
// with a merge step that is bit-identical to the serial sweep.
//
// Every trial in a sweep (runtime/explore.h) is an independent deterministic replay —
// the trial constructs its own DetRuntime, AnomalyDetector, and (for chaos sweeps)
// FaultInjector from nothing but the seed — so a sweep is embarrassingly parallel.
// This engine exploits that without giving up the repository's core invariant that
// every aggregate is a pure function of (suite, seed range):
//
//   * The seed range is cut into contiguous CHUNKS of seeds. Each chunk is folded into
//     a partial outcome using the exact same per-seed accumulation code the serial
//     sweep runs (sweep_internal::AccumulateTrial / AccumulateChaosTrial).
//   * Chunks are distributed over a fixed-size pool of workers, each of which drains
//     its own queue front-to-back and STEALS from the back of a sibling's queue when
//     it runs dry. Steal order affects only which thread computes a chunk, never the
//     chunk's content.
//   * After all workers join, the partial outcomes are merged IN CHUNK ORDER. Because
//     sweep aggregation is associative over contiguous seed ranges (counts add, seed
//     lists concatenate in order, "first failure"/"first anomaly" are the first
//     non-empty in order), the merged result is bit-identical to the serial sweep for
//     the same seed set — regardless of worker count, chunk size, or steal order.
//     tests/parallel_sweep_test.cc enforces this field by field.
//
// Each worker owns everything it touches while running trials: the trial callback
// builds a fresh DetRuntime + detector per seed, and the engine gives every worker its
// own telemetry shard (WorkerTelemetry: trials, chunks, steals, wall time) that is
// only read after the pool joins. The trial callback itself must therefore be safe to
// invoke concurrently from multiple threads — every trial in this repository already
// is, because trials share no state by construction.
//
// docs/PARALLEL_EXPLORATION.md documents the determinism contract and the --jobs
// conventions shared by the benches and CI.

#ifndef SYNEVAL_RUNTIME_PARALLEL_SWEEP_H_
#define SYNEVAL_RUNTIME_PARALLEL_SWEEP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "syneval/runtime/explore.h"

namespace syneval {

class CheckpointStore;

struct ParallelOptions {
  // Worker count. 1 (the default) runs the sweep serially on the calling thread — the
  // exact serial code path, no pool. 0 means auto: the SYNEVAL_JOBS environment
  // variable when set to a positive integer, otherwise hardware_concurrency().
  int jobs = 1;
  // Seeds per stealable chunk. 0 = auto (sized so each worker sees several chunks,
  // keeping the steal queue useful without shredding cache locality). With a
  // checkpoint attached, auto pins a fixed chunk size instead, so the chunk layout —
  // which is part of every checkpoint key — is independent of the worker count and a
  // sweep can resume under a different --jobs.
  int chunk_seeds = 0;

  // Checkpoint/resume (runtime/checkpoint.h). When non-null, every folded chunk is
  // committed to the store under a key derived from (checkpoint_scope, sweep kind,
  // base seed, seed count, chunk layout, chunk index), and chunks already present are
  // restored instead of re-run — so a killed sweep, resumed against the same store,
  // merges bit-identical to an uninterrupted run. `checkpoint_scope` must identify
  // everything that shapes the trial beyond the seed (suite case, workload scale,
  // fault plan); sweep entry points that know that context (conformance, chaos
  // calibration) append it themselves.
  CheckpointStore* checkpoint = nullptr;
  std::string checkpoint_scope;
};

// Resolves a --jobs style request: n > 0 is taken literally; 0 consults SYNEVAL_JOBS
// and then hardware_concurrency(); anything else degrades to 1. Always returns >= 1.
int ResolveJobs(int jobs);

// One worker's telemetry shard. Written only by its owning worker while the pool runs;
// read by the merge step after the join.
struct WorkerTelemetry {
  int worker = 0;           // Pool index, 0-based.
  int trials = 0;           // Seeds this worker executed (chaos: seeds, not runs).
  int chunks = 0;           // Chunks this worker folded (excludes restored ones).
  int steals = 0;           // Chunks taken from another worker's queue.
  int cached = 0;           // Chunks restored from the checkpoint store, not re-run.
  double wall_seconds = 0;  // Wall time from worker start to queue-drained exit.
};

struct ParallelSweepResult {
  SweepOutcome outcome;     // Bit-identical to the serial sweep of the same seeds.
  int jobs = 1;             // Resolved worker count actually used.
  double wall_seconds = 0;  // Whole-sweep wall time (shard + run + merge).
  std::vector<WorkerTelemetry> workers;  // One entry per pool worker.
};

struct ParallelChaosResult {
  ChaosSweepOutcome outcome;
  int jobs = 1;
  double wall_seconds = 0;
  std::vector<WorkerTelemetry> workers;
};

// Parallel counterpart of SweepSchedules(num_seeds, trial, base_seed): same outcome,
// plus pool telemetry. options.jobs == 1 runs serially inline.
ParallelSweepResult ParallelSweepSchedules(
    int num_seeds, const std::function<TrialReport(std::uint64_t)>& trial,
    std::uint64_t base_seed = 1, const ParallelOptions& options = {});

ParallelSweepResult ParallelSweepSchedules(
    int num_seeds, const std::function<std::string(std::uint64_t)>& trial,
    std::uint64_t base_seed = 1, const ParallelOptions& options = {});

// Parallel counterpart of SweepChaos: each seed still contributes one matched
// fault-on + fault-off pair, executed by the same worker back to back.
ParallelChaosResult ParallelSweepChaos(
    int num_seeds,
    const std::function<ChaosTrialOutcome(std::uint64_t, const FaultPlan*)>& trial,
    const FaultPlan& plan, std::uint64_t base_seed = 1,
    const ParallelOptions& options = {});

// Sums per-worker telemetry shards by worker index (used by callers that run many
// sweeps with one pool configuration and want a single per-worker table, e.g. the
// chaos calibration grid).
void MergeWorkerTelemetry(std::vector<WorkerTelemetry>& into,
                          const std::vector<WorkerTelemetry>& shard);

}  // namespace syneval

#endif  // SYNEVAL_RUNTIME_PARALLEL_SWEEP_H_
