// Cigarette-smokers solutions (Patil 1971; Parnas 1975).
//
// Patil posed the problem to show that Dijkstra semaphores *without conditionals*
// cannot express "whichever smoker's pair is on the table proceeds" — an
// expressive-power argument of exactly the kind the paper systematizes. The solutions
// here trace that argument:
//
//   * SemaphoreSmokersNaive — the ingredient-semaphore protocol Patil showed broken:
//     smokers P() their two ingredient semaphores one at a time, so two smokers can
//     each grab half a pair and deadlock. Kept as a predicted violation; the
//     deterministic runtime exhibits the deadlock.
//   * SemaphoreSmokersAgentKnows — semaphores made to work by moving the conditional
//     into the agent (it signals the right smoker directly): expressible, but only by
//     relocating the decision — the "indirect" pattern of the E3 semaphore column.
//   * MonitorSmokers / CcrSmokers — with conditions over the table state the problem
//     is trivial, the same way local-state problems are.

#ifndef SYNEVAL_SOLUTIONS_SMOKERS_SOLUTIONS_H_
#define SYNEVAL_SOLUTIONS_SMOKERS_SOLUTIONS_H_

#include <memory>
#include <vector>

#include "syneval/ccr/critical_region.h"
#include "syneval/monitor/hoare_monitor.h"
#include "syneval/problems/interfaces.h"
#include "syneval/solutions/solution_info.h"
#include "syneval/sync/semaphore.h"

namespace syneval {

// Patil's broken protocol: deadlocks when two smokers each grab one ingredient.
class SemaphoreSmokersNaive : public SmokersTableIface {
 public:
  explicit SemaphoreSmokersNaive(Runtime& runtime);

  void Place(int missing, OpScope* scope) override;
  void Smoke(int holding, const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  CountingSemaphore table_empty_;
  std::vector<std::unique_ptr<CountingSemaphore>> ingredient_;
};

// The conditional moved into the agent: it V()s the matching smoker's semaphore.
class SemaphoreSmokersAgentKnows : public SmokersTableIface {
 public:
  explicit SemaphoreSmokersAgentKnows(Runtime& runtime);

  void Place(int missing, OpScope* scope) override;
  void Smoke(int holding, const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  CountingSemaphore table_empty_;
  std::vector<std::unique_ptr<CountingSemaphore>> smoker_;
};

class MonitorSmokers : public SmokersTableIface {
 public:
  explicit MonitorSmokers(Runtime& runtime);

  void Place(int missing, OpScope* scope) override;
  void Smoke(int holding, const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  HoareMonitor monitor_;
  HoareMonitor::Condition table_free_{monitor_};
  std::vector<std::unique_ptr<HoareMonitor::Condition>> my_pair_;
  bool present_ = false;
  bool smoking_ = false;
  int table_ = -1;  // The missing ingredient of the current placement.
};

class CcrSmokers : public SmokersTableIface {
 public:
  explicit CcrSmokers(Runtime& runtime);

  void Place(int missing, OpScope* scope) override;
  void Smoke(int holding, const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  CriticalRegion region_;
  bool present_ = false;
  bool smoking_ = false;
  int table_ = -1;
};

}  // namespace syneval

#endif  // SYNEVAL_SOLUTIONS_SMOKERS_SOLUTIONS_H_
