// Path-expression solutions (Campbell–Habermann 1974, Section 5.1 of the paper).
//
// PathExprRwFigure1 and PathExprRwFigure2 transcribe the paper's Figure 1
// (readers-priority) and Figure 2 (writers-priority) literally — paths, synchronization
// procedures and all — so that the conformance engine can reproduce the paper's central
// behavioural finding (footnote 3: Figure 1 does not implement Courtois–Heymans–Parnas
// readers priority) and the constraint-dependence analysis of Section 5.1.2.
//
// The problems CH74 paths cannot express directly are implemented to the extent the
// surveyed extensions allow: the predicate (Andler) variant gives a correct
// readers-priority solution; FCFS works only via Bloom's longest-waiting selection
// assumption; parameter-based scheduling (SCAN, SJN, alarm clock) remains inexpressible
// — the disk solution here is therefore FCFS-only, and that *absence* is data for the
// expressive-power matrix (E3).

#ifndef SYNEVAL_SOLUTIONS_PATHEXPR_SOLUTIONS_H_
#define SYNEVAL_SOLUTIONS_PATHEXPR_SOLUTIONS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "syneval/pathexpr/controller.h"
#include "syneval/problems/interfaces.h"
#include "syneval/solutions/solution_info.h"

namespace syneval {

// `path N:(1:(deposit); 1:(remove)) end` — the classic CH74 bounded buffer.
class PathBoundedBuffer : public BoundedBufferIface {
 public:
  PathBoundedBuffer(Runtime& runtime, int capacity);

  void Deposit(std::int64_t item, OpScope* scope) override;
  std::int64_t Remove(OpScope* scope) override;
  int capacity() const override { return capacity_; }

  static SolutionInfo Info();
  static std::string Program(int capacity);

  PathController& controller() { return controller_; }

 private:
  PathController controller_;
  std::vector<std::int64_t> ring_;
  int capacity_;
  int in_ = 0;
  int out_ = 0;
};

// `path deposit; remove end` — the CH74 one-slot buffer, the paper's example of pure
// history information.
class PathOneSlotBuffer : public OneSlotBufferIface {
 public:
  explicit PathOneSlotBuffer(Runtime& runtime);

  void Deposit(std::int64_t item, OpScope* scope) override;
  std::int64_t Remove(OpScope* scope) override;

  static SolutionInfo Info();
  static const char* Program();

 private:
  PathController controller_;
  std::int64_t slot_ = 0;
};

// Figure 1 of the paper: the Campbell–Habermann readers-priority solution.
//
//   path writeattempt end
//   path { requestread } , requestwrite end
//   path { read } , (openwrite ; write) end
//
//   requestwrite = begin openwrite end        writeattempt = begin requestwrite end
//   requestread  = begin read end
//   READ  = begin requestread end             WRITE = begin writeattempt ; write end
//
// Footnote 3 of the paper (reproduced by test and bench): a second writer can pass
// writeattempt/requestwrite and block at the third path; a reader arriving before the
// first write ends blocks at the second path behind that requestwrite, so the second
// writer gains the resource before the earlier reader — readers priority is violated.
class PathExprRwFigure1 : public ReadersWritersIface {
 public:
  explicit PathExprRwFigure1(Runtime& runtime);
  PathExprRwFigure1(Runtime& runtime, PathController::Options options);

  void Read(const AccessBody& body, OpScope* scope) override;
  void Write(const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();
  static const char* Program();

  PathController& controller() { return controller_; }

 private:
  PathController controller_;
};

// Figure 2 of the paper: the writers-priority solution.
//
//   path readattempt end
//   path requestread , { requestwrite } end
//   path { openread ; read } , write end
//
//   readattempt  = begin requestread end      requestread = begin openread end
//   requestwrite = begin write end
//   READ  = begin readattempt ; read end      WRITE = begin requestwrite end
class PathExprRwFigure2 : public ReadersWritersIface {
 public:
  explicit PathExprRwFigure2(Runtime& runtime);

  void Read(const AccessBody& body, OpScope* scope) override;
  void Write(const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();
  static const char* Program();

 private:
  PathController controller_;
};

// Predicate-extension (Andler) readers-priority solution — the "closest to satisfying
// our requirements" version the paper cites; unlike Figure 1 it is CHP-correct, but it
// still needs a hand-kept waiting-reader count (a synchronization procedure in spirit).
//
//   path { read } , [no_waiting_readers] write end
class PathExprRwPredicates : public ReadersWritersIface {
 public:
  explicit PathExprRwPredicates(Runtime& runtime);

  void Read(const AccessBody& body, OpScope* scope) override;
  void Write(const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();
  static const char* Program();

 private:
  PathController controller_;
  std::atomic<int> waiting_readers_{0};
};

// `path acquire end`: exclusion is direct; the FCFS ordering holds only under Bloom's
// longest-waiting selection assumption (pass kArbitrary to watch it fail — E3/E4
// ablation).
class PathFcfsResource : public FcfsResourceIface {
 public:
  explicit PathFcfsResource(Runtime& runtime);
  PathFcfsResource(Runtime& runtime, PathController::Options options);

  void Access(const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();
  static const char* Program();

 private:
  PathController controller_;
};

// `path disk end`: the best a path expression can do for the disk scheduler — mutual
// exclusion with FCFS order. SCAN is inexpressible because paths cannot reference the
// request parameter ("there is obviously no way to use parameter values in paths").
class PathDiskFcfs : public DiskSchedulerIface {
 public:
  explicit PathDiskFcfs(Runtime& runtime);

  void Access(std::int64_t track, const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();
  static const char* Program();

 private:
  PathController controller_;
};

}  // namespace syneval

#endif  // SYNEVAL_SOLUTIONS_PATHEXPR_SOLUTIONS_H_
