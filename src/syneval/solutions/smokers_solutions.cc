#include "syneval/solutions/smokers_solutions.h"

namespace syneval {

// ---------------------------------------------------------------------------------------
// Naive (Patil's deadlock).

SemaphoreSmokersNaive::SemaphoreSmokersNaive(Runtime& runtime) : table_empty_(runtime, 1) {
  for (int i = 0; i < 3; ++i) {
    ingredient_.push_back(std::make_unique<CountingSemaphore>(runtime, 0));
  }
}

void SemaphoreSmokersNaive::Place(int missing, OpScope* scope) {
  if (scope != nullptr) {
    scope->Arrived();
  }
  table_empty_.P([scope] {
    if (scope != nullptr) {
      scope->Entered();
      scope->Exited();
    }
  });
  // Release the two ingredients individually — the broken part: nothing ties the pair
  // to the one smoker that needs both.
  for (int i = 0; i < 3; ++i) {
    if (i != missing) {
      ingredient_[static_cast<std::size_t>(i)]->V();
    }
  }
}

void SemaphoreSmokersNaive::Smoke(int holding, const AccessBody& body, OpScope* scope) {
  if (scope != nullptr) {
    scope->Arrived();
  }
  bool first = true;
  for (int i = 0; i < 3; ++i) {
    if (i == holding) {
      continue;
    }
    if (first) {
      ingredient_[static_cast<std::size_t>(i)]->P();
      first = false;
    } else {
      // Holding one ingredient while waiting for the second: the deadlock window.
      ingredient_[static_cast<std::size_t>(i)]->P([scope] {
        if (scope != nullptr) {
          scope->Entered();
        }
      });
    }
  }
  body();
  if (scope != nullptr) {
    scope->Exited();
  }
  table_empty_.V();
}

SolutionInfo SemaphoreSmokersNaive::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSemaphore;
  info.problem = "cigarette-smokers";
  info.display_name = "Patil's ingredient semaphores — deadlocks";
  info.fragments = {
      {"exclusion", "agent: P(empty); V(ing_a); V(ing_b); smoker: P(ing_a); P(ing_b)"},
  };
  info.notes = "Two smokers can each grab one ingredient of a pair: hold-and-wait. "
               "Patil's point: the conditional cannot be expressed with bare P/V.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Agent-knows (the conditional relocated).

SemaphoreSmokersAgentKnows::SemaphoreSmokersAgentKnows(Runtime& runtime)
    : table_empty_(runtime, 1) {
  for (int i = 0; i < 3; ++i) {
    smoker_.push_back(std::make_unique<CountingSemaphore>(runtime, 0));
  }
}

void SemaphoreSmokersAgentKnows::Place(int missing, OpScope* scope) {
  if (scope != nullptr) {
    scope->Arrived();
  }
  table_empty_.P([scope] {
    if (scope != nullptr) {
      scope->Entered();
      scope->Exited();
    }
  });
  // The agent performs the case analysis itself and wakes the matching smoker.
  smoker_[static_cast<std::size_t>(missing)]->V();
}

void SemaphoreSmokersAgentKnows::Smoke(int holding, const AccessBody& body, OpScope* scope) {
  if (scope != nullptr) {
    scope->Arrived();
  }
  smoker_[static_cast<std::size_t>(holding)]->P([scope] {
    if (scope != nullptr) {
      scope->Entered();
    }
  });
  body();
  table_empty_.V([scope] {
    if (scope != nullptr) {
      scope->Exited();
    }
  });
}

SolutionInfo SemaphoreSmokersAgentKnows::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSemaphore;
  info.problem = "cigarette-smokers";
  info.display_name = "Agent-decides semaphores (conditional relocated)";
  info.fragments = {
      {"exclusion", "agent: P(empty); V(smoker[missing]); smoker: P(smoker[holding]); "
                    "smoke; V(empty)"},
  };
  info.notes = "Correct, but only because the decision moved out of the "
               "synchronization and into the agent's code — the E3 'indirect' pattern.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Monitor.

MonitorSmokers::MonitorSmokers(Runtime& runtime) : monitor_(runtime) {
  for (int i = 0; i < 3; ++i) {
    my_pair_.push_back(std::make_unique<HoareMonitor::Condition>(monitor_));
  }
}

void MonitorSmokers::Place(int missing, OpScope* scope) {
  MonitorRegion region(monitor_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  while (present_ || smoking_) {
    table_free_.Wait();
  }
  present_ = true;
  table_ = missing;
  if (scope != nullptr) {
    scope->Entered();
    scope->Exited();
  }
  my_pair_[static_cast<std::size_t>(missing)]->Signal();
}

void MonitorSmokers::Smoke(int holding, const AccessBody& body, OpScope* scope) {
  {
    MonitorRegion region(monitor_);
    if (scope != nullptr) {
      scope->Arrived();
    }
    while (!(present_ && table_ == holding)) {
      my_pair_[static_cast<std::size_t>(holding)]->Wait();
    }
    present_ = false;
    smoking_ = true;
    if (scope != nullptr) {
      scope->Entered();
    }
  }
  body();
  {
    MonitorRegion region(monitor_);
    smoking_ = false;
    if (scope != nullptr) {
      scope->Exited();
    }
    table_free_.Signal();
  }
}

SolutionInfo MonitorSmokers::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMonitor;
  info.problem = "cigarette-smokers";
  info.display_name = "Monitor smokers (condition per smoker)";
  info.shared_variables = 3;  // present, smoking, table.
  info.fragments = {
      {"exclusion", "while present or smoking do table_free.wait; smoker waits on its "
                    "own condition until table = holding; agent signals the match"},
  };
  info.notes = "The conditional Patil worried about is just a condition variable test.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Conditional critical region.

CcrSmokers::CcrSmokers(Runtime& runtime) : region_(runtime) {}

void CcrSmokers::Place(int missing, OpScope* scope) {
  CriticalRegion::Hooks hooks;
  if (scope != nullptr) {
    hooks.on_arrive = [scope] { scope->Arrived(); };
    hooks.on_admit = [scope] {
      scope->Entered();
      scope->Exited();
    };
  }
  region_.When([this] { return !present_ && !smoking_; },
               [this, missing] {
                 present_ = true;
                 table_ = missing;
               },
               hooks);
}

void CcrSmokers::Smoke(int holding, const AccessBody& body, OpScope* scope) {
  CriticalRegion::Hooks entry;
  if (scope != nullptr) {
    entry.on_arrive = [scope] { scope->Arrived(); };
    entry.on_admit = [scope] { scope->Entered(); };
  }
  region_.When([this, holding] { return present_ && table_ == holding; },
               [this] {
                 present_ = false;
                 smoking_ = true;
               },
               entry);
  body();
  CriticalRegion::Hooks exit;
  if (scope != nullptr) {
    exit.on_release = [scope] { scope->Exited(); };
  }
  region_.Enter([this] { smoking_ = false; }, exit);
}

SolutionInfo CcrSmokers::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kConditionalRegion;
  info.problem = "cigarette-smokers";
  info.display_name = "region when table = holding";
  info.shared_variables = 3;
  info.fragments = {
      {"exclusion", "agent: when not present and not smoking; smoker: when present and "
                    "table = holding"},
  };
  info.notes = "The awaited condition IS Patil's conditional.";
  return info;
}

}  // namespace syneval
