#include "syneval/solutions/csp_solutions.h"

#include <algorithm>

namespace syneval {

namespace {

// Client-side hook bundles. Arrival = the send becomes visible to the server
// (on_register); admission = the server's acceptance (on_accept); both run under the
// channel-group lock, per the instrumentation contract.
std::function<void()> ArriveHook(OpScope* scope) {
  if (scope == nullptr) {
    return nullptr;
  }
  return [scope] { scope->Arrived(); };
}

std::function<void()> EnterHook(OpScope* scope) {
  if (scope == nullptr) {
    return nullptr;
  }
  return [scope] { scope->Entered(); };
}

std::function<void()> ExitHook(OpScope* scope) {
  if (scope == nullptr) {
    return nullptr;
  }
  return [scope] { scope->Exited(); };
}

}  // namespace

// ---------------------------------------------------------------------------------------
// Bounded buffer.

CspBoundedBuffer::CspBoundedBuffer(Runtime& runtime, int capacity)
    : capacity_(capacity), group_(runtime) {
  server_ = runtime.StartThread("buffer-server", [this] {
    std::vector<std::int64_t> ring(static_cast<std::size_t>(capacity_), 0);
    int count = 0;
    int in = 0;
    int out = 0;
    while (true) {
      ChanMsg msg;
      const int idx = group_.Select(
          {SelectCase{&stop_ch_, nullptr},
           SelectCase{&deposit_ch_, [&] { return count < capacity_; }},
           SelectCase{&fetch_ch_, [&] { return count > 0; }}},
          &msg);
      if (idx == 0) {
        return;
      }
      if (idx == 1) {
        ring[static_cast<std::size_t>(in)] = msg.value;
        in = (in + 1) % capacity_;
        ++count;
      } else {
        const std::int64_t item = ring[static_cast<std::size_t>(out)];
        out = (out + 1) % capacity_;
        reply_ch_.Send(ChanMsg{0, item, nullptr});
        // The slot counts as freed only once the consumer took the item, so the trace
        // never shows a deposit entering an apparently full buffer.
        --count;
      }
    }
  });
}

CspBoundedBuffer::~CspBoundedBuffer() {
  Shutdown();
  server_->Join();
}

void CspBoundedBuffer::Shutdown() { stop_ch_.TrySend(ChanMsg{}); }

void CspBoundedBuffer::Deposit(std::int64_t item, OpScope* scope) {
  deposit_ch_.Send(ChanMsg{0, item, nullptr}, ArriveHook(scope), [scope] {
    if (scope != nullptr) {
      scope->Entered();
      scope->Exited();
    }
  });
}

std::int64_t CspBoundedBuffer::Remove(OpScope* scope) {
  fetch_ch_.Send(ChanMsg{}, ArriveHook(scope), nullptr);
  const ChanMsg reply = reply_ch_.Receive([scope](const ChanMsg& m) {
    if (scope != nullptr) {
      scope->Entered();
      scope->Exited(m.value);
    }
  });
  return reply.value;
}

SolutionInfo CspBoundedBuffer::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMessagePassing;
  info.problem = "bounded-buffer";
  info.display_name = "CSP buffer process (guarded select)";
  info.fragments = {
      {"exclusion", "the buffer is a sequential server process; nobody else touches it"},
      {"local-state", "select [count < N] deposit? | [count > 0] fetch? — guards over "
                      "server-local state"},
  };
  info.notes = "No shared variables at all; the state is private to the server.";
  return info;
}

// ---------------------------------------------------------------------------------------
// One-slot buffer.

CspOneSlotBuffer::CspOneSlotBuffer(Runtime& runtime) : group_(runtime) {
  server_ = runtime.StartThread("slot-server", [this] {
    while (true) {
      ChanMsg msg;
      // Phase 1: only a deposit (or stop) is acceptable.
      if (group_.Select({SelectCase{&stop_ch_, nullptr}, SelectCase{&deposit_ch_, nullptr}},
                        &msg) == 0) {
        return;
      }
      const std::int64_t item = msg.value;
      // Phase 2: only a fetch (or stop) is acceptable.
      if (group_.Select({SelectCase{&stop_ch_, nullptr}, SelectCase{&fetch_ch_, nullptr}},
                        &msg) == 0) {
        return;
      }
      reply_ch_.Send(ChanMsg{0, item, nullptr});
    }
  });
}

CspOneSlotBuffer::~CspOneSlotBuffer() {
  Shutdown();
  server_->Join();
}

void CspOneSlotBuffer::Shutdown() { stop_ch_.TrySend(ChanMsg{}); }

void CspOneSlotBuffer::Deposit(std::int64_t item, OpScope* scope) {
  deposit_ch_.Send(ChanMsg{0, item, nullptr}, ArriveHook(scope), [scope] {
    if (scope != nullptr) {
      scope->Entered();
      scope->Exited();
    }
  });
}

std::int64_t CspOneSlotBuffer::Remove(OpScope* scope) {
  fetch_ch_.Send(ChanMsg{}, ArriveHook(scope), nullptr);
  const ChanMsg reply = reply_ch_.Receive([scope](const ChanMsg& m) {
    if (scope != nullptr) {
      scope->Entered();
      scope->Exited(m.value);
    }
  });
  return reply.value;
}

SolutionInfo CspOneSlotBuffer::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMessagePassing;
  info.problem = "one-slot-buffer";
  info.display_name = "CSP alternating server (history = program counter)";
  info.fragments = {
      {"exclusion", "the slot is a sequential server process"},
      {"history", "the server's control flow IS the constraint: receive deposit; "
                  "receive fetch; repeat"},
  };
  info.notes = "History lives in the program counter — no flag, no counter, no queue.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Readers/writers.

CspReadersWriters::CspReadersWriters(Runtime& runtime, Policy policy)
    : policy_(policy), group_(runtime) {
  server_ = runtime.StartThread("rw-server", [this] {
    int readers = 0;
    bool writing = false;
    while (true) {
      std::vector<SelectCase> cases;
      cases.push_back(SelectCase{&stop_ch_, nullptr});
      cases.push_back(SelectCase{&end_read_, nullptr});
      cases.push_back(SelectCase{&end_write_, nullptr});
      if (policy_ == Policy::kReadersPriority) {
        // Textual priority: readers' starts are examined before writers'.
        cases.push_back(SelectCase{&start_read_, [&] { return !writing; }});
        cases.push_back(SelectCase{&start_write_, [&] { return !writing && readers == 0; }});
      } else {
        cases.push_back(SelectCase{&start_write_, [&] { return !writing && readers == 0; }});
        cases.push_back(SelectCase{
            &start_read_, [&] { return !writing && !start_write_.HasSenders(); }});
      }
      ChanMsg msg;
      const int idx = group_.Select(cases, &msg);
      if (idx == 0) {
        return;
      }
      if (idx == 1) {
        --readers;
      } else if (idx == 2) {
        writing = false;
      } else {
        const bool is_read = (policy_ == Policy::kReadersPriority) == (idx == 3);
        if (is_read) {
          ++readers;
        } else {
          writing = true;
        }
      }
    }
  });
}

CspReadersWriters::~CspReadersWriters() {
  Shutdown();
  server_->Join();
}

void CspReadersWriters::Shutdown() { stop_ch_.TrySend(ChanMsg{}); }

void CspReadersWriters::Read(const AccessBody& body, OpScope* scope) {
  start_read_.Send(ChanMsg{}, ArriveHook(scope), EnterHook(scope));
  body();
  end_read_.Send(ChanMsg{}, nullptr, ExitHook(scope));
}

void CspReadersWriters::Write(const AccessBody& body, OpScope* scope) {
  start_write_.Send(ChanMsg{}, ArriveHook(scope), EnterHook(scope));
  body();
  end_write_.Send(ChanMsg{}, nullptr, ExitHook(scope));
}

SolutionInfo CspReadersWriters::InfoReadersPriority() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMessagePassing;
  info.problem = "rw-readers-priority";
  info.display_name = "CSP server (start_read alternative listed first)";
  info.fragments = {
      {"exclusion", "select [not writing] start_read? -> readers+1 | [not writing and "
                    "readers = 0] start_write? -> writing := true"},
      {"priority", "the start_read alternative is examined before start_write"},
  };
  info.notes = "The priority constraint is the textual ORDER of two select arms.";
  return info;
}

SolutionInfo CspReadersWriters::InfoWritersPriority() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMessagePassing;
  info.problem = "rw-writers-priority";
  info.display_name = "CSP server (start_write first + waiting-writer guard)";
  info.fragments = {
      {"exclusion", "select [not writing] start_read? -> readers+1 | [not writing and "
                    "readers = 0] start_write? -> writing := true"},
      {"priority", "start_write examined first; start_read also guarded on no pending "
                   "start_write sender"},
  };
  info.notes = "The policy change is an arm swap plus one guard conjunct.";
  return info;
}

// ---------------------------------------------------------------------------------------
// FCFS resource.

CspFcfsResource::CspFcfsResource(Runtime& runtime) : group_(runtime) {
  server_ = runtime.StartThread("fcfs-server", [this] {
    while (true) {
      ChanMsg msg;
      if (group_.Select({SelectCase{&stop_ch_, nullptr}, SelectCase{&acquire_ch_, nullptr}},
                        &msg) == 0) {
        return;
      }
      release_ch_.Receive();
    }
  });
}

CspFcfsResource::~CspFcfsResource() {
  Shutdown();
  server_->Join();
}

void CspFcfsResource::Shutdown() { stop_ch_.TrySend(ChanMsg{}); }

void CspFcfsResource::Access(const AccessBody& body, OpScope* scope) {
  acquire_ch_.Send(ChanMsg{}, ArriveHook(scope), EnterHook(scope));
  body();
  release_ch_.Send(ChanMsg{}, nullptr, ExitHook(scope));
}

SolutionInfo CspFcfsResource::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMessagePassing;
  info.problem = "fcfs-resource";
  info.display_name = "CSP server (channel order IS arrival order)";
  info.fragments = {
      {"exclusion", "the server accepts one acquire, then blocks on release"},
      {"priority", "blocked senders on one channel are served in arrival order"},
  };
  info.notes = "Request time is the channel's queue: nothing to program.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Disk scheduler (SCAN).

CspDiskScheduler::CspDiskScheduler(Runtime& runtime, std::int64_t initial_head)
    : group_(runtime), initial_head_(initial_head) {
  server_ = runtime.StartThread("disk-server", [this] {
    struct PendingRequest {
      std::int64_t track = 0;
      std::uint64_t ticket = 0;
      Channel* reply = nullptr;
    };
    std::vector<PendingRequest> pending;
    std::uint64_t next_ticket = 0;
    std::int64_t head = initial_head_;
    bool moving_up = true;
    bool busy = false;

    auto pick = [&](bool up) -> const PendingRequest* {
      const PendingRequest* best = nullptr;
      for (const PendingRequest& p : pending) {
        const bool eligible = up ? p.track >= head : p.track <= head;
        if (!eligible) {
          continue;
        }
        if (best == nullptr || (up ? p.track < best->track : p.track > best->track) ||
            (p.track == best->track && p.ticket < best->ticket)) {
          best = &p;
        }
      }
      return best;
    };
    auto grant = [&](bool idle) {
      bool direction = moving_up;
      const PendingRequest* choice = pick(moving_up);
      if (choice == nullptr) {
        choice = pick(!moving_up);
        direction = !moving_up;
      }
      if (!idle) {
        moving_up = direction;  // Idle admissions are not scheduling decisions.
      }
      head = choice->track;
      busy = true;
      Channel* reply = choice->reply;
      pending.erase(pending.begin() + (choice - pending.data()));
      reply->Send(ChanMsg{});
    };

    while (true) {
      ChanMsg msg;
      // Requests are drained before releases so decisions see every arrival.
      const int idx = group_.Select({SelectCase{&stop_ch_, nullptr},
                                     SelectCase{&request_ch_, nullptr},
                                     SelectCase{&release_ch_, nullptr}},
                                    &msg);
      if (idx == 0) {
        return;
      }
      if (idx == 1) {
        pending.push_back(PendingRequest{msg.value, next_ticket++, msg.reply});
        if (!busy) {
          grant(/*idle=*/pending.size() == 1);
        }
      } else {
        if (!pending.empty()) {
          grant(/*idle=*/false);
        } else {
          busy = false;
        }
      }
    }
  });
}

CspDiskScheduler::~CspDiskScheduler() {
  Shutdown();
  server_->Join();
}

void CspDiskScheduler::Shutdown() { stop_ch_.TrySend(ChanMsg{}); }

void CspDiskScheduler::Access(std::int64_t track, const AccessBody& body, OpScope* scope) {
  Channel reply(group_, "grant");
  request_ch_.Send(ChanMsg{0, track, &reply}, ArriveHook(scope), nullptr);
  reply.Receive([scope](const ChanMsg&) {
    if (scope != nullptr) {
      scope->Entered();
    }
  });
  body();
  release_ch_.Send(ChanMsg{}, nullptr, ExitHook(scope));
}

SolutionInfo CspDiskScheduler::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMessagePassing;
  info.problem = "disk-scan";
  info.display_name = "CSP disk server (tracks travel in messages)";
  info.shared_variables = 0;  // Head, direction and the queue are server-local.
  info.fragments = {
      {"exclusion", "the server grants one request and waits for its release"},
      {"priority", "requests carry their track; the server picks the SCAN choice from "
                   "its private pending list"},
  };
  info.notes = "Parameters are just message fields; the scheduler state is private.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Alarm clock.

CspAlarmClock::CspAlarmClock(Runtime& runtime) : group_(runtime) {
  server_ = runtime.StartThread("clock-server", [this] {
    struct Sleeper {
      std::int64_t due = 0;
      std::uint64_t ticket = 0;
      Channel* reply = nullptr;
    };
    std::vector<Sleeper> sleepers;
    std::uint64_t next_ticket = 0;
    std::int64_t now = 0;
    while (true) {
      ChanMsg msg;
      const int idx = group_.Select({SelectCase{&stop_ch_, nullptr},
                                     SelectCase{&wake_ch_, nullptr},
                                     SelectCase{&tick_ch_, nullptr}},
                                    &msg);
      if (idx == 0) {
        return;
      }
      if (idx == 1) {
        sleepers.push_back(Sleeper{now + msg.value, next_ticket++, msg.reply});
        continue;
      }
      ++now;
      now_mirror_.store(now);
      // Wake everyone due, earliest due first (FIFO among equal dues).
      std::sort(sleepers.begin(), sleepers.end(), [](const Sleeper& a, const Sleeper& b) {
        return a.due != b.due ? a.due < b.due : a.ticket < b.ticket;
      });
      while (!sleepers.empty() && sleepers.front().due <= now) {
        const Sleeper s = sleepers.front();
        sleepers.erase(sleepers.begin());
        s.reply->Send(ChanMsg{s.due, now, nullptr});
      }
    }
  });
}

CspAlarmClock::~CspAlarmClock() {
  Shutdown();
  server_->Join();
}

void CspAlarmClock::Shutdown() { stop_ch_.TrySend(ChanMsg{}); }

void CspAlarmClock::Tick() { tick_ch_.Send(ChanMsg{}); }

void CspAlarmClock::WakeMe(std::int64_t ticks, OpScope* scope) {
  Channel reply(group_, "wakeup");
  wake_ch_.Send(ChanMsg{0, ticks, &reply}, ArriveHook(scope), nullptr);
  reply.Receive([scope](const ChanMsg& m) {
    if (scope != nullptr) {
      scope->Entered(m.tag);  // Due time, computed by the server.
      scope->Exited(m.value);
    }
  });
}

std::int64_t CspAlarmClock::Now() const { return now_mirror_.load(); }

SolutionInfo CspAlarmClock::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMessagePassing;
  info.problem = "alarm-clock";
  info.display_name = "CSP clock server (wake times in messages)";
  info.fragments = {
      {"priority", "wake requests carry their delay; the server wakes its private due "
                   "list in due order at each tick"},
  };
  return info;
}

// ---------------------------------------------------------------------------------------
// Shortest-job-next allocator.

CspSjnAllocator::CspSjnAllocator(Runtime& runtime) : group_(runtime) {
  server_ = runtime.StartThread("sjn-server", [this] {
    struct Job {
      std::int64_t estimate = 0;
      std::uint64_t ticket = 0;
      Channel* reply = nullptr;
    };
    std::vector<Job> pending;
    std::uint64_t next_ticket = 0;
    bool busy = false;
    auto grant = [&] {
      auto best = pending.begin();
      for (auto it = pending.begin(); it != pending.end(); ++it) {
        if (it->estimate < best->estimate ||
            (it->estimate == best->estimate && it->ticket < best->ticket)) {
          best = it;
        }
      }
      Channel* reply = best->reply;
      pending.erase(best);
      busy = true;
      reply->Send(ChanMsg{});
    };
    while (true) {
      ChanMsg msg;
      const int idx = group_.Select({SelectCase{&stop_ch_, nullptr},
                                     SelectCase{&request_ch_, nullptr},
                                     SelectCase{&release_ch_, nullptr}},
                                    &msg);
      if (idx == 0) {
        return;
      }
      if (idx == 1) {
        pending.push_back(Job{msg.value, next_ticket++, msg.reply});
        if (!busy) {
          grant();
        }
      } else {
        if (!pending.empty()) {
          grant();
        } else {
          busy = false;
        }
      }
    }
  });
}

CspSjnAllocator::~CspSjnAllocator() {
  Shutdown();
  server_->Join();
}

void CspSjnAllocator::Shutdown() { stop_ch_.TrySend(ChanMsg{}); }

void CspSjnAllocator::Use(std::int64_t estimate, const AccessBody& body, OpScope* scope) {
  Channel reply(group_, "grant");
  request_ch_.Send(ChanMsg{0, estimate, &reply}, ArriveHook(scope), nullptr);
  reply.Receive([scope](const ChanMsg&) {
    if (scope != nullptr) {
      scope->Entered();
    }
  });
  body();
  release_ch_.Send(ChanMsg{}, nullptr, ExitHook(scope));
}

SolutionInfo CspSjnAllocator::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMessagePassing;
  info.problem = "sjn-allocator";
  info.display_name = "CSP allocator server (estimates in messages)";
  info.fragments = {
      {"exclusion", "the server grants one job and waits for its release"},
      {"priority", "requests carry estimates; the server grants its private minimum"},
  };
  return info;
}

// ---------------------------------------------------------------------------------------
// Dining philosophers.

CspDining::CspDining(Runtime& runtime, int seats) : seats_(seats), group_(runtime) {
  for (int i = 0; i < seats; ++i) {
    grant_.push_back(std::make_unique<Channel>(group_, "grant" + std::to_string(i)));
  }
  server_ = runtime.StartThread("table-server", [this] {
    std::vector<bool> eating(static_cast<std::size_t>(seats_), false);
    std::vector<int> hungry;  // Arrival order.
    auto try_grants = [&] {
      bool progress = true;
      while (progress) {
        progress = false;
        for (auto it = hungry.begin(); it != hungry.end(); ++it) {
          const int seat = *it;
          const auto left = static_cast<std::size_t>((seat + seats_ - 1) % seats_);
          const auto right = static_cast<std::size_t>((seat + 1) % seats_);
          if (!eating[left] && !eating[right]) {
            eating[static_cast<std::size_t>(seat)] = true;
            hungry.erase(it);
            grant_[static_cast<std::size_t>(seat)]->Send(ChanMsg{});
            progress = true;
            break;
          }
        }
      }
    };
    while (true) {
      ChanMsg msg;
      const int idx = group_.Select({SelectCase{&stop_ch_, nullptr},
                                     SelectCase{&hungry_ch_, nullptr},
                                     SelectCase{&done_ch_, nullptr}},
                                    &msg);
      if (idx == 0) {
        return;
      }
      if (idx == 1) {
        hungry.push_back(static_cast<int>(msg.tag));
      } else {
        eating[static_cast<std::size_t>(msg.tag)] = false;
      }
      try_grants();
    }
  });
}

CspDining::~CspDining() {
  Shutdown();
  server_->Join();
}

void CspDining::Shutdown() { stop_ch_.TrySend(ChanMsg{}); }

void CspDining::Eat(int philosopher, const AccessBody& body, OpScope* scope) {
  hungry_ch_.Send(ChanMsg{philosopher, 0, nullptr}, ArriveHook(scope), nullptr);
  grant_[static_cast<std::size_t>(philosopher)]->Receive([scope](const ChanMsg&) {
    if (scope != nullptr) {
      scope->Entered();
    }
  });
  body();
  done_ch_.Send(ChanMsg{philosopher, 0, nullptr}, nullptr, ExitHook(scope));
}

SolutionInfo CspDining::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMessagePassing;
  info.problem = "dining-philosophers";
  info.display_name = "CSP table server (grants both forks atomically)";
  info.fragments = {
      {"exclusion", "the server grants a seat only while neither neighbour eats; grants "
                    "and completions are messages"},
  };
  info.notes = "Deadlock-free: the fork pair is granted by one sequential decision.";
  return info;
}

}  // namespace syneval
