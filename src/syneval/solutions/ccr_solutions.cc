#include "syneval/solutions/ccr_solutions.h"

#include <algorithm>

namespace syneval {

namespace {

// Hook bundle for an operation whose whole effect happens inside one region body.
CriticalRegion::Hooks InRegionHooks(OpScope* scope) {
  CriticalRegion::Hooks hooks;
  if (scope != nullptr) {
    hooks.on_arrive = [scope] { scope->Arrived(); };
    hooks.on_admit = [scope] { scope->Entered(); };
    hooks.on_release = [scope] { scope->Exited(); };
  }
  return hooks;
}

// Hook bundles for the entry/exit-protocol pattern (resource access outside the region).
CriticalRegion::Hooks EntryHooks(OpScope* scope) {
  CriticalRegion::Hooks hooks;
  if (scope != nullptr) {
    hooks.on_arrive = [scope] { scope->Arrived(); };
    hooks.on_admit = [scope] { scope->Entered(); };
  }
  return hooks;
}

CriticalRegion::Hooks ExitHooks(OpScope* scope) {
  CriticalRegion::Hooks hooks;
  if (scope != nullptr) {
    // The release instant is when the exit protocol's state update becomes visible to
    // the next admission decision: just before the region is handed on.
    hooks.on_release = [scope] { scope->Exited(); };
  }
  return hooks;
}

}  // namespace

// ---------------------------------------------------------------------------------------
// Bounded buffer.

CcrBoundedBuffer::CcrBoundedBuffer(Runtime& runtime, int capacity)
    : region_(runtime), ring_(static_cast<std::size_t>(capacity), 0), capacity_(capacity) {}

void CcrBoundedBuffer::Deposit(std::int64_t item, OpScope* scope) {
  region_.When([this] { return count_ < capacity_; },
               [this, item] {
                 ring_[static_cast<std::size_t>(in_)] = item;
                 in_ = (in_ + 1) % capacity_;
                 ++count_;
               },
               InRegionHooks(scope));
}

std::int64_t CcrBoundedBuffer::Remove(OpScope* scope) {
  std::int64_t item = 0;
  CriticalRegion::Hooks hooks = InRegionHooks(scope);
  if (scope != nullptr) {
    hooks.on_release = [scope, &item] { scope->Exited(item); };
  }
  region_.When([this] { return count_ > 0; },
               [this, &item] {
                 item = ring_[static_cast<std::size_t>(out_)];
                 out_ = (out_ + 1) % capacity_;
                 --count_;
               },
               hooks);
  return item;
}

SolutionInfo CcrBoundedBuffer::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kConditionalRegion;
  info.problem = "bounded-buffer";
  info.display_name = "region when count < N / count > 0";
  info.shared_variables = 3;  // count, in, out.
  info.fragments = {
      {"exclusion", "region bodies are mutually exclusive"},
      {"local-state", "when count < capacity do deposit; when count > 0 do remove"},
  };
  info.notes = "The awaited condition IS the local-state constraint — the CCR best case.";
  return info;
}

// ---------------------------------------------------------------------------------------
// One-slot buffer.

CcrOneSlotBuffer::CcrOneSlotBuffer(Runtime& runtime) : region_(runtime) {}

void CcrOneSlotBuffer::Deposit(std::int64_t item, OpScope* scope) {
  region_.When([this] { return !has_item_; },
               [this, item] {
                 slot_ = item;
                 has_item_ = true;
               },
               InRegionHooks(scope));
}

std::int64_t CcrOneSlotBuffer::Remove(OpScope* scope) {
  std::int64_t item = 0;
  CriticalRegion::Hooks hooks = InRegionHooks(scope);
  if (scope != nullptr) {
    hooks.on_release = [scope, &item] { scope->Exited(item); };
  }
  region_.When([this] { return has_item_; },
               [this, &item] {
                 item = slot_;
                 has_item_ = false;
               },
               hooks);
  return item;
}

SolutionInfo CcrOneSlotBuffer::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kConditionalRegion;
  info.problem = "one-slot-buffer";
  info.display_name = "region when has_item flips";
  info.shared_variables = 1;
  info.fragments = {
      {"exclusion", "region bodies are mutually exclusive"},
      {"history", "when not has_item do deposit; when has_item do remove"},
  };
  info.notes = "History re-encoded as a flag, as in monitors and serializers.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Readers/writers: readers priority.

CcrRwReadersPriority::CcrRwReadersPriority(Runtime& runtime) : region_(runtime) {}

void CcrRwReadersPriority::Read(const AccessBody& body, OpScope* scope) {
  pending_readers_.fetch_add(1);
  region_.When([this] { return !writing_; },
               [this] {
                 pending_readers_.fetch_sub(1);
                 ++readers_;
               },
               EntryHooks(scope));
  body();
  region_.Enter([this] { --readers_; }, ExitHooks(scope));
}

void CcrRwReadersPriority::Write(const AccessBody& body, OpScope* scope) {
  region_.When(
      [this] { return !writing_ && readers_ == 0 && pending_readers_.load() == 0; },
      [this] { writing_ = true; }, EntryHooks(scope));
  body();
  region_.Enter([this] { writing_ = false; }, ExitHooks(scope));
}

SolutionInfo CcrRwReadersPriority::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kConditionalRegion;
  info.problem = "rw-readers-priority";
  info.display_name = "CCR readers priority (pending-reader counter)";
  info.shared_variables = 3;  // readers, writing, pending_readers.
  info.fragments = {
      {"exclusion", "reader: when not writing do readers+1; "
                    "writer: when not writing and readers = 0 do writing := true"},
      {"priority", "writer additionally awaits pending_readers = 0, a counter readers "
                   "bump before their entry region"},
  };
  info.notes = "Priority over *waiting* processes needs host-kept pending counts: the "
               "condition language cannot see the wait queues.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Readers/writers: writers priority.

CcrRwWritersPriority::CcrRwWritersPriority(Runtime& runtime) : region_(runtime) {}

void CcrRwWritersPriority::Read(const AccessBody& body, OpScope* scope) {
  region_.When(
      [this] { return !writing_ && pending_writers_.load() == 0; },
      [this] { ++readers_; }, EntryHooks(scope));
  body();
  region_.Enter([this] { --readers_; }, ExitHooks(scope));
}

void CcrRwWritersPriority::Write(const AccessBody& body, OpScope* scope) {
  pending_writers_.fetch_add(1);
  region_.When([this] { return !writing_ && readers_ == 0; },
               [this] {
                 pending_writers_.fetch_sub(1);
                 writing_ = true;
               },
               EntryHooks(scope));
  body();
  region_.Enter([this] { writing_ = false; }, ExitHooks(scope));
}

SolutionInfo CcrRwWritersPriority::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kConditionalRegion;
  info.problem = "rw-writers-priority";
  info.display_name = "CCR writers priority (pending-writer counter)";
  info.shared_variables = 3;
  info.fragments = {
      {"exclusion", "reader: when not writing do readers+1; "
                    "writer: when not writing and readers = 0 do writing := true"},
      {"priority", "reader additionally awaits pending_writers = 0, a counter writers "
                   "bump before their entry region"},
  };
  info.notes = "Symmetric one-counter change from readers priority: constraints stay "
               "independent.";
  return info;
}

// ---------------------------------------------------------------------------------------
// FCFS resource.

CcrFcfsResource::CcrFcfsResource(Runtime& runtime) : region_(runtime) {}

void CcrFcfsResource::Access(const AccessBody& body, OpScope* scope) {
  std::int64_t ticket = 0;
  CriticalRegion::Hooks entry = EntryHooks(scope);
  // The ticket is drawn under the region lock at arrival so that ticket order equals
  // the recorded arrival order.
  entry.on_arrive = [this, scope, &ticket] {
    if (scope != nullptr) {
      scope->Arrived();
    }
    ticket = next_ticket_++;
  };
  region_.When([this, &ticket] { return !busy_ && ticket == serving_; },
               [this] { busy_ = true; }, entry);
  body();
  region_.Enter(
      [this] {
        busy_ = false;
        ++serving_;
      },
      ExitHooks(scope));
}

SolutionInfo CcrFcfsResource::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kConditionalRegion;
  info.problem = "fcfs-resource";
  info.display_name = "CCR FCFS (ticket in condition)";
  info.direct = false;
  info.shared_variables = 3;  // busy, next_ticket, serving.
  info.fragments = {
      {"exclusion", "when not busy ... do busy := true"},
      {"priority", "ticket drawn at arrival; when ticket = serving; serving+1 at exit"},
  };
  info.notes = "Request time must be reified as tickets: conditions cannot reference "
               "wait order.";
  return info;
}

// ---------------------------------------------------------------------------------------
// SCAN disk scheduler.

CcrDiskScheduler::CcrDiskScheduler(Runtime& runtime, std::int64_t initial_head)
    : region_(runtime), head_(initial_head) {}

const CcrDiskScheduler::Pending* CcrDiskScheduler::PickLocked(bool* direction_used) const {
  auto pick = [this](bool up) -> const Pending* {
    const Pending* best = nullptr;
    for (const Pending& p : pending_) {
      const bool eligible = up ? p.track >= head_ : p.track <= head_;
      if (!eligible) {
        continue;
      }
      if (best == nullptr || (up ? p.track < best->track : p.track > best->track) ||
          (p.track == best->track && p.ticket < best->ticket)) {
        best = &p;
      }
    }
    return best;
  };
  const Pending* best = pick(moving_up_);
  *direction_used = moving_up_;
  if (best == nullptr) {
    best = pick(!moving_up_);
    *direction_used = !moving_up_;
  }
  return best;
}

void CcrDiskScheduler::Access(std::int64_t track, const AccessBody& body, OpScope* scope) {
  std::uint64_t ticket = 0;
  bool idle_admission = false;
  CriticalRegion::Hooks entry = EntryHooks(scope);
  entry.on_arrive = [this, scope, track, &ticket, &idle_admission] {
    if (scope != nullptr) {
      scope->Arrived();
    }
    ticket = next_ticket_++;
    pending_.push_back(Pending{track, ticket});
    // An arrival to an idle disk with no competitors is admitted immediately; that is
    // not a scheduling decision and must not turn the sweep around (same invariant the
    // SCAN oracle enforced on the serializer solution).
    idle_admission = !busy_ && pending_.size() == 1;
  };
  // The direction the winning evaluation used is captured by the condition itself:
  // between the grant and the admitted body, new arrivals may already have joined
  // pending_, so the body must not re-derive the pick. Assigned only under the region
  // lock (reading moving_up_ here would race with admitted bodies writing it).
  bool chosen_direction = false;
  region_.When(
      [this, &ticket, &chosen_direction] {
        if (busy_ || pending_.empty()) {
          return false;
        }
        bool direction = moving_up_;
        const Pending* pick = PickLocked(&direction);
        if (pick == nullptr || pick->ticket != ticket) {
          return false;
        }
        chosen_direction = direction;
        return true;
      },
      [this, track, &ticket, &idle_admission, &chosen_direction] {
        if (!idle_admission) {
          moving_up_ = chosen_direction;
        }
        busy_ = true;
        head_ = track;
        pending_.erase(std::find_if(pending_.begin(), pending_.end(),
                                    [&](const Pending& p) { return p.ticket == ticket; }));
      },
      entry);
  body();
  region_.Enter([this] { busy_ = false; }, ExitHooks(scope));
}

SolutionInfo CcrDiskScheduler::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kConditionalRegion;
  info.problem = "disk-scan";
  info.display_name = "CCR SCAN (pending list re-derived per exit)";
  info.direct = false;
  info.shared_variables = 4;  // pending list, head, direction, busy.
  info.fragments = {
      {"exclusion", "when not busy ... do busy := true"},
      {"priority", "pending list registered at arrival; condition: the SCAN choice over "
                   "pending equals me; direction/head updated on admission"},
  };
  info.notes = "The whole scheduler lives in hand-kept state, as with semaphores — but "
               "without the private-semaphore plumbing.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Alarm clock.

CcrAlarmClock::CcrAlarmClock(Runtime& runtime) : region_(runtime) {}

void CcrAlarmClock::Tick() {
  region_.Enter([this] { ++now_; });
}

void CcrAlarmClock::WakeMe(std::int64_t ticks, OpScope* scope) {
  std::int64_t due = 0;
  CriticalRegion::Hooks hooks;
  hooks.on_arrive = [this, scope, ticks, &due] {
    due = now_ + ticks;
    if (scope != nullptr) {
      scope->Arrived();
      scope->Entered(due);
    }
  };
  if (scope != nullptr) {
    hooks.on_admit = [this, scope] { scope->Exited(now_); };
  }
  region_.When([this, &due] { return now_ >= due; }, [] {}, hooks);
}

std::int64_t CcrAlarmClock::Now() const {
  std::int64_t now = 0;
  region_.Enter([this, &now] { now = now_; });
  return now;
}

SolutionInfo CcrAlarmClock::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kConditionalRegion;
  info.problem = "alarm-clock";
  info.display_name = "region when now >= due";
  info.shared_variables = 1;  // now.
  info.fragments = {
      {"priority", "when now >= now_at_call + n do wake — the request parameter appears "
                   "directly in the condition"},
  };
  info.notes = "The CCR best case for parameters: one line, no queues, no signals.";
  return info;
}

// ---------------------------------------------------------------------------------------
// SJN allocator.

CcrSjnAllocator::CcrSjnAllocator(Runtime& runtime) : region_(runtime) {}

void CcrSjnAllocator::Use(std::int64_t estimate, const AccessBody& body, OpScope* scope) {
  std::uint64_t ticket = 0;
  CriticalRegion::Hooks entry = EntryHooks(scope);
  entry.on_arrive = [this, scope, estimate, &ticket] {
    if (scope != nullptr) {
      scope->Arrived();
    }
    ticket = next_ticket_++;
    pending_.push_back(Pending{estimate, ticket});
  };
  region_.When(
      [this, &ticket] {
        if (busy_ || pending_.empty()) {
          return false;
        }
        const Pending* best = &pending_.front();
        for (const Pending& p : pending_) {
          if (p.estimate < best->estimate ||
              (p.estimate == best->estimate && p.ticket < best->ticket)) {
            best = &p;
          }
        }
        return best->ticket == ticket;
      },
      [this, &ticket] {
        busy_ = true;
        pending_.erase(std::find_if(pending_.begin(), pending_.end(),
                                    [&](const Pending& p) { return p.ticket == ticket; }));
      },
      entry);
  body();
  region_.Enter([this] { busy_ = false; }, ExitHooks(scope));
}

SolutionInfo CcrSjnAllocator::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kConditionalRegion;
  info.problem = "sjn-allocator";
  info.display_name = "CCR SJN (pending estimates, min in condition)";
  info.direct = false;
  info.shared_variables = 3;  // pending list, busy, ticket counter.
  info.fragments = {
      {"exclusion", "when not busy ... do busy := true"},
      {"priority", "pending estimates registered at arrival; condition: mine is the "
                   "minimum"},
  };
  info.notes = "Cross-request comparisons force the pending set into shared state.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Dining philosophers.

CcrDining::CcrDining(Runtime& runtime, int seats)
    : seats_(seats), region_(runtime), eating_(static_cast<std::size_t>(seats), false) {}

void CcrDining::Eat(int philosopher, const AccessBody& body, OpScope* scope) {
  const auto left = static_cast<std::size_t>((philosopher + seats_ - 1) % seats_);
  const auto right = static_cast<std::size_t>((philosopher + 1) % seats_);
  const auto self = static_cast<std::size_t>(philosopher);
  region_.When([this, left, right] { return !eating_[left] && !eating_[right]; },
               [this, self] { eating_[self] = true; }, EntryHooks(scope));
  body();
  region_.Enter([this, self] { eating_[self] = false; }, ExitHooks(scope));
}

SolutionInfo CcrDining::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kConditionalRegion;
  info.problem = "dining-philosophers";
  info.display_name = "region when neighbours not eating";
  info.shared_variables = 1;
  info.fragments = {
      {"exclusion", "when not eating[left] and not eating[right] do eating[i] := true"},
  };
  info.notes = "Both forks taken in one atomic condition: deadlock-free without "
               "ordering or a butler.";
  return info;
}

}  // namespace syneval
