// Registry of every solution in the matrix, with its metadata. The core evaluation
// engine iterates this to build the expressive-power and constraint-independence tables.

#ifndef SYNEVAL_SOLUTIONS_REGISTRY_H_
#define SYNEVAL_SOLUTIONS_REGISTRY_H_

#include <optional>
#include <string>
#include <vector>

#include "syneval/solutions/solution_info.h"

namespace syneval {

// Metadata for all implemented solutions (mechanism x problem matrix).
const std::vector<SolutionInfo>& AllSolutionInfos();

// Finds the solution info for (mechanism, problem); nullopt when that cell of the
// matrix is not implementable with the mechanism (itself an evaluation datum).
std::optional<SolutionInfo> FindSolution(Mechanism mechanism, const std::string& problem);

// All distinct problem ids appearing in the registry, in canonical order.
std::vector<std::string> RegistryProblems();

}  // namespace syneval

#endif  // SYNEVAL_SOLUTIONS_REGISTRY_H_
