// Dining-philosophers solutions (Dijkstra, "Cooperating Sequential Processes" — the
// paper's reference [9]) under every mechanism.
//
// The problem's evaluation value is twofold: it is the classic *deadlock* example (the
// naive fork protocol deadlocks, which the deterministic runtime exhibits on demand),
// and its exclusion constraint is relational (between *neighbours*), exercising
// request-type information in a way the two-party problems do not.
//
// The path-expression solution is a small showpiece: with one path per fork,
//   path 1:(eat_i , eat_{i+1}) end        (indices mod N)
// each Eat names two paths, and the controller fires all of an operation's prologues
// atomically — so the hold-and-wait condition never arises and the solution is
// deadlock-free *by construction*, with no ordering trick and no butler.

#ifndef SYNEVAL_SOLUTIONS_DINING_SOLUTIONS_H_
#define SYNEVAL_SOLUTIONS_DINING_SOLUTIONS_H_

#include <memory>
#include <string>
#include <vector>

#include "syneval/monitor/hoare_monitor.h"
#include "syneval/pathexpr/controller.h"
#include "syneval/problems/interfaces.h"
#include "syneval/serializer/serializer.h"
#include "syneval/solutions/solution_info.h"
#include "syneval/sync/semaphore.h"

namespace syneval {

// The textbook-broken protocol: grab the left fork, then the right. Deadlocks when
// every philosopher holds their left fork. Kept deliberately: the conformance suite
// *expects* the deterministic runtime to find the deadlock.
class SemaphoreDiningNaive : public DiningTableIface {
 public:
  SemaphoreDiningNaive(Runtime& runtime, int seats);

  void Eat(int philosopher, const AccessBody& body, OpScope* scope) override;
  int seats() const override { return seats_; }

  static SolutionInfo Info();

 private:
  int seats_;
  std::vector<std::unique_ptr<BinarySemaphore>> forks_;
};

// Deadlock-free via a total order on forks: always acquire the lower-numbered first.
class SemaphoreDiningOrdered : public DiningTableIface {
 public:
  SemaphoreDiningOrdered(Runtime& runtime, int seats);

  void Eat(int philosopher, const AccessBody& body, OpScope* scope) override;
  int seats() const override { return seats_; }

  static SolutionInfo Info();

 private:
  int seats_;
  std::vector<std::unique_ptr<BinarySemaphore>> forks_;
};

// Deadlock-free via Dijkstra's butler: at most seats-1 philosophers at the table.
class SemaphoreDiningButler : public DiningTableIface {
 public:
  SemaphoreDiningButler(Runtime& runtime, int seats);

  void Eat(int philosopher, const AccessBody& body, OpScope* scope) override;
  int seats() const override { return seats_; }

  static SolutionInfo Info();

 private:
  int seats_;
  CountingSemaphore butler_;
  std::vector<std::unique_ptr<BinarySemaphore>> forks_;
};

// Dijkstra's state-based solution in monitor form: hungry/eating states, a private
// condition per seat, and a Test procedure run by every releaser for its neighbours.
class MonitorDining : public DiningTableIface {
 public:
  MonitorDining(Runtime& runtime, int seats);

  void Eat(int philosopher, const AccessBody& body, OpScope* scope) override;
  int seats() const override { return seats_; }

  static SolutionInfo Info();

 private:
  enum class State { kThinking, kHungry, kEating };

  int Left(int seat) const { return (seat + seats_ - 1) % seats_; }
  int Right(int seat) const { return (seat + 1) % seats_; }
  void TestLocked(int seat);

  int seats_;
  HoareMonitor monitor_;
  std::vector<State> states_;
  std::vector<std::unique_ptr<HoareMonitor::Condition>> self_;
};

// Serializer: one FIFO queue; a philosopher's guard is "neither neighbour is eating",
// with the eating flags flipped under the serializer lock by the crowd hooks.
class SerializerDining : public DiningTableIface {
 public:
  SerializerDining(Runtime& runtime, int seats);

  void Eat(int philosopher, const AccessBody& body, OpScope* scope) override;
  int seats() const override { return seats_; }

  static SolutionInfo Info();

 private:
  int seats_;
  Serializer serializer_;
  Serializer::Queue hungry_{serializer_, "hungry"};
  Serializer::Crowd eating_crowd_{serializer_, "eating"};
  std::vector<bool> eating_;
};

// One path per fork; atomic multi-path prologues make hold-and-wait impossible.
class PathDining : public DiningTableIface {
 public:
  PathDining(Runtime& runtime, int seats);

  void Eat(int philosopher, const AccessBody& body, OpScope* scope) override;
  int seats() const override { return seats_; }

  static SolutionInfo Info();
  static std::string Program(int seats);

 private:
  int seats_;
  PathController controller_;
};

}  // namespace syneval

#endif  // SYNEVAL_SOLUTIONS_DINING_SOLUTIONS_H_
