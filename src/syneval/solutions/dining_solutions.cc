#include "syneval/solutions/dining_solutions.h"

#include <algorithm>
#include <sstream>

namespace syneval {

namespace {

std::string EatOp(int seat) { return "eat" + std::to_string(seat); }

}  // namespace

// ---------------------------------------------------------------------------------------
// Naive semaphores (deadlocks).

SemaphoreDiningNaive::SemaphoreDiningNaive(Runtime& runtime, int seats) : seats_(seats) {
  for (int i = 0; i < seats; ++i) {
    forks_.push_back(std::make_unique<BinarySemaphore>(runtime, true));
  }
}

void SemaphoreDiningNaive::Eat(int philosopher, const AccessBody& body, OpScope* scope) {
  if (scope != nullptr) {
    scope->Arrived();
  }
  BinarySemaphore& left = *forks_[static_cast<std::size_t>(philosopher)];
  BinarySemaphore& right = *forks_[static_cast<std::size_t>((philosopher + 1) % seats_)];
  left.P();
  right.P([scope] {
    if (scope != nullptr) {
      scope->Entered();
    }
  });
  body();
  right.V([scope] {
    if (scope != nullptr) {
      scope->Exited();
    }
  });
  left.V();
}

SolutionInfo SemaphoreDiningNaive::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSemaphore;
  info.problem = "dining-philosophers";
  info.display_name = "Naive forks (left then right) — deadlocks";
  info.fragments = {
      {"exclusion", "P(left); P(right); eat; V(right); V(left)"},
  };
  info.notes = "Hold-and-wait on a cycle: every schedule where all grab left deadlocks.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Ordered forks.

SemaphoreDiningOrdered::SemaphoreDiningOrdered(Runtime& runtime, int seats)
    : seats_(seats) {
  for (int i = 0; i < seats; ++i) {
    forks_.push_back(std::make_unique<BinarySemaphore>(runtime, true));
  }
}

void SemaphoreDiningOrdered::Eat(int philosopher, const AccessBody& body, OpScope* scope) {
  if (scope != nullptr) {
    scope->Arrived();
  }
  const int a = philosopher;
  const int b = (philosopher + 1) % seats_;
  BinarySemaphore& first = *forks_[static_cast<std::size_t>(std::min(a, b))];
  BinarySemaphore& second = *forks_[static_cast<std::size_t>(std::max(a, b))];
  first.P();
  second.P([scope] {
    if (scope != nullptr) {
      scope->Entered();
    }
  });
  body();
  second.V([scope] {
    if (scope != nullptr) {
      scope->Exited();
    }
  });
  first.V();
}

SolutionInfo SemaphoreDiningOrdered::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSemaphore;
  info.problem = "dining-philosophers";
  info.display_name = "Ordered forks (lowest index first)";
  info.fragments = {
      {"exclusion", "P(min fork); P(max fork); eat; V(max); V(min) — total order breaks "
                    "the cycle"},
  };
  return info;
}

// ---------------------------------------------------------------------------------------
// Butler.

SemaphoreDiningButler::SemaphoreDiningButler(Runtime& runtime, int seats)
    : seats_(seats), butler_(runtime, seats - 1) {
  for (int i = 0; i < seats; ++i) {
    forks_.push_back(std::make_unique<BinarySemaphore>(runtime, true));
  }
}

void SemaphoreDiningButler::Eat(int philosopher, const AccessBody& body, OpScope* scope) {
  if (scope != nullptr) {
    scope->Arrived();
  }
  butler_.P();
  BinarySemaphore& left = *forks_[static_cast<std::size_t>(philosopher)];
  BinarySemaphore& right = *forks_[static_cast<std::size_t>((philosopher + 1) % seats_)];
  left.P();
  right.P([scope] {
    if (scope != nullptr) {
      scope->Entered();
    }
  });
  body();
  right.V([scope] {
    if (scope != nullptr) {
      scope->Exited();
    }
  });
  left.V();
  butler_.V();
}

SolutionInfo SemaphoreDiningButler::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSemaphore;
  info.problem = "dining-philosophers";
  info.display_name = "Dijkstra's butler (at most N-1 seated)";
  info.fragments = {
      {"exclusion", "P(butler := N-1); P(left); P(right); eat; V(right); V(left); "
                    "V(butler)"},
  };
  return info;
}

// ---------------------------------------------------------------------------------------
// Monitor (Dijkstra's state-based test).

MonitorDining::MonitorDining(Runtime& runtime, int seats)
    : seats_(seats), monitor_(runtime), states_(static_cast<std::size_t>(seats),
                                                State::kThinking) {
  for (int i = 0; i < seats; ++i) {
    self_.push_back(std::make_unique<HoareMonitor::Condition>(monitor_));
  }
}

void MonitorDining::TestLocked(int seat) {
  if (states_[static_cast<std::size_t>(seat)] == State::kHungry &&
      states_[static_cast<std::size_t>(Left(seat))] != State::kEating &&
      states_[static_cast<std::size_t>(Right(seat))] != State::kEating) {
    states_[static_cast<std::size_t>(seat)] = State::kEating;
    self_[static_cast<std::size_t>(seat)]->Signal();
  }
}

void MonitorDining::Eat(int philosopher, const AccessBody& body, OpScope* scope) {
  {
    MonitorRegion region(monitor_);
    if (scope != nullptr) {
      scope->Arrived();
    }
    states_[static_cast<std::size_t>(philosopher)] = State::kHungry;
    TestLocked(philosopher);
    if (states_[static_cast<std::size_t>(philosopher)] != State::kEating) {
      self_[static_cast<std::size_t>(philosopher)]->Wait();
    }
    if (scope != nullptr) {
      scope->Entered();
    }
  }
  body();
  {
    MonitorRegion region(monitor_);
    states_[static_cast<std::size_t>(philosopher)] = State::kThinking;
    if (scope != nullptr) {
      scope->Exited();
    }
    TestLocked(Left(philosopher));
    TestLocked(Right(philosopher));
  }
}

SolutionInfo MonitorDining::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMonitor;
  info.problem = "dining-philosophers";
  info.display_name = "Dijkstra state monitor (test + private conditions)";
  info.shared_variables = 1;  // The state array.
  info.fragments = {
      {"exclusion", "state array thinking/hungry/eating; test(k): eat only while "
                    "neither neighbour eats; releaser tests both neighbours"},
  };
  info.notes = "Deadlock-free, but a single philosopher can be starved by alternating "
               "neighbours.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Serializer.

SerializerDining::SerializerDining(Runtime& runtime, int seats)
    : seats_(seats), serializer_(runtime), eating_(static_cast<std::size_t>(seats), false) {}

void SerializerDining::Eat(int philosopher, const AccessBody& body, OpScope* scope) {
  Serializer::Region region(serializer_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  const auto left = static_cast<std::size_t>((philosopher + seats_ - 1) % seats_);
  const auto right = static_cast<std::size_t>((philosopher + 1) % seats_);
  serializer_.Enqueue(hungry_, [this, left, right] {
    return !eating_[left] && !eating_[right];
  });
  serializer_.JoinCrowd(
      eating_crowd_, body,
      [this, philosopher, scope] {
        eating_[static_cast<std::size_t>(philosopher)] = true;
        if (scope != nullptr) {
          scope->Entered();
        }
      },
      [this, philosopher, scope] {
        eating_[static_cast<std::size_t>(philosopher)] = false;
        if (scope != nullptr) {
          scope->Exited();
        }
      });
}

SolutionInfo SerializerDining::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSerializer;
  info.problem = "dining-philosophers";
  info.display_name = "Serializer (guards over neighbour flags)";
  info.shared_variables = 1;  // The eating flags.
  info.fragments = {
      {"exclusion", "enqueue(hungry, not eating[left] and not eating[right]); eat in "
                    "the eating crowd"},
  };
  info.notes = "One FIFO queue: a blocked head also blocks later eligible "
               "philosophers (head-of-line blocking, the E5 trade-off in reverse).";
  return info;
}

// ---------------------------------------------------------------------------------------
// Path expressions: one path per fork, atomic acquisition.

std::string PathDining::Program(int seats) {
  std::ostringstream os;
  for (int fork = 0; fork < seats; ++fork) {
    // Fork f sits between philosopher f and philosopher (f+1)%seats... each fork is a
    // one-activation selection between its two users.
    os << "path 1:(" << EatOp(fork) << " , " << EatOp((fork + 1) % seats) << ") end ";
  }
  return os.str();
}

PathDining::PathDining(Runtime& runtime, int seats)
    : seats_(seats), controller_(runtime, Program(seats)) {}

void PathDining::Eat(int philosopher, const AccessBody& body, OpScope* scope) {
  PathController::Hooks hooks;
  if (scope != nullptr) {
    hooks.on_arrive = [scope] { scope->Arrived(); };
    hooks.on_admit = [scope] { scope->Entered(); };
    hooks.on_release = [scope] { scope->Exited(); };
  }
  const std::string op = EatOp(philosopher);
  const PathController::Token token = controller_.Begin(op, hooks);
  body();
  controller_.End(op, token, hooks);
}

SolutionInfo PathDining::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kPathExpression;
  info.problem = "dining-philosophers";
  info.display_name = "One path per fork (atomic prologues)";
  info.fragments = {
      {"exclusion", "path 1:(eat_i , eat_i+1) end per fork; eat_i names two paths and "
                    "acquires both atomically"},
  };
  info.notes = "Deadlock-free by construction: the controller fires all prologues of "
               "an operation atomically, so hold-and-wait cannot arise.";
  return info;
}

}  // namespace syneval
