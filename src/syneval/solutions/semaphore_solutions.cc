#include "syneval/solutions/semaphore_solutions.h"

#include <algorithm>

namespace syneval {

// ---------------------------------------------------------------------------------------
// Bounded buffer: the classic empty/full counting pair plus per-side mutexes.

SemaphoreBoundedBuffer::SemaphoreBoundedBuffer(Runtime& runtime, int capacity)
    : empty_(runtime, capacity),
      full_(runtime, 0),
      deposit_mutex_(runtime, 1),
      remove_mutex_(runtime, 1),
      ring_(static_cast<std::size_t>(capacity), 0),
      capacity_(capacity) {}

void SemaphoreBoundedBuffer::Deposit(std::int64_t item, OpScope* scope) {
  if (scope != nullptr) {
    scope->Arrived();
  }
  empty_.P();
  deposit_mutex_.P([scope] {
    if (scope != nullptr) {
      scope->Entered();
    }
  });
  ring_[static_cast<std::size_t>(in_)] = item;
  in_ = (in_ + 1) % capacity_;
  if (scope != nullptr) {
    scope->Exited();
  }
  deposit_mutex_.V();
  full_.V();
}

std::int64_t SemaphoreBoundedBuffer::Remove(OpScope* scope) {
  if (scope != nullptr) {
    scope->Arrived();
  }
  full_.P();
  remove_mutex_.P([scope] {
    if (scope != nullptr) {
      scope->Entered();
    }
  });
  const std::int64_t item = ring_[static_cast<std::size_t>(out_)];
  out_ = (out_ + 1) % capacity_;
  if (scope != nullptr) {
    scope->Exited(item);
  }
  remove_mutex_.V();
  empty_.V();
  return item;
}

SolutionInfo SemaphoreBoundedBuffer::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSemaphore;
  info.problem = "bounded-buffer";
  info.display_name = "Dijkstra bounded buffer (empty/full semaphores)";
  info.shared_variables = 2;  // in, out.
  info.fragments = {
      {"exclusion", "P(deposit_mutex) ... V(deposit_mutex); P(remove_mutex) ... "
                    "V(remove_mutex)"},
      {"local-state", "semaphores empty := N and full := 0 encode the occupancy count"},
  };
  return info;
}

// ---------------------------------------------------------------------------------------
// One-slot buffer.

SemaphoreOneSlotBuffer::SemaphoreOneSlotBuffer(Runtime& runtime)
    : empty_(runtime, 1), full_(runtime, 0) {}

void SemaphoreOneSlotBuffer::Deposit(std::int64_t item, OpScope* scope) {
  if (scope != nullptr) {
    scope->Arrived();
  }
  empty_.P([scope] {
    if (scope != nullptr) {
      scope->Entered();
    }
  });
  slot_ = item;
  if (scope != nullptr) {
    scope->Exited();
  }
  full_.V();
}

std::int64_t SemaphoreOneSlotBuffer::Remove(OpScope* scope) {
  if (scope != nullptr) {
    scope->Arrived();
  }
  full_.P([scope] {
    if (scope != nullptr) {
      scope->Entered();
    }
  });
  const std::int64_t item = slot_;
  if (scope != nullptr) {
    scope->Exited(item);
  }
  empty_.V();
  return item;
}

SolutionInfo SemaphoreOneSlotBuffer::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSemaphore;
  info.problem = "one-slot-buffer";
  info.display_name = "One-slot buffer (empty/full pair)";
  info.fragments = {
      {"exclusion", "alternation of P(empty)/V(full) and P(full)/V(empty) serializes"},
      {"history", "semaphores empty := 1, full := 0 encode whether a deposit happened"},
  };
  return info;
}

// ---------------------------------------------------------------------------------------
// CHP algorithm 1: readers priority.

SemaphoreRwReadersPriority::SemaphoreRwReadersPriority(Runtime& runtime)
    : mutex_(runtime, 1), w_(runtime, 1) {}

void SemaphoreRwReadersPriority::Read(const AccessBody& body, OpScope* scope) {
  mutex_.P([scope] {
    if (scope != nullptr) {
      scope->Arrived();
    }
  });
  ++readers_;
  if (readers_ == 1) {
    w_.P();  // First reader locks writers out — deliberately while holding mutex_.
  }
  if (scope != nullptr) {
    scope->Entered();
  }
  mutex_.V();
  body();
  mutex_.P();
  --readers_;
  if (scope != nullptr) {
    scope->Exited();
  }
  if (readers_ == 0) {
    w_.V();
  }
  mutex_.V();
}

void SemaphoreRwReadersPriority::Write(const AccessBody& body, OpScope* scope) {
  if (scope != nullptr) {
    scope->Arrived();
  }
  w_.P([scope] {
    if (scope != nullptr) {
      scope->Entered();
    }
  });
  body();
  w_.V([scope] {
    if (scope != nullptr) {
      scope->Exited();
    }
  });
}

SolutionInfo SemaphoreRwReadersPriority::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSemaphore;
  info.problem = "rw-readers-priority";
  info.display_name = "CHP algorithm 1";
  info.shared_variables = 1;  // readcount.
  info.fragments = {
      {"exclusion", "first reader P(w), last reader V(w); writer brackets with P(w)/V(w)"},
      {"priority", "readers never touch w while readcount > 0, so arriving readers pass "
                   "a waiting writer"},
  };
  info.notes = "Priority is a side effect of the counting protocol, not stated anywhere.";
  return info;
}

// ---------------------------------------------------------------------------------------
// CHP algorithm 2: writers priority.

SemaphoreRwWritersPriority::SemaphoreRwWritersPriority(Runtime& runtime)
    : mutex1_(runtime, 1),
      mutex2_(runtime, 1),
      mutex3_(runtime, 1),
      w_(runtime, 1),
      r_(runtime, 1) {}

void SemaphoreRwWritersPriority::Read(const AccessBody& body, OpScope* scope) {
  mutex3_.P([scope] {
    if (scope != nullptr) {
      scope->Arrived();
    }
  });
  r_.P();
  mutex1_.P();
  ++readers_;
  if (readers_ == 1) {
    w_.P();
  }
  if (scope != nullptr) {
    scope->Entered();
  }
  mutex1_.V();
  r_.V();
  mutex3_.V();
  body();
  mutex1_.P();
  --readers_;
  if (scope != nullptr) {
    scope->Exited();
  }
  if (readers_ == 0) {
    w_.V();
  }
  mutex1_.V();
}

void SemaphoreRwWritersPriority::Write(const AccessBody& body, OpScope* scope) {
  mutex2_.P([scope] {
    if (scope != nullptr) {
      scope->Arrived();
    }
  });
  ++writers_;
  if (writers_ == 1) {
    r_.P();  // First writer bars new readers.
  }
  mutex2_.V();
  w_.P([scope] {
    if (scope != nullptr) {
      scope->Entered();
    }
  });
  body();
  w_.V([scope] {
    if (scope != nullptr) {
      scope->Exited();
    }
  });
  mutex2_.P();
  --writers_;
  if (writers_ == 0) {
    r_.V();
  }
  mutex2_.V();
}

SolutionInfo SemaphoreRwWritersPriority::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSemaphore;
  info.problem = "rw-writers-priority";
  info.display_name = "CHP algorithm 2 (five semaphores)";
  info.shared_variables = 2;  // readcount, writecount.
  info.fragments = {
      {"exclusion", "first reader P(w), last reader V(w); writer brackets with P(w)/V(w)"},
      {"priority", "first writer P(r), last writer V(r); readers bracket their entry "
                   "with P(r)/V(r) behind an extra mutex3 turnstile"},
  };
  info.notes = "Three extra semaphores and a counter, all for one priority change.";
  return info;
}

// ---------------------------------------------------------------------------------------
// FCFS resource.

SemaphoreFcfsResource::SemaphoreFcfsResource(Runtime& runtime) : fifo_(runtime, 1) {}

void SemaphoreFcfsResource::Access(const AccessBody& body, OpScope* scope) {
  fifo_.P(
      [scope] {
        if (scope != nullptr) {
          scope->Arrived();
        }
      },
      [scope] {
        if (scope != nullptr) {
          scope->Entered();
        }
      });
  body();
  fifo_.V([scope] {
    if (scope != nullptr) {
      scope->Exited();
    }
  });
}

SolutionInfo SemaphoreFcfsResource::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSemaphore;
  info.problem = "fcfs-resource";
  info.display_name = "FCFS resource (strong semaphore)";
  info.fragments = {
      {"exclusion", "P(fifo) ... V(fifo) with fifo := 1"},
      {"priority", "depends entirely on the semaphore being strong (FIFO grant order); "
                   "weak P/V cannot express request time"},
  };
  return info;
}

// ---------------------------------------------------------------------------------------
// SCAN disk scheduler via private semaphores.

struct SemaphoreDiskScheduler::Waiting {
  std::int64_t track;
  BinarySemaphore sem;
  OpScope* scope;

  Waiting(Runtime& runtime, std::int64_t track_in, OpScope* scope_in)
      : track(track_in), sem(runtime, false), scope(scope_in) {}
};

SemaphoreDiskScheduler::SemaphoreDiskScheduler(Runtime& runtime, std::int64_t initial_head)
    : runtime_(runtime), mutex_(runtime, 1), head_(initial_head) {}

void SemaphoreDiskScheduler::Access(std::int64_t track, const AccessBody& body,
                                    OpScope* scope) {
  mutex_.P();
  if (scope != nullptr) {
    scope->Arrived();
  }
  if (!busy_) {
    busy_ = true;
    head_ = track;
    if (scope != nullptr) {
      scope->Entered();
    }
    mutex_.V();
  } else {
    Waiting self(runtime_, track, scope);
    if (track > head_ || (track == head_ && moving_up_)) {
      auto pos = std::find_if(up_.begin(), up_.end(),
                              [&](const Waiting* w) { return w->track > track; });
      up_.insert(pos, &self);
    } else {
      auto pos = std::find_if(down_.begin(), down_.end(),
                              [&](const Waiting* w) { return w->track < track; });
      down_.insert(pos, &self);
    }
    mutex_.V();
    self.sem.P();  // Entered is recorded by the releaser, under mutex_.
  }
  body();
  mutex_.P();
  if (scope != nullptr) {
    scope->Exited();
  }
  Waiting* next = nullptr;
  if (moving_up_) {
    if (!up_.empty()) {
      next = up_.front();
      up_.erase(up_.begin());
    } else if (!down_.empty()) {
      moving_up_ = false;
      next = down_.front();
      down_.erase(down_.begin());
    }
  } else {
    if (!down_.empty()) {
      next = down_.front();
      down_.erase(down_.begin());
    } else if (!up_.empty()) {
      moving_up_ = true;
      next = up_.front();
      up_.erase(up_.begin());
    }
  }
  if (next != nullptr) {
    head_ = next->track;
    if (next->scope != nullptr) {
      next->scope->Entered();
    }
    next->sem.V();
  } else {
    busy_ = false;
  }
  mutex_.V();
}

SolutionInfo SemaphoreDiskScheduler::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSemaphore;
  info.problem = "disk-scan";
  info.display_name = "SCAN via private semaphores";
  info.shared_variables = 5;  // up list, down list, head, direction, busy.
  info.fragments = {
      {"exclusion", "busy flag under a mutex semaphore; blocked requests hold a private "
                    "semaphore each"},
      {"priority", "releaser scans hand-sorted sweep lists and V's the chosen request's "
                   "private semaphore"},
  };
  info.notes = "The programmer implements the entire scheduler by hand.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Alarm clock via private semaphores.

struct SemaphoreAlarmClock::Sleeper {
  std::int64_t due;
  BinarySemaphore sem;
  OpScope* scope;

  Sleeper(Runtime& runtime, std::int64_t due_in, OpScope* scope_in)
      : due(due_in), sem(runtime, false), scope(scope_in) {}
};

SemaphoreAlarmClock::SemaphoreAlarmClock(Runtime& runtime)
    : runtime_(runtime), mutex_(runtime, 1) {}

void SemaphoreAlarmClock::Tick() {
  mutex_.P();
  ++now_;
  while (!sleepers_.empty() && sleepers_.front()->due <= now_) {
    Sleeper* due = sleepers_.front();
    sleepers_.erase(sleepers_.begin());
    if (due->scope != nullptr) {
      due->scope->Exited(now_);  // Recorded under mutex_, at the logical wake instant.
    }
    due->sem.V();
  }
  mutex_.V();
}

void SemaphoreAlarmClock::WakeMe(std::int64_t ticks, OpScope* scope) {
  mutex_.P();
  if (scope != nullptr) {
    scope->Arrived();
  }
  const std::int64_t due = now_ + ticks;
  if (scope != nullptr) {
    scope->Entered(due);
  }
  Sleeper self(runtime_, due, scope);
  auto pos = std::find_if(sleepers_.begin(), sleepers_.end(),
                          [&](const Sleeper* s) { return s->due > due; });
  sleepers_.insert(pos, &self);
  mutex_.V();
  self.sem.P();
}

std::int64_t SemaphoreAlarmClock::Now() const {
  mutex_.P();
  const std::int64_t result = now_;
  mutex_.V();
  return result;
}

SolutionInfo SemaphoreAlarmClock::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSemaphore;
  info.problem = "alarm-clock";
  info.display_name = "Alarm clock via private semaphores";
  info.shared_variables = 2;  // now, sleeper list.
  info.fragments = {
      {"priority", "hand-sorted due list; the ticker V's each due sleeper's private "
                   "semaphore"},
  };
  return info;
}

// ---------------------------------------------------------------------------------------
// Shortest-job-next via private semaphores.

struct SemaphoreSjnAllocator::Job {
  std::int64_t estimate;
  BinarySemaphore sem;
  OpScope* scope;

  Job(Runtime& runtime, std::int64_t estimate_in, OpScope* scope_in)
      : estimate(estimate_in), sem(runtime, false), scope(scope_in) {}
};

SemaphoreSjnAllocator::SemaphoreSjnAllocator(Runtime& runtime)
    : runtime_(runtime), mutex_(runtime, 1) {}

void SemaphoreSjnAllocator::Use(std::int64_t estimate, const AccessBody& body,
                                OpScope* scope) {
  mutex_.P();
  if (scope != nullptr) {
    scope->Arrived();
  }
  if (!busy_) {
    busy_ = true;
    if (scope != nullptr) {
      scope->Entered();
    }
    mutex_.V();
  } else {
    Job self(runtime_, estimate, scope);
    auto pos = std::find_if(queue_.begin(), queue_.end(),
                            [&](const Job* j) { return j->estimate > estimate; });
    queue_.insert(pos, &self);
    mutex_.V();
    self.sem.P();
  }
  body();
  mutex_.P();
  if (scope != nullptr) {
    scope->Exited();
  }
  if (!queue_.empty()) {
    Job* next = queue_.front();
    queue_.erase(queue_.begin());
    if (next->scope != nullptr) {
      next->scope->Entered();
    }
    next->sem.V();
  } else {
    busy_ = false;
  }
  mutex_.V();
}

SolutionInfo SemaphoreSjnAllocator::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSemaphore;
  info.problem = "sjn-allocator";
  info.display_name = "SJN via private semaphores";
  info.shared_variables = 2;  // queue, busy.
  info.fragments = {
      {"exclusion", "busy flag under a mutex semaphore"},
      {"priority", "hand-sorted estimate list; releaser V's the minimum's private "
                   "semaphore"},
  };
  return info;
}

}  // namespace syneval
