#include "syneval/solutions/serializer_solutions.h"

namespace syneval {

namespace {

// Shared hook adapters: record the admission/release instants under the serializer lock.
std::function<void()> EnterHook(OpScope* scope) {
  if (scope == nullptr) {
    return nullptr;
  }
  return [scope] { scope->Entered(); };
}

std::function<void()> ExitHook(OpScope* scope) {
  if (scope == nullptr) {
    return nullptr;
  }
  return [scope] { scope->Exited(); };
}

}  // namespace

// ---------------------------------------------------------------------------------------
// Bounded buffer.

SerializerBoundedBuffer::SerializerBoundedBuffer(Runtime& runtime, int capacity)
    : serializer_(runtime), ring_(static_cast<std::size_t>(capacity), 0), capacity_(capacity) {}

void SerializerBoundedBuffer::Deposit(std::int64_t item, OpScope* scope) {
  Serializer::Region region(serializer_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  serializer_.Enqueue(deposit_q_, [this] { return count_ < capacity_; });
  if (scope != nullptr) {
    scope->Entered();
  }
  ring_[static_cast<std::size_t>(in_)] = item;
  in_ = (in_ + 1) % capacity_;
  ++count_;
  if (scope != nullptr) {
    scope->Exited();
  }
}

std::int64_t SerializerBoundedBuffer::Remove(OpScope* scope) {
  Serializer::Region region(serializer_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  serializer_.Enqueue(remove_q_, [this] { return count_ > 0; });
  if (scope != nullptr) {
    scope->Entered();
  }
  const std::int64_t item = ring_[static_cast<std::size_t>(out_)];
  out_ = (out_ + 1) % capacity_;
  --count_;
  if (scope != nullptr) {
    scope->Exited(item);
  }
  return item;
}

SolutionInfo SerializerBoundedBuffer::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSerializer;
  info.problem = "bounded-buffer";
  info.display_name = "Serializer bounded buffer";
  info.shared_variables = 3;  // count, in, out.
  info.fragments = {
      {"exclusion", "buffer mutations run in possession, so deposits/removes exclude"},
      {"local-state", "enqueue(depositq, count < capacity); enqueue(removeq, count > 0)"},
  };
  info.notes = "Guards state the local-state conditions directly; no signalling code.";
  return info;
}

// ---------------------------------------------------------------------------------------
// One-slot buffer.

SerializerOneSlotBuffer::SerializerOneSlotBuffer(Runtime& runtime) : serializer_(runtime) {}

void SerializerOneSlotBuffer::Deposit(std::int64_t item, OpScope* scope) {
  Serializer::Region region(serializer_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  serializer_.Enqueue(deposit_q_, [this] { return !has_item_; });
  if (scope != nullptr) {
    scope->Entered();
  }
  slot_ = item;
  has_item_ = true;
  if (scope != nullptr) {
    scope->Exited();
  }
}

std::int64_t SerializerOneSlotBuffer::Remove(OpScope* scope) {
  Serializer::Region region(serializer_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  serializer_.Enqueue(remove_q_, [this] { return has_item_; });
  if (scope != nullptr) {
    scope->Entered();
  }
  const std::int64_t item = slot_;
  has_item_ = false;
  if (scope != nullptr) {
    scope->Exited(item);
  }
  return item;
}

SolutionInfo SerializerOneSlotBuffer::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSerializer;
  info.problem = "one-slot-buffer";
  info.display_name = "Serializer one-slot buffer";
  info.shared_variables = 1;  // has_item.
  info.fragments = {
      {"exclusion", "slot mutations run in possession"},
      {"history", "enqueue(depositq, not has_item); enqueue(removeq, has_item)"},
  };
  info.notes = "History must be re-encoded as a flag, as in monitors.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Readers/writers: readers priority.

SerializerRwReadersPriority::SerializerRwReadersPriority(Runtime& runtime)
    : serializer_(runtime) {}

void SerializerRwReadersPriority::Read(const AccessBody& body, OpScope* scope) {
  Serializer::Region region(serializer_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  serializer_.Enqueue(read_q_, [this] { return write_crowd_.Empty(); });
  serializer_.JoinCrowd(read_crowd_, body, EnterHook(scope), ExitHook(scope));
}

void SerializerRwReadersPriority::Write(const AccessBody& body, OpScope* scope) {
  Serializer::Region region(serializer_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  serializer_.Enqueue(write_q_,
                      [this] { return read_crowd_.Empty() && write_crowd_.Empty(); });
  serializer_.JoinCrowd(write_crowd_, body, EnterHook(scope), ExitHook(scope));
}

SolutionInfo SerializerRwReadersPriority::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSerializer;
  info.problem = "rw-readers-priority";
  info.display_name = "Readers-priority serializer (A&H)";
  info.shared_variables = 0;  // Crowds replace the hand-kept counts.
  info.fragments = {
      {"exclusion", "enqueue(readq, write_crowd empty); "
                    "enqueue(writeq, read_crowd empty and write_crowd empty); "
                    "bodies run in read_crowd / write_crowd"},
      {"priority", "readq declared before writeq: readers examined first at each release"},
  };
  info.notes = "Crowds carry the synchronization state; no counts, no signals.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Readers/writers: writers priority.

SerializerRwWritersPriority::SerializerRwWritersPriority(Runtime& runtime)
    : serializer_(runtime) {}

void SerializerRwWritersPriority::Read(const AccessBody& body, OpScope* scope) {
  Serializer::Region region(serializer_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  serializer_.Enqueue(read_q_,
                      [this] { return write_crowd_.Empty() && write_q_.Empty(); });
  serializer_.JoinCrowd(read_crowd_, body, EnterHook(scope), ExitHook(scope));
}

void SerializerRwWritersPriority::Write(const AccessBody& body, OpScope* scope) {
  Serializer::Region region(serializer_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  serializer_.Enqueue(write_q_,
                      [this] { return read_crowd_.Empty() && write_crowd_.Empty(); });
  serializer_.JoinCrowd(write_crowd_, body, EnterHook(scope), ExitHook(scope));
}

SolutionInfo SerializerRwWritersPriority::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSerializer;
  info.problem = "rw-writers-priority";
  info.display_name = "Writers-priority serializer";
  info.shared_variables = 0;
  info.fragments = {
      {"exclusion", "enqueue(readq, write_crowd empty ...); "
                    "enqueue(writeq, read_crowd empty and write_crowd empty); "
                    "bodies run in read_crowd / write_crowd"},
      {"priority", "writeq declared before readq; reader guard also requires writeq "
                   "empty"},
  };
  info.notes = "Changing the policy touched only queue order and one guard conjunct.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Readers/writers: FCFS (one queue, two guards).

SerializerRwFcfs::SerializerRwFcfs(Runtime& runtime) : serializer_(runtime) {}

void SerializerRwFcfs::Read(const AccessBody& body, OpScope* scope) {
  Serializer::Region region(serializer_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  serializer_.Enqueue(q_, [this] { return write_crowd_.Empty(); });
  serializer_.JoinCrowd(read_crowd_, body, EnterHook(scope), ExitHook(scope));
}

void SerializerRwFcfs::Write(const AccessBody& body, OpScope* scope) {
  Serializer::Region region(serializer_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  serializer_.Enqueue(q_, [this] { return read_crowd_.Empty() && write_crowd_.Empty(); });
  serializer_.JoinCrowd(write_crowd_, body, EnterHook(scope), ExitHook(scope));
}

SolutionInfo SerializerRwFcfs::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSerializer;
  info.problem = "rw-fcfs";
  info.display_name = "FCFS serializer (single queue, per-type guards)";
  info.shared_variables = 0;
  info.fragments = {
      {"exclusion", "reader guard: write_crowd empty; writer guard: both crowds empty; "
                    "bodies run in read_crowd / write_crowd"},
      {"priority", "one shared FIFO queue: admission order is arrival order by "
                   "construction"},
  };
  info.notes = "The type/time conflict of monitors dissolves: same queue, different "
               "guards (Section 5.2).";
  return info;
}

// ---------------------------------------------------------------------------------------
// FCFS resource.

SerializerFcfsResource::SerializerFcfsResource(Runtime& runtime) : serializer_(runtime) {}

void SerializerFcfsResource::Access(const AccessBody& body, OpScope* scope) {
  Serializer::Region region(serializer_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  serializer_.Enqueue(q_, [this] { return crowd_.Empty(); });
  serializer_.JoinCrowd(crowd_, body, EnterHook(scope), ExitHook(scope));
}

SolutionInfo SerializerFcfsResource::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSerializer;
  info.problem = "fcfs-resource";
  info.display_name = "FCFS resource serializer";
  info.shared_variables = 0;
  info.fragments = {
      {"exclusion", "enqueue(q, crowd empty); body runs in the crowd"},
      {"priority", "FIFO queue: admission order is arrival order"},
  };
  return info;
}

// ---------------------------------------------------------------------------------------
// Disk-head scheduler (priority-queue extension).

SerializerDiskScheduler::SerializerDiskScheduler(Runtime& runtime, std::int64_t initial_head)
    : serializer_(runtime), head_(initial_head) {}

void SerializerDiskScheduler::Access(std::int64_t track, const AccessBody& body,
                                     OpScope* scope) {
  Serializer::Region region(serializer_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  // Join the sweep that will pass this track. Guards keep the two queues mutually
  // consistent with the current direction: the up head may go only while moving up or
  // when the down sweep is exhausted (and symmetrically).
  //
  // An admission into an idle disk (no holder, no waiters) is not a scheduling
  // decision, so it must not turn the sweep around — only exhausting the current
  // sweep does. (Flipping here made the serializer disagree with the SCAN oracle and
  // the monitor solution; the divergence was caught by CheckScanDiskSchedule.)
  const bool idle = crowd_.Empty() && up_q_.Empty() && down_q_.Empty();
  const bool join_up = track > head_ || (track == head_ && moving_up_);
  if (join_up) {
    serializer_.Enqueue(up_q_, track, [this] {
      return crowd_.Empty() && (moving_up_ || down_q_.Empty());
    });
    if (!idle) {
      moving_up_ = true;
    }
  } else {
    serializer_.Enqueue(down_q_, -track, [this] {
      return crowd_.Empty() && (!moving_up_ || up_q_.Empty());
    });
    if (!idle) {
      moving_up_ = false;
    }
  }
  head_ = track;
  serializer_.JoinCrowd(crowd_, body, EnterHook(scope), ExitHook(scope));
}

SolutionInfo SerializerDiskScheduler::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSerializer;
  info.problem = "disk-scan";
  info.display_name = "SCAN serializer (priority-queue extension)";
  info.shared_variables = 2;  // head, direction.
  info.fragments = {
      {"exclusion", "guards require the holder crowd empty; body runs in the crowd"},
      {"priority", "priority queues upsweep(track)/downsweep(-track); guards flip the "
                   "sweep when the other queue is exhausted"},
  };
  info.notes = "Needs the priority-queue extension the paper notes was added later.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Alarm clock.

SerializerAlarmClock::SerializerAlarmClock(Runtime& runtime) : serializer_(runtime) {}

void SerializerAlarmClock::Tick() {
  Serializer::Region region(serializer_);
  ++now_;
  // Automatic signalling at region exit wakes every due sleeper in due order.
}

void SerializerAlarmClock::WakeMe(std::int64_t ticks, OpScope* scope) {
  Serializer::Region region(serializer_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  const std::int64_t due = now_ + ticks;
  if (scope != nullptr) {
    scope->Entered(due);
  }
  serializer_.Enqueue(wake_q_, due, [this, due] { return now_ >= due; });
  if (scope != nullptr) {
    scope->Exited(now_);
  }
}

std::int64_t SerializerAlarmClock::Now() const {
  Serializer::Region region(serializer_);
  return now_;
}

SolutionInfo SerializerAlarmClock::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSerializer;
  info.problem = "alarm-clock";
  info.display_name = "Serializer alarm clock";
  info.shared_variables = 1;  // now.
  info.fragments = {
      {"priority", "enqueue(wakeups, priority = now + n, guard now >= due); tick just "
                   "increments now — automatic signalling does the rest"},
  };
  return info;
}

// ---------------------------------------------------------------------------------------
// Shortest-job-next allocator.

SerializerSjnAllocator::SerializerSjnAllocator(Runtime& runtime) : serializer_(runtime) {}

void SerializerSjnAllocator::Use(std::int64_t estimate, const AccessBody& body,
                                 OpScope* scope) {
  Serializer::Region region(serializer_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  serializer_.Enqueue(q_, estimate, [this] { return crowd_.Empty(); });
  serializer_.JoinCrowd(crowd_, body, EnterHook(scope), ExitHook(scope));
}

SolutionInfo SerializerSjnAllocator::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kSerializer;
  info.problem = "sjn-allocator";
  info.display_name = "SJN serializer (priority-queue extension)";
  info.shared_variables = 0;
  info.fragments = {
      {"exclusion", "guard: holder crowd empty; body runs in the crowd"},
      {"priority", "priority queue ordered by estimate"},
  };
  return info;
}

}  // namespace syneval
