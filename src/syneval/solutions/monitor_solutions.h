// Monitor solutions to the canonical problem set (Hoare monitors, Section 5.2).
//
// Every class implements a problems/ interface with a HoareMonitor and registers
// SolutionInfo fragments for the metrics engine. Signal discipline is Hoare's: a
// signalled process resumes immediately with its condition guaranteed, which is why the
// wait sites are written as `while` guards that are in fact re-checked at most once.

#ifndef SYNEVAL_SOLUTIONS_MONITOR_SOLUTIONS_H_
#define SYNEVAL_SOLUTIONS_MONITOR_SOLUTIONS_H_

#include <cstdint>
#include <vector>

#include "syneval/monitor/hoare_monitor.h"
#include "syneval/problems/interfaces.h"
#include "syneval/solutions/solution_info.h"

namespace syneval {

// Hoare's cyclic bounded buffer.
class MonitorBoundedBuffer : public BoundedBufferIface {
 public:
  MonitorBoundedBuffer(Runtime& runtime, int capacity);

  void Deposit(std::int64_t item, OpScope* scope) override;
  std::int64_t Remove(OpScope* scope) override;
  int capacity() const override { return capacity_; }

  static SolutionInfo Info();

 private:
  HoareMonitor monitor_;
  HoareMonitor::Condition nonfull_{monitor_};
  HoareMonitor::Condition nonempty_{monitor_};
  std::vector<std::int64_t> ring_;
  int capacity_;
  int count_ = 0;
  int in_ = 0;
  int out_ = 0;
};

// One-slot buffer with strict deposit/remove alternation (history via a flag).
class MonitorOneSlotBuffer : public OneSlotBufferIface {
 public:
  explicit MonitorOneSlotBuffer(Runtime& runtime);

  void Deposit(std::int64_t item, OpScope* scope) override;
  std::int64_t Remove(OpScope* scope) override;

  static SolutionInfo Info();

 private:
  HoareMonitor monitor_;
  HoareMonitor::Condition empty_{monitor_};
  HoareMonitor::Condition full_{monitor_};
  bool has_item_ = false;
  std::int64_t slot_ = 0;
};

// Readers-priority readers/writers (Courtois-Heymans-Parnas problem 1 semantics).
class MonitorRwReadersPriority : public ReadersWritersIface {
 public:
  explicit MonitorRwReadersPriority(Runtime& runtime);

  void Read(const AccessBody& body, OpScope* scope) override;
  void Write(const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  HoareMonitor monitor_;
  HoareMonitor::Condition ok_to_read_{monitor_};
  HoareMonitor::Condition ok_to_write_{monitor_};
  int readers_ = 0;
  bool writing_ = false;
};

// Writers-priority readers/writers: arriving readers defer to any waiting writer
// (uses the condition queue-state construct — synchronization state information).
class MonitorRwWritersPriority : public ReadersWritersIface {
 public:
  explicit MonitorRwWritersPriority(Runtime& runtime);

  void Read(const AccessBody& body, OpScope* scope) override;
  void Write(const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  HoareMonitor monitor_;
  HoareMonitor::Condition ok_to_read_{monitor_};
  HoareMonitor::Condition ok_to_write_{monitor_};
  int readers_ = 0;
  bool writing_ = false;
};

// FCFS readers/writers via two-stage queuing: a ticket dispenser totally orders
// arrivals (stage 1), and admission separates by request type at the head (stage 2).
// This is the "standard solution" Section 5.2 describes for the request-type /
// request-time conflict in monitors.
class MonitorRwFcfs : public ReadersWritersIface {
 public:
  explicit MonitorRwFcfs(Runtime& runtime);

  void Read(const AccessBody& body, OpScope* scope) override;
  void Write(const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  HoareMonitor monitor_;
  // Stage 1: one queue totally ordered by arrival ticket (priority = ticket number);
  // stage 2: the head re-checks its type-specific admissibility.
  HoareMonitor::PriorityCondition turn_{monitor_};
  std::int64_t next_ticket_ = 0;
  int readers_ = 0;
  bool writing_ = false;
};

// Fair (batch-alternating) readers/writers, Hoare's CACM 1974 variant: a waiting writer
// blocks new readers; at a write's end all waiting readers are admitted as a batch.
class MonitorRwFair : public ReadersWritersIface {
 public:
  explicit MonitorRwFair(Runtime& runtime);

  void Read(const AccessBody& body, OpScope* scope) override;
  void Write(const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  HoareMonitor monitor_;
  HoareMonitor::Condition ok_to_read_{monitor_};
  HoareMonitor::Condition ok_to_write_{monitor_};
  int readers_ = 0;
  bool writing_ = false;
};

// FCFS exclusive resource: monitor FIFO entry + FIFO condition.
class MonitorFcfsResource : public FcfsResourceIface {
 public:
  explicit MonitorFcfsResource(Runtime& runtime);

  void Access(const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  HoareMonitor monitor_;
  HoareMonitor::Condition turn_{monitor_};
  bool busy_ = false;
};

// Hoare's disk-head (elevator) scheduler with two priority conditions.
class MonitorDiskScheduler : public DiskSchedulerIface {
 public:
  MonitorDiskScheduler(Runtime& runtime, std::int64_t initial_head = 0);

  void Access(std::int64_t track, const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  HoareMonitor monitor_;
  HoareMonitor::PriorityCondition upsweep_{monitor_};    // Ordered by track.
  HoareMonitor::PriorityCondition downsweep_{monitor_};  // Ordered by -track.
  std::int64_t head_;
  bool moving_up_ = true;
  bool busy_ = false;
};

// Hoare's alarm clock: priority wait on absolute due time; the ticker cascades signals.
class MonitorAlarmClock : public AlarmClockIface {
 public:
  explicit MonitorAlarmClock(Runtime& runtime);

  void Tick() override;
  void WakeMe(std::int64_t ticks, OpScope* scope) override;
  std::int64_t Now() const override;

  static SolutionInfo Info();

 private:
  mutable HoareMonitor monitor_;
  HoareMonitor::PriorityCondition wakeup_{monitor_};  // Ordered by due time.
  std::int64_t now_ = 0;
};

// Shortest-job-next single-resource allocator (Hoare's scheduled-wait example).
class MonitorSjnAllocator : public SjnAllocatorIface {
 public:
  explicit MonitorSjnAllocator(Runtime& runtime);

  void Use(std::int64_t estimate, const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  HoareMonitor monitor_;
  HoareMonitor::PriorityCondition queue_{monitor_};  // Ordered by estimate.
  bool busy_ = false;
};

}  // namespace syneval

#endif  // SYNEVAL_SOLUTIONS_MONITOR_SOLUTIONS_H_
