#include "syneval/solutions/monitor_solutions.h"

namespace syneval {

// ---------------------------------------------------------------------------------------
// Bounded buffer.

MonitorBoundedBuffer::MonitorBoundedBuffer(Runtime& runtime, int capacity)
    : monitor_(runtime), ring_(static_cast<std::size_t>(capacity), 0), capacity_(capacity) {}

void MonitorBoundedBuffer::Deposit(std::int64_t item, OpScope* scope) {
  MonitorRegion region(monitor_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  while (count_ == capacity_) {
    nonfull_.Wait();
  }
  if (scope != nullptr) {
    scope->Entered();
  }
  ring_[static_cast<std::size_t>(in_)] = item;
  in_ = (in_ + 1) % capacity_;
  ++count_;
  if (scope != nullptr) {
    scope->Exited();
  }
  nonempty_.Signal();
}

std::int64_t MonitorBoundedBuffer::Remove(OpScope* scope) {
  MonitorRegion region(monitor_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  while (count_ == 0) {
    nonempty_.Wait();
  }
  if (scope != nullptr) {
    scope->Entered();
  }
  const std::int64_t item = ring_[static_cast<std::size_t>(out_)];
  out_ = (out_ + 1) % capacity_;
  --count_;
  if (scope != nullptr) {
    scope->Exited(item);
  }
  nonfull_.Signal();
  return item;
}

SolutionInfo MonitorBoundedBuffer::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMonitor;
  info.problem = "bounded-buffer";
  info.display_name = "Hoare bounded buffer monitor";
  info.shared_variables = 3;  // count, in, out.
  info.fragments = {
      {"exclusion", "monitor body: deposit/remove mutually exclusive by monitor entry"},
      {"local-state", "while count = capacity do nonfull.wait; while count = 0 do "
                      "nonempty.wait; count maintained by hand"},
  };
  info.notes = "Local state (count) must be duplicated as monitor data.";
  return info;
}

// ---------------------------------------------------------------------------------------
// One-slot buffer.

MonitorOneSlotBuffer::MonitorOneSlotBuffer(Runtime& runtime) : monitor_(runtime) {}

void MonitorOneSlotBuffer::Deposit(std::int64_t item, OpScope* scope) {
  MonitorRegion region(monitor_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  while (has_item_) {
    empty_.Wait();
  }
  if (scope != nullptr) {
    scope->Entered();
  }
  slot_ = item;
  has_item_ = true;
  if (scope != nullptr) {
    scope->Exited();
  }
  full_.Signal();
}

std::int64_t MonitorOneSlotBuffer::Remove(OpScope* scope) {
  MonitorRegion region(monitor_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  while (!has_item_) {
    full_.Wait();
  }
  if (scope != nullptr) {
    scope->Entered();
  }
  const std::int64_t item = slot_;
  has_item_ = false;
  if (scope != nullptr) {
    scope->Exited(item);
  }
  empty_.Signal();
  return item;
}

SolutionInfo MonitorOneSlotBuffer::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMonitor;
  info.problem = "one-slot-buffer";
  info.display_name = "One-slot buffer monitor";
  info.shared_variables = 1;  // has_item.
  info.fragments = {
      {"exclusion", "monitor body: deposit/remove mutually exclusive by monitor entry"},
      {"history", "has_item flag encodes whether a deposit has occurred; "
                  "while has_item do empty.wait; while not has_item do full.wait"},
  };
  info.notes = "History information must be re-encoded as explicit state.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Readers/writers: readers priority.

MonitorRwReadersPriority::MonitorRwReadersPriority(Runtime& runtime) : monitor_(runtime) {}

void MonitorRwReadersPriority::Read(const AccessBody& body, OpScope* scope) {
  {
    MonitorRegion region(monitor_);
    if (scope != nullptr) {
      scope->Arrived();
    }
    while (writing_) {
      ok_to_read_.Wait();
    }
    ++readers_;
    if (scope != nullptr) {
      scope->Entered();
    }
    ok_to_read_.Signal();  // Cascade: admit the whole waiting batch of readers.
  }
  body();
  {
    MonitorRegion region(monitor_);
    --readers_;
    if (scope != nullptr) {
      scope->Exited();
    }
    if (readers_ == 0) {
      ok_to_write_.Signal();
    }
  }
}

void MonitorRwReadersPriority::Write(const AccessBody& body, OpScope* scope) {
  {
    MonitorRegion region(monitor_);
    if (scope != nullptr) {
      scope->Arrived();
    }
    while (writing_ || readers_ > 0) {
      ok_to_write_.Wait();
    }
    writing_ = true;
    if (scope != nullptr) {
      scope->Entered();
    }
  }
  body();
  {
    MonitorRegion region(monitor_);
    writing_ = false;
    if (scope != nullptr) {
      scope->Exited();
    }
    // Priority constraint: waiting readers are preferred at every release.
    if (!ok_to_read_.Empty()) {
      ok_to_read_.Signal();
    } else {
      ok_to_write_.Signal();
    }
  }
}

SolutionInfo MonitorRwReadersPriority::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMonitor;
  info.problem = "rw-readers-priority";
  info.display_name = "Readers-priority monitor (CHP semantics)";
  info.shared_variables = 2;  // readers, writing.
  info.fragments = {
      {"exclusion", "while writing do oktoread.wait; "
                    "while writing or readers > 0 do oktowrite.wait; "
                    "readers count and writing flag maintained by hand"},
      {"priority", "end-write: if not oktoread.empty then oktoread.signal "
                   "else oktowrite.signal; start-read cascades oktoread.signal"},
  };
  info.notes = "Explicit signal forces choosing the wakeup order at every release.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Readers/writers: writers priority.

MonitorRwWritersPriority::MonitorRwWritersPriority(Runtime& runtime) : monitor_(runtime) {}

void MonitorRwWritersPriority::Read(const AccessBody& body, OpScope* scope) {
  {
    MonitorRegion region(monitor_);
    if (scope != nullptr) {
      scope->Arrived();
    }
    // Priority constraint: arriving readers defer to any waiting writer (queue state).
    while (writing_ || !ok_to_write_.Empty()) {
      ok_to_read_.Wait();
    }
    ++readers_;
    if (scope != nullptr) {
      scope->Entered();
    }
    ok_to_read_.Signal();
  }
  body();
  {
    MonitorRegion region(monitor_);
    --readers_;
    if (scope != nullptr) {
      scope->Exited();
    }
    if (readers_ == 0) {
      ok_to_write_.Signal();
    }
  }
}

void MonitorRwWritersPriority::Write(const AccessBody& body, OpScope* scope) {
  {
    MonitorRegion region(monitor_);
    if (scope != nullptr) {
      scope->Arrived();
    }
    while (writing_ || readers_ > 0) {
      ok_to_write_.Wait();
    }
    writing_ = true;
    if (scope != nullptr) {
      scope->Entered();
    }
  }
  body();
  {
    MonitorRegion region(monitor_);
    writing_ = false;
    if (scope != nullptr) {
      scope->Exited();
    }
    // Priority constraint: waiting writers are preferred at every release.
    if (!ok_to_write_.Empty()) {
      ok_to_write_.Signal();
    } else {
      ok_to_read_.Signal();
    }
  }
}

SolutionInfo MonitorRwWritersPriority::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMonitor;
  info.problem = "rw-writers-priority";
  info.display_name = "Writers-priority monitor";
  info.shared_variables = 2;  // readers, writing.
  info.fragments = {
      {"exclusion", "while writing do oktoread.wait; "
                    "while writing or readers > 0 do oktowrite.wait; "
                    "readers count and writing flag maintained by hand"},
      {"priority", "start-read also waits while oktowrite queue not empty; "
                   "end-write: if not oktowrite.empty then oktowrite.signal "
                   "else oktoread.signal"},
  };
  info.notes = "Only the priority fragment changed relative to readers-priority.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Readers/writers: FCFS via two-stage queuing.

MonitorRwFcfs::MonitorRwFcfs(Runtime& runtime) : monitor_(runtime) {}

void MonitorRwFcfs::Read(const AccessBody& body, OpScope* scope) {
  {
    MonitorRegion region(monitor_);
    if (scope != nullptr) {
      scope->Arrived();
    }
    const std::int64_t ticket = next_ticket_++;
    // Stage 1 (request time): wait while anyone earlier is still queued. Stage 2
    // (request type): a reader at the head additionally waits only for writers.
    bool must_wait = writing_ || !turn_.Empty();
    while (must_wait) {
      turn_.Wait(ticket);
      must_wait = writing_;
    }
    ++readers_;
    if (scope != nullptr) {
      scope->Entered();
    }
    turn_.Signal();  // A consecutive reader at the new head may be admissible.
  }
  body();
  {
    MonitorRegion region(monitor_);
    --readers_;
    if (scope != nullptr) {
      scope->Exited();
    }
    if (readers_ == 0) {
      turn_.Signal();
    }
  }
}

void MonitorRwFcfs::Write(const AccessBody& body, OpScope* scope) {
  {
    MonitorRegion region(monitor_);
    if (scope != nullptr) {
      scope->Arrived();
    }
    const std::int64_t ticket = next_ticket_++;
    bool must_wait = writing_ || readers_ > 0 || !turn_.Empty();
    while (must_wait) {
      turn_.Wait(ticket);
      must_wait = writing_ || readers_ > 0;
    }
    writing_ = true;
    if (scope != nullptr) {
      scope->Entered();
    }
  }
  body();
  {
    MonitorRegion region(monitor_);
    writing_ = false;
    if (scope != nullptr) {
      scope->Exited();
    }
    turn_.Signal();
  }
}

SolutionInfo MonitorRwFcfs::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMonitor;
  info.problem = "rw-fcfs";
  info.display_name = "FCFS monitor (two-stage queuing)";
  info.shared_variables = 3;  // next_ticket, readers, writing.
  info.fragments = {
      {"exclusion", "stage 2: reader re-waits while writing; "
                    "writer re-waits while writing or readers > 0; "
                    "readers count and writing flag maintained by hand"},
      {"priority", "stage 1: single queue ordered by arrival ticket; "
                   "only the head is ever admitted, so admissions are FCFS"},
  };
  info.notes =
      "The request-type/request-time conflict of Section 5.2: type needs separate "
      "queues, order needs one queue; resolved by queuing in two stages.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Readers/writers: fair batch alternation (Hoare 1974).

MonitorRwFair::MonitorRwFair(Runtime& runtime) : monitor_(runtime) {}

void MonitorRwFair::Read(const AccessBody& body, OpScope* scope) {
  {
    MonitorRegion region(monitor_);
    if (scope != nullptr) {
      scope->Arrived();
    }
    // Hoare-style `if` wait: a signal at end-write admits the reader batch even though
    // more writers may be queued — that is precisely the fairness decision, so the
    // gate must not be re-checked on resumption.
    if (writing_ || !ok_to_write_.Empty()) {
      ok_to_read_.Wait();
    }
    ++readers_;
    if (scope != nullptr) {
      scope->Entered();
    }
    ok_to_read_.Signal();
  }
  body();
  {
    MonitorRegion region(monitor_);
    --readers_;
    if (scope != nullptr) {
      scope->Exited();
    }
    if (readers_ == 0) {
      ok_to_write_.Signal();
    }
  }
}

void MonitorRwFair::Write(const AccessBody& body, OpScope* scope) {
  {
    MonitorRegion region(monitor_);
    if (scope != nullptr) {
      scope->Arrived();
    }
    if (writing_ || readers_ > 0) {
      ok_to_write_.Wait();
    }
    writing_ = true;
    if (scope != nullptr) {
      scope->Entered();
    }
  }
  body();
  {
    MonitorRegion region(monitor_);
    writing_ = false;
    if (scope != nullptr) {
      scope->Exited();
    }
    // Fairness: at a write's end the waiting readers (a whole batch) go first; a
    // waiting writer blocks the *next* batch from forming, so neither class starves.
    if (!ok_to_read_.Empty()) {
      ok_to_read_.Signal();
    } else {
      ok_to_write_.Signal();
    }
  }
}

SolutionInfo MonitorRwFair::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMonitor;
  info.problem = "rw-fair";
  info.display_name = "Fair (batch alternation) monitor, Hoare 1974";
  info.shared_variables = 2;
  info.fragments = {
      {"exclusion", "while writing do oktoread.wait; "
                    "while writing or readers > 0 do oktowrite.wait; "
                    "readers count and writing flag maintained by hand"},
      {"priority", "start-read defers to waiting writers; end-write admits the waiting "
                   "reader batch first"},
  };
  return info;
}

// ---------------------------------------------------------------------------------------
// FCFS resource.

MonitorFcfsResource::MonitorFcfsResource(Runtime& runtime) : monitor_(runtime) {}

void MonitorFcfsResource::Access(const AccessBody& body, OpScope* scope) {
  {
    MonitorRegion region(monitor_);
    if (scope != nullptr) {
      scope->Arrived();
    }
    while (busy_) {
      turn_.Wait();
    }
    busy_ = true;
    if (scope != nullptr) {
      scope->Entered();
    }
  }
  body();
  {
    MonitorRegion region(monitor_);
    busy_ = false;
    if (scope != nullptr) {
      scope->Exited();
    }
    turn_.Signal();
  }
}

SolutionInfo MonitorFcfsResource::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMonitor;
  info.problem = "fcfs-resource";
  info.display_name = "FCFS resource monitor";
  info.shared_variables = 1;
  info.fragments = {
      {"exclusion", "while busy do turn.wait; busy flag maintained by hand"},
      {"priority", "condition queues are FIFO, so wait order is arrival order"},
  };
  info.notes = "Request-time information is implicit in the FIFO condition queue.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Disk-head scheduler (Hoare's dischead).

MonitorDiskScheduler::MonitorDiskScheduler(Runtime& runtime, std::int64_t initial_head)
    : monitor_(runtime), head_(initial_head) {}

void MonitorDiskScheduler::Access(std::int64_t track, const AccessBody& body, OpScope* scope) {
  {
    MonitorRegion region(monitor_);
    if (scope != nullptr) {
      scope->Arrived();
    }
    if (busy_) {
      // Priority constraint on the request parameter: join the sweep that will pass
      // this track, ordered by track number.
      if (track > head_ || (track == head_ && moving_up_)) {
        upsweep_.Wait(track);
      } else {
        downsweep_.Wait(-track);
      }
    }
    busy_ = true;
    head_ = track;
    if (scope != nullptr) {
      scope->Entered();
    }
  }
  body();
  {
    MonitorRegion region(monitor_);
    if (scope != nullptr) {
      scope->Exited();
    }
    if (moving_up_) {
      if (!upsweep_.Empty()) {
        upsweep_.Signal();
      } else if (!downsweep_.Empty()) {
        moving_up_ = false;
        downsweep_.Signal();
      } else {
        busy_ = false;
      }
    } else {
      if (!downsweep_.Empty()) {
        downsweep_.Signal();
      } else if (!upsweep_.Empty()) {
        moving_up_ = true;
        upsweep_.Signal();
      } else {
        busy_ = false;
      }
    }
  }
}

SolutionInfo MonitorDiskScheduler::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMonitor;
  info.problem = "disk-scan";
  info.display_name = "Hoare disk-head scheduler (SCAN)";
  info.shared_variables = 3;  // head, direction, busy.
  info.fragments = {
      {"exclusion", "if busy then wait on a sweep queue; busy flag maintained by hand"},
      {"priority", "priority conditions upsweep.wait(track) / downsweep.wait(-track); "
                   "release signals the current sweep, flipping direction when empty"},
  };
  info.notes = "Request parameters handled directly by priority-queue conditions.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Alarm clock (Hoare's alarmclock).

MonitorAlarmClock::MonitorAlarmClock(Runtime& runtime) : monitor_(runtime) {}

void MonitorAlarmClock::Tick() {
  MonitorRegion region(monitor_);
  ++now_;
  while (!wakeup_.Empty() && wakeup_.MinPriority() <= now_) {
    wakeup_.Signal();  // Hoare transfer: each due sleeper wakes and leaves in turn.
  }
}

void MonitorAlarmClock::WakeMe(std::int64_t ticks, OpScope* scope) {
  MonitorRegion region(monitor_);
  if (scope != nullptr) {
    scope->Arrived();
  }
  const std::int64_t alarm = now_ + ticks;
  if (scope != nullptr) {
    scope->Entered(alarm);
  }
  while (now_ < alarm) {
    wakeup_.Wait(alarm);
  }
  if (scope != nullptr) {
    scope->Exited(now_);
  }
}

std::int64_t MonitorAlarmClock::Now() const {
  MonitorRegion region(monitor_);
  return now_;
}

SolutionInfo MonitorAlarmClock::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMonitor;
  info.problem = "alarm-clock";
  info.display_name = "Hoare alarm clock";
  info.shared_variables = 1;  // now.
  info.fragments = {
      {"priority", "wakeup.wait(now + n): priority condition ordered by due time; tick "
                   "signals while min due <= now"},
  };
  info.notes = "Wake times (request parameters) handled by the priority condition.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Shortest-job-next allocator.

MonitorSjnAllocator::MonitorSjnAllocator(Runtime& runtime) : monitor_(runtime) {}

void MonitorSjnAllocator::Use(std::int64_t estimate, const AccessBody& body, OpScope* scope) {
  {
    MonitorRegion region(monitor_);
    if (scope != nullptr) {
      scope->Arrived();
    }
    if (busy_) {
      queue_.Wait(estimate);
    }
    busy_ = true;
    if (scope != nullptr) {
      scope->Entered();
    }
  }
  body();
  {
    MonitorRegion region(monitor_);
    if (scope != nullptr) {
      scope->Exited();
    }
    if (!queue_.Empty()) {
      queue_.Signal();
    } else {
      busy_ = false;
    }
  }
}

SolutionInfo MonitorSjnAllocator::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kMonitor;
  info.problem = "sjn-allocator";
  info.display_name = "Shortest-job-next monitor (Hoare scheduled wait)";
  info.shared_variables = 1;  // busy.
  info.fragments = {
      {"exclusion", "if busy then queue.wait(estimate); busy flag maintained by hand"},
      {"priority", "priority condition ordered by estimate; release signals the minimum"},
  };
  return info;
}

}  // namespace syneval
