// Message-passing (CSP) solutions — the paper's future work, implemented.
//
// Section 6: "We have not looked extensively at message-passing models ... such as ...
// 'Communicating Sequential Processes', which may be used for many of the same
// synchronization problems. ... The techniques presented in this paper may prove useful
// in these evaluations." These solutions run that evaluation: every canonical problem
// in the server-process style, measured by the same oracles, conformance sweeps and
// structural metrics as the paper's three mechanisms.
//
// The idiom: the resource is a sequential *server process* owning its state; clients
// synchronize only by sending/receiving. Admission = the server's rendezvous
// acceptance; priority = the order and guards of the server's Select alternatives;
// parameters travel inside messages; synchronization state and history live in the
// server's locals and program counter (the one-slot buffer is literally a two-line
// loop). Each solution owns its server thread; Shutdown() (idempotent) stops it — the
// conformance workloads send it from a terminator thread once the clients finish.

#ifndef SYNEVAL_SOLUTIONS_CSP_SOLUTIONS_H_
#define SYNEVAL_SOLUTIONS_CSP_SOLUTIONS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "syneval/channel/channel.h"
#include "syneval/problems/interfaces.h"
#include "syneval/solutions/solution_info.h"

namespace syneval {

class CspBoundedBuffer : public BoundedBufferIface {
 public:
  CspBoundedBuffer(Runtime& runtime, int capacity);
  ~CspBoundedBuffer() override;

  void Deposit(std::int64_t item, OpScope* scope) override;
  std::int64_t Remove(OpScope* scope) override;
  int capacity() const override { return capacity_; }

  void Shutdown();

  static SolutionInfo Info();

 private:
  int capacity_;
  ChannelGroup group_;
  Channel deposit_ch_{group_, "deposit"};
  Channel fetch_ch_{group_, "fetch"};
  Channel reply_ch_{group_, "reply"};
  Channel stop_ch_{group_, "stop", 1};
  std::unique_ptr<RtThread> server_;
};

class CspOneSlotBuffer : public OneSlotBufferIface {
 public:
  explicit CspOneSlotBuffer(Runtime& runtime);
  ~CspOneSlotBuffer() override;

  void Deposit(std::int64_t item, OpScope* scope) override;
  std::int64_t Remove(OpScope* scope) override;

  void Shutdown();

  static SolutionInfo Info();

 private:
  ChannelGroup group_;
  Channel deposit_ch_{group_, "deposit"};
  Channel fetch_ch_{group_, "fetch"};
  Channel reply_ch_{group_, "reply"};
  Channel stop_ch_{group_, "stop", 1};
  std::unique_ptr<RtThread> server_;
};

// Both readers/writers policies share one server; the policy is just the order of the
// server's Select alternatives plus one waiting-writer guard — the cleanest constraint
// independence in the whole matrix.
class CspReadersWriters : public ReadersWritersIface {
 public:
  enum class Policy { kReadersPriority, kWritersPriority };

  CspReadersWriters(Runtime& runtime, Policy policy);
  ~CspReadersWriters() override;

  void Read(const AccessBody& body, OpScope* scope) override;
  void Write(const AccessBody& body, OpScope* scope) override;

  void Shutdown();

  static SolutionInfo InfoReadersPriority();
  static SolutionInfo InfoWritersPriority();

 private:
  Policy policy_;
  ChannelGroup group_;
  Channel start_read_{group_, "start_read"};
  Channel end_read_{group_, "end_read"};
  Channel start_write_{group_, "start_write"};
  Channel end_write_{group_, "end_write"};
  Channel stop_ch_{group_, "stop", 1};
  std::unique_ptr<RtThread> server_;
};

class CspFcfsResource : public FcfsResourceIface {
 public:
  explicit CspFcfsResource(Runtime& runtime);
  ~CspFcfsResource() override;

  void Access(const AccessBody& body, OpScope* scope) override;

  void Shutdown();

  static SolutionInfo Info();

 private:
  ChannelGroup group_;
  Channel acquire_ch_{group_, "acquire"};
  Channel release_ch_{group_, "release"};
  Channel stop_ch_{group_, "stop", 1};
  std::unique_ptr<RtThread> server_;
};

class CspDiskScheduler : public DiskSchedulerIface {
 public:
  CspDiskScheduler(Runtime& runtime, std::int64_t initial_head = 0);
  ~CspDiskScheduler() override;

  void Access(std::int64_t track, const AccessBody& body, OpScope* scope) override;

  void Shutdown();

  static SolutionInfo Info();

 private:
  ChannelGroup group_;
  Channel request_ch_{group_, "request"};
  Channel release_ch_{group_, "release"};
  Channel stop_ch_{group_, "stop", 1};
  std::int64_t initial_head_;
  std::unique_ptr<RtThread> server_;
};

class CspAlarmClock : public AlarmClockIface {
 public:
  explicit CspAlarmClock(Runtime& runtime);
  ~CspAlarmClock() override;

  void Tick() override;
  void WakeMe(std::int64_t ticks, OpScope* scope) override;
  std::int64_t Now() const override;

  void Shutdown();

  static SolutionInfo Info();

 private:
  ChannelGroup group_;
  Channel tick_ch_{group_, "tick"};
  Channel wake_ch_{group_, "wake"};
  Channel stop_ch_{group_, "stop", 1};
  std::atomic<std::int64_t> now_mirror_{0};  // Server-owned time, mirrored for Now().
  std::unique_ptr<RtThread> server_;
};

class CspSjnAllocator : public SjnAllocatorIface {
 public:
  explicit CspSjnAllocator(Runtime& runtime);
  ~CspSjnAllocator() override;

  void Use(std::int64_t estimate, const AccessBody& body, OpScope* scope) override;

  void Shutdown();

  static SolutionInfo Info();

 private:
  ChannelGroup group_;
  Channel request_ch_{group_, "request"};
  Channel release_ch_{group_, "release"};
  Channel stop_ch_{group_, "stop", 1};
  std::unique_ptr<RtThread> server_;
};

class CspDining : public DiningTableIface {
 public:
  CspDining(Runtime& runtime, int seats);
  ~CspDining() override;

  void Eat(int philosopher, const AccessBody& body, OpScope* scope) override;
  int seats() const override { return seats_; }

  void Shutdown();

  static SolutionInfo Info();

 private:
  int seats_;
  ChannelGroup group_;
  Channel hungry_ch_{group_, "hungry"};
  Channel done_ch_{group_, "done"};
  Channel stop_ch_{group_, "stop", 1};
  std::vector<std::unique_ptr<Channel>> grant_;  // One per seat.
  std::unique_ptr<RtThread> server_;
};

}  // namespace syneval

#endif  // SYNEVAL_SOLUTIONS_CSP_SOLUTIONS_H_
