#include "syneval/solutions/pathexpr_solutions.h"

#include <sstream>

namespace syneval {

namespace {

// Hook bundles mapping OpScope phases onto controller instants (all run under the
// controller lock, per the instrumentation contract).
PathController::Hooks ArriveHooks(OpScope* scope) {
  PathController::Hooks hooks;
  if (scope != nullptr) {
    hooks.on_arrive = [scope] { scope->Arrived(); };
  }
  return hooks;
}

PathController::Hooks AccessHooks(OpScope* scope) {
  PathController::Hooks hooks;
  if (scope != nullptr) {
    hooks.on_admit = [scope] { scope->Entered(); };
    hooks.on_release = [scope] { scope->Exited(); };
  }
  return hooks;
}

PathController::Hooks FullHooks(OpScope* scope) {
  PathController::Hooks hooks;
  if (scope != nullptr) {
    hooks.on_arrive = [scope] { scope->Arrived(); };
    hooks.on_admit = [scope] { scope->Entered(); };
    hooks.on_release = [scope] { scope->Exited(); };
  }
  return hooks;
}

}  // namespace

// ---------------------------------------------------------------------------------------
// Bounded buffer.

namespace {

std::string BoundedBufferProgram(int capacity) {
  std::ostringstream os;
  os << "path " << capacity << ":(1:(deposit); 1:(remove)) end";
  return os.str();
}

}  // namespace

std::string PathBoundedBuffer::Program(int capacity) {
  return BoundedBufferProgram(capacity);
}

PathBoundedBuffer::PathBoundedBuffer(Runtime& runtime, int capacity)
    : controller_(runtime, BoundedBufferProgram(capacity)),
      ring_(static_cast<std::size_t>(capacity), 0),
      capacity_(capacity) {}

void PathBoundedBuffer::Deposit(std::int64_t item, OpScope* scope) {
  PathController::Hooks hooks = FullHooks(scope);
  const PathController::Token token = controller_.Begin("deposit", hooks);
  ring_[static_cast<std::size_t>(in_)] = item;  // 1:(deposit) serializes depositors.
  in_ = (in_ + 1) % capacity_;
  controller_.End("deposit", token, hooks);
}

std::int64_t PathBoundedBuffer::Remove(OpScope* scope) {
  PathController::Hooks hooks = FullHooks(scope);
  const PathController::Token token = controller_.Begin("remove", hooks);
  const std::int64_t item = ring_[static_cast<std::size_t>(out_)];
  out_ = (out_ + 1) % capacity_;
  if (scope != nullptr) {
    hooks.on_release = [scope, item] { scope->Exited(item); };
  }
  controller_.End("remove", token, hooks);
  return item;
}

SolutionInfo PathBoundedBuffer::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kPathExpression;
  info.problem = "bounded-buffer";
  info.display_name = "CH74 bounded buffer path";
  info.fragments = {
      {"exclusion", "1:(deposit) and 1:(remove) bound each operation to one activation"},
      {"local-state", "path N:(deposit; remove): the buffer occupancy is the difference "
                      "of activation counts — no explicit count"},
  };
  info.notes = "The showcase problem for paths: entirely non-procedural.";
  return info;
}

// ---------------------------------------------------------------------------------------
// One-slot buffer.

const char* PathOneSlotBuffer::Program() { return "path deposit; remove end"; }

PathOneSlotBuffer::PathOneSlotBuffer(Runtime& runtime)
    : controller_(runtime, Program()) {}

void PathOneSlotBuffer::Deposit(std::int64_t item, OpScope* scope) {
  PathController::Hooks hooks = FullHooks(scope);
  const PathController::Token token = controller_.Begin("deposit", hooks);
  slot_ = item;
  controller_.End("deposit", token, hooks);
}

std::int64_t PathOneSlotBuffer::Remove(OpScope* scope) {
  PathController::Hooks hooks = FullHooks(scope);
  const PathController::Token token = controller_.Begin("remove", hooks);
  const std::int64_t item = slot_;
  if (scope != nullptr) {
    hooks.on_release = [scope, item] { scope->Exited(item); };
  }
  controller_.End("remove", token, hooks);
  return item;
}

SolutionInfo PathOneSlotBuffer::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kPathExpression;
  info.problem = "one-slot-buffer";
  info.display_name = "CH74 one-slot buffer path";
  info.fragments = {
      {"exclusion", "the cycle admits one operation at a time"},
      {"history", "path deposit; remove: the history constraint IS the path"},
  };
  info.notes = "History information handled directly — the mechanism's best case.";
  return info;
}

// ---------------------------------------------------------------------------------------
// Figure 1: readers priority.

namespace {

constexpr const char* kFigure1Program =
    "path writeattempt end "
    "path { requestread } , requestwrite end "
    "path { read } , (openwrite ; write) end";

constexpr const char* kFigure2Program =
    "path readattempt end "
    "path requestread , { requestwrite } end "
    "path { openread ; read } , write end";

}  // namespace

const char* PathExprRwFigure1::Program() { return kFigure1Program; }

PathExprRwFigure1::PathExprRwFigure1(Runtime& runtime)
    : controller_(runtime, kFigure1Program) {}

PathExprRwFigure1::PathExprRwFigure1(Runtime& runtime, PathController::Options options)
    : controller_(runtime, kFigure1Program, options) {}

void PathExprRwFigure1::Read(const AccessBody& body, OpScope* scope) {
  // READ = begin requestread end;  requestread = begin read end.
  PathController::Hooks rr_hooks = ArriveHooks(scope);
  const PathController::Token rr = controller_.Begin("requestread", rr_hooks);
  {
    PathController::Hooks read_hooks = AccessHooks(scope);
    const PathController::Token r = controller_.Begin("read", read_hooks);
    body();
    controller_.End("read", r, read_hooks);
  }
  controller_.End("requestread", rr, rr_hooks);
}

void PathExprRwFigure1::Write(const AccessBody& body, OpScope* scope) {
  // WRITE = begin writeattempt ; write end;  writeattempt = begin requestwrite end;
  // requestwrite = begin openwrite end.
  {
    PathController::Hooks wa_hooks = ArriveHooks(scope);
    const PathController::Token wa = controller_.Begin("writeattempt", wa_hooks);
    {
      const PathController::Token rw = controller_.Begin("requestwrite");
      {
        const PathController::Token ow = controller_.Begin("openwrite");
        controller_.End("openwrite", ow);
      }
      controller_.End("requestwrite", rw);
    }
    controller_.End("writeattempt", wa, wa_hooks);
  }
  {
    PathController::Hooks write_hooks = AccessHooks(scope);
    const PathController::Token w = controller_.Begin("write", write_hooks);
    body();
    controller_.End("write", w, write_hooks);
  }
}

SolutionInfo PathExprRwFigure1::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kPathExpression;
  info.problem = "rw-readers-priority";
  info.display_name = "Figure 1 (CH74 readers priority)";
  info.direct = false;
  info.sync_procedures = 4;  // requestread, requestwrite, writeattempt, openwrite.
  info.fragments = {
      {"exclusion", "path { read } , (openwrite ; write) end"},
      {"priority", "path writeattempt end; path { requestread } , requestwrite end; "
                   "procedures requestread/requestwrite/writeattempt/openwrite gate the "
                   "accesses"},
  };
  info.notes =
      "Priority is indirect, spread over every path and procedure; violates CHP "
      "readers priority (paper footnote 3).";
  return info;
}

// ---------------------------------------------------------------------------------------
// Figure 2: writers priority.

const char* PathExprRwFigure2::Program() { return kFigure2Program; }

PathExprRwFigure2::PathExprRwFigure2(Runtime& runtime)
    : controller_(runtime, kFigure2Program) {}

void PathExprRwFigure2::Read(const AccessBody& body, OpScope* scope) {
  // READ = begin readattempt ; read end;  readattempt = begin requestread end;
  // requestread = begin openread end.
  {
    PathController::Hooks ra_hooks = ArriveHooks(scope);
    const PathController::Token ra = controller_.Begin("readattempt", ra_hooks);
    {
      const PathController::Token rr = controller_.Begin("requestread");
      {
        const PathController::Token ore = controller_.Begin("openread");
        controller_.End("openread", ore);
      }
      controller_.End("requestread", rr);
    }
    controller_.End("readattempt", ra, ra_hooks);
  }
  {
    PathController::Hooks read_hooks = AccessHooks(scope);
    const PathController::Token r = controller_.Begin("read", read_hooks);
    body();
    controller_.End("read", r, read_hooks);
  }
}

void PathExprRwFigure2::Write(const AccessBody& body, OpScope* scope) {
  // WRITE = begin requestwrite end;  requestwrite = begin write end.
  PathController::Hooks rw_hooks = ArriveHooks(scope);
  const PathController::Token rw = controller_.Begin("requestwrite", rw_hooks);
  {
    PathController::Hooks write_hooks = AccessHooks(scope);
    const PathController::Token w = controller_.Begin("write", write_hooks);
    body();
    controller_.End("write", w, write_hooks);
  }
  controller_.End("requestwrite", rw, rw_hooks);
}

SolutionInfo PathExprRwFigure2::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kPathExpression;
  info.problem = "rw-writers-priority";
  info.display_name = "Figure 2 (CH74 writers priority)";
  info.direct = false;
  info.sync_procedures = 4;  // readattempt, requestread, requestwrite, openread.
  info.fragments = {
      {"exclusion", "path { openread ; read } , write end"},
      {"priority", "path readattempt end; path requestread , { requestwrite } end; "
                   "procedures readattempt/requestread/openread/requestwrite gate the "
                   "accesses"},
  };
  info.notes =
      "Relative to Figure 1, every path and every synchronization procedure changed, "
      "although the exclusion constraint is the same (Section 5.1.2).";
  return info;
}

// ---------------------------------------------------------------------------------------
// Predicate (Andler) readers priority.

const char* PathExprRwPredicates::Program() {
  return "path { read } , [no_waiting_readers] write end";
}

PathExprRwPredicates::PathExprRwPredicates(Runtime& runtime)
    : controller_(runtime, Program()) {
  controller_.RegisterPredicate("no_waiting_readers",
                                [this] { return waiting_readers_.load() == 0; });
}

void PathExprRwPredicates::Read(const AccessBody& body, OpScope* scope) {
  waiting_readers_.fetch_add(1);
  PathController::Hooks hooks;
  hooks.on_admit = [this, scope] {
    waiting_readers_.fetch_sub(1);
    if (scope != nullptr) {
      scope->Entered();
    }
  };
  if (scope != nullptr) {
    hooks.on_arrive = [scope] { scope->Arrived(); };
    hooks.on_release = [scope] { scope->Exited(); };
  }
  const PathController::Token r = controller_.Begin("read", hooks);
  body();
  controller_.End("read", r, hooks);
}

void PathExprRwPredicates::Write(const AccessBody& body, OpScope* scope) {
  PathController::Hooks hooks = FullHooks(scope);
  const PathController::Token w = controller_.Begin("write", hooks);
  body();
  controller_.End("write", w, hooks);
}

SolutionInfo PathExprRwPredicates::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kPathExpression;
  info.problem = "rw-readers-priority";
  info.display_name = "Predicate paths (Andler) readers priority";
  info.direct = false;
  info.sync_procedures = 1;  // The waiting-reader count maintained around read.
  info.shared_variables = 1;
  info.fragments = {
      {"exclusion", "path { read } , ... write end"},
      {"priority", "[no_waiting_readers] guard on write; waiting_readers maintained by "
                   "the host program"},
  };
  info.notes = "CHP-correct, unlike Figure 1; predicates still need host-kept state.";
  return info;
}

// ---------------------------------------------------------------------------------------
// FCFS resource.

const char* PathFcfsResource::Program() { return "path acquire end"; }

PathFcfsResource::PathFcfsResource(Runtime& runtime)
    : controller_(runtime, Program()) {}

PathFcfsResource::PathFcfsResource(Runtime& runtime, PathController::Options options)
    : controller_(runtime, Program(), options) {}

void PathFcfsResource::Access(const AccessBody& body, OpScope* scope) {
  PathController::Hooks hooks = FullHooks(scope);
  const PathController::Token token = controller_.Begin("acquire", hooks);
  body();
  controller_.End("acquire", token, hooks);
}

SolutionInfo PathFcfsResource::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kPathExpression;
  info.problem = "fcfs-resource";
  info.display_name = "FCFS resource path";
  info.fragments = {
      {"exclusion", "path acquire end"},
      {"priority", "no textual realization: depends entirely on the assumption that "
                   "selection chooses the longest-waiting process"},
  };
  info.notes = "Fails under arbitrary selection (CH74 without Bloom's assumption).";
  return info;
}

// ---------------------------------------------------------------------------------------
// Disk (FCFS only — SCAN inexpressible).

const char* PathDiskFcfs::Program() { return "path disk end"; }

PathDiskFcfs::PathDiskFcfs(Runtime& runtime) : controller_(runtime, Program()) {}

void PathDiskFcfs::Access(std::int64_t track, const AccessBody& body, OpScope* scope) {
  (void)track;  // The defining limitation: the parameter cannot influence the path.
  PathController::Hooks hooks = FullHooks(scope);
  const PathController::Token token = controller_.Begin("disk", hooks);
  body();
  controller_.End("disk", token, hooks);
}

SolutionInfo PathDiskFcfs::Info() {
  SolutionInfo info;
  info.mechanism = Mechanism::kPathExpression;
  info.problem = "disk-fcfs";
  info.display_name = "Disk path (FCFS only; SCAN inexpressible)";
  info.direct = false;
  info.fragments = {
      {"exclusion", "path disk end"},
      {"priority", "(none: track numbers cannot be referenced from paths)"},
  };
  info.notes = "Request parameters are unusable in paths — the E3 matrix entry.";
  return info;
}

}  // namespace syneval
