// Semaphore (Dijkstra P/V) baseline solutions — the mechanism the paper says
// higher-level constructs must improve on. Readers/writers follow Courtois–Heymans–
// Parnas 1971 algorithms 1 and 2 literally; parameter-based scheduling (SCAN, SJN,
// alarm clock) uses the "private semaphore" pattern: an explicit waiting list plus a
// per-request binary semaphore, i.e. the programmer builds the scheduler by hand — the
// verbosity the structural metrics (E4) quantify.

#ifndef SYNEVAL_SOLUTIONS_SEMAPHORE_SOLUTIONS_H_
#define SYNEVAL_SOLUTIONS_SEMAPHORE_SOLUTIONS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "syneval/problems/interfaces.h"
#include "syneval/solutions/solution_info.h"
#include "syneval/sync/semaphore.h"

namespace syneval {

class SemaphoreBoundedBuffer : public BoundedBufferIface {
 public:
  SemaphoreBoundedBuffer(Runtime& runtime, int capacity);

  void Deposit(std::int64_t item, OpScope* scope) override;
  std::int64_t Remove(OpScope* scope) override;
  int capacity() const override { return capacity_; }

  static SolutionInfo Info();

 private:
  CountingSemaphore empty_;
  CountingSemaphore full_;
  CountingSemaphore deposit_mutex_;
  CountingSemaphore remove_mutex_;
  std::vector<std::int64_t> ring_;
  int capacity_;
  int in_ = 0;
  int out_ = 0;
};

class SemaphoreOneSlotBuffer : public OneSlotBufferIface {
 public:
  explicit SemaphoreOneSlotBuffer(Runtime& runtime);

  void Deposit(std::int64_t item, OpScope* scope) override;
  std::int64_t Remove(OpScope* scope) override;

  static SolutionInfo Info();

 private:
  CountingSemaphore empty_;
  CountingSemaphore full_;
  std::int64_t slot_ = 0;
};

// Courtois–Heymans–Parnas algorithm 1 (readers priority).
class SemaphoreRwReadersPriority : public ReadersWritersIface {
 public:
  explicit SemaphoreRwReadersPriority(Runtime& runtime);

  void Read(const AccessBody& body, OpScope* scope) override;
  void Write(const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  CountingSemaphore mutex_;
  CountingSemaphore w_;
  int readers_ = 0;
};

// Courtois–Heymans–Parnas algorithm 2 (writers priority; five semaphores).
class SemaphoreRwWritersPriority : public ReadersWritersIface {
 public:
  explicit SemaphoreRwWritersPriority(Runtime& runtime);

  void Read(const AccessBody& body, OpScope* scope) override;
  void Write(const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  CountingSemaphore mutex1_;
  CountingSemaphore mutex2_;
  CountingSemaphore mutex3_;
  CountingSemaphore w_;
  CountingSemaphore r_;
  int readers_ = 0;
  int writers_ = 0;
};

// FCFS resource: requires a *strong* (queueing) semaphore — weak P/V cannot express
// request-time order at all, which is itself an E3 data point.
class SemaphoreFcfsResource : public FcfsResourceIface {
 public:
  explicit SemaphoreFcfsResource(Runtime& runtime);

  void Access(const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  FifoSemaphore fifo_;
};

// SCAN via the private-semaphore pattern: explicit sweep lists, one binary semaphore
// per blocked request, releaser picks the successor by hand.
class SemaphoreDiskScheduler : public DiskSchedulerIface {
 public:
  SemaphoreDiskScheduler(Runtime& runtime, std::int64_t initial_head = 0);

  void Access(std::int64_t track, const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  struct Waiting;

  Runtime& runtime_;
  CountingSemaphore mutex_;
  std::vector<Waiting*> up_;    // Ascending by track.
  std::vector<Waiting*> down_;  // Descending by track.
  std::int64_t head_;
  bool moving_up_ = true;
  bool busy_ = false;
};

// Alarm clock via the private-semaphore pattern.
class SemaphoreAlarmClock : public AlarmClockIface {
 public:
  explicit SemaphoreAlarmClock(Runtime& runtime);

  void Tick() override;
  void WakeMe(std::int64_t ticks, OpScope* scope) override;
  std::int64_t Now() const override;

  static SolutionInfo Info();

 private:
  struct Sleeper;

  Runtime& runtime_;
  mutable CountingSemaphore mutex_;
  std::vector<Sleeper*> sleepers_;  // Ascending by due time.
  std::int64_t now_ = 0;
};

// Shortest-job-next via the private-semaphore pattern.
class SemaphoreSjnAllocator : public SjnAllocatorIface {
 public:
  explicit SemaphoreSjnAllocator(Runtime& runtime);

  void Use(std::int64_t estimate, const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  struct Job;

  Runtime& runtime_;
  CountingSemaphore mutex_;
  std::vector<Job*> queue_;  // Ascending by estimate.
  bool busy_ = false;
};

}  // namespace syneval

#endif  // SYNEVAL_SOLUTIONS_SEMAPHORE_SOLUTIONS_H_
