// Serializer solutions to the canonical problem set (Atkinson–Hewitt, Section 5.2).
//
// Structure per the A&H pattern: gain possession (Region), wait on a guarded queue
// (Enqueue), run the resource operation in a crowd (JoinCrowd — possession released for
// the duration). Signalling is automatic; no solution contains a signal statement, which
// is the mechanism's headline ease-of-use property in the paper's analysis.

#ifndef SYNEVAL_SOLUTIONS_SERIALIZER_SOLUTIONS_H_
#define SYNEVAL_SOLUTIONS_SERIALIZER_SOLUTIONS_H_

#include <cstdint>
#include <vector>

#include "syneval/problems/interfaces.h"
#include "syneval/serializer/serializer.h"
#include "syneval/solutions/solution_info.h"

namespace syneval {

class SerializerBoundedBuffer : public BoundedBufferIface {
 public:
  SerializerBoundedBuffer(Runtime& runtime, int capacity);

  void Deposit(std::int64_t item, OpScope* scope) override;
  std::int64_t Remove(OpScope* scope) override;
  int capacity() const override { return capacity_; }

  static SolutionInfo Info();

 private:
  Serializer serializer_;
  Serializer::Queue deposit_q_{serializer_, "depositq"};
  Serializer::Queue remove_q_{serializer_, "removeq"};
  std::vector<std::int64_t> ring_;
  int capacity_;
  int count_ = 0;
  int in_ = 0;
  int out_ = 0;
};

class SerializerOneSlotBuffer : public OneSlotBufferIface {
 public:
  explicit SerializerOneSlotBuffer(Runtime& runtime);

  void Deposit(std::int64_t item, OpScope* scope) override;
  std::int64_t Remove(OpScope* scope) override;

  static SolutionInfo Info();

 private:
  Serializer serializer_;
  Serializer::Queue deposit_q_{serializer_, "depositq"};
  Serializer::Queue remove_q_{serializer_, "removeq"};
  bool has_item_ = false;
  std::int64_t slot_ = 0;
};

// Readers-priority: the reader queue is created first, so at every possession release
// waiting readers are examined (and admitted) before waiting writers.
class SerializerRwReadersPriority : public ReadersWritersIface {
 public:
  explicit SerializerRwReadersPriority(Runtime& runtime);

  void Read(const AccessBody& body, OpScope* scope) override;
  void Write(const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  Serializer serializer_;
  Serializer::Queue read_q_{serializer_, "readq"};
  Serializer::Queue write_q_{serializer_, "writeq"};
  Serializer::Crowd read_crowd_{serializer_, "readers"};
  Serializer::Crowd write_crowd_{serializer_, "writers"};
};

// Writers-priority: the writer queue is created first, and arriving readers defer to
// queued writers via their guard.
class SerializerRwWritersPriority : public ReadersWritersIface {
 public:
  explicit SerializerRwWritersPriority(Runtime& runtime);

  void Read(const AccessBody& body, OpScope* scope) override;
  void Write(const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  Serializer serializer_;
  Serializer::Queue write_q_{serializer_, "writeq"};
  Serializer::Queue read_q_{serializer_, "readq"};
  Serializer::Crowd read_crowd_{serializer_, "readers"};
  Serializer::Crowd write_crowd_{serializer_, "writers"};
};

// FCFS: readers and writers share ONE queue with different guards — the serializer
// resolution of the monitor request-type/request-time conflict (Section 5.2: "automatic
// signals ... separate the means of using request time and request type information").
class SerializerRwFcfs : public ReadersWritersIface {
 public:
  explicit SerializerRwFcfs(Runtime& runtime);

  void Read(const AccessBody& body, OpScope* scope) override;
  void Write(const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  Serializer serializer_;
  Serializer::Queue q_{serializer_, "arrivals"};
  Serializer::Crowd read_crowd_{serializer_, "readers"};
  Serializer::Crowd write_crowd_{serializer_, "writers"};
};

class SerializerFcfsResource : public FcfsResourceIface {
 public:
  explicit SerializerFcfsResource(Runtime& runtime);

  void Access(const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  Serializer serializer_;
  Serializer::Queue q_{serializer_, "arrivals"};
  Serializer::Crowd crowd_{serializer_, "holders"};
};

// SCAN disk scheduler using the priority-queue extension: two sweep queues ordered by
// track, direction kept as serializer-protected state.
class SerializerDiskScheduler : public DiskSchedulerIface {
 public:
  SerializerDiskScheduler(Runtime& runtime, std::int64_t initial_head = 0);

  void Access(std::int64_t track, const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  Serializer serializer_;
  Serializer::PriorityQueue up_q_{serializer_, "upsweep"};
  Serializer::PriorityQueue down_q_{serializer_, "downsweep"};
  Serializer::Crowd crowd_{serializer_, "holder"};
  std::int64_t head_;
  bool moving_up_ = true;
};

class SerializerAlarmClock : public AlarmClockIface {
 public:
  explicit SerializerAlarmClock(Runtime& runtime);

  void Tick() override;
  void WakeMe(std::int64_t ticks, OpScope* scope) override;
  std::int64_t Now() const override;

  static SolutionInfo Info();

 private:
  mutable Serializer serializer_;
  Serializer::PriorityQueue wake_q_{serializer_, "wakeups"};
  std::int64_t now_ = 0;
};

class SerializerSjnAllocator : public SjnAllocatorIface {
 public:
  explicit SerializerSjnAllocator(Runtime& runtime);

  void Use(std::int64_t estimate, const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  Serializer serializer_;
  Serializer::PriorityQueue q_{serializer_, "jobs"};
  Serializer::Crowd crowd_{serializer_, "holder"};
};

}  // namespace syneval

#endif  // SYNEVAL_SOLUTIONS_SERIALIZER_SOLUTIONS_H_
