// Conditional-critical-region solutions — the methodology applied to a mechanism the
// paper did NOT evaluate (its conclusion invites exactly this: the framework serves
// "anyone needing to compare several mechanisms or select one").
//
// The CCR discipline: entry protocols and exit protocols are short region bodies that
// update shared state; the actual resource access runs outside the region (otherwise
// readers could never overlap). Conditions may refer to the request's own parameters
// directly (closure capture — the alarm clock is one line), but any cross-request
// comparison (SJN's minimum, SCAN's sweep) needs a hand-kept pending set, and any
// priority over *waiting* processes needs hand-kept pending counters — the structural
// facts that feed the mechanism's column in the expressiveness matrix.

#ifndef SYNEVAL_SOLUTIONS_CCR_SOLUTIONS_H_
#define SYNEVAL_SOLUTIONS_CCR_SOLUTIONS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "syneval/ccr/critical_region.h"
#include "syneval/problems/interfaces.h"
#include "syneval/solutions/solution_info.h"

namespace syneval {

class CcrBoundedBuffer : public BoundedBufferIface {
 public:
  CcrBoundedBuffer(Runtime& runtime, int capacity);

  void Deposit(std::int64_t item, OpScope* scope) override;
  std::int64_t Remove(OpScope* scope) override;
  int capacity() const override { return capacity_; }

  static SolutionInfo Info();

 private:
  CriticalRegion region_;
  std::vector<std::int64_t> ring_;
  int capacity_;
  int count_ = 0;
  int in_ = 0;
  int out_ = 0;
};

class CcrOneSlotBuffer : public OneSlotBufferIface {
 public:
  explicit CcrOneSlotBuffer(Runtime& runtime);

  void Deposit(std::int64_t item, OpScope* scope) override;
  std::int64_t Remove(OpScope* scope) override;

  static SolutionInfo Info();

 private:
  CriticalRegion region_;
  bool has_item_ = false;
  std::int64_t slot_ = 0;
};

// Readers priority: readers pass `when not writing`; a writer additionally awaits
// `pending_readers = 0`, a counter the readers bump before entering their region —
// the same host-kept-state pattern as the Andler predicate paths.
class CcrRwReadersPriority : public ReadersWritersIface {
 public:
  explicit CcrRwReadersPriority(Runtime& runtime);

  void Read(const AccessBody& body, OpScope* scope) override;
  void Write(const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  CriticalRegion region_;
  int readers_ = 0;
  bool writing_ = false;
  std::atomic<int> pending_readers_{0};
};

class CcrRwWritersPriority : public ReadersWritersIface {
 public:
  explicit CcrRwWritersPriority(Runtime& runtime);

  void Read(const AccessBody& body, OpScope* scope) override;
  void Write(const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  CriticalRegion region_;
  int readers_ = 0;
  bool writing_ = false;
  std::atomic<int> pending_writers_{0};
};

// FCFS via a ticket taken under the region lock at arrival.
class CcrFcfsResource : public FcfsResourceIface {
 public:
  explicit CcrFcfsResource(Runtime& runtime);

  void Access(const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  CriticalRegion region_;
  bool busy_ = false;
  std::int64_t next_ticket_ = 0;
  std::int64_t serving_ = 0;
};

// SCAN: every waiter registers its track in a pending list at arrival; the condition is
// "the SCAN choice over the pending list is me" — the scheduler is re-derived at every
// region exit. Entirely hand-built state, like the semaphore version.
class CcrDiskScheduler : public DiskSchedulerIface {
 public:
  CcrDiskScheduler(Runtime& runtime, std::int64_t initial_head = 0);

  void Access(std::int64_t track, const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  struct Pending {
    std::int64_t track = 0;
    std::uint64_t ticket = 0;
  };

  // The SCAN choice over pending_ given head_/moving_up_; `direction_used` reports the
  // sweep that produced the pick (callers flip moving_up_ on admission accordingly).
  const Pending* PickLocked(bool* direction_used) const;

  CriticalRegion region_;
  std::vector<Pending> pending_;
  std::uint64_t next_ticket_ = 0;
  std::int64_t head_;
  bool moving_up_ = true;
  bool busy_ = false;
};

// Alarm clock: the condition refers to the request's own wake time directly — the CCR
// best case for parameters.
class CcrAlarmClock : public AlarmClockIface {
 public:
  explicit CcrAlarmClock(Runtime& runtime);

  void Tick() override;
  void WakeMe(std::int64_t ticks, OpScope* scope) override;
  std::int64_t Now() const override;

  static SolutionInfo Info();

 private:
  mutable CriticalRegion region_;
  std::int64_t now_ = 0;
};

// SJN: pending estimates registered at arrival; condition: mine is the minimum.
class CcrSjnAllocator : public SjnAllocatorIface {
 public:
  explicit CcrSjnAllocator(Runtime& runtime);

  void Use(std::int64_t estimate, const AccessBody& body, OpScope* scope) override;

  static SolutionInfo Info();

 private:
  struct Pending {
    std::int64_t estimate = 0;
    std::uint64_t ticket = 0;
  };

  CriticalRegion region_;
  std::vector<Pending> pending_;
  std::uint64_t next_ticket_ = 0;
  bool busy_ = false;
};

class CcrDining : public DiningTableIface {
 public:
  CcrDining(Runtime& runtime, int seats);

  void Eat(int philosopher, const AccessBody& body, OpScope* scope) override;
  int seats() const override { return seats_; }

  static SolutionInfo Info();

 private:
  int seats_;
  CriticalRegion region_;
  std::vector<bool> eating_;
};

}  // namespace syneval

#endif  // SYNEVAL_SOLUTIONS_CCR_SOLUTIONS_H_
