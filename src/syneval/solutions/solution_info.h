// SolutionInfo: structured metadata every solution registers about itself.
//
// This is the input to the paper's Section 4 measurements. A solution declares, per
// constraint it implements, the *fragment* of synchronization text realizing that
// constraint (mirroring how the paper compares Figure 1 and Figure 2 constraint by
// constraint), plus structural facts: whether the mechanism expressed the scheme
// directly, how many auxiliary "synchronization procedures" were needed (the paper's
// chief indirectness signal for path expressions), and how much synchronization state
// had to be maintained by hand (the paper's chief monitor overhead signal).
//
// The core metrics engine (syneval/core/metrics.h) compares fragments across related
// problems to score constraint independence, exactly as Section 4.2 prescribes.

#ifndef SYNEVAL_SOLUTIONS_SOLUTION_INFO_H_
#define SYNEVAL_SOLUTIONS_SOLUTION_INFO_H_

#include <string>
#include <vector>

namespace syneval {

enum class Mechanism {
  kSemaphore,          // Dijkstra P/V baseline.
  kMonitor,            // Hoare monitors.
  kPathExpression,     // Campbell–Habermann path expressions (+ surveyed extensions).
  kSerializer,         // Atkinson–Hewitt serializers.
  kConditionalRegion,  // Conditional critical regions (extension: not in the paper).
  kMessagePassing,     // CSP channels + guarded select (the paper's future work).
};

inline constexpr int kNumMechanisms = 6;

const char* MechanismName(Mechanism mechanism);

// One constraint's implementation fragment within a solution.
struct ConstraintFragment {
  std::string constraint;  // Canonical constraint id, e.g. "exclusion", "priority".
  std::string code;        // The synchronization text realizing it.
};

struct SolutionInfo {
  Mechanism mechanism = Mechanism::kSemaphore;
  std::string problem;       // Canonical problem id, e.g. "rw-readers-priority".
  std::string display_name;  // Human-readable, e.g. "Figure 1 (CH74 paths)".
  bool direct = true;        // False when the scheme needed escapes beyond the
                             // mechanism's native constructs.
  int sync_procedures = 0;   // Auxiliary gate procedures (requestread, openwrite, ...).
  int shared_variables = 0;  // Synchronization state maintained by hand (counts, flags).
  std::vector<ConstraintFragment> fragments;
  std::string notes;
};

}  // namespace syneval

#endif  // SYNEVAL_SOLUTIONS_SOLUTION_INFO_H_
