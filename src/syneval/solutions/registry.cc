#include "syneval/solutions/registry.h"

#include <algorithm>

#include "syneval/solutions/ccr_solutions.h"
#include "syneval/solutions/csp_solutions.h"
#include "syneval/solutions/dining_solutions.h"
#include "syneval/solutions/monitor_solutions.h"
#include "syneval/solutions/pathexpr_solutions.h"
#include "syneval/solutions/semaphore_solutions.h"
#include "syneval/solutions/serializer_solutions.h"
#include "syneval/solutions/smokers_solutions.h"

namespace syneval {

const char* MechanismName(Mechanism mechanism) {
  switch (mechanism) {
    case Mechanism::kSemaphore:
      return "semaphore";
    case Mechanism::kMonitor:
      return "monitor";
    case Mechanism::kPathExpression:
      return "path-expression";
    case Mechanism::kSerializer:
      return "serializer";
    case Mechanism::kConditionalRegion:
      return "cond-region";
    case Mechanism::kMessagePassing:
      return "csp-channels";
  }
  return "?";
}

const std::vector<SolutionInfo>& AllSolutionInfos() {
  static const std::vector<SolutionInfo>* infos = new std::vector<SolutionInfo>{
      // Semaphore baseline.
      SemaphoreBoundedBuffer::Info(),
      SemaphoreOneSlotBuffer::Info(),
      SemaphoreRwReadersPriority::Info(),
      SemaphoreRwWritersPriority::Info(),
      SemaphoreFcfsResource::Info(),
      SemaphoreDiskScheduler::Info(),
      SemaphoreAlarmClock::Info(),
      SemaphoreSjnAllocator::Info(),
      SemaphoreDiningOrdered::Info(),
      SemaphoreDiningButler::Info(),
      SemaphoreSmokersAgentKnows::Info(),
      // Monitors.
      MonitorBoundedBuffer::Info(),
      MonitorOneSlotBuffer::Info(),
      MonitorRwReadersPriority::Info(),
      MonitorRwWritersPriority::Info(),
      MonitorRwFcfs::Info(),
      MonitorRwFair::Info(),
      MonitorFcfsResource::Info(),
      MonitorDiskScheduler::Info(),
      MonitorAlarmClock::Info(),
      MonitorSjnAllocator::Info(),
      MonitorDining::Info(),
      MonitorSmokers::Info(),
      // Path expressions.
      PathBoundedBuffer::Info(),
      PathOneSlotBuffer::Info(),
      PathExprRwFigure1::Info(),
      PathExprRwFigure2::Info(),
      PathExprRwPredicates::Info(),
      PathFcfsResource::Info(),
      PathDiskFcfs::Info(),
      PathDining::Info(),
      // Serializers.
      SerializerBoundedBuffer::Info(),
      SerializerOneSlotBuffer::Info(),
      SerializerRwReadersPriority::Info(),
      SerializerRwWritersPriority::Info(),
      SerializerRwFcfs::Info(),
      SerializerFcfsResource::Info(),
      SerializerDiskScheduler::Info(),
      SerializerAlarmClock::Info(),
      SerializerSjnAllocator::Info(),
      SerializerDining::Info(),
      // Conditional critical regions (methodology extension).
      CcrBoundedBuffer::Info(),
      CcrOneSlotBuffer::Info(),
      CcrRwReadersPriority::Info(),
      CcrRwWritersPriority::Info(),
      CcrFcfsResource::Info(),
      CcrDiskScheduler::Info(),
      CcrAlarmClock::Info(),
      CcrSjnAllocator::Info(),
      CcrDining::Info(),
      CcrSmokers::Info(),
      // CSP message passing (the paper's future work, Section 6).
      CspBoundedBuffer::Info(),
      CspOneSlotBuffer::Info(),
      CspReadersWriters::InfoReadersPriority(),
      CspReadersWriters::InfoWritersPriority(),
      CspFcfsResource::Info(),
      CspDiskScheduler::Info(),
      CspAlarmClock::Info(),
      CspSjnAllocator::Info(),
      CspDining::Info(),
  };
  return *infos;
}

std::optional<SolutionInfo> FindSolution(Mechanism mechanism, const std::string& problem) {
  for (const SolutionInfo& info : AllSolutionInfos()) {
    if (info.mechanism == mechanism && info.problem == problem) {
      return info;
    }
  }
  return std::nullopt;
}

std::vector<std::string> RegistryProblems() {
  std::vector<std::string> problems;
  for (const SolutionInfo& info : AllSolutionInfos()) {
    if (std::find(problems.begin(), problems.end(), info.problem) == problems.end()) {
      problems.push_back(info.problem);
    }
  }
  return problems;
}

}  // namespace syneval
