// Event model for synchronization traces.
//
// Every access to a shared resource in this library is modelled as three phases, matching
// the request/admission/completion structure Bloom's taxonomy reasons about:
//
//   kRequest : the process has asked to execute an operation (it may be blocked);
//   kEnter   : the process has been admitted and is executing the operation body;
//   kExit    : the operation body has completed.
//
// Problems attach the information categories of Section 3 of the paper to events:
// the operation name is the *request type*, the sequence number is the *request time*,
// `param` carries *request parameters*, and oracles derive *synchronization state*,
// *local state*, and *history* information from the event stream itself.

#ifndef SYNEVAL_TRACE_EVENT_H_
#define SYNEVAL_TRACE_EVENT_H_

#include <cstdint>
#include <string>

namespace syneval {

// Phase of an operation instance. kMark is a free-form annotation event used by tests
// and workloads (e.g. virtual-clock ticks).
enum class EventKind : std::uint8_t {
  kRequest = 0,
  kEnter = 1,
  kExit = 2,
  kMark = 3,
};

// Returns a short human-readable name ("request", "enter", "exit", "mark").
const char* EventKindName(EventKind kind);

// One record in a trace. Events are totally ordered by `seq`, a global logical timestamp
// assigned at record time. `op_instance` ties together the kRequest/kEnter/kExit events of
// a single operation execution.
struct Event {
  std::uint64_t seq = 0;          // Global logical time; unique and totally ordered.
  std::uint64_t op_instance = 0;  // Identifier shared by the phases of one execution.
  std::uint32_t thread = 0;       // Logical id of the acting thread.
  EventKind kind = EventKind::kMark;
  std::string op;                 // Operation (request type), e.g. "read", "deposit".
  std::int64_t param = 0;         // Request parameter (track number, wake time, ...).
  std::int64_t value = 0;         // Payload observed (buffer item, ticket, ...).
  std::uint64_t wall_ns = 0;      // Wall-clock stamp (0 unless the recorder has a
                                  // clock attached; see TraceRecorder::SetClock).
                                  // Oracles ignore it; the Perfetto exporter uses it.

  // Renders "seq=12 t3 enter read(param=7)" style text for diagnostics.
  std::string ToString() const;
};

}  // namespace syneval

#endif  // SYNEVAL_TRACE_EVENT_H_
