// TraceRecorder: a thread-safe, append-only event log with global logical timestamps.
//
// The recorder is the measurement substrate for every experiment in this repository:
// workloads record request/enter/exit events around mechanism calls, and the oracles in
// syneval/problems check constraint conformance over the resulting totally ordered trace.

#ifndef SYNEVAL_TRACE_RECORDER_H_
#define SYNEVAL_TRACE_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "syneval/trace/event.h"

namespace syneval {

// Callback interface for observing events as they are recorded. The observer is invoked
// *after* the recorder's internal lock is released, so implementations may take their own
// locks (and even record further events) without deadlocking against the recorder.
class TraceObserver {
 public:
  virtual ~TraceObserver() = default;
  virtual void OnTraceEvent(const Event& event) = 0;
};

// Thread-safe append-only trace. Appends are serialized by an internal mutex so that the
// assigned sequence numbers agree with the order events entered the log; this gives a
// single total order that oracles can treat as "the observed history".
//
// Snapshot() may be called concurrently with appends; it returns a copy of the stable
// prefix. Events() requires that all writers have finished.
class TraceRecorder {
 public:
  TraceRecorder() = default;

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Appends an event, assigning the next global sequence number. Returns the
  // sequence number assigned.
  std::uint64_t Record(Event event);

  // Convenience: appends a (kind, op) event for `thread`, returning its seq.
  std::uint64_t Record(std::uint32_t thread, EventKind kind, std::string_view op,
                       std::uint64_t op_instance = 0, std::int64_t param = 0,
                       std::int64_t value = 0);

  // Allocates a fresh operation-instance id (used to tie request/enter/exit together).
  std::uint64_t NewOpInstance();

  // Sets (or clears, with nullptr) the observer notified after each append. The caller
  // must ensure the observer outlives all recording and is set before writers start.
  void SetObserver(TraceObserver* observer) { observer_ = observer; }

  // A second, independent observer slot, notified after the primary. The anomaly
  // detector conventionally holds the primary slot; this one lets the flight recorder
  // (or any other sink) listen to op events without displacing it. Same lifetime and
  // set-before-writers rules as SetObserver.
  void SetSecondaryObserver(TraceObserver* observer) { secondary_observer_ = observer; }

  // Attaches a wall-clock source (typically [&rt] { return rt.NowNanos(); }). Once
  // set, every appended event is stamped with Event::wall_ns under the recorder lock,
  // which lets the Perfetto exporter place the logical events on a real timeline.
  // Must be set before writers start; events recorded earlier keep wall_ns == 0.
  void SetClock(std::function<std::uint64_t()> clock) { clock_ = std::move(clock); }

  // Returns a copy of all events recorded so far.
  std::vector<Event> Snapshot() const;

  // Returns a reference to the event vector. Only valid once all writers have stopped.
  const std::vector<Event>& Events() const { return events_; }

  std::size_t size() const;
  void Clear();

  // Renders the whole trace, one event per line (diagnostics for failing oracles).
  std::string ToString() const;

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::uint64_t next_seq_ = 1;
  std::atomic<std::uint64_t> next_instance_{1};
  TraceObserver* observer_ = nullptr;
  TraceObserver* secondary_observer_ = nullptr;
  std::function<std::uint64_t()> clock_;  // Optional wall-clock source for wall_ns.
};

// Records the phases of one operation execution.
//
// Instrumentation contract (see problems/README in DESIGN.md): the phase records are
// only meaningful if they are ordered by happens-before with the admission decisions
// they describe, so solutions call them at precise points:
//
//   Arrived() — when the request becomes visible to the mechanism (first statement
//               under the mechanism's internal exclusion, e.g. on entering the monitor);
//   Entered() — at the admission decision, still under the same exclusion;
//   Exited()  — at the release point, before the mechanism wakes competitors.
//
// A solution given a null OpScope* simply skips instrumentation. If Entered() is called
// without a prior Arrived(), an arrival is recorded implicitly (arrival == admission).
// The destructor records kExit for an entered-but-not-exited scope; a scope that never
// entered records nothing further (the execution was abandoned, e.g. during
// deterministic-runtime teardown).
class OpScope {
 public:
  OpScope(TraceRecorder& recorder, std::uint32_t thread, std::string op, std::int64_t param = 0);
  ~OpScope();

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  // Records the kRequest event (request visible to the mechanism). Idempotent.
  void Arrived();

  // Records the kEnter event (the operation has been admitted). Idempotent.
  void Entered(std::int64_t value = 0);

  // Records the kExit event (the operation released the resource). Idempotent.
  void Exited(std::int64_t value = 0);

  std::uint64_t instance() const { return instance_; }

 private:
  TraceRecorder& recorder_;
  std::uint32_t thread_;
  std::string op_;
  std::int64_t param_;
  std::uint64_t instance_;
  bool arrived_ = false;
  bool entered_ = false;
  bool exited_ = false;
};

}  // namespace syneval

#endif  // SYNEVAL_TRACE_RECORDER_H_
