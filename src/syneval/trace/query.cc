#include "syneval/trace/query.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <unordered_map>

namespace syneval {

namespace {

constexpr std::uint64_t kInfinity = std::numeric_limits<std::uint64_t>::max();

// Effective interval bounds: an execution that never entered occupies nothing; one that
// entered but never exited is treated as holding the resource forever after.
std::uint64_t EnterBound(const Execution& e) { return e.enter_seq == 0 ? kInfinity : e.enter_seq; }
std::uint64_t ExitBound(const Execution& e) { return e.exit_seq == 0 ? kInfinity : e.exit_seq; }

}  // namespace

bool Execution::Overlaps(const Execution& other) const {
  if (enter_seq == 0 || other.enter_seq == 0) {
    return false;
  }
  return EnterBound(*this) < ExitBound(other) && EnterBound(other) < ExitBound(*this);
}

bool Execution::CompletedBefore(const Execution& other) const {
  if (exit_seq == 0 || other.enter_seq == 0) {
    return false;
  }
  return exit_seq < other.enter_seq;
}

bool Execution::RequestedBefore(const Execution& other) const {
  if (request_seq == 0 || other.request_seq == 0) {
    return false;
  }
  return request_seq < other.request_seq;
}

std::vector<Execution> GroupExecutions(const std::vector<Event>& events) {
  std::unordered_map<std::uint64_t, std::size_t> index;
  std::vector<Execution> executions;
  executions.reserve(events.size() / 3 + 1);
  for (const Event& event : events) {
    if (event.kind == EventKind::kMark) {
      continue;
    }
    auto [it, inserted] = index.try_emplace(event.op_instance, executions.size());
    if (inserted) {
      Execution execution;
      execution.instance = event.op_instance;
      execution.thread = event.thread;
      execution.op = event.op;
      execution.param = event.param;
      executions.push_back(std::move(execution));
    }
    Execution& execution = executions[it->second];
    switch (event.kind) {
      case EventKind::kRequest:
        execution.request_seq = event.seq;
        break;
      case EventKind::kEnter:
        execution.enter_seq = event.seq;
        execution.enter_value = event.value;
        break;
      case EventKind::kExit:
        execution.exit_seq = event.seq;
        execution.exit_value = event.value;
        break;
      case EventKind::kMark:
        break;
    }
  }
  std::sort(executions.begin(), executions.end(), [](const Execution& a, const Execution& b) {
    const std::uint64_t ka = a.request_seq == 0 ? a.enter_seq : a.request_seq;
    const std::uint64_t kb = b.request_seq == 0 ? b.enter_seq : b.request_seq;
    return ka < kb;
  });
  return executions;
}

std::vector<Execution> FilterByOp(const std::vector<Execution>& executions, std::string_view op) {
  std::vector<Execution> out;
  for (const Execution& execution : executions) {
    if (execution.op == op) {
      out.push_back(execution);
    }
  }
  return out;
}

std::optional<Execution> FindInstance(const std::vector<Execution>& executions,
                                      std::uint64_t instance) {
  for (const Execution& execution : executions) {
    if (execution.instance == instance) {
      return execution;
    }
  }
  return std::nullopt;
}

int ActiveCountAt(const std::vector<Execution>& executions, std::string_view op,
                  std::uint64_t seq) {
  int count = 0;
  for (const Execution& execution : executions) {
    if (execution.op != op || execution.enter_seq == 0) {
      continue;
    }
    if (execution.enter_seq <= seq && (execution.exit_seq == 0 || execution.exit_seq > seq)) {
      ++count;
    }
  }
  return count;
}

int WaitingCountAt(const std::vector<Execution>& executions, std::string_view op,
                   std::uint64_t seq) {
  int count = 0;
  for (const Execution& execution : executions) {
    if (execution.op != op || execution.request_seq == 0) {
      continue;
    }
    if (execution.request_seq <= seq && (execution.enter_seq == 0 || execution.enter_seq > seq)) {
      ++count;
    }
  }
  return count;
}

WaitStats ComputeWaitStats(const std::vector<Execution>& executions, std::string_view op) {
  WaitStats stats;
  std::uint64_t total = 0;
  for (const Execution& e : executions) {
    if (e.op != op || e.request_seq == 0) {
      continue;
    }
    if (e.enter_seq == 0) {
      ++stats.never_admitted;
      continue;
    }
    const std::uint64_t wait = e.enter_seq - e.request_seq;
    ++stats.count;
    total += wait;
    stats.max_wait = std::max(stats.max_wait, wait);
  }
  stats.mean_wait = stats.count == 0 ? 0.0 : static_cast<double>(total) / stats.count;
  return stats;
}

std::string DescribeExecution(const Execution& execution) {
  std::ostringstream os;
  os << execution.op << "#" << execution.instance << " by t" << execution.thread << " [req="
     << execution.request_seq << ", enter=" << execution.enter_seq
     << ", exit=" << execution.exit_seq;
  if (execution.param != 0) {
    os << ", param=" << execution.param;
  }
  os << "]";
  return os.str();
}

}  // namespace syneval
