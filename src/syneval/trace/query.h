// Query helpers over recorded traces.
//
// Oracles (syneval/problems) phrase constraint checks in terms of operation *executions*:
// the (request, enter, exit) triple of one op instance. This header groups raw events into
// executions and provides the interval predicates (overlap, precedence) that exclusion and
// priority constraints are written with.

#ifndef SYNEVAL_TRACE_QUERY_H_
#define SYNEVAL_TRACE_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "syneval/trace/event.h"

namespace syneval {

// One complete (or still-open) operation execution reconstructed from a trace.
// Sequence numbers of the missing phases are 0.
struct Execution {
  std::uint64_t instance = 0;
  std::uint32_t thread = 0;
  std::string op;
  std::int64_t param = 0;
  std::int64_t enter_value = 0;
  std::int64_t exit_value = 0;
  std::uint64_t request_seq = 0;
  std::uint64_t enter_seq = 0;
  std::uint64_t exit_seq = 0;

  bool Complete() const { return request_seq != 0 && enter_seq != 0 && exit_seq != 0; }

  // True when both executions held the resource at some common instant, i.e. their
  // [enter, exit] intervals intersect. Open executions extend to infinity.
  bool Overlaps(const Execution& other) const;

  // True when this execution finished before `other` was admitted.
  bool CompletedBefore(const Execution& other) const;

  // True when this execution requested before `other` requested (request time order).
  bool RequestedBefore(const Execution& other) const;
};

// Groups a trace into executions, ordered by request sequence number.
// Events of kind kMark are ignored. Dangling enters/exits (without a request) are
// reported as executions with the corresponding phases set and request_seq == 0.
std::vector<Execution> GroupExecutions(const std::vector<Event>& events);

// Returns only the executions whose op name equals `op`.
std::vector<Execution> FilterByOp(const std::vector<Execution>& executions, std::string_view op);

// Returns the execution with the given instance id, if present.
std::optional<Execution> FindInstance(const std::vector<Execution>& executions,
                                      std::uint64_t instance);

// Returns the number of executions of `op` that are inside the resource (entered, not yet
// exited) at the global time `seq`. This is the "synchronization state" view of a trace.
int ActiveCountAt(const std::vector<Execution>& executions, std::string_view op,
                  std::uint64_t seq);

// Returns the number of executions of `op` that have requested but not yet entered at
// time `seq` (the waiting set).
int WaitingCountAt(const std::vector<Execution>& executions, std::string_view op,
                   std::uint64_t seq);

// Renders a short diagnostic description of an execution.
std::string DescribeExecution(const Execution& execution);

// Waiting-time statistics for one op, in logical-trace units (the number of global
// events between a request's arrival and its admission). Absolute values depend on the
// workload's event density; comparisons across policies on the SAME workload are the
// meaningful use (fairness/starvation analysis).
struct WaitStats {
  int count = 0;                 // Admitted executions measured.
  std::uint64_t max_wait = 0;    // Worst arrival→admission distance.
  double mean_wait = 0.0;
  int never_admitted = 0;        // Requests that starved (arrived, never entered).
};

WaitStats ComputeWaitStats(const std::vector<Execution>& executions, std::string_view op);

}  // namespace syneval

#endif  // SYNEVAL_TRACE_QUERY_H_
