#include "syneval/trace/recorder.h"

#include <sstream>
#include <utility>

namespace syneval {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kRequest:
      return "request";
    case EventKind::kEnter:
      return "enter";
    case EventKind::kExit:
      return "exit";
    case EventKind::kMark:
      return "mark";
  }
  return "?";
}

std::string Event::ToString() const {
  std::ostringstream os;
  os << "seq=" << seq << " t" << thread << " " << EventKindName(kind) << " " << op;
  os << "(inst=" << op_instance;
  if (param != 0) {
    os << ", param=" << param;
  }
  if (value != 0) {
    os << ", value=" << value;
  }
  os << ")";
  return os.str();
}

std::uint64_t TraceRecorder::Record(Event event) {
  TraceObserver* observer = nullptr;
  TraceObserver* secondary = nullptr;
  Event observed;
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    event.seq = next_seq_++;
    if (event.wall_ns == 0 && clock_) {
      event.wall_ns = clock_();
    }
    seq = event.seq;
    if (observer_ != nullptr || secondary_observer_ != nullptr) {
      observer = observer_;
      secondary = secondary_observer_;
      observed = event;
    }
    events_.push_back(std::move(event));
  }
  // Outside the lock: observers may take their own locks or record further events.
  if (observer != nullptr) {
    observer->OnTraceEvent(observed);
  }
  if (secondary != nullptr) {
    secondary->OnTraceEvent(observed);
  }
  return seq;
}

std::uint64_t TraceRecorder::Record(std::uint32_t thread, EventKind kind, std::string_view op,
                                    std::uint64_t op_instance, std::int64_t param,
                                    std::int64_t value) {
  Event event;
  event.thread = thread;
  event.kind = kind;
  event.op = std::string(op);
  event.op_instance = op_instance;
  event.param = param;
  event.value = value;
  return Record(std::move(event));
}

std::uint64_t TraceRecorder::NewOpInstance() {
  return next_instance_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<Event> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  next_seq_ = 1;
}

std::string TraceRecorder::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const Event& event : events_) {
    os << event.ToString() << "\n";
  }
  return os.str();
}

OpScope::OpScope(TraceRecorder& recorder, std::uint32_t thread, std::string op,
                 std::int64_t param)
    : recorder_(recorder),
      thread_(thread),
      op_(std::move(op)),
      param_(param),
      instance_(recorder.NewOpInstance()) {}

OpScope::~OpScope() {
  if (entered_ && !exited_) {
    Exited();
  }
}

void OpScope::Arrived() {
  if (!arrived_) {
    arrived_ = true;
    recorder_.Record(thread_, EventKind::kRequest, op_, instance_, param_);
  }
}

void OpScope::Entered(std::int64_t value) {
  if (!entered_) {
    Arrived();
    entered_ = true;
    recorder_.Record(thread_, EventKind::kEnter, op_, instance_, param_, value);
  }
}

void OpScope::Exited(std::int64_t value) {
  if (!exited_) {
    if (!entered_) {
      Entered(value);
    }
    exited_ = true;
    recorder_.Record(thread_, EventKind::kExit, op_, instance_, param_, value);
  }
}

}  // namespace syneval
