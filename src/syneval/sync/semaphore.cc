#include "syneval/sync/semaphore.h"

namespace syneval {

CountingSemaphore::CountingSemaphore(Runtime& runtime, std::int64_t initial)
    : mu_(runtime.CreateMutex()), cv_(runtime.CreateCondVar()), count_(initial) {}

void CountingSemaphore::P() {
  RtLock lock(*mu_);
  while (count_ == 0) {
    cv_->Wait(*mu_);
  }
  --count_;
}

void CountingSemaphore::P(const std::function<void()>& on_acquire) {
  RtLock lock(*mu_);
  while (count_ == 0) {
    cv_->Wait(*mu_);
  }
  --count_;
  if (on_acquire) {
    on_acquire();
  }
}

void CountingSemaphore::V() {
  RtLock lock(*mu_);
  ++count_;
  cv_->NotifyOne();
}

void CountingSemaphore::V(const std::function<void()>& on_release) {
  RtLock lock(*mu_);
  if (on_release) {
    on_release();
  }
  ++count_;
  cv_->NotifyOne();
}

bool CountingSemaphore::TryP() {
  RtLock lock(*mu_);
  if (count_ == 0) {
    return false;
  }
  --count_;
  return true;
}

std::int64_t CountingSemaphore::value() const {
  RtLock lock(*mu_);
  return count_;
}

BinarySemaphore::BinarySemaphore(Runtime& runtime, bool initially_open)
    : mu_(runtime.CreateMutex()), cv_(runtime.CreateCondVar()), open_(initially_open) {}

void BinarySemaphore::P() { P(nullptr); }

void BinarySemaphore::P(const std::function<void()>& on_acquire) {
  RtLock lock(*mu_);
  while (!open_) {
    cv_->Wait(*mu_);
  }
  open_ = false;
  if (on_acquire) {
    on_acquire();
  }
}

void BinarySemaphore::V() { V(nullptr); }

void BinarySemaphore::V(const std::function<void()>& on_release) {
  RtLock lock(*mu_);
  if (on_release) {
    on_release();
  }
  open_ = true;
  cv_->NotifyOne();
}

bool BinarySemaphore::TryP() {
  RtLock lock(*mu_);
  if (!open_) {
    return false;
  }
  open_ = false;
  return true;
}

FifoSemaphore::FifoSemaphore(Runtime& runtime, std::int64_t initial)
    : mu_(runtime.CreateMutex()), cv_(runtime.CreateCondVar()), count_(initial) {}

void FifoSemaphore::P() { P(nullptr, nullptr); }

void FifoSemaphore::P(const std::function<void()>& on_acquire) { P(nullptr, on_acquire); }

void FifoSemaphore::P(const std::function<void()>& on_arrive,
                      const std::function<void()>& on_acquire) {
  RtLock lock(*mu_);
  if (on_arrive) {
    on_arrive();
  }
  if (count_ > 0 && queue_.empty()) {
    --count_;
    if (on_acquire) {
      on_acquire();
    }
    return;
  }
  Waiter self;
  self.on_acquire = on_acquire;
  queue_.push_back(&self);
  while (!self.granted) {
    cv_->Wait(*mu_);
  }
}

void FifoSemaphore::V() { V(nullptr); }

void FifoSemaphore::V(const std::function<void()>& on_release) {
  RtLock lock(*mu_);
  if (on_release) {
    on_release();
  }
  if (!queue_.empty()) {
    // Hand the unit directly to the longest waiter; the count never becomes visible.
    Waiter* head = queue_.front();
    queue_.pop_front();
    if (head->on_acquire) {
      head->on_acquire();
    }
    head->granted = true;
    cv_->NotifyAll();
  } else {
    ++count_;
  }
}

std::int64_t FifoSemaphore::value() const {
  RtLock lock(*mu_);
  return count_;
}

int FifoSemaphore::waiters() const {
  RtLock lock(*mu_);
  return static_cast<int>(queue_.size());
}

}  // namespace syneval
