#include "syneval/sync/semaphore.h"

#include "syneval/anomaly/detector.h"

namespace syneval {

CountingSemaphore::CountingSemaphore(Runtime& runtime, std::int64_t initial)
    : runtime_(runtime),
      det_(runtime.anomaly_detector()),
      mu_(runtime.CreateMutex()),
      cv_(runtime.CreateCondVar()),
      count_(initial) {
  if (det_ != nullptr) {
    det_->RegisterResource(this, ResourceKind::kSemaphore, "CountingSemaphore");
  }
}

void CountingSemaphore::P() { P(nullptr); }

void CountingSemaphore::P(const std::function<void()>& on_acquire) {
  RtLock lock(*mu_);
  const bool will_block = count_ == 0;
  const std::uint32_t tid = runtime_.CurrentThreadId();
  if (det_ != nullptr && will_block) {
    det_->OnBlock(tid, this);
  }
  while (count_ == 0) {
    cv_->Wait(*mu_);
  }
  if (det_ != nullptr && will_block) {
    det_->OnWake(tid, this);
  }
  --count_;
  if (det_ != nullptr) {
    det_->OnAcquire(tid, this);
  }
  if (on_acquire) {
    on_acquire();
  }
}

void CountingSemaphore::V() { V(nullptr); }

void CountingSemaphore::V(const std::function<void()>& on_release) {
  RtLock lock(*mu_);
  if (on_release) {
    on_release();
  }
  if (det_ != nullptr) {
    det_->OnRelease(runtime_.CurrentThreadId(), this);
  }
  ++count_;
  cv_->NotifyOne();
}

bool CountingSemaphore::TryP() {
  RtLock lock(*mu_);
  if (count_ == 0) {
    return false;
  }
  --count_;
  if (det_ != nullptr) {
    det_->OnAcquire(runtime_.CurrentThreadId(), this);
  }
  return true;
}

std::int64_t CountingSemaphore::value() const {
  RtLock lock(*mu_);
  return count_;
}

BinarySemaphore::BinarySemaphore(Runtime& runtime, bool initially_open)
    : runtime_(runtime),
      det_(runtime.anomaly_detector()),
      mu_(runtime.CreateMutex()),
      cv_(runtime.CreateCondVar()),
      open_(initially_open) {
  if (det_ != nullptr) {
    det_->RegisterResource(this, ResourceKind::kSemaphore, "BinarySemaphore");
  }
}

void BinarySemaphore::P() { P(nullptr); }

void BinarySemaphore::P(const std::function<void()>& on_acquire) {
  RtLock lock(*mu_);
  const bool will_block = !open_;
  const std::uint32_t tid = runtime_.CurrentThreadId();
  if (det_ != nullptr && will_block) {
    det_->OnBlock(tid, this);
  }
  while (!open_) {
    cv_->Wait(*mu_);
  }
  if (det_ != nullptr && will_block) {
    det_->OnWake(tid, this);
  }
  open_ = false;
  if (det_ != nullptr) {
    det_->OnAcquire(tid, this);
  }
  if (on_acquire) {
    on_acquire();
  }
}

void BinarySemaphore::V() { V(nullptr); }

void BinarySemaphore::V(const std::function<void()>& on_release) {
  RtLock lock(*mu_);
  if (on_release) {
    on_release();
  }
  if (det_ != nullptr) {
    det_->OnRelease(runtime_.CurrentThreadId(), this);
  }
  open_ = true;
  cv_->NotifyOne();
}

bool BinarySemaphore::TryP() {
  RtLock lock(*mu_);
  if (!open_) {
    return false;
  }
  open_ = false;
  if (det_ != nullptr) {
    det_->OnAcquire(runtime_.CurrentThreadId(), this);
  }
  return true;
}

FifoSemaphore::FifoSemaphore(Runtime& runtime, std::int64_t initial)
    : runtime_(runtime),
      det_(runtime.anomaly_detector()),
      mu_(runtime.CreateMutex()),
      cv_(runtime.CreateCondVar()),
      count_(initial) {
  if (det_ != nullptr) {
    det_->RegisterResource(this, ResourceKind::kSemaphore, "FifoSemaphore");
  }
}

void FifoSemaphore::P() { P(nullptr, nullptr); }

void FifoSemaphore::P(const std::function<void()>& on_acquire) { P(nullptr, on_acquire); }

void FifoSemaphore::P(const std::function<void()>& on_arrive,
                      const std::function<void()>& on_acquire) {
  RtLock lock(*mu_);
  const std::uint32_t tid = runtime_.CurrentThreadId();
  if (on_arrive) {
    on_arrive();
  }
  if (count_ > 0 && queue_.empty()) {
    --count_;
    if (det_ != nullptr) {
      det_->OnAcquire(tid, this);
    }
    if (on_acquire) {
      on_acquire();
    }
    return;
  }
  Waiter self;
  self.thread = tid;
  self.on_acquire = on_acquire;
  queue_.push_back(&self);
  if (det_ != nullptr) {
    det_->OnBlock(tid, this);
  }
  while (!self.granted) {
    cv_->Wait(*mu_);
  }
  if (det_ != nullptr) {
    det_->OnWake(tid, this);
  }
}

void FifoSemaphore::V() { V(nullptr); }

void FifoSemaphore::V(const std::function<void()>& on_release) {
  RtLock lock(*mu_);
  if (on_release) {
    on_release();
  }
  if (det_ != nullptr) {
    det_->OnRelease(runtime_.CurrentThreadId(), this);
  }
  if (!queue_.empty()) {
    // Hand the unit directly to the longest waiter; the count never becomes visible.
    Waiter* head = queue_.front();
    queue_.pop_front();
    if (det_ != nullptr) {
      det_->OnAcquire(head->thread, this);
    }
    if (head->on_acquire) {
      head->on_acquire();
    }
    head->granted = true;
    cv_->NotifyAll();
  } else {
    ++count_;
  }
}

std::int64_t FifoSemaphore::value() const {
  RtLock lock(*mu_);
  return count_;
}

int FifoSemaphore::waiters() const {
  RtLock lock(*mu_);
  return static_cast<int>(queue_.size());
}

}  // namespace syneval
